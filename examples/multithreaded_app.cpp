/**
 * @file
 * Multithreaded scenario: run a PARSEC application with 16 threads
 * under MorphCache and the static topologies, reporting performance
 * (inverse execution time) and the data-sharing merges MorphCache
 * performed.
 *
 * Usage: multithreaded_app [benchmark]   (default: dedup)
 */

#include <cstdio>
#include <string>

#include "sim/config.hh"
#include "sim/simulation.hh"
#include "workload/generator.hh"

using namespace morphcache;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "dedup";
    const BenchmarkProfile &profile = profileByName(bench);
    if (!profile.multithreaded) {
        std::fprintf(stderr,
                     "%s is single-threaded; pick a PARSEC app\n",
                     bench.c_str());
        return 1;
    }

    HierarchyParams hier = experimentHierarchy(16);
    hier.coherence = true; // one shared address space
    SimParams sim;
    sim.epochs = 10;

    const GeneratorParams gen = generatorFor(hier);

    std::printf("%s, 16 threads: performance (1/exec-time, "
                "normalized to (16:1:1))\n", bench.c_str());

    double base = 0.0;
    struct { const char *label; int x, y, z; } statics[] = {
        {"(16:1:1)", 16, 1, 1}, {"(1:1:16)", 1, 1, 16},
        {"(4:4:1)", 4, 4, 1},   {"(8:2:1)", 8, 2, 1},
        {"(1:16:1)", 1, 16, 1},
    };
    for (const auto &s : statics) {
        MultithreadedWorkload workload(profile, 16, gen, 42);
        StaticTopologySystem sys(
            hier, Topology::symmetric(16, s.x, s.y, s.z));
        Simulation simulation(sys, workload, sim);
        const double perf = simulation.run().performance;
        if (base == 0.0)
            base = perf;
        std::printf("  %-12s %.3f\n", s.label, perf / base);
    }

    MultithreadedWorkload workload(profile, 16, gen, 42);
    MorphConfig config;
    config.sharedAddressSpace = true;
    MorphCacheSystem sys(hier, config);
    Simulation simulation(sys, workload, sim);
    const double perf = simulation.run().performance;
    std::printf("  %-12s %.3f\n", "MorphCache", perf / base);
    std::printf("  merges %llu, splits %llu, final topology %s\n",
                static_cast<unsigned long long>(
                    sys.controller().stats().merges),
                static_cast<unsigned long long>(
                    sys.controller().stats().splits),
                sys.hierarchy().topology().name().c_str());
    return 0;
}

/**
 * @file
 * End-to-end tests of tools/mc_analyze (the AST-level semantic
 * analyzer) driven through python3, mirroring the mc_benchdiff
 * harness idiom in perf_test.cc.
 *
 * Every pass gets a mutation-catching pair: a seeded-bug fixture
 * the analyzer MUST flag and a clean fixture it must stay silent
 * on — so a regression that blinds a pass fails these tests, not
 * just the lint run it was supposed to protect. The allowlist,
 * cache, clang-extraction selftest, and the deliberate-omission
 * drill (add a member to a real checkpointed class, prove the
 * analyzer objects) ride the same harness.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

bool
havePython()
{
    return std::system("python3 -c 'pass' > /dev/null 2>&1") == 0;
}

struct RunResult
{
    int exit = -1;
    std::string output;
};

/** Run mc_analyze with `args`, capturing exit code and output. */
RunResult
runAnalyze(const std::string &args)
{
    const std::string out =
        ::testing::TempDir() + "mc_analyze_out.txt";
    const std::string cmd = "python3 " MC_SOURCE_DIR
                            "/tools/mc_analyze " +
                            args + " > '" + out + "' 2>&1";
    const int status = std::system(cmd.c_str());
    RunResult r;
    r.exit = status < 0 ? status : WEXITSTATUS(status);
    std::ifstream in(out);
    std::stringstream ss;
    ss << in.rdbuf();
    r.output = ss.str();
    return r;
}

/** Fixture-mode run against one file under tests/analyze_fixtures,
 *  with the repo allowlist replaced by `allowlist` (empty = none;
 *  the real tree's entries must not leak into fixture runs). */
RunResult
runFixture(const std::string &name, const std::string &allowlist)
{
    return runAnalyze("--repo-root " MC_SOURCE_DIR
                      " --fixture-mode --cache-dir '' --allowlist '" +
                      (allowlist.empty() ? "/dev/null" : allowlist) +
                      "' tests/analyze_fixtures/" + name);
}

std::string
writeTempFile(const std::string &name, const std::string &content)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(Analyze, CleanTreePasses)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";
    const RunResult r = runAnalyze(
        "--repo-root " MC_SOURCE_DIR " --cache-dir '' -q");
    EXPECT_EQ(r.exit, 0) << r.output;
}

TEST(Analyze, WrapSafetyFixtures)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";
    const RunResult bug = runFixture("wrap_bug.cc", "");
    EXPECT_EQ(bug.exit, 1) << bug.output;
    // All three shapes: binary, compound, decrement.
    EXPECT_NE(bug.output.find("busyUntil - now"), std::string::npos)
        << bug.output;
    EXPECT_NE(bug.output.find("cycleBudget -= latency"),
              std::string::npos);
    EXPECT_NE(bug.output.find("satDec"), std::string::npos);

    const RunResult clean = runFixture("wrap_clean.cc", "");
    EXPECT_EQ(clean.exit, 0) << clean.output;
}

TEST(Analyze, SerializationFixtures)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";
    const RunResult bug = runFixture("ckpt_bug.cc", "");
    EXPECT_EQ(bug.exit, 1) << bug.output;
    // Never-serialized member, save-only member, and a derived
    // annotation whose reconstruction site does not exist.
    EXPECT_NE(bug.output.find("missing_"), std::string::npos);
    EXPECT_NE(bug.output.find("halfDone_"), std::string::npos);
    EXPECT_NE(bug.output.find("badSite_"), std::string::npos);

    const RunResult clean = runFixture("ckpt_clean.cc", "");
    EXPECT_EQ(clean.exit, 0) << clean.output;
}

TEST(Analyze, DeterminismFixtures)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";
    const RunResult bug = runFixture("det_bug.cc", "");
    EXPECT_EQ(bug.exit, 1) << bug.output;
    // All four sub-checks fire on the one fixture.
    EXPECT_NE(bug.output.find("unordered container"),
              std::string::npos)
        << bug.output;
    EXPECT_NE(bug.output.find("rand()"), std::string::npos);
    EXPECT_NE(bug.output.find("[wall-clock]"), std::string::npos);
    EXPECT_NE(bug.output.find("[stats-bypass]"), std::string::npos);

    const RunResult clean = runFixture("det_clean.cc", "");
    EXPECT_EQ(clean.exit, 0) << clean.output;
}

TEST(Analyze, ConcurrencyFixtures)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";
    const RunResult bug = runFixture("conc_bug.cc", "");
    EXPECT_EQ(bug.exit, 1) << bug.output;
    // Member write and by-reference-capture write, both from the
    // worker lambda.
    EXPECT_NE(bug.output.find("completed_"), std::string::npos)
        << bug.output;
    EXPECT_NE(bug.output.find("sharedTally"), std::string::npos);

    const RunResult clean = runFixture("conc_clean.cc", "");
    EXPECT_EQ(clean.exit, 0) << clean.output;
}

TEST(Analyze, AllowlistPermitsAuditedSites)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";
    const std::string allow = writeTempFile(
        "analyze_allow_ok.txt",
        "concurrency:tests/analyze_fixtures/conc_bug.cc:"
        "<lambda>:completed_ -- audited: test entry\n"
        "concurrency:tests/analyze_fixtures/conc_bug.cc:"
        "<lambda>:sharedTally -- audited: test entry\n");
    const RunResult r = runFixture("conc_bug.cc", allow);
    EXPECT_EQ(r.exit, 0) << r.output;
}

TEST(Analyze, AllowlistStaleAndMalformedEntriesFail)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";
    const std::string stale = writeTempFile(
        "analyze_allow_stale.txt",
        "wrap-safety:src/nonexistent.cc:foo:a-b -- gone\n");
    const RunResult r1 = runFixture("wrap_clean.cc", stale);
    EXPECT_EQ(r1.exit, 1) << r1.output;
    EXPECT_NE(r1.output.find("stale entry"), std::string::npos);

    const std::string malformed = writeTempFile(
        "analyze_allow_bad.txt", "no separator or key here\n");
    const RunResult r2 = runFixture("wrap_clean.cc", malformed);
    EXPECT_EQ(r2.exit, 1) << r2.output;
    EXPECT_NE(r2.output.find("malformed"), std::string::npos);
}

TEST(Analyze, CacheHitsAndContentInvalidation)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";
    const std::string src = writeTempFile(
        "cache_probe.cc",
        readFile(MC_SOURCE_DIR
                 "/tests/analyze_fixtures/wrap_clean.cc"));
    const std::string cache = ::testing::TempDir() + "an_cache";
    // TempDir is not per-run: a cache dir left by a previous
    // execution would make the "cold" run hit (same content, same
    // hash key). Start from nothing.
    std::filesystem::remove_all(cache);
    const std::string args = "--repo-root '" +
                             ::testing::TempDir() +
                             "' --fixture-mode --allowlist "
                             "/dev/null --cache-dir '" +
                             cache + "' cache_probe.cc";

    const RunResult cold = runAnalyze(args);
    EXPECT_EQ(cold.exit, 0) << cold.output;
    EXPECT_NE(cold.output.find("(0 cached, 1 parsed)"),
              std::string::npos)
        << cold.output;

    const RunResult warm = runAnalyze(args);
    EXPECT_NE(warm.output.find("(1 cached, 0 parsed)"),
              std::string::npos)
        << warm.output;

    // Any byte change misses: the key is the content hash.
    std::ofstream(src, std::ios::app) << "// touched\n";
    const RunResult touched = runAnalyze(args);
    EXPECT_NE(touched.output.find("(0 cached, 1 parsed)"),
              std::string::npos)
        << touched.output;
}

TEST(Analyze, AddingUnserializedMemberFailsTheBuild)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";
    // The ISSUE's acceptance drill, against *real* code: take a
    // checkpointed class (PlruTree), add a member, leave
    // saveState/loadState untouched — the analyzer must object.
    std::string header =
        readFile(MC_SOURCE_DIR "/src/mem/replacement.hh");
    const std::string anchor = "std::uint64_t bits_ = 0;";
    const std::size_t at = header.find(anchor);
    ASSERT_NE(at, std::string::npos)
        << "replacement.hh anchor moved; update this test";
    header.insert(at + anchor.size(),
                  "\n    std::uint64_t newField_ = 0;");
    writeTempFile("omission_probe.hh", header);

    const RunResult r = runAnalyze(
        "--repo-root '" + ::testing::TempDir() +
        "' --fixture-mode --cache-dir '' --allowlist /dev/null "
        "--checks serialization omission_probe.hh");
    EXPECT_EQ(r.exit, 1) << r.output;
    EXPECT_NE(r.output.find("newField_"), std::string::npos)
        << r.output;
}

TEST(Analyze, ClangExtractionSelftest)
{
    if (!havePython())
        GTEST_SKIP() << "python3 not available";
    // The clang JSON decl-extraction path, pinned without a clang
    // binary: a synthetic -ast-dump=json fixture with sticky
    // locations and an other-file decl that must be filtered out.
    const RunResult r = runAnalyze(
        "--selftest-clang-extract " MC_SOURCE_DIR
        "/tests/analyze_fixtures/clang_dump.json");
    EXPECT_EQ(r.exit, 0) << r.output;
    EXPECT_NE(r.output.find("aliases: Cycle -> std::uint64_t"),
              std::string::npos)
        << r.output;
    EXPECT_NE(
        r.output.find("members: Bus.busyUntil_ -> std::vector"),
        std::string::npos);
    EXPECT_NE(r.output.find("params: wait.now -> Cycle"),
              std::string::npos);
    EXPECT_NE(r.output.find("rets: latency -> Cycle"),
              std::string::npos);
    // Sticky-file tracking: the /usr/include decl is not ours.
    EXPECT_EQ(r.output.find("excluded_"), std::string::npos)
        << r.output;
}

# Empty compiler generated dependencies file for sec54_sensitivity.
# This may be replaced when dependencies are built.

#!/usr/bin/env python3
"""Compare two mc_bench BENCH JSON files cell-by-cell.

Usage:
    tools/mc_benchdiff.py BASELINE.json CURRENT.json [--threshold PCT]
    tools/mc_benchdiff.py BASELINE.json CURRENT.json --min-speedup R

Matches cells of the two files by their stable id
("morph/mix:8/c8/e6/r6000/s42") and prints a per-cell delta table.
Two gate modes:

  --threshold PCT (default mode): exit nonzero when any matched
      cell's median refs/sec dropped by more than PCT percent
      (default 10) — the "did this PR regress the bench" gate.

  --min-speedup RATIO: exit nonzero when any matched cell's
      current/baseline median ratio is below RATIO — the
      "did this PR actually get faster" trajectory gate
      (e.g. --min-speedup 1.2 demands every cell improved >= 1.2x
      over the committed previous-PR baseline).

Exit codes:
    0  gate passed
    1  at least one cell regressed / fell short of the speedup
    2  usage / schema / input error (including zero overlapping cells,
       which would otherwise vacuously "pass")

Wall-clock throughput is machine-dependent: compare files from the
same host (CI smoke leg compares a run against itself and against a
synthetically slowed copy; cross-machine diffs against the committed
BENCH_<PR>.json trajectory need a generous threshold).
"""

import argparse
import json
import sys


def load_bench(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        raise SystemExit(f"mc_benchdiff: cannot read {path}: {e}")
    if not isinstance(doc, dict) or doc.get("tool") != "mc_bench":
        raise SystemExit(
            f"mc_benchdiff: {path}: not an mc_bench BENCH file")
    schema = doc.get("schema")
    if schema not in (1, 2):
        raise SystemExit(
            f"mc_benchdiff: {path}: unsupported schema {schema!r} "
            "(this tool understands schemas 1 and 2)")
    cells = doc.get("cells")
    if not isinstance(cells, list):
        raise SystemExit(f"mc_benchdiff: {path}: missing cells[]")
    by_id = {}
    for cell in cells:
        cid = cell.get("id")
        median = cell.get("medianRefsPerSec")
        if not isinstance(cid, str) or not isinstance(
                median, (int, float)):
            raise SystemExit(
                f"mc_benchdiff: {path}: malformed cell {cell!r}")
        by_id[cid] = cell
    return doc, by_id


def main(argv):
    ap = argparse.ArgumentParser(
        prog="mc_benchdiff.py",
        description="Gate on median refs/sec regression between two "
        "BENCH files.")
    ap.add_argument("baseline", help="older BENCH json")
    ap.add_argument("current", help="newer BENCH json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="fail when a cell's median drops more than PCT%% "
        "(default: %(default)s)")
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help="instead of the regression threshold, fail when any "
        "cell's current/baseline median ratio is below RATIO")
    args = ap.parse_args(argv)
    if args.threshold < 0:
        ap.error("--threshold must be >= 0")
    if args.min_speedup is not None and args.min_speedup <= 0:
        ap.error("--min-speedup must be > 0")

    base_doc, base = load_bench(args.baseline)
    cur_doc, cur = load_bench(args.current)

    shared = [cid for cid in base if cid in cur]
    if not shared:
        print(
            "mc_benchdiff: no overlapping cell ids between "
            f"{args.baseline} and {args.current}",
            file=sys.stderr)
        return 2

    base_sha = base_doc.get("env", {}).get("gitSha", "?")
    cur_sha = cur_doc.get("env", {}).get("gitSha", "?")
    print(f"baseline : {args.baseline} (git {base_sha})")
    print(f"current  : {args.current} (git {cur_sha})")
    if args.min_speedup is not None:
        print(f"gate     : >= {args.min_speedup:g}x median refs/sec")
    else:
        print(f"threshold: -{args.threshold:g}% median refs/sec")
    print()
    width = max(len(cid) for cid in shared)
    print(f"{'cell':<{width}}  {'base Mr/s':>10}  {'cur Mr/s':>10}"
          f"  {'delta':>8}")

    failures = []
    for cid in shared:
        b = base[cid]["medianRefsPerSec"]
        c = cur[cid]["medianRefsPerSec"]
        if b <= 0:
            delta_pct = 0.0
            ratio = float("inf")
        else:
            delta_pct = 100.0 * (c - b) / b
            ratio = c / b
        flag = ""
        if args.min_speedup is not None:
            if ratio < args.min_speedup:
                failures.append((cid, delta_pct))
                flag = "  TOO SLOW"
        elif delta_pct < -args.threshold:
            failures.append((cid, delta_pct))
            flag = "  REGRESSED"
        print(f"{cid:<{width}}  {b / 1e6:>10.3f}  {c / 1e6:>10.3f}"
              f"  {delta_pct:>+7.1f}%{flag}")

    skipped = (len(base) - len(shared), len(cur) - len(shared))
    if any(skipped):
        print(f"\n(unmatched cells ignored: {skipped[0]} "
              f"baseline-only, {skipped[1]} current-only)")

    if failures:
        if args.min_speedup is not None:
            print(
                f"\nmc_benchdiff: {len(failures)} cell(s) below the "
                f"{args.min_speedup:g}x speedup floor",
                file=sys.stderr)
        else:
            print(
                f"\nmc_benchdiff: {len(failures)} cell(s) regressed "
                f"beyond {args.threshold:g}%",
                file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        print(f"\nmc_benchdiff: OK ({len(shared)} cells at "
              f">= {args.min_speedup:g}x)")
    else:
        print(f"\nmc_benchdiff: OK ({len(shared)} cells within "
              f"{args.threshold:g}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

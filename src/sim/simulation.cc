#include "sim/simulation.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"
#include "stats/metrics.hh"
#include "stats/profiler.hh"
#include "stats/registry.hh"
#include "stats/tracing.hh"

namespace morphcache {

Simulation::Simulation(MemorySystem &system, Workload &workload,
                       const SimParams &params)
    : system_(system), workload_(workload), params_(params),
      cycles_(workload.numCores(), 0.0),
      instrs_(workload.numCores(), 0.0)
{
    if (system.numCores() < workload.numCores()) {
        throw ConfigError("memory system models fewer cores than the "
                          "workload issues from");
    }
    if (params_.refsPerEpochPerCore == 0)
        throw ConfigError("epoch length must be nonzero references");
}

EpochMetrics
Simulation::runEpoch(EpochId epoch)
{
    const std::uint32_t cores = workload_.numCores();

    std::vector<double> cycles_start = cycles_;
    std::vector<double> instr_start = instrs_;
    std::vector<std::uint64_t> misses_start(cores, 0);
    for (std::uint32_t c = 0; c < cores; ++c) {
        misses_start[c] =
            system_.coreStats(static_cast<CoreId>(c)).misses();
    }

    if (tracer_)
        tracer_->setEpoch(epoch);

    workload_.beginEpoch(epoch);
    {
        ScopedPhaseTimer timer(ProfPhase::RefProcessing);
        runEpochAccesses(system_, workload_, params_.core,
                         params_.refsPerEpochPerCore, cycles_,
                         instrs_);
    }
    if (tracer_) {
        // Simulated time = the furthest core clock; every decision
        // event this boundary emits carries it.
        double max_cycles = 0.0;
        for (double c : cycles_)
            max_cycles = std::max(max_cycles, c);
        tracer_->setTime(static_cast<std::uint64_t>(max_cycles));
    }
    {
        ScopedPhaseTimer timer(ProfPhase::EpochDecision);
        system_.epochBoundary();
    }

    EpochMetrics metrics;
    metrics.ipc.resize(cores);
    metrics.misses.resize(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        const double dcycles = cycles_[c] - cycles_start[c];
        const double dinstr = instrs_[c] - instr_start[c];
        metrics.ipc[c] = dcycles > 0.0 ? dinstr / dcycles : 0.0;
        metrics.misses[c] =
            system_.coreStats(static_cast<CoreId>(c)).misses() -
            misses_start[c];
    }
    metrics.throughput = throughput(metrics.ipc);

    if (tracer_ && tracer_->enabled()) {
        std::uint64_t total_misses = 0;
        for (std::uint64_t m : metrics.misses)
            total_misses += m;
        TraceEvent ev("epoch");
        ev.f64("throughput", metrics.throughput)
            .u64("misses", total_misses)
            .u64("refsPerCore", params_.refsPerEpochPerCore);
        tracer_->emit(ev);
    }
    return metrics;
}

void
Simulation::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    system_.setTracer(tracer);
}

void
Simulation::markWarmupDone()
{
    warmupDone_ = true;
    baselineCycles_ = cycles_;
    baselineInstrs_ = instrs_;
}

void
Simulation::stepEpoch()
{
    if (done())
        return;
    if (!warmupDone_ && nextEpoch_ < params_.warmupEpochs) {
        runEpoch(nextEpoch_++);
        if (nextEpoch_ == params_.warmupEpochs)
            markWarmupDone();
        return;
    }
    if (!warmupDone_)
        markWarmupDone();
    const EpochId id = nextEpoch_++;
    recorded_.push_back(runEpoch(id));
    if (registry_)
        registry_->snapshotEpoch(id);
}

bool
Simulation::done() const
{
    return nextEpoch_ >= params_.warmupEpochs &&
           recorded_.size() >= params_.epochs;
}

RunResult
Simulation::finish() const
{
    const std::uint32_t cores = workload_.numCores();
    RunResult result;
    result.epochs = recorded_;

    // With zero recorded epochs the baselines were never captured;
    // the current clocks give the same all-zero deltas.
    const std::vector<double> &cycles_start =
        warmupDone_ ? baselineCycles_ : cycles_;
    const std::vector<double> &instr_start =
        warmupDone_ ? baselineInstrs_ : instrs_;

    result.avgIpc.resize(cores);
    double max_cycles = 0.0;
    double total_instr = 0.0;
    for (std::uint32_t c = 0; c < cores; ++c) {
        const double dcycles = cycles_[c] - cycles_start[c];
        const double dinstr = instrs_[c] - instr_start[c];
        result.avgIpc[c] = dcycles > 0.0 ? dinstr / dcycles : 0.0;
        max_cycles = std::max(max_cycles, dcycles);
        total_instr += dinstr;
    }
    result.avgThroughput = throughput(result.avgIpc);
    result.performance =
        max_cycles > 0.0 ? total_instr / max_cycles : 0.0;
    return result;
}

RunResult
Simulation::run()
{
    while (!done())
        stepEpoch();
    return finish();
}

void
Simulation::saveState(CkptWriter &w) const
{
    w.f64Vec(cycles_);
    w.f64Vec(instrs_);
    w.u64(nextEpoch_);
    w.b(warmupDone_);
    w.f64Vec(baselineCycles_);
    w.f64Vec(baselineInstrs_);
    w.u64(recorded_.size());
    for (const EpochMetrics &metrics : recorded_) {
        w.f64Vec(metrics.ipc);
        w.f64(metrics.throughput);
        w.u64Vec(metrics.misses);
    }
}

void
Simulation::loadState(CkptReader &r)
{
    const std::size_t cores = cycles_.size();
    std::vector<double> cycles = r.f64Vec();
    if (cycles.size() != cores)
        r.fail("core clock count mismatch");
    std::vector<double> instrs = r.f64Vec();
    if (instrs.size() != cores)
        r.fail("instruction counter count mismatch");
    cycles_ = std::move(cycles);
    instrs_ = std::move(instrs);
    nextEpoch_ = static_cast<EpochId>(r.u64());
    warmupDone_ = r.b();
    baselineCycles_ = r.f64Vec();
    baselineInstrs_ = r.f64Vec();
    if (warmupDone_ && (baselineCycles_.size() != cores ||
                        baselineInstrs_.size() != cores))
        r.fail("warmup baseline size mismatch");
    const std::uint64_t count = r.u64();
    if (count > params_.epochs)
        r.fail("checkpoint records " + std::to_string(count) +
               " epochs but the run only has " +
               std::to_string(params_.epochs));
    recorded_.clear();
    recorded_.reserve(count);
    for (std::uint64_t e = 0; e < count; ++e) {
        EpochMetrics metrics;
        metrics.ipc = r.f64Vec();
        metrics.throughput = r.f64();
        metrics.misses = r.u64Vec();
        if (metrics.ipc.size() != cores ||
            metrics.misses.size() != cores)
            r.fail("recorded epoch metric size mismatch");
        recorded_.push_back(std::move(metrics));
    }
}

} // namespace morphcache

file(REMOVE_RECURSE
  "CMakeFiles/mc_baselines.dir/dsr.cc.o"
  "CMakeFiles/mc_baselines.dir/dsr.cc.o.d"
  "CMakeFiles/mc_baselines.dir/ideal_offline.cc.o"
  "CMakeFiles/mc_baselines.dir/ideal_offline.cc.o.d"
  "CMakeFiles/mc_baselines.dir/pipp.cc.o"
  "CMakeFiles/mc_baselines.dir/pipp.cc.o.d"
  "CMakeFiles/mc_baselines.dir/ucp.cc.o"
  "CMakeFiles/mc_baselines.dir/ucp.cc.o.d"
  "libmc_baselines.a"
  "libmc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

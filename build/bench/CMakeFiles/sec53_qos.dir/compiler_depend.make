# Empty compiler generated dependencies file for sec53_qos.
# This may be replaced when dependencies are built.

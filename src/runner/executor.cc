#include "runner/executor.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "ckpt/ckpt.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "runner/lease.hh"
#include "runner/run_factory.hh"
#include "runner/sweep.hh"
#include "sim/simulation.hh"
#include "stats/registry.hh"

namespace morphcache {

CellOutcome
runCellAttempt(const CampaignCell &cell,
               const std::string &ckpt_path,
               const CellAttemptOptions &opts)
{
    BuiltRun run = buildRun(cell.spec);
    StatsRegistry registry;
    StatsMeta meta;
    meta.seed = cell.spec.seed;
    meta.configHash = configHashHex(describe(cell.spec));
    registry.setMeta(meta);
    run.system->registerStats(registry);

    Simulation simulation(*run.system, *run.workload, run.sim);
    if (opts.wantStatsJson)
        simulation.setRegistry(&registry);

    CkptRunState state;
    state.simulation = &simulation;
    state.system = run.system.get();
    state.workload = run.workload.get();
    state.registry = opts.wantStatsJson ? &registry : nullptr;

    std::uint64_t last_ckpt = 0;
    if (fileExists(ckpt_path) || fileExists(ckpt_path + ".prev")) {
        const RestoreOutcome restored =
            restoreCheckpointChain(ckpt_path, cell.spec, state);
        last_ckpt = restored.epochsCompleted;
    }

    const bool have_deadline = opts.cellTimeoutSec > 0.0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opts.cellTimeoutSec));

    while (!simulation.done()) {
        if (ckptInterruptRequested()) {
            writeCheckpoint(ckpt_path, cell.spec, state);
            throw CellInterrupted{};
        }
        simulation.stepEpoch();
        if (opts.ckptEvery != 0 &&
            simulation.recordedEpochs() >=
                last_ckpt + opts.ckptEvery) {
            writeCheckpoint(ckpt_path, cell.spec, state);
            last_ckpt = simulation.recordedEpochs();
        }
        if (have_deadline &&
            std::chrono::steady_clock::now() > deadline) {
            throw SimError(
                "watchdog: cell exceeded its wall-clock budget "
                "and was cancelled");
        }
    }

    const RunResult result = simulation.finish();
    CellOutcome o;
    o.ok = true;
    o.label = cell.label;
    o.seed = cell.spec.seed;
    o.throughput = result.avgThroughput;
    o.performance = result.performance;
    if (const auto *morph = dynamic_cast<const MorphCacheSystem *>(
            run.system.get())) {
        o.merges = morph->controller().stats().merges;
        o.splits = morph->controller().stats().splits;
        o.finalTopology = morph->hierarchy().topology().name();
    } else {
        o.finalTopology = run.system->name();
    }
    if (opts.wantStatsJson)
        o.statsJson = registry.jsonString();
    return o;
}

namespace {

/**
 * The leases this worker process currently holds, shared between
 * claim threads (which add/update/remove entries) and the single
 * heartbeat thread (which renews every entry). Generations never
 * change while a lease is held, so concurrent renewals only ever
 * push the deadline; attempts are mirrored in so a reclaimer who
 * takes over after our death inherits the freshest count.
 */
class HeldLeases
{
  public:
    void
    add(const LeaseInfo &lease)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        held_[lease.index] = lease;
    }

    bool
    contains(std::size_t index)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return held_.find(index) != held_.end();
    }

    void
    setAttempts(std::size_t index, std::uint64_t attempts)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = held_.find(index);
        if (it != held_.end())
            it->second.attempts = attempts;
    }

    void
    remove(std::size_t index)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        held_.erase(index);
    }

    std::vector<LeaseInfo>
    snapshot()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<LeaseInfo> out;
        out.reserve(held_.size());
        for (const auto &kv : held_)
            out.push_back(kv.second);
        return out;
    }

    void
    updateDeadline(const LeaseInfo &renewed)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = held_.find(renewed.index);
        // Only refresh an entry the claim thread still owns — if it
        // released between our snapshot and now, re-adding would
        // resurrect a dead entry.
        if (it != held_.end() &&
            it->second.generation == renewed.generation) {
            it->second.deadline = renewed.deadline;
        }
    }

  private:
    std::mutex mutex_;
    std::map<std::size_t, LeaseInfo> held_;
};

/** Shared mutable state of one worker process's executor run. */
struct ExecutorCtx
{
    const std::vector<CampaignCell> &cells;
    const ExecutorOptions &opts;
    std::string dir;
    std::uint64_t hash = 0;
    ManifestLog log;
    HeldLeases held;
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> failedCells{0};
    std::atomic<std::size_t> reclaimed{0};
    std::atomic<std::size_t> fenced{0};
    std::atomic<bool> interrupted{false};
    std::atomic<bool> stopHeartbeat{false};
    std::mutex heartbeatMutex;
    std::condition_variable heartbeatCv;

    ExecutorCtx(const std::vector<CampaignCell> &c,
                const ExecutorOptions &o)
        : cells(c), opts(o),
          dir(campaignStateDir(o.manifestPath)),
          log(o.manifestPath)
    {
    }
};

/**
 * Append a manifest event, absorbing I/O failure into a warning. In
 * the executor the manifest is a progress journal, not ground truth
 * (result files are), and an append failure must not unwind a claim
 * thread mid-lease — the worker keeps driving the cell and the only
 * cost of the lost event is attempt-count freshness for a future
 * reclaimer.
 */
void
appendQuiet(ExecutorCtx &ctx, std::size_t index, const char *status,
            std::uint64_t attempts)
{
    try {
        ctx.log.appendCell(index, status, attempts);
    } catch (const CkptError &err) {
        warn("worker %s: manifest append (cell %zu -> %s) "
             "failed: %s",
             ctx.opts.workerId.c_str(), index, status, err.what());
    }
}

/**
 * Drive one claimed cell through its retry budget. The lease stays
 * held throughout (the heartbeat thread renews it); it is released
 * only after the result is durable or on interrupt. Never throws —
 * losing the lease (fencing) or exhausting retries are both normal
 * outcomes of a chaotic fleet.
 */
void
driveClaimedCell(ExecutorCtx &ctx, std::size_t index,
                 LeaseInfo mine)
{
    const CampaignCell &cell = ctx.cells[index];
    std::uint64_t attempts = mine.attempts;
    const std::uint64_t budget = 1 + ctx.opts.retryCells;

    auto commit = [&](const CellOutcome &o) -> bool {
        const std::string doc = serializeOutcome(o);
        try {
            commitCellResult(ctx.dir, index, mine, doc);
            return true;
        } catch (const LeaseError &err) {
            // Fenced out: a reclaimer decided we were dead and owns
            // the cell now. Abandon the work — the result it will
            // commit is byte-identical anyway.
            ++ctx.fenced;
            warn("worker %s: %s", ctx.opts.workerId.c_str(),
                 err.what());
            return false;
        }
    };

    while (true) {
        if (ckptInterruptRequested()) {
            ctx.interrupted = true;
            break;
        }
        appendQuiet(ctx, index, "running", attempts);
        ctx.held.setAttempts(index, attempts);
        try {
            CellOutcome o = runCellAttempt(
                cell, cellCkptPath(ctx.dir, index),
                CellAttemptOptions{ctx.opts.ckptEvery,
                                   ctx.opts.cellTimeoutSec,
                                   ctx.opts.wantStatsJson});
            o.attempts = attempts + 1;
            if (commit(o)) {
                appendQuiet(ctx, index, "done", attempts + 1);
                ++ctx.completed;
            }
            break;
        } catch (const CellInterrupted &) {
            // Checkpoint written; the manifest still says `running`
            // with our attempt count, so whoever claims the cell
            // next resumes from it with the right budget left.
            ctx.interrupted = true;
            break;
        } catch (const std::exception &err) {
            ++attempts;
            appendQuiet(ctx, index, "failed", attempts);
            ctx.held.setAttempts(index, attempts);
            warn("campaign cell %zu (%s) try %llu failed: %s",
                 index, cell.label.c_str(),
                 static_cast<unsigned long long>(attempts),
                 err.what());
            if (attempts >= budget) {
                CellOutcome o;
                o.failed = true;
                o.label = cell.label;
                o.seed = cell.spec.seed;
                o.attempts = attempts;
                o.error = err.what();
                if (commit(o)) {
                    ++ctx.completed;
                    ++ctx.failedCells;
                }
                break;
            }
            // Seeded deterministic jitter spreads the fleet's
            // retries; the heartbeat thread keeps the lease alive
            // while we wait.
            std::this_thread::sleep_for(std::chrono::milliseconds(
                retryDelayMs(ctx.hash, index, attempts)));
        }
    }
    ctx.held.remove(index);
    releaseLease(ctx.dir, mine);
}

/**
 * One claim thread: scan for cells without results, claim what it
 * can (stealing expired leases), and drive each claimed cell to a
 * durable result. Exits when every cell has a result or on
 * interrupt. `slot` staggers the scan origin so a fleet's threads
 * fan out across the cell list instead of racing for cell 0.
 */
void
claimLoop(ExecutorCtx &ctx, unsigned slot, unsigned slots)
{
    const std::size_t n = ctx.cells.size();
    const double poll_sec =
        std::min(1.0, std::max(0.05, ctx.opts.leaseTtlSec / 4.0));

    while (!ckptInterruptRequested() && !ctx.interrupted) {
        // Refold once per pass: reclaimed cells inherit the larger
        // of the lease's attempt count and the manifest's (a clean
        // release loses the lease file but never the events).
        std::vector<CellProgress> progress;
        try {
            progress = foldManifest(ctx.opts.manifestPath, n,
                                    ctx.hash);
        } catch (const CkptError &err) {
            // A torn header read can only mean the manifest is
            // being rewritten or the filesystem hiccuped; back off
            // and rescan rather than killing the worker.
            warn("worker %s: manifest fold failed (%s); retrying",
                 ctx.opts.workerId.c_str(), err.what());
            std::this_thread::sleep_for(
                std::chrono::duration<double>(poll_sec));
            continue;
        }

        bool pending_left = false;
        bool claimed_any = false;
        for (std::size_t k = 0; k < n; ++k) {
            if (ckptInterruptRequested() || ctx.interrupted)
                break;
            const std::size_t i =
                (k + slot * (n / std::max(1u, slots))) % n;
            if (fileExists(cellResultPath(ctx.dir, i)))
                continue;
            pending_left = true;
            // Never steal from a sibling thread: if this process
            // already drives the cell, its lease expiring only
            // means our own heartbeat stalled (machine overload) —
            // reclaiming it here would have two threads of one
            // worker racing on the same cell state.
            if (ctx.held.contains(i))
                continue;

            LeaseInfo mine;
            LeaseClaim claim;
            try {
                claim = tryClaimCell(ctx.dir, i,
                                     ctx.opts.workerId,
                                     ctx.opts.leaseTtlSec, mine);
            } catch (const LeaseError &err) {
                warn("worker %s: claim of cell %zu failed: %s",
                     ctx.opts.workerId.c_str(), i, err.what());
                continue;
            }
            if (claim != LeaseClaim::Claimed)
                continue;
            // A second look after the claim: the previous owner may
            // have committed its result between our existence check
            // and the claim; never rerun a finished cell.
            if (fileExists(cellResultPath(ctx.dir, i))) {
                releaseLease(ctx.dir, mine);
                continue;
            }
            if (mine.generation > 1)
                ++ctx.reclaimed;
            if (progress[i].attempts > mine.attempts)
                mine.attempts = progress[i].attempts;
            ctx.held.add(mine);
            claimed_any = true;
            driveClaimedCell(ctx, i, mine);
        }

        if (!pending_left)
            break;
        if (!claimed_any) {
            // Everything unfinished is leased to live workers: wait
            // for them to finish or their leases to expire (either
            // way the next pass makes progress).
            std::this_thread::sleep_for(
                std::chrono::duration<double>(poll_sec));
        }
    }
}

/** Renew every held lease well inside the TTL. */
void
heartbeatLoop(ExecutorCtx &ctx)
{
    const double interval_sec =
        std::min(10.0, std::max(0.05, ctx.opts.leaseTtlSec / 3.0));
    std::unique_lock<std::mutex> lock(ctx.heartbeatMutex);
    while (!ctx.stopHeartbeat) {
        ctx.heartbeatCv.wait_for(
            lock, std::chrono::duration<double>(interval_sec));
        if (ctx.stopHeartbeat)
            break;
        lock.unlock();
        for (LeaseInfo lease : ctx.held.snapshot()) {
            try {
                if (renewLease(ctx.dir, lease,
                               ctx.opts.leaseTtlSec)) {
                    ctx.held.updateDeadline(lease);
                } else {
                    // Fenced out mid-run (we were presumed dead).
                    // The claim thread's commit will hit the fence
                    // and abandon the cell; nothing to do here.
                    warn("worker %s: lost lease on cell %llu to a "
                         "reclaimer",
                         ctx.opts.workerId.c_str(),
                         static_cast<unsigned long long>(
                             lease.index));
                }
            } catch (const LeaseError &err) {
                warn("worker %s: heartbeat on cell %llu failed: %s",
                     ctx.opts.workerId.c_str(),
                     static_cast<unsigned long long>(lease.index),
                     err.what());
            }
        }
        lock.lock();
    }
}

} // namespace

ExecutorReport
runExecutor(const std::vector<CampaignCell> &cells,
            const ExecutorOptions &opts)
{
    if (opts.manifestPath.empty())
        throw ConfigError("executor requires a manifest path");
    if (cells.empty())
        throw ConfigError("campaign has no cells");
    if (opts.leaseTtlSec <= 0.0)
        throw ConfigError("lease TTL must be positive");
    if (!fileExists(opts.manifestPath)) {
        throw ConfigError("campaign manifest '" + opts.manifestPath +
                          "' does not exist; run `mc_campaign init` "
                          "first");
    }

    ExecutorOptions normalized = opts;
    if (normalized.workerId.empty())
        normalized.workerId = defaultWorkerId();
    if (normalized.jobs == 0)
        normalized.jobs = 1;

    ExecutorCtx ctx(cells, normalized);
    ctx.log.setWorker(normalized.workerId);
    ctx.hash = campaignHash(cells);
    // Fail fast on a header mismatch before claiming anything.
    foldManifest(normalized.manifestPath, cells.size(), ctx.hash);

    std::thread heartbeat([&ctx] { heartbeatLoop(ctx); });
    std::vector<std::thread> claimers;
    claimers.reserve(normalized.jobs);
    for (unsigned t = 0; t < normalized.jobs; ++t) {
        claimers.emplace_back([&ctx, t, &normalized] {
            claimLoop(ctx, t, normalized.jobs);
        });
    }
    for (std::thread &t : claimers)
        t.join();
    {
        std::lock_guard<std::mutex> lock(ctx.heartbeatMutex);
        ctx.stopHeartbeat = true;
    }
    ctx.heartbeatCv.notify_all();
    heartbeat.join();

    ExecutorReport report;
    report.completed = ctx.completed.load();
    report.failedCells = ctx.failedCells.load();
    report.reclaimed = ctx.reclaimed.load();
    report.fenced = ctx.fenced.load();
    report.interrupted =
        ctx.interrupted.load() || ckptInterruptRequested();
    if (!report.interrupted) {
        report.campaignComplete = true;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (!fileExists(cellResultPath(ctx.dir, i))) {
                report.campaignComplete = false;
                break;
            }
        }
    }
    return report;
}

} // namespace morphcache

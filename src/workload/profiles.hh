/**
 * @file
 * Benchmark characterization database (paper Table 4).
 *
 * Real SPEC CPU 2006 / PARSEC binaries are not available offline,
 * so the workload generators are *calibrated to the paper's own
 * characterization*: Table 4 gives, per benchmark, the average
 * active cache footprint (ACF, as a fraction of a 256 KB L2 /
 * 1 MB L3 slice), its temporal standard deviation, and — for the
 * multithreaded PARSEC apps — the spatial standard deviation
 * across threads. Those statistics are exactly the inputs
 * MorphCache's reconfiguration logic keys on, so generators that
 * reproduce them exercise the same decision space the paper
 * evaluated.
 */

#ifndef MORPHCACHE_WORKLOAD_PROFILES_HH
#define MORPHCACHE_WORKLOAD_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace morphcache {

/** One benchmark row of Table 4. */
struct BenchmarkProfile
{
    /** Canonical benchmark name. */
    const char *name = "";
    /** Average L2-slice ACF fraction. */
    double l2Acf = 0.5;
    /** Temporal std-dev of the L2 ACF. */
    double l2SigmaT = 0.1;
    /** Average L3-slice ACF fraction. */
    double l3Acf = 0.5;
    /** Temporal std-dev of the L3 ACF. */
    double l3SigmaT = 0.1;
    /**
     * Paper class (0..3): high/low L2 ACF x high/low L3 ACF.
     * -1 for PARSEC entries (unclassified in the paper).
     */
    int cls = -1;
    /** Multithreaded (PARSEC) benchmark. */
    bool multithreaded = false;
    /** Spatial std-dev across threads (PARSEC only). */
    double l2SigmaS = 0.0;
    double l3SigmaS = 0.0;
    /**
     * Fraction of references directed at the address-space-shared
     * region (PARSEC only). Not a Table 4 column; set from the
     * paper's qualitative discussion (Figure 2(b) / Section 5.2:
     * dedup, freqmine, canneal, facesim, ferret and x264 benefit
     * most from shared topologies).
     */
    double sharedFraction = 0.0;
};

/** All 31 SPEC CPU 2006 rows of Table 4. */
const std::vector<BenchmarkProfile> &specProfiles();

/** All 12 PARSEC rows of Table 4. */
const std::vector<BenchmarkProfile> &parsecProfiles();

/** Find a profile by name anywhere in the database (fatal if absent). */
const BenchmarkProfile &profileByName(const std::string &name);

/** One multiprogrammed workload mix (Table 5). */
struct MixSpec
{
    const char *name = "";
    /** Class census (class0, class1, class2, class3). */
    int census[4] = {0, 0, 0, 0};
    /** The 16 member benchmarks in core order. */
    std::vector<const char *> benchmarks;
};

/** The 12 SPEC mixes of Table 5. */
const std::vector<MixSpec> &mixSpecs();

/** Find a mix by name ("MIX 01".."MIX 12"); fatal if absent. */
const MixSpec &mixByName(const std::string &name);

} // namespace morphcache

#endif // MORPHCACHE_WORKLOAD_PROFILES_HH

/**
 * @file
 * Unit tests for the common utilities (rng, bitops, durability).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "common/serial.hh"

namespace morphcache {
namespace {

TEST(Bitops, PowerOfTwoDetection)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(~0ULL), 63u);
}

TEST(Bitops, BitsExtraction)
{
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffULL);
    EXPECT_EQ(bits(0xabcd, 0, 4), 0xdULL);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
}

TEST(Bitops, DivCeil)
{
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
    EXPECT_EQ(divCeil(1, 64), 1u);
}

TEST(Bitops, SatSubSaturatesAtZero)
{
    EXPECT_EQ(satSub(10u, 3u), 7u);
    EXPECT_EQ(satSub(3u, 10u), 0u);
    EXPECT_EQ(satSub(0u, 0u), 0u);
    EXPECT_EQ(satSub(~0ULL, 1ULL), ~0ULL - 1);
    EXPECT_EQ(satSub(std::uint64_t{0}, ~0ULL), 0ULL);
    // The second operand is a non-deduced context, so a narrower
    // literal follows the first operand's type instead of
    // poisoning deduction.
    EXPECT_EQ(satSub(std::uint64_t{5}, 1u), 4ULL);
}

TEST(Bitops, SatDecStopsAtZero)
{
    std::uint32_t v = 2;
    EXPECT_EQ(satDec(v), 1u);
    EXPECT_EQ(satDec(v), 0u);
    EXPECT_EQ(satDec(v), 0u); // saturates instead of wrapping
    EXPECT_EQ(v, 0u);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Serial, FsyncGateMatchesEnvironment)
{
    const char *env = std::getenv("MC_NO_FSYNC");
    const bool disabled =
        env != nullptr && *env != '\0' && *env != '0';
    EXPECT_EQ(fsyncEnabled(), !disabled);
}

/**
 * Regression: atomicWriteFile must actually drive the fsync path —
 * file before the rename, containing directory after — unless the
 * MC_NO_FSYNC escape hatch suppressed it. The process-wide counter
 * is the witness; a refactor that silently drops the fsyncs (the
 * classic "rename is enough" mistake) fails here.
 */
TEST(Serial, AtomicWriteFsyncsFileAndDirectoryUnlessDisabled)
{
    const std::string path =
        std::string(::testing::TempDir()) + "fsync_probe.bin";
    const std::uint64_t before = fsyncCount();
    const char payload[] = "durable";
    atomicWriteFile(path, payload, sizeof(payload));
    const std::uint64_t after = fsyncCount();
    if (fsyncEnabled()) {
        EXPECT_GE(after - before, 2u)
            << "expected a file fsync and a directory fsync";
    } else {
        EXPECT_EQ(after, before)
            << "MC_NO_FSYNC must suppress every fsync";
    }
    // The write itself must land either way.
    const std::vector<std::uint8_t> bytes = readFileBytes(path);
    EXPECT_EQ(bytes.size(), sizeof(payload));
    std::remove(path.c_str());
}

} // namespace
} // namespace morphcache

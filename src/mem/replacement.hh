/**
 * @file
 * Replacement policies for cache slices.
 *
 * Two policies are modelled, matching Section 2.2 of the paper:
 * exact LRU via global timestamps (the stamps live in the slice's
 * per-way stamp array), and generalized tree pseudo-LRU
 * (Robinson [24]) as the practical alternative. When slices are
 * merged, timestamps compose directly; PLRU trees are kept per slice
 * and composed with a per-set rotor, mirroring the paper's
 * observation that merged trees may be combined "in any order" and
 * future accesses quickly rebuild a meaningful ordering.
 */

#ifndef MORPHCACHE_MEM_REPLACEMENT_HH
#define MORPHCACHE_MEM_REPLACEMENT_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/serial.hh"

namespace morphcache {

/** Selects how victims are chosen within a physical slice. */
enum class ReplPolicy : std::uint8_t {
    /** Exact least-recently-used via global stamps. */
    LRU,
    /** Generalized tree pseudo-LRU. */
    TreePLRU,
};

/**
 * A binary tree of direction bits over `assoc` ways (assoc must be a
 * power of two). Bit semantics: 0 means the PLRU victim is in the
 * left subtree, 1 the right subtree; an access flips the bits on its
 * path to point away from the accessed way.
 */
class PlruTree
{
  public:
    /** @param assoc Number of ways covered (power of two, >= 1). */
    explicit PlruTree(std::uint32_t assoc);

    /** Record an access to `way`, protecting it from replacement. */
    void touch(std::uint32_t way);

    /** Way the tree currently designates as the victim. */
    std::uint32_t victim() const;

    /** Number of ways covered. */
    std::uint32_t assoc() const { return assoc_; }

    /** Raw direction bits (for tests). */
    std::uint64_t bits() const { return bits_; }

    /** Serialize direction bits; geometry is construction-time. */
    void saveState(CkptWriter &w) const { w.u64(bits_); }
    void loadState(CkptReader &r) { bits_ = r.u64(); }

  private:
    std::uint32_t assoc_;  // ckpt: derived(PlruTree)
    std::uint32_t levels_; // ckpt: derived(PlruTree)
    /** Heap-ordered direction bits; node 1 is the root. */
    std::uint64_t bits_ = 0;
};

/**
 * Per-slice PLRU state: one tree per set.
 */
class PlruState
{
  public:
    PlruState(std::uint64_t num_sets, std::uint32_t assoc);

    /** Tree for a given set. */
    PlruTree &tree(std::uint64_t set);
    const PlruTree &tree(std::uint64_t set) const;

    void
    saveState(CkptWriter &w) const
    {
        w.u64(trees_.size());
        for (const PlruTree &t : trees_)
            t.saveState(w);
    }

    void
    loadState(CkptReader &r)
    {
        r.expectU64("PLRU tree count", trees_.size());
        for (PlruTree &t : trees_)
            t.loadState(r);
    }

  private:
    std::vector<PlruTree> trees_;
};

} // namespace morphcache

#endif // MORPHCACHE_MEM_REPLACEMENT_HH

# Empty dependencies file for fig14_speedups.
# This may be replaced when dependencies are built.

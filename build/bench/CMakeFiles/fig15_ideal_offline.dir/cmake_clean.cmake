file(REMOVE_RECURSE
  "CMakeFiles/fig15_ideal_offline.dir/fig15_ideal_offline.cc.o"
  "CMakeFiles/fig15_ideal_offline.dir/fig15_ideal_offline.cc.o.d"
  "fig15_ideal_offline"
  "fig15_ideal_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ideal_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Unit tests for CacheLevelModel: group lookup, merged-capacity
 * sharing, lazy invalidation, latency accounting, footprint
 * queries, and the PIPP/DSR policy primitives.
 */

#include <gtest/gtest.h>

#include "hierarchy/cache_level.hh"

namespace morphcache {
namespace {

LevelParams
smallLevel(std::uint32_t slices = 4)
{
    LevelParams params;
    params.name = "L2";
    params.numSlices = slices;
    params.sliceGeom = CacheGeometry{16 * 1024, 4, 64}; // 256 lines
    params.localHitLatency = 10;
    params.chargeBusPenalty = true;
    return params;
}

/** Distinct lines mapping to one set of the small geometry. */
Addr
lineInSet(std::uint64_t set, std::uint64_t k)
{
    return set + (k + 1) * smallLevel().sliceGeom.numSets();
}

TEST(CacheLevel, PrivateLookupMiss)
{
    CacheLevelModel level(smallLevel());
    const auto out = level.lookup(0, 0x100, 0);
    EXPECT_FALSE(out.hit);
    EXPECT_EQ(out.latency, 10u);
    EXPECT_EQ(level.stats().misses, 1u);
}

TEST(CacheLevel, InsertThenLocalHit)
{
    CacheLevelModel level(smallLevel());
    level.insert(0, 0x100, false);
    const auto out = level.lookup(0, 0x100, 0);
    EXPECT_TRUE(out.hit);
    EXPECT_FALSE(out.remote);
    EXPECT_EQ(out.slice, 0);
    EXPECT_EQ(out.latency, 10u);
}

TEST(CacheLevel, PrivateGroupsIsolate)
{
    CacheLevelModel level(smallLevel());
    level.insert(0, 0x100, false);
    // Core 1 is in a different (private) group: no hit.
    EXPECT_FALSE(level.lookup(1, 0x100, 0).hit);
}

TEST(CacheLevel, MergedRemoteHitPays25Cycles)
{
    CacheLevelModel level(smallLevel());
    level.insert(0, 0x100, false);
    level.configure({{0, 1}, {2}, {3}});
    const auto out = level.lookup(1, 0x100, 0);
    EXPECT_TRUE(out.hit);
    EXPECT_TRUE(out.remote);
    EXPECT_EQ(out.slice, 0);
    // 10 local + 15 bus = the paper's merged-hit latency.
    EXPECT_EQ(out.latency, 25u);
}

TEST(CacheLevel, StaticModeDoesNotChargeBus)
{
    LevelParams params = smallLevel();
    params.chargeBusPenalty = false;
    CacheLevelModel level(params);
    level.insert(0, 0x100, false);
    level.configure({{0, 1}, {2}, {3}});
    const auto out = level.lookup(1, 0x100, 0);
    EXPECT_TRUE(out.hit);
    EXPECT_EQ(out.latency, 10u);
}

TEST(CacheLevel, MergedCapacityIsShared)
{
    CacheLevelModel level(smallLevel(2));
    level.configure({{0, 1}});
    const std::uint64_t set = 3;
    // Insert 8 lines into one set: 4 ways/slice x 2 slices all hold.
    for (std::uint64_t k = 0; k < 8; ++k)
        level.insert(0, lineInSet(set, k), false);
    for (std::uint64_t k = 0; k < 8; ++k)
        EXPECT_TRUE(level.presentInGroup(0, lineInSet(set, k)));
    // A 9th line evicts exactly one (the LRU).
    level.insert(0, lineInSet(set, 8), false);
    int resident = 0;
    for (std::uint64_t k = 0; k < 9; ++k)
        resident += level.presentInGroup(0, lineInSet(set, k));
    EXPECT_EQ(resident, 8);
    EXPECT_FALSE(level.presentInGroup(0, lineInSet(set, 0)));
}

TEST(CacheLevel, SplitKeepsLinesInTheirPhysicalSlices)
{
    CacheLevelModel level(smallLevel(2));
    level.configure({{0, 1}});
    // Fill the merged set beyond one slice's ways so lines land in
    // both physical slices.
    const std::uint64_t set = 5;
    for (std::uint64_t k = 0; k < 8; ++k)
        level.insert(0, lineInSet(set, k), false);
    const std::uint64_t in_slice0 = level.slice(0).validLineCount();
    const std::uint64_t in_slice1 = level.slice(1).validLineCount();
    EXPECT_EQ(in_slice0 + in_slice1, 8u);
    EXPECT_GT(in_slice1, 0u); // spillover happened

    // Split: no data motion, each slice keeps its ways.
    level.configure({{0}, {1}});
    EXPECT_EQ(level.slice(0).validLineCount(), in_slice0);
    EXPECT_EQ(level.slice(1).validLineCount(), in_slice1);
}

TEST(CacheLevel, LazyInvalidationDropsDuplicates)
{
    CacheLevelModel level(smallLevel(2));
    // Same line in both slices while private (e.g. shared data).
    level.insert(0, 0x80, false);
    level.insert(1, 0x80, false);
    EXPECT_TRUE(level.slice(0).probe(0x80).has_value());
    EXPECT_TRUE(level.slice(1).probe(0x80).has_value());

    // Merge, then touch the line: exactly one copy must survive.
    level.configure({{0, 1}});
    const auto out = level.lookup(0, 0x80, 0);
    EXPECT_TRUE(out.hit);
    EXPECT_EQ(level.stats().lazyInvalidations, 1u);
    const int copies = level.slice(0).probe(0x80).has_value() +
                       level.slice(1).probe(0x80).has_value();
    EXPECT_EQ(copies, 1);
}

TEST(CacheLevel, AcfvGranularityIsTagSized)
{
    // 16 KB 4-way: 256 lines, 64 sets -> one footprint unit per 64
    // consecutive lines, the tag granularity of Section 2.1.
    CacheLevelModel level(smallLevel());
    EXPECT_EQ(level.acfvGranularity(), 64u);
}

TEST(CacheLevel, AcfvTracksDispersedFootprint)
{
    CacheLevelModel level(smallLevel());
    // One line in each of 64 distinct tag granules (offset spread
    // across sets): half the 128 ACFV bits.
    for (Addr granule = 0; granule < 64; ++granule)
        level.insert(0, granule * 64 + (granule % 64), false);
    const double util = level.utilization({0});
    EXPECT_GT(util, 0.35);
    EXPECT_LT(util, 0.6);
}

TEST(CacheLevel, SequentialStreamReadsTinyFootprint)
{
    // A sequential stream resident in the slice spans few tags, so
    // its footprint estimate stays small — the reason Table 4 shows
    // libquantum at 0.26 despite touching megabytes.
    CacheLevelModel level(smallLevel());
    for (Addr a = 0; a < 4096; ++a)
        level.insert(0, a, false);
    // Slice holds <=256 lines = <=4 consecutive granules.
    EXPECT_LT(level.utilization({0}), 0.10);
}

TEST(CacheLevel, ResetFootprintsClears)
{
    CacheLevelModel level(smallLevel());
    for (Addr a = 0; a < 64; ++a)
        level.insert(0, a, false);
    EXPECT_GT(level.utilization({0}), 0.0);
    level.resetFootprints();
    EXPECT_EQ(level.utilization({0}), 0.0);
}

TEST(CacheLevel, OverlapSeesSharedData)
{
    CacheLevelModel level(smallLevel());
    // Cores 0 and 1 touch the same dispersed granules in their own
    // slices.
    for (Addr granule = 0; granule < 32; ++granule) {
        level.insert(0, granule * 64, false);
        level.insert(1, granule * 64, false);
    }
    EXPECT_GT(level.overlap({0}, {1}), 0.9);
    // Core 2 touches disjoint granules.
    for (Addr granule = 32; granule < 64; ++granule)
        level.insert(2, granule * 64, false);
    EXPECT_LT(level.overlap({0}, {2}), 0.3);
}

TEST(CacheLevel, MarkDirtyFindsGroupLines)
{
    CacheLevelModel level(smallLevel());
    level.insert(0, 0x42, false);
    EXPECT_TRUE(level.markDirty(0, 0x42));
    EXPECT_FALSE(level.markDirty(0, 0x999));
    level.configure({{0, 1}, {2}, {3}});
    EXPECT_TRUE(level.markDirty(1, 0x42)); // via the merged group
}

TEST(CacheLevel, InvalidateInSlicesReportsDirty)
{
    CacheLevelModel level(smallLevel());
    level.insert(0, 0x42, true);
    EXPECT_TRUE(level.invalidateInSlices({0}, 0x42));
    EXPECT_FALSE(level.presentInGroup(0, 0x42));
    EXPECT_FALSE(level.invalidateInSlices({0}, 0x42));
}

TEST(CacheLevel, FindInOtherGroups)
{
    CacheLevelModel level(smallLevel());
    level.insert(2, 0x55, false);
    const auto found = level.findInOtherGroups(0, 0x55);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, 2);
    EXPECT_FALSE(level.findInOtherGroups(2, 0x55).has_value());
}

TEST(CacheLevel, InvalidateOutsideGroupSparesOwnCopy)
{
    CacheLevelModel level(smallLevel());
    level.insert(0, 0x66, false);
    level.insert(1, 0x66, false);
    level.invalidateOutsideGroup(0, 0x66);
    EXPECT_TRUE(level.presentInGroup(0, 0x66));
    EXPECT_FALSE(level.presentInGroup(1, 0x66));
}

TEST(CacheLevel, SpanPenaltyForNonNeighborGroups)
{
    LevelParams params = smallLevel();
    params.spanPenaltyCyclesPerTile = 2;
    CacheLevelModel level(params);
    level.insert(0, 0x100, false);
    // Group {0,3} spans 4 tiles with only 2 members: 2 extra tiles.
    level.configure({{0, 3}, {1}, {2}});
    const auto out = level.lookup(3, 0x100, 0);
    EXPECT_TRUE(out.hit);
    EXPECT_TRUE(out.remote);
    // 10 local + 15 bus + 2*2 span stretch.
    EXPECT_EQ(out.latency, 29u);
}

// ---- PIPP/DSR primitives -----------------------------------------

TEST(CacheLevelPolicy, InsertAtLruPositionIsNextVictim)
{
    CacheLevelModel level(smallLevel(1));
    const std::uint64_t set = 1;
    for (std::uint64_t k = 0; k < 4; ++k)
        level.insert(0, lineInSet(set, k), false);
    // Insert at stack position 0 (LRU): evicts current LRU (k=0)
    // and becomes the next victim itself.
    level.insertAtStackPosition(0, lineInSet(set, 10), false, 0);
    EXPECT_FALSE(level.presentInGroup(0, lineInSet(set, 0)));
    level.insert(0, lineInSet(set, 11), false);
    EXPECT_FALSE(level.presentInGroup(0, lineInSet(set, 10)));
}

TEST(CacheLevelPolicy, InsertAtMruSurvives)
{
    CacheLevelModel level(smallLevel(1));
    const std::uint64_t set = 1;
    for (std::uint64_t k = 0; k < 4; ++k)
        level.insert(0, lineInSet(set, k), false);
    level.insertAtStackPosition(0, lineInSet(set, 10), false, 10);
    // Fill three more: the MRU-inserted line must still be there.
    for (std::uint64_t k = 20; k < 23; ++k)
        level.insert(0, lineInSet(set, k), false);
    EXPECT_TRUE(level.presentInGroup(0, lineInSet(set, 10)));
}

TEST(CacheLevelPolicy, PromoteByOneSwapsNeighbors)
{
    CacheLevelModel level(smallLevel(1));
    const std::uint64_t set = 1;
    for (std::uint64_t k = 0; k < 4; ++k)
        level.insert(0, lineInSet(set, k), false);
    // Line k=0 is LRU. Promote it once: now k=1 is LRU.
    const auto way = level.slice(0).probe(lineInSet(set, 0));
    ASSERT_TRUE(way.has_value());
    level.promoteByOne(0, set, *way);
    level.insert(0, lineInSet(set, 9), false);
    EXPECT_TRUE(level.presentInGroup(0, lineInSet(set, 0)));
    EXPECT_FALSE(level.presentInGroup(0, lineInSet(set, 1)));
}

TEST(CacheLevelPolicy, InsertIntoSliceStaysInSlice)
{
    CacheLevelModel level(smallLevel(2));
    level.configure({{0, 1}});
    const auto out = level.insertIntoSlice(0, 1, 0x123, false);
    EXPECT_EQ(out.slice, 1);
    EXPECT_TRUE(level.slice(1).probe(0x123).has_value());
    EXPECT_FALSE(level.slice(0).probe(0x123).has_value());
}

} // namespace
} // namespace morphcache

#include "interconnect/delay_model.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace morphcache {

double
ArbiterTreeFigures::worstPathNs() const
{
    const double request = requestWireNs + requestLogicNs;
    const double grant = grantWireNs + grantLogicNs;
    return request > grant ? request : grant;
}

double
ArbiterTreeFigures::maxFrequencyGhz() const
{
    const double worst = worstPathNs();
    MC_ASSERT(worst > 0.0);
    return 1.0 / worst;
}

ArbiterDelayModel::ArbiterDelayModel(const TechParams &tech)
    : tech_(tech)
{
}

double
ArbiterDelayModel::treeWireMm(std::uint32_t leaves,
                              bool crosses_columns) const
{
    // H-tree style placement along a column of tiles: the level-k
    // arbiter sits midway between the level-(k-1) arbiters (or
    // slices) it joins, so each upward hop doubles: pitch/2, pitch,
    // 2*pitch, ... The worst-case request wire is the sum of hops
    // from the farthest slice up to the segment root.
    std::uint32_t column_leaves = crosses_columns ? leaves / 2 : leaves;
    double hop = tech_.tilePitchMm / 2.0;
    double total = 0.0;
    for (std::uint32_t span = 2; span <= column_leaves; span *= 2) {
        total += hop;
        hop *= 2.0;
    }
    if (crosses_columns) {
        // Top-level hop from a column root to the chip-center root.
        total += tech_.columnSeparationMm / 4.0;
    }
    return total;
}

ArbiterTreeFigures
ArbiterDelayModel::l2Tree() const
{
    ArbiterTreeFigures fig;
    fig.levels = 3;
    fig.numArbiters = 7; // per side of the chip
    fig.totalAreaUm2 = fig.numArbiters * tech_.arbiterAreaUm2;
    const double wire = treeWireMm(8, false) * tech_.wireDelayNsPerMm;
    fig.requestWireNs = wire;
    fig.requestLogicNs = fig.levels * tech_.requestLogicNsPerLevel;
    fig.grantWireNs = wire;
    fig.grantLogicNs = tech_.grantLogicNs;
    return fig;
}

ArbiterTreeFigures
ArbiterDelayModel::l3Tree() const
{
    ArbiterTreeFigures fig;
    fig.levels = 4;
    fig.numArbiters = 15; // across the whole chip
    fig.totalAreaUm2 = fig.numArbiters * tech_.arbiterAreaUm2;
    const double wire = treeWireMm(16, true) * tech_.wireDelayNsPerMm;
    fig.requestWireNs = wire;
    fig.requestLogicNs = fig.levels * tech_.requestLogicNsPerLevel;
    fig.grantWireNs = wire;
    fig.grantLogicNs = tech_.grantLogicNs;
    return fig;
}

TransactionFigures
ArbiterDelayModel::transaction() const
{
    TransactionFigures fig;
    fig.busCycles = 3; // request + grant + data (Section 3.2)
    const double ratio = tech_.coreClockGhz / tech_.busClockGhz;
    fig.cpuCycles =
        static_cast<std::uint32_t>(fig.busCycles * ratio + 0.5);
    fig.cpuCyclesPipelined = static_cast<std::uint32_t>(
        satSub(fig.busCycles, 1u) * ratio + 0.5);
    return fig;
}

} // namespace morphcache

/**
 * @file
 * Decision-provenance event tracing.
 *
 * When a run diverges from the paper, end-of-run aggregates cannot
 * say *which* merge fired on *what* ACF evidence at *which* epoch.
 * The tracer answers that: components emit structured events for
 * every epoch boundary, MSAT classification, accepted merge/split
 * (with the condition — (i) capacity, (ii) sharing, or split — and
 * the utilization/overlap readings that justified it), topology
 * change, quarantine transition, and bus-contention sample.
 *
 * Events flow through a pluggable TraceSink: JSONL (one JSON object
 * per line, the machine-readable default) or Chrome trace-event
 * format (load the file in about://tracing or ui.perfetto.dev for a
 * timeline). Tracing is off by default and zero-allocation when
 * disabled: every emitter checks Tracer::enabled() before touching
 * an event, and events themselves are fixed-size stack objects.
 *
 * Timestamps are *simulated* CPU cycles (plus a per-event sequence
 * number), never wall-clock — two runs with the same seed produce
 * bit-identical trace files.
 */

#ifndef MORPHCACHE_STATS_TRACING_HH
#define MORPHCACHE_STATS_TRACING_HH

#include <cstdint>
#include <cstdio>
#include <istream>
#include <map>
#include <string>
#include <vector>

#include "common/serial.hh"

namespace morphcache {

/**
 * One structured trace event: a type tag plus up to maxFields typed
 * key/value fields. Fixed-size and stack-allocated; string values
 * are borrowed pointers that must outlive the emit() call (sinks
 * serialize immediately).
 */
struct TraceEvent
{
    static constexpr std::size_t maxFields = 12;

    enum class FieldKind : std::uint8_t { U64, F64, Str };

    struct Field
    {
        const char *key = nullptr;
        FieldKind kind = FieldKind::U64;
        std::uint64_t u = 0;
        double f = 0.0;
        const char *s = nullptr;
    };

    explicit TraceEvent(const char *type_) : type(type_) {}

    TraceEvent &
    u64(const char *key, std::uint64_t value)
    {
        Field &field = next(key, FieldKind::U64);
        field.u = value;
        return *this;
    }

    TraceEvent &
    f64(const char *key, double value)
    {
        Field &field = next(key, FieldKind::F64);
        field.f = value;
        return *this;
    }

    TraceEvent &
    str(const char *key, const char *value)
    {
        Field &field = next(key, FieldKind::Str);
        field.s = value;
        return *this;
    }

    const char *type;
    /** Stamped by Tracer::emit(). */
    std::uint64_t epoch = 0;
    std::uint64_t ts = 0;
    std::uint64_t seq = 0;
    Field fields[maxFields];
    std::size_t numFields = 0;

  private:
    Field &next(const char *key, FieldKind kind);
};

/** Receives serialized trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** One event; must serialize borrowed strings immediately. */
    virtual void event(const TraceEvent &ev) = 0;

    /** End of stream (write trailers, flush). */
    virtual void finish() {}
};

/**
 * The handle components emit through. A null sink disables tracing;
 * emitters must gate event construction on enabled() so the
 * disabled path costs one pointer test.
 */
class Tracer
{
  public:
    explicit Tracer(TraceSink *sink = nullptr) : sink_(sink) {}

    bool enabled() const { return sink_ != nullptr; }

    void setSink(TraceSink *sink) { sink_ = sink; }

    /** Current epoch, stamped into every event. */
    void setEpoch(std::uint64_t epoch) { epoch_ = epoch; }
    std::uint64_t epoch() const { return epoch_; }

    /** Current simulated time (CPU cycles), stamped into events. */
    void setTime(std::uint64_t cycles) { time_ = cycles; }
    std::uint64_t time() const { return time_; }

    /** Stamp epoch/ts/seq and forward to the sink. */
    void emit(TraceEvent &ev);

    /** Events emitted so far. */
    std::uint64_t eventCount() const { return seq_; }

    /**
     * Serialize/restore the stamping state (epoch, simulated time,
     * sequence counter) so a resumed run numbers events exactly
     * where the interrupted run stopped.
     */
    void
    saveState(CkptWriter &w) const
    {
        w.u64(epoch_);
        w.u64(time_);
        w.u64(seq_);
    }

    void
    loadState(CkptReader &r)
    {
        epoch_ = r.u64();
        time_ = r.u64();
        seq_ = r.u64();
    }

  private:
    TraceSink *sink_; // ckpt: transient(wiring; reattached by owner)
    std::uint64_t epoch_ = 0;
    std::uint64_t time_ = 0;
    std::uint64_t seq_ = 0;
};

/** JSONL sink: one JSON object per line. */
class JsonlTraceSink : public TraceSink
{
  public:
    /** Opens `path` for writing; typed IoError on failure. */
    explicit JsonlTraceSink(const std::string &path);

    /**
     * Resume an interrupted trace: truncate `path` to
     * `resume_offset` bytes (the offset a checkpoint recorded) and
     * append from there, discarding any events written after the
     * checkpoint was taken. A truncate failure surfaces as a typed
     * IoError *before* the file is opened for writing, so the
     * pre-resume bytes stay exactly as the checkpoint left them.
     */
    JsonlTraceSink(const std::string &path,
                   std::uint64_t resume_offset);

    ~JsonlTraceSink() override;

    /** Appends one line; typed IoError on write failure. */
    void event(const TraceEvent &ev) override;

    /**
     * Close the file; typed IoError on close failure (a deferred
     * flush error on NFS surfaces here). The destructor calls this
     * too but demotes the error to a warning — callers that need
     * the error call finish() themselves.
     */
    void finish() override;

    /**
     * The tracked file byte offset — the value a checkpoint stores
     * so resume can truncate back to it. Bytes that reached the fd
     * before a failed write still count, so the recorded offset
     * never points past what is on disk.
     */
    std::uint64_t byteOffset() const { return offset_; }

  private:
    std::string path_;
    int fd_ = -1;
    std::uint64_t offset_ = 0;
};

/**
 * Chrome trace-event sink: a JSON array of instant events with
 * `ts` in simulated cycles (rendered as microseconds by the
 * about://tracing / Perfetto timeline).
 */
class ChromeTraceSink : public TraceSink
{
  public:
    explicit ChromeTraceSink(const std::string &path);
    ~ChromeTraceSink() override;

    void event(const TraceEvent &ev) override;

    /** Write the JSON trailer and close; typed IoError on failure
     * (demoted to a warning when invoked from the destructor). */
    void finish() override;

  private:
    std::string path_;
    int fd_ = -1;
    bool first_ = true;
    bool finished_ = false;
};

/** In-memory JSONL sink (tests, determinism checks). */
class StringTraceSink : public TraceSink
{
  public:
    void event(const TraceEvent &ev) override;

    const std::string &text() const { return text_; }
    std::size_t numEvents() const { return numEvents_; }

  private:
    std::string text_;
    std::size_t numEvents_ = 0;
};

/** Serialize one event as a single JSON line (no trailing \n). */
std::string traceEventJson(const TraceEvent &ev);

/** Per-epoch event counts extracted from a JSONL trace. */
struct TraceSummary
{
    /** epoch -> (event type -> count). */
    std::map<std::uint64_t, std::map<std::string, std::uint64_t>>
        epochs;
    std::map<std::string, std::uint64_t> totalByType;
    std::uint64_t totalEvents = 0;
};

/**
 * Summarize a JSONL trace stream: count events per epoch and per
 * type. Lines that are not JSONL trace events are ignored (a Chrome
 * trace will summarize as empty).
 */
TraceSummary summarizeTrace(std::istream &in);

/** Summarize a JSONL trace file; fatal() if unreadable. */
TraceSummary summarizeTraceFile(const std::string &path);

/** Render a summary as the `--trace-summary` report table. */
std::string formatTraceSummary(const TraceSummary &summary);

} // namespace morphcache

#endif // MORPHCACHE_STATS_TRACING_HH

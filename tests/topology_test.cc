/**
 * @file
 * Unit tests for topology descriptors: partitions, (x:y:z)
 * notation, inclusion feasibility, symmetry detection.
 */

#include <gtest/gtest.h>

#include "hierarchy/topology.hh"

namespace morphcache {
namespace {

TEST(Partition, AllPrivate)
{
    const Partition p = allPrivate(16);
    EXPECT_EQ(p.size(), 16u);
    validatePartition(p, 16);
    EXPECT_TRUE(isAlignedPow2(p));
}

TEST(Partition, AllShared)
{
    const Partition p = allShared(16);
    EXPECT_EQ(p.size(), 1u);
    EXPECT_EQ(p[0].size(), 16u);
    validatePartition(p, 16);
    EXPECT_TRUE(isAlignedPow2(p));
}

TEST(Partition, UniformGroups)
{
    const Partition p = uniformGroups(16, 4);
    EXPECT_EQ(p.size(), 4u);
    for (const auto &g : p)
        EXPECT_EQ(g.size(), 4u);
    EXPECT_EQ(p[1][0], 4);
    validatePartition(p, 16);
}

TEST(Partition, ContiguityDetection)
{
    EXPECT_TRUE(isContiguous({{0, 1}, {2, 3}}));
    EXPECT_FALSE(isContiguous({{0, 2}, {1, 3}}));
}

TEST(Partition, AlignmentDetection)
{
    EXPECT_TRUE(isAlignedPow2({{0, 1}, {2, 3}}));
    EXPECT_FALSE(isAlignedPow2({{0}, {1, 2}, {3}}));   // misaligned
    EXPECT_FALSE(isAlignedPow2({{0, 1, 2}, {3}}));     // non-pow2
}

TEST(Partition, GroupOfSliceLookup)
{
    const Partition p = uniformGroups(8, 2);
    const auto map = groupOfSlice(p, 8);
    EXPECT_EQ(map[0], 0u);
    EXPECT_EQ(map[1], 0u);
    EXPECT_EQ(map[6], 3u);
}

TEST(Topology, SymmetricNotation)
{
    const Topology t = Topology::symmetric(16, 4, 4, 1);
    EXPECT_EQ(t.l2.size(), 4u);   // 4 L2 groups of 4
    EXPECT_EQ(t.l3.size(), 1u);   // 1 L3 group of 16
    EXPECT_EQ(t.name(), "(4:4:1)");
    EXPECT_TRUE(t.isSymmetric());
    EXPECT_TRUE(t.respectsInclusion());
}

TEST(Topology, PaperTopologyNames)
{
    EXPECT_EQ(Topology::symmetric(16, 16, 1, 1).name(), "(16:1:1)");
    EXPECT_EQ(Topology::symmetric(16, 1, 1, 16).name(), "(1:1:16)");
    EXPECT_EQ(Topology::symmetric(16, 1, 16, 1).name(), "(1:16:1)");
    EXPECT_EQ(Topology::symmetric(16, 8, 2, 1).name(), "(8:2:1)");
    EXPECT_EQ(Topology::symmetric(16, 2, 2, 4).name(), "(2:2:4)");
}

TEST(Topology, AllPrivateIsPrivateEverywhere)
{
    const Topology t = Topology::allPrivateTopology(16);
    EXPECT_EQ(t.name(), "(1:1:16)");
    EXPECT_TRUE(t.respectsInclusion());
}

TEST(Topology, InclusionViolationDetected)
{
    // L2 group {0,1} straddles two private L3 groups: a merged L2
    // would outsize its backing L3 slice.
    Topology t;
    t.numCores = 4;
    t.l2 = {{0, 1}, {2}, {3}};
    t.l3 = allPrivate(4);
    EXPECT_FALSE(t.respectsInclusion());

    // With the L3s merged too, it is fine.
    t.l3 = {{0, 1}, {2}, {3}};
    EXPECT_TRUE(t.respectsInclusion());
}

TEST(Topology, AsymmetricDetected)
{
    Topology t;
    t.numCores = 8;
    t.l2 = {{0, 1}, {2}, {3}, {4, 5, 6, 7}};
    t.l3 = {{0, 1, 2, 3}, {4, 5, 6, 7}};
    EXPECT_FALSE(t.isSymmetric());
    EXPECT_TRUE(t.respectsInclusion());
    EXPECT_NE(t.name().find("asym"), std::string::npos);
}

TEST(Topology, EightCoreShapes)
{
    const Topology t = Topology::symmetric(8, 2, 2, 2);
    EXPECT_EQ(t.l2.size(), 4u);
    EXPECT_EQ(t.l3.size(), 2u);
    EXPECT_TRUE(t.respectsInclusion());
    EXPECT_EQ(t.name(), "(2:2:2)");
}

/** Every (x:y:z) factorization of 16 must respect inclusion. */
class SymmetricSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(SymmetricSweep, InclusionHolds)
{
    const auto [x, y, z] = GetParam();
    const Topology t = Topology::symmetric(
        16, static_cast<std::uint32_t>(x),
        static_cast<std::uint32_t>(y), static_cast<std::uint32_t>(z));
    EXPECT_TRUE(t.respectsInclusion());
    EXPECT_TRUE(t.isSymmetric());
    EXPECT_TRUE(t.isPow2Aligned());
}

INSTANTIATE_TEST_SUITE_P(
    AllFactorizations, SymmetricSweep,
    ::testing::Values(std::tuple{1, 1, 16}, std::tuple{1, 2, 8},
                      std::tuple{1, 4, 4}, std::tuple{1, 8, 2},
                      std::tuple{1, 16, 1}, std::tuple{2, 1, 8},
                      std::tuple{2, 2, 4}, std::tuple{2, 4, 2},
                      std::tuple{2, 8, 1}, std::tuple{4, 1, 4},
                      std::tuple{4, 2, 2}, std::tuple{4, 4, 1},
                      std::tuple{8, 1, 2}, std::tuple{8, 2, 1},
                      std::tuple{16, 1, 1}));

} // namespace
} // namespace morphcache

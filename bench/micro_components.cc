/**
 * @file
 * Google-benchmark microbenchmarks of the hot components: slice
 * probes, group lookups, ACFV updates, arbiter cycles, and
 * generator throughput. These are engineering benchmarks for the
 * simulator itself (the paper experiments live in the other bench
 * binaries).
 */

#include <benchmark/benchmark.h>

#include "acf/acfv.hh"
#include "hierarchy/cache_level.hh"
#include "hierarchy/hierarchy.hh"
#include "interconnect/arbiter.hh"
#include "stats/profiler.hh"
#include "stats/registry.hh"
#include "stats/tracing.hh"
#include "workload/generator.hh"

using namespace morphcache;

namespace {

void
BM_SliceProbe(benchmark::State &state)
{
    CacheSlice slice(0, CacheGeometry{256 * 1024, 8, 64});
    for (Addr line = 0; line < 4096; ++line) {
        const auto set = slice.setIndex(line);
        slice.fill(set, slice.victimWay(set), line, false, line);
    }
    Addr line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(slice.probe(line));
        line = (line + 97) % 8192;
    }
}
BENCHMARK(BM_SliceProbe);

void
BM_GroupLookup(benchmark::State &state)
{
    LevelParams params;
    params.numSlices = 16;
    params.sliceGeom = CacheGeometry{256 * 1024, 8, 64};
    CacheLevelModel level(params);
    level.configure(allShared(16)); // worst case: 128-way probe
    for (Addr line = 0; line < 32768; ++line)
        level.insert(static_cast<CoreId>(line % 16), line, false);
    Addr line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(level.lookup(0, line, 0));
        line = (line + 97) % 65536;
    }
}
BENCHMARK(BM_GroupLookup);

void
BM_AcfvUpdate(benchmark::State &state)
{
    Acfv vec(128, HashKind::Xor);
    Addr line = 0;
    for (auto _ : state) {
        vec.set(line);
        line += 31;
        benchmark::DoNotOptimize(vec);
    }
}
BENCHMARK(BM_AcfvUpdate);

void
BM_ArbiterTreeCycle(benchmark::State &state)
{
    ArbiterTree tree(16);
    tree.configure(std::vector<std::uint32_t>(16, 0));
    std::vector<bool> req(16, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.arbitrate(req));
}
BENCHMARK(BM_ArbiterTreeCycle);

void
BM_GeneratorNext(benchmark::State &state)
{
    GeneratorParams params;
    CoreRefGenerator gen(profileByName("gcc"), 0, params, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_GeneratorNext);

void
BM_HierarchyAccess(benchmark::State &state)
{
    Hierarchy hierarchy(HierarchyParams::defaultParams(16));
    GeneratorParams params;
    CoreRefGenerator gen(profileByName("gcc"), 0, params, 7);
    Cycle now = 0;
    for (auto _ : state) {
        const auto result = hierarchy.access(gen.next(), now);
        now += result.latency;
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_HierarchyAccess);

// --- Observability overhead gates ------------------------------
//
// The acceptance bar for the stats/tracing/profiling subsystem is
// <2% added cost on the hot path with everything disabled. Compare
// these against their plain counterparts above.

void
BM_HierarchyAccessObservedDisabled(benchmark::State &state)
{
    // Identical to BM_HierarchyAccess, but with the full disabled
    // observability stack in the loop: a registry sampling the
    // hierarchy (callback-bound, so nothing on the access path), a
    // disabled tracer gate, and a disabled scoped phase timer.
    Hierarchy hierarchy(HierarchyParams::defaultParams(16));
    StatsRegistry registry;
    hierarchy.registerStats(registry);
    Profiler::global().setEnabled(false);
    Tracer tracer(nullptr);
    GeneratorParams params;
    CoreRefGenerator gen(profileByName("gcc"), 0, params, 7);
    Cycle now = 0;
    for (auto _ : state) {
        ScopedPhaseTimer timer(ProfPhase::RefProcessing);
        if (tracer.enabled()) {
            TraceEvent ev("access");
            tracer.emit(ev);
        }
        const auto result = hierarchy.access(gen.next(), now);
        now += result.latency;
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_HierarchyAccessObservedDisabled);

void
BM_ScopedTimerDisabled(benchmark::State &state)
{
    Profiler::global().setEnabled(false);
    for (auto _ : state) {
        ScopedPhaseTimer timer(ProfPhase::RefProcessing);
        benchmark::DoNotOptimize(timer);
    }
}
BENCHMARK(BM_ScopedTimerDisabled);

void
BM_TracerDisabledGate(benchmark::State &state)
{
    Tracer tracer(nullptr);
    std::uint64_t emitted = 0;
    for (auto _ : state) {
        if (tracer.enabled()) {
            TraceEvent ev("gate");
            ev.u64("n", emitted);
            tracer.emit(ev);
            ++emitted;
        }
        benchmark::DoNotOptimize(emitted);
    }
}
BENCHMARK(BM_TracerDisabledGate);

void
BM_RegistrySnapshot(benchmark::State &state)
{
    // Epoch-granularity cost (paid once per epoch, not per access):
    // sampling every bound stat of a 16-core hierarchy.
    Hierarchy hierarchy(HierarchyParams::defaultParams(16));
    StatsRegistry registry;
    hierarchy.registerStats(registry);
    std::uint64_t epoch = 0;
    for (auto _ : state)
        registry.snapshotEpoch(epoch++);
}
BENCHMARK(BM_RegistrySnapshot);

} // namespace

BENCHMARK_MAIN();

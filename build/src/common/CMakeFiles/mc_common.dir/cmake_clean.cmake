file(REMOVE_RECURSE
  "CMakeFiles/mc_common.dir/logging.cc.o"
  "CMakeFiles/mc_common.dir/logging.cc.o.d"
  "libmc_common.a"
  "libmc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * The virtual filesystem seam.
 *
 * Every durable byte in the tree — checkpoint writes and their
 * `.prev` rotation, the append-only campaign manifest, the lease
 * link/rename protocol, the stats/trace sinks — routes through the
 * process-wide Vfs instance instead of calling POSIX directly. In
 * production that instance is RealVfs (the only translation unit in
 * src/ allowed to name open/write/fsync/rename/link — enforced by
 * mc_lint's `vfs-io` rule); under test it is FaultyVfs
 * (faulty_vfs.hh), which injects ENOSPC/EIO/short-write/fsync-fail/
 * ESTALE faults and crash points from a splitMix64-seeded schedule,
 * so the whole failure space of a shared filesystem is enumerable
 * the way the model checker enumerates reconfiguration decisions.
 *
 * The interface is deliberately errno-shaped: operations return the
 * syscall result (fd / byte count / 0) or a *negative errno*, never
 * throw. Policy — what is transient, what retries, what becomes a
 * typed IoError — lives in the callers (serial.cc, manifest.cc,
 * lease.cc, tracing.cc) and in the helpers below, so the fault
 * injector sits below every policy decision it needs to exercise.
 *
 * sleepMs() is part of the interface so retry backoff is virtual
 * too: FaultyVfs turns the seeded-jitter delays into no-ops, letting
 * mc_iofuzz sweep thousands of schedules in seconds.
 */

#ifndef MORPHCACHE_IO_VFS_HH
#define MORPHCACHE_IO_VFS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"

namespace morphcache {

/** Operation tags for fault schedules and error messages. */
enum class VfsOp : std::uint8_t
{
    Open,
    Read,
    Write,
    Fsync,
    Close,
    Rename,
    Link,
    Unlink,
    Truncate,
    Mkdir,
    Sleep,
};

/** Human-readable tag name ("open", "fsync", ...). */
const char *vfsOpName(VfsOp op);

/**
 * The filesystem interface. Return conventions follow the wrapped
 * syscalls: fds and byte counts are non-negative, success is >= 0,
 * and every failure is `-errno` — no exceptions at this layer.
 */
class Vfs
{
  public:
    virtual ~Vfs() = default;

    /** open(2). Returns an fd or -errno. */
    virtual int openFile(const std::string &path, int flags,
                         unsigned int mode) = 0;

    /** read(2). Returns bytes read (0 = EOF) or -errno. */
    virtual long readFd(int fd, void *buf, std::size_t n) = 0;

    /** write(2). Returns bytes written (may be short) or -errno. */
    virtual long writeFd(int fd, const void *buf,
                         std::size_t n) = 0;

    /**
     * fsync(2), subject to the MC_NO_FSYNC gate (a gated no-op
     * still reports success). Returns 0 or -errno.
     */
    virtual int fsyncFd(int fd) = 0;

    /** close(2). Returns 0 or -errno. */
    virtual int closeFd(int fd) = 0;

    /** rename(2). Returns 0 or -errno. */
    virtual int renamePath(const std::string &from,
                           const std::string &to) = 0;

    /** link(2) — the lease protocol's atomic-exclusive primitive.
     * Returns 0 or -errno (-EEXIST = lost the claim race). */
    virtual int linkPath(const std::string &from,
                         const std::string &to) = 0;

    /** unlink(2). Returns 0 or -errno. */
    virtual int unlinkPath(const std::string &path) = 0;

    /** truncate(2) (trace-resume rewind). Returns 0 or -errno. */
    virtual int truncatePath(const std::string &path,
                             std::uint64_t len) = 0;

    /** mkdir(2). Returns 0 or -errno (-EEXIST is benign). */
    virtual int mkdirPath(const std::string &path) = 0;

    /** stat(2) existence probe. */
    virtual bool existsPath(const std::string &path) = 0;

    /** Retry backoff sleep; injectable so schedules run fast. */
    virtual void sleepMs(std::uint64_t ms) = 0;
};

/** The process-wide instance (RealVfs unless swapped). */
Vfs &vfs();

/**
 * Swap the process-wide instance; returns the previous one
 * (nullptr means "the built-in RealVfs"). Swaps happen only in
 * single-threaded test/harness setup — there is no handoff
 * protocol for swapping mid-campaign.
 */
Vfs *setVfs(Vfs *replacement);

/** RAII swap used by tests and mc_iofuzz. */
class ScopedVfs
{
  public:
    explicit ScopedVfs(Vfs *replacement)
        : previous_(setVfs(replacement))
    {
    }

    ~ScopedVfs() { setVfs(previous_); }

    ScopedVfs(const ScopedVfs &) = delete;
    ScopedVfs &operator=(const ScopedVfs &) = delete;

  private:
    Vfs *previous_;
};

/**
 * Whether fsync-backed durability is active (true unless the
 * MC_NO_FSYNC environment variable was set at first use). Lives
 * here — not serial.cc — because the gate must sit *inside*
 * RealVfs::fsyncFd: FaultyVfs then intercepts every fsync site
 * regardless of the gate, and the gate only suppresses the real
 * syscall underneath.
 */
bool vfsFsyncEnabled();

/** Process-wide count of real fsyncs issued (files + dirs). */
std::uint64_t vfsFsyncCount();

/**
 * Transience classification, decided once for every caller: EINTR,
 * EAGAIN, EBUSY, ESTALE (NFS handle churn), ETIMEDOUT, and
 * fd-table pressure (ENFILE/EMFILE) are worth retrying; ENOSPC,
 * EDQUOT, EIO, EROFS, EACCES, ENOENT are persistent — retrying
 * cannot help, the cell quarantines instead.
 */
bool errnoIsTransient(int errno_code);

/** Throw the typed IoError for `op` on `path` failing with
 * `neg_errno` (a -errno as returned by the Vfs methods). */
[[noreturn]] void throwIo(VfsOp op, const std::string &path,
                          long neg_errno);

/**
 * Write an entire buffer to an open fd, riding out short writes
 * and EINTR. Returns 0 on success or -errno; `landed` reports how
 * many of the `n` input bytes reached the fd either way — callers
 * appending to shared logs use it to tell "clean failure, safe to
 * retry the record" (landed == 0) from "torn tail, retrying would
 * interleave" (landed > 0).
 */
long vfsWriteAll(int fd, const void *data, std::size_t n,
                 std::size_t &landed);

/**
 * Whole-file overwrite through the seam: open(O_TRUNC), write,
 * optionally fsync, close. Throws IoError on failure. This is the
 * plain (non-atomic) writer for observability outputs that are
 * rewritten whole on resume; durable state uses atomicWriteFile
 * (serial.hh), which adds the tmp+rename+dir-fsync dance.
 */
void vfsWriteWholeFile(const std::string &path, const void *data,
                       std::size_t n, bool want_fsync);

/** Whole-file read through the seam. Throws IoError. */
std::vector<std::uint8_t> vfsReadWholeFile(const std::string &path);

} // namespace morphcache

#endif // MORPHCACHE_IO_VFS_HH

/**
 * @file
 * Table 2 — segmented-bus arbiter area and delay, plus the derived
 * Section 3.2 quantities (maximum arbiter frequency, transaction
 * cycle counts), recomputed from the analytical model and printed
 * next to the paper's synthesis results. Also exercises the
 * cycle-level arbiter tree to demonstrate the Figure 7/9 behaviour
 * the numbers describe.
 */

#include "common.hh"

#include "interconnect/arbiter.hh"
#include "interconnect/delay_model.hh"

using namespace morphcache;
using namespace morphcache::bench;

int
main()
{
    const ArbiterDelayModel model;
    const auto l2 = model.l2Tree();
    const auto l3 = model.l3Tree();
    const auto txn = model.transaction();

    std::printf("Table 2: segmented bus arbiter area and delay\n");
    std::printf("%-28s %18s %18s\n", "", "L2 bus (3-level)",
                "L3 bus (4-level)");
    std::printf("%-28s %10u %7s %10u %7s\n", "arbiters",
                l2.numArbiters, "(7)", l3.numArbiters, "(15)");
    std::printf("%-28s %10.1f %7s %10.1f %7s um^2\n", "total area",
                l2.totalAreaUm2, "(160.5)", l3.totalAreaUm2,
                "(343.9)");
    std::printf("%-28s %10.2f %7s %10.2f %7s ns\n",
                "request wire delay", l2.requestWireNs, "(0.31)",
                l3.requestWireNs, "(0.40)");
    std::printf("%-28s %10.2f %7s %10.2f %7s ns\n",
                "request logic delay", l2.requestLogicNs, "(0.38)",
                l3.requestLogicNs, "(0.49)");
    std::printf("%-28s %10.2f %7s %10.2f %7s ns\n",
                "grant logic delay", l2.grantLogicNs, "(0.32)",
                l3.grantLogicNs, "(0.32)");
    std::printf("%-28s %10.2f %7s %10.2f %7s ns\n",
                "grant wire delay", l2.grantWireNs, "(0.31)",
                l3.grantWireNs, "(0.40)");
    std::printf("(parenthesized: paper values)\n\n");

    std::printf("derived Section 3.2 quantities:\n");
    std::printf("  worst path             %5.2f ns   (paper 0.89)\n",
                l3.worstPathNs());
    std::printf("  max arbiter frequency  %5.2f GHz  (paper 1.12)\n",
                l3.maxFrequencyGhz());
    std::printf("  bus transaction        %u bus cycles (paper 3)\n",
                txn.busCycles);
    std::printf("  CPU-cycle overhead     %u (paper 15), pipelined "
                "%u (paper 10)\n\n",
                txn.cpuCycles, txn.cpuCyclesPipelined);

    // Functional demonstration: the Figure 7 (4,2,2) segmentation
    // grants three transactions per cycle under full load, and a
    // fully shared bus serves all requesters fairly.
    ArbiterTree tree(8);
    tree.configure({0, 0, 0, 0, 1, 1, 2, 2});
    std::vector<int> wins(8, 0);
    const int cycles = 8000;
    for (int c = 0; c < cycles; ++c) {
        const auto grants =
            tree.arbitrate(std::vector<bool>(8, true));
        for (int i = 0; i < 8; ++i)
            wins[i] += grants[i];
    }
    std::printf("segmented (4,2,2) formation under saturation, "
                "grants per slice over %d cycles:\n ", cycles);
    for (int w : wins)
        std::printf(" %d", w);
    std::printf("\n(3 parallel transactions per cycle; round-robin "
                "fairness inside each segment)\n");
    return 0;
}

#include "common/serial.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace morphcache {

void
atomicWriteFile(const std::string &path, const void *data,
                std::size_t size)
{
    const std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file)
        throw CkptError("'" + tmp + "': cannot open for writing: " +
                        std::strerror(errno));
    bool ok = size == 0 || std::fwrite(data, 1, size, file) == size;
    ok = std::fflush(file) == 0 && ok;
    ok = std::fclose(file) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        throw CkptError("'" + tmp + "': short write: " +
                        std::strerror(errno));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw CkptError("'" + tmp + "': cannot rename to '" + path +
                        "': " + std::strerror(errno));
    }
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        throw CkptError("'" + path + "': cannot open: " +
                        std::strerror(errno));
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[65536];
    std::size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + got);
    const bool readError = std::ferror(file) != 0;
    std::fclose(file);
    if (readError)
        throw CkptError("'" + path + "': read error: " +
                        std::strerror(errno));
    return bytes;
}

} // namespace morphcache

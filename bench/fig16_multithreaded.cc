/**
 * @file
 * Figure 16 — multithreaded (PARSEC) performance of MorphCache
 * versus the static topologies, one application at a time with 16
 * threads, measured as inverse execution time and normalized to
 * (16:1:1).
 *
 * Paper: MorphCache +25.6% over (16:1:1), +30.4% over (1:1:16),
 * +12.3% over (4:4:1), +7.5% over (8:2:1), +8.5% over (1:16:1);
 * facesim, ferret, freqmine and x264 (high spatial sigma) benefit
 * most.
 */

#include "common.hh"

using namespace morphcache;
using namespace morphcache::bench;

int
main()
{
    HierarchyParams hier = experimentHierarchy(16);
    hier.coherence = true;
    const GeneratorParams gen = generatorFor(hier);
    const SimParams sim = defaultSim();
    const auto topologies = paperStaticTopologies();

    std::printf("Figure 16: PARSEC performance (1/exec-time) "
                "normalized to (16:1:1)\n");
    std::printf("%-14s", "app");
    for (const auto &topo : topologies)
        std::printf(" %9s", topo.name().c_str());
    std::printf(" %9s\n", "morph");

    // One parallel cell per PARSEC application: every topology plus
    // MorphCache, normalized to the application's first (baseline)
    // topology run.
    const auto &profiles = parsecProfiles();
    const auto rows = parallelRows(profiles.size(), [&](std::size_t p) {
        const BenchmarkProfile &profile = profiles[p];
        std::vector<double> norm;
        double base = 0.0;
        for (const auto &topo : topologies) {
            MultithreadedWorkload workload(profile, 16, gen,
                                           baseSeed());
            StaticTopologySystem system(hier, topo);
            Simulation simulation(system, workload, sim);
            const double perf = simulation.run().performance;
            if (base == 0.0)
                base = perf;
            norm.push_back(perf / base);
        }
        MultithreadedWorkload workload(profile, 16, gen, baseSeed());
        MorphConfig config;
        config.sharedAddressSpace = true;
        MorphCacheSystem system(hier, config);
        Simulation simulation(system, workload, sim);
        norm.push_back(simulation.run().performance / base);
        return norm;
    });

    std::vector<double> sums(topologies.size() + 1, 0.0);
    for (std::size_t p = 0; p < profiles.size(); ++p) {
        std::printf("%-14s", profiles[p].name);
        for (std::size_t col = 0; col < rows[p].size(); ++col) {
            std::printf(" %9.3f", rows[p][col]);
            sums[col] += rows[p][col];
        }
        std::printf("\n");
    }
    std::printf("%-14s", "AVG");
    for (double s : sums)
        std::printf(" %9.3f",
                    s / static_cast<double>(profiles.size()));
    std::printf("\n\npaper averages: 1.000 / 0.96 / 1.12 / 1.17 / "
                "1.16 / 1.256\n");
    return 0;
}

/**
 * @file
 * Fixed-size worker thread pool for the experiment runner.
 *
 * A deliberately small pool: tasks are coarse (one whole simulation
 * run each, seconds of work), so a mutex-guarded deque is far from
 * being a bottleneck and buys simplicity and portability. Tasks
 * must not throw — the SweepRunner layer catches per-cell
 * exceptions before they reach the pool; anything that still
 * escapes is logged and swallowed so one bad task can never take
 * down the workers or deadlock wait().
 */

#ifndef MORPHCACHE_RUNNER_THREAD_POOL_HH
#define MORPHCACHE_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace morphcache {

class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 selects
     *        std::thread::hardware_concurrency() (minimum 1).
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue (waits for every submitted task). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /** Actual worker count. */
    unsigned numThreads() const { return numThreads_; }

    /** The `threads == 0` resolution rule, exposed for CLIs. */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    unsigned numThreads_ = 0;

    std::mutex mutex_;
    /** Signals workers that work (or shutdown) is available. */
    std::condition_variable workCv_;
    /** Signals wait()ers that the pool went idle. */
    std::condition_variable idleCv_;
    std::deque<std::function<void()>> queue_;
    /** Tasks currently executing on a worker. */
    unsigned active_ = 0;
    bool stopping_ = false;
};

} // namespace morphcache

#endif // MORPHCACHE_RUNNER_THREAD_POOL_HH

/**
 * @file
 * mc_bench — the refs/sec scoreboard harness.
 *
 * Runs a pinned benchmark suite (see src/perf/bench.hh) under the
 * warmup-discard trial protocol and emits a schema-versioned BENCH
 * JSON document, stamped with git SHA / compiler / build type, that
 * tools/mc_benchdiff.py can gate against a previous run:
 *
 *   mc_bench --suite default --trials 5 --out BENCH_7.json
 *   mc_bench --suite smoke --trials 3 --out /tmp/now.json
 *   tools/mc_benchdiff.py BENCH_7.json /tmp/now.json
 *
 * Wall-time numbers in the output are machine-dependent by nature;
 * the simulated stats behind them are not (registry contract), so a
 * BENCH file measures the implementation, never the model.
 */

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hh"
#include "perf/bench.hh"

namespace {

using namespace morphcache;

void usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: mc_bench [options]\n"
        "\n"
        "  --suite NAME     cell suite: smoke | default "
        "(default: default)\n"
        "  --out FILE       write BENCH JSON here (default: "
        "stdout)\n"
        "  --trials N       recorded trials per cell (default: "
        "5, min 1)\n"
        "  --warmup K       discarded leading trials per cell "
        "(default: 1)\n"
        "  --git-sha SHA    provenance stamp (default: "
        "$MC_BENCH_GIT_SHA, else `git rev-parse HEAD`, else "
        "\"unknown\")\n"
        "  --build-jobs N   provenance stamp: -j the build used "
        "(default: $MC_BENCH_BUILD_JOBS, else 0)\n"
        "  --slowdown-us N  inject a busy-wait of N us per trial "
        "(regression-gate self-test knob)\n"
        "  --table          also print the human-readable table "
        "to stderr\n"
        "  -h, --help       this message\n");
}

/** `git rev-parse HEAD`, or "" when git/repo is unavailable. */
std::string gitHeadSha()
{
    std::FILE *p = ::popen("git rev-parse HEAD 2>/dev/null", "r");
    if (p == nullptr)
        return "";
    char buf[128] = {0};
    std::string sha;
    if (std::fgets(buf, sizeof(buf), p) != nullptr)
        sha = buf;
    if (::pclose(p) != 0)
        return "";
    while (!sha.empty() &&
           (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    for (char c : sha)
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            return "";
    return sha;
}

std::uint64_t parseU64Arg(const char *flag, const char *value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0')
        throw ConfigError(std::string(flag) +
                          ": expected a number, got \"" + value +
                          "\"");
    return static_cast<std::uint64_t>(v);
}

} // namespace

int main(int argc, char **argv)
{
    std::string suite = "default";
    std::string outPath;
    std::string gitSha;
    unsigned buildJobs = 0;
    bool wantTable = false;
    BenchOptions opts;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char * {
                if (i + 1 >= argc)
                    throw ConfigError(arg +
                                      ": missing argument");
                return argv[++i];
            };
            if (arg == "-h" || arg == "--help") {
                usage(stdout);
                return 0;
            } else if (arg == "--suite") {
                suite = next();
            } else if (arg == "--out") {
                outPath = next();
            } else if (arg == "--trials") {
                opts.trials = static_cast<std::size_t>(
                    parseU64Arg("--trials", next()));
                if (opts.trials == 0)
                    throw ConfigError("--trials: must be >= 1");
            } else if (arg == "--warmup") {
                opts.warmup = static_cast<std::size_t>(
                    parseU64Arg("--warmup", next()));
            } else if (arg == "--git-sha") {
                gitSha = next();
            } else if (arg == "--build-jobs") {
                buildJobs = static_cast<unsigned>(
                    parseU64Arg("--build-jobs", next()));
            } else if (arg == "--slowdown-us") {
                opts.slowdownUsPerTrial =
                    parseU64Arg("--slowdown-us", next());
            } else if (arg == "--table") {
                wantTable = true;
            } else {
                std::fprintf(stderr,
                             "mc_bench: unknown option %s\n",
                             arg.c_str());
                usage(stderr);
                return 2;
            }
        }

        const std::vector<BenchCell> cells = benchSuite(suite);

        BenchEnv env = localBenchEnv();
        if (!gitSha.empty()) {
            env.gitSha = gitSha;
        } else if (const char *e = std::getenv("MC_BENCH_GIT_SHA");
                   e != nullptr && e[0] != '\0') {
            env.gitSha = e;
        } else if (std::string head = gitHeadSha();
                   !head.empty()) {
            env.gitSha = head;
        }
        if (buildJobs != 0) {
            env.buildJobs = buildJobs;
        } else if (const char *e =
                       std::getenv("MC_BENCH_BUILD_JOBS");
                   e != nullptr && e[0] != '\0') {
            env.buildJobs = static_cast<unsigned>(
                parseU64Arg("MC_BENCH_BUILD_JOBS", e));
        }

        std::vector<BenchCellResult> results;
        results.reserve(cells.size());
        for (std::size_t i = 0; i < cells.size(); ++i) {
            std::fprintf(stderr,
                         "mc_bench: [%zu/%zu] %s (%zu+%zu "
                         "trials)\n",
                         i + 1, cells.size(),
                         cells[i].id().c_str(), opts.warmup,
                         opts.trials);
            results.push_back(runBenchCell(cells[i], opts));
            const BenchCellResult &r = results.back();
            std::fprintf(stderr,
                         "mc_bench:   %.3f Mrefs/s (MAD %.3f)\n",
                         r.refsPerSec.median / 1e6,
                         r.refsPerSec.mad / 1e6);
        }

        const std::string doc =
            renderBenchJson(suite, opts, env, results);
        if (outPath.empty()) {
            std::fwrite(doc.data(), 1, doc.size(), stdout);
        } else {
            std::FILE *f = std::fopen(outPath.c_str(), "w");
            if (f == nullptr) {
                std::fprintf(stderr,
                             "mc_bench: cannot open %s: %s\n",
                             outPath.c_str(),
                             std::strerror(errno));
                return 1;
            }
            const bool ok =
                std::fwrite(doc.data(), 1, doc.size(), f) ==
                doc.size();
            if (std::fclose(f) != 0 || !ok) {
                std::fprintf(stderr,
                             "mc_bench: write to %s failed\n",
                             outPath.c_str());
                return 1;
            }
            std::fprintf(stderr, "mc_bench: wrote %s (%zu cells)\n",
                         outPath.c_str(), results.size());
        }
        if (wantTable) {
            const std::string table = renderBenchTable(results);
            std::fwrite(table.data(), 1, table.size(), stderr);
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "mc_bench: error: %s\n", e.what());
        return 1;
    }
}

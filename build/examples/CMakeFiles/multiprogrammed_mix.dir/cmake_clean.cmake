file(REMOVE_RECURSE
  "CMakeFiles/multiprogrammed_mix.dir/multiprogrammed_mix.cpp.o"
  "CMakeFiles/multiprogrammed_mix.dir/multiprogrammed_mix.cpp.o.d"
  "multiprogrammed_mix"
  "multiprogrammed_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprogrammed_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Deterministic parallel sweep runner.
 *
 * A sweep is an ordered list of independent *cells* — one
 * simulation run each (one config × workload × seed point). The
 * SweepRunner fans the cells across a fixed-size ThreadPool and
 * hands the results back in submission order, so the output of a
 * sweep is byte-identical no matter how many workers ran it.
 *
 * The determinism contract, and what makes it hold:
 *
 *  - every cell owns its full simulation state: its own Workload
 *    (cloned from a prototype built on the submitting thread), its
 *    own memory system / hierarchy, and its own StatsRegistry —
 *    nothing simulated is shared between cells;
 *  - cell seeds derive only from (base seed, cell index) via
 *    sweepCellSeed(), never from thread identity or time;
 *  - results land in a pre-sized slot per cell (no reordering, no
 *    reallocation) and are read back only after the pool drains;
 *  - the remaining process-wide state (the log sinks and the phase
 *    Profiler) is mutex-guarded / atomic and feeds no simulated
 *    numbers.
 *
 * A throwing cell fails only itself: the exception is captured into
 * that cell's SweepResult and every other cell still runs.
 */

#ifndef MORPHCACHE_RUNNER_SWEEP_HH
#define MORPHCACHE_RUNNER_SWEEP_HH

#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "runner/thread_pool.hh"

namespace morphcache {

/**
 * Seed of sweep cell `index` under base seed `base`: one SplitMix64
 * step over `base ^ index`. Pure function of its arguments, so a
 * cell's stream is identical whichever worker runs it — and
 * well-mixed, so neighbouring cells never see correlated streams
 * the way raw `base + index` seeding would give them.
 */
inline std::uint64_t
sweepCellSeed(std::uint64_t base, std::uint64_t index)
{
    std::uint64_t state = base ^ index;
    return splitMix64(state);
}

/** Outcome of one sweep cell: a value, or the error that ate it. */
template <typename R>
struct SweepResult
{
    std::optional<R> value;
    /** Captured cell exception (null when the cell succeeded). */
    std::exception_ptr exception;
    /** what() of the captured exception, for reporting. */
    std::string error;

    bool ok() const { return value.has_value(); }

    /** The value; rethrows the cell's exception on failure. */
    R &
    get()
    {
        if (!value.has_value())
            std::rethrow_exception(exception);
        return *value;
    }
};

class SweepRunner
{
  public:
    /** @param jobs Worker threads; 0 = hardware_concurrency. */
    explicit SweepRunner(unsigned jobs = 0) : pool_(jobs) {}

    unsigned jobs() const { return pool_.numThreads(); }

    /**
     * Run `cells[i]()` for every i across the pool; result i is
     * cell i's, regardless of completion order.
     */
    template <typename Fn>
    auto
    run(std::vector<Fn> cells)
        -> std::vector<SweepResult<decltype(cells.front()())>>
    {
        using R = decltype(cells.front()());
        std::vector<SweepResult<R>> results(cells.size());
        for (std::size_t i = 0; i < cells.size(); ++i) {
            Fn &cell = cells[i];
            SweepResult<R> &slot = results[i];
            pool_.submit([&cell, &slot]() {
                try {
                    slot.value.emplace(cell());
                } catch (const std::exception &err) {
                    slot.exception = std::current_exception();
                    slot.error = err.what();
                } catch (...) {
                    slot.exception = std::current_exception();
                    slot.error = "unknown exception";
                }
            });
        }
        pool_.wait();
        return results;
    }

    /**
     * Index-driven convenience: run `fn(i)` for i in [0, n) and
     * return the values in index order, rethrowing the first failed
     * cell's exception. The per-index shape (rather than iterating
     * a container) is what the bench per-mix loops dispatch
     * through.
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn fn)
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        using R = decltype(fn(std::size_t{0}));
        std::vector<std::function<R()>> cells;
        cells.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            cells.push_back([fn, i]() { return fn(i); });
        auto results = run(std::move(cells));
        std::vector<R> values;
        values.reserve(n);
        for (auto &result : results)
            values.push_back(std::move(result.get()));
        return values;
    }

  private:
    ThreadPool pool_;
};

} // namespace morphcache

#endif // MORPHCACHE_RUNNER_SWEEP_HH

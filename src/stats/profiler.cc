#include "stats/profiler.hh"

#include <cstdio>
#include <string>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "stats/registry.hh"

namespace morphcache {

const char *
profPhaseName(ProfPhase phase)
{
    switch (phase) {
      case ProfPhase::RefProcessing: return "refProcessing";
      case ProfPhase::EpochDecision: return "epochDecision";
      case ProfPhase::ReconfigApply: return "reconfigApply";
      default: panic("bad ProfPhase %d", static_cast<int>(phase));
    }
}

Profiler &
Profiler::global()
{
    static Profiler instance;
    return instance;
}

ProfSnapshot
profDelta(const ProfSnapshot &a, const ProfSnapshot &b)
{
    ProfSnapshot d;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(ProfPhase::NumPhases); ++i) {
        const auto phase = static_cast<ProfPhase>(i);
        d[phase].ns = satSub(b[phase].ns, a[phase].ns);
        d[phase].calls = satSub(b[phase].calls, a[phase].calls);
        d[phase].allocBytes =
            satSub(b[phase].allocBytes, a[phase].allocBytes);
        d[phase].allocCalls =
            satSub(b[phase].allocCalls, a[phase].allocCalls);
        d[phase].allocFrees =
            satSub(b[phase].allocFrees, a[phase].allocFrees);
    }
    return d;
}

ProfSnapshot
Profiler::snapshot() const
{
    ProfSnapshot s;
    for (std::size_t i = 0; i < numPhases; ++i) {
        const auto phase = static_cast<ProfPhase>(i);
        s[phase].ns = ns_[i].load(std::memory_order_relaxed);
        s[phase].calls = calls_[i].load(std::memory_order_relaxed);
        s[phase].allocBytes =
            allocBytes_[i].load(std::memory_order_relaxed);
        s[phase].allocCalls =
            allocCalls_[i].load(std::memory_order_relaxed);
        s[phase].allocFrees =
            allocFrees_[i].load(std::memory_order_relaxed);
    }
    return s;
}

void
Profiler::reset()
{
    for (std::size_t i = 0; i < numPhases; ++i) {
        ns_[i] = 0;
        calls_[i] = 0;
        allocBytes_[i] = 0;
        allocCalls_[i] = 0;
        allocFrees_[i] = 0;
    }
}

void
Profiler::registerStats(StatsRegistry &registry) const
{
    for (std::size_t i = 0; i < numPhases; ++i) {
        const auto phase = static_cast<ProfPhase>(i);
        const std::string base =
            std::string("prof.") + profPhaseName(phase);
        registry.bindCounter(
            base + ".ns",
            [this, i]() {
                return ns_[i].load(std::memory_order_relaxed);
            },
            "wall-clock nanoseconds in this phase");
        registry.bindCounter(
            base + ".calls",
            [this, i]() {
                return calls_[i].load(std::memory_order_relaxed);
            },
            "timed intervals in this phase");
    }
}

std::string
Profiler::report() const
{
    // Render from the stable export, so the human table can never
    // carry numbers the machine-readable path does not.
    const ProfSnapshot snap = snapshot();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < numPhases; ++i)
        total += snap.phases[i].ns;
    if (total == 0)
        return "";
    std::string out = "profile:\n";
    char buf[160];
    for (std::size_t i = 0; i < numPhases; ++i) {
        const auto &phase = snap.phases[i];
        if (phase.calls == 0)
            continue;
        const double ms = static_cast<double>(phase.ns) / 1e6;
        const double avg_us =
            static_cast<double>(phase.ns) /
            (1e3 * static_cast<double>(phase.calls));
        std::snprintf(buf, sizeof(buf),
                      "  %-16s %10.3f ms  %8llu calls  %10.2f "
                      "us/call\n",
                      profPhaseName(static_cast<ProfPhase>(i)), ms,
                      static_cast<unsigned long long>(phase.calls),
                      avg_us);
        out += buf;
    }
    return out;
}

} // namespace morphcache

#include "runner/lease.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/error.hh"
#include "common/serial.hh"
#include "io/vfs.hh"
#include "runner/manifest.hh"

namespace morphcache {

double
leaseNow()
{
    // Deadlines are compared by *other processes*, so this must be
    // the shared wall clock, not the per-process steady clock. It
    // gates only whether a claim is stale — never anything
    // simulated (mc_lint determinism allow-list entry).
    const auto now = std::chrono::system_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch())
        .count();
}

std::string
defaultWorkerId()
{
    char host[256] = "unknown-host";
    if (::gethostname(host, sizeof(host) - 1) != 0)
        std::snprintf(host, sizeof(host), "unknown-host");
    host[sizeof(host) - 1] = '\0';
    return std::string(host) + ":" + std::to_string(::getpid());
}

std::string
serializeLease(const LeaseInfo &lease)
{
    char deadline[48];
    std::snprintf(deadline, sizeof(deadline), "%.6f",
                  lease.deadline);
    return "{\"type\":\"lease\",\"index\":" +
           std::to_string(lease.index) + ",\"worker\":\"" +
           jsonEscape(lease.worker) + "\",\"pid\":" +
           std::to_string(lease.pid) + ",\"host\":\"" +
           jsonEscape(lease.host) + "\",\"generation\":" +
           std::to_string(lease.generation) + ",\"deadline\":" +
           deadline + ",\"attempts\":" +
           std::to_string(lease.attempts) + "}\n";
}

bool
parseLease(const std::string &text, LeaseInfo &out)
{
    std::string type;
    if (!jsonFieldStr(text, "type", type) || type != "lease")
        return false;
    return jsonFieldU64(text, "index", out.index) &&
           jsonFieldStr(text, "worker", out.worker) &&
           jsonFieldU64(text, "pid", out.pid) &&
           jsonFieldStr(text, "host", out.host) &&
           jsonFieldU64(text, "generation", out.generation) &&
           jsonFieldF64(text, "deadline", out.deadline) &&
           jsonFieldU64(text, "attempts", out.attempts);
}

LeaseRead
readLease(const std::string &path, LeaseInfo &out)
{
    const int fd = vfs().openFile(path, O_RDONLY, 0);
    if (fd < 0) {
        // errno-precise: only "the file is genuinely gone" maps to
        // Missing — ENOENT (deleted between a claim scan or reap
        // pass and this open; the benign readdir/open race) and
        // ESTALE (NFS forgot the handle for the same reason). Any
        // other open failure means a lease file exists but cannot
        // be read right now; reporting that as Missing would send
        // the claimer down the fresh-claim link(2) path against a
        // live lease, so it is Corrupt — claimed via the
        // generation-bumping reclaim, which fencing makes safe.
        if (fd == -ENOENT || fd == -ESTALE)
            return LeaseRead::Missing;
        return LeaseRead::Corrupt;
    }
    std::string text;
    char chunk[1024];
    bool read_error = false;
    while (true) {
        const long got = vfs().readFd(fd, chunk, sizeof(chunk));
        if (got == -EINTR)
            continue;
        if (got < 0) {
            read_error = true;
            break;
        }
        if (got == 0)
            break;
        text.append(chunk, static_cast<std::size_t>(got));
    }
    vfs().closeFd(fd);
    if (read_error || !parseLease(text, out))
        return LeaseRead::Corrupt;
    return LeaseRead::Valid;
}

namespace {

/**
 * Scratch path for this worker's lease writes: unique per (cell,
 * pid, call) so concurrent claimers — other processes *and* other
 * claim threads in this process — never share a temp file.
 */
std::string
leaseScratchPath(const std::string &lease_path)
{
    static std::atomic<std::uint64_t> seq{0};
    return lease_path + ".tmp." + std::to_string(::getpid()) + "." +
           std::to_string(seq.fetch_add(1));
}

/**
 * Write lease content to the scratch file (flushed + fsynced so a
 * power loss cannot publish a torn lease after the link/rename).
 */
void
writeLeaseScratch(const std::string &scratch,
                  const std::string &doc)
{
    // The lease API's contract is LeaseError (the executor catches
    // it to fall back to the next cell), so the seam's typed IoError
    // is wrapped rather than propagated.
    try {
        vfsWriteWholeFile(scratch, doc.data(), doc.size(),
                          /*want_fsync=*/true);
    } catch (const IoError &err) {
        vfs().unlinkPath(scratch); // best effort; scratch only
        throw LeaseError(std::string("lease scratch write failed: ") +
                         err.what());
    }
}

/** Rename the scratch over the lease and read back who won. */
bool
installAndVerify(const std::string &scratch,
                 const std::string &path, const LeaseInfo &mine)
{
    const int ren_rc = vfs().renamePath(scratch, path);
    if (ren_rc < 0) {
        vfs().unlinkPath(scratch);
        throw LeaseError("'" + scratch + "': cannot rename to '" +
                         path + "': " + std::strerror(-ren_rc));
    }
    // Read-back verification: concurrent reclaimers all rename
    // over the same path; the file holds the last writer, and only
    // the worker that finds its own (worker, generation) proceeds.
    LeaseInfo back;
    return readLease(path, back) == LeaseRead::Valid &&
           back.worker == mine.worker &&
           back.generation == mine.generation;
}

} // namespace

LeaseClaim
tryClaimCell(const std::string &dir, std::size_t index,
             const std::string &worker_id, double ttl_sec,
             LeaseInfo &mine)
{
    const std::string path = cellLeasePath(dir, index);

    mine = LeaseInfo{};
    mine.index = index;
    mine.worker = worker_id;
    mine.pid = static_cast<std::uint64_t>(::getpid());
    {
        char host[256] = "unknown-host";
        if (::gethostname(host, sizeof(host) - 1) != 0)
            std::snprintf(host, sizeof(host), "unknown-host");
        host[sizeof(host) - 1] = '\0';
        mine.host = host;
    }
    mine.deadline = leaseNow() + ttl_sec;

    LeaseInfo current;
    const LeaseRead state = readLease(path, current);
    if (state == LeaseRead::Missing) {
        // Fresh claim: link(2) is the atomic-exclusive primitive —
        // it fails with EEXIST when anyone else created the lease
        // first, even over NFS where O_EXCL is historically shaky.
        mine.generation = 1;
        const std::string scratch = leaseScratchPath(path);
        writeLeaseScratch(scratch, serializeLease(mine));
        const int link_rc = vfs().linkPath(scratch, path);
        vfs().unlinkPath(scratch);
        if (link_rc == 0)
            return LeaseClaim::Claimed;
        if (link_rc == -EEXIST)
            return LeaseClaim::Raced;
        throw LeaseError("'" + path + "': cannot link lease: " +
                         std::strerror(-link_rc));
    }

    if (state == LeaseRead::Valid &&
        current.deadline >= leaseNow()) {
        return LeaseClaim::Held;
    }

    // Stale (deadline passed) or corrupt (torn write / bit rot):
    // reclaim by bumping the generation — the fencing token — and
    // inheriting the attempt count so retry budgets survive owner
    // death. A corrupt lease parses to generation 0; clamping the
    // bump to >= 2 keeps the invariant that fresh claims are exactly
    // generation 1 and every reclaim is higher. The fence compares
    // (worker, generation) for equality, so even a clamp collision
    // with a corrupted-then-resurrected zombie only lets through a
    // byte-identical result write (see the header note).
    mine.generation =
        std::max<std::uint64_t>(current.generation + 1, 2);
    mine.attempts = current.attempts;
    const std::string scratch = leaseScratchPath(path);
    writeLeaseScratch(scratch, serializeLease(mine));
    return installAndVerify(scratch, path, mine)
               ? LeaseClaim::Claimed
               : LeaseClaim::Raced;
}

bool
renewLease(const std::string &dir, LeaseInfo &mine, double ttl_sec)
{
    const std::string path = cellLeasePath(dir, mine.index);
    if (!leaseStillMine(dir, mine))
        return false;
    LeaseInfo next = mine;
    next.deadline = leaseNow() + ttl_sec;
    const std::string scratch = leaseScratchPath(path);
    writeLeaseScratch(scratch, serializeLease(next));
    if (!installAndVerify(scratch, path, next))
        return false;
    mine = next;
    return true;
}

bool
leaseStillMine(const std::string &dir, const LeaseInfo &mine)
{
    LeaseInfo current;
    return readLease(cellLeasePath(dir, mine.index), current) ==
               LeaseRead::Valid &&
           current.worker == mine.worker &&
           current.generation == mine.generation;
}

void
releaseLease(const std::string &dir, const LeaseInfo &mine)
{
    if (leaseStillMine(dir, mine))
        vfs().unlinkPath(cellLeasePath(dir, mine.index));
}

void
commitCellResult(const std::string &dir, std::size_t index,
                 const LeaseInfo &mine, const std::string &doc)
{
    if (!leaseStillMine(dir, mine)) {
        throw LeaseError(
            "cell " + std::to_string(index) + ": lease for worker '" +
            mine.worker + "' generation " +
            std::to_string(mine.generation) +
            " is no longer current; result write fenced off");
    }
    atomicWriteFile(cellResultPath(dir, index), doc.data(),
                    doc.size());
}

std::size_t
reapStaleLeases(const std::string &dir, std::size_t num_cells)
{
    std::size_t removed = 0;
    const double now = leaseNow();
    for (std::size_t i = 0; i < num_cells; ++i) {
        const std::string path = cellLeasePath(dir, i);
        LeaseInfo lease;
        const LeaseRead state = readLease(path, lease);
        if (state == LeaseRead::Missing)
            continue;
        const bool finished = fileExists(cellResultPath(dir, i));
        const bool stale = state == LeaseRead::Corrupt ||
                           lease.deadline < now;
        if ((finished || stale) && vfs().unlinkPath(path) == 0)
            ++removed;
    }
    return removed;
}

} // namespace morphcache

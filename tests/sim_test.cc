/**
 * @file
 * Integration tests for the simulation layer: memory systems, the
 * core model, and end-to-end runs.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/simulation.hh"
#include "workload/generator.hh"

namespace morphcache {
namespace {

HierarchyParams
testHier(std::uint32_t cores = 4)
{
    HierarchyParams params = HierarchyParams::defaultParams(cores);
    params.l1Geom = CacheGeometry{2048, 2, 64};
    params.l2.sliceGeom = CacheGeometry{8192, 4, 64};   // 128 lines
    params.l3.sliceGeom = CacheGeometry{32768, 8, 64};  // 512 lines
    return params;
}

GeneratorParams
testGen()
{
    return generatorFor(testHier());
}

SimParams
testSim()
{
    SimParams params;
    params.refsPerEpochPerCore = 2000;
    params.epochs = 4;
    params.warmupEpochs = 1;
    return params;
}

/** A 4-core mix built from SPEC profiles. */
class FourMix : public Workload
{
  public:
    explicit FourMix(std::uint64_t seed)
    {
        const char *names[4] = {"cactusADM", "libquantum", "gobmk",
                                "hmmer"};
        for (CoreId c = 0; c < 4; ++c) {
            gens_.emplace_back(profileByName(names[c]), c, testGen(),
                               seed + c);
        }
    }

    MemAccess next(CoreId core) override { return gens_[core].next(); }
    void
    beginEpoch(EpochId epoch) override
    {
        for (auto &gen : gens_)
            gen.beginEpoch(epoch);
    }
    bool sharedAddressSpace() const override { return false; }
    std::uint32_t numCores() const override { return 4; }
    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<FourMix>(*this);
    }
    std::string name() const override { return "four-mix"; }

  private:
    std::vector<CoreRefGenerator> gens_;
};

TEST(CoreModel, CyclesForAccess)
{
    CoreModelParams params;
    // 10 instructions at width 4 + latency 10 / overlap 2.
    EXPECT_DOUBLE_EQ(params.cyclesForAccess(10), 2.5 + 5.0);
}

TEST(StaticSystem, ReportsTopologyName)
{
    StaticTopologySystem sys(testHier(),
                             Topology::symmetric(4, 4, 1, 1));
    EXPECT_EQ(sys.name(), "(4:1:1)");
    EXPECT_EQ(sys.numCores(), 4u);
}

TEST(StaticSystem, ChargesBusOnRemoteHitsByDefault)
{
    StaticTopologySystem sys(testHier(),
                             Topology::symmetric(4, 4, 1, 1));
    sys.access(MemAccess{0, 0x8000, AccessType::Read}, 0);
    const auto result =
        sys.access(MemAccess{3, 0x8000, AccessType::Read}, 1000);
    EXPECT_EQ(result.servedBy, ServedBy::L2Remote);
    EXPECT_EQ(result.latency, 3u + 25u); // merged-hit latency
}

TEST(StaticSystem, FlatLatencyModeMatchesPaperAssumption)
{
    // charge_bus=false reproduces Section 4's idealization: fixed
    // local latency at any sharing degree.
    StaticTopologySystem sys(testHier(),
                             Topology::symmetric(4, 4, 1, 1),
                             /*charge_bus=*/false);
    sys.access(MemAccess{0, 0x8000, AccessType::Read}, 0);
    const auto result =
        sys.access(MemAccess{3, 0x8000, AccessType::Read}, 1000);
    EXPECT_EQ(result.servedBy, ServedBy::L2Remote);
    EXPECT_EQ(result.latency, 3u + 10u);
}

TEST(Simulation, ProducesPlausibleIpc)
{
    FourMix workload(7);
    StaticTopologySystem sys(testHier(),
                             Topology::allPrivateTopology(4));
    Simulation sim(sys, workload, testSim());
    const RunResult result = sim.run();
    ASSERT_EQ(result.epochs.size(), 4u);
    ASSERT_EQ(result.avgIpc.size(), 4u);
    for (double ipc : result.avgIpc) {
        EXPECT_GT(ipc, 0.0);
        EXPECT_LT(ipc, 4.0); // bounded by issue width
    }
    EXPECT_NEAR(result.avgThroughput,
                result.avgIpc[0] + result.avgIpc[1] +
                    result.avgIpc[2] + result.avgIpc[3],
                1e-9);
}

TEST(Simulation, DeterministicAcrossRuns)
{
    auto run_once = [] {
        FourMix workload(7);
        StaticTopologySystem sys(testHier(),
                                 Topology::symmetric(4, 2, 2, 1));
        Simulation sim(sys, workload, testSim());
        return sim.run().avgThroughput;
    };
    EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Simulation, CacheFriendlierWorkloadHasHigherIpc)
{
    // Same system, same class (so the same streaming share): the
    // small-footprint profile must beat the slice-overflowing one.
    BenchmarkProfile small_fp;
    small_fp.name = "synthetic-small";
    small_fp.l2Acf = 0.20;
    small_fp.l3Acf = 0.25;
    small_fp.cls = 3;
    BenchmarkProfile big_fp = small_fp;
    big_fp.name = "synthetic-big";
    big_fp.l2Acf = 0.90;
    big_fp.l3Acf = 0.90;

    GeneratorParams gen = testGen();
    SoloWorkload tiny(small_fp, gen, 7);
    SoloWorkload big(big_fp, gen, 7);

    HierarchyParams hier = testHier(1);
    SimParams sim = testSim();

    StaticTopologySystem sys_a(hier, Topology::allPrivateTopology(1));
    Simulation sim_a(sys_a, tiny, sim);
    StaticTopologySystem sys_b(hier, Topology::allPrivateTopology(1));
    Simulation sim_b(sys_b, big, sim);

    EXPECT_GT(sim_a.run().avgThroughput, sim_b.run().avgThroughput);
}

TEST(MorphSystem, ReconfiguresAwayFromPrivate)
{
    FourMix workload(7);
    MorphCacheSystem sys(testHier(), MorphConfig{});
    SimParams params = testSim();
    params.epochs = 8;
    Simulation sim(sys, workload, params);
    sim.run();
    // cactusADM (hot) next to libquantum (cold) must trigger at
    // least one reconfiguration over 9 epochs.
    EXPECT_GT(sys.controller().stats().reconfigurations(), 0u);
}

TEST(MorphSystem, TracksBaselineOnBalancedLoad)
{
    // All-identical medium workloads: MorphCache should not lose
    // much to the private static topology (no bad merges).
    auto make_wl = [] {
        GeneratorParams gen = testGen();
        return std::make_unique<MixWorkload>(mixByName("MIX 12"),
                                             gen, 7);
    };
    // Note: MIX 12 is 16 cores.
    HierarchyParams hier = testHier(16);
    SimParams sim = testSim();

    auto wl1 = make_wl();
    StaticTopologySystem priv(hier, Topology::allPrivateTopology(16));
    Simulation sim1(priv, *wl1, sim);
    const double base = sim1.run().avgThroughput;

    auto wl2 = make_wl();
    MorphCacheSystem morph(hier, MorphConfig{});
    Simulation sim2(morph, *wl2, sim);
    const double tput = sim2.run().avgThroughput;

    EXPECT_GT(tput, 0.85 * base);
}

} // namespace
} // namespace morphcache


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/acf_test.cc" "tests/CMakeFiles/mc_tests.dir/acf_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/acf_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/mc_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/bus_sim_test.cc" "tests/CMakeFiles/mc_tests.dir/bus_sim_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/bus_sim_test.cc.o.d"
  "/root/repo/tests/cache_level_test.cc" "tests/CMakeFiles/mc_tests.dir/cache_level_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/cache_level_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/mc_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/config_test.cc" "tests/CMakeFiles/mc_tests.dir/config_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/config_test.cc.o.d"
  "/root/repo/tests/controller_policy_test.cc" "tests/CMakeFiles/mc_tests.dir/controller_policy_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/controller_policy_test.cc.o.d"
  "/root/repo/tests/controller_test.cc" "tests/CMakeFiles/mc_tests.dir/controller_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/controller_test.cc.o.d"
  "/root/repo/tests/estimator_test.cc" "tests/CMakeFiles/mc_tests.dir/estimator_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/estimator_test.cc.o.d"
  "/root/repo/tests/hierarchy_edge_test.cc" "tests/CMakeFiles/mc_tests.dir/hierarchy_edge_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/hierarchy_edge_test.cc.o.d"
  "/root/repo/tests/hierarchy_test.cc" "tests/CMakeFiles/mc_tests.dir/hierarchy_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/hierarchy_test.cc.o.d"
  "/root/repo/tests/interconnect_test.cc" "tests/CMakeFiles/mc_tests.dir/interconnect_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/interconnect_test.cc.o.d"
  "/root/repo/tests/mem_test.cc" "tests/CMakeFiles/mc_tests.dir/mem_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/mem_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/mc_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/mc_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/mc_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/mc_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/tiled_test.cc" "tests/CMakeFiles/mc_tests.dir/tiled_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/tiled_test.cc.o.d"
  "/root/repo/tests/topology_test.cc" "tests/CMakeFiles/mc_tests.dir/topology_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/topology_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/mc_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/ucp_energy_test.cc" "tests/CMakeFiles/mc_tests.dir/ucp_energy_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/ucp_energy_test.cc.o.d"
  "/root/repo/tests/workload_dynamics_test.cc" "tests/CMakeFiles/mc_tests.dir/workload_dynamics_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/workload_dynamics_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/mc_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/mc_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/mc_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/acf/CMakeFiles/mc_acf.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/mc_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/morph/CMakeFiles/mc_morph.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mc_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

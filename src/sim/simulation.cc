#include "sim/simulation.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"
#include "stats/metrics.hh"

namespace morphcache {

Simulation::Simulation(MemorySystem &system, Workload &workload,
                       const SimParams &params)
    : system_(system), workload_(workload), params_(params),
      cycles_(workload.numCores(), 0.0),
      instrs_(workload.numCores(), 0.0)
{
    if (system.numCores() < workload.numCores()) {
        throw ConfigError("memory system models fewer cores than the "
                          "workload issues from");
    }
    if (params_.refsPerEpochPerCore == 0)
        throw ConfigError("epoch length must be nonzero references");
}

EpochMetrics
Simulation::runEpoch(EpochId epoch)
{
    const std::uint32_t cores = workload_.numCores();

    std::vector<double> cycles_start = cycles_;
    std::vector<double> instr_start = instrs_;
    std::vector<std::uint64_t> misses_start(cores, 0);
    for (std::uint32_t c = 0; c < cores; ++c) {
        misses_start[c] =
            system_.coreStats(static_cast<CoreId>(c)).misses();
    }

    workload_.beginEpoch(epoch);
    runEpochAccesses(system_, workload_, params_.core,
                     params_.refsPerEpochPerCore, cycles_, instrs_);
    system_.epochBoundary();

    EpochMetrics metrics;
    metrics.ipc.resize(cores);
    metrics.misses.resize(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        const double dcycles = cycles_[c] - cycles_start[c];
        const double dinstr = instrs_[c] - instr_start[c];
        metrics.ipc[c] = dcycles > 0.0 ? dinstr / dcycles : 0.0;
        metrics.misses[c] =
            system_.coreStats(static_cast<CoreId>(c)).misses() -
            misses_start[c];
    }
    metrics.throughput = throughput(metrics.ipc);
    return metrics;
}

RunResult
Simulation::run()
{
    const std::uint32_t cores = workload_.numCores();
    RunResult result;

    for (std::uint32_t w = 0; w < params_.warmupEpochs; ++w)
        runEpoch(nextEpoch_++);

    const std::vector<double> cycles_start = cycles_;
    const std::vector<double> instr_start = instrs_;

    result.epochs.reserve(params_.epochs);
    for (std::uint32_t e = 0; e < params_.epochs; ++e)
        result.epochs.push_back(runEpoch(nextEpoch_++));

    result.avgIpc.resize(cores);
    double max_cycles = 0.0;
    double total_instr = 0.0;
    for (std::uint32_t c = 0; c < cores; ++c) {
        const double dcycles = cycles_[c] - cycles_start[c];
        const double dinstr = instrs_[c] - instr_start[c];
        result.avgIpc[c] = dcycles > 0.0 ? dinstr / dcycles : 0.0;
        max_cycles = std::max(max_cycles, dcycles);
        total_instr += dinstr;
    }
    result.avgThroughput = throughput(result.avgIpc);
    result.performance =
        max_cycles > 0.0 ? total_instr / max_cycles : 0.0;
    return result;
}

} // namespace morphcache

/**
 * @file
 * Checkpoint/restore of complete simulator state.
 *
 * A checkpoint is one binary file capturing everything a run needs
 * to resume bit-exactly: cache slice contents and replacement
 * state, ACFV bit vectors, controller partitions / hysteresis /
 * quarantine state, segmented-bus occupancy, RNG streams and
 * workload cursors, simulation progress, the stats-registry
 * snapshot history, and the tracer position. The determinism
 * contract: a run restored from a checkpoint produces byte-identical
 * stdout, stats JSON/CSV, and JSONL trace output to the same-seed
 * run that was never interrupted.
 *
 * File layout (all little-endian):
 *
 *   "MCKP"            4-byte magic
 *   u32  version      ckptVersion
 *   u64  specHash     FNV-1a of describe(RunSpec)
 *   u64  seed         RunSpec seed (not part of the hash)
 *   u64  epochsDone   recorded epochs completed
 *   sections          4-byte tag + u64 length + payload:
 *     'SPEC'  the RunSpec itself (self-describing checkpoints)
 *     'WKLD'  workload cursor + RNG streams
 *     'SYST'  memory system (hierarchy, policies, controller)
 *     'SIMU'  simulation progress (clocks, recorded metrics)
 *     'REGY'  stats-registry snapshot history (optional)
 *     'TRCE'  tracer sequence + trace-file byte offset (optional)
 *   u64  checksum     FNV-1a of every preceding byte
 *
 * The checksum is verified *before* any parsing, so every bit flip
 * anywhere in the file surfaces as a typed CkptError, never as
 * silently divergent restored state. Writes go through the atomic
 * write-then-rename primitive, and the previous checkpoint is kept
 * as `<path>.prev`, giving restore a one-deep fallback chain.
 */

#ifndef MORPHCACHE_CKPT_CKPT_HH
#define MORPHCACHE_CKPT_CKPT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/run_spec.hh"
#include "sim/memory_system.hh"
#include "sim/simulation.hh"
#include "stats/registry.hh"
#include "stats/tracing.hh"
#include "workload/generator.hh"

namespace morphcache {

/** Current checkpoint format version. */
constexpr std::uint32_t ckptVersion = 1;

/** The live objects a checkpoint serializes or restores. */
struct CkptRunState
{
    Simulation *simulation = nullptr;
    MemorySystem *system = nullptr;
    Workload *workload = nullptr;
    /** Optional: snapshot history travels with the checkpoint. */
    StatsRegistry *registry = nullptr;
    /** Optional: event numbering resumes where it stopped. */
    Tracer *tracer = nullptr;
    /** JSONL trace-file byte offset at checkpoint time. */
    std::uint64_t traceByteOffset = 0;
};

/**
 * Write a checkpoint of `state` to `path` atomically. An existing
 * checkpoint at `path` is first rotated to `<path>.prev`, so the
 * chain always holds the last two consistent checkpoints.
 */
void writeCheckpoint(const std::string &path, const RunSpec &spec,
                     const CkptRunState &state);

/** What a restore reports back. */
struct RestoreOutcome
{
    /** File the state was restored from (path or its .prev). */
    std::string pathUsed;
    /** True when the main file failed and .prev was used. */
    bool usedFallback = false;
    /** Recorded epochs the checkpoint had completed. */
    std::uint64_t epochsCompleted = 0;
    /** TRCE byte offset (0 when the checkpoint had no tracer). */
    std::uint64_t traceByteOffset = 0;
};

/**
 * Restore `state` from the checkpoint at `path`. Validates the
 * trailing checksum before parsing and the version / spec-hash /
 * seed binding before touching any component state; every failure
 * is a CkptError naming the file, offset, and expected-vs-found
 * values.
 */
RestoreOutcome readCheckpoint(const std::string &path,
                              const RunSpec &spec,
                              const CkptRunState &state);

/**
 * Restore from `path`, falling back to `<path>.prev` (with a logged
 * recovery warning) when the main file is missing, corrupt, or
 * truncated. Throws the *original* failure if neither loads.
 */
RestoreOutcome restoreCheckpointChain(const std::string &path,
                                      const RunSpec &spec,
                                      const CkptRunState &state);

/** Header + section inventory of a checkpoint (inspector tool). */
struct CkptInfo
{
    std::uint64_t fileSize = 0;
    std::uint32_t version = 0;
    std::uint64_t specHash = 0;
    std::uint64_t seed = 0;
    std::uint64_t epochsCompleted = 0;
    bool checksumOk = false;
    /** Embedded run spec (from the SPEC section). */
    RunSpec spec;
    /** (tag, payload bytes) per section, in file order. */
    std::vector<std::pair<std::string, std::uint64_t>> sections;
};

/**
 * Parse the header and section table of `path` without restoring
 * anything. Throws CkptError on checksum, magic, or structural
 * failure.
 */
CkptInfo inspectCheckpoint(const std::string &path);

/**
 * Cooperative interrupt flag. Signal handlers call
 * requestCkptInterrupt(); epoch loops poll ckptInterruptRequested()
 * and shut down through the checkpoint/manifest flush path, exiting
 * with ckptResumableExit.
 */
void requestCkptInterrupt();
bool ckptInterruptRequested();
void clearCkptInterrupt();

/** Exit code of an interrupted-but-resumable run (EX_TEMPFAIL). */
constexpr int ckptResumableExit = 75;

} // namespace morphcache

#endif // MORPHCACHE_CKPT_CKPT_HH

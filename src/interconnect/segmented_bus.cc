#include "interconnect/segmented_bus.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"

namespace morphcache {

SegmentedBus::SegmentedBus(std::uint32_t num_slices,
                           const BusParams &params)
    : params_(params), groupOf_(num_slices), busyUntil_(num_slices, 0)
{
    MC_ASSERT(num_slices > 0);
    for (std::uint32_t i = 0; i < num_slices; ++i)
        groupOf_[i] = i; // all-private default
    segSize_.assign(num_slices, 1);
    segQueueCycles_.assign(num_slices, 0);
    segTxns_.assign(num_slices, 0);
}

void
SegmentedBus::configure(const std::vector<std::uint32_t> &group_of)
{
    MC_ASSERT(group_of.size() == groupOf_.size());
    // Normalize ids into [0, num_slices): the first slice of each
    // group becomes its dense segment index.
    std::unordered_map<std::uint32_t, std::uint32_t> firstOf;
    firstOf.reserve(group_of.size());
    for (std::uint32_t i = 0; i < group_of.size(); ++i) {
        groupOf_[i] = firstOf.emplace(group_of[i], i).first->second;
    }
    // Segment sizes bound the worst-case queueing round.
    segSize_.assign(groupOf_.size(), 0);
    for (std::uint32_t i = 0; i < groupOf_.size(); ++i)
        ++segSize_[groupOf_[i]];
    // Reconfiguration drains in-flight transactions; segments start
    // idle relative to whatever cycle comes next. Without this
    // reset, occupancy accumulated under the *old* representative
    // mapping would be re-read under the new one and charge phantom
    // queueing (or hide real contention) on the first post-reconfig
    // accesses.
    std::fill(busyUntil_.begin(), busyUntil_.end(), 0);
}

Cycle
SegmentedBus::queueAndOccupy(SliceId slice, Cycle now)
{
    MC_ASSERT(slice < groupOf_.size());
    const std::uint32_t seg = groupOf_[slice];
    // Requesters live on their own core clocks, which drift apart;
    // the physically meaningful bound on queueing is one service
    // round of the whole segment (every other slice queued ahead),
    // so the wait is capped there rather than letting cross-clock
    // skew masquerade as contention.
    const Cycle occupancy = params_.occupancyCpuCycles();
    const Cycle cap = occupancy * segSize_[seg];
    Cycle wait = satSub(busyUntil_[seg], now);
    if (wait > cap)
        wait = cap;
    // Injected grant faults (dropped/delayed grants) stretch both
    // the requester's wait and the segment's occupancy: a lost
    // grant re-arbitrates on the same wires everyone shares.
    Cycle fault = 0;
    if (faultHook_)
        fault = faultHook_->grantDelay(slice, now + wait);
    busyUntil_[seg] = now + wait + fault + occupancy;
    ++numTxns_;
    queueCycles_ += wait;
    ++segTxns_[seg];
    segQueueCycles_[seg] += wait;
    return wait + fault;
}

std::uint64_t
SegmentedBus::queueingCyclesForSegment(std::uint32_t seg) const
{
    MC_ASSERT(seg < segQueueCycles_.size());
    return segQueueCycles_[seg];
}

std::uint64_t
SegmentedBus::transactionsForSegment(std::uint32_t seg) const
{
    MC_ASSERT(seg < segTxns_.size());
    return segTxns_[seg];
}

Cycle
SegmentedBus::transact(SliceId slice, Cycle now)
{
    return queueAndOccupy(slice, now) + params_.txnCpuCycles();
}

Cycle
SegmentedBus::transactRequest(SliceId slice, Cycle now)
{
    return queueAndOccupy(slice, now) + params_.requestCpuCycles();
}

std::uint32_t
SegmentedBus::groupOf(SliceId slice) const
{
    MC_ASSERT(slice < groupOf_.size());
    return groupOf_[slice];
}

} // namespace morphcache

/**
 * @file
 * Quickstart: run one SPEC mix under MorphCache and under the
 * all-shared static baseline, print the throughput improvement.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "sim/config.hh"
#include "sim/simulation.hh"
#include "workload/generator.hh"

using namespace morphcache;

int
main()
{
    const HierarchyParams hier = experimentHierarchy(16);
    SimParams sim;
    sim.epochs = 10;
    sim.warmupEpochs = 2;

    const GeneratorParams gen = generatorFor(hier);

    // --- Static all-shared baseline: the (16:1:1) topology -------
    MixWorkload baseline_wl(mixByName("MIX 08"), gen, /*seed=*/42);
    StaticTopologySystem baseline(hier,
                                  Topology::symmetric(16, 16, 1, 1));
    Simulation baseline_sim(baseline, baseline_wl, sim);
    const RunResult base = baseline_sim.run();

    // --- MorphCache -----------------------------------------------
    MixWorkload morph_wl(mixByName("MIX 08"), gen, /*seed=*/42);
    MorphCacheSystem morph(hier, MorphConfig{});
    Simulation morph_sim(morph, morph_wl, sim);
    const RunResult result = morph_sim.run();

    std::printf("workload            : MIX 08 (16 single-threaded "
                "SPEC applications)\n");
    std::printf("baseline (16:1:1)   : throughput %.3f IPC\n",
                base.avgThroughput);
    std::printf("MorphCache          : throughput %.3f IPC\n",
                result.avgThroughput);
    std::printf("improvement         : %+.1f%%\n",
                100.0 * (result.avgThroughput / base.avgThroughput -
                         1.0));
    std::printf("final topology      : %s\n",
                morph.hierarchy().topology().name().c_str());
    std::printf("reconfigurations    : %llu merges, %llu splits\n",
                static_cast<unsigned long long>(
                    morph.controller().stats().merges),
                static_cast<unsigned long long>(
                    morph.controller().stats().splits));
    return 0;
}

/**
 * @file
 * Memory-trace capture and replay.
 *
 * The synthetic generators are the default workload source, but a
 * downstream user will eventually want to drive the hierarchy from
 * real traces (e.g. converted Pin/gem5 output). TraceRecorder
 * captures any Workload's streams into a compact binary file with
 * epoch markers; TraceWorkload replays such a file through the
 * standard Workload interface, so every simulator facility
 * (MorphCache, statics, PIPP, DSR, the ideal oracle) works on
 * traces unchanged.
 *
 * File format (little-endian):
 *   magic "MCTR", u32 version, u32 numCores,
 *   then records: u8 kind (0 = access, 1 = epoch marker),
 *     access: u16 core, u8 type, u64 addr
 *     epoch:  u32 epoch id
 */

#ifndef MORPHCACHE_WORKLOAD_TRACE_HH
#define MORPHCACHE_WORKLOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workload/generator.hh"

namespace morphcache {

/** In-memory trace: per-epoch, per-core reference sequences. */
struct Trace
{
    std::uint32_t numCores = 0;
    /** epochs[e][c] = references of core c during epoch e. */
    std::vector<std::vector<std::vector<MemAccess>>> epochs;

    /** Total references across all epochs and cores. */
    std::uint64_t totalReferences() const;
};

/**
 * Capture `refs_per_epoch` references per core for `num_epochs`
 * epochs from any workload.
 */
Trace recordTrace(Workload &workload, std::uint32_t num_epochs,
                  std::uint64_t refs_per_epoch);

/** Serialize a trace to a file; fatal() on I/O errors. */
void writeTrace(const Trace &trace, const std::string &path);

/**
 * Load a trace from a file. Malformed input — missing file, wrong
 * magic, version mismatch, truncation mid-record, out-of-range core
 * ids, out-of-order epoch markers, unknown record kinds — throws
 * TraceError naming the file and byte offset, never crashes or
 * reads uninitialized data.
 */
Trace readTrace(const std::string &path);

/**
 * Replays a Trace through the Workload interface. Each epoch's
 * per-core sequences are consumed in order; if the simulator asks
 * for more references than an epoch holds, the sequence wraps (and
 * a wrap counter records it). The constructor rejects traces that
 * cannot replay (no epochs, missing per-core sequences, an epoch
 * with no references for some core) with TraceError.
 */
class TraceWorkload : public Workload
{
  public:
    explicit TraceWorkload(Trace trace, bool shared_address_space =
                                            false);

    MemAccess next(CoreId core) override;
    void beginEpoch(EpochId epoch) override;
    bool
    sharedAddressSpace() const override
    {
        return sharedAddressSpace_;
    }
    std::uint32_t numCores() const override;
    std::unique_ptr<Workload> clone() const override;
    std::string name() const override { return "trace"; }

    /** Times any core's epoch sequence wrapped around. */
    std::uint64_t wrapCount() const { return wraps_; }

    /**
     * Serialize the replay cursor (epoch index, per-core positions,
     * wrap counter) — not the trace itself, which the restored run
     * reloads from its original file.
     */
    void saveState(CkptWriter &w) const override;
    void loadState(CkptReader &r) override;

  private:
    Trace trace_;             // ckpt: derived(TraceWorkload)
    bool sharedAddressSpace_; // ckpt: derived(TraceWorkload)
    std::size_t epoch_ = 0;
    std::vector<std::size_t> cursor_;
    std::uint64_t wraps_ = 0;
};

} // namespace morphcache

#endif // MORPHCACHE_WORKLOAD_TRACE_HH

#include "stats/tracing.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "common/logging.hh"

namespace morphcache {

TraceEvent::Field &
TraceEvent::next(const char *key, FieldKind kind)
{
    if (numFields >= maxFields)
        panic("trace event '%s' exceeds %zu fields", type, maxFields);
    Field &field = fields[numFields++];
    field.key = key;
    field.kind = kind;
    return field;
}

void
Tracer::emit(TraceEvent &ev)
{
    if (!sink_)
        return;
    ev.epoch = epoch_;
    ev.ts = time_;
    ev.seq = seq_++;
    sink_->event(ev);
}

namespace {

void
appendJsonString(std::string &out, const char *s)
{
    out += '"';
    for (; *s; ++s) {
        const char c = *s;
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
appendF64(std::string &out, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
}

void
appendFields(std::string &out, const TraceEvent &ev)
{
    for (std::size_t i = 0; i < ev.numFields; ++i) {
        const TraceEvent::Field &field = ev.fields[i];
        out += ", ";
        appendJsonString(out, field.key);
        out += ": ";
        switch (field.kind) {
          case TraceEvent::FieldKind::U64:
            appendU64(out, field.u);
            break;
          case TraceEvent::FieldKind::F64:
            appendF64(out, field.f);
            break;
          case TraceEvent::FieldKind::Str:
            appendJsonString(out, field.s ? field.s : "");
            break;
        }
    }
}

std::FILE *
openForWrite(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open trace file '%s' for writing",
              path.c_str());
    return f;
}

} // namespace

std::string
traceEventJson(const TraceEvent &ev)
{
    std::string out = "{\"type\": ";
    appendJsonString(out, ev.type);
    out += ", \"epoch\": ";
    appendU64(out, ev.epoch);
    out += ", \"ts\": ";
    appendU64(out, ev.ts);
    out += ", \"seq\": ";
    appendU64(out, ev.seq);
    appendFields(out, ev);
    out += '}';
    return out;
}

// --- JSONL sink -------------------------------------------------

JsonlTraceSink::JsonlTraceSink(const std::string &path)
    : file_(openForWrite(path))
{
}

JsonlTraceSink::JsonlTraceSink(const std::string &path,
                               std::uint64_t resume_offset)
    : file_(nullptr)
{
    if (::truncate(path.c_str(), static_cast<off_t>(resume_offset)) != 0) {
        fatal("cannot truncate trace file '%s' to resume offset %llu",
              path.c_str(),
              static_cast<unsigned long long>(resume_offset));
    }
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_)
        fatal("cannot reopen trace file '%s' for resume",
              path.c_str());
}

std::uint64_t
JsonlTraceSink::byteOffset() const
{
    if (!file_)
        return 0;
    std::fflush(file_);
    const long pos = std::ftell(file_);
    if (pos < 0)
        fatal("cannot read trace file offset");
    return static_cast<std::uint64_t>(pos);
}

JsonlTraceSink::~JsonlTraceSink()
{
    finish();
}

void
JsonlTraceSink::event(const TraceEvent &ev)
{
    const std::string line = traceEventJson(ev);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
}

void
JsonlTraceSink::finish()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

// --- Chrome trace-event sink ------------------------------------

ChromeTraceSink::ChromeTraceSink(const std::string &path)
    : file_(openForWrite(path))
{
    std::fputs("[\n", file_);
}

ChromeTraceSink::~ChromeTraceSink()
{
    finish();
}

void
ChromeTraceSink::event(const TraceEvent &ev)
{
    std::string out = first_ ? "" : ",\n";
    first_ = false;
    out += "{\"name\": ";
    appendJsonString(out, ev.type);
    out += ", \"cat\": \"morphcache\", \"ph\": \"i\", \"s\": \"g\""
           ", \"pid\": 0, \"tid\": 0, \"ts\": ";
    appendU64(out, ev.ts);
    out += ", \"args\": {\"epoch\": ";
    appendU64(out, ev.epoch);
    out += ", \"seq\": ";
    appendU64(out, ev.seq);
    appendFields(out, ev);
    out += "}}";
    std::fwrite(out.data(), 1, out.size(), file_);
}

void
ChromeTraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (file_) {
        std::fputs("\n]\n", file_);
        std::fclose(file_);
        file_ = nullptr;
    }
}

// --- String sink ------------------------------------------------

void
StringTraceSink::event(const TraceEvent &ev)
{
    text_ += traceEventJson(ev);
    text_ += '\n';
    ++numEvents_;
}

// --- Trace summary ----------------------------------------------

namespace {

/**
 * Extract the value of a top-level `"key": value` pair from one
 * JSONL line. Good enough for the fixed serialization above; not a
 * general JSON parser.
 */
bool
extractField(const std::string &line, const std::string &key,
             std::string &out)
{
    const std::string needle = "\"" + key + "\": ";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    auto start = pos + needle.size();
    if (start >= line.size())
        return false;
    if (line[start] == '"') {
        ++start;
        const auto end = line.find('"', start);
        if (end == std::string::npos)
            return false;
        out = line.substr(start, end - start);
        return true;
    }
    auto end = start;
    while (end < line.size() && line[end] != ',' &&
           line[end] != '}') {
        ++end;
    }
    out = line.substr(start, end - start);
    return true;
}

} // namespace

TraceSummary
summarizeTrace(std::istream &in)
{
    TraceSummary summary;
    std::string line;
    while (std::getline(in, line)) {
        std::string type, epoch;
        if (!extractField(line, "type", type) ||
            !extractField(line, "epoch", epoch)) {
            continue;
        }
        const std::uint64_t e =
            std::strtoull(epoch.c_str(), nullptr, 10);
        ++summary.epochs[e][type];
        ++summary.totalByType[type];
        ++summary.totalEvents;
    }
    return summary;
}

TraceSummary
summarizeTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    return summarizeTrace(in);
}

std::string
formatTraceSummary(const TraceSummary &summary)
{
    std::string out;
    char buf[128];
    std::vector<std::string> types;
    for (const auto &[type, count] : summary.totalByType)
        types.push_back(type);

    out += "epoch   events";
    for (const std::string &type : types) {
        std::snprintf(buf, sizeof(buf), "  %10s", type.c_str());
        out += buf;
    }
    out += '\n';
    for (const auto &[epoch, byType] : summary.epochs) {
        std::uint64_t total = 0;
        for (const auto &[type, count] : byType)
            total += count;
        std::snprintf(buf, sizeof(buf), "%5llu  %7llu",
                      static_cast<unsigned long long>(epoch),
                      static_cast<unsigned long long>(total));
        out += buf;
        for (const std::string &type : types) {
            const auto it = byType.find(type);
            const std::uint64_t count =
                it == byType.end() ? 0 : it->second;
            std::snprintf(buf, sizeof(buf), "  %10llu",
                          static_cast<unsigned long long>(count));
            out += buf;
        }
        out += '\n';
    }
    std::snprintf(buf, sizeof(buf), "total  %7llu events, %zu epochs\n",
                  static_cast<unsigned long long>(
                      summary.totalEvents),
                  summary.epochs.size());
    out += buf;
    return out;
}

} // namespace morphcache

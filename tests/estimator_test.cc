/**
 * @file
 * Tests for the footprint-estimation refinements and the bus
 * occupancy model: reuse-conditional ACFV clearing, fill-pressure
 * churn signals, the split-transaction occupancy override, and the
 * queueing cap across core clock domains.
 */

#include <gtest/gtest.h>

#include "hierarchy/cache_level.hh"
#include "interconnect/segmented_bus.hh"

namespace morphcache {
namespace {

LevelParams
smallLevel(std::uint32_t slices = 2)
{
    LevelParams params;
    params.name = "L2";
    params.numSlices = slices;
    params.sliceGeom = CacheGeometry{16 * 1024, 4, 64}; // 256/64
    return params;
}

TEST(ReuseClearing, StreamEvictionsClearTheirBits)
{
    CacheLevelModel level(smallLevel());
    // Stream 16x the slice capacity sequentially: single-use lines.
    for (Addr a = 0; a < 4096; ++a)
        level.insert(0, a, false);
    // Only the resident window's few granules remain visible.
    EXPECT_LT(level.utilization({0}), 0.10);
}

TEST(ReuseClearing, ReusedLinesKeepBitsThroughChurn)
{
    CacheLevelModel level(smallLevel());
    // A reused set of 64 dispersed lines (one per granule)...
    auto touch_all = [&] {
        for (Addr granule = 0; granule < 64; ++granule) {
            const Addr line = granule * 64 + (granule % 64);
            if (!level.lookup(0, line, 0).hit)
                level.insert(0, line, false);
        }
    };
    touch_all();
    touch_all(); // mark reused
    const double before = level.utilization({0});
    EXPECT_GT(before, 0.35);

    // ...then heavy streaming churn through the same slice, placed
    // so its granules hash into the other half of the vector: the
    // reused granule bits must survive (their evictions are reused
    // evictions; the stream's unreused evictions only clear the
    // stream's own buckets).
    for (Addr a = 64 * 64; a < 2 * 64 * 64; ++a)
        level.insert(0, a, false);
    EXPECT_GT(level.utilization({0}), 0.25);
}

TEST(FillPressure, DistinguishesStreamerFromIdle)
{
    CacheLevelModel level(smallLevel());
    // Slice 0 streams hard; slice 1 stays nearly idle.
    for (Addr a = 0; a < 2048; ++a)
        level.insert(0, a, false);
    for (Addr a = 0; a < 16; ++a)
        level.insert(1, (1 << 22) + a * 64, false);

    EXPECT_GT(level.fillPressure({0}), 3.0); // 2048/256 = 8x
    EXPECT_LT(level.fillPressure({1}), 0.5);
    // Reset clears the pressure accounting.
    level.resetFootprints();
    EXPECT_EQ(level.fillPressure({0}), 0.0);
}

TEST(BusOccupancy, OverrideShrinksOccupancyNotLatency)
{
    BusParams params;
    params.occupancyCpuCyclesOverride = 1;
    SegmentedBus bus(4, params);
    bus.configure({0, 0, 0, 0});
    // Latency stays the full 15-cycle transaction...
    EXPECT_EQ(bus.transact(0, 100), 15u);
    // ...but a back-to-back second transaction waits only 1 cycle.
    EXPECT_EQ(bus.transact(1, 100), 16u);
}

TEST(BusOccupancy, RequestOnlyTransactionIsCheaper)
{
    SegmentedBus bus(4, BusParams{});
    bus.configure({0, 0, 0, 0});
    // Request-only (miss broadcast): 2 bus cycles = 10 CPU cycles.
    EXPECT_EQ(bus.transactRequest(0, 0), 10u);
}

TEST(BusOccupancy, QueueWaitCappedAtOneServiceRound)
{
    SegmentedBus bus(4, BusParams{});
    bus.configure({0, 0, 0, 0});
    // A fast core races far ahead on its own clock...
    for (int i = 0; i < 50; ++i)
        bus.transact(0, 1000000);
    // ...a slow core's wait is bounded by one service round of the
    // segment (4 slices x 5-cycle occupancy), not by the clock gap.
    const Cycle latency = bus.transact(1, 0);
    EXPECT_LE(latency, 15u + 4u * 5u);
}

TEST(BusOccupancy, SegmentSizeBoundsTheCap)
{
    SegmentedBus bus(8, BusParams{});
    bus.configure({0, 0, 1, 1, 1, 1, 1, 1});
    for (int i = 0; i < 50; ++i)
        bus.transact(0, 1000000);
    // Slice 1 shares the 2-slice segment: cap = 2 x occupancy.
    EXPECT_LE(bus.transact(1, 0), 15u + 2u * 5u);
}

TEST(RemoteHitExtra, AddsFixedLatencyWithoutBus)
{
    LevelParams params = smallLevel();
    params.chargeBusPenalty = false;
    params.remoteHitExtraCycles = 15;
    CacheLevelModel level(params);
    level.insert(0, 0x123, false);
    level.configure({{0, 1}});
    const auto out = level.lookup(1, 0x123, 0);
    ASSERT_TRUE(out.hit);
    EXPECT_TRUE(out.remote);
    EXPECT_EQ(out.latency, 10u + 15u);
    EXPECT_EQ(level.bus().numTransactions(), 0u);
}

} // namespace
} // namespace morphcache

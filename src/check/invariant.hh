/**
 * @file
 * Runtime invariant checking for the reconfiguration engine.
 *
 * The paper states the structural invariants MorphCache depends on
 * — every partition must cover the slices of its level exactly once,
 * every L2 sharing group must be contained in a single L3 group
 * (inclusiveness, Sections 2.2/2.3), groups must have the shapes the
 * configured mode permits, and a reconfiguration must never create
 * cache lines out of thin air — but the simulator historically only
 * enforced them with process-killing assertions on a few paths.
 * InvariantChecker makes them first-class: each class of violation
 * is detected, described, counted, and handled according to a
 * configurable policy, so a controller bug or an injected fault
 * (fault.hh) degrades a run gracefully instead of silently
 * corrupting its results.
 */

#ifndef MORPHCACHE_CHECK_INVARIANT_HH
#define MORPHCACHE_CHECK_INVARIANT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.hh"
#include "hierarchy/topology.hh"

namespace morphcache {

class Hierarchy;

/** What to do when an invariant violation is detected. */
enum class CheckPolicy : std::uint8_t {
    /** No checking at all (the historical behaviour). */
    Off,
    /** Detect, count, and warn; drop the offending proposal. */
    Log,
    /**
     * Detect, count, warn, and quarantine the hierarchy to the
     * static all-private topology until it proves clean again.
     */
    Recover,
    /** Detect and panic() so the failure can be debugged. */
    Abort,
};

/** Parse "off"/"log"/"recover"/"abort"; throws ConfigError. */
CheckPolicy checkPolicyFromName(const std::string &name);

/** Lower-case name of a policy. */
const char *checkPolicyName(CheckPolicy policy);

/** Classes of invariant the checker knows how to violate-test. */
enum class InvariantKind : std::uint8_t {
    /** A level's partition does not cover [0, n) exactly once. */
    PartitionValidity,
    /** A group's shape is illegal for the configured mode. */
    GroupShape,
    /** An L2 group straddles more than one L3 group. */
    Inclusion,
    /** Valid lines appeared from nowhere across a reconfiguration. */
    LineConservation,
    /** A slice reports more valid lines than it has ways. */
    SliceOverflow,
};

/** Number of InvariantKind values (for counter arrays). */
inline constexpr std::size_t numInvariantKinds = 5;

/** Short name of an invariant class ("partition", "inclusion", ...). */
const char *invariantKindName(InvariantKind kind);

/** One detected violation. */
struct Violation
{
    InvariantKind kind;
    /** Human-readable description with the offending values. */
    std::string message;
};

/** Group-shape rules in force (derived from MorphConfig). */
enum class ShapeRule : std::uint8_t {
    /** Section 5.5 non-neighbor mode: any slice sets. */
    Any,
    /** Section 5.5 arbitrary-size mode: contiguous ranges. */
    Contiguous,
    /** Default mode: aligned power-of-two ranges. */
    AlignedPow2,
};

/** Checker activity counters (printed by the robustness report). */
struct CheckStats
{
    /** Check entry points executed. */
    std::uint64_t checksRun = 0;
    /** Total violations detected. */
    std::uint64_t violations = 0;
    /** Violations by InvariantKind. */
    std::array<std::uint64_t, numInvariantKinds> byKind{};
};

/**
 * Detects violations of the MorphCache structural invariants.
 *
 * The check* methods are pure detectors: they append Violation
 * records and never terminate the process, unlike
 * validatePartition()/MC_ASSERT. Applying the policy (warn, abort)
 * and counting happens in report(); the *recovery* reaction lives in
 * MorphController, which owns the quarantine state machine.
 */
class InvariantChecker
{
  public:
    explicit InvariantChecker(CheckPolicy policy = CheckPolicy::Off);

    CheckPolicy policy() const { return policy_; }
    bool enabled() const { return policy_ != CheckPolicy::Off; }

    /**
     * Partition validity: every slice of [0, num_slices) appears in
     * exactly one group, groups and members are in canonical
     * ascending order, and no group is empty.
     */
    void checkPartition(const char *level, const Partition &partition,
                        std::uint32_t num_slices,
                        std::vector<Violation> &out) const;

    /** Group shapes against the rule in force. */
    void checkGroupShapes(const char *level,
                          const Partition &partition, ShapeRule rule,
                          std::vector<Violation> &out) const;

    /**
     * Full topology check: both partitions, both shape sets, and
     * L2-within-L3 inclusiveness.
     */
    std::vector<Violation> checkTopology(const Topology &topology,
                                         ShapeRule rule) const;

    /** Per-slice valid-line counts of both reconfigurable levels. */
    struct LineSnapshot
    {
        std::vector<std::uint64_t> l2Lines;
        std::vector<std::uint64_t> l3Lines;
    };

    /** Capture line counts before a reconfiguration. */
    static LineSnapshot snapshot(const Hierarchy &hierarchy);

    /**
     * Line accounting across a reconfiguration: merging and
     * splitting are changes of view, so no slice may *gain* valid
     * lines (inclusion back-invalidation may only remove them), and
     * no slice may ever exceed its physical capacity.
     */
    std::vector<Violation>
    checkConservation(const Hierarchy &hierarchy,
                      const LineSnapshot &before) const;

    /** Slice occupancy against physical capacity (both levels). */
    std::vector<Violation>
    checkOccupancy(const Hierarchy &hierarchy) const;

    /**
     * Count the violations and apply the non-recovery part of the
     * policy: warn each one under Log/Recover, panic under Abort.
     * @param where Context string for the log ("epoch decision").
     * @return true when `violations` is non-empty.
     */
    bool report(const char *where,
                const std::vector<Violation> &violations);

    const CheckStats &stats() const { return stats_; }

    /** Serialize activity counters (policy is construction-time). */
    void
    saveState(CkptWriter &w) const
    {
        w.u64(stats_.checksRun);
        w.u64(stats_.violations);
        for (std::uint64_t count : stats_.byKind)
            w.u64(count);
    }

    void
    loadState(CkptReader &r)
    {
        stats_.checksRun = r.u64();
        stats_.violations = r.u64();
        for (std::uint64_t &count : stats_.byKind)
            count = r.u64();
    }

  private:
    CheckPolicy policy_; // ckpt: derived(InvariantChecker)
    CheckStats stats_;
};

} // namespace morphcache

#endif // MORPHCACHE_CHECK_INVARIANT_HH

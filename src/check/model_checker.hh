/**
 * @file
 * Exhaustive static verification of the reconfiguration engine.
 *
 * The legal-configuration space of a MorphCache hierarchy is a
 * finite transition system: states are (L2 partition, L3 partition)
 * pairs, and the transition relation is the controller's epoch
 * decision under every possible MSAT classification outcome. This
 * checker enumerates the *entire reachable space* from the
 * all-private start state and, for every reachable state and every
 * classification the hardware could latch, invokes the real
 * `MorphController::proposeTransition()` — the exact code path the
 * simulator runs — and proves that no proposal violates partition
 * validity, group shape, inclusiveness, or line conservation.
 *
 * Classification enumeration. Enumerating raw per-slice ACFV
 * vectors is infeasible (3^32 classifications at 16 cores) and
 * unnecessary: the decision logic consumes signals only through
 * `LevelSignals`, one query per merge/split evaluation, and each
 * query's influence on the decision is the boolean "desirable or
 * not". The oracle therefore enumerates each evaluation as a
 * two-way nondeterministic branch, memoized within one decision
 * (the live ACFV bank cannot answer the same query two ways in one
 * epoch), and replays prescribed answer prefixes to walk the whole
 * binary decision tree depth-first. Every behaviour a real-valued
 * signal assignment could induce maps onto one of these branches,
 * so the enumeration is a sound superset; condition-(ii) sharing
 * merges take the same structural action as condition-(i) merges,
 * so the two-way branch covers both justifications.
 *
 * Hysteresis contexts. Every state is explored twice: once with
 * merge-stamp hysteresis disabled (splits freely evaluated — the
 * superset of every stamp distance) and once with every multi-slice
 * L2 group stamp-blocked. The second context is not redundant: with
 * splits free, a straddling L2 group's split query is always asked
 * (and memoized) in the L2 split phase before an L3 split considers
 * it, so the forced-L2-split inclusion path can never fire. Only
 * when hysteresis suppresses the phase-3 query does the L3 split
 * phase ask it fresh and drive the forced bookkeeping — exactly the
 * code the simulator runs when an L3 split lands inside the
 * post-merge hysteresis window.
 *
 * Classification modes. `Full` walks the entire binary decision
 * tree per state — every combination of classification answers,
 * hence every multi-event epoch decision — and is the default up to
 * 8 cores. At 16 cores that tree has billions of leaves, so `Auto`
 * switches to `Cluster`: a partial-order reduction that runs, per
 * state, one decision per primary event (one "desirable" answer
 * plus its structurally forced companions; in the blocked context,
 * an L3-split primary also answers its forced straddler queries
 * "desirable"). The reachable state space stays exhaustive and
 * exact — every multi-event decision is a composition of
 * single-event steps, each of which starts from a reachable
 * intermediate topology whose outgoing single-event edges are all
 * verified, and the invariants are predicates on topologies, so any
 * violation a multi-event decision could produce is caught on the
 * single-event edge that introduces it. Multi-event bookkeeping
 * itself (merge cascades, multi-straddler forcing) is covered
 * exhaustively by the Full mode at smaller core counts over the
 * same code paths.
 *
 * Line conservation is established statically (a proposal is a
 * re-grouping of slices; the engine moves no lines) and re-checked
 * concretely on sampled transitions: a real Hierarchy is warmed
 * with a deterministic footprint, reconfigured across the sampled
 * edge, and audited with InvariantChecker::checkConservation().
 *
 * A failing proposal yields a counterexample: the BFS path of
 * topologies from the start state, the per-hop oracle answers, and
 * the offending decision's events and violations, replayed and
 * printed so the defect can be reproduced in isolation.
 */

#ifndef MORPHCACHE_CHECK_MODEL_CHECKER_HH
#define MORPHCACHE_CHECK_MODEL_CHECKER_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/invariant.hh"
#include "hierarchy/topology.hh"
#include "morph/controller.hh"
#include "morph/proposal.hh"

namespace morphcache {

/** One nondeterministic classification answered during a decision. */
struct OracleDecision
{
    /** Packed query: level, merge/split, and the group ranges. */
    std::uint32_t key = 0;
    /** The answer explored: was the merge/split desirable? */
    bool desirable = false;
};

/** Human-readable form of a packed oracle query ("l3 merge ..."). */
std::string oracleQueryName(std::uint32_t key);

/**
 * Two-way nondeterministic classification oracle.
 *
 * Within one run (one epoch decision), answers are memoized by
 * query so repeated evaluations are consistent, mirroring the
 * frozen ACFV bank. Fresh queries consume a prescribed answer
 * script and default to "not desirable" beyond it; advance()
 * computes the next script, flipping the deepest unexplored branch
 * (depth-first traversal of the decision tree).
 */
class ClassificationOracle
{
  public:
    /** "No query": a key value no packed query can take. */
    static constexpr std::uint32_t kNoQuery = 0xffffffffu;

    /** Start a scripted run with the given prescribed answers. */
    void beginRun(const std::vector<char> &script);

    /**
     * Start a targeted run: exactly the query `yes_key` is answered
     * "desirable" (kNoQuery for none); with `yes_all_l2_splits`,
     * every L2 split query is too (forced-straddler companions of
     * an L3-split primary in the hysteresis-blocked context).
     */
    void beginTargetedRun(std::uint32_t yes_key,
                          bool yes_all_l2_splits);

    /** Answer a query (memoized; consumes the script when fresh). */
    bool answer(std::uint32_t key);

    /** Fresh decisions of the current run, in query order. */
    const std::vector<OracleDecision> &trail() const { return trail_; }

    /**
     * Compute the next answer script from the current trail.
     * @return false when the decision tree is exhausted.
     */
    bool advance(std::vector<char> &script) const;

  private:
    std::vector<OracleDecision> trail_;
    std::vector<char> script_;
    bool targeted_ = false;
    std::uint32_t yesKey_ = kNoQuery;
    bool yesAllL2Splits_ = false;
};

/**
 * LevelSignals that realizes oracle answers as signal values: a
 * desirable merge reads one hot and one low-churn cold group
 * (condition i), a desirable split reads two hot halves, and any
 * undesirable evaluation reads mid-band utilizations.
 */
class OracleLevelSignals final : public LevelSignals
{
  public:
    OracleLevelSignals(ClassificationOracle &oracle, bool is_l3,
                       const MsatConfig &msat,
                       double split_high_factor);

    MergeSignals
    mergeSignals(const std::vector<SliceId> &a,
                 const std::vector<SliceId> &b) const override;
    SplitSignals
    splitSignals(const std::vector<SliceId> &first,
                 const std::vector<SliceId> &second) const override;
    double overlap(const std::vector<SliceId> &a,
                   const std::vector<SliceId> &b) const override;
    double
    utilization(const std::vector<SliceId> &slices) const override;

  private:
    ClassificationOracle &oracle_;
    bool isL3_;
    double hot_;
    double cold_;
    double mid_;
};

/** How classification outcomes are enumerated per state. */
enum class ClassificationMode
{
    /** Full up to 8 cores, Cluster beyond. */
    Auto,
    /** Every answer combination (the whole decision tree). */
    Full,
    /** One decision per primary event (partial-order reduction). */
    Cluster,
};

/** Parse a --classifications value; throws ConfigError. */
ClassificationMode classificationModeFromName(const char *name);
/** CLI name of a classification mode. */
const char *classificationModeName(ClassificationMode mode);

/** Model-checker configuration. */
struct ModelCheckConfig
{
    /** Cores (= slices per level); power of two, 2..32. */
    std::uint32_t numCores = 8;
    /** Per-state classification enumeration strategy. */
    ClassificationMode classifications = ClassificationMode::Auto;
    /** L2 MSAT driving the explored decisions. */
    MsatConfig msat;
    /** L3 MSAT. */
    MsatConfig msatL3{0.26, 0.20};
    /** Stop after discovering this many states (0 = unlimited). */
    std::uint64_t maxStates = 0;
    /** Concrete line-conservation samples to run (0 = none). */
    std::uint64_t lineChecks = 0;
    /** Planted decision-rule mutation (checker self-test). */
    RuleBug ruleBug = RuleBug::None;
};

/** Exploration counters. */
struct ModelCheckStats
{
    /** Distinct reachable states discovered. */
    std::uint64_t states = 0;
    /** States fully expanded (all classifications enumerated). */
    std::uint64_t statesExpanded = 0;
    /** proposeTransition() invocations (decision-tree leaves). */
    std::uint64_t transitions = 0;
    /** Deepest BFS level reached. */
    std::uint64_t maxDepth = 0;
    /** Concrete line-conservation samples executed. */
    std::uint64_t lineChecksRun = 0;
    /** Exploration stopped early by maxStates. */
    bool truncated = false;
};

/** One hop of a counterexample trace. */
struct CounterexampleStep
{
    /** Topology the decision started from. */
    Topology from;
    /** Classification answers that drove the decision. */
    std::vector<OracleDecision> answers;
    /** What the engine proposed. */
    TransitionProposal proposal;
    /** Decided in the hysteresis-blocked context. */
    bool splitsBlocked = false;
};

/** A reproducible path to an invariant-violating proposal. */
struct Counterexample
{
    /** Decisions from the all-private start state; last one fails. */
    std::vector<CounterexampleStep> steps;
    /** Violations of the final proposal. */
    std::vector<Violation> violations;
};

/** Print a counterexample trace (one line per fact). */
void printCounterexample(std::ostream &os, const Counterexample &cex);

/**
 * BFS enumerator over the reachable topology space.
 */
class TopologyModelChecker
{
  public:
    explicit TopologyModelChecker(const ModelCheckConfig &config);

    /**
     * Explore exhaustively. @return true when every reachable
     * proposal satisfies the invariants; false leaves the first
     * counterexample in counterexample().
     */
    bool run();

    const ModelCheckStats &stats() const { return stats_; }
    const std::optional<Counterexample> &counterexample() const
    {
        return counterexample_;
    }

    /** One-paragraph summary of the exploration. */
    std::string summary() const;

  private:
    /** Per-state exploration record (counterexample replay). */
    struct StateRec
    {
        /** Predecessor state key (self for the start state). */
        std::uint64_t parent = 0;
        /** Oracle script that produced this state from the parent. */
        std::vector<char> script;
        /** BFS depth. */
        std::uint64_t depth = 0;
        /** Discovered in the hysteresis-blocked context. */
        bool splitsBlocked = false;
    };

    /** The mode Auto resolves to for this core count. */
    ClassificationMode resolvedMode() const;

    /** Pack both partitions into a group-boundary-bitmask key. */
    std::uint64_t encode(const Partition &l2,
                         const Partition &l3) const;
    /** Rebuild the topology a key denotes. */
    Topology decode(std::uint64_t key) const;

    /** Run one decision from `from` with the oracle already begun. */
    TransitionProposal propose(const Topology &from,
                               ClassificationOracle &oracle,
                               bool splits_blocked) const;

    /**
     * Verify one explored decision, sample line conservation, and
     * record a newly discovered successor. @return false when a
     * counterexample was recorded (exploration must stop).
     */
    bool processRun(std::uint64_t key, std::uint64_t depth,
                    const Topology &from,
                    const ClassificationOracle &oracle,
                    const TransitionProposal &proposal,
                    bool splits_blocked);

    /** Walk the whole decision tree of one state/context. */
    bool expandFull(std::uint64_t key, std::uint64_t depth,
                    const Topology &from, bool splits_blocked);
    /** One decision per primary event (partial-order reduction). */
    bool expandCluster(std::uint64_t key, std::uint64_t depth,
                       const Topology &from, bool splits_blocked);

    /** Invariants of one proposal; empty = clean. */
    std::vector<Violation> verify(const TransitionProposal &p) const;

    /** Concrete line-conservation audit of one sampled edge. */
    std::vector<Violation> lineCheck(const Topology &from,
                                     const Topology &to);

    /** Build the counterexample ending in the given failing step. */
    void buildCounterexample(std::uint64_t from_key,
                             const std::vector<char> &script,
                             bool splits_blocked,
                             std::vector<Violation> violations);

    ModelCheckConfig config_;
    MorphController controller_;
    InvariantChecker checker_;
    ModelCheckStats stats_;
    std::unordered_map<std::uint64_t, StateRec> states_;
    std::vector<std::uint64_t> queue_;
    /** Stamps that block every multi-slice group's phase-3 split. */
    std::vector<std::uint64_t> blockedStamps_;
    std::optional<Counterexample> counterexample_;
};

} // namespace morphcache

#endif // MORPHCACHE_CHECK_MODEL_CHECKER_HH

# Empty dependencies file for mc_stats.
# This may be replaced when dependencies are built.

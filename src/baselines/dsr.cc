#include "baselines/dsr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace morphcache {

DsrPolicy::DsrPolicy(std::uint32_t num_slices, std::uint64_t num_sets,
                     std::uint64_t leader_period)
    : numSlices_(num_slices), numSets_(num_sets),
      leaderPeriod_(leader_period), psel_(num_slices, 0)
{
    MC_ASSERT(num_slices >= 2);
    MC_ASSERT(leader_period >= 2 * num_slices);
    MC_ASSERT(num_sets >= leader_period);
}

DsrPolicy::SetRole
DsrPolicy::roleOf(SliceId slice, std::uint64_t set) const
{
    // Within every leader period, slice s owns two leader sets:
    // one pinned always-spill, one pinned never-spill. Offsetting
    // by the slice id spreads leaders across distinct sets.
    const std::uint64_t phase = set % leaderPeriod_;
    if (phase == 2ull * slice)
        return SetRole::SpillLeader;
    if (phase == 2ull * slice + 1)
        return SetRole::ReceiveLeader;
    return SetRole::Follower;
}

bool
DsrPolicy::isSpiller(SliceId slice, std::uint64_t set) const
{
    switch (roleOf(slice, set)) {
      case SetRole::SpillLeader:
        return true;
      case SetRole::ReceiveLeader:
        return false;
      case SetRole::Follower:
      default:
        // Negative PSEL: the spill-leader sets missed less, so
        // spilling is the better policy for this cache.
        return psel_[slice] < 0;
    }
}

int
DsrPolicy::psel(SliceId slice) const
{
    MC_ASSERT(slice < numSlices_);
    return psel_[slice];
}

void
DsrPolicy::miss(CacheLevelModel &level, CoreId core, Addr line_addr)
{
    (void)level;
    // Misses in leader sets steer the dueling counter: a miss under
    // the always-spill leader charges the spill policy, a miss
    // under the never-spill leader charges the keep policy.
    const std::uint64_t set = line_addr & (numSets_ - 1);
    switch (roleOf(core, set)) {
      case SetRole::SpillLeader:
        psel_[core] = std::min(psel_[core] + 1, pselMax);
        break;
      case SetRole::ReceiveLeader:
        psel_[core] = std::max(psel_[core] - 1, -pselMax);
        break;
      case SetRole::Follower:
        break;
    }
}

bool
DsrPolicy::insert(CacheLevelModel &level, CoreId core, Addr line_addr,
                  bool dirty, InsertOutcome &out)
{
    // DSR always installs into the owner's private slice.
    out = level.insertIntoSlice(core, static_cast<SliceId>(core),
                                line_addr, dirty);
    if (!out.evicted.valid)
        return true;

    const std::uint64_t set = line_addr & (numSets_ - 1);
    if (!isSpiller(static_cast<SliceId>(core), set))
        return true;

    // Spill the victim into the next receiver slice (round-robin).
    for (std::uint32_t probe = 1; probe < numSlices_; ++probe) {
        const auto candidate = static_cast<SliceId>(
            (core + rotor_ + probe) % numSlices_);
        if (candidate == core)
            continue;
        if (isSpiller(candidate, set))
            continue;
        const InsertOutcome spill = level.insertIntoSlice(
            core, candidate, out.evicted.lineAddr, out.evicted.dirty);
        rotor_ = (rotor_ + probe) % numSlices_;
        ++spills_;
        // The spilled line stays at this level; what leaves is the
        // receiver's victim.
        out.evicted = spill.evicted;
        out.evictedFrom = spill.evictedFrom;
        return true;
    }
    return true; // no receiver available: plain eviction
}

namespace {

HierarchyParams
snoopingPrivate(HierarchyParams params)
{
    // DSR's snoop fabric is not the MorphCache segmented bus: a
    // local miss broadcasts over the existing coherence network.
    // Charge remote (snooped) hits a fixed penalty equal to the
    // merged-hit premium, without the segmented-bus serialization.
    params.l2.chargeBusPenalty = false;
    params.l3.chargeBusPenalty = false;
    params.l2.remoteHitExtraCycles = 15;
    params.l3.remoteHitExtraCycles = 15;
    // Like PIPP, DSR's original evaluation is not inclusion-
    // enforced; spills would otherwise trigger back-invalidations.
    params.inclusive = false;
    return params;
}

} // namespace

DsrSystem::DsrSystem(HierarchyParams params)
    : hierarchy_(snoopingPrivate(std::move(params))),
      l2Policy_(hierarchy_.numCores(),
                hierarchy_.params().l2.sliceGeom.numSets()),
      l3Policy_(hierarchy_.numCores(),
                hierarchy_.params().l3.sliceGeom.numSets())
{
    // One lookup group per level so local misses snoop every other
    // slice; insertion is kept private-with-spill by the hooks.
    Topology topo;
    topo.numCores = hierarchy_.numCores();
    topo.l2 = allShared(hierarchy_.numCores());
    topo.l3 = allShared(hierarchy_.numCores());
    hierarchy_.reconfigure(topo);
    hierarchy_.l2().setHooks(&l2Policy_);
    hierarchy_.l3().setHooks(&l3Policy_);
}

AccessResult
DsrSystem::access(const MemAccess &access, Cycle now)
{
    return hierarchy_.access(access, now);
}

const CoreStats &
DsrSystem::coreStats(CoreId core) const
{
    return hierarchy_.coreStats(core);
}

std::uint32_t
DsrSystem::numCores() const
{
    return hierarchy_.numCores();
}

} // namespace morphcache

#include "stats/stats.hh"

#include <cmath>

#include "common/logging.hh"

namespace morphcache {

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
pearsonCorrelation(const std::vector<double> &xs,
                   const std::vector<double> &ys)
{
    MC_ASSERT(xs.size() == ys.size());
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;

    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += xs[i];
        my += ys[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);

    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double
harmonicMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double inv = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        inv += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / inv;
}

double
geometricMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        logsum += std::log(x);
    }
    return std::exp(logsum / static_cast<double>(xs.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    MC_ASSERT(hi > lo);
    MC_ASSERT(buckets > 0);
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    long idx = static_cast<long>(std::floor((x - lo_) / width));
    if (idx < 0)
        idx = 0;
    if (idx >= static_cast<long>(counts_.size()))
        idx = static_cast<long>(counts_.size()) - 1;
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    MC_ASSERT(i < counts_.size());
    return counts_[i];
}

double
Histogram::bucketLo(std::size_t i) const
{
    MC_ASSERT(i < counts_.size());
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

} // namespace morphcache

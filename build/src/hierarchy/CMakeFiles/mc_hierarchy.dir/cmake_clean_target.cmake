file(REMOVE_RECURSE
  "libmc_hierarchy.a"
)

"""Pass 1: wrap-safety.

Unsigned subtraction is the repo's most-shipped bug class (stale
segmented-bus occupancy, pipelined cycle math — ROADMAP "Recent").
This pass flags ``a - b``, ``a -= b`` and ``--a`` where the left
operand is cycle/byte/count semantics on an unsigned type, unless
the site routes through the saturating helpers ``satSub``/``satDec``
(src/common/bitops.hh) or carries an allowlist entry with an audited
justification.

Flag rule, per subtraction site:
  * resolve the left operand's type (clang type if present, else
    chain resolution through the merged model);
  * classify both operands' *semantics* from terminal names and
    resolved type names (cycle / byte / count vocabularies below);
  * flag when the left operand is unsigned and either operand is
    semantic, or — when the type cannot be resolved — when BOTH
    operands land in the same semantic group (e.g.
    ``b[phase].allocBytes - a[phase].allocBytes``).

Literal left operands and signed/float types never flag. The
helpers' own implementations (src/common/bitops.hh) are exempt.
"""

from __future__ import annotations

import re

from model import Finding
from passes.common import Index

#: Semantic vocabularies. A name/type matches a group when any word
#: appears in it (case-insensitive, substring on word stems).
_GROUPS = {
    "cycle": re.compile(
        r"(?i)(cycle|busy|until|deadline|latency|wait|stamp)"),
    "byte": re.compile(r"(?i)byte"),
    "count": re.compile(
        r"(?i)(count|txns|ntxn|calls|frees|refs|epochs|hits|"
        r"misses|occupanc|accesses|evictions|lines\b)"),
}

_EXEMPT_FILES = {"src/common/bitops.hh"}


def _semantic_group(index: Index, name: str, type_text: str) -> str:
    hay = f"{name} {type_text} {index.resolve_alias(type_text)}"
    for group, pat in _GROUPS.items():
        if pat.search(hay):
            return group
    return ""


def _norm_site(text: str) -> str:
    return re.sub(r"\s+", "", text)


def run_wrap_safety(index: Index, scope) -> list[Finding]:
    findings: list[Finding] = []
    for fm in index.models:
        if fm.path in _EXEMPT_FILES or not scope(fm.path, "wrap"):
            continue
        for fn in fm.functions:
            for s in fn.subs:
                f = _check_site(index, fm.path, fn, s)
                if f:
                    findings.append(f)
    return findings


def _check_site(index, path, fn, s):
    if s.lhs_type == "<literal>":
        return None
    lhs_type = s.lhs_type or index.resolve_chain(fn, s.lhs)
    rhs_type = "" if s.rhs_type == "<literal>" else \
        (s.rhs_type or index.resolve_chain(fn, s.rhs))
    lhs_name = index.chain_terminal(s.lhs)
    rhs_name = index.chain_terminal(s.rhs) if s.rhs else ""
    lg = _semantic_group(index, lhs_name, lhs_type)
    rg = _semantic_group(index, rhs_name, rhs_type)
    if not lg and not rg:
        return None
    resolved = bool(lhs_type)
    if resolved and not index.is_unsigned(lhs_type):
        return None  # signed/float/pointer: wrap-safe by type
    if not resolved:
        # Unresolved: only flag when both operands agree on the
        # semantic group (keeps template/macro soup quiet).
        if s.op == "-" and (not lg or lg != rg):
            return None
        if s.op in ("-=", "--") and not lg:
            return None
    helper = "satDec" if s.op == "--" else "satSub"
    expr = s.lhs + s.op + (s.rhs or "")
    site = f"{fn.name}:{_norm_site(expr)}"
    what = {"-": "unsigned subtraction",
            "-=": "unsigned compound subtraction",
            "--": "unsigned decrement"}[s.op]
    group = lg or rg
    return Finding(
        path, s.line, "wrap-safety",
        f"{what} on {group}-typed expression "
        f"'{s.lhs} {s.op} {s.rhs}'".rstrip() +
        f"; route through {helper}() (src/common/bitops.hh) "
        "or allowlist with a justification",
        site)

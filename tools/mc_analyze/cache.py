"""Content-hash-keyed AST/model cache.

One JSON file per analyzed source file, named
``<sha256(content)[:24]>-<frontend>-v<MODEL_VERSION>.json`` under the
cache directory (default ``.cache/mc_analyze/``, gitignored via the
repo's ``.cache/`` rule). The key is the *content* hash — not mtime —
so a rebuilt checkout, a CI cache restore, or `git stash` round-trip
all hit; any byte change, frontend switch, or model-schema bump
misses. Eviction is unnecessary at repo scale (one small JSON per
file), but `prune()` drops entries whose key no longer corresponds
to any live file, keeping CI cache uploads bounded.
"""

from __future__ import annotations

import hashlib
import json
import os

from model import FileModel

MODEL_VERSION = 1


class ModelCache:
    def __init__(self, cache_dir: str | None):
        self.dir = cache_dir
        self.hits = 0
        self.misses = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    @staticmethod
    def key(content: bytes, frontend: str) -> str:
        h = hashlib.sha256(content).hexdigest()[:24]
        return f"{h}-{frontend}-v{MODEL_VERSION}"

    def _path(self, key: str) -> str:
        return os.path.join(self.dir, key + ".json")

    def get(self, content: bytes, frontend: str) -> FileModel | None:
        if not self.dir:
            return None
        p = self._path(self.key(content, frontend))
        try:
            with open(p, encoding="utf-8") as f:
                fm = FileModel.from_json(json.load(f))
            self.hits += 1
            return fm
        except (OSError, ValueError, KeyError):
            return None

    def put(self, content: bytes, frontend: str,
            fm: FileModel) -> None:
        self.misses += 1
        if not self.dir:
            return
        p = self._path(self.key(content, frontend))
        tmp = p + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(fm.to_json(), f)
        os.replace(tmp, p)

    def prune(self, live_keys: set[str]) -> int:
        """Delete cache entries not in `live_keys`; returns count."""
        if not self.dir:
            return 0
        dropped = 0
        for name in os.listdir(self.dir):
            if name.endswith(".json") and name[:-5] not in live_keys:
                try:
                    os.remove(os.path.join(self.dir, name))
                    dropped += 1
                except OSError:
                    pass
        return dropped

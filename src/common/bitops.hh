/**
 * @file
 * Small integer/bit helpers used across the cache model.
 */

#ifndef MORPHCACHE_COMMON_BITOPS_HH
#define MORPHCACHE_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>
#include <type_traits>

#include "common/logging.hh"

namespace morphcache {

/** True iff x is a nonzero power of two. */
constexpr bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); x must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** log2(x) for an exact power of two. */
inline unsigned
exactLog2(std::uint64_t x)
{
    MC_ASSERT(isPowerOf2(x));
    return floorLog2(x);
}

/** Extract bits [lo, lo+n) of x. */
constexpr std::uint64_t
bits(std::uint64_t x, unsigned lo, unsigned n)
{
    return (x >> lo) & ((n >= 64) ? ~0ULL : ((1ULL << n) - 1));
}

/** Ceiling division for unsigned integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Saturating subtraction for unsigned cycle/byte/count math:
 * a - b, floored at 0 instead of wrapping to ~2^64. Unsigned
 * subtraction that can cross zero is this repo's most-shipped bug
 * class (stale bus occupancy, pipelined-cycle overlap); every such
 * site must route through here or carry an mc_analyze allowlist
 * entry. The second operand is non-deduced so literals convert to
 * the left operand's type (`satSub(cycles, 1)`).
 */
template <typename T>
[[nodiscard]] constexpr T
satSub(T a, std::type_identity_t<T> b)
{
    static_assert(std::is_unsigned_v<T>,
                  "satSub is for unsigned types; signed math "
                  "does not wrap at zero");
    return a >= b ? a - b : T{0};
}

/** Saturating decrement: --v unless v is already 0. Returns the
 *  new value. */
template <typename T>
constexpr T
satDec(T &v)
{
    static_assert(std::is_unsigned_v<T>,
                  "satDec is for unsigned types");
    if (v != 0)
        --v;
    return v;
}

/**
 * Exact division by a cached constant via the multiply-high trick
 * (Lemire's fastmod recipe): with magic = ceil(2^64 / d), the
 * quotient hi64(magic * x) equals x / d exactly for every
 * x < 2^32 when d < 2^32. Replaces a ~25-cycle hardware divide
 * with one widening multiply on hot paths whose divisor changes
 * rarely (e.g. once per epoch). Callers must check fits() and fall
 * back to plain division otherwise — both compute the identical
 * quotient, so which path runs never affects results.
 */
class FastU32Div
{
  public:
    /** Cache the reciprocal of d (d must be nonzero). */
    void
    prime(std::uint64_t d)
    {
        MC_ASSERT(d != 0);
        divisor_ = d;
        magic_ = d > 1 ? ~std::uint64_t{0} / d + 1 : 0;
    }

    /** Divisor the cached reciprocal was computed for. */
    std::uint64_t divisor() const { return divisor_; }

    /** True iff the fast path is exact for this dividend. */
    bool
    fits(std::uint64_t x) const
    {
        return (x | divisor_) < (std::uint64_t{1} << 32);
    }

    /** x / divisor (exact; requires fits(x)). */
    std::uint64_t
    quotient(std::uint64_t x) const
    {
        if (divisor_ <= 1)
            return x;
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(magic_) * x) >> 64);
    }

  private:
    std::uint64_t magic_ = 0;
    std::uint64_t divisor_ = 0;
};

} // namespace morphcache

#endif // MORPHCACHE_COMMON_BITOPS_HH

# Empty dependencies file for mc_interconnect.
# This may be replaced when dependencies are built.

/**
 * @file
 * Topology explorer: build custom (possibly asymmetric) topologies
 * through the public API, validate them, and measure a workload on
 * each — the programmatic counterpart of Figure 3.
 *
 * Demonstrates: the (x:y:z) factory, hand-built asymmetric
 * partitions, inclusion validation, and direct Hierarchy driving.
 */

#include <cstdio>

#include "sim/config.hh"
#include "sim/simulation.hh"
#include "workload/generator.hh"

using namespace morphcache;

namespace {

/** Hand-built asymmetric topology, like the Figure 3 highlight. */
Topology
asymmetricExample()
{
    Topology topo;
    topo.numCores = 16;
    // L2: cores 0-1 share, 2-3 share, 4-7 share, rest private.
    topo.l2 = {{0, 1}, {2, 3}, {4, 5, 6, 7}};
    for (SliceId s = 8; s < 16; ++s)
        topo.l2.push_back({s});
    // L3: cores 0-7 share one big slice group, 8-11 share, 12-15
    // private pairs.
    topo.l3 = {{0, 1, 2, 3, 4, 5, 6, 7}, {8, 9, 10, 11}};
    topo.l3.push_back({12, 13});
    topo.l3.push_back({14, 15});
    return topo;
}

} // namespace

int
main()
{
    const HierarchyParams hier = experimentHierarchy(16);
    SimParams sim;
    sim.epochs = 6;

    const GeneratorParams gen = generatorFor(hier);

    const Topology topologies[] = {
        Topology::symmetric(16, 16, 1, 1),
        Topology::symmetric(16, 1, 1, 16),
        Topology::symmetric(16, 2, 2, 4),
        Topology::symmetric(16, 4, 4, 1),
        asymmetricExample(),
    };

    std::printf("MIX 05 throughput by topology:\n");
    for (const Topology &topo : topologies) {
        if (!topo.respectsInclusion()) {
            std::printf("  %-28s skipped (violates inclusion)\n",
                        topo.name().c_str());
            continue;
        }
        MixWorkload workload(mixByName("MIX 05"), gen, 42);
        StaticTopologySystem sys(hier, topo);
        Simulation simulation(sys, workload, sim);
        const RunResult run = simulation.run();
        std::printf("  %-28s %6.3f IPC\n", topo.name().c_str(),
                    run.avgThroughput);
    }
    return 0;
}

#include "workload/profiles.hh"

#include "common/logging.hh"

namespace morphcache {

namespace {

// Table 4, SPEC CPU 2006 side. Characteristics were collected by
// the authors on a single core with a private 256 KB L2 slice and
// 1 MB L3 slice; class in parentheses in the paper:
// 0 = low L2 / low L3, 1 = low L2 / high L3,
// 2 = high L2 / low L3, 3 = high L2 / high L3.
std::vector<BenchmarkProfile>
makeSpec()
{
    // name,          l2Acf l2sT  l3Acf l3sT  cls
    return {
        {"GemsFDTD",   0.34, 0.14, 0.46, 0.25, 0, false, 0, 0, 0},
        {"astar",      0.42, 0.06, 0.56, 0.02, 1, false, 0, 0, 0},
        {"bwaves",     0.56, 0.05, 0.43, 0.17, 2, false, 0, 0, 0},
        {"bzip2",      0.59, 0.18, 0.46, 0.22, 2, false, 0, 0, 0},
        {"cactusADM",  0.74, 0.16, 0.48, 0.04, 2, false, 0, 0, 0},
        {"calculix",   0.62, 0.02, 0.56, 0.02, 3, false, 0, 0, 0},
        {"dealII",     0.58, 0.07, 0.71, 0.19, 3, false, 0, 0, 0},
        {"gamess",     0.41, 0.09, 0.38, 0.11, 0, false, 0, 0, 0},
        {"gcc",        0.59, 0.18, 0.66, 0.13, 3, false, 0, 0, 0},
        {"gobmk",      0.73, 0.13, 0.45, 0.01, 2, false, 0, 0, 0},
        {"gromacs",    0.39, 0.14, 0.77, 0.20, 1, false, 0, 0, 0},
        {"h264ref",    0.65, 0.02, 0.55, 0.04, 3, false, 0, 0, 0},
        {"hmmer",      0.31, 0.19, 0.69, 0.11, 1, false, 0, 0, 0},
        {"lbm",        0.44, 0.19, 0.42, 0.08, 0, false, 0, 0, 0},
        {"leslie3d",   0.56, 0.04, 0.34, 0.12, 2, false, 0, 0, 0},
        {"libquantum", 0.26, 0.14, 0.18, 0.11, 0, false, 0, 0, 0},
        {"mcf",        0.38, 0.16, 0.51, 0.04, 1, false, 0, 0, 0},
        {"milc",       0.42, 0.02, 0.59, 0.05, 1, false, 0, 0, 0},
        {"namd",       0.55, 0.04, 0.48, 0.12, 2, false, 0, 0, 0},
        {"omnetpp",    0.47, 0.03, 0.58, 0.08, 1, false, 0, 0, 0},
        {"perlbench",  0.31, 0.08, 0.42, 0.01, 0, false, 0, 0, 0},
        {"povray",     0.58, 0.11, 0.41, 0.07, 2, false, 0, 0, 0},
        {"sjeng",      0.56, 0.02, 0.41, 0.06, 2, false, 0, 0, 0},
        {"soplex",     0.53, 0.07, 0.47, 0.07, 2, false, 0, 0, 0},
        {"sphinx",     0.49, 0.04, 0.63, 0.11, 1, false, 0, 0, 0},
        {"tonto",      0.63, 0.12, 0.57, 0.06, 3, false, 0, 0, 0},
        {"wrf",        0.46, 0.07, 0.73, 0.14, 1, false, 0, 0, 0},
        {"xalancbmk",  0.58, 0.03, 0.57, 0.03, 3, false, 0, 0, 0},
        {"zeusmp",     0.54, 0.05, 0.44, 0.17, 2, false, 0, 0, 0},
    };
}

// Table 4, PARSEC side (collected on a 16-core CMP, per-core
// slices; temporal sigma averaged across threads, spatial sigma
// across threads within an epoch). The sharedFraction column is
// not in the paper; values follow its qualitative discussion.
std::vector<BenchmarkProfile>
makeParsec()
{
    // name,         l2Acf l2sT  l3Acf l3sT cls  mt  l2sS  l3sS shr
    return {
        {"blackscholes", 0.23, 0.04, 0.18, 0.02, -1, true, 0.07,
         0.05, 0.10},
        {"bodytrack",    0.38, 0.07, 0.22, 0.04, -1, true, 0.03,
         0.02, 0.15},
        {"canneal",      0.65, 0.13, 0.58, 0.07, -1, true, 0.18,
         0.14, 0.40},
        {"dedup",        0.47, 0.05, 0.74, 0.16, -1, true, 0.08,
         0.12, 0.50},
        {"facesim",      0.41, 0.11, 0.64, 0.17, -1, true, 0.14,
         0.08, 0.35},
        {"ferret",       0.59, 0.14, 0.58, 0.06, -1, true, 0.18,
         0.08, 0.35},
        {"fluidanimate", 0.47, 0.04, 0.41, 0.03, -1, true, 0.11,
         0.19, 0.20},
        {"freqmine",     0.61, 0.13, 0.71, 0.14, -1, true, 0.13,
         0.20, 0.50},
        {"streamcluster", 0.79, 0.28, 0.61, 0.16, -1, true, 0.12,
         0.07, 0.25},
        {"swaptions",    0.43, 0.05, 0.37, 0.04, -1, true, 0.11,
         0.02, 0.10},
        {"vips",         0.62, 0.09, 0.57, 0.06, -1, true, 0.15,
         0.12, 0.25},
        {"x264",         0.55, 0.07, 0.52, 0.13, -1, true, 0.10,
         0.18, 0.35},
    };
}

std::vector<MixSpec>
makeMixes()
{
    // Table 5; short names expanded to the canonical Table 4 names
    // ("leslie" = leslie3d, "cactus" = cactusADM, "libm" = lbm,
    // "libq" = libquantum, "perl" = perlbench, "Gems" = GemsFDTD,
    // "h264" = h264ref, "xalanc" = xalancbmk, "gomacs" = gromacs).
    return {
        {"MIX 01", {0, 0, 10, 6},
         {"calculix", "bwaves", "leslie3d", "namd", "sjeng", "bzip2",
          "povray", "soplex", "cactusADM", "tonto", "xalancbmk",
          "zeusmp", "dealII", "gcc", "gobmk", "h264ref"}},
        {"MIX 02", {0, 4, 6, 6},
         {"dealII", "gcc", "leslie3d", "namd", "sjeng", "zeusmp",
          "bzip2", "calculix", "gobmk", "h264ref", "gromacs",
          "hmmer", "wrf", "milc", "tonto", "xalancbmk"}},
        {"MIX 03", {0, 8, 4, 4},
         {"gromacs", "hmmer", "mcf", "sphinx", "wrf", "astar",
          "milc", "omnetpp", "namd", "cactusADM", "gobmk", "soplex",
          "gcc", "calculix", "h264ref", "tonto"}},
        {"MIX 04", {0, 8, 8, 0},
         {"gromacs", "hmmer", "mcf", "sphinx", "wrf", "astar",
          "milc", "omnetpp", "bwaves", "namd", "leslie3d", "sjeng",
          "zeusmp", "bzip2", "povray", "soplex"}},
        {"MIX 05", {2, 2, 6, 6},
         {"gamess", "lbm", "sphinx", "astar", "bwaves", "namd",
          "sjeng", "gobmk", "povray", "soplex", "dealII", "gcc",
          "calculix", "h264ref", "tonto", "xalancbmk"}},
        {"MIX 06", {2, 6, 2, 6},
         {"dealII", "libquantum", "perlbench", "gromacs", "hmmer",
          "mcf", "wrf", "astar", "milc", "sjeng", "gobmk", "gcc",
          "calculix", "h264ref", "tonto", "xalancbmk"}},
        {"MIX 07", {4, 0, 6, 6},
         {"gcc", "lbm", "libquantum", "perlbench", "cactusADM",
          "zeusmp", "bzip2", "gobmk", "povray", "soplex", "dealII",
          "gamess", "calculix", "h264ref", "tonto", "xalancbmk"}},
        {"MIX 08", {4, 4, 4, 4},
         {"hmmer", "mcf", "libquantum", "wrf", "omnetpp", "GemsFDTD",
          "bwaves", "bzip2", "gobmk", "perlbench", "povray", "gcc",
          "calculix", "lbm", "h264ref", "xalancbmk"}},
        {"MIX 09", {4, 4, 8, 0},
         {"GemsFDTD", "gamess", "lbm", "libquantum", "astar",
          "gromacs", "hmmer", "milc", "bwaves", "leslie3d", "sjeng",
          "povray", "gobmk", "soplex", "bzip2", "zeusmp"}},
        {"MIX 10", {4, 6, 0, 6},
         {"perlbench", "hmmer", "mcf", "wrf", "astar", "milc",
          "GemsFDTD", "omnetpp", "dealII", "lbm", "gcc", "calculix",
          "h264ref", "gamess", "tonto", "xalancbmk"}},
        {"MIX 11", {4, 8, 0, 4},
         {"lbm", "libquantum", "gromacs", "hmmer", "mcf", "sphinx",
          "wrf", "gamess", "astar", "milc", "omnetpp", "gcc",
          "GemsFDTD", "h264ref", "tonto", "xalancbmk"}},
        {"MIX 12", {4, 8, 4, 0},
         {"gamess", "lbm", "libquantum", "perlbench", "gromacs",
          "hmmer", "mcf", "sphinx", "wrf", "astar", "milc",
          "omnetpp", "sjeng", "zeusmp", "gobmk", "soplex"}},
    };
}

} // namespace

const std::vector<BenchmarkProfile> &
specProfiles()
{
    static const std::vector<BenchmarkProfile> profiles = makeSpec();
    return profiles;
}

const std::vector<BenchmarkProfile> &
parsecProfiles()
{
    static const std::vector<BenchmarkProfile> profiles = makeParsec();
    return profiles;
}

const BenchmarkProfile &
profileByName(const std::string &name)
{
    for (const auto &profile : specProfiles()) {
        if (name == profile.name)
            return profile;
    }
    for (const auto &profile : parsecProfiles()) {
        if (name == profile.name)
            return profile;
    }
    fatal("unknown benchmark '%s'", name.c_str());
}

const std::vector<MixSpec> &
mixSpecs()
{
    static const std::vector<MixSpec> mixes = makeMixes();
    return mixes;
}

const MixSpec &
mixByName(const std::string &name)
{
    for (const auto &mix : mixSpecs()) {
        if (name == mix.name)
            return mix;
    }
    fatal("unknown mix '%s'", name.c_str());
}

} // namespace morphcache

file(REMOVE_RECURSE
  "libmc_interconnect.a"
)

/**
 * @file
 * Tests for the tile-based scaling composition (Section 5.5
 * future work).
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/simulation.hh"
#include "sim/tiled.hh"
#include "workload/generator.hh"

namespace morphcache {
namespace {

HierarchyParams
tileParams(std::uint32_t cores = 4)
{
    HierarchyParams params = HierarchyParams::defaultParams(cores);
    params.l1Geom = CacheGeometry{2048, 2, 64};
    params.l2.sliceGeom = CacheGeometry{8192, 4, 64};
    params.l3.sliceGeom = CacheGeometry{32768, 8, 64};
    return params;
}

TEST(Tiled, RoutesCoresToTiles)
{
    TiledMorphSystem system(tileParams(4), MorphConfig{}, 3);
    EXPECT_EQ(system.numCores(), 12u);
    EXPECT_EQ(system.numTiles(), 3u);
    EXPECT_EQ(system.coresPerTile(), 4u);

    // Core 5 lives on tile 1 as local core 1.
    system.access(MemAccess{5, 0x4000, AccessType::Read}, 0);
    EXPECT_EQ(system.tile(1).coreStats(1).accesses, 1u);
    EXPECT_EQ(system.tile(0).coreStats(1).accesses, 0u);
    EXPECT_EQ(system.coreStats(5).accesses, 1u);
}

TEST(Tiled, TilesAreIsolated)
{
    TiledMorphSystem system(tileParams(4), MorphConfig{}, 2);
    // The same address accessed from two tiles produces two misses:
    // tiles have independent hierarchies.
    const auto r0 =
        system.access(MemAccess{0, 0x9000, AccessType::Read}, 0);
    const auto r4 =
        system.access(MemAccess{4, 0x9000, AccessType::Read}, 0);
    EXPECT_EQ(r0.servedBy, ServedBy::Memory);
    EXPECT_EQ(r4.servedBy, ServedBy::Memory);
    // And the copy in tile 0 serves tile-0 cores only.
    const auto again =
        system.access(MemAccess{0, 0x9000, AccessType::Read}, 100);
    EXPECT_EQ(again.servedBy, ServedBy::L1);
}

TEST(Tiled, EpochBoundaryReachesEveryTile)
{
    TiledMorphSystem system(tileParams(4), MorphConfig{}, 2);
    system.epochBoundary();
    system.epochBoundary();
    EXPECT_EQ(system.tile(0).controller().stats().decisions, 2u);
    EXPECT_EQ(system.tile(1).controller().stats().decisions, 2u);
}

TEST(Tiled, RunsUnderTheSimulator)
{
    HierarchyParams tile = tileParams(4);
    const GeneratorParams gen = generatorFor(tile);
    MixSpec spec = mixByName("MIX 10");
    spec.benchmarks.resize(8); // 2 tiles x 4 cores
    MixWorkload workload(spec, gen, 7);
    TiledMorphSystem system(tile, MorphConfig{}, 2);
    SimParams sim;
    sim.refsPerEpochPerCore = 1500;
    sim.epochs = 4;
    sim.warmupEpochs = 1;
    Simulation simulation(system, workload, sim);
    const RunResult result = simulation.run();
    EXPECT_GT(result.avgThroughput, 0.0);
    EXPECT_EQ(result.avgIpc.size(), 8u);
}

} // namespace
} // namespace morphcache

/**
 * @file
 * Energy model (the paper's stated future work).
 *
 * The paper's concluding remarks: "we believe that the
 * segmented-bus architecture would lead to reduced power
 * consumption in MorphCache, [and] we would like to quantify this
 * improvement in the future." This module quantifies it with an
 * event-energy model: per-access energies for each cache level
 * (CACTI-style constants, scaled by structure size), off-chip
 * access energy, and — the interesting part — bus transaction
 * energy proportional to the *physical span of the segment
 * driven*, since switched capacitance grows with the wire length
 * between the enabled switches (Guo et al. [8], the paper's
 * segmented-bus reference). A small sharing group drives a short
 * segment; a monolithic shared bus pays the full chip crossing on
 * every transaction.
 */

#ifndef MORPHCACHE_SIM_ENERGY_HH
#define MORPHCACHE_SIM_ENERGY_HH

#include <cstdint>

#include "hierarchy/hierarchy.hh"

namespace morphcache {

/** Per-event energies in picojoules. */
struct EnergyParams
{
    /** L1 hit access. */
    double l1AccessPj = 10.0;
    /** Probe + read of one L2 slice. */
    double l2SliceAccessPj = 35.0;
    /** Probe + read of one L3 slice. */
    double l3SliceAccessPj = 90.0;
    /** Off-chip DRAM access. */
    double memAccessPj = 2000.0;
    /**
     * Bus transaction energy per tile of segment span: switched
     * capacitance scales with the wire length actually driven.
     */
    double busPerTilePj = 6.0;
    /** Static/arbitration overhead per bus transaction. */
    double busBasePj = 4.0;
};

/** Accumulated energy breakdown in picojoules. */
struct EnergyBreakdown
{
    double l1 = 0.0;
    double l2 = 0.0;
    double l3 = 0.0;
    double memory = 0.0;
    double bus = 0.0;

    double
    total() const
    {
        return l1 + l2 + l3 + memory + bus;
    }
};

/**
 * Computes the energy of a finished run from the hierarchy's
 * counters and the sharing degrees it executed with.
 *
 * Group lookups probe every member slice (the broadcast the
 * segmented bus delivers), so a lookup in a k-slice group costs
 * k slice accesses; bus transactions are charged by their
 * segment's physical span. For static topologies the same
 * accounting applies — a fixed shared cache still probes its banks
 * and drives its interconnect — which is exactly the comparison
 * the paper's remark is about.
 */
EnergyBreakdown accountEnergy(const Hierarchy &hierarchy,
                              const EnergyParams &params = {});

} // namespace morphcache

#endif // MORPHCACHE_SIM_ENERGY_HH

#include "runner/manifest.hh"

#include <fcntl.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "io/vfs.hh"
#include "perf/clock.hh"
#include "runner/sweep.hh"

namespace morphcache {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::size_t
findJsonKey(const std::string &text, const char *key)
{
    const std::string token = std::string("\"") + key + "\":";
    return text.find(token) == std::string::npos
               ? std::string::npos
               : text.find(token) + token.size();
}

bool
jsonFieldU64(const std::string &text, const char *key,
             std::uint64_t &out)
{
    const std::size_t at = findJsonKey(text, key);
    if (at == std::string::npos)
        return false;
    out = std::strtoull(text.c_str() + at, nullptr, 10);
    return true;
}

bool
jsonFieldF64(const std::string &text, const char *key, double &out)
{
    const std::size_t at = findJsonKey(text, key);
    if (at == std::string::npos)
        return false;
    out = std::strtod(text.c_str() + at, nullptr);
    return true;
}

bool
jsonFieldStr(const std::string &text, const char *key,
             std::string &out)
{
    std::size_t at = findJsonKey(text, key);
    if (at == std::string::npos || at >= text.size() ||
        text[at] != '"') {
        return false;
    }
    ++at;
    out.clear();
    while (at < text.size() && text[at] != '"') {
        char c = text[at];
        if (c == '\\' && at + 1 < text.size()) {
            ++at;
            const char e = text[at];
            c = e == 'n' ? '\n' : e == 't' ? '\t' : e;
        }
        out += c;
        ++at;
    }
    return at < text.size();
}

std::string
hex64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::uint64_t
campaignHash(const std::vector<CampaignCell> &cells)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const CampaignCell &cell : cells) {
        const std::string item = cell.label + "\n" +
                                 describe(cell.spec) + "\nseed=" +
                                 std::to_string(cell.spec.seed) +
                                 "\n";
        h = fnv1a64(item.data(), item.size(), h);
    }
    return h;
}

std::string
campaignStateDir(const std::string &manifestPath)
{
    return manifestPath + ".d";
}

std::string
cellCkptPath(const std::string &dir, std::size_t i)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/cell%04zu.ckpt", i);
    return dir + buf;
}

std::string
cellResultPath(const std::string &dir, std::size_t i)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "/cell%04zu.result.json", i);
    return dir + buf;
}

std::string
cellLeasePath(const std::string &dir, std::size_t i)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/cell%04zu.lease", i);
    return dir + buf;
}

bool
fileExists(const std::string &path)
{
    return vfs().existsPath(path);
}

std::string
serializeOutcome(const CellOutcome &o)
{
    char num[64];
    std::string out = "{\"label\":\"" + jsonEscape(o.label) +
                      "\",\"seed\":" + std::to_string(o.seed) +
                      ",\"attempts\":" + std::to_string(o.attempts);
    if (o.failed) {
        out += ",\"failed\":\"" + jsonEscape(o.error) + "\"}";
        out += '\n';
        return out;
    }
    std::snprintf(num, sizeof(num), "%.17g", o.throughput);
    out += std::string(",\"throughput\":") + num;
    std::snprintf(num, sizeof(num), "%.17g", o.performance);
    out += std::string(",\"performance\":") + num;
    out += ",\"finalTopology\":\"" + jsonEscape(o.finalTopology) +
           "\",\"merges\":" + std::to_string(o.merges) +
           ",\"splits\":" + std::to_string(o.splits);
    if (!o.statsJson.empty())
        out += ",\"stats\":" + o.statsJson;
    out += "}\n";
    return out;
}

CellOutcome
parseOutcome(const std::string &path, const std::string &text)
{
    CellOutcome o;
    auto need = [&](bool ok, const char *what) {
        if (!ok) {
            throw CkptError("'" + path +
                            "': result record missing field '" +
                            what + "'");
        }
    };
    need(jsonFieldStr(text, "label", o.label), "label");
    need(jsonFieldU64(text, "seed", o.seed), "seed");
    need(jsonFieldU64(text, "attempts", o.attempts), "attempts");
    if (jsonFieldStr(text, "failed", o.error)) {
        o.failed = true;
        return o;
    }
    need(jsonFieldF64(text, "throughput", o.throughput),
         "throughput");
    need(jsonFieldF64(text, "performance", o.performance),
         "performance");
    need(jsonFieldStr(text, "finalTopology", o.finalTopology),
         "finalTopology");
    need(jsonFieldU64(text, "merges", o.merges), "merges");
    need(jsonFieldU64(text, "splits", o.splits), "splits");
    const std::size_t stats = findJsonKey(text, "stats");
    if (stats != std::string::npos) {
        const std::size_t end = text.rfind('}');
        if (end == std::string::npos || end < stats)
            throw CkptError("'" + path +
                            "': malformed stats field");
        o.statsJson = text.substr(stats, end - stats);
    }
    o.ok = true;
    return o;
}

std::string
manifestHeaderLine(std::size_t cells, std::uint64_t hash,
                   double unix_t)
{
    std::string line =
        "{\"type\":\"header\",\"version\":1,\"cells\":" +
        std::to_string(cells) + ",\"campaignHash\":\"" +
        hex64(hash) + "\"";
    if (unix_t > 0.0) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), ",\"t\":%.3f", unix_t);
        line += buf;
    }
    line += "}\n";
    return line;
}

namespace {

/**
 * Defense against merged torn lines. Every sanctioned manifest
 * writer emits whole `{"type":...}\n` records, but a writer that
 * died after a *partial* write leaves a torn prefix with no
 * newline — and the next append then shares its line: the torn
 * bytes followed by a complete record. Parsing such a merged line
 * naively is worse than skipping it: the field extractors take the
 * *first* occurrence of a key, so the torn prefix's "index" and
 * the complete suffix's "status" would combine into a phantom
 * event that was never written. The bytes after the *last*
 * record marker in a newline-terminated line always belong to the
 * single O_APPEND write that supplied the newline, so parsing from
 * there recovers the one complete record and discards the torn
 * prefix.
 */
std::string
manifestEventPayload(const std::string &line)
{
    const std::size_t mark = line.rfind("{\"type\":");
    return mark == std::string::npos || mark == 0
               ? line
               : line.substr(mark);
}

} // namespace

std::vector<CellProgress>
foldManifest(const std::string &path, std::size_t num_cells,
             std::uint64_t hash)
{
    const std::vector<std::uint8_t> bytes = readFileBytes(path);
    const std::string text(bytes.begin(), bytes.end());

    std::vector<CellProgress> progress(num_cells);
    bool sawHeader = false;
    std::size_t at = 0;
    while (at < text.size()) {
        const std::size_t nl = text.find('\n', at);
        if (nl == std::string::npos) {
            // Torn final line from a killed writer; the event it
            // carried is simply replayed by rerunning the cell.
            warn("campaign manifest '%s': ignoring torn final line",
                 path.c_str());
            break;
        }
        const std::string line =
            manifestEventPayload(text.substr(at, nl - at));
        at = nl + 1;

        std::string type;
        if (!jsonFieldStr(line, "type", type)) {
            warn("campaign manifest '%s': ignoring malformed line",
                 path.c_str());
            continue;
        }
        if (type == "header") {
            std::uint64_t cells = 0;
            std::string stamp;
            if (!jsonFieldU64(line, "cells", cells) ||
                !jsonFieldStr(line, "campaignHash", stamp)) {
                throw CkptError("'" + path +
                                "': malformed manifest header");
            }
            if (cells != num_cells) {
                throw CkptError(
                    "'" + path + "': manifest describes " +
                    std::to_string(cells) +
                    " cells but this campaign has " +
                    std::to_string(num_cells));
            }
            if (stamp != hex64(hash)) {
                throw CkptError(
                    "'" + path + "': campaign-hash mismatch: "
                    "manifest has " + stamp + ", this campaign is " +
                    hex64(hash));
            }
            sawHeader = true;
            continue;
        }
        if (type == "cell") {
            std::uint64_t index = 0;
            std::uint64_t attempts = 0;
            std::string status;
            if (!jsonFieldU64(line, "index", index) ||
                !jsonFieldStr(line, "status", status) ||
                !jsonFieldU64(line, "attempts", attempts) ||
                index >= num_cells) {
                warn("campaign manifest '%s': ignoring malformed "
                     "cell event",
                     path.c_str());
                continue;
            }
            progress[index].status = status;
            progress[index].attempts = attempts;
        }
        // Other record types ("plan", future extensions) carry no
        // progress and are skipped by construction.
    }
    if (!sawHeader)
        throw CkptError("'" + path + "': manifest has no header");
    return progress;
}

void
ManifestLog::appendCell(std::size_t index, const char *status,
                        std::uint64_t attempts)
{
    // Worker id and civil-time stamp are advisory extras consumed
    // only by `mc_campaign status` (throughput / ETA); foldManifest
    // never reads them, so progress bytes derived from the fold
    // stay independent of schedule and clock.
    std::string line =
        "{\"type\":\"cell\",\"index\":" + std::to_string(index) +
        ",\"status\":\"" + status +
        "\",\"attempts\":" + std::to_string(attempts);
    if (!worker_.empty())
        line += ",\"worker\":\"" + jsonEscape(worker_) + "\"";
    char stamp[48];
    std::snprintf(stamp, sizeof(stamp), ",\"t\":%.3f",
                  unixNowSec());
    line += stamp;
    line += "}\n";
    std::lock_guard<std::mutex> lock(mutex_);
    // Append-only event log: one write per event, fsynced before
    // close, so a crash tears at most the last line (which the
    // fold ignores). The write-rename helper cannot be used here —
    // rewriting the log on every event would turn the manifest
    // into an O(events^2) hot path, lose the history a concurrent
    // crash-time reader depends on, and clobber events other
    // worker processes appended in the meantime. O_APPEND keeps
    // cross-process appends whole.
    //
    // Retry policy is asymmetric by design: a failure with zero
    // bytes landed (open failure, clean first-write error) retries
    // like any transient fault, but once *any* byte of the record
    // is in the log, retrying the whole record would interleave
    // with the torn prefix into a merged line — so partial
    // failures escape immediately as a persistent IoError and the
    // torn tail is left for manifestEventPayload to discard.
    const std::uint64_t id =
        fnv1a64(path_.data(), path_.size());
    for (std::uint64_t attempt = 1;; ++attempt) {
        const int fd = vfs().openFile(
            path_, O_WRONLY | O_APPEND | O_CREAT, 0666);
        if (fd < 0) {
            if (errnoIsTransient(-fd) && attempt < 4) {
                vfs().sleepMs(retryDelayMs(id, index, attempt));
                continue;
            }
            throwIo(VfsOp::Open, path_, fd);
        }
        std::size_t landed = 0;
        long fail_rc =
            vfsWriteAll(fd, line.data(), line.size(), landed);
        VfsOp fail_op = VfsOp::Write;
        if (fail_rc == 0) {
            const int sync_rc = vfs().fsyncFd(fd);
            if (sync_rc < 0) {
                fail_rc = sync_rc;
                fail_op = VfsOp::Fsync;
            }
        }
        const int close_rc = vfs().closeFd(fd);
        if (fail_rc == 0 && close_rc < 0) {
            fail_rc = close_rc;
            fail_op = VfsOp::Close;
        }
        if (fail_rc == 0)
            return;
        const bool retriable = landed == 0 &&
                               fail_op == VfsOp::Write &&
                               errnoIsTransient(
                                   static_cast<int>(-fail_rc));
        if (retriable && attempt < 4) {
            vfs().sleepMs(retryDelayMs(id, index, attempt));
            continue;
        }
        // Partial writes and fsync/close failures are never
        // retried: the record may be (partly) in the log already.
        throw IoError(
            "'" + path_ + "': manifest append " +
                vfsOpName(fail_op) + " failed" +
                (landed != 0 && landed < line.size()
                     ? " after " + std::to_string(landed) +
                           " of " + std::to_string(line.size()) +
                           " bytes (torn tail line left for the "
                           "fold to discard)"
                     : "") +
                ": " +
                std::strerror(static_cast<int>(-fail_rc)),
            static_cast<int>(-fail_rc), false);
    }
}

double
ManifestTiming::cellsPerMinute() const
{
    if (doneEvents == 0)
        return 0.0;
    // Prefer the campaign-start stamp (covers the whole elapsed
    // window); manifests predating header stamps fall back to the
    // first-to-last done interval, which needs two events.
    double window = 0.0;
    if (startT > 0.0 && lastDoneT > startT) {
        window = lastDoneT - startT;
    } else if (doneEvents >= 2 && lastDoneT > firstDoneT) {
        window = lastDoneT - firstDoneT;
    }
    if (window <= 0.0)
        return 0.0;
    return 60.0 * static_cast<double>(doneEvents) / window;
}

ManifestTiming
foldManifestTiming(const std::string &path)
{
    ManifestTiming timing;
    std::vector<std::uint8_t> bytes;
    try {
        bytes = readFileBytes(path);
    } catch (const CkptError &) {
        return timing; // advisory only: no manifest, no rates
    }
    const std::string text(bytes.begin(), bytes.end());

    auto workerSlot =
        [&timing](const std::string &name) -> WorkerTiming & {
        for (auto &entry : timing.workers) {
            if (entry.first == name)
                return entry.second;
        }
        timing.workers.emplace_back(name, WorkerTiming{});
        return timing.workers.back().second;
    };

    std::size_t at = 0;
    while (at < text.size()) {
        const std::size_t nl = text.find('\n', at);
        if (nl == std::string::npos)
            break; // torn final line: no timing either
        const std::string line =
            manifestEventPayload(text.substr(at, nl - at));
        at = nl + 1;

        std::string type;
        if (!jsonFieldStr(line, "type", type))
            continue;
        double t = 0.0;
        const bool stamped = jsonFieldF64(line, "t", t) && t > 0.0;
        if (type == "header") {
            if (stamped)
                timing.startT = t;
            continue;
        }
        if (type != "cell" || !stamped)
            continue;
        std::string status;
        if (!jsonFieldStr(line, "status", status))
            continue;
        std::string worker;
        const bool hasWorker =
            jsonFieldStr(line, "worker", worker) &&
            !worker.empty();
        if (hasWorker) {
            WorkerTiming &w = workerSlot(worker);
            if (w.firstT == 0.0 || t < w.firstT)
                w.firstT = t;
            if (t > w.lastT)
                w.lastT = t;
            if (status == "done")
                ++w.done;
        }
        if (status != "done")
            continue;
        ++timing.doneEvents;
        if (timing.firstDoneT == 0.0 || t < timing.firstDoneT)
            timing.firstDoneT = t;
        if (t > timing.lastDoneT)
            timing.lastDoneT = t;
    }
    return timing;
}

namespace {

void
appendReportLine(std::string &out, std::size_t index,
                 const CampaignCell &cell, const CellOutcome &o)
{
    char buf[256];
    if (o.failed) {
        std::snprintf(buf, sizeof(buf),
                      "cell %3zu   : %-24s FAILED after %llu "
                      "attempts: ",
                      index, o.label.c_str(),
                      static_cast<unsigned long long>(o.attempts));
        out += buf;
        out += o.error;
        out += '\n';
        return;
    }
    std::snprintf(buf, sizeof(buf),
                  "cell %3zu   : %-24s throughput=%.6f "
                  "performance=%.6f final=%s",
                  index, o.label.c_str(), o.throughput,
                  o.performance, o.finalTopology.c_str());
    out += buf;
    if (cell.spec.scheme == "morph") {
        std::snprintf(buf, sizeof(buf),
                      " merges=%llu splits=%llu",
                      static_cast<unsigned long long>(o.merges),
                      static_cast<unsigned long long>(o.splits));
        out += buf;
    }
    out += '\n';
}

} // namespace

RenderedReport
renderCampaignReport(const std::vector<CampaignCell> &cells,
                     const std::vector<CellOutcome> &outcomes,
                     bool want_stats_json)
{
    RenderedReport report;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "campaign   : %zu cells\n",
                  cells.size());
    report.reportText = buf;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellOutcome &o = outcomes[i];
        appendReportLine(report.reportText, i, cells[i], o);
        if (o.failed)
            ++report.failed;
        else
            ++report.done;
    }
    std::snprintf(buf, sizeof(buf),
                  "campaign   : %zu done, %zu failed\n", report.done,
                  report.failed);
    report.reportText += buf;

    if (want_stats_json) {
        std::string doc = "[\n";
        bool first = true;
        for (const CellOutcome &o : outcomes) {
            if (o.failed || o.statsJson.empty())
                continue;
            if (!first)
                doc += ",\n";
            first = false;
            doc += o.statsJson;
        }
        doc += "\n]\n";
        report.statsJsonArray = std::move(doc);
    }
    return report;
}

std::vector<CampaignCell>
CampaignPlan::cells() const
{
    std::vector<CampaignCell> out;
    std::uint64_t cell_index = 0;
    for (std::uint32_t rep = 0; rep < sweepSeeds; ++rep) {
        for (std::uint32_t m = mixLo; m <= mixHi; ++m) {
            CampaignCell cell;
            cell.spec = base;
            char workload[16];
            std::snprintf(workload, sizeof(workload), "mix:%u", m);
            cell.spec.workload = workload;
            cell.spec.seed = sweepCellSeed(base.seed, cell_index);
            char label[64];
            std::snprintf(
                label, sizeof(label), "mix:%02u seed=%llu", m,
                static_cast<unsigned long long>(cell.spec.seed));
            cell.label = label;
            out.push_back(std::move(cell));
            ++cell_index;
        }
    }
    return out;
}

std::string
CampaignPlan::jsonLine() const
{
    // The base spec rides as hex-encoded saveSpec bytes: the exact
    // binary serializer checkpoints use, so doubles (fault
    // probabilities) round-trip bit-exactly and the plan can never
    // disagree with the checkpoint format about what a spec is.
    CkptWriter w;
    saveSpec(w, base);
    std::string hex;
    hex.reserve(w.buffer().size() * 2);
    for (std::uint8_t byte : w.buffer()) {
        char pair[4];
        std::snprintf(pair, sizeof(pair), "%02x", byte);
        hex += pair;
    }
    return "{\"type\":\"plan\",\"version\":1,\"mixLo\":" +
           std::to_string(mixLo) + ",\"mixHi\":" +
           std::to_string(mixHi) + ",\"sweepSeeds\":" +
           std::to_string(sweepSeeds) + ",\"base\":\"" + hex +
           "\"}\n";
}

CampaignPlan
planFromManifest(const std::string &path)
{
    const std::vector<std::uint8_t> bytes = readFileBytes(path);
    const std::string text(bytes.begin(), bytes.end());

    std::size_t at = 0;
    while (at < text.size()) {
        const std::size_t nl = text.find('\n', at);
        if (nl == std::string::npos)
            break;
        const std::string line = text.substr(at, nl - at);
        at = nl + 1;

        std::string type;
        if (!jsonFieldStr(line, "type", type) || type != "plan")
            continue;

        CampaignPlan plan;
        std::uint64_t lo = 0, hi = 0, seeds = 0;
        std::string hex;
        if (!jsonFieldU64(line, "mixLo", lo) ||
            !jsonFieldU64(line, "mixHi", hi) ||
            !jsonFieldU64(line, "sweepSeeds", seeds) ||
            !jsonFieldStr(line, "base", hex) ||
            hex.size() % 2 != 0) {
            throw CkptError("'" + path +
                            "': malformed campaign plan line");
        }
        plan.mixLo = static_cast<std::uint32_t>(lo);
        plan.mixHi = static_cast<std::uint32_t>(hi);
        plan.sweepSeeds = static_cast<std::uint32_t>(seeds);

        std::vector<std::uint8_t> raw;
        raw.reserve(hex.size() / 2);
        for (std::size_t i = 0; i < hex.size(); i += 2) {
            char pair[3] = {hex[i], hex[i + 1], '\0'};
            char *end = nullptr;
            const unsigned long v = std::strtoul(pair, &end, 16);
            if (end != pair + 2) {
                throw CkptError("'" + path +
                                "': non-hex byte in campaign plan "
                                "base spec");
            }
            raw.push_back(static_cast<std::uint8_t>(v));
        }
        CkptReader r(path + " (plan base spec)", raw);
        plan.base = loadSpec(r);
        if (r.remaining() != 0)
            r.fail("trailing bytes after plan base spec");
        return plan;
    }
    throw CkptError(
        "'" + path + "': manifest carries no campaign plan; only "
        "manifests written by `mc_campaign init` embed the cell "
        "recipe workers need");
}

void
initManifestWithPlan(const std::string &path,
                     const CampaignPlan &plan)
{
    const std::vector<CampaignCell> cellList = plan.cells();
    if (cellList.empty())
        throw ConfigError("campaign plan generates no cells");
    const std::string dir = campaignStateDir(path);
    const int mk_rc = vfs().mkdirPath(dir);
    if (mk_rc < 0 && mk_rc != -EEXIST)
        throwIo(VfsOp::Mkdir, dir, mk_rc);

    std::string doc = manifestHeaderLine(
        cellList.size(), campaignHash(cellList), unixNowSec());
    doc += plan.jsonLine();
    for (std::size_t i = 0; i < cellList.size(); ++i) {
        doc += "{\"type\":\"cell\",\"index\":" + std::to_string(i) +
               ",\"status\":\"pending\",\"attempts\":0}\n";
        // Clear any stale state a previous campaign under the same
        // manifest path left behind, so cells never restore from
        // another campaign's checkpoints or leases. A missing file
        // is the normal case; anything else is best-effort here
        // and caught by the hash check when the cell first runs.
        vfs().unlinkPath(cellCkptPath(dir, i));
        vfs().unlinkPath(cellCkptPath(dir, i) + ".prev");
        vfs().unlinkPath(cellResultPath(dir, i));
        vfs().unlinkPath(cellLeasePath(dir, i));
    }
    atomicWriteFile(path, doc.data(), doc.size());
}

} // namespace morphcache

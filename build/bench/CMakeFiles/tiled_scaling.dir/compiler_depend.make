# Empty compiler generated dependencies file for tiled_scaling.
# This may be replaced when dependencies are built.

#include "runner/campaign.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <functional>
#include <thread>

#include "ckpt/ckpt.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "io/vfs.hh"
#include "perf/clock.hh"
#include "runner/executor.hh"
#include "runner/sweep.hh"

namespace morphcache {

namespace {

/** Shared mutable state of one campaign execution. */
struct CampaignCtx
{
    const std::vector<CampaignCell> &cells;
    const CampaignOptions &opts;
    std::string dir;
    std::uint64_t hash = 0;
    ManifestLog log;
    std::vector<CellOutcome> outcomes;
    std::vector<CellProgress> progress;
    std::atomic<bool> interrupted{false};

    CampaignCtx(const std::vector<CampaignCell> &c,
                const CampaignOptions &o)
        : cells(c), opts(o), dir(campaignStateDir(o.manifestPath)),
          log(o.manifestPath)
    {
    }
};

/** Drive one cell through its retry budget. */
void
driveCell(CampaignCtx &ctx, std::size_t index)
{
    const CampaignCell &cell = ctx.cells[index];
    std::uint64_t attempts = ctx.progress[index].attempts;
    const std::uint64_t budget = 1 + ctx.opts.retryCells;

    while (true) {
        if (ckptInterruptRequested()) {
            ctx.interrupted = true;
            return;
        }
        ctx.log.appendCell(index, "running", attempts);
        try {
            CellOutcome o = runCellAttempt(
                cell, cellCkptPath(ctx.dir, index),
                CellAttemptOptions{ctx.opts.ckptEvery,
                                   ctx.opts.cellTimeoutSec,
                                   ctx.opts.wantStatsJson});
            o.attempts = attempts + 1;
            const std::string doc = serializeOutcome(o);
            atomicWriteFile(cellResultPath(ctx.dir, index),
                            doc.data(), doc.size());
            ctx.log.appendCell(index, "done", attempts + 1);
            ctx.outcomes[index] = std::move(o);
            return;
        } catch (const CellInterrupted &) {
            // Checkpoint written; the cell stays `running` in the
            // manifest and resumes from where it stopped.
            ctx.interrupted = true;
            return;
        } catch (const std::exception &err) {
            ++attempts;
            ctx.log.appendCell(index, "failed", attempts);
            warn("campaign cell %zu (%s) try %llu failed: %s",
                 index, cell.label.c_str(),
                 static_cast<unsigned long long>(attempts),
                 err.what());
            if (attempts >= budget) {
                CellOutcome o;
                o.failed = true;
                o.label = cell.label;
                o.seed = cell.spec.seed;
                o.attempts = attempts;
                o.error = err.what();
                const std::string doc = serializeOutcome(o);
                atomicWriteFile(cellResultPath(ctx.dir, index),
                                doc.data(), doc.size());
                ctx.outcomes[index] = std::move(o);
                return;
            }
            // Bounded exponential backoff with seeded deterministic
            // jitter before the retry (see retryDelayMs).
            std::this_thread::sleep_for(std::chrono::milliseconds(
                retryDelayMs(ctx.hash, index, attempts)));
        }
    }
}

} // namespace

CampaignReport
runCampaign(const std::vector<CampaignCell> &cells,
            const CampaignOptions &opts)
{
    if (opts.manifestPath.empty())
        throw ConfigError("campaign requires a manifest path");
    if (cells.empty())
        throw ConfigError("campaign has no cells");

    CampaignCtx ctx(cells, opts);
    ctx.log.setWorker("cli");
    ctx.outcomes.resize(cells.size());
    ctx.progress.assign(cells.size(), CellProgress{});
    ctx.hash = campaignHash(cells);
    const int mk_rc = vfs().mkdirPath(ctx.dir);
    if (mk_rc < 0 && mk_rc != -EEXIST) // EEXIST is the resume case
        throwIo(VfsOp::Mkdir, ctx.dir, mk_rc);

    if (opts.resume) {
        ctx.progress =
            foldManifest(opts.manifestPath, cells.size(), ctx.hash);
    } else {
        std::string doc = manifestHeaderLine(cells.size(), ctx.hash,
                                             unixNowSec());
        for (std::size_t i = 0; i < cells.size(); ++i) {
            doc += "{\"type\":\"cell\",\"index\":" +
                   std::to_string(i) +
                   ",\"status\":\"pending\",\"attempts\":0}\n";
            // Clear any stale state a previous campaign under the
            // same manifest path left behind, so cells never
            // restore from another campaign's checkpoints, results,
            // or leases. ENOENT is the common case (nothing there);
            // any other failure means the stale file *survived* and
            // could later masquerade as this campaign's state, so it
            // must be a typed error, not a shrug.
            const std::string stale[] = {
                cellCkptPath(ctx.dir, i),
                cellCkptPath(ctx.dir, i) + ".prev",
                cellResultPath(ctx.dir, i),
                cellLeasePath(ctx.dir, i),
            };
            for (const std::string &path : stale) {
                const int rm_rc = vfs().unlinkPath(path);
                if (rm_rc < 0 && rm_rc != -ENOENT)
                    throwIo(VfsOp::Unlink, path, rm_rc);
            }
        }
        atomicWriteFile(opts.manifestPath, doc.data(), doc.size());
    }

    const std::uint64_t budget = 1 + opts.retryCells;
    std::vector<std::size_t> todo;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        CellProgress &prog = ctx.progress[i];
        const bool terminal =
            prog.status == "done" ||
            (prog.status == "failed" && prog.attempts >= budget);
        if (terminal) {
            const std::string path = cellResultPath(ctx.dir, i);
            try {
                const std::vector<std::uint8_t> bytes =
                    readFileBytes(path);
                ctx.outcomes[i] = parseOutcome(
                    path,
                    std::string(bytes.begin(), bytes.end()));
                continue;
            } catch (const CkptError &err) {
                warn("campaign cell %zu result unusable (%s); "
                     "rerunning",
                     i, err.what());
                prog = CellProgress{};
            }
        }
        todo.push_back(i);
    }

    if (!todo.empty()) {
        SweepRunner runner(opts.jobs);
        std::vector<std::function<int()>> tasks;
        tasks.reserve(todo.size());
        for (std::size_t i : todo) {
            tasks.push_back([&ctx, i]() {
                driveCell(ctx, i);
                return 0;
            });
        }
        const auto results = runner.run(std::move(tasks));
        // driveCell absorbs cell failures itself; anything that
        // escaped is campaign infrastructure I/O (manifest or
        // checkpoint write) and marks the cell terminally failed.
        for (std::size_t k = 0; k < todo.size(); ++k) {
            const std::size_t i = todo[k];
            CellOutcome &o = ctx.outcomes[i];
            if (!results[k].ok() && !o.ok && !o.failed) {
                o.failed = true;
                o.label = cells[i].label;
                o.seed = cells[i].spec.seed;
                o.attempts = ctx.progress[i].attempts + 1;
                o.error = results[k].error;
            }
        }
    }

    CampaignReport report;
    report.cells = cells.size();
    report.interrupted =
        ctx.interrupted.load() || ckptInterruptRequested();
    if (report.interrupted)
        return report;

    RenderedReport rendered =
        renderCampaignReport(cells, ctx.outcomes, opts.wantStatsJson);
    report.reportText = std::move(rendered.reportText);
    report.statsJsonArray = std::move(rendered.statsJsonArray);
    report.done = rendered.done;
    report.failed = rendered.failed;
    return report;
}

} // namespace morphcache

/**
 * @file
 * Small integer/bit helpers used across the cache model.
 */

#ifndef MORPHCACHE_COMMON_BITOPS_HH
#define MORPHCACHE_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"

namespace morphcache {

/** True iff x is a nonzero power of two. */
constexpr bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); x must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** log2(x) for an exact power of two. */
inline unsigned
exactLog2(std::uint64_t x)
{
    MC_ASSERT(isPowerOf2(x));
    return floorLog2(x);
}

/** Extract bits [lo, lo+n) of x. */
constexpr std::uint64_t
bits(std::uint64_t x, unsigned lo, unsigned n)
{
    return (x >> lo) & ((n >= 64) ? ~0ULL : ((1ULL << n) - 1));
}

/** Ceiling division for unsigned integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace morphcache

#endif // MORPHCACHE_COMMON_BITOPS_HH

# Empty compiler generated dependencies file for sec24_reconfig_stats.
# This may be replaced when dependencies are built.

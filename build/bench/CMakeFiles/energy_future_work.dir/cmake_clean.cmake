file(REMOVE_RECURSE
  "CMakeFiles/energy_future_work.dir/energy_future_work.cc.o"
  "CMakeFiles/energy_future_work.dir/energy_future_work.cc.o.d"
  "energy_future_work"
  "energy_future_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

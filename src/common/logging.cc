#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace morphcache {

namespace {

/** -1 = not yet initialized from MC_LOG_LEVEL. */
int currentLevel = -1;

LogSink *currentSink = nullptr;

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("MC_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::Normal;
    if (std::strcmp(env, "quiet") == 0 || std::strcmp(env, "0") == 0)
        return LogLevel::Quiet;
    if (std::strcmp(env, "verbose") == 0 ||
        std::strcmp(env, "2") == 0) {
        return LogLevel::Verbose;
    }
    return LogLevel::Normal;
}

void
dispatch(const char *kind, const char *text)
{
    if (currentSink)
        currentSink->message(kind, text);
    else
        logToStderr(kind, text);
}

void
vreport(const char *kind, const char *fmt, va_list args)
{
    char buf[1024];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    dispatch(kind, buf);
}

} // namespace

LogLevel
logLevel()
{
    if (currentLevel < 0)
        currentLevel = static_cast<int>(levelFromEnv());
    return static_cast<LogLevel>(currentLevel);
}

void
setLogLevel(LogLevel level)
{
    currentLevel = static_cast<int>(level);
}

void
setLogSink(LogSink *sink)
{
    currentSink = sink;
}

void
logToStderr(const char *kind, const char *text)
{
    std::fprintf(stderr, "%s: %s\n", kind, text);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
verbose(const char *fmt, ...)
{
    if (logLevel() != LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("verbose", fmt, args);
    va_end(args);
}

} // namespace morphcache

# Empty dependencies file for mc_baselines.
# This may be replaced when dependencies are built.

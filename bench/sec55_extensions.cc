/**
 * @file
 * Section 5.5 — relaxing the group-shape restrictions.
 *
 * Three MorphCache variants across the mixes:
 *   restricted     power-of-two aligned neighbor groups (default)
 *   arbitrary-n    any neighbor group size (paper: +3.6% throughput
 *                  over restricted)
 *   non-neighbor   distant slices may share; they ride the physical
 *                  segment spanning everything between them and pay
 *                  the span latency (paper: -7.1%, which is why the
 *                  paper keeps sharing local and proposes tiling
 *                  for scale)
 */

#include "common.hh"

using namespace morphcache;
using namespace morphcache::bench;

int
main()
{
    const HierarchyParams hier = experimentHierarchy(16);
    const GeneratorParams gen = generatorFor(hier);
    const SimParams sim = defaultSim();
    const Topology baseline_topo = Topology::symmetric(16, 16, 1, 1);

    std::printf("Section 5.5: group-shape extensions, throughput "
                "normalized to (16:1:1)\n");
    printMixHeader();

    MorphConfig restricted;
    MorphConfig arbitrary;
    arbitrary.allowArbitraryGroupSizes = true;
    MorphConfig nonneighbor;
    nonneighbor.allowArbitraryGroupSizes = true;
    nonneighbor.allowNonNeighborGroups = true;

    std::vector<double> r_norm, a_norm, n_norm;
    for (int m = 1; m <= 12; ++m) {
        char name[16];
        std::snprintf(name, sizeof(name), "MIX %02d", m);
        const MixSpec &mix = mixByName(name);

        const RunResult base = runStaticMix(
            mix, baseline_topo, hier, gen, sim, baseSeed() + m);
        const double b = base.avgThroughput;

        r_norm.push_back(runMorphMix(mix, hier, gen, sim,
                                     baseSeed() + m, restricted)
                             .avgThroughput /
                         b);
        a_norm.push_back(runMorphMix(mix, hier, gen, sim,
                                     baseSeed() + m, arbitrary)
                             .avgThroughput /
                         b);
        n_norm.push_back(runMorphMix(mix, hier, gen, sim,
                                     baseSeed() + m, nonneighbor)
                             .avgThroughput /
                         b);
    }
    printSeries("restricted", r_norm);
    printSeries("arbitrary-n", a_norm);
    printSeries("non-neighbor", n_norm);
    std::printf("\npaper: arbitrary neighbor group sizes +3.6%% "
                "over restricted; non-neighbor sharing -7.1%% (span "
                "latency dominates)\n");
    return 0;
}

/**
 * @file
 * Unit/integration tests for the baselines: PIPP (utility monitors,
 * lookahead allocation, insertion/promotion), DSR (set dueling,
 * spilling), and the ideal offline scheme.
 */

#include <gtest/gtest.h>

#include "baselines/dsr.hh"
#include "baselines/ideal_offline.hh"
#include "baselines/pipp.hh"
#include "sim/simulation.hh"
#include "workload/generator.hh"

namespace morphcache {
namespace {

HierarchyParams
testHier(std::uint32_t cores = 4)
{
    HierarchyParams params = HierarchyParams::defaultParams(cores);
    params.l1Geom = CacheGeometry{2048, 2, 64};
    params.l2.sliceGeom = CacheGeometry{16384, 4, 64};  // 256 lines
    params.l3.sliceGeom = CacheGeometry{65536, 8, 64};  // 1024 lines
    return params;
}

TEST(UtilityMonitor, CountsStackHits)
{
    UtilityMonitor monitor(64, 16, /*sample_shift=*/0);
    // Two accesses to the same line in a sampled set: second is a
    // hit at MRU (position 0).
    monitor.access(0);
    monitor.access(0);
    EXPECT_EQ(monitor.hits()[0], 1u);
    EXPECT_EQ(monitor.utility(1), 1u);
}

TEST(UtilityMonitor, DeepReuseLandsDeeper)
{
    UtilityMonitor monitor(64, 16, 0);
    // Touch 4 distinct lines of one set, then re-touch the first:
    // hit at stack position 3.
    for (Addr a = 0; a < 4; ++a)
        monitor.access(a * 64);
    monitor.access(0);
    EXPECT_EQ(monitor.hits()[3], 1u);
    EXPECT_EQ(monitor.utility(3), 0u);
    EXPECT_EQ(monitor.utility(4), 1u);
}

TEST(UtilityMonitor, DecayHalves)
{
    UtilityMonitor monitor(64, 16, 0);
    monitor.access(0);
    monitor.access(0);
    monitor.access(0);
    EXPECT_EQ(monitor.hits()[0], 2u);
    monitor.decay();
    EXPECT_EQ(monitor.hits()[0], 1u);
}

TEST(Lookahead, GivesWaysToTheUtiliyHeavyCore)
{
    // Core 0 shows utility up to 12 ways; core 1 none.
    std::vector<UtilityMonitor> monitors;
    monitors.emplace_back(64, 16, 0);
    monitors.emplace_back(64, 16, 0);
    // Build a reuse pattern for core 0: cycle over 12 lines of one
    // set repeatedly -> hits at positions 0..11.
    for (int rep = 0; rep < 10; ++rep) {
        for (Addr a = 0; a < 12; ++a)
            monitors[0].access(a * 64);
    }
    const auto alloc = lookaheadAllocate(monitors, 16);
    EXPECT_EQ(alloc[0] + alloc[1], 16u);
    EXPECT_GE(alloc[0], 12u);
    EXPECT_GE(alloc[1], 1u); // everyone keeps at least one way
}

TEST(Lookahead, EvenSplitWithoutUtility)
{
    std::vector<UtilityMonitor> monitors;
    monitors.emplace_back(64, 8, 0);
    monitors.emplace_back(64, 8, 0);
    const auto alloc = lookaheadAllocate(monitors, 8);
    EXPECT_EQ(alloc[0] + alloc[1], 8u);
    EXPECT_GE(alloc[0], 1u);
    EXPECT_GE(alloc[1], 1u);
}

TEST(PippSystem, RunsAndAllocates)
{
    GeneratorParams gen;
    gen.l2SliceLines = 256;
    gen.l3SliceLines = 1024;
    MixWorkload workload(mixByName("MIX 08"), gen, 7);

    PippSystem sys(HierarchyParams::defaultParams(16));
    SimParams sim;
    sim.refsPerEpochPerCore = 1500;
    sim.epochs = 3;
    sim.warmupEpochs = 1;
    Simulation simulation(sys, workload, sim);
    const RunResult result = simulation.run();
    EXPECT_GT(result.avgThroughput, 0.0);

    // Allocations must be a valid partition of the 128 L2 ways.
    std::uint32_t total = 0;
    for (CoreId c = 0; c < 16; ++c) {
        EXPECT_GE(sys.l2Policy().allocation(c), 1u);
        total += sys.l2Policy().allocation(c);
    }
    EXPECT_EQ(total, 128u);
}

TEST(DsrPolicy, LeaderRolesAreFixed)
{
    DsrPolicy policy(4, 512);
    // Slice 0: set 0 is its always-spill leader, set 1 never-spill.
    EXPECT_TRUE(policy.isSpiller(0, 0));
    EXPECT_FALSE(policy.isSpiller(0, 1));
    // Slice 2's leaders are at phase 4 and 5.
    EXPECT_TRUE(policy.isSpiller(2, 4));
    EXPECT_FALSE(policy.isSpiller(2, 5));
}

TEST(DsrPolicy, PselSteersFollowerSets)
{
    DsrPolicy policy(4, 512);
    CacheLevelModel level([] {
        LevelParams p;
        p.numSlices = 4;
        p.sliceGeom = CacheGeometry{16384, 4, 64};
        return p;
    }());
    // Misses in the never-spill leader sets push PSEL negative ->
    // spilling preferred in follower sets.
    for (int i = 0; i < 10; ++i)
        policy.miss(level, 0, /*line=*/1 + 512 * i); // set 1
    EXPECT_LT(policy.psel(0), 0);
    EXPECT_TRUE(policy.isSpiller(0, /*follower set*/ 100));
    // Misses in the always-spill leaders push it back.
    for (int i = 0; i < 20; ++i)
        policy.miss(level, 0, /*line=*/0 + 512 * i); // set 0
    EXPECT_GT(policy.psel(0), 0);
    EXPECT_FALSE(policy.isSpiller(0, 100));
}

TEST(DsrSystem, SpillsFromHotToCold)
{
    // Core 0 streams over a large footprint; cores 1-3 idle. DSR
    // should learn to spill and use the idle slices.
    HierarchyParams hier = testHier(4);
    DsrSystem sys(hier);

    GeneratorParams gen;
    gen.l2SliceLines = 256;
    gen.l3SliceLines = 1024;
    SoloWorkload hot(profileByName("cactusADM"), gen, 7);

    // Drive core 0 directly (other cores silent).
    for (int e = 0; e < 6; ++e) {
        hot.beginEpoch(static_cast<EpochId>(e));
        for (int i = 0; i < 4000; ++i)
            sys.access(hot.next(0), 0);
    }
    EXPECT_GT(sys.l2Policy().numSpills(), 0u);
}

TEST(IdealOffline, PicksBestTopologyPerEpoch)
{
    GeneratorParams gen;
    gen.l2SliceLines = 256;
    gen.l3SliceLines = 1024;
    MixWorkload workload(mixByName("MIX 09"), gen, 7);

    const std::vector<Topology> candidates = {
        Topology::symmetric(16, 16, 1, 1),
        Topology::symmetric(16, 1, 1, 16),
        Topology::symmetric(16, 4, 4, 1),
    };
    SimParams sim;
    sim.refsPerEpochPerCore = 1200;
    sim.epochs = 3;
    sim.warmupEpochs = 1;

    const IdealOfflineResult ideal = runIdealOffline(
        HierarchyParams::defaultParams(16), candidates, workload,
        sim);
    ASSERT_EQ(ideal.chosenTopology.size(), 3u);
    EXPECT_GT(ideal.run.avgThroughput, 0.0);

    // The oracle can never lose to always picking candidate 0 with
    // the same seed (it evaluates that choice too).
    MixWorkload workload2(mixByName("MIX 09"), gen, 7);
    StaticTopologySystem fixed(HierarchyParams::defaultParams(16),
                               candidates[0]);
    Simulation fixed_sim(fixed, workload2, sim);
    const double fixed_tput = fixed_sim.run().avgThroughput;
    EXPECT_GE(ideal.run.avgThroughput, 0.98 * fixed_tput);
}

} // namespace
} // namespace morphcache

/**
 * @file
 * System-level performance metrics used throughout the evaluation.
 *
 * Throughput is the sum of per-core IPCs (the paper's primary
 * metric); weighted speedup gives each application equal weight
 * relative to a reference run; fair speedup is the harmonic mean of
 * per-application speedups (Smith [25]), balancing fairness and
 * performance.
 */

#ifndef MORPHCACHE_STATS_METRICS_HH
#define MORPHCACHE_STATS_METRICS_HH

#include <vector>

namespace morphcache {

/** Sum of per-core IPCs. */
double throughput(const std::vector<double> &ipcs);

/**
 * Weighted speedup: (1/N) * sum_i ipc_i / ref_ipc_i.
 *
 * @param ipcs Per-application IPCs under the evaluated scheme.
 * @param ref_ipcs Per-application IPCs under the reference scheme.
 */
double weightedSpeedup(const std::vector<double> &ipcs,
                       const std::vector<double> &ref_ipcs);

/**
 * Fair speedup: harmonic mean of per-application speedups
 * ipc_i / ref_ipc_i.
 */
double fairSpeedup(const std::vector<double> &ipcs,
                   const std::vector<double> &ref_ipcs);

} // namespace morphcache

#endif // MORPHCACHE_STATS_METRICS_HH

#include "hierarchy/hierarchy.hh"

#include <string>

#include "common/error.hh"
#include "common/logging.hh"
#include "stats/registry.hh"

namespace morphcache {

namespace {

/** Validate one slice geometry, naming the level in any error. */
void
validateGeometry(const char *level, const CacheGeometry &geom)
{
    const std::string where = level;
    if (geom.sizeBytes == 0 || geom.assoc == 0 || geom.lineBytes == 0)
        throw ConfigError(where + ": geometry fields must be nonzero");
    if (!isPowerOf2(geom.sizeBytes)) {
        throw ConfigError(where + ": capacity " +
                          std::to_string(geom.sizeBytes) +
                          " bytes is not a power of two");
    }
    if (!isPowerOf2(geom.lineBytes)) {
        throw ConfigError(where + ": line size " +
                          std::to_string(geom.lineBytes) +
                          " bytes is not a power of two");
    }
    if (geom.lineBytes > geom.sizeBytes) {
        throw ConfigError(where +
                          ": line size exceeds slice capacity");
    }
    if (geom.assoc > geom.numLines()) {
        throw ConfigError(
            where + ": associativity " + std::to_string(geom.assoc) +
            " exceeds the slice's " +
            std::to_string(geom.numLines()) + " lines");
    }
    if (!geom.valid()) {
        throw ConfigError(where +
                          ": lines do not divide evenly into " +
                          std::to_string(geom.assoc) + "-way sets");
    }
}

} // namespace

HierarchyParams
HierarchyParams::defaultParams(std::uint32_t num_cores)
{
    HierarchyParams params;
    params.numCores = num_cores;
    params.l1Geom = CacheGeometry{32 * 1024, 4, 64};
    params.l1Latency = 3;

    params.l2.name = "L2";
    params.l2.numSlices = num_cores;
    params.l2.sliceGeom = CacheGeometry{256 * 1024, 8, 64};
    params.l2.localHitLatency = 10;

    params.l3.name = "L3";
    params.l3.numSlices = num_cores;
    params.l3.sliceGeom = CacheGeometry{1024 * 1024, 16, 64};
    params.l3.localHitLatency = 30;

    params.memLatency = 300;
    return params;
}

void
HierarchyParams::validate() const
{
    if (numCores == 0)
        throw ConfigError("numCores must be nonzero");
    validateGeometry("L1", l1Geom);
    validateGeometry("L2", l2.sliceGeom);
    validateGeometry("L3", l3.sliceGeom);
    if (l2.numSlices != numCores) {
        throw ConfigError(
            "L2 has " + std::to_string(l2.numSlices) +
            " slices for " + std::to_string(numCores) +
            " cores; the design is one slice per core");
    }
    if (l3.numSlices != numCores) {
        throw ConfigError(
            "L3 has " + std::to_string(l3.numSlices) +
            " slices for " + std::to_string(numCores) +
            " cores; the design is one slice per core");
    }
    if (l2.sliceGeom.lineBytes != l1Geom.lineBytes ||
        l3.sliceGeom.lineBytes != l1Geom.lineBytes) {
        throw ConfigError(
            "line size must match across L1/L2/L3; inclusion and "
            "back-invalidation track whole lines");
    }
    if (l1Latency == 0 || l2.localHitLatency == 0 ||
        l3.localHitLatency == 0 || memLatency == 0) {
        throw ConfigError("hit/memory latencies must be nonzero");
    }
}

namespace {

/** Validation must precede level construction (members init in
 * declaration order and the levels assert on their geometry). */
const HierarchyParams &
validated(const HierarchyParams &params)
{
    params.validate();
    return params;
}

} // namespace

Hierarchy::Hierarchy(const HierarchyParams &params)
    : params_(validated(params)), l2_(params.l2), l3_(params.l3),
      topology_(Topology::allPrivateTopology(params.numCores)),
      coreStats_(params.numCores)
{
    lineShift_ = exactLog2(params_.l1Geom.lineBytes);
    l1s_.reserve(params_.numCores);
    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        l1s_.emplace_back(static_cast<SliceId>(c), params_.l1Geom,
                          ReplPolicy::LRU);
    }
}

void
Hierarchy::reconfigure(const Topology &topology)
{
    MC_ASSERT(topology.numCores == params_.numCores);
    validatePartition(topology.l2, params_.numCores);
    validatePartition(topology.l3, params_.numCores);
    if (!topology.respectsInclusion()) {
        fatal("topology %s violates L2-within-L3 inclusion",
              topology.name().c_str());
    }
    const Topology old = topology_;
    topology_ = topology;
    l2_.configure(topology.l2);
    l3_.configure(topology.l3);
    enforceInclusion(old);
}

void
Hierarchy::enforceInclusion(const Topology &old_topology)
{
    const auto old_l3 = groupOfSlice(old_topology.l3, params_.numCores);
    const auto new_l3 = groupOfSlice(topology_.l3, params_.numCores);

    // L2 lines must be backed by the slice's *new* L3 group. Only
    // slices whose new group is not a superset of the old one can
    // have lost backing.
    const auto &geom = params_.l2.sliceGeom;
    for (std::uint32_t s = 0; s < params_.numCores; ++s) {
        bool superset = true;
        for (SliceId member : old_topology.l3[old_l3[s]]) {
            if (new_l3[member] != new_l3[s]) {
                superset = false;
                break;
            }
        }
        if (superset)
            continue;
        const auto &backing = topology_.l3[new_l3[s]];
        CacheSlice &slice = l2_.slice(static_cast<SliceId>(s));
        for (std::uint64_t set = 0; set < geom.numSets(); ++set) {
            for (std::uint32_t way = 0; way < geom.assoc; ++way) {
                if (!slice.validAt(set, way))
                    continue;
                const Addr line_addr = slice.lineAddrAt(set, way);
                if (l3_.presentInSlices(backing, line_addr))
                    continue;
                const bool dirty =
                    l2_.invalidateInSlices({static_cast<SliceId>(s)},
                                           line_addr);
                if (dirty)
                    ++coreStats_[s].writebacks;
            }
        }
    }

    // L1 lines must be present in the owning core's new L2 group.
    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        CacheSlice &l1 = l1s_[c];
        const auto &l1_geom = params_.l1Geom;
        for (std::uint64_t set = 0; set < l1_geom.numSets(); ++set) {
            for (std::uint32_t way = 0; way < l1_geom.assoc; ++way) {
                if (!l1.validAt(set, way))
                    continue;
                const Addr line_addr = l1.lineAddrAt(set, way);
                if (l2_.presentInGroup(static_cast<CoreId>(c),
                                       line_addr)) {
                    continue;
                }
                const Eviction ev = l1.invalidate(line_addr);
                if (ev.valid && ev.dirty) {
                    if (!l3_.markDirty(static_cast<CoreId>(c),
                                       ev.lineAddr)) {
                        ++coreStats_[c].writebacks;
                    }
                }
            }
        }
    }
}

AccessResult
Hierarchy::access(const MemAccess &access, Cycle now)
{
    MC_ASSERT(access.core < params_.numCores);
    CoreStats &stats = coreStats_[access.core];
    ++stats.accesses;

    const Addr line = access.addr >> lineShift_;
    const bool is_write = access.type == AccessType::Write;
    AccessResult result;
    result.latency = params_.l1Latency;

    // ---- L1 -----------------------------------------------------
    CacheSlice &l1 = l1s_[access.core];
    if (const auto way = l1.probe(line)) {
        const std::uint64_t set = l1.setIndex(line);
        l1.touch(set, *way, ++l1Stamp_);
        if (is_write) {
            if (!l1.dirtyAt(set, *way) && params_.coherence)
                coherenceInvalidate(access.core, line);
            l1.setDirtyAt(set, *way);
        }
        ++stats.l1Hits;
        result.servedBy = ServedBy::L1;
        stats.totalLatency += result.latency;
        return result;
    }

    // ---- L2 group -----------------------------------------------
    const LookupOutcome l2_out =
        l2_.lookup(access.core, line, now + result.latency);
    result.latency += l2_out.latency;
    if (l2_out.hit) {
        result.servedBy =
            l2_out.remote ? ServedBy::L2Remote : ServedBy::L2Local;
        if (l2_out.remote)
            ++stats.l2RemoteHits;
        else
            ++stats.l2LocalHits;
        fillL1(access.core, line, false);
    } else {
        // ---- L3 group ---------------------------------------------
        const LookupOutcome l3_out =
            l3_.lookup(access.core, line, now + result.latency);
        result.latency += l3_out.latency;
        if (l3_out.hit) {
            result.servedBy = l3_out.remote ? ServedBy::L3Remote
                                            : ServedBy::L3Local;
            if (l3_out.remote)
                ++stats.l3RemoteHits;
            else
                ++stats.l3LocalHits;
        } else if (params_.coherence &&
                   l3_.findInOtherGroups(access.core, line)) {
            // Cache-to-cache transfer from a sibling group; copies
            // stay valid for reads and are invalidated below for
            // writes.
            result.latency += params_.otherGroupLatency;
            result.servedBy = ServedBy::OtherGroup;
            ++stats.otherGroupTransfers;
            fillL3(access.core, line, false);
        } else {
            result.latency += params_.memLatency;
            result.servedBy = ServedBy::Memory;
            ++stats.memAccesses;
            fillL3(access.core, line, false);
        }
        fillL2(access.core, line, false);
        fillL1(access.core, line, false);
    }

    if (is_write) {
        if (params_.coherence)
            coherenceInvalidate(access.core, line);
        // Write-back, write-allocate: the L1 copy becomes dirty.
        if (const auto way = l1.probe(line)) {
            l1.setDirtyAt(l1.setIndex(line), *way);
        }
    }

    stats.totalLatency += result.latency;
    return result;
}

void
Hierarchy::fillL1(CoreId core, Addr line_addr, bool dirty)
{
    CacheSlice &l1 = l1s_[core];
    const std::uint64_t set = l1.setIndex(line_addr);
    const std::uint32_t way = l1.victimWay(set);
    const Eviction ev = l1.fill(set, way, line_addr, dirty, ++l1Stamp_);
    if (ev.valid && ev.dirty) {
        // Write the victim back into the core's L2 group; inclusion
        // normally guarantees presence, but a copy can have been
        // dropped by reconfiguration or coherence, in which case the
        // writeback continues down.
        if (!l2_.markDirty(core, ev.lineAddr) &&
            !l3_.markDirty(core, ev.lineAddr)) {
            ++coreStats_[core].writebacks;
        }
    }
}

void
Hierarchy::fillL2(CoreId core, Addr line_addr, bool dirty)
{
    const InsertOutcome out = l2_.insert(core, line_addr, dirty);
    if (!out.evicted.valid)
        return;
    if (!params_.inclusive) {
        if (out.evicted.dirty &&
            !l3_.markDirty(static_cast<CoreId>(out.evictedFrom),
                           out.evicted.lineAddr)) {
            ++coreStats_[core].writebacks;
        }
        return;
    }
    // Inclusion: the displaced line leaves every L1 above this L2
    // group.
    bool victim_dirty = out.evicted.dirty;
    for (SliceId member : l2_.partition()[l2_.groupOf(out.evictedFrom)]) {
        const Eviction ev =
            l1s_[member].invalidate(out.evicted.lineAddr);
        if (ev.valid && ev.dirty)
            victim_dirty = true;
    }
    if (victim_dirty) {
        if (!l3_.markDirty(static_cast<CoreId>(out.evictedFrom),
                           out.evicted.lineAddr)) {
            ++coreStats_[core].writebacks;
        }
    }
}

void
Hierarchy::fillL3(CoreId core, Addr line_addr, bool dirty)
{
    const InsertOutcome out = l3_.insert(core, line_addr, dirty);
    if (!out.evicted.valid)
        return;
    if (!params_.inclusive) {
        if (out.evicted.dirty)
            ++coreStats_[core].writebacks;
        return;
    }
    // Inclusion: the displaced line leaves the L2 slices and L1s
    // backed by this L3 group.
    const auto &backing = l3_.partition()[l3_.groupOf(out.evictedFrom)];
    bool victim_dirty = out.evicted.dirty;
    if (l2_.invalidateInSlices(backing, out.evicted.lineAddr))
        victim_dirty = true;
    for (SliceId member : backing) {
        const Eviction ev =
            l1s_[member].invalidate(out.evicted.lineAddr);
        if (ev.valid && ev.dirty)
            victim_dirty = true;
    }
    if (victim_dirty)
        ++coreStats_[core].writebacks;
}

void
Hierarchy::coherenceInvalidate(CoreId writer, Addr line_addr)
{
    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        if (c == writer)
            continue;
        l1s_[c].invalidate(line_addr);
    }
    l2_.invalidateOutsideGroup(writer, line_addr);
    l3_.invalidateOutsideGroup(writer, line_addr);
}

const CoreStats &
Hierarchy::coreStats(CoreId core) const
{
    MC_ASSERT(core < params_.numCores);
    return coreStats_[core];
}

void
Hierarchy::resetCoreStats()
{
    for (auto &stats : coreStats_)
        stats = CoreStats{};
}

void
Hierarchy::resetFootprints()
{
    l2_.resetFootprints();
    l3_.resetFootprints();
}

CacheSlice &
Hierarchy::l1(CoreId core)
{
    MC_ASSERT(core < params_.numCores);
    return l1s_[core];
}

void
Hierarchy::registerStats(StatsRegistry &registry) const
{
    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        const std::string core =
            "sim.core" + std::to_string(c) + ".";
        const CoreStats &stats = coreStats_[c];
        const auto bind = [&](const char *name,
                              const std::uint64_t &field) {
            registry.bindCounter(core + name,
                                 [&field]() { return field; });
        };
        bind("accesses", stats.accesses);
        bind("l1Hits", stats.l1Hits);
        bind("l2LocalHits", stats.l2LocalHits);
        bind("l2RemoteHits", stats.l2RemoteHits);
        bind("l3LocalHits", stats.l3LocalHits);
        bind("l3RemoteHits", stats.l3RemoteHits);
        bind("otherGroupTransfers", stats.otherGroupTransfers);
        bind("memAccesses", stats.memAccesses);
        bind("writebacks", stats.writebacks);
        bind("stallCycles", stats.totalLatency);
    }
    l2_.registerStats(registry, "hier.l2", "bus.l2");
    l3_.registerStats(registry, "hier.l3", "bus.l3");
}

namespace {

void
savePartition(CkptWriter &w, const Partition &partition)
{
    w.u64(partition.size());
    for (const auto &group : partition) {
        w.u64(group.size());
        for (SliceId s : group)
            w.u32(s);
    }
}

Partition
loadPartition(CkptReader &r, std::uint32_t num_slices)
{
    const std::uint64_t numGroups = r.u64();
    if (numGroups == 0 || numGroups > num_slices)
        r.fail("topology group count " + std::to_string(numGroups) +
               " invalid");
    Partition partition(static_cast<std::size_t>(numGroups));
    for (auto &group : partition) {
        const std::uint64_t size = r.u64();
        if (size == 0 || size > num_slices)
            r.fail("topology group size " + std::to_string(size) +
                   " invalid");
        group.reserve(static_cast<std::size_t>(size));
        for (std::uint64_t i = 0; i < size; ++i) {
            const std::uint32_t s = r.u32();
            if (s >= num_slices)
                r.fail("topology slice id " + std::to_string(s) +
                       " out of range");
            group.push_back(static_cast<SliceId>(s));
        }
    }
    return partition;
}

} // namespace

void
Hierarchy::saveState(CkptWriter &w) const
{
    savePartition(w, topology_.l2);
    savePartition(w, topology_.l3);
    w.u64(l1s_.size());
    for (const CacheSlice &l1 : l1s_)
        l1.saveState(w);
    l2_.saveState(w);
    l3_.saveState(w);
    for (const CoreStats &stats : coreStats_) {
        w.u64(stats.accesses);
        w.u64(stats.l1Hits);
        w.u64(stats.l2LocalHits);
        w.u64(stats.l2RemoteHits);
        w.u64(stats.l3LocalHits);
        w.u64(stats.l3RemoteHits);
        w.u64(stats.otherGroupTransfers);
        w.u64(stats.memAccesses);
        w.u64(stats.writebacks);
        w.u64(stats.totalLatency);
    }
    w.u64(l1Stamp_);
}

void
Hierarchy::loadState(CkptReader &r)
{
    // Install the topology directly: the levels' loadState replays
    // configure() on their own saved partitions; reconfigure() must
    // not run here — it migrates lines and back-invalidates against
    // the stale contents about to be overwritten.
    Topology topology;
    topology.numCores = params_.numCores;
    topology.l2 = loadPartition(r, params_.numCores);
    topology.l3 = loadPartition(r, params_.numCores);
    topology_ = std::move(topology);
    r.expectU64("L1 slice count", l1s_.size());
    for (CacheSlice &l1 : l1s_)
        l1.loadState(r);
    l2_.loadState(r);
    l3_.loadState(r);
    for (CoreStats &stats : coreStats_) {
        stats.accesses = r.u64();
        stats.l1Hits = r.u64();
        stats.l2LocalHits = r.u64();
        stats.l2RemoteHits = r.u64();
        stats.l3LocalHits = r.u64();
        stats.l3RemoteHits = r.u64();
        stats.otherGroupTransfers = r.u64();
        stats.memAccesses = r.u64();
        stats.writebacks = r.u64();
        stats.totalLatency = r.u64();
    }
    l1Stamp_ = r.u64();
}

} // namespace morphcache

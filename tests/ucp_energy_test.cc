/**
 * @file
 * Tests for the UCP baseline and the energy model.
 */

#include <gtest/gtest.h>

#include "baselines/ucp.hh"
#include "sim/config.hh"
#include "sim/energy.hh"
#include "sim/simulation.hh"
#include "workload/generator.hh"

namespace morphcache {
namespace {

HierarchyParams
testHier(std::uint32_t cores = 4)
{
    HierarchyParams params = HierarchyParams::defaultParams(cores);
    params.l1Geom = CacheGeometry{2048, 2, 64};
    params.l2.sliceGeom = CacheGeometry{16384, 4, 64};
    params.l3.sliceGeom = CacheGeometry{65536, 8, 64};
    return params;
}

TEST(Ucp, QuotasPartitionAllWays)
{
    GeneratorParams gen;
    gen.l2SliceLines = 256;
    gen.l3SliceLines = 1024;
    MixWorkload workload(mixByName("MIX 08"), gen, 7);

    UcpSystem system(HierarchyParams::defaultParams(16));
    SimParams sim;
    sim.refsPerEpochPerCore = 1500;
    sim.epochs = 3;
    sim.warmupEpochs = 1;
    Simulation simulation(system, workload, sim);
    EXPECT_GT(simulation.run().avgThroughput, 0.0);

    std::uint32_t total = 0;
    for (CoreId c = 0; c < 16; ++c) {
        EXPECT_GE(system.l2Policy().quota(c), 1u);
        total += system.l2Policy().quota(c);
    }
    EXPECT_EQ(total, 128u);
}

TEST(Ucp, QuotaEnforcementEvictsOwnLines)
{
    // A single hot core under a tight quota must victim its own
    // lines, leaving other cores' lines resident.
    UcpPolicy policy(/*cores=*/2, /*sets=*/64, /*slices=*/2,
                     /*assoc=*/4);
    LevelParams level_params;
    level_params.numSlices = 2;
    level_params.sliceGeom = CacheGeometry{16 * 1024, 4, 64};
    CacheLevelModel level(level_params);
    level.configure(allShared(2));
    level.setHooks(&policy);

    // Core 1 installs two lines in set 0.
    level.insert(1, 0 * 64, false);
    level.insert(1, 64 * 64, false);
    // Core 0 installs many same-set lines; default quota is 4 each,
    // so once past 4 it must recycle its own.
    for (Addr k = 1; k <= 10; ++k)
        level.insert(0, (k * 64 + 32) * 64, false);
    // Core 1's lines must still be resident.
    EXPECT_TRUE(level.presentInGroup(1, 0 * 64));
    EXPECT_TRUE(level.presentInGroup(1, 64 * 64));
}

TEST(Energy, AccumulatesPerComponent)
{
    Hierarchy h(testHier());
    for (Addr line = 0; line < 200; ++line)
        h.access(MemAccess{0, line << 6, AccessType::Read}, 0);
    const EnergyBreakdown e = accountEnergy(h);
    EXPECT_GT(e.l1, 0.0);
    EXPECT_GT(e.l2, 0.0);
    EXPECT_GT(e.l3, 0.0);
    EXPECT_GT(e.memory, 0.0);
    EXPECT_DOUBLE_EQ(e.total(),
                     e.l1 + e.l2 + e.l3 + e.memory + e.bus);
}

TEST(Energy, SharedGroupsCostMoreProbesAndBus)
{
    auto run = [](const Topology &topo) {
        Hierarchy h(testHier());
        h.reconfigure(topo);
        Rng rng(5);
        for (int i = 0; i < 4000; ++i) {
            h.access(MemAccess{static_cast<CoreId>(rng.below(4)),
                               rng.below(4096) << 6,
                               AccessType::Read},
                     i);
        }
        return accountEnergy(h);
    };
    const EnergyBreakdown priv =
        run(Topology::allPrivateTopology(4));
    const EnergyBreakdown shared =
        run(Topology::symmetric(4, 4, 1, 1));
    EXPECT_GT(shared.l2, priv.l2);   // broadcast probes
    EXPECT_GT(shared.bus, priv.bus); // full-span transactions
    EXPECT_EQ(priv.bus, 0.0);        // private groups never bus
}

TEST(Energy, BusEnergyScalesWithSpan)
{
    // Same traffic, pair groups vs one big group: the big group's
    // bus events drive a longer physical segment.
    auto bus_energy = [](const Topology &topo) {
        Hierarchy h(testHier());
        h.reconfigure(topo);
        // Core 0 fills; core 1/2/3 hit remotely where allowed.
        for (Addr line = 0; line < 64; ++line)
            h.access(MemAccess{0, line << 6, AccessType::Read}, 0);
        for (CoreId c = 1; c < 4; ++c) {
            for (Addr line = 0; line < 64; ++line) {
                h.access(MemAccess{c, line << 6, AccessType::Read},
                         1000);
            }
        }
        return accountEnergy(h).bus;
    };
    Topology pairs;
    pairs.numCores = 4;
    pairs.l2 = {{0, 1}, {2, 3}};
    pairs.l3 = {{0, 1}, {2, 3}};
    const double pair_bus = bus_energy(pairs);
    const double quad_bus =
        bus_energy(Topology::symmetric(4, 4, 1, 1));
    EXPECT_GT(quad_bus, pair_bus);
}

} // namespace
} // namespace morphcache

#include "baselines/ideal_offline.hh"

#include <algorithm>

#include "common/logging.hh"
#include "stats/metrics.hh"

namespace morphcache {

namespace {

/** Throughput of running one epoch on a scratch copy of the state. */
double
probeEpochThroughput(const Hierarchy &checkpoint_h,
                     const Workload &checkpoint_w,
                     const std::vector<double> &cycles0,
                     const std::vector<double> &instrs0,
                     const Topology &topology, EpochId epoch,
                     const SimParams &sim)
{
    Hierarchy h = checkpoint_h; // full cache-state copy
    const std::unique_ptr<Workload> w = checkpoint_w.clone();
    std::vector<double> cycles = cycles0;
    std::vector<double> instrs = instrs0;

    h.reconfigure(topology);
    w->beginEpoch(epoch);
    runEpochAccesses(h, *w, sim.core, sim.refsPerEpochPerCore, cycles,
                     instrs);

    std::vector<double> ipc(cycles.size());
    for (std::size_t c = 0; c < cycles.size(); ++c) {
        const double dcycles = cycles[c] - cycles0[c];
        ipc[c] = dcycles > 0.0
                     ? (instrs[c] - instrs0[c]) / dcycles
                     : 0.0;
    }
    return throughput(ipc);
}

} // namespace

IdealOfflineResult
runIdealOffline(HierarchyParams params,
                const std::vector<Topology> &candidates,
                Workload &workload, const SimParams &sim)
{
    MC_ASSERT(!candidates.empty());
    // The oracle chooses among *static* topologies and uses the
    // static latency model: fixed remote-hit premium, no
    // segmented-bus serialization.
    params.l2.chargeBusPenalty = false;
    params.l3.chargeBusPenalty = false;
    params.l2.remoteHitExtraCycles = 15;
    params.l3.remoteHitExtraCycles = 15;

    Hierarchy hierarchy(params);
    hierarchy.reconfigure(candidates.front());

    const std::uint32_t cores = workload.numCores();
    std::vector<double> cycles(cores, 0.0);
    std::vector<double> instrs(cores, 0.0);

    EpochId epoch = 0;
    for (std::uint32_t w = 0; w < sim.warmupEpochs; ++w) {
        workload.beginEpoch(epoch);
        runEpochAccesses(hierarchy, workload, sim.core,
                         sim.refsPerEpochPerCore, cycles, instrs);
        ++epoch;
    }

    IdealOfflineResult result;
    const std::vector<double> run_cycles0 = cycles;
    const std::vector<double> run_instrs0 = instrs;

    for (std::uint32_t e = 0; e < sim.epochs; ++e, ++epoch) {
        // Probe every candidate from a checkpoint, commit the best.
        std::size_t best = 0;
        double best_throughput = -1.0;
        for (std::size_t t = 0; t < candidates.size(); ++t) {
            const double tput = probeEpochThroughput(
                hierarchy, workload, cycles, instrs, candidates[t],
                epoch, sim);
            if (tput > best_throughput) {
                best_throughput = tput;
                best = t;
            }
        }

        hierarchy.reconfigure(candidates[best]);
        result.chosenTopology.push_back(candidates[best].name());

        const std::vector<double> cycles0 = cycles;
        const std::vector<double> instrs0 = instrs;
        workload.beginEpoch(epoch);
        runEpochAccesses(hierarchy, workload, sim.core,
                         sim.refsPerEpochPerCore, cycles, instrs);

        EpochMetrics metrics;
        metrics.ipc.resize(cores);
        metrics.misses.assign(cores, 0);
        for (std::uint32_t c = 0; c < cores; ++c) {
            const double dcycles = cycles[c] - cycles0[c];
            metrics.ipc[c] =
                dcycles > 0.0 ? (instrs[c] - instrs0[c]) / dcycles
                              : 0.0;
        }
        metrics.throughput = throughput(metrics.ipc);
        result.run.epochs.push_back(std::move(metrics));
    }

    result.run.avgIpc.resize(cores);
    double max_cycles = 0.0, total_instr = 0.0;
    for (std::uint32_t c = 0; c < cores; ++c) {
        const double dcycles = cycles[c] - run_cycles0[c];
        const double dinstr = instrs[c] - run_instrs0[c];
        result.run.avgIpc[c] = dcycles > 0.0 ? dinstr / dcycles : 0.0;
        max_cycles = std::max(max_cycles, dcycles);
        total_instr += dinstr;
    }
    result.run.avgThroughput = throughput(result.run.avgIpc);
    result.run.performance =
        max_cycles > 0.0 ? total_instr / max_cycles : 0.0;
    return result;
}

} // namespace morphcache

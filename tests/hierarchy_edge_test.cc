/**
 * @file
 * Edge-case tests for the hierarchy: dirty-data movement across
 * coherence events, writeback accounting, and reconfiguration in
 * the presence of dirty lines.
 */

#include <gtest/gtest.h>

#include "hierarchy/hierarchy.hh"

namespace morphcache {
namespace {

HierarchyParams
smallParams(std::uint32_t cores = 4, bool coherence = false)
{
    HierarchyParams params = HierarchyParams::defaultParams(cores);
    params.l1Geom = CacheGeometry{1024, 2, 64};        // 16 lines
    params.l2.sliceGeom = CacheGeometry{4096, 4, 64};  // 64 lines
    params.l3.sliceGeom = CacheGeometry{16384, 8, 64}; // 256 lines
    params.coherence = coherence;
    return params;
}

MemAccess
read(CoreId core, Addr line)
{
    return MemAccess{core, line << 6, AccessType::Read};
}

MemAccess
write(CoreId core, Addr line)
{
    return MemAccess{core, line << 6, AccessType::Write};
}

TEST(HierarchyEdge, WriteAfterRemoteDirtyCopy)
{
    Hierarchy h(smallParams(4, /*coherence=*/true));
    // Core 0 dirties a line; core 1 then writes the same line.
    h.access(write(0, 0x500), 0);
    const auto result = h.access(write(1, 0x500), 100);
    EXPECT_NE(result.servedBy, ServedBy::L1);
    // Core 0's copies must be gone; core 1 owns the line dirty.
    EXPECT_FALSE(h.l2().presentInGroup(0, 0x500));
    EXPECT_FALSE(h.l1(0).probe(0x500).has_value());
    EXPECT_TRUE(h.l1(1).probe(0x500).has_value());
}

TEST(HierarchyEdge, PingPongWritesStayCorrect)
{
    Hierarchy h(smallParams(2, /*coherence=*/true));
    for (int round = 0; round < 10; ++round) {
        h.access(write(0, 0x700), round * 10);
        h.access(write(1, 0x700), round * 10 + 5);
    }
    // Exactly one L1 holds the line at the end (the last writer).
    const int copies = (h.l1(0).probe(0x700).has_value() ? 1 : 0) +
                       (h.l1(1).probe(0x700).has_value() ? 1 : 0);
    EXPECT_EQ(copies, 1);
    EXPECT_TRUE(h.l1(1).probe(0x700).has_value());
}

TEST(HierarchyEdge, L3DirtyEvictionCountsWriteback)
{
    Hierarchy h(smallParams(1));
    // Dirty a line, then force it down and out of the L3 set by
    // filling 9 same-L3-set lines (8-way L3).
    const std::uint64_t l3_sets = 32;
    h.access(write(0, 7), 0);
    // Push it out of L1 (2-way, 8 sets) and L2 (4-way, 16 sets)
    // first via same-set traffic, then out of L3.
    for (std::uint64_t k = 1; k <= 9; ++k)
        h.access(read(0, 7 + k * l3_sets), 0);
    EXPECT_FALSE(h.l3().presentInGroup(0, 7));
    EXPECT_GE(h.coreStats(0).writebacks, 1u);
}

TEST(HierarchyEdge, ReconfigurePreservesDirtyDataReachability)
{
    Hierarchy h(smallParams(4));
    Topology merged;
    merged.numCores = 4;
    merged.l2 = {{0, 1}, {2, 3}};
    merged.l3 = {{0, 1}, {2, 3}};
    h.reconfigure(merged);

    // Dirty lines written while merged...
    for (Addr line = 0; line < 32; ++line)
        h.access(write(0, 0x800 + line), 0);
    // ...must remain reachable (and correct) after splitting.
    h.reconfigure(Topology::allPrivateTopology(4));
    for (Addr line = 0; line < 32; ++line) {
        const auto result = h.access(read(0, 0x800 + line), 1000);
        EXPECT_NE(static_cast<int>(result.servedBy),
                  static_cast<int>(ServedBy::OtherGroup));
        EXPECT_GT(result.latency, 0u);
    }
}

TEST(HierarchyEdge, AccessCountsAreExact)
{
    Hierarchy h(smallParams(2));
    for (int i = 0; i < 123; ++i)
        h.access(read(0, static_cast<Addr>(i)), i);
    for (int i = 0; i < 45; ++i)
        h.access(write(1, static_cast<Addr>(i)), i);
    EXPECT_EQ(h.coreStats(0).accesses, 123u);
    EXPECT_EQ(h.coreStats(1).accesses, 45u);
    // Every access is accounted to exactly one service level.
    const CoreStats &s = h.coreStats(0);
    EXPECT_EQ(s.l1Hits + s.l2LocalHits + s.l2RemoteHits +
                  s.l3LocalHits + s.l3RemoteHits +
                  s.otherGroupTransfers + s.memAccesses,
              s.accesses);
}

TEST(HierarchyEdge, ResetCoreStatsZeroesCounters)
{
    Hierarchy h(smallParams(2));
    h.access(read(0, 1), 0);
    h.resetCoreStats();
    EXPECT_EQ(h.coreStats(0).accesses, 0u);
    EXPECT_EQ(h.coreStats(0).memAccesses, 0u);
}

} // namespace
} // namespace morphcache

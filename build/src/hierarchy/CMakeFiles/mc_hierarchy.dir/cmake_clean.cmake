file(REMOVE_RECURSE
  "CMakeFiles/mc_hierarchy.dir/cache_level.cc.o"
  "CMakeFiles/mc_hierarchy.dir/cache_level.cc.o.d"
  "CMakeFiles/mc_hierarchy.dir/hierarchy.cc.o"
  "CMakeFiles/mc_hierarchy.dir/hierarchy.cc.o.d"
  "CMakeFiles/mc_hierarchy.dir/topology.cc.o"
  "CMakeFiles/mc_hierarchy.dir/topology.cc.o.d"
  "libmc_hierarchy.a"
  "libmc_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sec55_extensions.
# This may be replaced when dependencies are built.

#include "common/serial.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace morphcache {

namespace {

/**
 * fsync gate: durability is on unless MC_NO_FSYNC is set in the
 * environment (the test-suite escape hatch — thousands of tiny
 * checkpoint writes do not need to survive a power cut). Read once;
 * the gate cannot change mid-process.
 */
bool
fsyncConfigured()
{
    const char *env = std::getenv("MC_NO_FSYNC");
    return env == nullptr || *env == '\0' || *env == '0';
}

std::atomic<std::uint64_t> &
fsyncCounter()
{
    static std::atomic<std::uint64_t> count{0};
    return count;
}

/**
 * Durably persist the rename that published `path`: fsync its
 * containing directory, without which a power loss can forget the
 * directory entry even though the file's blocks reached the disk.
 */
void
fsyncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                          O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        throw CkptError("'" + dir + "': cannot open directory for "
                        "fsync: " + std::strerror(errno));
    }
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    if (!ok) {
        throw CkptError("'" + dir + "': directory fsync failed: " +
                        std::strerror(errno));
    }
    fsyncCounter().fetch_add(1, std::memory_order_relaxed);
}

} // namespace

bool
fsyncEnabled()
{
    static const bool enabled = fsyncConfigured();
    return enabled;
}

std::uint64_t
fsyncCount()
{
    return fsyncCounter().load(std::memory_order_relaxed);
}

int
fsyncFile(std::FILE *file)
{
    if (std::fflush(file) != 0)
        return -1;
    if (!fsyncEnabled())
        return 0;
    const int result = ::fsync(::fileno(file));
    if (result == 0)
        fsyncCounter().fetch_add(1, std::memory_order_relaxed);
    return result;
}

void
atomicWriteFile(const std::string &path, const void *data,
                std::size_t size)
{
    // The pid suffix keeps concurrent writer *processes* (campaign
    // workers renewing leases, rewriting results) off each other's
    // scratch files, and the sequence keeps concurrent *threads*
    // apart — two claim threads of one worker can legitimately race
    // to checkpoint the same cell after a stalled heartbeat let a
    // sibling steal it. The rename is what serializes them.
    static std::atomic<std::uint64_t> seq{0};
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(seq.fetch_add(1));
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file)
        throw CkptError("'" + tmp + "': cannot open for writing: " +
                        std::strerror(errno));
    bool ok = size == 0 || std::fwrite(data, 1, size, file) == size;
    // fsync before rename: without it a crash after the rename can
    // publish an empty or torn file under the final name, which
    // torn-line tolerance downstream would then silently skip.
    ok = fsyncFile(file) == 0 && ok;
    ok = std::fclose(file) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        throw CkptError("'" + tmp + "': short write: " +
                        std::strerror(errno));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw CkptError("'" + tmp + "': cannot rename to '" + path +
                        "': " + std::strerror(errno));
    }
    if (fsyncEnabled())
        fsyncParentDir(path);
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        throw CkptError("'" + path + "': cannot open: " +
                        std::strerror(errno));
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[65536];
    std::size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + got);
    const bool readError = std::ferror(file) != 0;
    std::fclose(file);
    if (readError)
        throw CkptError("'" + path + "': read error: " +
                        std::strerror(errno));
    return bytes;
}

} // namespace morphcache

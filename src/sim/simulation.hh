/**
 * @file
 * Epoch-driven simulation: drives a Workload through a
 * MemorySystem with the analytical core model, collecting the
 * metrics every figure in the paper is built from.
 */

#ifndef MORPHCACHE_SIM_SIMULATION_HH
#define MORPHCACHE_SIM_SIMULATION_HH

#include <cstdint>
#include <vector>

#include "common/serial.hh"
#include "sim/core_model.hh"
#include "sim/memory_system.hh"
#include "workload/generator.hh"

namespace morphcache {

class StatsRegistry;
class Tracer;

/** Metrics of one recorded epoch. */
struct EpochMetrics
{
    /** Per-core IPC over the epoch. */
    std::vector<double> ipc;
    /** Sum of per-core IPCs (the paper's throughput). */
    double throughput = 0.0;
    /** Per-core misses to memory during the epoch. */
    std::vector<std::uint64_t> misses;
};

/** Metrics of a full run. */
struct RunResult
{
    std::vector<EpochMetrics> epochs;
    /** Per-core IPC over all recorded epochs. */
    std::vector<double> avgIpc;
    /** Average throughput across recorded epochs. */
    double avgThroughput = 0.0;
    /**
     * Multithreaded performance: total instructions over the
     * slowest core's cycles (inverse execution time, Section 5.2).
     */
    double performance = 0.0;
};

/** Simulation configuration. */
struct SimParams
{
    CoreModelParams core;
    /** References each core issues per epoch. */
    std::uint64_t refsPerEpochPerCore = 24000;
    /** Recorded epochs. */
    std::uint32_t epochs = 20;
    /** Unrecorded cache-warmup epochs. */
    std::uint32_t warmupEpochs = 2;
};

/**
 * Drives one workload through one memory system.
 */
class Simulation
{
  public:
    /**
     * @param system Memory system under test (not owned).
     * @param workload Reference streams (not owned).
     * @param params Run parameters.
     */
    Simulation(MemorySystem &system, Workload &workload,
               const SimParams &params);

    /** Run warmup + recorded epochs and aggregate. */
    RunResult run();

    /**
     * Advance the run by exactly one epoch (warmup or recorded).
     * `run()` is `while (!done()) stepEpoch();` + `finish()`; the
     * checkpointing CLI drives the same loop itself so it can
     * serialize state and poll signals between epochs. No-op once
     * done().
     */
    void stepEpoch();

    /** Have all warmup + recorded epochs run? */
    bool done() const;

    /** Aggregate the recorded epochs into a RunResult. */
    RunResult finish() const;

    /** Recorded epochs completed so far. */
    std::uint64_t recordedEpochs() const { return recordedCount_; }

    /** Id the next epoch (warmup or recorded) will get. */
    EpochId nextEpoch() const { return nextEpoch_; }

    /**
     * Serialize/restore run progress: core clocks, epoch cursor,
     * post-warmup baselines, and the recorded per-epoch metrics.
     * The attached system/workload/registry are serialized by their
     * owners; restore must rebuild this Simulation over identically
     * configured ones.
     */
    void saveState(CkptWriter &w) const;
    void loadState(CkptReader &r);

    /**
     * Run a single epoch (after beginEpoch on the workload) and
     * return its metrics. Exposed for the step-by-step harnesses.
     */
    EpochMetrics runEpoch(EpochId epoch);

    /**
     * Attach a tracer (not owned; nullptr detaches). The simulation
     * stamps the epoch id and simulated time into it, forwards it
     * to the system, and emits one "epoch" event per epoch with the
     * throughput and total misses.
     */
    void setTracer(Tracer *tracer);

    /**
     * Attach a stats registry (not owned). The simulation snapshots
     * it at the end of every *recorded* epoch, so per-epoch CSV
     * rows line up with RunResult::epochs.
     */
    void setRegistry(StatsRegistry *registry) { registry_ = registry; }

  private:
    /** Stamp warmup complete and capture the metric baselines. */
    void markWarmupDone();

    /**
     * runEpoch() into caller-provided storage. `metrics` arrives
     * with its per-core vectors already sized (the ctor pre-sizes
     * every slot of recorded_ and the warmup scratch), so one epoch
     * touches the heap zero times in steady state.
     */
    void runEpochInto(EpochId epoch, EpochMetrics &metrics);

    // MemorySystem and Workload have their own saveState; the run
    // driver checkpoints each component separately.
    MemorySystem &system_; // ckpt: transient(wiring; see above)
    Workload &workload_; // ckpt: transient(wiring; see system_)
    SimParams params_;   // ckpt: derived(Simulation)
    /** Per-core cycle clocks (fractional accumulation). */
    std::vector<double> cycles_;
    /** Per-core retired instructions. */
    std::vector<double> instrs_;
    EpochId nextEpoch_ = 0;
    /** Warmup finished and baselines captured. */
    bool warmupDone_ = false;
    /** Core clocks at the end of warmup (finish() deltas). */
    std::vector<double> baselineCycles_;
    /** Retired instructions at the end of warmup. */
    std::vector<double> baselineInstrs_;
    /**
     * Metrics of the recorded epochs: sized to params_.epochs at
     * construction with every slot's vectors pre-sized, filled in
     * place through the recordedCount_ cursor. Serialization writes
     * only the first recordedCount_ slots, so the checkpoint byte
     * stream is identical to the old grow-on-push encoding.
     */
    std::vector<EpochMetrics> recorded_;
    /** Recorded epochs completed (valid prefix of recorded_). */
    std::uint64_t recordedCount_ = 0;
    /** Per-epoch start-of-epoch baselines (reused scratch,
     *  recaptured at the top of every runEpochInto call). */
    std::vector<double> epochCycles0_;   // ckpt: transient(scratch)
    std::vector<double> epochInstrs0_;   // ckpt: transient(scratch)
    std::vector<std::uint64_t> epochMisses0_; // ckpt: transient(scratch)
    /** Metrics sink for warmup epochs (measured, discarded). */
    EpochMetrics warmupScratch_; // ckpt: transient(scratch)
    /** Decision-provenance tracer (not owned; null = disabled). */
    Tracer *tracer_ = nullptr; // ckpt: transient(wiring; reattached by owner)
    /** Per-epoch snapshot target (not owned; null = disabled). */
    StatsRegistry *registry_ = nullptr; // ckpt: transient(wiring; reattached by owner)
};

/**
 * Core-model epoch driver over any object with
 * `AccessResult access(const MemAccess&, Cycle)` — used directly by
 * the ideal offline scheme, which drives bare Hierarchy objects
 * restored from checkpoints.
 *
 * Cores are interleaved reference-by-reference in round-robin
 * order, which approximates concurrent execution closely enough
 * for the shared-state interactions that matter here (bus
 * busy-until tracking and shared-cache contention).
 */
template <typename System>
void
runEpochAccesses(System &system, Workload &workload,
                 const CoreModelParams &core_params,
                 std::uint64_t refs_per_core,
                 std::vector<double> &cycles,
                 std::vector<double> &instrs)
{
    const std::uint32_t cores = workload.numCores();
    for (std::uint64_t r = 0; r < refs_per_core; ++r) {
        for (std::uint32_t c = 0; c < cores; ++c) {
            const MemAccess access =
                workload.next(static_cast<CoreId>(c));
            const AccessResult result = system.access(
                access, static_cast<Cycle>(cycles[c]));
            cycles[c] += core_params.cyclesForAccess(result.latency);
            instrs[c] += core_params.instrPerAccess;
        }
    }
}

} // namespace morphcache

#endif // MORPHCACHE_SIM_SIMULATION_HH

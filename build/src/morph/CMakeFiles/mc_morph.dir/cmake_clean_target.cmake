file(REMOVE_RECURSE
  "libmc_morph.a"
)

/**
 * @file
 * mc_iofuzz — seeded filesystem-fault sweeps over the durability
 * primitives.
 *
 * For each scenario the harness swaps a FaultyVfs over the process
 * vfs, runs one durable-I/O workload under a seeded fault schedule
 * (random ENOSPC/EIO/ESTALE/short-write/fsync faults; odd seeds add
 * a crash point that tears one operation and kills everything
 * after), swaps the real vfs back, and checks the recovery
 * invariant the tree promises:
 *
 *   ckpt      atomicWriteFileWithRotation: the destination or its
 *             .prev holds complete old or complete new bytes —
 *             never a prefix, never a mix — and a clean rewrite
 *             afterwards always recovers.
 *   manifest  ManifestLog::appendCell: the fold never throws, never
 *             sees a fabricated event, and never loses an append
 *             that reported success.
 *   lease     tryClaimCell/renewLease/releaseLease: failures are
 *             typed LeaseErrors, at most one worker holds a cell,
 *             and the published lease file always parses.
 *   sink      JsonlTraceSink: bytes on disk are always a prefix of
 *             the uninterrupted reference stream, and the tracked
 *             byteOffset equals the file size exactly.
 *   campaign  runCampaign under faults, then resumed clean: the
 *             final report bytes equal an uninterrupted run's.
 *
 * Every failure prints the exact replay command. Seeds are plain
 * indices: `mc_iofuzz --scenario ckpt --seed 173` reruns schedule
 * 173 of the ckpt scenario, nothing else.
 */

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/serial.hh"
#include "io/faulty_vfs.hh"
#include "io/vfs.hh"
#include "runner/campaign.hh"
#include "runner/lease.hh"
#include "runner/manifest.hh"
#include "stats/tracing.hh"

using namespace morphcache;

namespace {

struct Options
{
    std::string scenario = "all";
    std::string dir;
    // Per-scenario schedule counts; ~2160 total by default so the
    // acceptance bar (>= 2000 schedules, crash mode included) is
    // the default run, not a special invocation.
    std::uint64_t ckptSeeds = 800;
    std::uint64_t manifestSeeds = 600;
    std::uint64_t leaseSeeds = 400;
    std::uint64_t sinkSeeds = 300;
    std::uint64_t campaignSeeds = 60;
    /** Replay exactly one schedule (index) when >= 0. */
    long long replaySeed = -1;
    bool verbose = false;
};

/**
 * Thousands of schedules provoke thousands of legitimate
 * torn-tail / retry warnings; keep them out of the sweep output
 * unless --verbose asks for them. panic/fatal always print.
 */
class MuteSink final : public LogSink
{
  public:
    void
    message(const char *kind, const char *text) override
    {
        if (std::strcmp(kind, "warn") == 0 ||
            std::strcmp(kind, "info") == 0 ||
            std::strcmp(kind, "verbose") == 0) {
            return;
        }
        logToStderr(kind, text);
    }
};

/** Schedule derivation: a pure function of (scenario, index). Odd
 * indices run crash-point mode — the torn-at-any-syscall leg. */
FaultPlan
planFor(std::uint64_t scenario_salt, std::uint64_t idx)
{
    std::uint64_t s = scenario_salt * 0x9e3779b97f4a7c15ULL + idx;
    FaultPlan plan;
    plan.seed = splitMix64(s);
    plan.faultPermille =
        static_cast<std::uint32_t>(40 + splitMix64(s) % 260);
    plan.transientPermille =
        static_cast<std::uint32_t>(splitMix64(s) % 1001);
    if (idx % 2 == 1)
        plan.crashAtOp = 1 + splitMix64(s) % 64;
    return plan;
}

std::string
fileText(const std::string &path)
{
    const std::vector<std::uint8_t> raw = readFileBytes(path);
    return std::string(raw.begin(), raw.end());
}

void
writeText(const std::string &path, const std::string &text)
{
    vfsWriteWholeFile(path, text.data(), text.size(),
                      /*want_fsync=*/false);
}

void
reportFailure(const char *scenario, std::uint64_t idx,
              const std::string &what)
{
    std::fprintf(stderr,
                 "FAIL %s schedule %llu: %s\n"
                 "  replay: mc_iofuzz --scenario %s --seed %llu\n",
                 scenario, static_cast<unsigned long long>(idx),
                 what.c_str(), scenario,
                 static_cast<unsigned long long>(idx));
}

// ---------------------------------------------------------------
// ckpt: rotation + atomic write is complete-old-or-complete-new
// ---------------------------------------------------------------

bool
runCkptSchedule(const Options &opts, std::uint64_t idx)
{
    const std::string path = opts.dir + "/ckpt.bin";
    const std::string prev = path + ".prev";
    const std::string before = "OLD generation, complete bytes";
    const std::string after =
        "NEW generation, longer so a torn rename or short write "
        "cannot masquerade as either complete state";

    vfs().unlinkPath(path);
    vfs().unlinkPath(prev);
    writeText(path, before);

    FaultyVfs faulty(vfs(), planFor(1, idx));
    {
        ScopedVfs swap(&faulty);
        // Up to three rewrites per schedule: the rotation chain
        // (path -> .prev -> gone) gets churned, not just touched.
        for (int round = 0; round < 3; ++round) {
            try {
                atomicWriteFileWithRotation(path, after.data(),
                                            after.size());
            } catch (const IoError &) {
                break; // quarantined; recovery checked below
            }
        }
    }

    // Recovery view, real vfs: complete-old or complete-new.
    if (vfs().existsPath(path)) {
        const std::string text = fileText(path);
        if (text != before && text != after) {
            reportFailure("ckpt", idx,
                          "primary holds torn bytes: '" + text +
                              "'");
            return false;
        }
    } else if (!vfs().existsPath(prev)) {
        reportFailure("ckpt", idx, "both generations lost");
        return false;
    }
    if (vfs().existsPath(prev)) {
        const std::string text = fileText(prev);
        if (text != before && text != after) {
            reportFailure("ckpt", idx,
                          ".prev holds torn bytes: '" + text + "'");
            return false;
        }
    }

    // Recovery replay: once the medium heals, a clean rewrite must
    // land regardless of what the faulty history left behind.
    atomicWriteFileWithRotation(path, after.data(), after.size());
    if (fileText(path) != after) {
        reportFailure("ckpt", idx, "clean rewrite did not recover");
        return false;
    }
    return true;
}

// ---------------------------------------------------------------
// manifest: fold never fabricates, never loses a reported success
// ---------------------------------------------------------------

bool
runManifestSchedule(const Options &opts, std::uint64_t idx)
{
    const std::size_t cells = 3;
    const std::uint64_t hash = 0x6d63696f66757aULL;
    const std::string path = opts.dir + "/manifest.jsonl";
    vfs().unlinkPath(path);
    {
        std::string doc = manifestHeaderLine(cells, hash);
        for (std::size_t i = 0; i < cells; ++i) {
            doc += "{\"type\":\"cell\",\"index\":" +
                   std::to_string(i) +
                   ",\"status\":\"pending\",\"attempts\":0}\n";
        }
        writeText(path, doc);
    }

    // A deterministic event script; each entry is (cell, status,
    // attempts). lastOk[i] = script position of the last append
    // that *reported success* for cell i.
    struct Ev
    {
        std::size_t cell;
        const char *status;
        std::uint64_t tries;
    };
    std::vector<Ev> script;
    std::uint64_t s = idx + 101;
    for (int k = 0; k < 12; ++k) {
        static const char *const kStatuses[3] = {"running",
                                                "failed", "done"};
        script.push_back(Ev{
            static_cast<std::size_t>(splitMix64(s) % cells),
            kStatuses[splitMix64(s) % 3], splitMix64(s) % 5});
    }

    std::vector<long long> lastOk(cells, -1);
    FaultyVfs faulty(vfs(), planFor(2, idx));
    {
        ScopedVfs swap(&faulty);
        ManifestLog log(path);
        log.setWorker("iofuzz");
        for (std::size_t k = 0; k < script.size(); ++k) {
            try {
                log.appendCell(script[k].cell, script[k].status,
                               script[k].tries);
                lastOk[script[k].cell] =
                    static_cast<long long>(k);
            } catch (const IoError &) {
                // Quarantined append; the record may or may not
                // have landed — both are legal, fabrication isn't.
            }
        }
    }

    std::vector<CellProgress> progress;
    try {
        progress = foldManifest(path, cells, hash);
    } catch (const CkptError &err) {
        reportFailure("manifest", idx,
                      std::string("fold threw: ") + err.what());
        return false;
    }
    for (std::size_t i = 0; i < cells; ++i) {
        // The observed state must be a script event for this cell
        // (or the initial pending line) at a position not before
        // the last reported success — an append that reported
        // success can never be lost, and nothing can appear that
        // was never appended.
        long long seen = -1;
        if (progress[i].status != "pending" ||
            progress[i].attempts != 0) {
            for (std::size_t k = 0; k < script.size(); ++k) {
                if (script[k].cell == i &&
                    script[k].status == progress[i].status &&
                    script[k].tries == progress[i].attempts) {
                    seen = static_cast<long long>(k);
                }
            }
            if (seen < 0) {
                reportFailure(
                    "manifest", idx,
                    "cell " + std::to_string(i) +
                        " shows fabricated event " +
                        progress[i].status + "/" +
                        std::to_string(progress[i].attempts));
                return false;
            }
        }
        if (seen < lastOk[i]) {
            reportFailure(
                "manifest", idx,
                "cell " + std::to_string(i) +
                    " lost an append that reported success");
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------
// lease: typed failures, single ownership, parseable files
// ---------------------------------------------------------------

bool
runLeaseSchedule(const Options &opts, std::uint64_t idx)
{
    const std::string dir = opts.dir;
    vfs().unlinkPath(cellLeasePath(dir, 0));
    vfs().unlinkPath(cellResultPath(dir, 0));

    FaultyVfs faulty(vfs(), planFor(3, idx));
    LeaseInfo a, b;
    bool holds_a = false, holds_b = false;
    {
        ScopedVfs swap(&faulty);
        std::uint64_t s = idx + 7;
        for (int k = 0; k < 10; ++k) {
            const bool use_a = splitMix64(s) % 2 == 0;
            LeaseInfo &mine = use_a ? a : b;
            bool &holds = use_a ? holds_a : holds_b;
            const char *id = use_a ? "fuzz-a:1" : "fuzz-b:2";
            try {
                switch (splitMix64(s) % 3) {
                  case 0:
                    if (!holds) {
                        holds = tryClaimCell(dir, 0, id, 3600.0,
                                             mine) ==
                                LeaseClaim::Claimed;
                    }
                    break;
                  case 1:
                    if (holds)
                        holds = renewLease(dir, mine, 3600.0);
                    break;
                  default:
                    if (holds) {
                        releaseLease(dir, mine);
                        holds = false;
                    }
                    break;
                }
            } catch (const LeaseError &) {
                // Typed, expected; claims that died mid-protocol
                // just aren't held.
                holds = false;
            }
        }
    }

    // Real-vfs ground truth: at most one worker's (worker,
    // generation) can match the file, and whatever was published
    // must parse — the link/rename protocol never publishes a torn
    // scratch.
    LeaseInfo current;
    const LeaseRead state =
        readLease(cellLeasePath(dir, 0), current);
    if (state == LeaseRead::Corrupt) {
        reportFailure("lease", idx,
                      "published lease file does not parse");
        return false;
    }
    const bool mine_a = holds_a && state == LeaseRead::Valid &&
                        current.worker == a.worker &&
                        current.generation == a.generation;
    const bool mine_b = holds_b && state == LeaseRead::Valid &&
                        current.worker == b.worker &&
                        current.generation == b.generation;
    if (mine_a && mine_b) {
        reportFailure("lease", idx,
                      "two workers both hold the cell");
        return false;
    }
    vfs().unlinkPath(cellLeasePath(dir, 0));
    return true;
}

// ---------------------------------------------------------------
// sink: on-disk bytes are a prefix of the reference stream
// ---------------------------------------------------------------

bool
runSinkSchedule(const Options &opts, std::uint64_t idx)
{
    const std::string path = opts.dir + "/trace.jsonl";
    const std::string ref_path = opts.dir + "/trace_ref.jsonl";

    auto emitAll = [](JsonlTraceSink &sink) {
        Tracer tracer(&sink);
        for (int k = 0; k < 8; ++k) {
            tracer.setEpoch(static_cast<std::uint64_t>(k));
            TraceEvent ev(k % 2 == 0 ? "epoch" : "merge");
            ev.u64("cond", static_cast<std::uint64_t>(k));
            tracer.emit(ev);
        }
    };

    // Uninterrupted reference bytes.
    vfs().unlinkPath(ref_path);
    {
        JsonlTraceSink sink(ref_path);
        emitAll(sink);
        sink.finish();
    }
    const std::string reference = fileText(ref_path);

    vfs().unlinkPath(path);
    FaultyVfs faulty(vfs(), planFor(4, idx));
    std::uint64_t tracked = 0;
    bool opened = false;
    {
        ScopedVfs swap(&faulty);
        try {
            JsonlTraceSink sink(path);
            opened = true;
            try {
                emitAll(sink);
            } catch (const IoError &) {
                // quarantined mid-stream
            }
            tracked = sink.byteOffset();
            try {
                sink.finish();
            } catch (const IoError &) {
            }
        } catch (const IoError &) {
            // open failed; nothing on disk to check
        }
    }
    if (!opened)
        return true;

    const std::string text = fileText(path);
    // The tracked offset may lag the file (a crash point lands a
    // torn prefix the failed write cannot report) but must never
    // point past it: checkpoints store this value and resume
    // truncates back to it, so running ahead of the disk would
    // tear the resumed stream.
    if (tracked > text.size()) {
        reportFailure(
            "sink", idx,
            "tracked offset " + std::to_string(tracked) +
                " runs past file size " +
                std::to_string(text.size()));
        return false;
    }
    if (reference.compare(0, text.size(), text) != 0) {
        reportFailure("sink", idx,
                      "file is not a prefix of the reference "
                      "stream");
        return false;
    }
    return true;
}

// ---------------------------------------------------------------
// campaign: fault run + clean resume == uninterrupted reference
// ---------------------------------------------------------------

CampaignPlan
fuzzCampaignPlan()
{
    CampaignPlan plan;
    plan.base.workload = "mix:1"; // replaced per cell
    plan.base.scheme = "morph";
    plan.base.cores = 16;
    plan.base.epochs = 4;
    plan.base.refs = 2000;
    plan.base.seed = 11;
    plan.mixLo = 1;
    plan.mixHi = 2;
    plan.sweepSeeds = 1;
    return plan;
}

void
removeCampaignState(const std::string &manifest, std::size_t cells)
{
    vfs().unlinkPath(manifest);
    const std::string dir = campaignStateDir(manifest);
    for (std::size_t i = 0; i < cells; ++i) {
        vfs().unlinkPath(cellCkptPath(dir, i));
        vfs().unlinkPath(cellCkptPath(dir, i) + ".prev");
        vfs().unlinkPath(cellResultPath(dir, i));
        vfs().unlinkPath(cellLeasePath(dir, i));
    }
}

bool
runCampaignSchedule(const Options &opts, std::uint64_t idx,
                    const std::string &reference)
{
    const CampaignPlan plan = fuzzCampaignPlan();
    const std::vector<CampaignCell> cells = plan.cells();
    CampaignOptions copts;
    copts.manifestPath = opts.dir + "/campaign.jsonl";
    copts.jobs = 1;
    copts.ckptEvery = 2;
    // A budget injected faults cannot exhaust: the random schedule
    // is capped below, so no cell ever commits a terminal FAILED
    // result for reasons the clean resume can't undo.
    copts.retryCells = 8;
    copts.wantStatsJson = true;
    removeCampaignState(copts.manifestPath, cells.size());

    FaultPlan fplan = planFor(5, idx);
    fplan.maxFaults = 3;
    FaultyVfs faulty(vfs(), fplan);
    {
        ScopedVfs swap(&faulty);
        try {
            runCampaign(cells, copts);
        } catch (const SimError &) {
            // Typed infrastructure failure: the campaign is
            // quarantined, state on disk must still resume.
        }
    }

    // Clean resume (or fresh start if the faults struck before the
    // manifest could be initialized).
    copts.resume = vfs().existsPath(copts.manifestPath);
    CampaignReport report;
    try {
        report = runCampaign(cells, copts);
    } catch (const SimError &err) {
        reportFailure("campaign", idx,
                      std::string("clean resume threw: ") +
                          err.what());
        return false;
    }
    if (report.reportText != reference) {
        reportFailure("campaign", idx,
                      "resumed report diverges from the "
                      "uninterrupted reference");
        if (opts.verbose) {
            std::fprintf(stderr, "--- reference\n%s--- resumed\n%s",
                         reference.c_str(),
                         report.reportText.c_str());
        }
        return false;
    }
    removeCampaignState(copts.manifestPath, cells.size());
    return true;
}

// ---------------------------------------------------------------
// Driver
// ---------------------------------------------------------------

bool
wantScenario(const Options &opts, const char *name)
{
    return opts.scenario == "all" || opts.scenario == name;
}

template <typename Fn>
bool
sweep(const Options &opts, const char *name, std::uint64_t n,
      Fn &&one)
{
    std::uint64_t from = 0, to = n;
    if (opts.replaySeed >= 0) {
        from = static_cast<std::uint64_t>(opts.replaySeed);
        to = from + 1;
    }
    std::uint64_t failures = 0;
    for (std::uint64_t idx = from; idx < to; ++idx) {
        if (!one(idx))
            ++failures;
    }
    std::printf("%-8s %6llu schedules, %llu failures\n", name,
                static_cast<unsigned long long>(to - from),
                static_cast<unsigned long long>(failures));
    return failures == 0;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--scenario all|ckpt|manifest|lease|sink|"
        "campaign]\n"
        "          [--seeds N] [--seed IDX] [--dir PATH] "
        "[--verbose]\n"
        "\n"
        "Sweeps seeded filesystem-fault schedules (odd indices run\n"
        "crash-point mode) over the durability primitives and\n"
        "checks the complete-old-or-complete-new recovery\n"
        "contract. --seed replays one schedule of one scenario.\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    // Fault coverage of fsync sites comes from the injector, which
    // sits above the MC_NO_FSYNC gate — so the sweep itself runs
    // with real fsyncs off unless the caller insists otherwise.
    ::setenv("MC_NO_FSYNC", "1", /*overwrite=*/0);

    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scenario") {
            opts.scenario = value();
        } else if (arg == "--seeds") {
            const std::uint64_t n = std::strtoull(value(), nullptr, 10);
            opts.ckptSeeds = n;
            opts.manifestSeeds = n;
            opts.leaseSeeds = n;
            opts.sinkSeeds = n;
            opts.campaignSeeds = n;
        } else if (arg == "--seed") {
            opts.replaySeed = std::strtoll(value(), nullptr, 10);
        } else if (arg == "--dir") {
            opts.dir = value();
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else {
            return usage(argv[0]);
        }
    }
    static MuteSink mute;
    if (!opts.verbose)
        setLogSink(&mute);
    if (opts.replaySeed >= 0 && opts.scenario == "all") {
        std::fprintf(stderr,
                     "--seed replays one scenario; pass "
                     "--scenario too\n");
        return 2;
    }
    if (opts.dir.empty()) {
        opts.dir = "/tmp/mc_iofuzz." +
                   std::to_string(static_cast<long>(::getpid()));
    }
    if (::mkdir(opts.dir.c_str(), 0777) != 0 && errno != EEXIST) {
        std::fprintf(stderr, "cannot create workdir '%s': %s\n",
                     opts.dir.c_str(), std::strerror(errno));
        return 2;
    }

    bool ok = true;
    if (wantScenario(opts, "ckpt")) {
        ok &= sweep(opts, "ckpt", opts.ckptSeeds,
                    [&](std::uint64_t idx) {
                        return runCkptSchedule(opts, idx);
                    });
    }
    if (wantScenario(opts, "manifest")) {
        ok &= sweep(opts, "manifest", opts.manifestSeeds,
                    [&](std::uint64_t idx) {
                        return runManifestSchedule(opts, idx);
                    });
    }
    if (wantScenario(opts, "lease")) {
        ok &= sweep(opts, "lease", opts.leaseSeeds,
                    [&](std::uint64_t idx) {
                        return runLeaseSchedule(opts, idx);
                    });
    }
    if (wantScenario(opts, "sink")) {
        ok &= sweep(opts, "sink", opts.sinkSeeds,
                    [&](std::uint64_t idx) {
                        return runSinkSchedule(opts, idx);
                    });
    }
    if (wantScenario(opts, "campaign")) {
        // One uninterrupted reference run, reused by every
        // schedule's diff.
        const CampaignPlan plan = fuzzCampaignPlan();
        CampaignOptions ref;
        ref.manifestPath = opts.dir + "/campaign_ref.jsonl";
        ref.jobs = 1;
        ref.ckptEvery = 2;
        ref.wantStatsJson = true;
        removeCampaignState(ref.manifestPath, plan.cells().size());
        const std::string reference =
            runCampaign(plan.cells(), ref).reportText;
        removeCampaignState(ref.manifestPath, plan.cells().size());
        ok &= sweep(opts, "campaign", opts.campaignSeeds,
                    [&](std::uint64_t idx) {
                        return runCampaignSchedule(opts, idx,
                                                   reference);
                    });
    }

    if (!ok) {
        std::fprintf(stderr, "mc_iofuzz: FAILURES (replay commands "
                             "above)\n");
        return 1;
    }
    std::printf("mc_iofuzz: all schedules hold the recovery "
                "contract\n");
    return 0;
}

/**
 * @file
 * Figure 14 — weighted speedup (WS) and fair speedup (FS) of
 * MorphCache and the strongest static topologies, normalized to
 * the (16:1:1) baseline.
 *
 * Per-application speedups are IPC ratios against the baseline
 * run; WS is their arithmetic mean, FS their harmonic mean (Smith
 * [25]). Paper: MorphCache +32.8% WS over the baseline and +12.3%
 * over the best static on WS ((2:2:4)); +29.7% FS over the
 * baseline and +10.8% over the best static on FS ((4:4:1)).
 */

#include "common.hh"

#include "stats/metrics.hh"

using namespace morphcache;
using namespace morphcache::bench;

int
main()
{
    const HierarchyParams hier = experimentHierarchy(16);
    const GeneratorParams gen = generatorFor(hier);
    const SimParams sim = defaultSim();

    const Topology baseline_topo = Topology::symmetric(16, 16, 1, 1);
    // The paper singles out (2:2:4) as the best-WS static and
    // (4:4:1) as the best-FS static.
    const Topology ws_static = Topology::symmetric(16, 2, 2, 4);
    const Topology fs_static = Topology::symmetric(16, 4, 4, 1);

    std::printf("Figure 14: weighted/fair speedup vs (16:1:1)\n");
    std::printf("%-8s %12s %12s %12s %12s\n", "mix", "WS(2:2:4)",
                "WS(morph)", "FS(4:4:1)", "FS(morph)");

    struct Row
    {
        double ws1, ws2, fs1, fs2;
    };
    const auto rows = forEachMix(12, [&](int m) {
        char name[16];
        std::snprintf(name, sizeof(name), "MIX %02d", m);
        const MixSpec &mix = mixByName(name);

        const RunResult base = runStaticMix(
            mix, baseline_topo, hier, gen, sim, baseSeed() + m);
        const RunResult ws_run = runStaticMix(
            mix, ws_static, hier, gen, sim, baseSeed() + m);
        const RunResult fs_run = runStaticMix(
            mix, fs_static, hier, gen, sim, baseSeed() + m);
        const RunResult morph = runMorphMix(
            mix, hier, gen, sim, baseSeed() + m, MorphConfig{});

        return Row{weightedSpeedup(ws_run.avgIpc, base.avgIpc),
                   weightedSpeedup(morph.avgIpc, base.avgIpc),
                   fairSpeedup(fs_run.avgIpc, base.avgIpc),
                   fairSpeedup(morph.avgIpc, base.avgIpc)};
    });

    double ws_s = 0, ws_m = 0, fs_s = 0, fs_m = 0;
    for (int m = 1; m <= 12; ++m) {
        const Row &row = rows[m - 1];
        std::printf("MIX %02d   %12.3f %12.3f %12.3f %12.3f\n", m,
                    row.ws1, row.ws2, row.fs1, row.fs2);
        ws_s += row.ws1;
        ws_m += row.ws2;
        fs_s += row.fs1;
        fs_m += row.fs2;
    }
    std::printf("%-8s %12.3f %12.3f %12.3f %12.3f\n", "AVG",
                ws_s / 12, ws_m / 12, fs_s / 12, fs_m / 12);
    std::printf("\npaper: morph WS 1.328 (best static 1.183), morph "
                "FS 1.297 (best static 1.171)\n");
    return 0;
}

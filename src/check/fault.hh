/**
 * @file
 * Deterministic fault injection for the reconfiguration engine.
 *
 * Dynamic-reconfiguration literature treats soft errors in the
 * reconfiguration metadata as first-class failure modes: a flipped
 * bit in a footprint vector, a mis-latched classification outcome,
 * or a lost bus grant must degrade a run, not corrupt it. The
 * injector below produces exactly those faults, seed-driven and
 * bit-for-bit reproducible, so the invariant checker and the
 * controller's quarantine path (invariant.hh, morph/controller.hh)
 * are exercisable in tests and campaigns:
 *
 *  - ACFV soft errors: random bit flips in the footprint vectors of
 *    a level at each epoch boundary;
 *  - MSAT classification corruption: merge/split desirability
 *    outcomes inverted with a configured probability;
 *  - illegal topology proposals: a decided topology mutated into a
 *    guaranteed-illegal shape (duplicate slice, dropped slice, or
 *    inclusion straddle) — the faults only the checker can catch;
 *  - segmented-bus grant faults: dropped grants (full
 *    re-arbitration penalty) and delayed grants, injected through
 *    the BusFaultHook interface.
 */

#ifndef MORPHCACHE_CHECK_FAULT_HH
#define MORPHCACHE_CHECK_FAULT_HH

#include <cstdint>

#include "common/rng.hh"
#include "hierarchy/topology.hh"
#include "interconnect/segmented_bus.hh"

namespace morphcache {

class CacheLevelModel;

/** Fault-campaign configuration (everything off by default). */
struct FaultConfig
{
    /** Seed of the injector's dedicated PRNG streams. */
    std::uint64_t seed = 1;
    /**
     * ACFV bits flipped per reconfigurable level per epoch
     * boundary (soft errors in the footprint vectors).
     */
    std::uint32_t acfvFlipsPerEpoch = 0;
    /** Probability a classification outcome is inverted. */
    double classificationFlipChance = 0.0;
    /**
     * Probability per epoch decision that the proposed topology is
     * corrupted into an illegal shape.
     */
    double illegalTopologyChance = 0.0;
    /** Probability per bus grant of a dropped grant. */
    double busDropChance = 0.0;
    /** CPU-cycle penalty of a dropped grant (re-arbitration). */
    std::uint32_t busDropPenaltyCycles = 15;
    /** Probability per bus grant of a delayed grant. */
    double busDelayChance = 0.0;
    /** CPU cycles a delayed grant adds. */
    std::uint32_t busDelayCycles = 5;

    /** Any fault class active? */
    bool
    enabled() const
    {
        return acfvFlipsPerEpoch > 0 ||
               classificationFlipChance > 0.0 ||
               illegalTopologyChance > 0.0 || busDropChance > 0.0 ||
               busDelayChance > 0.0;
    }
};

/** Injection counters (printed by the robustness report). */
struct FaultStats
{
    std::uint64_t acfvBitFlips = 0;
    std::uint64_t classificationFlips = 0;
    std::uint64_t illegalTopologies = 0;
    std::uint64_t busDrops = 0;
    std::uint64_t busDelays = 0;
    /** Total CPU cycles of injected bus-grant latency. */
    std::uint64_t busFaultCycles = 0;

    /** Total discrete fault events injected. */
    std::uint64_t
    total() const
    {
        return acfvBitFlips + classificationFlips +
               illegalTopologies + busDrops + busDelays;
    }
};

/**
 * Seed-driven fault injector.
 *
 * Epoch-granularity faults (ACFV flips, classification flips,
 * topology corruption) and per-access bus faults draw from two
 * independent PRNG streams derived from the seed, so the epoch
 * fault sequence does not depend on how much bus traffic an epoch
 * carried — the property that makes campaigns reproducible across
 * timing-model changes.
 */
class FaultInjector : public BusFaultHook
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    /** Flip config.acfvFlipsPerEpoch random ACFV bits in `level`. */
    void injectAcfvFaults(CacheLevelModel &level);

    /** Should this classification outcome be inverted? */
    bool corruptClassification();

    /**
     * Maybe mutate `topology` into a guaranteed-illegal shape.
     * @return true when a corruption was injected.
     */
    bool corruptTopology(Topology &topology);

    /** BusFaultHook: injected grant delay for one transaction. */
    Cycle grantDelay(SliceId slice, Cycle now) override;

    const FaultStats &stats() const { return stats_; }
    const FaultConfig &config() const { return config_; }

    /** Serialize PRNG streams + counters (config is immutable). */
    void
    saveState(CkptWriter &w) const
    {
        epochRng_.saveState(w);
        busRng_.saveState(w);
        w.u64(stats_.acfvBitFlips);
        w.u64(stats_.classificationFlips);
        w.u64(stats_.illegalTopologies);
        w.u64(stats_.busDrops);
        w.u64(stats_.busDelays);
        w.u64(stats_.busFaultCycles);
    }

    void
    loadState(CkptReader &r)
    {
        epochRng_.loadState(r);
        busRng_.loadState(r);
        stats_.acfvBitFlips = r.u64();
        stats_.classificationFlips = r.u64();
        stats_.illegalTopologies = r.u64();
        stats_.busDrops = r.u64();
        stats_.busDelays = r.u64();
        stats_.busFaultCycles = r.u64();
    }

  private:
    FaultConfig config_; // ckpt: derived(FaultInjector)
    /** Epoch-granularity fault stream. */
    Rng epochRng_;
    /** Per-bus-grant fault stream. */
    Rng busRng_;
    FaultStats stats_;
};

} // namespace morphcache

#endif // MORPHCACHE_CHECK_FAULT_HH

/**
 * @file
 * The MorphCache reconfiguration controller (paper Section 2).
 *
 * At every epoch boundary the controller reads the ACFV bank of
 * both reconfigurable levels, classifies each sharing group as
 * highly- or under-utilized against the Merge/Split Aggressiveness
 * Threshold (MSAT), and rewrites the topology:
 *
 *  - merge two neighboring groups when one is highly utilized and
 *    the other under-utilized (capacity sharing), or when both are
 *    highly utilized, the workload shares one address space, and
 *    their footprints overlap (data sharing) — Section 2.2;
 *  - split a merged group when both halves run hot without sharing
 *    (destructive interference) — Section 2.3 / Figure 6;
 *  - honor inclusion: an L2 merge may force the covering L3 merge,
 *    and an L3 split requires the straddling L2 groups to split —
 *    Sections 2.2/2.3;
 *  - arbitrate split/merge conflicts by the merge-aggressive policy
 *    (default) or the split-aggressive alternative — Section 2.4;
 *  - optionally throttle the MSAT for QoS (Section 5.3) and relax
 *    the group-shape restrictions (Section 5.5).
 */

#ifndef MORPHCACHE_MORPH_CONTROLLER_HH
#define MORPHCACHE_MORPH_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/fault.hh"
#include "check/invariant.hh"
#include "hierarchy/hierarchy.hh"
#include "hierarchy/topology.hh"
#include "morph/proposal.hh"

namespace morphcache {

class StatsRegistry;
class Tracer;

/** Arbitration between conflicting split and merge opportunities. */
enum class ConflictPolicy : std::uint8_t {
    /** Default: prefer merging (Section 2.4). */
    MergeAggressive,
    /** Alternative policy compared in Section 5. */
    SplitAggressive,
};

/** Controller configuration. */
struct MorphConfig
{
    /** MSAT for the L2 level: the paper's (60, 30) on 128 bits. */
    MsatConfig msat;
    /**
     * MSAT for the L3 level. The paper tuned one (60, 30) pair "for
     * reasonable aggressiveness" against its estimator; in this
     * model the L3 estimate reads systematically lower than the L2
     * one (swept last-level working sets leave a thinner reuse
     * trail), so the same aggressiveness corresponds to a lower
     * threshold pair. The MSAT-sensitivity bench sweeps this.
     */
    MsatConfig msatL3{0.26, 0.20};
    ConflictPolicy conflict = ConflictPolicy::MergeAggressive;
    /**
     * Sharing-overlap threshold for condition (ii). The overlap
     * statistic is the *lift over chance* of the common ACFV 1s
     * (see CacheLevelModel::overlap); unrelated footprints read
     * near zero, address-space sharing reads 0.15-0.4 depending on
     * per-epoch coverage of the shared region.
     */
    double sharingOverlapThreshold = 0.12;
    /** Threads share one address space (multithreaded workload). */
    bool sharedAddressSpace = false;

    /**
     * Section 5.3: QoS-aware MSAT throttling. Enabled by default
     * in this reproduction: it is the mechanism that backs off
     * merges the miss counters prove harmful, and the sec53_qos
     * bench isolates its effect.
     */
    bool qosThrottling = true;
    /** MSAT adjustment per throttle step. */
    double qosStep = 0.05;
    /** Per-core miss increase tolerated before throttling up. */
    double qosMissTolerance = 0.05;
    /** Throttle clamps. */
    double msatHighMax = 0.95;
    double msatHighMin = 0.40;
    double msatLowMax = 0.45;
    double msatLowMin = 0.05;

    /**
     * Merge-aggressive hysteresis in the thresholds themselves: a
     * group only splits when both halves exceed high * this
     * factor. With the factor at 1, any pair of mid-hot halves
     * dissolves immediately and capacity sharing never persists;
     * the paper's merge-aggressive default "favors a merge"
     * whenever the two interpretations conflict (Section 2.4).
     */
    double splitHighFactor = 1.3;

    /**
     * Condition-(i) churn guard: the under-utilized merge partner
     * must have filled less than this multiple of its capacity
     * during the epoch, or its "spare" space is a stream conveyor
     * rather than usable capacity. Uses the per-slice miss
     * registers the Section 5.3 QoS hardware already provides.
     */
    double coldChurnLimit = 6.0;

    /**
     * Hysteresis: a group formed by a merge may only be split
     * again after this many epoch decisions. Damps merge/split
     * oscillation when a footprint sits near a threshold.
     */
    std::uint32_t minEpochsBeforeSplit = 2;

    /**
     * Section 5.5 extension: allow merged groups whose size is not
     * a power of two (still neighbors-only).
     */
    bool allowArbitraryGroupSizes = false;
    /**
     * Section 5.5 extension: allow merging non-adjacent groups;
     * they ride the physical segment spanning everything between
     * them and pay the corresponding latency stretch.
     */
    bool allowNonNeighborGroups = false;

    /**
     * Runtime invariant checking (src/check): validate partition
     * validity, group shapes, inclusiveness, and line conservation
     * at every epoch decision and reconfiguration. Off preserves
     * the historical unchecked behaviour; Log detects, counts, and
     * drops offending proposals; Recover additionally quarantines
     * the hierarchy to the all-private topology; Abort panics for
     * debugging.
     */
    CheckPolicy checkPolicy = CheckPolicy::Off;

    /**
     * Recover policy: clean epochs the hierarchy must survive in
     * quarantine before adaptation re-enters.
     */
    std::uint32_t quarantineCleanEpochs = 4;

    /**
     * Fault-injection campaign (src/check). When any fault class
     * is enabled the controller owns a seed-driven FaultInjector
     * and exposes it for bus-hook wiring.
     */
    FaultConfig faults;
};

/** Reconfiguration activity counters (Section 2.4). */
struct ReconfigStats
{
    std::uint64_t merges = 0;
    std::uint64_t splits = 0;
    /** Merges justified by condition (i): capacity sharing. */
    std::uint64_t mergesCondI = 0;
    /** Merges justified by condition (ii): data sharing. */
    std::uint64_t mergesCondII = 0;
    /** L3 merges forced structurally by an L2 merge (inclusion). */
    std::uint64_t mergesForced = 0;
    /** L2 splits forced structurally by an L3 split (inclusion). */
    std::uint64_t splitsForced = 0;
    /** Epochs on which at least one change was applied. */
    std::uint64_t activeEpochs = 0;
    /** Epoch decisions taken (all epoch boundaries seen). */
    std::uint64_t decisions = 0;
    /**
     * Merge/split events whose resulting topology was asymmetric
     * (not expressible as (x:y:z)).
     */
    std::uint64_t asymmetricOutcomes = 0;

    /** Total merges + splits. */
    std::uint64_t
    reconfigurations() const
    {
        return merges + splits;
    }
};

/** Graceful-degradation counters (Section: robustness subsystem). */
struct RobustnessStats
{
    /** Epoch decisions on which at least one violation fired. */
    std::uint64_t violationEpochs = 0;
    /** Proposals dropped under the Log policy. */
    std::uint64_t droppedTopologies = 0;
    /** Entries into quarantine (Recover policy). */
    std::uint64_t quarantines = 0;
    /** Epoch decisions spent holding the quarantine topology. */
    std::uint64_t quarantineEpochs = 0;
    /** Completed quarantines: adaptation re-entered. */
    std::uint64_t recoveries = 0;
};

/**
 * Epoch-granularity MorphCache controller.
 */
class MorphController
{
  public:
    MorphController(const MorphConfig &config, std::uint32_t num_cores);

    /**
     * Run one reconfiguration decision: read footprints from the
     * hierarchy, rewrite the topology, reset the footprint
     * estimators for the next epoch.
     */
    void epochBoundary(Hierarchy &hierarchy);

    /**
     * The pure decision function: compute the topology transition
     * this controller would propose from `current` under the given
     * classification signals — without mutating the controller, the
     * hierarchy, or any counters. `epochBoundary()` calls this and
     * replays the returned events into the activity counters and the
     * tracer; the static model checker (src/check/model_checker.hh)
     * calls it directly on synthetic signals to enumerate every
     * decision the engine can make.
     */
    TransitionProposal proposeTransition(const Topology &current,
                                         const DecisionInputs &in) const;

    /** Activity counters. */
    const ReconfigStats &stats() const { return stats_; }

    /** MSAT currently in effect (moves under QoS throttling). */
    const MsatConfig &msat() const { return msatNow_; }

    /** Configuration. */
    const MorphConfig &config() const { return config_; }

    // --- Observability ------------------------------------------

    /**
     * Attach a decision-provenance tracer (not owned; nullptr
     * detaches). When enabled, the controller emits structured
     * events for every MSAT classification, accepted merge/split
     * (with the condition and ACF readings that justified it),
     * topology change, and quarantine transition.
     */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /**
     * Register controller tallies onto a stats registry:
     * `morph.*` (reconfiguration activity incl. per-condition merge
     * counts and the live MSAT), `check.*` (invariant checker),
     * `robust.*` (degradation), and `fault.*` (injector, when one
     * is attached). The controller must outlive the registry's
     * sampling.
     */
    void registerStats(StatsRegistry &registry) const;

    // --- Robustness subsystem -----------------------------------

    /** Invariant checker (counters; policy from the config). */
    const InvariantChecker &checker() const { return checker_; }

    /** Degradation counters. */
    const RobustnessStats &robustness() const { return robust_; }

    /** Currently holding the quarantine topology? */
    bool inQuarantine() const { return quarantineLeft_ > 0; }

    /**
     * Fault injector in effect: the externally attached one, else
     * the config-owned one, else nullptr. Callers wiring bus-fault
     * hooks (MorphCacheSystem) read this.
     */
    FaultInjector *faultInjector() const;

    /**
     * Attach an external fault injector (tests; not owned;
     * nullptr detaches and falls back to the config-owned one).
     */
    void attachFaultInjector(FaultInjector *injector);

    /**
     * Human-readable robustness summary: checker, degradation, and
     * injection counters. Empty string when checking is off and no
     * faults were injected.
     */
    std::string robustnessReport() const;

    /**
     * Serialize the complete decision state: live MSATs, activity
     * counters, hysteresis stamps, QoS miss snapshots, checker and
     * degradation counters, quarantine countdown, and the owned
     * fault injector's PRNG streams. The external injector
     * (attachFaultInjector) is test-only and not serialized.
     */
    void saveState(CkptWriter &w) const;
    void loadState(CkptReader &r);

  private:
    MergeEval evaluateMerge(const LevelSignals &level,
                            const MsatConfig &msat,
                            const std::vector<SliceId> &a,
                            const std::vector<SliceId> &b,
                            FaultInjector *faults) const;
    SplitEval evaluateSplit(const LevelSignals &level,
                            const MsatConfig &msat,
                            const std::vector<SliceId> &group,
                            FaultInjector *faults) const;

    /** Count a merge by its justifying condition. */
    void countMergeCondition(const MergeEval &eval);

    /** Emit one accepted merge/split provenance event. */
    void traceMerge(const char *level, const ProposalEvent &event,
                    const MsatConfig &msat);
    void traceForcedMerge(const ProposalEvent &event);
    void traceSplit(const char *level, const ProposalEvent &event,
                    const MsatConfig &msat, bool forced);

    /** Emit per-group MSAT classification events for one level. */
    void traceClassification(const char *level,
                             const CacheLevelModel &model,
                             const Partition &partition,
                             const MsatConfig &msat);

    /** Structural check: may groups a and b merge at all? */
    bool mergeAllowed(const std::vector<SliceId> &a,
                      const std::vector<SliceId> &b, RuleBug bug) const;

    /** Split a group into its two halves. */
    static void splitGroup(const std::vector<SliceId> &group,
                           std::vector<SliceId> &first,
                           std::vector<SliceId> &second);

    /** L3 merges are always inclusion-safe (Section 2.2). */
    void doL3Merges(const DecisionInputs &in,
                    TransitionProposal &p) const;
    /** L2 merges, forcing covering L3 merges where required. */
    void doL2Merges(const DecisionInputs &in,
                    TransitionProposal &p) const;
    /** L2 splits are always inclusion-safe (Section 2.3). */
    void doL2Splits(const DecisionInputs &in,
                    TransitionProposal &p) const;
    /** L3 splits, requiring straddling L2 groups to split too. */
    void doL3Splits(const DecisionInputs &in,
                    TransitionProposal &p) const;

    /** Is the proposal's current topology asymmetric (Section 2.4)? */
    bool outcomeAsymmetric(const TransitionProposal &p) const;

    /**
     * Replay a finished proposal's events into the activity
     * counters and the provenance tracer — the only place decision
     * effects land, now that the decision itself is pure.
     */
    void replayProposal(const TransitionProposal &p);

    /** QoS MSAT throttling from per-core miss deltas (Section 5.3). */
    void throttleMsat(const Hierarchy &hierarchy);

    /** Shape rule implied by the Section 5.5 extension flags. */
    ShapeRule shapeRule() const;

    /**
     * Validate an intermediate decision state (after a merge/split
     * phase). @return true when a violation fired (decision must
     * be abandoned).
     */
    bool checkDecision(const Partition &l2, const Partition &l3,
                       const char *phase);

    /** React to a detected violation according to the policy. */
    void handleViolation(Hierarchy &hierarchy, bool dropped_proposal);

    /**
     * Degrade to the static all-private topology (always legal)
     * and hold until quarantineCleanEpochs clean epochs pass.
     */
    void enterQuarantine(Hierarchy &hierarchy);

    /** One epoch decision spent inside quarantine. */
    void quarantineEpoch(Hierarchy &hierarchy);

    MorphConfig config_;     // ckpt: derived(MorphController)
    std::uint32_t numCores_; // ckpt: derived(MorphController)
    MsatConfig msatNow_;
    MsatConfig msatL3Now_;
    ReconfigStats stats_;
    /** Decision index at which each slice's group last merged. */
    std::vector<std::uint64_t> l2MergeStamp_;
    std::vector<std::uint64_t> l3MergeStamp_;
    /** Per-core cumulative miss counts at the last boundary. */
    std::vector<std::uint64_t> lastMissSnapshot_;
    /** Per-core misses during the epoch preceding the last one. */
    std::vector<std::uint64_t> prevEpochMisses_;
    bool havePrevEpoch_ = false;
    bool mergedLastEpoch_ = false;

    // --- Robustness subsystem -----------------------------------
    InvariantChecker checker_;
    RobustnessStats robust_;
    /** Clean epochs still required before leaving quarantine. */
    std::uint32_t quarantineLeft_ = 0;
    /** Config-owned injector (when config.faults is enabled). */
    std::unique_ptr<FaultInjector> ownedFaults_;
    /** External injector override (tests); not owned. */
    FaultInjector *attachedFaults_ = nullptr; // ckpt: transient(test wiring)

    /** Decision-provenance tracer (not owned; null = disabled). */
    Tracer *tracer_ = nullptr; // ckpt: transient(wiring; reattached by owner)
};

} // namespace morphcache

#endif // MORPHCACHE_MORPH_CONTROLLER_HH

#include "mem/slice.hh"

#include "common/logging.hh"

namespace morphcache {

CacheSlice::CacheSlice(SliceId id, const CacheGeometry &geom,
                       ReplPolicy policy)
    : id_(id), geom_(geom), policy_(policy),
      lines_(geom.numLines()),
      plru_(geom.numSets(), geom.assoc)
{
    MC_ASSERT(geom.valid());
}

std::uint64_t
CacheSlice::index(std::uint64_t set, std::uint32_t way) const
{
    MC_ASSERT(set < geom_.numSets());
    MC_ASSERT(way < geom_.assoc);
    return set * geom_.assoc + way;
}

std::optional<std::uint32_t>
CacheSlice::probe(Addr line_addr) const
{
    const std::uint64_t set = geom_.setIndex(line_addr);
    const std::uint64_t base = set * geom_.assoc;
    for (std::uint32_t way = 0; way < geom_.assoc; ++way) {
        const CacheLine &line = lines_[base + way];
        if (line.valid && line.lineAddr == line_addr)
            return way;
    }
    return std::nullopt;
}

CacheLine &
CacheSlice::lineAt(std::uint64_t set, std::uint32_t way)
{
    return lines_[index(set, way)];
}

const CacheLine &
CacheSlice::lineAt(std::uint64_t set, std::uint32_t way) const
{
    return lines_[index(set, way)];
}

void
CacheSlice::touch(std::uint64_t set, std::uint32_t way,
                  std::uint64_t stamp)
{
    CacheLine &line = lines_[index(set, way)];
    MC_ASSERT(line.valid);
    line.stamp = stamp;
    line.reused = true;
    if (policy_ == ReplPolicy::TreePLRU)
        plru_.tree(set).touch(way);
}

std::uint32_t
CacheSlice::victimWay(std::uint64_t set) const
{
    const std::uint64_t base = set * geom_.assoc;
    for (std::uint32_t way = 0; way < geom_.assoc; ++way) {
        if (!lines_[base + way].valid)
            return way;
    }
    if (policy_ == ReplPolicy::TreePLRU)
        return plru_.tree(set).victim();

    std::uint32_t victim = 0;
    std::uint64_t oldest = lines_[base].stamp;
    for (std::uint32_t way = 1; way < geom_.assoc; ++way) {
        if (lines_[base + way].stamp < oldest) {
            oldest = lines_[base + way].stamp;
            victim = way;
        }
    }
    return victim;
}

Eviction
CacheSlice::fill(std::uint64_t set, std::uint32_t way, Addr line_addr,
                 bool dirty, std::uint64_t stamp)
{
    CacheLine &line = lines_[index(set, way)];
    Eviction evicted;
    if (line.valid) {
        evicted.valid = true;
        evicted.lineAddr = line.lineAddr;
        evicted.dirty = line.dirty;
        evicted.reused = line.reused;
    }
    line.lineAddr = line_addr;
    line.valid = true;
    line.dirty = dirty;
    line.stamp = stamp;
    line.reused = false;
    if (policy_ == ReplPolicy::TreePLRU)
        plru_.tree(set).touch(way);
    return evicted;
}

Eviction
CacheSlice::invalidate(Addr line_addr)
{
    Eviction evicted;
    const auto way = probe(line_addr);
    if (!way)
        return evicted;
    CacheLine &line = lines_[index(geom_.setIndex(line_addr), *way)];
    evicted.valid = true;
    evicted.lineAddr = line.lineAddr;
    evicted.dirty = line.dirty;
    evicted.reused = line.reused;
    line.valid = false;
    line.dirty = false;
    return evicted;
}

void
CacheSlice::invalidateAll()
{
    for (CacheLine &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
}

std::uint64_t
CacheSlice::validLineCount() const
{
    std::uint64_t count = 0;
    for (const CacheLine &line : lines_)
        count += line.valid ? 1 : 0;
    return count;
}

} // namespace morphcache

#!/bin/sh
# Sanitizer CI leg: configure a separate build tree with ASan+UBSan
# enabled and run the whole test suite under it. Run from the repo
# root: tools/ci_sanitize.sh [build-dir]
set -eu

builddir="${1:-build-sanitize}"

cmake -B "$builddir" -S . -DMORPHCACHE_SANITIZE=ON
cmake --build "$builddir" -j
ctest --test-dir "$builddir" --output-on-failure -j "$(nproc)"

/**
 * @file
 * Tests for checkpoint/restore and resumable campaigns.
 *
 * The headline contract under test: a run restored from a
 * checkpoint finishes with results byte-identical to the same-seed
 * run that was never interrupted — for every scheme — and a
 * campaign SIGKILLed mid-flight resumes to identical report and
 * stats bytes. Corruption never crashes or silently diverges: every
 * bit flip either restores from the previous checkpoint in the
 * chain or fails with a typed CkptError.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "ckpt/ckpt.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "common/serial.hh"
#include "runner/campaign.hh"
#include "runner/run_factory.hh"
#include "runner/sweep.hh"
#include "stats/registry.hh"
#include "stats/tracing.hh"

namespace morphcache {
namespace {

std::string
tmpPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + name;
}

RunSpec
smallSpec(const std::string &scheme)
{
    RunSpec spec;
    spec.workload = "mix:3";
    spec.scheme = scheme;
    spec.cores = 16;
    spec.epochs = 5;
    spec.refs = 3000;
    spec.seed = 77;
    return spec;
}

/** Everything a finished run can be compared on, bit-exactly. */
struct RunOutput
{
    RunResult result;
    std::string registryJson;
};

bool
sameOutput(const RunOutput &a, const RunOutput &b)
{
    if (a.registryJson != b.registryJson)
        return false;
    if (a.result.avgThroughput != b.result.avgThroughput ||
        a.result.performance != b.result.performance ||
        a.result.avgIpc != b.result.avgIpc ||
        a.result.epochs.size() != b.result.epochs.size())
        return false;
    for (std::size_t i = 0; i < a.result.epochs.size(); ++i) {
        const EpochMetrics &x = a.result.epochs[i];
        const EpochMetrics &y = b.result.epochs[i];
        if (x.ipc != y.ipc || x.throughput != y.throughput ||
            x.misses != y.misses)
            return false;
    }
    return true;
}

/** A live run with everything a checkpoint serializes. */
struct LiveRun
{
    BuiltRun built;
    StatsRegistry registry;
    Tracer tracer;
    std::unique_ptr<Simulation> simulation;

    explicit LiveRun(const RunSpec &spec) : built(buildRun(spec))
    {
        built.system->registerStats(registry);
        simulation = std::make_unique<Simulation>(
            *built.system, *built.workload, built.sim);
        simulation->setRegistry(&registry);
    }

    CkptRunState
    state()
    {
        CkptRunState s;
        s.simulation = simulation.get();
        s.system = built.system.get();
        s.workload = built.workload.get();
        s.registry = &registry;
        s.tracer = &tracer;
        return s;
    }

    RunOutput
    finish()
    {
        while (!simulation->done())
            simulation->stepEpoch();
        RunOutput out;
        out.result = simulation->finish();
        out.registryJson = registry.jsonString();
        return out;
    }
};

RunOutput
runUninterrupted(const RunSpec &spec)
{
    LiveRun run(spec);
    return run.finish();
}

/**
 * Step `split` epochs, checkpoint, restore into a fresh run, and
 * finish both halves — the resumed output must match the
 * uninterrupted run bit-for-bit.
 */
void
expectResumeMatches(const RunSpec &spec, std::uint32_t split)
{
    const RunOutput whole = runUninterrupted(spec);

    const std::string path =
        tmpPath("resume_" + spec.scheme + ".ckpt");
    {
        LiveRun first(spec);
        for (std::uint32_t i = 0; i < split; ++i)
            first.simulation->stepEpoch();
        writeCheckpoint(path, spec, first.state());
    }

    LiveRun second(spec);
    const RestoreOutcome outcome =
        readCheckpoint(path, spec, second.state());
    EXPECT_FALSE(outcome.usedFallback);
    const RunOutput resumed = second.finish();

    EXPECT_TRUE(sameOutput(whole, resumed))
        << "scheme " << spec.scheme << " diverged after resume";
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
}

TEST(Ckpt, ResumeMatchesUninterruptedMorph)
{
    expectResumeMatches(smallSpec("morph"), 2);
}

TEST(Ckpt, ResumeMatchesUninterruptedStatic)
{
    expectResumeMatches(smallSpec("static:4:4:1"), 2);
}

TEST(Ckpt, ResumeMatchesUninterruptedPipp)
{
    expectResumeMatches(smallSpec("pipp"), 2);
}

TEST(Ckpt, ResumeMatchesUninterruptedDsr)
{
    expectResumeMatches(smallSpec("dsr"), 2);
}

TEST(Ckpt, ResumeMatchesUninterruptedUcp)
{
    expectResumeMatches(smallSpec("ucp"), 2);
}

TEST(Ckpt, ResumeFromWarmupBoundaryAndLateSplits)
{
    // Splits at 0 (nothing recorded) and 4 (one epoch left)
    // exercise the warmup-capture and nearly-done edges.
    expectResumeMatches(smallSpec("morph"), 0);
    expectResumeMatches(smallSpec("morph"), 4);
}

TEST(Ckpt, WorkloadRoundTripContinuesIdentically)
{
    const RunSpec spec = smallSpec("morph");
    LiveRun a(spec);
    a.simulation->stepEpoch();
    a.simulation->stepEpoch();

    CkptWriter w;
    a.built.workload->saveState(w);
    LiveRun b(spec);
    CkptReader r("mem", w.buffer());
    b.built.workload->loadState(r);
    EXPECT_EQ(r.remaining(), 0u);

    // Both cursors now generate the identical reference stream.
    for (int i = 0; i < 100; ++i) {
        const MemAccess x =
            a.built.workload->next(static_cast<CoreId>(i % 16));
        const MemAccess y =
            b.built.workload->next(static_cast<CoreId>(i % 16));
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.type, y.type);
    }
}

TEST(Ckpt, HistogramRoundTrip)
{
    Histogram h(0.0, 100.0, 10);
    h.add(5);
    h.add(50);
    h.add(5000);
    CkptWriter w;
    h.saveState(w);

    Histogram h2(0.0, 100.0, 10);
    CkptReader r("mem", w.buffer());
    h2.loadState(r);
    EXPECT_EQ(h2.totalCount(), h.totalCount());
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        EXPECT_EQ(h2.bucketCount(i), h.bucketCount(i));

    Histogram wrong(0.0, 100.0, 4);
    CkptReader r2("mem", w.buffer());
    EXPECT_THROW(wrong.loadState(r2), CkptError);
}

TEST(Ckpt, TracerRoundTripResumesSequence)
{
    StringTraceSink sink;
    Tracer t(&sink);
    t.setEpoch(3);
    t.setTime(1234);
    TraceEvent ev("x");
    t.emit(ev);
    t.emit(ev);

    CkptWriter w;
    t.saveState(w);
    Tracer t2;
    CkptReader r("mem", w.buffer());
    t2.loadState(r);
    EXPECT_EQ(t2.epoch(), 3u);
    EXPECT_EQ(t2.time(), 1234u);
    EXPECT_EQ(t2.eventCount(), 2u);
}

TEST(Ckpt, RegistryRoundTripPreservesSnapshots)
{
    const RunSpec spec = smallSpec("morph");
    LiveRun a(spec);
    for (int i = 0; i < 3; ++i)
        a.simulation->stepEpoch();

    CkptWriter w;
    a.registry.saveState(w);
    LiveRun b(spec);
    CkptReader r("mem", w.buffer());
    b.registry.loadState(r);
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(a.registry.csvString(), b.registry.csvString());
}

TEST(Ckpt, SpecHashMismatchIsRejectedWithBothValues)
{
    const RunSpec spec = smallSpec("morph");
    const std::string path = tmpPath("hash_mismatch.ckpt");
    {
        LiveRun run(spec);
        run.simulation->stepEpoch();
        writeCheckpoint(path, spec, run.state());
    }

    RunSpec other = spec;
    other.epochs = 9;
    LiveRun target(other);
    try {
        readCheckpoint(path, other, target.state());
        FAIL() << "spec-hash mismatch not detected";
    } catch (const CkptError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("config"), std::string::npos) << what;
        EXPECT_NE(what.find(path), std::string::npos) << what;
    }
    std::remove(path.c_str());
}

TEST(Ckpt, SeedMismatchIsRejected)
{
    const RunSpec spec = smallSpec("morph");
    const std::string path = tmpPath("seed_mismatch.ckpt");
    {
        LiveRun run(spec);
        run.simulation->stepEpoch();
        writeCheckpoint(path, spec, run.state());
    }
    // Same config hash (seed is outside describe()), wrong stream.
    RunSpec other = spec;
    other.seed = 78;
    LiveRun target(other);
    EXPECT_THROW(readCheckpoint(path, other, target.state()),
                 CkptError);
    std::remove(path.c_str());
}

TEST(Ckpt, VersionMismatchIsRejected)
{
    const RunSpec spec = smallSpec("morph");
    const std::string path = tmpPath("version.ckpt");
    {
        LiveRun run(spec);
        run.simulation->stepEpoch();
        writeCheckpoint(path, spec, run.state());
    }

    // Bump the version field and re-stamp the trailing checksum so
    // only the version check can object.
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    ASSERT_GT(bytes.size(), 16u);
    bytes[4] += 1;
    const std::uint64_t sum =
        fnv1a64(bytes.data(), bytes.size() - 8);
    for (int i = 0; i < 8; ++i) {
        bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(sum >> (8 * i));
    }
    atomicWriteFile(path, bytes.data(), bytes.size());

    LiveRun target(spec);
    try {
        readCheckpoint(path, spec, target.state());
        FAIL() << "version mismatch not detected";
    } catch (const CkptError &err) {
        EXPECT_NE(std::string(err.what()).find("version"),
                  std::string::npos)
            << err.what();
    }
    std::remove(path.c_str());
}

TEST(Ckpt, TruncationIsATypedError)
{
    const RunSpec spec = smallSpec("morph");
    const std::string path = tmpPath("trunc.ckpt");
    {
        LiveRun run(spec);
        run.simulation->stepEpoch();
        writeCheckpoint(path, spec, run.state());
    }
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{3}, std::size_t{17},
          bytes.size() / 2, bytes.size() - 1}) {
        atomicWriteFile(path, bytes.data(), keep);
        LiveRun target(spec);
        EXPECT_THROW(readCheckpoint(path, spec, target.state()),
                     CkptError)
            << "truncation to " << keep << " bytes not typed";
    }
    std::remove(path.c_str());
}

/**
 * Corruption campaign: flip single bits all over a valid
 * checkpoint. With an intact `.prev` in the chain, every flip must
 * restore from the fallback; without one, every flip must fail
 * typed. Either way: no crash, no silent divergence.
 */
TEST(Ckpt, BitFlipCampaignNeverCrashesOrDiverges)
{
    const RunSpec spec = smallSpec("morph");
    const std::string path = tmpPath("flip.ckpt");
    const std::string prev = path + ".prev";
    {
        LiveRun run(spec);
        run.simulation->stepEpoch();
        writeCheckpoint(path, spec, run.state());
        run.simulation->stepEpoch();
        writeCheckpoint(path, spec, run.state()); // rotates .prev
    }
    const std::vector<std::uint8_t> good = readFileBytes(path);
    const std::vector<std::uint8_t> good_prev =
        readFileBytes(prev);
    const RunOutput whole = runUninterrupted(spec);

    Rng rng(2026);
    for (int trial = 0; trial < 48; ++trial) {
        const std::size_t byte = static_cast<std::size_t>(
            rng.next() % static_cast<std::uint64_t>(good.size()));
        const unsigned bit =
            static_cast<unsigned>(rng.next() % 8);

        std::vector<std::uint8_t> bad = good;
        bad[byte] = static_cast<std::uint8_t>(
            bad[byte] ^ (1u << bit));
        atomicWriteFile(path, bad.data(), bad.size());

        // With the chain intact the flip must fall back to .prev
        // and the resumed run must still match the uninterrupted
        // one exactly.
        {
            atomicWriteFile(prev, good_prev.data(),
                            good_prev.size());
            LiveRun target(spec);
            const RestoreOutcome outcome = restoreCheckpointChain(
                path, spec, target.state());
            EXPECT_TRUE(outcome.usedFallback)
                << "flip byte " << byte << " bit " << bit
                << " restored from a corrupt file";
            EXPECT_TRUE(sameOutput(whole, target.finish()))
                << "silent divergence at byte " << byte;
        }

        // Without a fallback the same flip is a typed failure.
        std::remove(prev.c_str());
        LiveRun target(spec);
        EXPECT_THROW(
            restoreCheckpointChain(path, spec, target.state()),
            CkptError)
            << "flip byte " << byte << " bit " << bit;
    }
    std::remove(path.c_str());
    std::remove(prev.c_str());
}

TEST(Ckpt, InspectReportsHeaderAndSections)
{
    const RunSpec spec = smallSpec("morph");
    const std::string path = tmpPath("inspect.ckpt");
    {
        LiveRun run(spec);
        // Two warmup epochs plus one recorded epoch.
        run.simulation->stepEpoch();
        run.simulation->stepEpoch();
        run.simulation->stepEpoch();
        writeCheckpoint(path, spec, run.state());
    }
    const CkptInfo info = inspectCheckpoint(path);
    EXPECT_EQ(info.version, ckptVersion);
    EXPECT_TRUE(info.checksumOk);
    EXPECT_EQ(info.seed, spec.seed);
    EXPECT_EQ(info.epochsCompleted, 1u);
    EXPECT_EQ(info.specHash, specHash(spec));
    EXPECT_EQ(describe(info.spec), describe(spec));
    ASSERT_EQ(info.sections.size(), 6u);
    EXPECT_EQ(info.sections[0].first, "SPEC");
    EXPECT_EQ(info.sections[1].first, "WKLD");
    EXPECT_EQ(info.sections[2].first, "SYST");
    EXPECT_EQ(info.sections[3].first, "SIMU");
    EXPECT_EQ(info.sections[4].first, "REGY");
    EXPECT_EQ(info.sections[5].first, "TRCE");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------

std::vector<CampaignCell>
smallCampaign(std::uint32_t mixes)
{
    std::vector<CampaignCell> cells;
    for (std::uint32_t m = 1; m <= mixes; ++m) {
        CampaignCell cell;
        cell.spec = smallSpec("morph");
        char workload[16];
        std::snprintf(workload, sizeof(workload), "mix:%u", m);
        cell.spec.workload = workload;
        cell.spec.seed = sweepCellSeed(9, m - 1);
        char label[64];
        std::snprintf(label, sizeof(label), "mix:%02u seed=%llu",
                      m,
                      static_cast<unsigned long long>(
                          cell.spec.seed));
        cell.label = label;
        cells.push_back(std::move(cell));
    }
    return cells;
}

void
removeCampaignFiles(const std::string &manifest, std::size_t cells)
{
    std::remove(manifest.c_str());
    for (std::size_t i = 0; i < cells; ++i) {
        char name[64];
        std::snprintf(name, sizeof(name), "cell%04zu", i);
        const std::string base =
            manifest + ".d/" + std::string(name);
        std::remove((base + ".ckpt").c_str());
        std::remove((base + ".ckpt.prev").c_str());
        std::remove((base + ".result.json").c_str());
    }
}

TEST(Campaign, ReportIsIdenticalAcrossJobCounts)
{
    const std::vector<CampaignCell> cells = smallCampaign(3);
    CampaignOptions opts;
    opts.wantStatsJson = true;

    opts.manifestPath = tmpPath("camp_j1.jsonl");
    opts.jobs = 1;
    const CampaignReport serial = runCampaign(cells, opts);
    removeCampaignFiles(opts.manifestPath, cells.size());

    opts.manifestPath = tmpPath("camp_j4.jsonl");
    opts.jobs = 4;
    const CampaignReport parallel = runCampaign(cells, opts);
    removeCampaignFiles(opts.manifestPath, cells.size());

    EXPECT_EQ(serial.reportText, parallel.reportText);
    EXPECT_EQ(serial.statsJsonArray, parallel.statsJsonArray);
    EXPECT_EQ(serial.done, cells.size());
    EXPECT_EQ(serial.failed, 0u);
}

TEST(Campaign, ResumeOfFinishedCampaignReplaysResultBytes)
{
    const std::vector<CampaignCell> cells = smallCampaign(2);
    CampaignOptions opts;
    opts.manifestPath = tmpPath("camp_done.jsonl");
    opts.jobs = 2;
    opts.wantStatsJson = true;
    const CampaignReport first = runCampaign(cells, opts);

    opts.resume = true;
    const CampaignReport replay = runCampaign(cells, opts);
    EXPECT_EQ(first.reportText, replay.reportText);
    EXPECT_EQ(first.statsJsonArray, replay.statsJsonArray);
    removeCampaignFiles(opts.manifestPath, cells.size());
}

TEST(Campaign, FailedCellsAreMarkedAndExcludedNotDropped)
{
    std::vector<CampaignCell> cells = smallCampaign(2);
    cells[1].spec.scheme = "bogus"; // buildRun throws ConfigError
    cells[1].label = "broken cell";

    CampaignOptions opts;
    opts.manifestPath = tmpPath("camp_fail.jsonl");
    opts.jobs = 2;
    opts.retryCells = 1;
    opts.wantStatsJson = true;
    const CampaignReport report = runCampaign(cells, opts);

    EXPECT_EQ(report.done, 1u);
    EXPECT_EQ(report.failed, 1u);
    EXPECT_NE(report.reportText.find("FAILED"), std::string::npos);
    EXPECT_NE(report.reportText.find("after 2 attempts"),
              std::string::npos)
        << report.reportText;
    // The failed cell's stats must not pollute the aggregate.
    EXPECT_EQ(report.statsJsonArray.find("bogus"),
              std::string::npos);

    // The manifest says so explicitly.
    std::FILE *f = std::fopen(opts.manifestPath.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string manifest;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        manifest.append(buf, n);
    std::fclose(f);
    EXPECT_NE(manifest.find("\"status\":\"failed\""),
              std::string::npos);
    EXPECT_NE(manifest.find("\"attempts\":2"), std::string::npos);
    removeCampaignFiles(opts.manifestPath, cells.size());
}

TEST(Campaign, WatchdogCancelsOverrunningCells)
{
    std::vector<CampaignCell> cells = smallCampaign(1);
    CampaignOptions opts;
    opts.manifestPath = tmpPath("camp_watchdog.jsonl");
    opts.jobs = 1;
    opts.cellTimeoutSec = 1e-9; // expires before the first epoch
    const CampaignReport report = runCampaign(cells, opts);
    EXPECT_EQ(report.failed, 1u);
    EXPECT_NE(report.reportText.find("watchdog"),
              std::string::npos)
        << report.reportText;
    removeCampaignFiles(opts.manifestPath, cells.size());
}

TEST(Campaign, ResumeAgainstMismatchedManifestIsTyped)
{
    const std::vector<CampaignCell> cells = smallCampaign(2);
    CampaignOptions opts;
    opts.manifestPath = tmpPath("camp_mismatch.jsonl");
    opts.jobs = 1;
    runCampaign(cells, opts);

    opts.resume = true;
    const std::vector<CampaignCell> fewer = smallCampaign(1);
    EXPECT_THROW(runCampaign(fewer, opts), CkptError);
    removeCampaignFiles(opts.manifestPath, cells.size());
}

TEST(Campaign, InterruptFlagStopsResumablyAndResumeCompletes)
{
    const std::vector<CampaignCell> cells = smallCampaign(2);

    CampaignOptions ref_opts;
    ref_opts.manifestPath = tmpPath("camp_int_ref.jsonl");
    ref_opts.jobs = 2;
    ref_opts.wantStatsJson = true;
    const CampaignReport reference = runCampaign(cells, ref_opts);
    removeCampaignFiles(ref_opts.manifestPath, cells.size());

    CampaignOptions opts = ref_opts;
    opts.manifestPath = tmpPath("camp_int.jsonl");
    requestCkptInterrupt();
    const CampaignReport stopped = runCampaign(cells, opts);
    clearCkptInterrupt();
    EXPECT_TRUE(stopped.interrupted);

    opts.resume = true;
    const CampaignReport resumed = runCampaign(cells, opts);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.reportText, reference.reportText);
    EXPECT_EQ(resumed.statsJsonArray, reference.statsJsonArray);
    removeCampaignFiles(opts.manifestPath, cells.size());
}

/**
 * The crash test: fork a child that runs the campaign, SIGKILL it
 * mid-flight (no atexit, no flush — the hard way), then resume in
 * this process and demand byte-identical output to a reference
 * campaign that was never interrupted.
 */
TEST(Campaign, SigkilledCampaignResumesToIdenticalBytes)
{
    std::vector<CampaignCell> cells = smallCampaign(4);
    for (CampaignCell &cell : cells)
        cell.spec.refs = 20000; // slow enough to die mid-flight

    CampaignOptions ref_opts;
    ref_opts.manifestPath = tmpPath("camp_kill_ref.jsonl");
    ref_opts.jobs = 2;
    ref_opts.ckptEvery = 1;
    ref_opts.wantStatsJson = true;
    const CampaignReport reference = runCampaign(cells, ref_opts);
    removeCampaignFiles(ref_opts.manifestPath, cells.size());

    CampaignOptions opts = ref_opts;
    opts.manifestPath = tmpPath("camp_kill.jsonl");
    removeCampaignFiles(opts.manifestPath, cells.size());

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // In the child: run the campaign and exit quietly if the
        // parent never gets around to killing us.
        runCampaign(cells, opts);
        _exit(0);
    }

    // Give the child a moment to make durable progress, then kill
    // it without warning.
    for (int i = 0; i < 200; ++i) {
        std::FILE *f = std::fopen(opts.manifestPath.c_str(), "rb");
        if (f) {
            std::fseek(f, 0, SEEK_END);
            const long size = std::ftell(f);
            std::fclose(f);
            if (size > 200)
                break;
        }
        usleep(10000);
    }
    kill(child, SIGKILL);
    int status = 0;
    waitpid(child, &status, 0);

    // Resume in-process: whatever state the kill left behind must
    // fold into the exact reference bytes.
    opts.resume = true;
    const CampaignReport resumed = runCampaign(cells, opts);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.done, cells.size());
    EXPECT_EQ(resumed.reportText, reference.reportText);
    EXPECT_EQ(resumed.statsJsonArray, reference.statsJsonArray);
    removeCampaignFiles(opts.manifestPath, cells.size());
}

} // namespace
} // namespace morphcache

# Empty compiler generated dependencies file for multiprogrammed_mix.
# This may be replaced when dependencies are built.

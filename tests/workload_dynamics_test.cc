/**
 * @file
 * Tests for the workload model's dynamic structure: sweeps,
 * streams, phases, and per-mix/per-app smoke coverage of the full
 * simulation stack (parameterized over every Table 5 mix and every
 * PARSEC application).
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "sim/config.hh"
#include "sim/simulation.hh"
#include "workload/generator.hh"

namespace morphcache {
namespace {

GeneratorParams
smallGen()
{
    GeneratorParams params;
    params.l2SliceLines = 512;
    params.l3SliceLines = 2048;
    return params;
}

TEST(WorkloadDynamics, MidSetIsSweptCyclically)
{
    // Disable everything but mid draws: lines must appear in a
    // repeating cyclic order.
    GeneratorParams params = smallGen();
    params.recentFraction = 0.0;
    params.hotShare = 0.0;
    params.streamFractionByClass[2] = 0.0;
    CoreRefGenerator gen(profileByName("bzip2"), 0, params, 7);
    gen.beginEpoch(1);

    const std::uint64_t period = gen.midLines();
    ASSERT_GT(period, 64u);
    std::vector<Addr> first_pass;
    for (std::uint64_t i = 0; i < period; ++i)
        first_pass.push_back(gen.next().addr);
    for (std::uint64_t i = 0; i < period; ++i)
        EXPECT_EQ(gen.next().addr, first_pass[i]) << "pos " << i;
}

TEST(WorkloadDynamics, StreamNeverRepeats)
{
    GeneratorParams params = smallGen();
    params.recentFraction = 0.0;
    params.hotShare = 0.0;
    // Class 0 = streamers; force all working draws to stream.
    params.streamFractionByClass[0] = 1.0;
    CoreRefGenerator gen(profileByName("libquantum"), 0, params, 7);
    gen.beginEpoch(1);
    std::unordered_set<Addr> seen;
    for (int i = 0; i < 5000; ++i)
        EXPECT_TRUE(seen.insert(gen.next().addr).second);
}

TEST(WorkloadDynamics, PhasesArePersistent)
{
    // With a persistent low phase, small epochs cluster in runs
    // rather than alternating randomly.
    GeneratorParams params = smallGen();
    params.lowPhaseEnterProb = 0.10;
    params.lowPhaseStayProb = 0.75;
    CoreRefGenerator gen(profileByName("calculix"), 0, params, 7);

    std::vector<bool> low;
    for (int e = 0; e < 400; ++e) {
        gen.beginEpoch(static_cast<EpochId>(e));
        low.push_back(static_cast<double>(gen.hotLines()) <
                      0.6 * 0.62 * 1.25 * 512); // below ~phase line
    }
    int low_count = 0, runs = 0;
    for (std::size_t i = 0; i < low.size(); ++i) {
        low_count += low[i];
        if (low[i] && (i == 0 || !low[i - 1]))
            ++runs;
    }
    ASSERT_GT(low_count, 20);
    // Persistent phases: far fewer entries than low epochs (runs of
    // length ~1/(1-stay) = 4).
    EXPECT_LT(runs * 2, low_count);
}

TEST(WorkloadDynamics, SharedWritesAreRare)
{
    GeneratorParams params = smallGen();
    MultithreadedWorkload app(profileByName("dedup"), 4, params, 7);
    app.beginEpoch(1);
    // Count writes among accesses; the blended rate must sit well
    // below the private-only rate because half the draws are
    // shared and read-mostly.
    int writes = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        writes += app.next(0).type == AccessType::Write;
    const double rate = static_cast<double>(writes) / n;
    EXPECT_LT(rate, 0.20);
    EXPECT_GT(rate, 0.05);
}

// ---- Full-stack smoke coverage -----------------------------------

class EveryMix : public ::testing::TestWithParam<int>
{
};

TEST_P(EveryMix, RunsUnderMorphCache)
{
    char name[16];
    std::snprintf(name, sizeof(name), "MIX %02d", GetParam());
    HierarchyParams hier = HierarchyParams::defaultParams(16);
    hier.l1Geom = CacheGeometry{2048, 2, 64};
    hier.l2.sliceGeom = CacheGeometry{8192, 4, 64};
    hier.l3.sliceGeom = CacheGeometry{32768, 8, 64};
    const GeneratorParams gen = generatorFor(hier);

    MixWorkload workload(mixByName(name), gen, 7);
    MorphCacheSystem system(hier, MorphConfig{});
    SimParams sim;
    sim.refsPerEpochPerCore = 1200;
    sim.epochs = 3;
    sim.warmupEpochs = 1;
    Simulation simulation(system, workload, sim);
    const RunResult result = simulation.run();
    EXPECT_GT(result.avgThroughput, 0.0);
    for (double ipc : result.avgIpc)
        EXPECT_GT(ipc, 0.0);
    // Whatever the controller did, the topology must be sound.
    EXPECT_TRUE(system.hierarchy().topology().respectsInclusion());
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, EveryMix,
                         ::testing::Range(1, 13));

class EveryParsecApp
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EveryParsecApp, RunsUnderMorphCache)
{
    HierarchyParams hier = HierarchyParams::defaultParams(16);
    hier.l1Geom = CacheGeometry{2048, 2, 64};
    hier.l2.sliceGeom = CacheGeometry{8192, 4, 64};
    hier.l3.sliceGeom = CacheGeometry{32768, 8, 64};
    hier.coherence = true;
    const GeneratorParams gen = generatorFor(hier);

    MultithreadedWorkload workload(profileByName(GetParam()), 16,
                                   gen, 7);
    MorphConfig config;
    config.sharedAddressSpace = true;
    MorphCacheSystem system(hier, config);
    SimParams sim;
    sim.refsPerEpochPerCore = 1200;
    sim.epochs = 3;
    sim.warmupEpochs = 1;
    Simulation simulation(system, workload, sim);
    const RunResult result = simulation.run();
    EXPECT_GT(result.performance, 0.0);
    EXPECT_TRUE(system.hierarchy().topology().respectsInclusion());
}

INSTANTIATE_TEST_SUITE_P(
    AllTwelve, EveryParsecApp,
    ::testing::Values("blackscholes", "bodytrack", "canneal",
                      "dedup", "facesim", "ferret", "fluidanimate",
                      "freqmine", "streamcluster", "swaptions",
                      "vips", "x264"));

} // namespace
} // namespace morphcache

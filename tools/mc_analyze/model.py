"""Frontend-agnostic semantic model.

One ``FileModel`` per source file, produced by either frontend
(``uparse`` or ``clang``) and serialized to JSON for the cache. The
model is deliberately a *projection* of the AST: only the facts the
four passes consume are kept, so both frontends can realistically
produce identical models and the cache stays small.
"""

from __future__ import annotations

from typing import Any


class Member:
    """Non-static data member of a class."""

    def __init__(self, name: str, type_: str, line: int,
                 static: bool = False,
                 annot: str | None = None,
                 annot_arg: str | None = None):
        self.name = name
        self.type = type_
        self.line = line
        self.static = static
        #: None | "derived" | "transient" (// ckpt: annotations).
        self.annot = annot
        self.annot_arg = annot_arg

    def to_json(self) -> dict[str, Any]:
        return {"name": self.name, "type": self.type,
                "line": self.line, "static": self.static,
                "annot": self.annot, "annotArg": self.annot_arg}

    @staticmethod
    def from_json(d: dict[str, Any]) -> "Member":
        return Member(d["name"], d["type"], d["line"], d["static"],
                      d["annot"], d["annotArg"])


class ClassModel:
    def __init__(self, name: str, line: int):
        self.name = name
        self.line = line
        self.members: list[Member] = []
        #: Names of member functions (defined inline or declared).
        self.methods: list[str] = []
        #: Base-class names (public inheritance chain, unqualified).
        self.bases: list[str] = []

    def to_json(self) -> dict[str, Any]:
        return {"name": self.name, "line": self.line,
                "members": [m.to_json() for m in self.members],
                "methods": self.methods, "bases": self.bases}

    @staticmethod
    def from_json(d: dict[str, Any]) -> "ClassModel":
        c = ClassModel(d["name"], d["line"])
        c.members = [Member.from_json(m) for m in d["members"]]
        c.methods = d["methods"]
        c.bases = d["bases"]
        return c


class SubSite:
    """An unsigned-wrap candidate: ``a - b``, ``a -= b``, ``--a``."""

    def __init__(self, line: int, op: str, lhs: str, rhs: str,
                 lhs_type: str, rhs_type: str):
        self.line = line
        self.op = op  # "-" | "-=" | "--"
        self.lhs = lhs  # normalized expression text ("" if unknown)
        self.rhs = rhs
        self.lhs_type = lhs_type  # resolved type ("" if unknown)
        self.rhs_type = rhs_type

    def to_json(self) -> list[Any]:
        return [self.line, self.op, self.lhs, self.rhs,
                self.lhs_type, self.rhs_type]

    @staticmethod
    def from_json(v: list[Any]) -> "SubSite":
        return SubSite(*v)


class LoopSite:
    """Iteration over a container (range-for or .begin() loop)."""

    def __init__(self, line: int, expr: str, expr_type: str):
        self.line = line
        self.expr = expr
        self.expr_type = expr_type

    def to_json(self) -> list[Any]:
        return [self.line, self.expr, self.expr_type]

    @staticmethod
    def from_json(v: list[Any]) -> "LoopSite":
        return LoopSite(*v)


class WriteSite:
    """A mutation of a non-local name inside a function body."""

    def __init__(self, line: int, target: str, base: str, kind: str,
                 depth: int):
        self.line = line
        #: Full normalized target ("ctx.completed", "queue_").
        self.target = target
        #: Leading identifier ("ctx", "queue_").
        self.base = base
        self.kind = kind  # "assign" | "incdec" | "mutcall"
        self.depth = depth  # brace depth within the function body

    def to_json(self) -> list[Any]:
        return [self.line, self.target, self.base, self.kind,
                self.depth]

    @staticmethod
    def from_json(v: list[Any]) -> "WriteSite":
        return WriteSite(*v)


class GuardSite:
    """A lock guard object's scope interval inside a function."""

    def __init__(self, line: int, end_line: int, depth: int):
        self.line = line
        self.end_line = end_line
        self.depth = depth

    def to_json(self) -> list[Any]:
        return [self.line, self.end_line, self.depth]

    @staticmethod
    def from_json(v: list[Any]) -> "GuardSite":
        return GuardSite(*v)


class FuncModel:
    """A function or method definition with a body."""

    def __init__(self, name: str, cls: str | None, line: int,
                 end_line: int, ret_type: str = ""):
        self.name = name
        self.cls = cls  # enclosing/owning class name or None
        self.line = line
        self.end_line = end_line
        self.ret_type = ret_type
        self.params: list[tuple[str, str]] = []  # (name, type)
        self.locals: list[tuple[str, str]] = []  # (name, type)
        #: For lambdas: names visible from the enclosing scope
        #: (captured locals/params). Used for type resolution but
        #: NOT for thread-locality: a by-reference capture written
        #: from a thread entry is shared state.
        self.captures: list[tuple[str, str]] = []
        self.idents: set[str] = set()
        self.calls: list[tuple[str, int]] = []  # (callee, line)
        self.subs: list[SubSite] = []
        self.loops: list[LoopSite] = []
        self.writes: list[WriteSite] = []
        self.guards: list[GuardSite] = []
        #: True for lambdas handed to std::thread / pool submit.
        self.thread_entry = False
        #: For lambdas: normalized text of the tokens immediately
        #: preceding the capture list (the spawn context), e.g.
        #: "std::thread heartbeat(" or "workers_.emplace_back(".
        #: The concurrency pass resolves receiver types from the
        #: merged model to classify entries the frontend could not.
        self.entry_ctx = ""

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name, "cls": self.cls, "line": self.line,
            "endLine": self.end_line, "retType": self.ret_type,
            "params": self.params, "locals": self.locals,
            "captures": self.captures,
            "idents": sorted(self.idents),
            "calls": self.calls,
            "subs": [s.to_json() for s in self.subs],
            "loops": [s.to_json() for s in self.loops],
            "writes": [s.to_json() for s in self.writes],
            "guards": [s.to_json() for s in self.guards],
            "threadEntry": self.thread_entry,
            "entryCtx": self.entry_ctx,
        }

    @staticmethod
    def from_json(d: dict[str, Any]) -> "FuncModel":
        f = FuncModel(d["name"], d["cls"], d["line"], d["endLine"],
                      d["retType"])
        f.params = [tuple(p) for p in d["params"]]
        f.locals = [tuple(p) for p in d["locals"]]
        f.captures = [tuple(p) for p in d.get("captures", [])]
        f.idents = set(d["idents"])
        f.calls = [tuple(c) for c in d["calls"]]
        f.subs = [SubSite.from_json(s) for s in d["subs"]]
        f.loops = [LoopSite.from_json(s) for s in d["loops"]]
        f.writes = [WriteSite.from_json(s) for s in d["writes"]]
        f.guards = [GuardSite.from_json(s) for s in d["guards"]]
        f.thread_entry = d["threadEntry"]
        f.entry_ctx = d.get("entryCtx", "")
        return f


class FileModel:
    def __init__(self, path: str, frontend: str):
        self.path = path  # repo-root-relative, forward slashes
        self.frontend = frontend  # "uparse" | "clang"
        self.aliases: dict[str, str] = {}  # using X = Y;
        self.classes: list[ClassModel] = []
        self.functions: list[FuncModel] = []

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path, "frontend": self.frontend,
            "aliases": self.aliases,
            "classes": [c.to_json() for c in self.classes],
            "functions": [f.to_json() for f in self.functions],
        }

    @staticmethod
    def from_json(d: dict[str, Any]) -> "FileModel":
        fm = FileModel(d["path"], d["frontend"])
        fm.aliases = d["aliases"]
        fm.classes = [ClassModel.from_json(c) for c in d["classes"]]
        fm.functions = [FuncModel.from_json(f)
                        for f in d["functions"]]
        return fm


class Finding:
    def __init__(self, path: str, line: int, check: str,
                 message: str, site: str):
        self.path = path
        self.line = line
        self.check = check
        self.message = message
        #: Stable allowlist key (check:path:site).
        self.site = site

    def key(self) -> str:
        return f"{self.check}:{self.path}:{self.site}"

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: [{self.check}] "
                f"{self.message} (site: {self.site})")

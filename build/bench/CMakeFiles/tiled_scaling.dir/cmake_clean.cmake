file(REMOVE_RECURSE
  "CMakeFiles/tiled_scaling.dir/tiled_scaling.cc.o"
  "CMakeFiles/tiled_scaling.dir/tiled_scaling.cc.o.d"
  "tiled_scaling"
  "tiled_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiled_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

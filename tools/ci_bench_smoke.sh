#!/bin/sh
# Bench-smoke CI leg: prove the perf-observability harness itself
# works, not that CI hardware is fast. Five gates:
#
#   1. mc_bench --suite smoke emits a valid schema-2 BENCH document,
#      and every cell's refProcessing phase reports ZERO allocation
#      calls — the steady-state gate: the reference-processing inner
#      loop is contractually allocation-free for every scheme.
#   2. mc_benchdiff of that document against itself exits 0.
#   3. mc_benchdiff against a synthetically slowed re-run (the
#      --slowdown-us busy-wait knob) exits nonzero — the regression
#      gate fires end-to-end.
#   4. The committed BENCH_*.json trajectory still diffs cleanly:
#      schema understood, smoke cell ids overlap the committed
#      default-suite cells. Absolute throughput is machine-dependent,
#      so this diff uses a deliberately generous threshold and only
#      catches catastrophic (>95%) collapses or id/schema drift.
#   5. The committed trajectory itself improved: the newest
#      BENCH_*.json beats the previous one by the --min-speedup
#      floor on every shared cell (both files were measured on the
#      same author machine, so a real ratio gate is meaningful).
#
# Run from the repo root: tools/ci_bench_smoke.sh [build-dir]
set -eu

builddir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

bench="$builddir/tools/mc_bench"
if [ ! -x "$bench" ]; then
    echo "FAIL: $bench not built (build the default targets first)" >&2
    exit 1
fi

out="${MC_BENCH_SMOKE_DIR:-$builddir/bench-smoke}"
mkdir -p "$out"

echo "== bench smoke: measure =="
"$bench" --suite smoke --warmup 1 --trials 3 --out "$out/now.json"

echo "== bench smoke: schema sanity =="
python3 - "$out/now.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == 2, doc["schema"]
assert doc["tool"] == "mc_bench"
assert doc["suite"] == "smoke"
for key in ("gitSha", "compiler", "buildType"):
    assert isinstance(doc["env"][key], str) and doc["env"][key]
assert doc["protocol"]["trials"] == 3
assert len(doc["cells"]) > 0
for cell in doc["cells"]:
    assert cell["medianRefsPerSec"] > 0, cell["id"]
    assert len(cell["samples"]) == 3, cell["id"]
    assert cell["allocCalls"] >= 0
    ref = cell["phases"]["refProcessing"]
    # The steady-state gate: the per-access inner loop must be
    # allocation-free for every scheme in the suite.
    assert ref["allocCalls"] == 0, (cell["id"], ref)
    assert ref["allocFrees"] == 0, (cell["id"], ref)
print("schema OK:", len(doc["cells"]), "cells,",
      "refProcessing allocation-free")
EOF

echo "== bench smoke: self-diff must pass =="
python3 tools/mc_benchdiff.py "$out/now.json" "$out/now.json"

echo "== bench smoke: synthetic slowdown must be caught =="
"$bench" --suite smoke --warmup 1 --trials 3 \
    --slowdown-us 200000 --out "$out/slow.json" 2>/dev/null
if python3 tools/mc_benchdiff.py "$out/now.json" "$out/slow.json" \
    > "$out/slow-diff.txt" 2>&1; then
    echo "FAIL: mc_benchdiff did not flag a 200ms/trial slowdown" >&2
    cat "$out/slow-diff.txt" >&2
    exit 1
fi
echo "slowdown regression detected (as required)"

baseline="$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)"
if [ -n "$baseline" ]; then
    echo "== bench smoke: diff vs committed $baseline =="
    # Cross-machine: gate only on schema/id compatibility and
    # total collapse, not on CI-runner speed.
    python3 tools/mc_benchdiff.py --threshold 95 \
        "$baseline" "$out/now.json"
else
    echo "NOTICE: no committed BENCH_*.json found; skipping" \
         "trajectory diff"
fi

previous="$(ls BENCH_*.json 2>/dev/null | sort | tail -2 | head -1 \
            || true)"
if [ -n "$previous" ] && [ "$previous" != "$baseline" ]; then
    echo "== bench smoke: trajectory $previous -> $baseline =="
    # Both committed files came from the same author machine, so a
    # genuine speedup floor holds: the refs/sec war must advance.
    # 1.2x is deliberately below the measured per-cell speedups of
    # the newest PR — it catches a regressed re-measure, not noise.
    python3 tools/mc_benchdiff.py --min-speedup 1.2 \
        "$previous" "$baseline"
else
    echo "NOTICE: fewer than two committed BENCH_*.json files;" \
         "skipping trajectory-improvement gate"
fi

echo "bench smoke: all checks passed"

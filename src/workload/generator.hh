/**
 * @file
 * Synthetic memory-reference generators calibrated to Table 4.
 *
 * Each core's stream follows a phased two-level working-set model:
 *
 *  - a *hot* set sized to the benchmark's L2 ACF fraction, re-drawn
 *    every epoch around the Table 4 mean with the published
 *    temporal sigma (and, for multithreaded apps, a per-thread
 *    spatial offset with the published spatial sigma);
 *  - a *mid* set sized so hot+mid matches the benchmark's L3 ACF;
 *  - a slowly advancing *streaming* tail producing compulsory
 *    misses;
 *  - a small recency ring that recreates L1-level temporal
 *    locality.
 *
 * Multithreaded (PARSEC) generators additionally direct a
 * per-benchmark fraction of hot/mid draws at regions shared by all
 * threads of the application (read-mostly, like real shared data),
 * which is what MorphCache's data-sharing merge condition
 * (Section 2.2, condition ii) keys on.
 *
 * Working sets are chunked-sparse spans (WorkingSet below): dense
 * chunks give line-level locality while the chunk dispersion
 * spreads the footprint over one tag granule per chunk, the way
 * real scattered heaps look to a tag-hashing estimator — this is
 * what keeps the ACFV estimate proportional to the footprint
 * (Figure 5's high correlation).
 */

#ifndef MORPHCACHE_WORKLOAD_GENERATOR_HH
#define MORPHCACHE_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "common/serial.hh"
#include "common/types.hh"
#include "workload/profiles.hh"

namespace morphcache {

/** Tunables of the reference generator. */
struct GeneratorParams
{
    /** Lines in one L2 slice (footprint scale anchor). */
    std::uint64_t l2SliceLines = 4096;
    /** Lines in one L3 slice. */
    std::uint64_t l3SliceLines = 16384;
    /**
     * Address-space dispersion of the L2-active footprint: a full
     * footprint (ACF 1.0) spans this many times the slice capacity.
     * Matches the ACFV tag-granularity coverage, acfvBits/assoc
     * (128/8 for the Table 3 L2), so measured ACFV utilization
     * lands on the Table 4 ACF value by construction.
     */
    double l2CoverageFactor = 16.0;
    /** Same for L3 (128/16 for the Table 3 L3). */
    double l3CoverageFactor = 8.0;
    /** ACFV length assumed for granule sizing. */
    std::uint32_t acfvBits = 128;
    /** Probability of re-referencing a recently touched line. */
    double recentFraction = 0.45;
    /** Of the non-stream working-set draws: hot-set share. */
    double hotShare = 0.75;
    /**
     * Phase behaviour: SPEC programs alternate between
     * memory-hungry and compute phases that *persist* for several
     * reconfiguration intervals — persistence is what makes a
     * reactive scheme like MorphCache (which acts one epoch after
     * observing) profitable. Modelled as a two-state Markov chain
     * with the given entry/stay probabilities and footprint
     * multiplier, plus AR(1)-correlated sigma_t noise.
     */
    double lowPhaseEnterProb = 0.08;
    double lowPhaseStayProb = 0.70;
    double lowPhaseScale = 0.35;
    /** Autocorrelation of the per-epoch footprint noise. */
    double noiseAr1 = 0.6;
    /**
     * Loop-style reuse concentration: this leading fraction of the
     * hot set receives `innerHotShare` of the hot draws, giving the
     * short reuse distances real inner loops produce (without it,
     * uniform reuse is a pathological worst case for any
     * recency-based policy).
     */
    double innerHotFraction = 0.25;
    double innerHotShare = 0.55;
    /**
     * Demand pressure multiplier applied to the inverted footprint
     * demands. Above 1, the aggregate demand of a 16-application
     * mix exceeds the total cache capacity, which is the regime the
     * paper's mixes operate in (reference-input SPEC footprints dwarf
     * on-chip caches) and the one where topology choices matter.
     */
    double demandScale = 1.25;
    /** Fraction of writes to private data. */
    double writeFraction = 0.25;
    /**
     * Fraction of writes to address-space-shared data. Shared
     * working sets are read-mostly in real multithreaded programs;
     * uniform write rates would make shared lines ping-pong under
     * write-invalidate and erase the ACFV sharing evidence the
     * condition-(ii) merge test depends on.
     */
    double sharedWriteFraction = 0.04;
    /** Per-epoch forward drift of the working sets (fraction). */
    double driftFraction = 0.06;
    /** Recency ring length (L1 locality). */
    std::uint32_t recentRing = 48;
    /**
     * Streaming (no-reuse) share of the working draws per paper
     * class. Class 0 (low active footprint at both levels) hosts
     * the classic SPEC streamers — libquantum, lbm, GemsFDTD —
     * whose traffic pollutes shared caches; cache-resident classes
     * stream little.
     */
    double streamFractionByClass[4] = {0.30, 0.08, 0.05, 0.03};
    /** Streaming share for PARSEC (unclassified) benchmarks. */
    double parsecStreamFraction = 0.05;
    /**
     * Treat Table 4 ACFs as capacity-clipped observations and
     * invert them through the uniform-reuse residency curve
     * ACF = 1 - exp(-demand/capacity): a benchmark showing a 0.73
     * footprint in a private slice really wants ~1.3 slices. This
     * is what makes capacity sharing (and its absence) matter.
     */
    bool invertAcfDemand = true;
};

/**
 * Layout of one chunked-sparse working set: `chunkCount` chunks of
 * `chunkLines` consecutive lines, one chunk per `stride`-line
 * granule starting at `base`. The sparse layout disperses the
 * footprint over many tags, the way real scattered heaps do, so
 * the tag-granular ACFV sees it; the dense chunks preserve
 * line-level locality.
 */
struct WorkingSet
{
    Addr base = 0;
    std::uint64_t chunkCount = 1;
    std::uint64_t chunkLines = 1;
    std::uint64_t stride = 1;

    /** Total lines in the set. */
    std::uint64_t
    lines() const
    {
        return chunkCount * chunkLines;
    }

    /** Line at sweep position pos (0 <= pos < lines()). */
    Addr
    lineAt(std::uint64_t pos) const
    {
        // Millions of calls per epoch against divisors that change
        // only at epoch boundaries: divide through cached
        // reciprocals, re-primed lazily whenever the geometry
        // fields were reassigned (copy, deserialize, re-layout).
        // The quotients are exactly those of the plain / and %
        // below, so which path runs never affects the stream.
        std::uint64_t chunk, within;
        if (chunkDiv_.divisor() != chunkLines)
            chunkDiv_.prime(chunkLines);
        if (chunkDiv_.fits(pos)) {
            chunk = chunkDiv_.quotient(pos);
            within = pos - chunk * chunkLines;
        } else {
            chunk = pos / chunkLines;
            within = pos % chunkLines;
        }
        // Scatter each chunk within its granule: with a common
        // offset, chunks at a sets-multiple stride would all map
        // to the same cache sets and conflict pathologically.
        // chunkLines <= stride by construction (chunks tile the
        // granule); saturate so a violated invariant degrades to
        // room == 1 (no scatter) instead of a ~2^64 modulus that
        // sprays addresses across the whole 64-bit space.
        const std::uint64_t room = satSub(stride, chunkLines) + 1;
        const std::uint64_t hash =
            chunk * 0x9e3779b97f4a7c15ULL >> 32;
        if (roomDiv_.divisor() != room)
            roomDiv_.prime(room);
        const std::uint64_t offset =
            roomDiv_.fits(hash)
                ? hash - roomDiv_.quotient(hash) * room
                : hash % room;
        return base + chunk * stride + offset + within;
    }

    /** Address-space span in lines. */
    std::uint64_t
    spanLines() const
    {
        return chunkCount * stride;
    }

  private:
    /**
     * Cached reciprocals for lineAt (not part of the set's value:
     * excluded from serialization and comparison, rebuilt on
     * demand). Mutable because priming is a pure cache fill on a
     * logically-const query path.
     */
    mutable FastU32Div chunkDiv_;
    mutable FastU32Div roomDiv_;
};

/** Shared-region placement for one multithreaded application. */
struct SharedRegionSpec
{
    /** Shared hot working set (uniform reuse). */
    WorkingSet hot;
    /** Shared mid working set (swept). */
    WorkingSet mid;
    /** Fraction of hot/mid draws redirected to the shared region. */
    double fraction = 0.0;
};

/**
 * Reference stream of one core (one single-threaded application,
 * or one thread of a multithreaded application).
 */
class CoreRefGenerator
{
  public:
    /**
     * @param profile Table 4 row driving the footprint statistics.
     * @param core Core this stream runs on.
     * @param params Generator tunables.
     * @param seed Deterministic seed.
     * @param spatial_offset Per-thread footprint offset in ACF
     *        fraction units (0 for single-threaded).
     */
    CoreRefGenerator(const BenchmarkProfile &profile, CoreId core,
                     const GeneratorParams &params,
                     std::uint64_t seed, double spatial_offset = 0.0);

    /** Re-draw the epoch's working sets. */
    void beginEpoch(EpochId epoch);

    /** Produce the next reference. */
    MemAccess next();

    /** Attach the shared region of a multithreaded application. */
    void setSharedRegion(const SharedRegionSpec &spec);

    /** Current hot-set size in lines (tests/characterization). */
    std::uint64_t hotLines() const { return hot_.lines(); }

    /** Current mid-set size in lines. */
    std::uint64_t midLines() const { return mid_.lines(); }

    /** Profile driving this stream. */
    const BenchmarkProfile &profile() const { return profile_; }

    /**
     * Build a chunked-sparse working set from demand (capacity
     * units of `slice_lines`) and dispersion (ACF fraction of the
     * tag coverage). Exposed for tests and the shared-region setup.
     */
    static WorkingSet layoutWorkingSet(Addr base, double demand,
                                       double acf_fraction,
                                       std::uint64_t slice_lines,
                                       double coverage_factor,
                                       std::uint32_t acfv_bits);

    /**
     * Serialize the full stream cursor: PRNG, working sets, sweep
     * positions, phase/noise memory, shared region, recency ring.
     */
    void saveState(CkptWriter &w) const;
    void loadState(CkptReader &r);

  private:
    Addr drawLine();

    BenchmarkProfile profile_;  // ckpt: derived(CoreRefGenerator)
    CoreId core_;               // ckpt: derived(CoreRefGenerator)
    GeneratorParams params_;    // ckpt: derived(CoreRefGenerator)
    Rng rng_;
    double spatialOffset_;      // ckpt: derived(CoreRefGenerator)

    /** First private line of this stream's address space. */
    Addr privateBase_;          // ckpt: derived(CoreRefGenerator)
    WorkingSet hot_;
    WorkingSet mid_;
    /** Sweep cursor through the mid set. */
    std::uint64_t midPos_ = 0;
    std::uint64_t sharedMidPos_ = 0;
    Addr streamPtr_ = 0;
    /** Markov phase state and AR(1) noise memory. */
    bool inLowPhase_ = false;
    double noise2_ = 0.0;
    double noise3_ = 0.0;

    SharedRegionSpec shared_;
    /** Whether the last drawLine() hit the shared region. */
    bool lastShared_ = false;

    std::vector<Addr> ring_;
    /** Sharedness of each ring entry (write-rate selection). */
    std::vector<bool> ringShared_;
    std::uint32_t ringNext_ = 0;
};

/**
 * Abstract workload: a set of per-core reference streams plus the
 * epoch protocol. Value-semantic clones support the checkpointing
 * the ideal offline scheme needs.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Next reference of a given core. */
    virtual MemAccess next(CoreId core) = 0;

    /** Advance all streams to a new epoch. */
    virtual void beginEpoch(EpochId epoch) = 0;

    /** All cores share one address space (multithreaded). */
    virtual bool sharedAddressSpace() const = 0;

    /** Number of cores with active streams. */
    virtual std::uint32_t numCores() const = 0;

    /** Deep copy (checkpointing). */
    virtual std::unique_ptr<Workload> clone() const = 0;

    /** Display name. */
    virtual std::string name() const = 0;

    /**
     * Serialize/restore the workload cursor (PRNG streams, working
     * sets, sweep positions). The defaults throw CkptError so a
     * workload type without checkpoint support fails typed instead
     * of resuming from a silently wrong position.
     */
    virtual void
    saveState(CkptWriter &w) const
    {
        (void)w;
        throw CkptError("workload '" + name() +
                        "' does not support checkpoint/restore");
    }

    virtual void
    loadState(CkptReader &r)
    {
        (void)r;
        throw CkptError("workload '" + name() +
                        "' does not support checkpoint/restore");
    }
};

/**
 * Multiprogrammed workload: 16 independent single-threaded
 * applications (a Table 5 mix), disjoint address spaces.
 */
class MixWorkload : public Workload
{
  public:
    MixWorkload(const MixSpec &spec, const GeneratorParams &params,
                std::uint64_t seed);

    MemAccess next(CoreId core) override;
    void beginEpoch(EpochId epoch) override;
    bool sharedAddressSpace() const override { return false; }
    std::uint32_t numCores() const override;
    std::unique_ptr<Workload> clone() const override;
    std::string name() const override { return name_; }
    void saveState(CkptWriter &w) const override;
    void loadState(CkptReader &r) override;

    /** Generator of one core (characterization). */
    CoreRefGenerator &core(CoreId core);

  private:
    std::string name_; // ckpt: derived(MixWorkload)
    std::vector<CoreRefGenerator> gens_;
};

/**
 * Multithreaded workload: one PARSEC application with one thread
 * per core, sharing an address region.
 */
class MultithreadedWorkload : public Workload
{
  public:
    MultithreadedWorkload(const BenchmarkProfile &profile,
                          std::uint32_t num_threads,
                          const GeneratorParams &params,
                          std::uint64_t seed);

    MemAccess next(CoreId core) override;
    void beginEpoch(EpochId epoch) override;
    bool sharedAddressSpace() const override { return true; }
    std::uint32_t numCores() const override;
    std::unique_ptr<Workload> clone() const override;
    std::string name() const override { return profile_.name; }
    void saveState(CkptWriter &w) const override;
    void loadState(CkptReader &r) override;

    /** Generator of one thread (characterization). */
    CoreRefGenerator &thread(CoreId core);

  private:
    void refreshSharedRegion(EpochId epoch);

    BenchmarkProfile profile_; // ckpt: derived(MultithreadedWorkload)
    GeneratorParams params_;   // ckpt: derived(MultithreadedWorkload)
    Rng appRng_;
    SharedRegionSpec shared_;
    std::vector<CoreRefGenerator> gens_;
};

/**
 * Single-application workload on one core (characterization runs
 * and the Figure 5 experiment).
 */
class SoloWorkload : public Workload
{
  public:
    SoloWorkload(const BenchmarkProfile &profile,
                 const GeneratorParams &params, std::uint64_t seed);

    MemAccess next(CoreId core) override;
    void beginEpoch(EpochId epoch) override;
    bool sharedAddressSpace() const override { return false; }
    std::uint32_t numCores() const override { return 1; }
    std::unique_ptr<Workload> clone() const override;
    std::string name() const override { return gen_.profile().name; }
    void saveState(CkptWriter &w) const override { gen_.saveState(w); }
    void loadState(CkptReader &r) override { gen_.loadState(r); }

    CoreRefGenerator &generator() { return gen_; }

  private:
    CoreRefGenerator gen_;
};

} // namespace morphcache

#endif // MORPHCACHE_WORKLOAD_GENERATOR_HH

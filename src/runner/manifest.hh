/**
 * @file
 * Campaign manifest: the durable, shared ground truth of a campaign.
 *
 * One JSONL file holds a campaign's identity and progress:
 *
 *   {"type":"header",...}    cell count + campaign hash binding
 *   {"type":"plan",...}      optional: the cell-generation recipe
 *                            (base RunSpec + mix range + seed
 *                            replicas), so independently launched
 *                            worker processes can rebuild the exact
 *                            cell list from the manifest alone
 *   {"type":"cell",...}      append-only per-cell status events
 *                            (pending/running/done/failed with an
 *                            attempt count); the last event per cell
 *                            wins and a torn final line is ignored
 *
 * Everything here is shared by the in-process campaign runner
 * (campaign.cc), the multi-process work-stealing executor
 * (executor.cc), and the mc_campaign tool — one serializer, one
 * folder, one report renderer, so a distributed campaign's merged
 * bytes cannot drift from a serial run's.
 *
 * Next to the manifest lives the state directory `<manifest>.d/`
 * with per-cell checkpoint chains (`cellNNNN.ckpt[.prev]`), atomic
 * result files (`cellNNNN.result.json`), and worker lease files
 * (`cellNNNN.lease`, see lease.hh). All writes under it go through
 * atomicWriteFile or the lease API (enforced by mc_lint's
 * `manifest-write` rule); the manifest itself is the one sanctioned
 * append-only writer, fsync-backed per event.
 */

#ifndef MORPHCACHE_RUNNER_MANIFEST_HH
#define MORPHCACHE_RUNNER_MANIFEST_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

// retryDelayMs (the campaign retry-backoff schedule) lives in
// common/rng.hh so the durability primitives can reuse it; the
// runner's callers keep reaching it through this header.
#include "common/rng.hh"
#include "ckpt/run_spec.hh"

namespace morphcache {

/** One campaign cell: a labelled run spec. */
struct CampaignCell
{
    /** Report label ("mix:08 seed=1234"). */
    std::string label;
    RunSpec spec;
};

// ---------------------------------------------------------------
// Single-line JSON helpers (our own records only — one object per
// line, scalar fields, no nesting except the trailing "stats").
// ---------------------------------------------------------------

std::string jsonEscape(const std::string &s);

/** Offset just past `"key":` in `text`, or npos. */
std::size_t findJsonKey(const std::string &text, const char *key);

bool jsonFieldU64(const std::string &text, const char *key,
                  std::uint64_t &out);
bool jsonFieldF64(const std::string &text, const char *key,
                  double &out);
bool jsonFieldStr(const std::string &text, const char *key,
                  std::string &out);

/** Fixed-width lowercase hex of a 64-bit value. */
std::string hex64(std::uint64_t v);

// ---------------------------------------------------------------
// Campaign identity and state-directory layout
// ---------------------------------------------------------------

/** Identity of a campaign: its cell labels, specs, and seeds. */
std::uint64_t campaignHash(const std::vector<CampaignCell> &cells);

/** State directory of a manifest: `<manifest>.d`. */
std::string campaignStateDir(const std::string &manifestPath);

std::string cellCkptPath(const std::string &dir, std::size_t i);
std::string cellResultPath(const std::string &dir, std::size_t i);
std::string cellLeasePath(const std::string &dir, std::size_t i);

bool fileExists(const std::string &path);

// ---------------------------------------------------------------
// Per-cell outcome records (the durable result files)
// ---------------------------------------------------------------

/** What one completed (or terminally failed) cell produced. */
struct CellOutcome
{
    bool ok = false;
    bool failed = false;
    std::string label;
    std::uint64_t seed = 0;
    std::uint64_t attempts = 0;
    double throughput = 0.0;
    double performance = 0.0;
    std::string finalTopology;
    std::uint64_t merges = 0;
    std::uint64_t splits = 0;
    std::string statsJson;
    std::string error;
};

/**
 * Render an outcome as its durable result record: one JSON line of
 * scalar fields (doubles as %.17g so they re-parse bit-exactly),
 * with the raw stats-registry document nested under "stats".
 */
std::string serializeOutcome(const CellOutcome &o);

/** Parse a result record; throws CkptError naming `path` on any
 * missing or malformed field. */
CellOutcome parseOutcome(const std::string &path,
                         const std::string &text);

// ---------------------------------------------------------------
// Manifest fold + append
// ---------------------------------------------------------------

/** Manifest fold state of one cell. */
struct CellProgress
{
    std::string status = "pending";
    std::uint64_t attempts = 0;
};

/**
 * Render the manifest header. `unix_t` (seconds since the epoch, 0
 * = omit) stamps campaign start so `mc_campaign status` can compute
 * throughput from the manifest alone; the fold ignores it, so
 * timing never feeds report bytes.
 */
std::string manifestHeaderLine(std::size_t cells,
                               std::uint64_t hash,
                               double unix_t = 0.0);

/**
 * Fold a manifest into last-event-per-cell progress. Verifies the
 * header's cell count and campaign hash against this campaign
 * (typed CkptError on mismatch), tolerates a torn final line and
 * malformed events (warned, skipped), ignores unknown record types.
 */
std::vector<CellProgress> foldManifest(const std::string &path,
                                       std::size_t num_cells,
                                       std::uint64_t hash);

/**
 * The append-only manifest event writer. One buffered write +
 * fsync per event, serialized by an internal mutex (workers in the
 * same process) and by O_APPEND (workers in other processes), so a
 * crash tears at most the final line — which the fold ignores.
 */
class ManifestLog
{
  public:
    explicit ManifestLog(std::string path) : path_(std::move(path))
    {
    }

    /**
     * Worker identity stamped into subsequent events (empty =
     * omitted). Display-only: `mc_campaign status` attributes
     * throughput per worker from it; the fold never reads it.
     */
    void setWorker(std::string worker)
    {
        worker_ = std::move(worker);
    }

    /**
     * Append one cell status event, stamped with the worker id (if
     * set) and the civil time; throws a typed IoError on I/O
     * failure. Failures with zero bytes landed retry with bounded
     * seeded-jitter backoff; once any byte of the record is in the
     * log, the append never retries (a re-append would merge with
     * the torn prefix into one line) and the fold's
     * last-record-marker parse discards the torn bytes instead.
     * Stamps ride as extra fields the fold ignores, so merged
     * report bytes stay schedule-independent.
     */
    void appendCell(std::size_t index, const char *status,
                    std::uint64_t attempts);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::string worker_;
    std::mutex mutex_;
};

// ---------------------------------------------------------------
// Progress-rate fold (mc_campaign status telemetry)
// ---------------------------------------------------------------

/** Observed event timing of one worker. */
struct WorkerTiming
{
    /** Cells this worker completed (`done` events it stamped). */
    std::size_t done = 0;
    /** Civil time of its earliest / latest stamped event. */
    double firstT = 0.0;
    double lastT = 0.0;
};

/** Timestamp aggregate of a manifest (all values unix seconds). */
struct ManifestTiming
{
    /** Campaign start: header stamp, else earliest event stamp. */
    double startT = 0.0;
    /** Earliest / latest `done` event stamps. */
    double firstDoneT = 0.0;
    double lastDoneT = 0.0;
    /** Total `done` events carrying a timestamp. */
    std::size_t doneEvents = 0;
    /** Per-worker attribution, insertion-ordered by first event. */
    std::vector<std::pair<std::string, WorkerTiming>> workers;

    /**
     * Completed cells per minute over the campaign so far, derived
     * purely from event stamps; 0 when the manifest predates
     * timestamps or carries fewer than the needed events.
     */
    double cellsPerMinute() const;
};

/**
 * Scan a manifest for event timestamps. Purely advisory (progress
 * lines, ETA): malformed lines and events without stamps are
 * skipped silently, and nothing here feeds deterministic output.
 */
ManifestTiming foldManifestTiming(const std::string &path);

// ---------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------

/** A fully rendered campaign report (see CampaignReport). */
struct RenderedReport
{
    std::string reportText;
    std::string statsJsonArray;
    std::size_t done = 0;
    std::size_t failed = 0;
};

/**
 * Render the canonical campaign report from per-cell outcomes.
 * Pure function of (cells, outcomes): contains no paths, timing,
 * worker identity, or attempt counts for successful cells, so a
 * serial run, a -jN run, a resumed run, and a distributed
 * mc_campaign merge all emit identical bytes.
 */
RenderedReport
renderCampaignReport(const std::vector<CampaignCell> &cells,
                     const std::vector<CellOutcome> &outcomes,
                     bool want_stats_json);

// ---------------------------------------------------------------
// Campaign plan (manifest-embedded cell recipe)
// ---------------------------------------------------------------

/**
 * The recipe that generates a campaign's cell list: a base RunSpec
 * swept over a mix range × seed replicas. Serialized into the
 * manifest as a `{"type":"plan",...}` line (the base spec rides as
 * hex-encoded saveSpec bytes, so doubles round-trip bit-exactly),
 * letting any worker process — launched from any shell or host
 * sharing the filesystem — rebuild the exact cell list, labels,
 * and seeds from the manifest alone.
 */
struct CampaignPlan
{
    /** Base spec; its workload field is replaced per cell. */
    RunSpec base;
    std::uint32_t mixLo = 1;
    std::uint32_t mixHi = 12;
    std::uint32_t sweepSeeds = 1;

    /**
     * The cell list: rep-major, mix-minor, seeds derived via
     * sweepCellSeed(base.seed, cellIndex) — byte-compatible with
     * morphcache_sim's --sweep --manifest campaigns.
     */
    std::vector<CampaignCell> cells() const;

    /** One-line JSON record for the manifest. */
    std::string jsonLine() const;
};

/**
 * Recover the plan line from a manifest. Throws CkptError when the
 * manifest has no plan (e.g. it was written by `morphcache_sim
 * --manifest`, which fixes the cell list in its command line) or
 * the plan is malformed.
 */
CampaignPlan planFromManifest(const std::string &path);

/**
 * Write a fresh manifest atomically: header, plan line, and one
 * pending event per cell. Creates the state directory and clears
 * any stale per-cell state a previous campaign under the same path
 * left behind.
 */
void initManifestWithPlan(const std::string &path,
                          const CampaignPlan &plan);

} // namespace morphcache

#endif // MORPHCACHE_RUNNER_MANIFEST_HH

/**
 * @file
 * Figure 2 — the motivation experiment.
 *
 * (a) Throughput of MIX 01 over 20 execution intervals under four
 *     static topologies, normalized per-interval to the all-shared
 *     (16:1:1) baseline. The paper's point: the best topology
 *     changes over time (curves cross).
 * (b) dedup and freqmine (16 threads each) on the same topologies:
 *     the best topology differs per application (paper: dedup peaks
 *     at (4:4:1), freqmine at (1:16:1)).
 */

#include "common.hh"

using namespace morphcache;
using namespace morphcache::bench;

namespace {

void
figure2a()
{
    const HierarchyParams hier = experimentHierarchy(16);
    const GeneratorParams gen = generatorFor(hier);
    SimParams sim = defaultSim();
    sim.epochs = 20;

    const MixSpec &mix = mixByName("MIX 01");
    const Topology shapes[] = {
        Topology::symmetric(16, 16, 1, 1),
        Topology::symmetric(16, 1, 1, 16),
        Topology::symmetric(16, 4, 4, 1),
        Topology::symmetric(16, 8, 2, 1),
        Topology::symmetric(16, 1, 16, 1),
    };

    std::vector<std::vector<double>> series;
    for (const Topology &topo : shapes) {
        const RunResult run =
            runStaticMix(mix, topo, hier, gen, sim, baseSeed());
        std::vector<double> tputs;
        for (const EpochMetrics &epoch : run.epochs)
            tputs.push_back(epoch.throughput);
        series.push_back(std::move(tputs));
    }

    std::printf("Figure 2(a): MIX 01 throughput per interval, "
                "normalized to (16:1:1)\n");
    std::printf("%-10s", "interval");
    for (const Topology &topo : shapes)
        std::printf(" %9s", topo.name().c_str());
    std::printf("   best\n");
    int lead_changes = 0;
    std::size_t prev_best = 0;
    for (std::size_t e = 0; e < series[0].size(); ++e) {
        std::printf("%-10zu", e + 1);
        std::size_t best = 0;
        for (std::size_t t = 0; t < series.size(); ++t) {
            const double norm = series[t][e] / series[0][e];
            std::printf(" %9.3f", norm);
            if (series[t][e] > series[best][e])
                best = t;
        }
        std::printf("   %s\n", shapes[best].name().c_str());
        if (e > 0 && best != prev_best)
            ++lead_changes;
        prev_best = best;
    }
    std::printf("lead changes across intervals: %d (paper: the "
                "best configuration varies with time)\n\n",
                lead_changes);
}

void
figure2b()
{
    HierarchyParams hier = experimentHierarchy(16);
    hier.coherence = true;
    const GeneratorParams gen = generatorFor(hier);
    const SimParams sim = defaultSim();

    const Topology shapes[] = {
        Topology::symmetric(16, 16, 1, 1),
        Topology::symmetric(16, 1, 1, 16),
        Topology::symmetric(16, 4, 4, 1),
        Topology::symmetric(16, 8, 2, 1),
        Topology::symmetric(16, 1, 16, 1),
    };

    std::printf("Figure 2(b): multithreaded performance "
                "(1/exec-time) normalized to (16:1:1)\n");
    std::printf("%-14s", "app");
    for (const Topology &topo : shapes)
        std::printf(" %9s", topo.name().c_str());
    std::printf("   best\n");

    for (const char *app : {"dedup", "freqmine"}) {
        std::printf("%-14s", app);
        double base = 0.0;
        std::size_t best = 0;
        std::vector<double> perfs;
        for (const Topology &topo : shapes) {
            MultithreadedWorkload workload(profileByName(app), 16,
                                           gen, baseSeed());
            StaticTopologySystem system(hier, topo);
            Simulation simulation(system, workload, sim);
            perfs.push_back(simulation.run().performance);
        }
        base = perfs[0];
        for (std::size_t t = 0; t < perfs.size(); ++t) {
            std::printf(" %9.3f", perfs[t] / base);
            if (perfs[t] > perfs[best])
                best = t;
        }
        std::printf("   %s\n", shapes[best].name().c_str());
    }
    std::printf("paper: dedup peaks at (4:4:1), freqmine at "
                "(1:16:1) — no one topology serves both\n");
}

} // namespace

int
main()
{
    figure2a();
    figure2b();
    return 0;
}

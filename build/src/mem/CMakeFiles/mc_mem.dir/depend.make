# Empty dependencies file for mc_mem.
# This may be replaced when dependencies are built.

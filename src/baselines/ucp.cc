#include "baselines/ucp.hh"

#include "common/logging.hh"

namespace morphcache {

UcpPolicy::UcpPolicy(std::uint32_t num_cores, std::uint64_t num_sets,
                     std::uint32_t num_slices, std::uint32_t assoc)
    : numCores_(num_cores), numSets_(num_sets),
      numSlices_(num_slices), assoc_(assoc),
      quota_(num_cores,
             std::max(1u, num_slices * assoc / num_cores)),
      owner_(std::size_t{num_slices} * num_sets * assoc, invalidCore)
{
    monitors_.reserve(num_cores);
    for (std::uint32_t c = 0; c < num_cores; ++c)
        monitors_.emplace_back(num_sets, num_slices * assoc);
}

std::size_t
UcpPolicy::ownerIndex(SliceId slice, std::uint64_t set,
                      std::uint32_t way) const
{
    return (std::size_t{slice} * numSets_ + set) * assoc_ + way;
}

bool
UcpPolicy::hit(CacheLevelModel &level, CoreId core, Addr line_addr,
               SliceId slice, std::uint64_t set, std::uint32_t way)
{
    (void)level;
    (void)slice;
    (void)set;
    (void)way;
    monitors_[core].access(line_addr);
    return true; // standard move-to-MRU
}

void
UcpPolicy::miss(CacheLevelModel &level, CoreId core, Addr line_addr)
{
    (void)level;
    monitors_[core].access(line_addr);
}

bool
UcpPolicy::insert(CacheLevelModel &level, CoreId core, Addr line_addr,
                  bool dirty, InsertOutcome &out)
{
    const std::uint64_t set = level.slice(0).setIndex(line_addr);

    // Survey the set: invalid ways, per-core owned counts, and the
    // LRU line per ownership class.
    SliceId invalid_slice = invalidSlice;
    std::uint32_t invalid_way = 0;
    std::vector<std::uint32_t> owned(numCores_, 0);

    SliceId own_lru_slice = invalidSlice;
    std::uint32_t own_lru_way = 0;
    std::uint64_t own_lru_stamp = ~std::uint64_t{0};

    for (std::uint32_t s = 0; s < numSlices_ && invalid_slice ==
                                                    invalidSlice;
         ++s) {
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            const CacheLine &line =
                level.slice(static_cast<SliceId>(s)).lineAt(set, w);
            if (!line.valid) {
                invalid_slice = static_cast<SliceId>(s);
                invalid_way = w;
                break;
            }
            const CoreId who = owner_[ownerIndex(
                static_cast<SliceId>(s), set, w)];
            if (who < numCores_) {
                ++owned[who];
                if (who == core && line.stamp < own_lru_stamp) {
                    own_lru_stamp = line.stamp;
                    own_lru_slice = static_cast<SliceId>(s);
                    own_lru_way = w;
                }
            }
        }
    }

    SliceId target;
    std::uint32_t target_way;
    if (invalid_slice != invalidSlice) {
        target = invalid_slice;
        target_way = invalid_way;
    } else if (owned[core] >= quota_[core] &&
               own_lru_slice != invalidSlice) {
        // At quota: replace own LRU line.
        target = own_lru_slice;
        target_way = own_lru_way;
    } else {
        // Under quota: take the LRU line of an over-quota core
        // (global LRU as the fallback).
        SliceId lru_slice = invalidSlice;
        std::uint32_t lru_way = 0;
        std::uint64_t lru_stamp = ~std::uint64_t{0};
        SliceId over_slice = invalidSlice;
        std::uint32_t over_way = 0;
        std::uint64_t over_stamp = ~std::uint64_t{0};
        for (std::uint32_t s = 0; s < numSlices_; ++s) {
            for (std::uint32_t w = 0; w < assoc_; ++w) {
                const CacheLine &line =
                    level.slice(static_cast<SliceId>(s))
                        .lineAt(set, w);
                if (!line.valid)
                    continue;
                if (line.stamp < lru_stamp) {
                    lru_stamp = line.stamp;
                    lru_slice = static_cast<SliceId>(s);
                    lru_way = w;
                }
                const CoreId who = owner_[ownerIndex(
                    static_cast<SliceId>(s), set, w)];
                if (who < numCores_ && owned[who] > quota_[who] &&
                    line.stamp < over_stamp) {
                    over_stamp = line.stamp;
                    over_slice = static_cast<SliceId>(s);
                    over_way = w;
                }
            }
        }
        if (over_slice != invalidSlice) {
            target = over_slice;
            target_way = over_way;
        } else {
            MC_ASSERT(lru_slice != invalidSlice);
            target = lru_slice;
            target_way = lru_way;
        }
    }

    out = level.fillAt(core, target, target_way, line_addr, dirty);
    owner_[ownerIndex(target, set, target_way)] = core;
    return true;
}

void
UcpPolicy::epochBoundary()
{
    quota_ = lookaheadAllocate(monitors_, numSlices_ * assoc_);
    for (auto &monitor : monitors_)
        monitor.decay();
}

std::uint32_t
UcpPolicy::quota(CoreId core) const
{
    MC_ASSERT(core < quota_.size());
    return quota_[core];
}

namespace {

HierarchyParams
sharedUcp(HierarchyParams params)
{
    params.l2.chargeBusPenalty = false;
    params.l3.chargeBusPenalty = false;
    // Like PIPP: evaluated as a conventional shared-cache design,
    // non-inclusive as originally proposed.
    params.inclusive = false;
    return params;
}

} // namespace

UcpSystem::UcpSystem(HierarchyParams params)
    : hierarchy_(sharedUcp(std::move(params))),
      l2Policy_(hierarchy_.numCores(),
                hierarchy_.params().l2.sliceGeom.numSets(),
                hierarchy_.numCores(),
                hierarchy_.params().l2.sliceGeom.assoc),
      l3Policy_(hierarchy_.numCores(),
                hierarchy_.params().l3.sliceGeom.numSets(),
                hierarchy_.numCores(),
                hierarchy_.params().l3.sliceGeom.assoc)
{
    Topology topo;
    topo.numCores = hierarchy_.numCores();
    topo.l2 = allShared(hierarchy_.numCores());
    topo.l3 = allShared(hierarchy_.numCores());
    hierarchy_.reconfigure(topo);
    hierarchy_.l2().setHooks(&l2Policy_);
    hierarchy_.l3().setHooks(&l3Policy_);
}

AccessResult
UcpSystem::access(const MemAccess &access, Cycle now)
{
    return hierarchy_.access(access, now);
}

void
UcpSystem::epochBoundary()
{
    l2Policy_.epochBoundary();
    l3Policy_.epochBoundary();
}

const CoreStats &
UcpSystem::coreStats(CoreId core) const
{
    return hierarchy_.coreStats(core);
}

std::uint32_t
UcpSystem::numCores() const
{
    return hierarchy_.numCores();
}

} // namespace morphcache

/**
 * @file
 * Shared plumbing for the paper-experiment bench binaries.
 *
 * Every bench prints the rows/series of one table or figure from
 * the paper, normalized the way the paper normalizes them, next to
 * the paper's published values where point comparisons exist.
 *
 * Environment knobs:
 *   MC_PAPER_SCALE=1  run Table 3 capacities verbatim (slow)
 *   MC_EPOCHS=N       recorded epochs per run (default 12)
 *   MC_REFS=N         references per core per epoch (default 24000)
 *   MC_SEED=N         base RNG seed (default 42)
 *   MC_JOBS=N         worker threads for the per-mix sweep loops
 *                     (default: all hardware threads; 1 = serial)
 */

#ifndef MORPHCACHE_BENCH_COMMON_HH
#define MORPHCACHE_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/dsr.hh"
#include "baselines/ideal_offline.hh"
#include "baselines/pipp.hh"
#include "runner/sweep.hh"
#include "sim/config.hh"
#include "sim/simulation.hh"
#include "workload/generator.hh"

namespace morphcache {
namespace bench {

inline std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value && value[0] ? std::strtoull(value, nullptr, 10)
                             : fallback;
}

inline SimParams
defaultSim()
{
    SimParams sim;
    sim.epochs = static_cast<std::uint32_t>(envOr("MC_EPOCHS", 12));
    sim.warmupEpochs = 2;
    sim.refsPerEpochPerCore = envOr("MC_REFS", 24000);
    return sim;
}

inline std::uint64_t
baseSeed()
{
    return envOr("MC_SEED", 42);
}

/** Bench worker-thread count (0 = all hardware threads). */
inline unsigned
benchJobs()
{
    return static_cast<unsigned>(envOr("MC_JOBS", 0));
}

/**
 * Fan `fn(i)` for i in [0, n) across MC_JOBS workers and return the
 * results in index order. Each call is one independent simulation
 * cell (own workload, hierarchy, stats), so the printed figures are
 * byte-identical to the serial loop this replaces.
 */
template <typename Fn>
auto
parallelRows(std::size_t n, Fn fn)
{
    SweepRunner runner(benchJobs());
    return runner.map(n, fn);
}

/** Per-mix dispatch: runs `fn(m)` for mixes m in [1, num_mixes]. */
template <typename Fn>
auto
forEachMix(int num_mixes, Fn fn)
{
    return parallelRows(static_cast<std::size_t>(num_mixes),
                        [&fn](std::size_t i) {
                            return fn(static_cast<int>(i) + 1);
                        });
}

/** The five static topologies the paper evaluates, baseline first. */
inline std::vector<Topology>
paperStaticTopologies()
{
    return {
        Topology::symmetric(16, 16, 1, 1), // (16:1:1) baseline
        Topology::symmetric(16, 1, 1, 16), // (1:1:16)
        Topology::symmetric(16, 4, 4, 1),  // (4:4:1)
        Topology::symmetric(16, 8, 2, 1),  // (8:2:1)
        Topology::symmetric(16, 1, 16, 1), // (1:16:1)
    };
}

/** One mix under one static topology: run metrics. */
inline RunResult
runStaticMix(const MixSpec &mix, const Topology &topology,
             const HierarchyParams &hier, const GeneratorParams &gen,
             const SimParams &sim, std::uint64_t seed)
{
    MixWorkload workload(mix, gen, seed);
    StaticTopologySystem system(hier, topology);
    Simulation simulation(system, workload, sim);
    return simulation.run();
}

/** One mix under MorphCache. */
inline RunResult
runMorphMix(const MixSpec &mix, const HierarchyParams &hier,
            const GeneratorParams &gen, const SimParams &sim,
            std::uint64_t seed, const MorphConfig &config,
            ReconfigStats *stats_out = nullptr,
            std::string *final_topology = nullptr)
{
    MixWorkload workload(mix, gen, seed);
    MorphCacheSystem system(hier, config);
    Simulation simulation(system, workload, sim);
    RunResult result = simulation.run();
    if (stats_out)
        *stats_out = system.controller().stats();
    if (final_topology)
        *final_topology = system.hierarchy().topology().name();
    return result;
}

/** Print a labelled series of per-mix normalized values. */
inline void
printSeries(const char *label,
            const std::vector<double> &values)
{
    std::printf("%-12s", label);
    double sum = 0.0;
    for (double v : values) {
        std::printf(" %6.3f", v);
        sum += v;
    }
    if (!values.empty())
        std::printf("  | avg %6.3f",
                    sum / static_cast<double>(values.size()));
    std::printf("\n");
}

inline void
printMixHeader()
{
    std::printf("%-12s", "scheme");
    for (int m = 1; m <= 12; ++m)
        std::printf("  Mix%02d", m);
    std::printf("  |    avg\n");
}

} // namespace bench
} // namespace morphcache

#endif // MORPHCACHE_BENCH_COMMON_HH

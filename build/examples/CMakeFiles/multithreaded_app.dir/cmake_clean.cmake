file(REMOVE_RECURSE
  "CMakeFiles/multithreaded_app.dir/multithreaded_app.cpp.o"
  "CMakeFiles/multithreaded_app.dir/multithreaded_app.cpp.o.d"
  "multithreaded_app"
  "multithreaded_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multithreaded_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

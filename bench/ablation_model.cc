/**
 * @file
 * Ablations of the reproduction's own modelling choices (the
 * DESIGN.md deviations), so every substitution's effect is
 * measurable rather than asserted:
 *
 *  1. Static-latency model: remote-hit premium charged to static
 *     topologies (this repo's default) versus the paper's flat
 *     10/30-cycle idealization.
 *  2. Replacement policy: tree pseudo-LRU (default) versus exact
 *     timestamp LRU across merged ways.
 *  3. Segmented-bus accounting: split-transaction occupancy
 *     (default) versus serialized whole transactions.
 *  4. L3 MSAT calibration sensitivity.
 */

#include "common.hh"

using namespace morphcache;
using namespace morphcache::bench;

namespace {

double
staticAvg(const HierarchyParams &hier, const Topology &topo,
          const SimParams &sim, const GeneratorParams &gen,
          bool charge)
{
    double sum = 0.0;
    const int mixes[] = {1, 5, 8, 9};
    for (int m : mixes) {
        char name[16];
        std::snprintf(name, sizeof(name), "MIX %02d", m);
        MixWorkload workload(mixByName(name), gen, baseSeed() + m);
        StaticTopologySystem system(hier, topo, charge);
        Simulation simulation(system, workload, sim);
        sum += simulation.run().avgThroughput;
    }
    return sum / std::size(mixes);
}

double
morphAvg(const HierarchyParams &hier, const SimParams &sim,
         const GeneratorParams &gen, const MorphConfig &config)
{
    double sum = 0.0;
    const int mixes[] = {1, 5, 8, 9};
    for (int m : mixes) {
        char name[16];
        std::snprintf(name, sizeof(name), "MIX %02d", m);
        sum += runMorphMix(mixByName(name), hier, gen, sim,
                           baseSeed() + m, config)
                   .avgThroughput;
    }
    return sum / std::size(mixes);
}

} // namespace

int
main()
{
    const HierarchyParams hier = experimentHierarchy(16);
    const GeneratorParams gen = generatorFor(hier);
    const SimParams sim = defaultSim();

    std::printf("Model ablations (avg throughput over MIX 01/05/08/"
                "09)\n\n");

    std::printf("1) static-topology latency model:\n");
    for (auto [x, y, z] : {std::tuple{16, 1, 1}, {4, 4, 1}}) {
        const Topology topo = Topology::symmetric(16, x, y, z);
        std::printf("   %-9s charged-remote %7.3f   paper-flat "
                    "%7.3f\n",
                    topo.name().c_str(),
                    staticAvg(hier, topo, sim, gen, true),
                    staticAvg(hier, topo, sim, gen, false));
    }

    std::printf("\n2) replacement policy under MorphCache:\n");
    {
        const double plru = morphAvg(hier, sim, gen, MorphConfig{});
        HierarchyParams lru = hier;
        lru.l2.policy = ReplPolicy::LRU;
        lru.l3.policy = ReplPolicy::LRU;
        const double exact = morphAvg(lru, sim, gen, MorphConfig{});
        std::printf("   tree-PLRU (default) %7.3f   exact LRU "
                    "%7.3f\n",
                    plru, exact);
    }

    std::printf("\n3) segmented-bus occupancy accounting:\n");
    {
        const double split = morphAvg(hier, sim, gen, MorphConfig{});
        HierarchyParams serial = hier;
        serial.l2.bus.splitTransaction = false;
        serial.l2.bus.occupancyCpuCyclesOverride = 0;
        serial.l3.bus.splitTransaction = false;
        serial.l3.bus.occupancyCpuCyclesOverride = 0;
        const double whole = morphAvg(serial, sim, gen,
                                      MorphConfig{});
        std::printf("   split-transaction %7.3f   serialized "
                    "%7.3f\n",
                    split, whole);
    }

    std::printf("\n4) L3 MSAT sensitivity (high, low):\n");
    for (auto [h, l] : {std::tuple{0.35, 0.12}, {0.26, 0.20},
                        {0.20, 0.16}}) {
        MorphConfig config;
        config.msatL3 = MsatConfig{h, l};
        std::printf("   (%.2f, %.2f) -> %7.3f\n", h, l,
                    morphAvg(hier, sim, gen, config));
    }
    return 0;
}

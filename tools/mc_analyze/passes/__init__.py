"""Analysis passes over the merged semantic model."""

from passes.common import Index
from passes.wrap_safety import run_wrap_safety
from passes.serialization import run_serialization
from passes.determinism import run_determinism
from passes.concurrency import run_concurrency

#: check name -> pass entry point(index, scope) -> [Finding]
ALL_PASSES = {
    "wrap-safety": run_wrap_safety,
    "serialization": run_serialization,
    "determinism": run_determinism,
    "concurrency": run_concurrency,
}

__all__ = ["Index", "ALL_PASSES"]

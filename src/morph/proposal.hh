/**
 * @file
 * The pure decision layer of the MorphCache controller.
 *
 * One epoch decision is a *function*: given the current topology and
 * the classification signals of both reconfigurable levels, it
 * produces a transition proposal — the new topology plus the ordered
 * list of merge/split events that justify it. MorphController's
 * `proposeTransition()` computes exactly that function with no
 * hidden state mutation, which is what lets two very different
 * callers share one code path:
 *
 *  - the simulator (MorphController::epochBoundary) feeds it live
 *    ACFV readings through CacheLevelSignals and replays the events
 *    into its activity counters and the provenance tracer;
 *  - the static model checker (src/check/model_checker.hh) feeds it
 *    synthetic signals that systematically enumerate every possible
 *    MSAT classification outcome, and proves that no reachable
 *    proposal violates the structural invariants.
 *
 * Everything the decision reads is in DecisionInputs; everything it
 * decides is in TransitionProposal.
 */

#ifndef MORPHCACHE_MORPH_PROPOSAL_HH
#define MORPHCACHE_MORPH_PROPOSAL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "hierarchy/topology.hh"

namespace morphcache {

class CacheLevelModel;
class FaultInjector;

/**
 * Merge/Split Aggressiveness Threshold (Section 2.2).
 *
 * The paper's value (60, 30) is a bit-count bound on 128-bit
 * ACFVs; expressed as set-bit fractions that is (60/128, 30/128).
 */
struct MsatConfig
{
    /** Utilization above which a group counts as highly utilized. */
    double high = 60.0 / 128.0;
    /** Utilization below which a group counts as under-utilized. */
    double low = 30.0 / 128.0;
};

/** Signals one merge evaluation consumes, read in one shot. */
struct MergeSignals
{
    double utilA = 0.0;
    double utilB = 0.0;
    double fillPressureA = 0.0;
    double fillPressureB = 0.0;
};

/** Signals one split evaluation consumes (the group's two halves). */
struct SplitSignals
{
    double utilFirst = 0.0;
    double utilSecond = 0.0;
};

/**
 * Classification-signal source for one reconfigurable level.
 *
 * The decision logic never touches a CacheLevelModel directly; it
 * reads these queries. CacheLevelSignals adapts the live ACFV bank,
 * the model checker's oracle enumerates answers.
 */
class LevelSignals
{
  public:
    virtual ~LevelSignals() = default;

    /** Signals for a candidate merge of groups `a` and `b`. */
    virtual MergeSignals
    mergeSignals(const std::vector<SliceId> &a,
                 const std::vector<SliceId> &b) const = 0;

    /** Signals for a candidate split into `first` and `second`. */
    virtual SplitSignals
    splitSignals(const std::vector<SliceId> &first,
                 const std::vector<SliceId> &second) const = 0;

    /**
     * Footprint-overlap statistic between two slice sets (consulted
     * lazily, only when the sharing test needs it).
     */
    virtual double overlap(const std::vector<SliceId> &a,
                           const std::vector<SliceId> &b) const = 0;

    /** Plain utilization (provenance evidence of forced merges). */
    virtual double
    utilization(const std::vector<SliceId> &slices) const = 0;
};

/** LevelSignals over the live ACFV bank of a cache level. */
class CacheLevelSignals final : public LevelSignals
{
  public:
    explicit CacheLevelSignals(const CacheLevelModel &model)
        : model_(model)
    {
    }

    MergeSignals
    mergeSignals(const std::vector<SliceId> &a,
                 const std::vector<SliceId> &b) const override;
    SplitSignals
    splitSignals(const std::vector<SliceId> &first,
                 const std::vector<SliceId> &second) const override;
    double overlap(const std::vector<SliceId> &a,
                   const std::vector<SliceId> &b) const override;
    double
    utilization(const std::vector<SliceId> &slices) const override;

  private:
    const CacheLevelModel &model_;
};

/** Why a merge was (un)desirable, with the ACF evidence. */
struct MergeEval
{
    bool desirable = false;
    /**
     * 0 = none; 1 = condition (i) capacity sharing; 2 = condition
     * (ii) data sharing; 3 = injected classification fault inverted
     * the decision.
     */
    int condition = 0;
    double utilA = 0.0;
    double utilB = 0.0;
    double overlap = 0.0;
};

/** Split evidence: the two halves' utilizations and overlap. */
struct SplitEval
{
    bool desirable = false;
    bool faultInverted = false;
    double utilFirst = 0.0;
    double utilSecond = 0.0;
    double overlap = 0.0;
};

/** One merge/split decided during an epoch decision, in order. */
struct ProposalEvent
{
    enum class Kind : std::uint8_t {
        /** ACF-driven merge of two L2 groups. */
        L2Merge,
        /** ACF-driven merge of two L3 groups. */
        L3Merge,
        /** L3 merge forced structurally by an L2 merge (inclusion). */
        ForcedL3Merge,
        /** ACF-driven split of an L2 group. */
        L2Split,
        /** ACF-driven split of an L3 group. */
        L3Split,
        /** L2 split forced structurally by an L3 split (inclusion). */
        ForcedL2Split,
    };

    Kind kind;
    /** Merge: range of group a. Split: range of the whole group. */
    SliceId aFirst = 0;
    SliceId aLast = 0;
    /** Merge only: range of group b. */
    SliceId bFirst = 0;
    SliceId bLast = 0;
    /** Evidence for merge kinds. */
    MergeEval merge;
    /** Evidence for split kinds. */
    SplitEval split;
    /**
     * The intermediate topology right after this event was not
     * expressible as (x:y:z) (only computed when
     * DecisionInputs::classifyOutcomes is set).
     */
    bool asymmetric = false;
};

/** Human-readable one-line description of an event. */
std::string proposalEventName(const ProposalEvent &event);

/**
 * Deliberately planted decision-rule bugs.
 *
 * The model checker's mutation mode (`mc_modelcheck
 * --inject-rule-bug`) enables one of these and asserts that a
 * counterexample is found — proving the checker can actually detect
 * a decision-engine defect. The simulator never sets them.
 */
enum class RuleBug : std::uint8_t {
    None,
    /** Drop the covering-L3 merge an L2 merge requires (§2.2). */
    SkipForcedL3Merge,
    /** Accept merges of non-buddy (unaligned) groups. */
    IgnoreAlignment,
    /** Split an L3 group without splitting straddling L2s (§2.3). */
    SkipForcedL2Split,
};

/** Parse a rule-bug name or ordinal; throws ConfigError. */
RuleBug ruleBugFromName(const std::string &name);

/** Lower-case name of a rule bug. */
const char *ruleBugName(RuleBug bug);

/**
 * Everything one epoch decision reads. The decision is a pure
 * function of these inputs (the two optional effect handles —
 * `faults` and `phaseCheck` — are explicit parameters, never hidden
 * state).
 */
struct DecisionInputs
{
    /** Classification signals of the two reconfigurable levels. */
    const LevelSignals *l2 = nullptr;
    const LevelSignals *l3 = nullptr;
    /** Thresholds in effect this epoch (post QoS throttling). */
    MsatConfig msatL2;
    MsatConfig msatL3;
    /** Ordinal of this decision (split hysteresis). */
    std::uint64_t decisionIndex = 0;
    /**
     * Per-slice decision stamps of the last merge (split
     * hysteresis); nullptr disables the hysteresis entirely.
     */
    const std::vector<std::uint64_t> *l2MergeStamps = nullptr;
    const std::vector<std::uint64_t> *l3MergeStamps = nullptr;
    /**
     * Classification-corruption fault injection (explicit effect;
     * nullptr = no faults).
     */
    FaultInjector *faults = nullptr;
    /**
     * Invariant gate between decision phases: called with the
     * intermediate partitions; returning true abandons the
     * decision at that phase (explicit effect; empty = no gate).
     */
    std::function<bool(const Partition &l2, const Partition &l3,
                       const char *phase)>
        phaseCheck;
    /**
     * Compute trace evidence (utilizations) for structurally forced
     * merges. The simulator sets this when a tracer is attached.
     */
    bool provenance = false;
    /**
     * Compute the per-event (a)symmetry flags. The simulator needs
     * them for the Section 2.4 counters; the model checker skips
     * the cost.
     */
    bool classifyOutcomes = true;
    /** Planted rule mutation (model-checker teeth; None in the sim). */
    RuleBug ruleBug = RuleBug::None;
};

/** What one epoch decision decided. */
struct TransitionProposal
{
    /** Proposed partitions. */
    Partition l2;
    Partition l3;
    /** Parallel flags: group was formed by a merge this epoch. */
    std::vector<char> l2MergedNow;
    std::vector<char> l3MergedNow;
    /** Event tallies (== counts of the merge/split events). */
    std::uint64_t merges = 0;
    std::uint64_t splits = 0;
    /** Ordered merge/split events with their evidence. */
    std::vector<ProposalEvent> events;
    /** Phase at which the phaseCheck gate abandoned the decision. */
    const char *abandonedPhase = nullptr;

    bool abandoned() const { return abandonedPhase != nullptr; }
};

} // namespace morphcache

#endif // MORPHCACHE_MORPH_PROPOSAL_HH

/**
 * @file
 * Unit tests for the workload database and the synthetic reference
 * generators.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <cmath>
#include <set>
#include <unordered_set>

#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace morphcache {
namespace {

/**
 * Regression for a latent wrap: chunkLines <= stride holds by
 * construction, but if a future layout violates it the scatter
 * room must saturate to 1 (no scatter) rather than computing a
 * ~2^64 modulus that sprays addresses across the whole 64-bit
 * space. Every address stays inside the granule tiling either way.
 */
TEST(Generator, WorkingSetScatterSaturatesWhenChunksExceedStride)
{
    WorkingSet ws;
    ws.base = 0;
    ws.chunkCount = 4;
    ws.chunkLines = 8;
    ws.stride = 4; // violated invariant: chunkLines > stride
    for (std::uint64_t pos = 0; pos < ws.lines(); ++pos) {
        EXPECT_LT(ws.lineAt(pos), ws.spanLines() + ws.chunkLines)
            << "pos " << pos;
    }
}

TEST(Profiles, Table4Counts)
{
    EXPECT_EQ(specProfiles().size(), 29u);   // all of SPEC CPU 2006
    EXPECT_EQ(parsecProfiles().size(), 12u); // all of PARSEC
}

TEST(Profiles, SpotCheckTable4Values)
{
    const auto &hmmer = profileByName("hmmer");
    EXPECT_DOUBLE_EQ(hmmer.l2Acf, 0.31);
    EXPECT_DOUBLE_EQ(hmmer.l3Acf, 0.69);
    EXPECT_EQ(hmmer.cls, 1);

    const auto &dedup = profileByName("dedup");
    EXPECT_TRUE(dedup.multithreaded);
    EXPECT_DOUBLE_EQ(dedup.l3Acf, 0.74);
    EXPECT_DOUBLE_EQ(dedup.l3SigmaS, 0.12);
}

TEST(Profiles, ClassesMatchAcfThresholds)
{
    // The paper classifies by low/high L2 and L3 ACF around 0.5:
    // class = 2*(L2 high) + (L3 high) re-derived from the values.
    for (const auto &profile : specProfiles()) {
        const int expected = 2 * (profile.l2Acf >= 0.5) +
                             (profile.l3Acf >= 0.5);
        EXPECT_EQ(profile.cls, expected) << profile.name;
    }
}

TEST(Profiles, MixCensusMatchesClasses)
{
    // Table 5's (c0,c1,c2,c3) census must match the Table 4
    // classes of the member benchmarks.
    for (const auto &mix : mixSpecs()) {
        ASSERT_EQ(mix.benchmarks.size(), 16u) << mix.name;
        int census[4] = {0, 0, 0, 0};
        for (const char *name : mix.benchmarks) {
            const auto &profile = profileByName(name);
            ASSERT_GE(profile.cls, 0) << name;
            ++census[profile.cls];
        }
        for (int c = 0; c < 4; ++c)
            EXPECT_EQ(census[c], mix.census[c])
                << mix.name << " class " << c;
    }
}

TEST(Profiles, TwelveMixes)
{
    EXPECT_EQ(mixSpecs().size(), 12u);
    EXPECT_STREQ(mixByName("MIX 07").name, "MIX 07");
}

GeneratorParams
smallGen()
{
    GeneratorParams params;
    params.l2SliceLines = 512;
    params.l3SliceLines = 2048;
    return params;
}

TEST(Generator, Deterministic)
{
    CoreRefGenerator a(profileByName("gcc"), 0, smallGen(), 7);
    CoreRefGenerator b(profileByName("gcc"), 0, smallGen(), 7);
    for (int i = 0; i < 1000; ++i) {
        const MemAccess x = a.next();
        const MemAccess y = b.next();
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.type, y.type);
    }
}

TEST(Generator, FootprintScalesWithAcf)
{
    // A high-ACF benchmark must carry a bigger *reused* working set
    // than a low-ACF one (the streamer touches many unique lines,
    // but they are not part of its active footprint).
    auto working_set = [](const char *name) {
        CoreRefGenerator gen(profileByName(name), 0, smallGen(), 7);
        std::uint64_t sum = 0;
        for (int e = 0; e < 50; ++e) {
            gen.beginEpoch(static_cast<EpochId>(e));
            sum += gen.hotLines() + gen.midLines();
        }
        return sum;
    };
    EXPECT_GT(working_set("cactusADM"), // L2 ACF 0.74
              working_set("libquantum")); // L2 ACF 0.26
}

TEST(Generator, WorkingSetIsDispersedAcrossTags)
{
    // The hot set must spread over ~acf*128 tag granules so the
    // ACFV sees it (Section 2.1 mechanism).
    CoreRefGenerator gen(profileByName("gobmk"), 0, smallGen(), 7);
    gen.beginEpoch(3);
    const std::uint64_t granule = 512 * 16 / 128; // 64 lines
    std::unordered_set<Addr> granules;
    for (int i = 0; i < 40000; ++i)
        granules.insert((gen.next().addr >> 6) / granule);
    // gobmk: L2 ACF 0.73 -> ~93 hot granules, plus mid/stream.
    EXPECT_GT(granules.size(), 60u);
    EXPECT_LT(granules.size(), 400u);
}

TEST(Generator, HotSetSizedByProfile)
{
    GeneratorParams params = smallGen();
    params.lowPhaseEnterProb = 0.0; // isolate the sizing rule
    CoreRefGenerator gen(profileByName("gobmk"), 0, params, 7);
    // Average over epochs: the hot set follows the scaled demand
    // inversion of the benchmark's L2 ACF (0.73 for gobmk).
    double sum = 0.0;
    const int epochs = 200;
    for (int e = 0; e < epochs; ++e) {
        gen.beginEpoch(static_cast<EpochId>(e));
        sum += static_cast<double>(gen.hotLines());
    }
    const double expected =
        params.demandScale * -std::log(1.0 - 0.73) * 512;
    EXPECT_NEAR(sum / epochs, expected, expected * 0.15);
}

TEST(Generator, TemporalVariationFollowsSigma)
{
    // hmmer (sigma_t 0.19) must vary its hot set across epochs much
    // more than calculix (sigma_t 0.02).
    auto hot_stddev = [](const char *name) {
        GeneratorParams params = smallGen();
        params.lowPhaseEnterProb = 0.0; // isolate sigma_t
        CoreRefGenerator gen(profileByName(name), 0, params, 7);
        std::vector<double> sizes;
        for (int e = 0; e < 300; ++e) {
            gen.beginEpoch(static_cast<EpochId>(e));
            sizes.push_back(static_cast<double>(gen.hotLines()));
        }
        double mean = 0.0;
        for (double s : sizes)
            mean += s;
        mean /= static_cast<double>(sizes.size());
        double var = 0.0;
        for (double s : sizes)
            var += (s - mean) * (s - mean);
        return var / static_cast<double>(sizes.size());
    };
    EXPECT_GT(hot_stddev("hmmer"), 4.0 * hot_stddev("calculix"));
}

TEST(Generator, WritesRoughlyAtConfiguredFraction)
{
    CoreRefGenerator gen(profileByName("mcf"), 0, smallGen(), 7);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += gen.next().type == AccessType::Write;
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.25, 0.02);
}

TEST(MixWorkload, DisjointAddressSpaces)
{
    MixWorkload mix(mixByName("MIX 01"), smallGen(), 7);
    EXPECT_EQ(mix.numCores(), 16u);
    EXPECT_FALSE(mix.sharedAddressSpace());
    std::set<Addr> seen[16];
    for (int i = 0; i < 2000; ++i) {
        for (CoreId c = 0; c < 16; ++c)
            seen[c].insert(mix.next(c).addr >> 6);
    }
    for (int a = 0; a < 16; ++a) {
        for (int b = a + 1; b < 16; ++b) {
            std::vector<Addr> overlap;
            std::set_intersection(seen[a].begin(), seen[a].end(),
                                  seen[b].begin(), seen[b].end(),
                                  std::back_inserter(overlap));
            EXPECT_TRUE(overlap.empty())
                << "cores " << a << " and " << b;
        }
    }
}

TEST(MixWorkload, CoreRunsItsAssignedBenchmark)
{
    const MixSpec &spec = mixByName("MIX 03");
    MixWorkload mix(spec, smallGen(), 7);
    for (CoreId c = 0; c < 16; ++c) {
        EXPECT_STREQ(mix.core(c).profile().name, spec.benchmarks[c]);
    }
}

TEST(MultithreadedWorkload, ThreadsShareData)
{
    MultithreadedWorkload app(profileByName("dedup"), 16, smallGen(),
                              7);
    EXPECT_TRUE(app.sharedAddressSpace());
    app.beginEpoch(1);
    std::set<Addr> t0, t1;
    for (int i = 0; i < 20000; ++i) {
        t0.insert(app.next(0).addr >> 6);
        t1.insert(app.next(1).addr >> 6);
    }
    std::vector<Addr> overlap;
    std::set_intersection(t0.begin(), t0.end(), t1.begin(), t1.end(),
                          std::back_inserter(overlap));
    // dedup has sharedFraction 0.5: substantial overlap expected.
    EXPECT_GT(overlap.size(), 100u);
}

TEST(MultithreadedWorkload, LowSharingAppOverlapsLess)
{
    auto overlap_count = [](const char *name) {
        MultithreadedWorkload app(profileByName(name), 16,
                                  smallGen(), 7);
        app.beginEpoch(1);
        std::set<Addr> t0, t1;
        for (int i = 0; i < 10000; ++i) {
            t0.insert(app.next(0).addr >> 6);
            t1.insert(app.next(1).addr >> 6);
        }
        std::vector<Addr> overlap;
        std::set_intersection(t0.begin(), t0.end(), t1.begin(),
                              t1.end(), std::back_inserter(overlap));
        return overlap.size();
    };
    EXPECT_GT(overlap_count("dedup"),        // sharedFraction 0.5
              2 * overlap_count("swaptions")); // 0.1
}

TEST(Workload, CloneReplaysIdentically)
{
    MixWorkload mix(mixByName("MIX 02"), smallGen(), 7);
    // Advance a bit first.
    for (int i = 0; i < 500; ++i)
        mix.next(3);
    const std::unique_ptr<Workload> copy = mix.clone();
    copy->beginEpoch(5);
    mix.beginEpoch(5);
    for (int i = 0; i < 1000; ++i) {
        for (CoreId c = 0; c < 16; ++c)
            EXPECT_EQ(mix.next(c).addr, copy->next(c).addr);
    }
}

} // namespace
} // namespace morphcache

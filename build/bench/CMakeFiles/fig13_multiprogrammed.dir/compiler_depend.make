# Empty compiler generated dependencies file for fig13_multiprogrammed.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig15_ideal_offline.
# This may be replaced when dependencies are built.

/**
 * @file
 * morphcache_sim — command-line driver for the simulator.
 *
 * Runs any workload under any scheme and reports throughput, IPCs,
 * and reconfiguration activity; optionally dumps per-epoch series
 * as CSV.
 *
 * Usage:
 *   morphcache_sim [options]
 *     --workload mix:<1..12> | parsec:<name> | trace:<file>
 *                                        (default mix:8)
 *     --scheme morph | static:<x>:<y>:<z> | pipp | dsr | ucp
 *                                        (default morph)
 *     --cores N          core count (default 16)
 *     --epochs N         recorded epochs (default 12)
 *     --refs N           references per core per epoch (default 24000)
 *     --seed N           RNG seed (default 42)
 *     --paper-scale      Table 3 capacities verbatim
 *     --csv FILE         dump per-epoch throughput/misses as CSV
 *     --record FILE      record the workload to a trace file and exit
 *
 * Sweep mode (deterministic parallel experiment runner):
 *     --sweep            run a mix × seed sweep of the chosen
 *                        scheme instead of a single run; stdout is
 *                        byte-identical for any --jobs value
 *     --mixes A-B        mix range swept (default 1-12)
 *     --sweep-seeds K    seed replicas per mix (default 1); cell
 *                        seeds derive from --seed via
 *                        splitMix64(seed ^ cellIndex)
 *     --jobs N           worker threads (default: all hardware
 *                        threads)
 *     with --stats-out FILE, writes a JSON array holding every
 *     cell's stats registry, in cell order
 *
 * Checkpoint/restore and resumable campaigns:
 *     --checkpoint FILE  write checkpoints to FILE (atomic
 *                        write-then-rename; previous kept as .prev)
 *     --restore FILE     restore from FILE (falls back to .prev)
 *                        before running; resumed output is
 *                        byte-identical to an uninterrupted run
 *     --ckpt-every N     checkpoint every N recorded epochs
 *                        (default: only at interrupt/completion)
 *     --manifest FILE    with --sweep: run as a resumable campaign
 *                        recording progress in a JSONL manifest
 *                        (state dir FILE.d/)
 *     --resume FILE      resume a campaign manifest: done cells are
 *                        replayed from result files, in-progress
 *                        cells restore from their checkpoints
 *     --retry-cells K    extra tries for failed cells (exponential
 *                        backoff)
 *     --cell-timeout SEC wall-clock watchdog per cell try
 *     SIGINT/SIGTERM checkpoint in-flight state and exit 75
 *     (resumable); rerun with --restore / --resume to finish.
 *
 * Observability options:
 *     --trace FILE       decision-provenance event trace
 *     --trace-format F   jsonl (default) | chrome (about://tracing)
 *     --trace-summary FILE   summarize a JSONL trace (per-epoch
 *                            event counts) and exit
 *     --stats-out FILE   dump the stats registry; .csv extension
 *                        selects CSV, anything else JSON
 *     --stats-epochs     print the per-epoch registry CSV to stdout
 *     --profile          enable phase profiling and report it
 *     -v / -q            verbose / quiet logging (MC_LOG_LEVEL env
 *                        sets the default)
 *
 * Robustness options (morph scheme):
 *     --check off|log|recover|abort   invariant-check policy
 *                                        (default off)
 *     --quarantine N     clean epochs held in the all-private
 *                        quarantine topology before re-entering
 *                        adaptation (default 4)
 *     --inject-seed N        fault-injection RNG seed (default 1)
 *     --inject-acfv N        ACFV bits flipped per level per epoch
 *     --inject-class P       probability a classification inverts
 *     --inject-illegal P     probability an epoch's proposal is
 *                            corrupted into an illegal topology
 *     --inject-bus-drop P    probability a bus grant is dropped
 *     --inject-bus-delay P   probability a bus grant is delayed
 *
 * Examples:
 *   morphcache_sim --workload mix:8 --scheme morph
 *   morphcache_sim --workload parsec:dedup --scheme static:4:4:1
 *   morphcache_sim --workload mix:1 --record mix01.mctrace
 *   morphcache_sim --workload trace:mix01.mctrace --scheme dsr
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "check/fault.hh"
#include "check/invariant.hh"
#include "ckpt/ckpt.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "perf/clock.hh"
#include "runner/campaign.hh"
#include "runner/run_factory.hh"
#include "runner/sim_sweep.hh"
#include "sim/config.hh"
#include "sim/simulation.hh"
#include "stats/profiler.hh"
#include "stats/registry.hh"
#include "stats/report.hh"
#include "stats/tracing.hh"
#include "workload/trace.hh"

using namespace morphcache;

namespace {

struct Options
{
    /** Everything that changes simulated behaviour. */
    RunSpec spec;
    std::string csvPath;
    std::string recordPath;
    std::string tracePath;
    std::string traceFormat = "jsonl";
    std::string traceSummaryPath;
    std::string statsOutPath;
    bool statsEpochs = false;
    bool profile = false;
    bool sweep = false;
    std::uint32_t mixLo = 1;
    std::uint32_t mixHi = 12;
    std::uint32_t sweepSeeds = 1;
    /** Worker threads; 0 = hardware_concurrency. */
    unsigned jobs = 0;
    /** Single-run: write checkpoints to this path. */
    std::string checkpointPath;
    /** Single-run: restore from this checkpoint chain first. */
    std::string restorePath;
    /** Checkpoint every N recorded epochs (0 = end/interrupt only). */
    std::uint32_t ckptEvery = 0;
    /** Campaign mode: fresh manifest path. */
    std::string manifestPath;
    /** Campaign mode: resume an existing manifest. */
    std::string resumePath;
    /** Campaign: extra tries per failed cell. */
    std::uint32_t retryCells = 0;
    /** Campaign: per-cell wall-clock watchdog, seconds. */
    double cellTimeoutSec = 0.0;
};

/**
 * Captures warn/inform/verbose messages as structured "log" trace
 * events while still printing them to stderr.
 */
class TraceLogSink : public LogSink
{
  public:
    explicit TraceLogSink(Tracer &tracer) : tracer_(tracer) {}

    void
    message(const char *kind, const char *text) override
    {
        logToStderr(kind, text);
        if (tracer_.enabled()) {
            TraceEvent ev("log");
            ev.str("kind", kind).str("text", text);
            tracer_.emit(ev);
        }
    }

  private:
    Tracer &tracer_;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload mix:N|parsec:NAME|trace:FILE]"
                 " [--scheme morph|static:X:Y:Z|pipp|dsr]\n"
                 "          [--cores N] [--epochs N] [--refs N] "
                 "[--seed N] [--paper-scale] [--csv FILE]\n"
                 "          [--record FILE]\n"
                 "          [--check off|log|recover|abort] "
                 "[--quarantine N] [--inject-seed N]\n"
                 "          [--inject-acfv N] [--inject-class P] "
                 "[--inject-illegal P]\n"
                 "          [--inject-bus-drop P] "
                 "[--inject-bus-delay P]\n"
                 "          [--trace FILE] [--trace-format "
                 "jsonl|chrome] [--trace-summary FILE]\n"
                 "          [--stats-out FILE] [--stats-epochs] "
                 "[--profile] [-v] [-q]\n"
                 "          [--sweep] [--mixes A-B] [--sweep-seeds "
                 "K] [--jobs N]\n"
                 "          [--checkpoint FILE] [--restore FILE] "
                 "[--ckpt-every N]\n"
                 "          [--manifest FILE] [--resume FILE] "
                 "[--retry-cells K] [--cell-timeout SEC]\n",
                 argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both `--opt value` and `--opt=value`.
        std::string eq_value;
        bool has_eq = false;
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                eq_value = arg.substr(eq + 1);
                arg = arg.substr(0, eq);
                has_eq = true;
            }
        }
        auto value = [&]() -> std::string {
            if (has_eq)
                return eq_value;
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--workload") {
            opts.spec.workload = value();
        } else if (arg == "--scheme") {
            opts.spec.scheme = value();
        } else if (arg == "--cores") {
            opts.spec.cores = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--epochs") {
            opts.spec.epochs = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--refs") {
            opts.spec.refs =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--seed") {
            opts.spec.seed =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--paper-scale") {
            opts.spec.paperScale = true;
        } else if (arg == "--csv") {
            opts.csvPath = value();
        } else if (arg == "--record") {
            opts.recordPath = value();
        } else if (arg == "--check") {
            opts.spec.checkPolicy = value();
        } else if (arg == "--quarantine") {
            opts.spec.quarantine = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--inject-seed") {
            opts.spec.faults.seed =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--inject-acfv") {
            opts.spec.faults.acfvFlipsPerEpoch =
                static_cast<std::uint32_t>(
                    std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--inject-class") {
            opts.spec.faults.classificationFlipChance =
                std::strtod(value().c_str(), nullptr);
        } else if (arg == "--inject-illegal") {
            opts.spec.faults.illegalTopologyChance =
                std::strtod(value().c_str(), nullptr);
        } else if (arg == "--inject-bus-drop") {
            opts.spec.faults.busDropChance =
                std::strtod(value().c_str(), nullptr);
        } else if (arg == "--inject-bus-delay") {
            opts.spec.faults.busDelayChance =
                std::strtod(value().c_str(), nullptr);
        } else if (arg == "--checkpoint") {
            opts.checkpointPath = value();
        } else if (arg == "--restore") {
            opts.restorePath = value();
        } else if (arg == "--ckpt-every") {
            opts.ckptEvery = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--manifest") {
            opts.manifestPath = value();
        } else if (arg == "--resume") {
            opts.resumePath = value();
            opts.sweep = true;
        } else if (arg == "--retry-cells") {
            opts.retryCells = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--cell-timeout") {
            opts.cellTimeoutSec =
                std::strtod(value().c_str(), nullptr);
        } else if (arg == "--trace") {
            opts.tracePath = value();
        } else if (arg == "--trace-format") {
            opts.traceFormat = value();
            if (opts.traceFormat != "jsonl" &&
                opts.traceFormat != "chrome") {
                std::fprintf(stderr,
                             "bad --trace-format '%s' (expected "
                             "jsonl or chrome)\n",
                             opts.traceFormat.c_str());
                usage(argv[0]);
            }
        } else if (arg == "--trace-summary") {
            opts.traceSummaryPath = value();
        } else if (arg == "--stats-out") {
            opts.statsOutPath = value();
        } else if (arg == "--stats-epochs") {
            opts.statsEpochs = true;
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--sweep") {
            opts.sweep = true;
        } else if (arg == "--mixes") {
            const std::string spec = value();
            unsigned lo = 0, hi = 0;
            if (std::sscanf(spec.c_str(), "%u-%u", &lo, &hi) == 2) {
                opts.mixLo = lo;
                opts.mixHi = hi;
            } else if (std::sscanf(spec.c_str(), "%u", &lo) == 1) {
                opts.mixLo = opts.mixHi = lo;
            } else {
                std::fprintf(stderr, "bad --mixes '%s'\n",
                             spec.c_str());
                usage(argv[0]);
            }
            if (opts.mixLo < 1 || opts.mixHi > 12 ||
                opts.mixLo > opts.mixHi) {
                std::fprintf(stderr,
                             "--mixes range must lie in 1-12\n");
                usage(argv[0]);
            }
        } else if (arg == "--sweep-seeds") {
            opts.sweepSeeds = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
            if (opts.sweepSeeds == 0) {
                std::fprintf(stderr,
                             "--sweep-seeds must be nonzero\n");
                usage(argv[0]);
            }
        } else if (arg == "--jobs" || arg == "-j") {
            opts.jobs = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2 &&
                   arg.find_first_not_of("0123456789", 2) ==
                       std::string::npos) {
            // make-style attached form: -j8
            opts.jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 2, nullptr, 10));
        } else if (arg == "-v" || arg == "--verbose") {
            setLogLevel(LogLevel::Verbose);
        } else if (arg == "-q" || arg == "--quiet") {
            setLogLevel(LogLevel::Quiet);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
        }
    }
    return opts;
}

MorphConfig
morphConfigFromSpec(const RunSpec &spec, bool shared_space)
{
    MorphConfig config;
    config.sharedAddressSpace = shared_space;
    config.checkPolicy = checkPolicyFromName(spec.checkPolicy);
    config.quarantineCleanEpochs = spec.quarantine;
    config.faults = spec.faults;
    return config;
}

/**
 * SIGINT/SIGTERM raise the ckpt interrupt flag; run loops notice it
 * at the next epoch boundary, flush manifest/checkpoint state, and
 * exit with ckptResumableExit.
 */
extern "C" void
handleInterruptSignal(int)
{
    requestCkptInterrupt();
}

/**
 * Campaign mode: the crash-resilient cousin of --sweep. Cells,
 * labels, and seeds mirror runSweep exactly, but progress is
 * durable in the manifest and per-cell checkpoints, so a killed
 * campaign resumed with --resume finishes with identical bytes.
 */
int
runCampaignMode(const Options &opts)
{
    CampaignOptions copts;
    copts.resume = !opts.resumePath.empty();
    copts.manifestPath =
        copts.resume ? opts.resumePath : opts.manifestPath;
    copts.jobs = opts.jobs;
    copts.ckptEvery = opts.ckptEvery;
    copts.retryCells = opts.retryCells;
    copts.cellTimeoutSec = opts.cellTimeoutSec;
    copts.wantStatsJson = !opts.statsOutPath.empty();

    // One cell-list generator for every campaign front end: the
    // same CampaignPlan that mc_campaign embeds in its manifests,
    // so the CLI and the distributed executor can never drift.
    CampaignPlan plan;
    plan.base = opts.spec;
    plan.mixLo = opts.mixLo;
    plan.mixHi = opts.mixHi;
    plan.sweepSeeds = opts.sweepSeeds;
    const std::vector<CampaignCell> cells = plan.cells();

    const CampaignReport report = runCampaign(cells, copts);
    if (report.interrupted) {
        std::fprintf(stderr,
                     "campaign interrupted; resume with --resume "
                     "%s\n",
                     copts.manifestPath.c_str());
        return ckptResumableExit;
    }

    std::printf("%s", report.reportText.c_str());
    if (!opts.statsOutPath.empty()) {
        FILE *out = std::fopen(opts.statsOutPath.c_str(), "w");
        if (!out)
            fatal("cannot write '%s'", opts.statsOutPath.c_str());
        std::fwrite(report.statsJsonArray.data(), 1,
                    report.statsJsonArray.size(), out);
        std::fclose(out);
        // The path differs between runs being diffed, so this
        // confirmation stays out of the deterministic stdout stream.
        std::fprintf(stderr, "stats registries written to %s\n",
                     opts.statsOutPath.c_str());
    }
    return report.failed == 0 ? 0 : 1;
}

/**
 * Sweep mode: fan mix × seed cells of the chosen scheme across the
 * worker pool. Everything written to stdout is a pure function of
 * the cell list, so the bytes are identical for any --jobs value;
 * wall-clock telemetry goes to stderr.
 */
int
runSweep(const Options &opts)
{
    if (!opts.manifestPath.empty() || !opts.resumePath.empty())
        return runCampaignMode(opts);

    const HierarchyParams hier =
        opts.spec.paperScale
            ? paperScaleHierarchy(opts.spec.cores)
            : fastScaleHierarchy(opts.spec.cores);
    const GeneratorParams gen = generatorFor(hier);
    SimParams sim;
    sim.epochs = opts.spec.epochs;
    sim.refsPerEpochPerCore = opts.spec.refs;

    const std::string base_desc = describe(opts.spec);

    std::vector<std::unique_ptr<Workload>> prototypes;
    std::vector<SimCellSpec> cells;
    std::uint64_t cell_index = 0;
    for (std::uint32_t rep = 0; rep < opts.sweepSeeds; ++rep) {
        for (std::uint32_t m = opts.mixLo; m <= opts.mixHi; ++m) {
            const std::uint64_t seed =
                sweepCellSeed(opts.spec.seed, cell_index);
            char name[16];
            std::snprintf(name, sizeof(name), "MIX %02d", m);
            MixSpec mix = mixByName(name);
            if (opts.spec.cores < mix.benchmarks.size())
                mix.benchmarks.resize(opts.spec.cores);
            prototypes.push_back(
                std::make_unique<MixWorkload>(mix, gen, seed));

            SimCellSpec spec;
            char label[64];
            std::snprintf(label, sizeof(label),
                          "mix:%02u seed=%llu", m,
                          static_cast<unsigned long long>(seed));
            spec.label = label;
            spec.workload = prototypes.back().get();
            spec.scheme = opts.spec.scheme;
            spec.hier = hier;
            spec.sim = sim;
            spec.morph = morphConfigFromSpec(opts.spec, false);
            spec.seed = seed;
            char desc[640];
            std::snprintf(desc, sizeof(desc), "%s cell=%llu mix=%u",
                          base_desc.c_str(),
                          static_cast<unsigned long long>(cell_index),
                          m);
            spec.configDesc = desc;
            spec.wantStatsJson = !opts.statsOutPath.empty();
            cells.push_back(std::move(spec));
            ++cell_index;
        }
    }

    const double wall_start = perfNowSec();
    const auto results = runSimSweep(cells, opts.jobs);
    const double wall_s = perfNowSec() - wall_start;

    std::printf("sweep      : %zu cells (mixes %u-%u x %u seeds), "
                "scheme %s\n",
                cells.size(), opts.mixLo, opts.mixHi,
                opts.sweepSeeds, opts.spec.scheme.c_str());
    std::size_t failed = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &cell = results[i];
        if (!cell.ok()) {
            ++failed;
            std::printf("cell %3zu   : %-24s FAILED: %s\n", i,
                        cells[i].label.c_str(),
                        cell.error.c_str());
            continue;
        }
        const SimCellResult &r = *cell.value;
        std::printf("cell %3zu   : %-24s throughput=%.6f "
                    "performance=%.6f final=%s",
                    i, r.label.c_str(), r.run.avgThroughput,
                    r.run.performance, r.finalTopology.c_str());
        if (opts.spec.scheme == "morph") {
            std::printf(" merges=%llu splits=%llu",
                        static_cast<unsigned long long>(
                            r.reconfig.merges),
                        static_cast<unsigned long long>(
                            r.reconfig.splits));
        }
        std::printf("\n");
    }
    if (failed > 0)
        std::printf("sweep      : %zu of %zu cells FAILED\n", failed,
                    results.size());

    if (!opts.statsOutPath.empty()) {
        std::string doc = "[\n";
        bool first = true;
        for (const auto &cell : results) {
            if (!cell.ok())
                continue;
            if (!first)
                doc += ",\n";
            first = false;
            doc += cell.value->statsJson;
        }
        doc += "\n]\n";
        FILE *out = std::fopen(opts.statsOutPath.c_str(), "w");
        if (!out) {
            fatal("cannot write '%s'", opts.statsOutPath.c_str());
        }
        std::fwrite(doc.data(), 1, doc.size(), out);
        std::fclose(out);
        // The path differs between -j runs being diffed, so this
        // confirmation stays out of the deterministic stdout stream.
        std::fprintf(stderr, "stats registries written to %s\n",
                     opts.statsOutPath.c_str());
    }

    // Timing is real wall-clock and must stay out of the
    // deterministic stdout byte stream.
    std::fprintf(stderr,
                 "sweep: %zu cells on %u jobs in %.2f s\n",
                 cells.size(),
                 opts.jobs > 0 ? opts.jobs
                               : ThreadPool::defaultThreads(),
                 wall_s);
    return failed == 0 ? 0 : 1;
}

} // namespace

int
run(const Options &opts)
{
    if (!opts.traceSummaryPath.empty()) {
        const TraceSummary summary =
            summarizeTraceFile(opts.traceSummaryPath);
        std::printf("%s", formatTraceSummary(summary).c_str());
        return 0;
    }

    if (opts.sweep)
        return runSweep(opts);

    BuiltRun built = buildRun(opts.spec);
    Workload *workload = built.workload.get();
    MemorySystem *system = built.system.get();
    const MorphCacheSystem *morph =
        dynamic_cast<const MorphCacheSystem *>(system);

    if (!opts.recordPath.empty()) {
        const Trace trace = recordTrace(*workload, opts.spec.epochs,
                                        opts.spec.refs);
        writeTrace(trace, opts.recordPath);
        std::printf("recorded %llu references (%u epochs x %u "
                    "cores) to %s\n",
                    static_cast<unsigned long long>(
                        trace.totalReferences()),
                    opts.spec.epochs, workload->numCores(),
                    opts.recordPath.c_str());
        return 0;
    }

    const std::string config_hash =
        configHashHex(describe(opts.spec));

    StatsRegistry registry;
    StatsMeta meta;
    meta.seed = opts.spec.seed;
    meta.configHash = config_hash;
    registry.setMeta(meta);
    system->registerStats(registry);

    if (opts.profile) {
        Profiler::global().setEnabled(true);
        Profiler::global().reset();
    }
    Profiler::global().registerStats(registry);

    // Checkpoints resume only the JSONL trace format (the Chrome
    // sink buffers an array it cannot reopen mid-stream).
    const bool jsonl_trace =
        !opts.tracePath.empty() && opts.traceFormat == "jsonl";
    const bool want_ckpt =
        !opts.checkpointPath.empty() || !opts.restorePath.empty();
    if (want_ckpt && !opts.tracePath.empty() && !jsonl_trace)
        fatal("--checkpoint/--restore require --trace-format jsonl");

    // The sink is created *after* restore so a resumed JSONL trace
    // can truncate back to the checkpointed byte offset.
    std::unique_ptr<TraceSink> sink;
    Tracer tracer;
    TraceLogSink log_sink(tracer);

    Simulation simulation(*system, *workload, built.sim);
    simulation.setRegistry(&registry);

    CkptRunState state;
    state.simulation = &simulation;
    state.system = system;
    state.workload = workload;
    state.registry = &registry;
    if (jsonl_trace)
        state.tracer = &tracer;

    std::uint64_t last_ckpt = 0;
    if (!opts.restorePath.empty()) {
        const RestoreOutcome outcome =
            restoreCheckpointChain(opts.restorePath, opts.spec,
                                   state);
        last_ckpt = outcome.epochsCompleted;
        inform("restored %llu recorded epochs from %s",
               static_cast<unsigned long long>(
                   outcome.epochsCompleted),
               outcome.pathUsed.c_str());
        if (jsonl_trace) {
            sink = std::make_unique<JsonlTraceSink>(
                opts.tracePath, outcome.traceByteOffset);
        }
    } else if (!opts.tracePath.empty()) {
        if (opts.traceFormat == "chrome")
            sink = std::make_unique<ChromeTraceSink>(opts.tracePath);
        else
            sink = std::make_unique<JsonlTraceSink>(opts.tracePath);
    }
    tracer.setSink(sink.get());
    if (sink) {
        setLogSink(&log_sink);
        simulation.setTracer(&tracer);
    }

    // Checkpoints default to the restore path so `--restore X`
    // alone keeps extending the same chain.
    const std::string ckpt_path = !opts.checkpointPath.empty()
                                      ? opts.checkpointPath
                                      : opts.restorePath;
    auto flushCheckpoint = [&]() {
        if (jsonl_trace && sink) {
            state.traceByteOffset =
                static_cast<JsonlTraceSink *>(sink.get())
                    ->byteOffset();
        }
        writeCheckpoint(ckpt_path, opts.spec, state);
        last_ckpt = simulation.recordedEpochs();
    };

    bool interrupted = false;
    while (!simulation.done()) {
        if (ckptInterruptRequested()) {
            interrupted = true;
            break;
        }
        simulation.stepEpoch();
        if (!ckpt_path.empty() && opts.ckptEvery > 0 &&
            simulation.recordedEpochs() >=
                last_ckpt + opts.ckptEvery) {
            flushCheckpoint();
        }
    }

    if (interrupted && !simulation.done()) {
        if (!ckpt_path.empty()) {
            flushCheckpoint();
            std::fprintf(stderr,
                         "interrupted: checkpoint written; resume "
                         "with --restore %s\n",
                         ckpt_path.c_str());
        } else {
            std::fprintf(
                stderr,
                "interrupted (no --checkpoint path; progress "
                "lost)\n");
        }
        if (sink) {
            setLogSink(nullptr);
            sink->finish();
        }
        return ckptResumableExit;
    }

    // Final checkpoint: lets the chain be inspected/verified after
    // the run and makes `--restore` of a finished run a no-op.
    if (!opts.checkpointPath.empty())
        flushCheckpoint();

    const RunResult result = simulation.finish();

    if (sink) {
        setLogSink(nullptr);
        sink->finish();
        verbose("trace: %llu events written to %s",
                static_cast<unsigned long long>(tracer.eventCount()),
                opts.tracePath.c_str());
    }

    std::printf("workload   : %s (%u cores)\n",
                opts.spec.workload.c_str(), workload->numCores());
    std::printf("scheme     : %s\n", system->name().c_str());
    std::printf("throughput : %.4f IPC (sum over cores)\n",
                result.avgThroughput);
    std::printf("performance: %.4f (instrs / slowest-core cycles)\n",
                result.performance);
    if (morph) {
        const auto &stats = morph->controller().stats();
        std::printf("reconfig   : %llu merges, %llu splits, %llu "
                    "asymmetric outcomes, final %s\n",
                    static_cast<unsigned long long>(stats.merges),
                    static_cast<unsigned long long>(stats.splits),
                    static_cast<unsigned long long>(
                        stats.asymmetricOutcomes),
                    morph->hierarchy().topology().name().c_str());
        const std::string robustness =
            morph->controller().robustnessReport();
        if (!robustness.empty())
            std::printf("%s", robustness.c_str());
    }

    Series tput{"throughput", {}};
    Series misses{"misses", {}};
    for (const EpochMetrics &epoch : result.epochs) {
        tput.values.push_back(epoch.throughput);
        double m = 0;
        for (auto v : epoch.misses)
            m += static_cast<double>(v);
        misses.values.push_back(m);
    }
    std::printf("%s\n", summaryLine(tput).c_str());
    if (!opts.csvPath.empty()) {
        CsvMeta csv_meta;
        csv_meta.seed = opts.spec.seed;
        csv_meta.configHash = config_hash;
        writeCsv(opts.csvPath, {tput, misses}, &csv_meta);
        std::printf("per-epoch series written to %s\n",
                    opts.csvPath.c_str());
    }

    if (opts.profile) {
        const std::string prof = Profiler::global().report();
        if (!prof.empty())
            std::printf("%s", prof.c_str());
    }
    if (!opts.statsOutPath.empty()) {
        const bool csv =
            opts.statsOutPath.size() >= 4 &&
            opts.statsOutPath.compare(opts.statsOutPath.size() - 4,
                                      4, ".csv") == 0;
        if (csv)
            registry.writeCsv(opts.statsOutPath);
        else
            registry.writeJson(opts.statsOutPath);
        std::printf("stats registry written to %s\n",
                    opts.statsOutPath.c_str());
    }
    if (opts.statsEpochs)
        std::printf("%s", registry.csvString().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    std::signal(SIGINT, handleInterruptSignal);
    std::signal(SIGTERM, handleInterruptSignal);
    try {
        return run(opts);
    } catch (const IoError &err) {
        // A persistent filesystem fault (ENOSPC, EIO, dead NFS).
        // The durable state on disk is complete-old or complete-new
        // by construction, so this run is resumable once the medium
        // recovers — signalled with the same exit code as an
        // interrupt (75, EX_TEMPFAIL).
        std::fprintf(stderr,
                     "i/o error: %s\n"
                     "state on disk is consistent; rerun with "
                     "--resume/--restore once the filesystem "
                     "recovers\n",
                     err.what());
        return ckptResumableExit;
    } catch (const SimError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}

/**
 * @file
 * Trial statistics for the benchmark harness: warmup discard and
 * median/MAD summarization, kept pure so tests/perf_test.cc can
 * verify the protocol math without running a simulator.
 *
 * Protocol: a benchmark cell runs `warmup + trials` times; the
 * first `warmup` samples are discarded (cold caches, lazy
 * first-touch allocation, branch-predictor training), and the
 * remaining `trials` samples are summarized as median + MAD. Median
 * over mean because a single preempted trial must not drag the
 * headline number; MAD (median absolute deviation) over stddev for
 * the same robustness reason — a BENCH file asserts "half the
 * trials were within MAD of the median", which survives outliers.
 */

#ifndef MORPHCACHE_PERF_BENCHSTAT_HH
#define MORPHCACHE_PERF_BENCHSTAT_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace morphcache {

/** Median of `values` (empty input returns 0). */
double median(std::vector<double> values);

/** Median absolute deviation around median(values). */
double medianAbsDeviation(const std::vector<double> &values);

/** median + MAD of a sample set. */
struct TrialSummary
{
    double median = 0.0;
    double mad = 0.0;
    std::size_t samples = 0;
};

TrialSummary summarizeTrials(const std::vector<double> &samples);

/**
 * Run `warmup + trials` invocations of `one_trial` and return only
 * the post-warmup samples, in run order. The discard happens here —
 * not in the caller — so every harness gets the same protocol.
 */
std::vector<double> runTrials(std::size_t warmup,
                              std::size_t trials,
                              const std::function<double()> &one_trial);

} // namespace morphcache

#endif // MORPHCACHE_PERF_BENCHSTAT_HH

/**
 * @file
 * Unit tests for the segmented-bus interconnect: round-robin
 * arbiters, the hierarchical arbiter tree with segmentation, the
 * queueing model, and the Table 2 area/delay model.
 */

#include <gtest/gtest.h>

#include "interconnect/arbiter.hh"
#include "interconnect/delay_model.hh"
#include "interconnect/segmented_bus.hh"

namespace morphcache {
namespace {

TEST(RoundRobinArbiter, SingleRequestGranted)
{
    RoundRobinArbiter2 arb;
    auto g = arb.arbitrate(true, false, true, false);
    EXPECT_TRUE(g.gnt0);
    EXPECT_FALSE(g.gnt1);
    g = arb.arbitrate(false, true, true, false);
    EXPECT_FALSE(g.gnt0);
    EXPECT_TRUE(g.gnt1);
}

TEST(RoundRobinArbiter, AlternatesUnderContention)
{
    RoundRobinArbiter2 arb;
    bool last = false;
    for (int i = 0; i < 10; ++i) {
        const auto g = arb.arbitrate(true, true, true, false);
        EXPECT_NE(g.gnt0, g.gnt1); // exactly one grant
        if (i > 0) {
            EXPECT_NE(g.gnt1, last); // strict alternation
        }
        last = g.gnt1;
    }
}

TEST(RoundRobinArbiter, NoGrantWithoutParentGrant)
{
    RoundRobinArbiter2 arb;
    const auto g = arb.arbitrate(true, true, false, true);
    EXPECT_FALSE(g.gnt0);
    EXPECT_FALSE(g.gnt1);
    EXPECT_TRUE(g.reqOut); // request still forwarded
}

TEST(RoundRobinArbiter, ReqOutOnlyWhenForwarding)
{
    RoundRobinArbiter2 arb;
    EXPECT_FALSE(arb.arbitrate(true, false, true, false).reqOut);
    EXPECT_TRUE(arb.arbitrate(true, false, false, true).reqOut);
    EXPECT_FALSE(arb.arbitrate(false, false, false, true).reqOut);
}

TEST(ArbiterTree, FullyShared_OneGrantPerCycle)
{
    ArbiterTree tree(8);
    tree.configure(std::vector<std::uint32_t>(8, 0));
    std::vector<bool> req(8, true);
    for (int cycle = 0; cycle < 16; ++cycle) {
        const auto grants = tree.arbitrate(req);
        int count = 0;
        for (bool g : grants)
            count += g;
        EXPECT_EQ(count, 1);
    }
}

TEST(ArbiterTree, FullyShared_FairUnderSaturation)
{
    ArbiterTree tree(8);
    tree.configure(std::vector<std::uint32_t>(8, 0));
    std::vector<int> wins(8, 0);
    std::vector<bool> req(8, true);
    for (int cycle = 0; cycle < 800; ++cycle) {
        const auto grants = tree.arbitrate(req);
        for (int i = 0; i < 8; ++i)
            wins[i] += grants[i];
    }
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(wins[i], 100) << "slice " << i;
}

TEST(ArbiterTree, SegmentsGrantInParallel)
{
    // Figure 7's (4,2,2) formation: leaves 0-3, 4-5, 6-7.
    ArbiterTree tree(8);
    tree.configure({0, 0, 0, 0, 1, 1, 2, 2});
    std::vector<bool> req(8, true);
    const auto grants = tree.arbitrate(req);
    int count = 0;
    for (bool g : grants)
        count += g;
    EXPECT_EQ(count, 3); // one grant per segment
}

TEST(ArbiterTree, PrivateSegmentsAllGranted)
{
    ArbiterTree tree(8);
    tree.configure({0, 1, 2, 3, 4, 5, 6, 7});
    std::vector<bool> req{true, false, true, false,
                          true, false, true, false};
    const auto grants = tree.arbitrate(req);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(grants[i], req[i]);
}

TEST(ArbiterTree, NoRequestsNoGrants)
{
    ArbiterTree tree(16);
    tree.configure(std::vector<std::uint32_t>(16, 0));
    const auto grants = tree.arbitrate(std::vector<bool>(16, false));
    for (bool g : grants)
        EXPECT_FALSE(g);
}

TEST(ArbiterTree, GrantGoesToARequester)
{
    ArbiterTree tree(8);
    tree.configure(std::vector<std::uint32_t>(8, 0));
    std::vector<bool> req(8, false);
    req[5] = true;
    for (int cycle = 0; cycle < 4; ++cycle) {
        const auto grants = tree.arbitrate(req);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(grants[i], i == 5);
    }
}

TEST(SegmentedBus, UncontendedLatencyIs15Cycles)
{
    SegmentedBus bus(16, BusParams{});
    bus.configure(std::vector<std::uint32_t>(16, 0));
    // 3 bus cycles x 5 CPU cycles = the paper's 15-cycle overhead.
    EXPECT_EQ(bus.transact(0, 0), 15u);
}

TEST(SegmentedBus, PipelinedLatencyIs10Cycles)
{
    BusParams params;
    params.pipelined = true;
    SegmentedBus bus(16, params);
    bus.configure(std::vector<std::uint32_t>(16, 0));
    EXPECT_EQ(bus.transact(0, 0), 10u); // footnote 2
}

TEST(SegmentedBus, ShortPipelinedTxnCyclesDoNotWrap)
{
    // Regression: a pipelined bus with busCyclesPerTxn < 2 used to
    // wrap the unsigned pipeline-overlap subtraction, so one
    // transaction occupied ~2^32 CPU cycles (the max(1, ...) clamp
    // ran after the wrap and kept the wrapped value).
    BusParams params;
    params.pipelined = true;
    params.busCyclesPerTxn = 1;
    EXPECT_EQ(params.txnCpuCycles(), params.cpuCyclesPerBusCycle);
    EXPECT_EQ(params.requestCpuCycles(),
              params.cpuCyclesPerBusCycle);

    // Degenerate 0-cycle configs clamp to one bus cycle too.
    params.busCyclesPerTxn = 0;
    EXPECT_EQ(params.txnCpuCycles(), params.cpuCyclesPerBusCycle);
    params.pipelined = false;
    EXPECT_EQ(params.txnCpuCycles(), params.cpuCyclesPerBusCycle);
    EXPECT_EQ(params.requestCpuCycles(),
              params.cpuCyclesPerBusCycle);

    // The paper's default 3-cycle transaction is unchanged.
    EXPECT_EQ(BusParams{}.txnCpuCycles(), 15u);
    EXPECT_EQ(BusParams{}.requestCpuCycles(), 10u);
}

TEST(SegmentedBus, ContentionQueues)
{
    // Split-transaction (default): the second requester waits for
    // the first one's data phase (1 bus cycle = 5 CPU cycles).
    SegmentedBus bus(4, BusParams{});
    bus.configure({0, 0, 0, 0});
    EXPECT_EQ(bus.transact(0, 100), 15u);
    EXPECT_EQ(bus.transact(1, 100), 20u);
    EXPECT_EQ(bus.queueingCycles(), 5u);
}

TEST(SegmentedBus, SerializedContentionQueues)
{
    BusParams params;
    params.splitTransaction = false;
    SegmentedBus bus(4, params);
    bus.configure({0, 0, 0, 0});
    EXPECT_EQ(bus.transact(0, 100), 15u);
    // Whole transactions serialize in the conservative model.
    EXPECT_EQ(bus.transact(1, 100), 30u);
    EXPECT_EQ(bus.queueingCycles(), 15u);
}

TEST(SegmentedBus, SegmentsAreIndependent)
{
    SegmentedBus bus(4, BusParams{});
    bus.configure({0, 0, 1, 1});
    EXPECT_EQ(bus.transact(0, 0), 15u);
    EXPECT_EQ(bus.transact(2, 0), 15u); // different segment: no wait
    EXPECT_EQ(bus.queueingCycles(), 0u);
}

TEST(SegmentedBus, IdleGapClearsQueue)
{
    SegmentedBus bus(2, BusParams{});
    bus.configure({0, 0});
    bus.transact(0, 0);
    EXPECT_EQ(bus.transact(1, 1000), 15u);
}

TEST(SegmentedBus, ReconfigureClearsOccupancy)
{
    // Regression for the stale-occupancy bug: configure() promises
    // that reconfiguration drains in-flight transactions, so the
    // first post-reconfig transaction must wait zero cycles even if
    // the old segment was saturated.
    SegmentedBus bus(4, BusParams{});
    bus.configure({0, 0, 0, 0});
    for (SliceId s = 0; s < 4; ++s)
        bus.transact(s, 0);
    EXPECT_GT(bus.queueingCycles(), 0u);
    const std::uint64_t queued = bus.queueingCycles();

    bus.configure({0, 1, 2, 3});
    // Uncontended latency, no phantom queueing carried across the
    // reconfiguration.
    EXPECT_EQ(bus.transact(0, 0), 15u);
    EXPECT_EQ(bus.queueingCycles(), queued);
}

TEST(SegmentedBus, ReconfigureClearsOccupancyUnderRemapping)
{
    // Occupancy accumulated under the *old* representative mapping
    // must not be re-read under the *new* mapping after a
    // merge/split reshapes which slice fronts each segment.
    SegmentedBus bus(4, BusParams{});
    bus.configure({0, 0, 1, 1});
    for (int r = 0; r < 3; ++r) {
        bus.transact(0, 0); // saturate segment of slices {0,1}
        bus.transact(2, 0); // saturate segment of slices {2,3}
    }
    bus.configure({0, 0, 0, 0}); // merge everything
    EXPECT_EQ(bus.transact(3, 0), 15u);
    bus.configure({0, 1, 1, 1}); // asymmetric split
    EXPECT_EQ(bus.transact(1, 0), 15u);
    EXPECT_EQ(bus.transact(0, 0), 15u);
}

TEST(SegmentedBus, NormalizationUsesFirstOccurrence)
{
    // Arbitrary (sparse, unordered) group ids normalize to dense
    // first-occurrence representatives.
    SegmentedBus bus(5, BusParams{});
    bus.configure({7, 7, 3, 3, 9});
    EXPECT_EQ(bus.groupOf(0), 0u);
    EXPECT_EQ(bus.groupOf(1), 0u);
    EXPECT_EQ(bus.groupOf(2), 2u);
    EXPECT_EQ(bus.groupOf(3), 2u);
    EXPECT_EQ(bus.groupOf(4), 4u);
    // Contention within a group, independence across groups.
    EXPECT_EQ(bus.transact(0, 0), 15u);
    EXPECT_EQ(bus.transact(1, 0), 20u);
    EXPECT_EQ(bus.transact(2, 0), 15u);
    EXPECT_EQ(bus.transact(4, 0), 15u);
}

TEST(SegmentedBus, NormalizationHandlesInterleavedGroups)
{
    SegmentedBus bus(4, BusParams{});
    bus.configure({5, 8, 5, 8});
    EXPECT_EQ(bus.groupOf(0), 0u);
    EXPECT_EQ(bus.groupOf(1), 1u);
    EXPECT_EQ(bus.groupOf(2), 0u);
    EXPECT_EQ(bus.groupOf(3), 1u);
    EXPECT_EQ(bus.transact(0, 0), 15u);
    EXPECT_EQ(bus.transact(2, 0), 20u); // same segment as slice 0
    EXPECT_EQ(bus.transact(1, 0), 15u); // other segment unaffected
}

TEST(DelayModel, Table2AreaFigures)
{
    const ArbiterDelayModel model;
    const auto l2 = model.l2Tree();
    const auto l3 = model.l3Tree();
    EXPECT_EQ(l2.numArbiters, 7u);
    EXPECT_EQ(l3.numArbiters, 15u);
    // Paper: 160.5 um^2 per side (L2), 343.9 um^2 (L3).
    EXPECT_NEAR(l2.totalAreaUm2, 160.5, 1.0);
    EXPECT_NEAR(l3.totalAreaUm2, 343.9, 1.0);
}

TEST(DelayModel, Table2DelayFigures)
{
    const ArbiterDelayModel model;
    const auto l2 = model.l2Tree();
    const auto l3 = model.l3Tree();
    // Paper: L2 request 0.31 wire + 0.38 logic; L3 0.4 + 0.49.
    EXPECT_NEAR(l2.requestWireNs, 0.31, 0.04);
    EXPECT_NEAR(l2.requestLogicNs, 0.38, 0.02);
    EXPECT_NEAR(l3.requestWireNs, 0.40, 0.02);
    EXPECT_NEAR(l3.requestLogicNs, 0.49, 0.01);
    // Worst path ~0.89 ns -> ~1.12 GHz maximum arbiter frequency.
    EXPECT_NEAR(l3.worstPathNs(), 0.89, 0.02);
    EXPECT_NEAR(l3.maxFrequencyGhz(), 1.12, 0.03);
}

TEST(DelayModel, TransactionOverheads)
{
    const ArbiterDelayModel model;
    const auto txn = model.transaction();
    EXPECT_EQ(txn.busCycles, 3u);
    EXPECT_EQ(txn.cpuCycles, 15u);
    EXPECT_EQ(txn.cpuCyclesPipelined, 10u);
}

} // namespace
} // namespace morphcache

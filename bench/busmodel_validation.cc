/**
 * @file
 * Validation of the fast segmented-bus queueing model against the
 * cycle-level arbiter-tree simulator, across offered load and
 * sharing degree. The CMP simulator uses the queueing model on its
 * hot path; this bench quantifies what that approximation costs.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hh"
#include "interconnect/bus_sim.hh"

using namespace morphcache;

namespace {

void
compareModels()
{
    std::printf("queueing model vs cycle-level simulator: average "
                "transaction latency (CPU cycles)\n");
    std::printf("%-10s %-12s %12s %12s %10s\n", "sharing",
                "interarrival", "cycle-level", "queueing",
                "abs diff");

    for (std::uint32_t group : {2u, 4u, 16u}) {
        for (Cycle gap : {Cycle{200}, Cycle{60}, Cycle{25}}) {
            BusParams params;
            SegmentedBusSim sim(16, params);
            SegmentedBus model(16, params);
            std::vector<std::uint32_t> part(16);
            for (std::uint32_t i = 0; i < 16; ++i)
                part[i] = i / group;
            sim.configure(part);
            model.configure(part);

            Rng rng(7);
            double model_total = 0.0;
            const int n = 3000;
            Cycle t = 0;
            for (int i = 0; i < n; ++i) {
                t += rng.below(2 * gap) + 1;
                const auto slice =
                    static_cast<SliceId>(rng.below(16));
                sim.request(slice, t);
                model_total += static_cast<double>(
                    model.transact(slice, t));
            }
            sim.advanceTo(t + 100000);
            std::printf("%-10u %-12llu %12.1f %12.1f %10.1f\n",
                        group,
                        static_cast<unsigned long long>(gap),
                        sim.averageLatency(), model_total / n,
                        sim.averageLatency() - model_total / n);
        }
    }
    std::printf("(the queueing model has no bus-edge alignment and "
                "caps cross-clock waits; agreement within a few "
                "cycles is the design target)\n\n");
}

void
BM_CycleLevelBus(benchmark::State &state)
{
    SegmentedBusSim sim(16, BusParams{});
    sim.configure(std::vector<std::uint32_t>(16, 0));
    Cycle t = 0;
    SliceId s = 0;
    for (auto _ : state) {
        sim.request(s, t);
        benchmark::DoNotOptimize(sim.advanceTo(t + 20));
        t += 20;
        s = static_cast<SliceId>((s + 1) % 16);
    }
}
BENCHMARK(BM_CycleLevelBus);

void
BM_QueueingBus(benchmark::State &state)
{
    SegmentedBus bus(16, BusParams{});
    bus.configure(std::vector<std::uint32_t>(16, 0));
    Cycle t = 0;
    SliceId s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bus.transact(s, t));
        t += 20;
        s = static_cast<SliceId>((s + 1) % 16);
    }
}
BENCHMARK(BM_QueueingBus);

} // namespace

int
main(int argc, char **argv)
{
    compareModels();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/fig17_pipp_dsr.dir/fig17_pipp_dsr.cc.o"
  "CMakeFiles/fig17_pipp_dsr.dir/fig17_pipp_dsr.cc.o.d"
  "fig17_pipp_dsr"
  "fig17_pipp_dsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_pipp_dsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * mc_bench harness: the repo's refs/sec scoreboard.
 *
 * A benchmark cell is a pinned (scheme, mix, seed, cores, epochs,
 * refs) tuple; a suite is a fixed list of cells that never changes
 * meaning between PRs, so the BENCH_<n>.json trajectory committed
 * per PR is comparable commit to commit. Each cell runs
 * `warmup + trials` full simulations: warmup samples are discarded,
 * recorded samples are summarized as median + MAD refs/sec
 * (see perf/benchstat.hh for the protocol rationale), and each
 * recorded trial also contributes wall-time phase attribution
 * (Profiler::snapshot() deltas: refProcessing / epochDecision /
 * reconfigApply) and hot-path allocation telemetry
 * (perf/allocmeter.hh deltas around the simulation loop only —
 * construction is excluded).
 *
 * What is and isn't deterministic: simulated *stats* of every trial
 * are byte-identical run to run (the registry contract), so trials
 * vary only in wall time; refs/sec, phase ns, and nothing else in a
 * BENCH file is machine-independent. tools/mc_benchdiff.py compares
 * two BENCH files cell-by-cell and gates on median regression.
 */

#ifndef MORPHCACHE_PERF_BENCH_HH
#define MORPHCACHE_PERF_BENCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/run_spec.hh"
#include "perf/allocmeter.hh"
#include "perf/benchstat.hh"
#include "stats/profiler.hh"

namespace morphcache {

/**
 * Current BENCH_*.json schema version.
 *
 * Schema 2 (additive over 1): each entry of a cell's `phases` map
 * carries `allocBytes`/`allocCalls`/`allocFrees` — heap traffic
 * attributed to that phase across the recorded trials (the
 * profiler's alloc-probe deltas). `phases.refProcessing.allocCalls`
 * is the steady-state gate: the reference-processing inner loop is
 * contractually allocation-free, and tools/ci_bench_smoke.sh fails
 * if it ever reads nonzero. Cell-level allocBytes/allocCalls/
 * allocFrees keep their schema-1 meaning (whole simulation loop).
 */
constexpr int benchSchemaVersion = 2;

/** One pinned benchmark cell. */
struct BenchCell
{
    /** Complete run description (workload carries the mix). */
    RunSpec spec;

    /**
     * Stable cell identity: mc_benchdiff matches cells of two BENCH
     * files on this string, so it encodes everything that changes
     * the work done ("morph/mix:08/c8/e6/r6000/s42").
     */
    std::string id() const;
};

/**
 * A pinned suite by name:
 *  - "smoke":   subset of "default" (same cell parameters, so its
 *               ids compare against a committed default-suite BENCH
 *               file); sized for a CI smoke leg.
 *  - "default": the per-PR scoreboard suite behind BENCH_<n>.json.
 * Throws ConfigError on an unknown name.
 */
std::vector<BenchCell> benchSuite(const std::string &name);

/** Trial protocol knobs. */
struct BenchOptions
{
    /** Discarded leading trials per cell. */
    std::size_t warmup = 1;
    /** Recorded trials per cell (median + MAD over these). */
    std::size_t trials = 5;
    /**
     * Busy-loop microseconds injected per trial — a synthetic
     * slowdown so regression detection can be exercised end-to-end
     * (tools/ci_bench_smoke.sh) without patching simulator code.
     */
    std::uint64_t slowdownUsPerTrial = 0;
};

/** Everything measured for one cell. */
struct BenchCellResult
{
    BenchCell cell;
    /** configHashHex(describe(spec)) — provenance. */
    std::string configHash;
    /** References processed per trial (all cores, incl. sim warmup
     * epochs — every reference the hot path actually handled). */
    std::uint64_t refsPerTrial = 0;
    /** Recorded refs/sec samples, in run order. */
    std::vector<double> samples;
    TrialSummary refsPerSec;
    /** Phase attribution summed over recorded trials. */
    ProfSnapshot prof;
    /** Allocation traffic of the simulation loops (recorded trials
     * only; construction excluded). */
    AllocSnapshot alloc;
};

/** Run one cell under the trial protocol. */
BenchCellResult runBenchCell(const BenchCell &cell,
                             const BenchOptions &opts);

/** Environment stamp of a BENCH file. */
struct BenchEnv
{
    std::string gitSha = "unknown";
    /** Compiler id string (__VERSION__ of the harness build). */
    std::string compiler;
    std::string buildType;
    /** Build parallelism recorded for provenance (-j). */
    unsigned buildJobs = 0;
    /** Hardware threads of the measuring host. */
    unsigned hostThreads = 0;
    /** Civil timestamp of the measurement (unix seconds). */
    double unixTime = 0.0;
};

/** Compiler/build-type stamp compiled into the harness. */
BenchEnv localBenchEnv();

/**
 * Render the schema-versioned BENCH document: header with env
 * stamps + one object per cell (id, config hash, refs/sec
 * median/MAD/samples, per-phase ns/calls, alloc bytes/calls).
 */
std::string renderBenchJson(const std::string &suite,
                            const BenchOptions &opts,
                            const BenchEnv &env,
                            const std::vector<BenchCellResult> &results);

/** Human-readable per-cell table for stderr/stdout. */
std::string renderBenchTable(const std::vector<BenchCellResult> &results);

} // namespace morphcache

#endif // MORPHCACHE_PERF_BENCH_HH

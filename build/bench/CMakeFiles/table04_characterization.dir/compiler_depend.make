# Empty compiler generated dependencies file for table04_characterization.
# This may be replaced when dependencies are built.

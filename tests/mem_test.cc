/**
 * @file
 * Unit tests for the cache substrate: geometry, slices, and
 * replacement policies.
 */

#include <gtest/gtest.h>

#include "mem/geometry.hh"
#include "mem/replacement.hh"
#include "mem/slice.hh"

namespace morphcache {
namespace {

CacheGeometry
l2Geom()
{
    return CacheGeometry{256 * 1024, 8, 64}; // Table 3 L2 slice
}

TEST(Geometry, Table3Shapes)
{
    const CacheGeometry l2 = l2Geom();
    EXPECT_TRUE(l2.valid());
    EXPECT_EQ(l2.numLines(), 4096u);
    EXPECT_EQ(l2.numSets(), 512u);

    const CacheGeometry l3{1024 * 1024, 16, 64};
    EXPECT_TRUE(l3.valid());
    EXPECT_EQ(l3.numLines(), 16384u);
    EXPECT_EQ(l3.numSets(), 1024u);
}

TEST(Geometry, AddressMapping)
{
    const CacheGeometry geom = l2Geom();
    const Addr byte_addr = 0x12345678;
    const Addr line = geom.lineAddr(byte_addr);
    EXPECT_EQ(line, byte_addr >> 6);
    EXPECT_EQ(geom.setIndex(line), line % 512);
    EXPECT_EQ(geom.tag(line), line / 512);
}

TEST(Geometry, InvalidShapesRejected)
{
    EXPECT_FALSE((CacheGeometry{0, 8, 64}).valid());
    EXPECT_FALSE((CacheGeometry{256 * 1024, 0, 64}).valid());
    EXPECT_FALSE((CacheGeometry{100, 8, 64}).valid()); // not divisible
}

TEST(PlruTree, VictimAvoidsTouched)
{
    PlruTree tree(8);
    // Touch everything except way 5 in some order.
    for (std::uint32_t way : {0, 1, 2, 3, 4, 6, 7, 0, 1})
        tree.touch(way);
    // PLRU is approximate, but immediately after touching a way,
    // the victim must never be that way.
    for (std::uint32_t way = 0; way < 8; ++way) {
        tree.touch(way);
        EXPECT_NE(tree.victim(), way);
    }
}

TEST(PlruTree, SingleWay)
{
    PlruTree tree(1);
    tree.touch(0);
    EXPECT_EQ(tree.victim(), 0u);
}

TEST(PlruTree, TwoWayAlternates)
{
    PlruTree tree(2);
    tree.touch(0);
    EXPECT_EQ(tree.victim(), 1u);
    tree.touch(1);
    EXPECT_EQ(tree.victim(), 0u);
}

TEST(Slice, ProbeMissOnEmpty)
{
    CacheSlice slice(0, l2Geom());
    EXPECT_FALSE(slice.probe(0x1000).has_value());
    EXPECT_EQ(slice.validLineCount(), 0u);
}

TEST(Slice, FillThenHit)
{
    CacheSlice slice(0, l2Geom());
    const Addr line = 0xabcd;
    const std::uint64_t set = slice.setIndex(line);
    const Eviction ev = slice.fill(set, 0, line, false, 1);
    EXPECT_FALSE(ev.valid);
    const auto way = slice.probe(line);
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(*way, 0u);
    EXPECT_EQ(slice.validLineCount(), 1u);
}

TEST(Slice, LruEvictsOldest)
{
    CacheSlice slice(0, l2Geom());
    const std::uint64_t set = 7;
    const std::uint64_t sets = l2Geom().numSets();
    // Fill all 8 ways of one set with increasing stamps.
    for (std::uint32_t i = 0; i < 8; ++i) {
        const Addr line = set + sets * (i + 1); // same set index
        slice.fill(set, slice.victimWay(set), line, false, i + 1);
    }
    // Touch way 0's line to make it MRU; victim must not be way 0.
    slice.touch(set, 0, 100);
    const std::uint32_t victim = slice.victimWay(set);
    EXPECT_EQ(victim, 1u); // stamp 2 is now the oldest
}

TEST(Slice, FillReturnsEvictionWithDirtyFlag)
{
    CacheSlice slice(0, l2Geom());
    const std::uint64_t set = 0;
    const std::uint64_t sets = l2Geom().numSets();
    for (std::uint32_t i = 0; i < 8; ++i)
        slice.fill(set, i, sets * (i + 1), /*dirty=*/i == 3, i + 1);
    // Evict way 3 explicitly.
    const Eviction ev = slice.fill(set, 3, sets * 100, false, 50);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.lineAddr, sets * 4);
}

TEST(Slice, InvalidateRemovesLine)
{
    CacheSlice slice(0, l2Geom());
    const Addr line = 0x77;
    slice.fill(slice.setIndex(line), 2, line, true, 1);
    const Eviction ev = slice.invalidate(line);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_FALSE(slice.probe(line).has_value());
    // Second invalidate is a no-op.
    EXPECT_FALSE(slice.invalidate(line).valid);
}

TEST(Slice, InvalidateAll)
{
    CacheSlice slice(0, l2Geom());
    for (Addr line = 0; line < 64; ++line)
        slice.fill(slice.setIndex(line), 0, line, false, line + 1);
    EXPECT_GT(slice.validLineCount(), 0u);
    slice.invalidateAll();
    EXPECT_EQ(slice.validLineCount(), 0u);
}

TEST(Slice, VictimPrefersInvalidWays)
{
    CacheSlice slice(0, l2Geom());
    slice.fill(0, 0, 0, false, 100);
    slice.fill(0, 1, l2Geom().numSets(), false, 1);
    // Ways 2.. are invalid; victim must be one of them, not the
    // stamp-1 line.
    EXPECT_GE(slice.victimWay(0), 2u);
}

TEST(Slice, PlruPolicyVictims)
{
    CacheSlice slice(0, l2Geom(), ReplPolicy::TreePLRU);
    const std::uint64_t sets = l2Geom().numSets();
    for (std::uint32_t i = 0; i < 8; ++i)
        slice.fill(0, i, sets * (i + 1), false, 1);
    // After touching a way, it must not be the victim.
    for (std::uint32_t way = 0; way < 8; ++way) {
        slice.touch(0, way, 1);
        EXPECT_NE(slice.victimWay(0), way);
    }
}

/** Property sweep: a slice never exceeds its capacity. */
class SliceFillSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SliceFillSweep, CapacityNeverExceeded)
{
    const std::uint32_t assoc = GetParam();
    const CacheGeometry geom{64 * 1024, assoc, 64};
    ASSERT_TRUE(geom.valid());
    CacheSlice slice(0, geom);
    for (Addr line = 0; line < 4 * geom.numLines(); ++line) {
        const std::uint64_t set = geom.setIndex(line);
        slice.fill(set, slice.victimWay(set), line, false, line + 1);
        ASSERT_LE(slice.validLineCount(), geom.numLines());
    }
    EXPECT_EQ(slice.validLineCount(), geom.numLines());
}

INSTANTIATE_TEST_SUITE_P(Assocs, SliceFillSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

} // namespace
} // namespace morphcache

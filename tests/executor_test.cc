/**
 * @file
 * Tests for the work-stealing campaign executor and lease protocol.
 *
 * The headline contracts under test:
 *
 *  - a fleet of worker processes draining one manifest produces
 *    merged report and stats bytes identical to a serial
 *    runCampaign of the same cells — including when a worker is
 *    SIGKILLed mid-flight and its cells are stolen;
 *  - stale-lease fencing: a zombie worker (one whose lease was
 *    reclaimed while it was presumed dead) cannot commit a result
 *    over the newer attempt — the write throws a typed LeaseError;
 *  - corruption never diverges or hangs: flipped lease bits, a
 *    manifest truncated mid-line, and deleted result files all end
 *    in typed errors or clean reclamation and a byte-identical
 *    final merge;
 *  - retry backoff jitter is a pure function of campaign identity
 *    and stays inside its bounds.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/ckpt.hh"
#include "common/error.hh"
#include "common/serial.hh"
#include "runner/campaign.hh"
#include "runner/executor.hh"
#include "runner/lease.hh"

namespace morphcache {
namespace {

std::string
tmpPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + name;
}

CampaignPlan
smallPlan(std::uint32_t mixes)
{
    CampaignPlan plan;
    plan.base.workload = "mix:1"; // replaced per cell
    plan.base.scheme = "morph";
    plan.base.cores = 16;
    plan.base.epochs = 5;
    plan.base.refs = 3000;
    plan.base.seed = 9;
    plan.mixLo = 1;
    plan.mixHi = mixes;
    plan.sweepSeeds = 1;
    return plan;
}

void
removeCampaignFiles(const std::string &manifest, std::size_t cells)
{
    std::remove(manifest.c_str());
    const std::string dir = campaignStateDir(manifest);
    for (std::size_t i = 0; i < cells; ++i) {
        std::remove(cellCkptPath(dir, i).c_str());
        std::remove((cellCkptPath(dir, i) + ".prev").c_str());
        std::remove(cellResultPath(dir, i).c_str());
        std::remove(cellLeasePath(dir, i).c_str());
    }
}

/** Merge result files the way `mc_campaign merge` does. */
RenderedReport
mergeResults(const std::string &manifest,
             const std::vector<CampaignCell> &cells)
{
    const std::string dir = campaignStateDir(manifest);
    std::vector<CellOutcome> outcomes(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::string path = cellResultPath(dir, i);
        const std::vector<std::uint8_t> bytes = readFileBytes(path);
        outcomes[i] = parseOutcome(
            path, std::string(bytes.begin(), bytes.end()));
    }
    return renderCampaignReport(cells, outcomes, true);
}

/** Serial reference bytes for a plan, via the in-process runner. */
CampaignReport
serialReference(const CampaignPlan &plan, const std::string &name,
                std::uint32_t retries = 0)
{
    CampaignOptions opts;
    opts.manifestPath = tmpPath(name);
    opts.jobs = 1;
    opts.retryCells = retries;
    opts.wantStatsJson = true;
    const CampaignReport report = runCampaign(plan.cells(), opts);
    removeCampaignFiles(opts.manifestPath, plan.cells().size());
    return report;
}

// ---------------------------------------------------------------
// Lease protocol
// ---------------------------------------------------------------

std::string
freshLeaseDir(const std::string &name)
{
    const std::string dir = tmpPath(name);
    ::mkdir(dir.c_str(), 0777);
    std::remove(cellLeasePath(dir, 0).c_str());
    std::remove(cellResultPath(dir, 0).c_str());
    return dir;
}

TEST(Lease, SerializeParseRoundTrip)
{
    LeaseInfo lease;
    lease.index = 7;
    lease.worker = "host-a:123";
    lease.pid = 123;
    lease.host = "host-a";
    lease.generation = 4;
    lease.deadline = 1754700000.25;
    lease.attempts = 2;

    LeaseInfo back;
    ASSERT_TRUE(parseLease(serializeLease(lease), back));
    EXPECT_EQ(back.index, lease.index);
    EXPECT_EQ(back.worker, lease.worker);
    EXPECT_EQ(back.pid, lease.pid);
    EXPECT_EQ(back.host, lease.host);
    EXPECT_EQ(back.generation, lease.generation);
    EXPECT_DOUBLE_EQ(back.deadline, lease.deadline);
    EXPECT_EQ(back.attempts, lease.attempts);
}

TEST(Lease, FreshClaimThenHeldThenRelease)
{
    const std::string dir = freshLeaseDir("lease_basic.d");

    LeaseInfo a;
    ASSERT_EQ(tryClaimCell(dir, 0, "worker-a", 60.0, a),
              LeaseClaim::Claimed);
    EXPECT_EQ(a.generation, 1u);

    LeaseInfo b;
    EXPECT_EQ(tryClaimCell(dir, 0, "worker-b", 60.0, b),
              LeaseClaim::Held);

    EXPECT_TRUE(leaseStillMine(dir, a));
    releaseLease(dir, a);
    EXPECT_FALSE(leaseStillMine(dir, a));

    // Released: worker B can now claim fresh.
    ASSERT_EQ(tryClaimCell(dir, 0, "worker-b", 60.0, b),
              LeaseClaim::Claimed);
    EXPECT_EQ(b.generation, 1u);
    releaseLease(dir, b);
}

TEST(Lease, ExpiredLeaseIsReclaimedWithGenerationBump)
{
    const std::string dir = freshLeaseDir("lease_expire.d");

    LeaseInfo dead;
    ASSERT_EQ(tryClaimCell(dir, 0, "worker-dead", 0.001, dead),
              LeaseClaim::Claimed);
    dead.attempts = 3;
    // Persist the attempt count the way a worker's heartbeat would.
    while (renewLease(dir, dead, 0.001) &&
           leaseNow() <= dead.deadline) {
    }
    while (leaseNow() <= dead.deadline)
        ::usleep(1000);

    LeaseInfo thief;
    ASSERT_EQ(tryClaimCell(dir, 0, "worker-thief", 60.0, thief),
              LeaseClaim::Claimed);
    EXPECT_EQ(thief.generation, dead.generation + 1);
    EXPECT_EQ(thief.attempts, 3u)
        << "reclaim must inherit the dead owner's attempt count";
    releaseLease(dir, thief);
}

TEST(Lease, RenewPushesDeadlineAndFailsAfterTheft)
{
    const std::string dir = freshLeaseDir("lease_renew.d");

    LeaseInfo a;
    ASSERT_EQ(tryClaimCell(dir, 0, "worker-a", 60.0, a),
              LeaseClaim::Claimed);
    const double before = a.deadline;
    ASSERT_TRUE(renewLease(dir, a, 120.0));
    EXPECT_GT(a.deadline, before);

    // Simulate a reclaim while worker A was descheduled.
    LeaseInfo thief = a;
    thief.worker = "worker-thief";
    thief.generation = a.generation + 1;
    const std::string doc = serializeLease(thief);
    atomicWriteFile(cellLeasePath(dir, 0), doc.data(), doc.size());

    EXPECT_FALSE(renewLease(dir, a, 120.0))
        << "renew must refuse once the lease belongs to another";
    releaseLease(dir, thief);
}

/**
 * The stale-fencing acceptance test: a zombie (claim reclaimed out
 * from under it) must have its late result write rejected with a
 * typed LeaseError, leaving no result file; the live owner's commit
 * then lands.
 */
TEST(Lease, ZombieResultCommitIsFencedOff)
{
    const std::string dir = freshLeaseDir("lease_fence.d");

    LeaseInfo zombie;
    ASSERT_EQ(tryClaimCell(dir, 0, "worker-zombie", 0.001, zombie),
              LeaseClaim::Claimed);
    while (leaseNow() <= zombie.deadline)
        ::usleep(1000);

    LeaseInfo live;
    ASSERT_EQ(tryClaimCell(dir, 0, "worker-live", 60.0, live),
              LeaseClaim::Claimed);
    ASSERT_GT(live.generation, zombie.generation);

    EXPECT_THROW(
        commitCellResult(dir, 0, zombie, "{\"zombie\":true}\n"),
        LeaseError);
    EXPECT_FALSE(fileExists(cellResultPath(dir, 0)))
        << "the fenced write must not leave a result file";

    commitCellResult(dir, 0, live, "{\"live\":true}\n");
    EXPECT_TRUE(fileExists(cellResultPath(dir, 0)));

    const std::vector<std::uint8_t> bytes =
        readFileBytes(cellResultPath(dir, 0));
    EXPECT_EQ(std::string(bytes.begin(), bytes.end()),
              "{\"live\":true}\n");
    releaseLease(dir, live);
    std::remove(cellResultPath(dir, 0).c_str());
}

TEST(Lease, CorruptLeaseReadsAsCorruptAndIsReclaimable)
{
    const std::string dir = freshLeaseDir("lease_corrupt.d");

    LeaseInfo a;
    ASSERT_EQ(tryClaimCell(dir, 0, "worker-a", 60.0, a),
              LeaseClaim::Claimed);

    // Flip bits across the lease record (seeded, exhaustive enough
    // to hit type tag, braces, numbers, and the trailing newline).
    const std::string path = cellLeasePath(dir, 0);
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    for (std::size_t at = 0; at < bytes.size(); at += 7) {
        std::vector<std::uint8_t> flipped = bytes;
        flipped[at] ^= 0x20;
        atomicWriteFile(path, flipped.data(), flipped.size());
        LeaseInfo out;
        const LeaseRead state = readLease(path, out);
        // Some flips keep the record parseable (label text); every
        // unparseable one must be Corrupt — never a crash, never
        // Missing.
        EXPECT_NE(state, LeaseRead::Missing);
    }

    // Outright garbage is Corrupt and immediately reclaimable.
    const char garbage[] = "\x01\x02not json at all";
    atomicWriteFile(path, garbage, sizeof(garbage));
    LeaseInfo out;
    EXPECT_EQ(readLease(path, out), LeaseRead::Corrupt);

    LeaseInfo claimer;
    ASSERT_EQ(tryClaimCell(dir, 0, "worker-b", 60.0, claimer),
              LeaseClaim::Claimed);
    releaseLease(dir, claimer);
}

TEST(Lease, ReapRemovesExpiredAndFinishedLeases)
{
    const std::string dir = freshLeaseDir("lease_reap.d");
    std::remove(cellLeasePath(dir, 1).c_str());
    std::remove(cellResultPath(dir, 1).c_str());

    LeaseInfo expired;
    ASSERT_EQ(tryClaimCell(dir, 0, "worker-a", 0.001, expired),
              LeaseClaim::Claimed);
    LeaseInfo finished;
    ASSERT_EQ(tryClaimCell(dir, 1, "worker-a", 60.0, finished),
              LeaseClaim::Claimed);
    commitCellResult(dir, 1, finished, "{\"done\":true}\n");
    while (leaseNow() <= expired.deadline)
        ::usleep(1000);

    EXPECT_EQ(reapStaleLeases(dir, 2), 2u);
    EXPECT_FALSE(fileExists(cellLeasePath(dir, 0)));
    EXPECT_FALSE(fileExists(cellLeasePath(dir, 1)));
    std::remove(cellResultPath(dir, 1).c_str());
}

// ---------------------------------------------------------------
// Retry backoff jitter
// ---------------------------------------------------------------

TEST(RetryDelay, DeterministicWithinBoundsAndSpread)
{
    const std::uint64_t hash = 0x1234abcd5678ef90ULL;
    for (std::uint64_t attempt = 1; attempt <= 12; ++attempt) {
        std::uint64_t base = 100ULL
                             << (attempt - 1 < 10 ? attempt - 1 : 10);
        if (base > 2000)
            base = 2000;
        for (std::uint64_t cell = 0; cell < 16; ++cell) {
            const std::uint64_t ms =
                retryDelayMs(hash, cell, attempt);
            EXPECT_GE(ms, base / 2);
            EXPECT_LE(ms, base);
            // Pure function of (hash, cell, attempt).
            EXPECT_EQ(ms, retryDelayMs(hash, cell, attempt));
        }
    }
    // Different cells must not retry in lockstep (that thundering
    // herd is the whole point of the jitter).
    bool spread = false;
    for (std::uint64_t cell = 1; cell < 16 && !spread; ++cell) {
        spread = retryDelayMs(hash, cell, 3) !=
                 retryDelayMs(hash, 0, 3);
    }
    EXPECT_TRUE(spread);
    // And a different campaign draws a different schedule.
    EXPECT_NE(retryDelayMs(hash, 0, 3) +
                  retryDelayMs(hash, 1, 3) +
                  retryDelayMs(hash, 2, 3),
              retryDelayMs(hash ^ 1, 0, 3) +
                  retryDelayMs(hash ^ 1, 1, 3) +
                  retryDelayMs(hash ^ 1, 2, 3));
}

// ---------------------------------------------------------------
// Campaign plan embedding
// ---------------------------------------------------------------

TEST(CampaignPlan, RoundTripsThroughManifest)
{
    CampaignPlan plan = smallPlan(3);
    plan.base.faults.classificationFlipChance = 0.125;
    const std::string manifest = tmpPath("plan_rt.jsonl");
    initManifestWithPlan(manifest, plan);

    const CampaignPlan back = planFromManifest(manifest);
    EXPECT_EQ(back.mixLo, plan.mixLo);
    EXPECT_EQ(back.mixHi, plan.mixHi);
    EXPECT_EQ(back.sweepSeeds, plan.sweepSeeds);
    EXPECT_EQ(describe(back.base), describe(plan.base));
    EXPECT_EQ(back.base.seed, plan.base.seed);
    // Cell lists (labels, specs, seeds) are identical, so the
    // campaign hash — the manifest binding — matches too.
    EXPECT_EQ(campaignHash(back.cells()),
              campaignHash(plan.cells()));
    removeCampaignFiles(manifest, plan.cells().size());
}

TEST(CampaignPlan, ManifestWithoutPlanIsTyped)
{
    const CampaignPlan plan = smallPlan(1);
    CampaignOptions opts;
    opts.manifestPath = tmpPath("plan_missing.jsonl");
    opts.jobs = 1;
    runCampaign(plan.cells(), opts); // plain manifest, no plan line
    EXPECT_THROW(planFromManifest(opts.manifestPath), CkptError);
    removeCampaignFiles(opts.manifestPath, plan.cells().size());
}

// ---------------------------------------------------------------
// Executor: byte identity, stealing, corruption
// ---------------------------------------------------------------

TEST(Executor, MergedBytesMatchSerialCampaign)
{
    const CampaignPlan plan = smallPlan(3);
    const CampaignReport reference =
        serialReference(plan, "exec_ref.jsonl");

    const std::string manifest = tmpPath("exec_run.jsonl");
    initManifestWithPlan(manifest, plan);
    ExecutorOptions eopts;
    eopts.manifestPath = manifest;
    eopts.jobs = 2;
    eopts.leaseTtlSec = 30.0;
    const ExecutorReport report =
        runExecutor(plan.cells(), eopts);
    EXPECT_TRUE(report.campaignComplete);
    EXPECT_EQ(report.completed, plan.cells().size());
    EXPECT_EQ(report.failedCells, 0u);

    const RenderedReport merged =
        mergeResults(manifest, plan.cells());
    EXPECT_EQ(merged.reportText, reference.reportText);
    EXPECT_EQ(merged.statsJsonArray, reference.statsJsonArray);
    removeCampaignFiles(manifest, plan.cells().size());
}

TEST(Executor, FailingCellsExhaustBudgetIdenticallyToSerial)
{
    CampaignPlan plan = smallPlan(2);
    plan.base.scheme = "bogus"; // buildRun throws ConfigError
    const CampaignReport reference =
        serialReference(plan, "exec_fail_ref.jsonl", 1);

    const std::string manifest = tmpPath("exec_fail.jsonl");
    initManifestWithPlan(manifest, plan);
    ExecutorOptions eopts;
    eopts.manifestPath = manifest;
    eopts.jobs = 2;
    eopts.retryCells = 1;
    eopts.leaseTtlSec = 30.0;
    const ExecutorReport report =
        runExecutor(plan.cells(), eopts);
    EXPECT_TRUE(report.campaignComplete);
    EXPECT_EQ(report.failedCells, plan.cells().size());

    const RenderedReport merged =
        mergeResults(manifest, plan.cells());
    EXPECT_EQ(merged.reportText, reference.reportText);
    EXPECT_NE(merged.reportText.find("after 2 attempts"),
              std::string::npos)
        << merged.reportText;
    removeCampaignFiles(manifest, plan.cells().size());
}

TEST(Executor, HeaderMismatchIsTyped)
{
    const CampaignPlan plan = smallPlan(2);
    const std::string manifest = tmpPath("exec_mismatch.jsonl");
    initManifestWithPlan(manifest, plan);

    const CampaignPlan other = smallPlan(1);
    ExecutorOptions eopts;
    eopts.manifestPath = manifest;
    EXPECT_THROW(runExecutor(other.cells(), eopts), CkptError);
    removeCampaignFiles(manifest, plan.cells().size());
}

/**
 * The tentpole crash test: SIGKILL a whole worker process
 * mid-campaign, then let a second worker steal its leased cells
 * (resuming from their checkpoints) and finish. The merge must be
 * byte-identical to a serial run that was never interrupted.
 */
TEST(Executor, SigkilledWorkerIsStolenAndBytesMatchSerial)
{
    CampaignPlan plan = smallPlan(4);
    plan.base.refs = 20000; // slow enough to die mid-flight
    const CampaignReport reference =
        serialReference(plan, "exec_kill_ref.jsonl");

    const std::string manifest = tmpPath("exec_kill.jsonl");
    removeCampaignFiles(manifest, plan.cells().size());
    initManifestWithPlan(manifest, plan);

    ExecutorOptions eopts;
    eopts.manifestPath = manifest;
    eopts.jobs = 2;
    eopts.ckptEvery = 1;
    eopts.leaseTtlSec = 0.5; // steal fast: the worker is dead
    eopts.workerId = "victim";

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        runExecutor(plan.cells(), eopts);
        _exit(0);
    }

    // Wait for the victim to make durable progress (manifest events
    // beyond the init lines), then kill it without warning.
    const long initSize = static_cast<long>(
        readFileBytes(manifest).size());
    for (int i = 0; i < 500; ++i) {
        std::FILE *f = std::fopen(manifest.c_str(), "rb");
        if (f) {
            std::fseek(f, 0, SEEK_END);
            const long size = std::ftell(f);
            std::fclose(f);
            if (size > initSize)
                break;
        }
        ::usleep(10000);
    }
    ::kill(child, SIGKILL);
    int status = 0;
    ::waitpid(child, &status, 0);

    // The thief: same campaign, different worker id. It must steal
    // the victim's expired leases, resume from checkpoints, and
    // drain the campaign.
    ExecutorOptions thief = eopts;
    thief.workerId = "thief";
    const ExecutorReport report =
        runExecutor(plan.cells(), thief);
    EXPECT_TRUE(report.campaignComplete);

    const RenderedReport merged =
        mergeResults(manifest, plan.cells());
    EXPECT_EQ(merged.reportText, reference.reportText);
    EXPECT_EQ(merged.statsJsonArray, reference.statsJsonArray);
    removeCampaignFiles(manifest, plan.cells().size());
}

TEST(Executor, ManifestTruncatedMidLineIsToleratedAndCompletes)
{
    const CampaignPlan plan = smallPlan(2);
    const CampaignReport reference =
        serialReference(plan, "exec_trunc_ref.jsonl");

    const std::string manifest = tmpPath("exec_trunc.jsonl");
    initManifestWithPlan(manifest, plan);

    // Tear the final line the way a killed writer would: chop the
    // manifest mid-record, no trailing newline.
    std::vector<std::uint8_t> bytes = readFileBytes(manifest);
    ASSERT_GT(bytes.size(), 10u);
    bytes.resize(bytes.size() - 10);
    atomicWriteFile(manifest, bytes.data(), bytes.size());

    ExecutorOptions eopts;
    eopts.manifestPath = manifest;
    eopts.jobs = 2;
    eopts.leaseTtlSec = 30.0;
    const ExecutorReport report =
        runExecutor(plan.cells(), eopts);
    EXPECT_TRUE(report.campaignComplete);

    const RenderedReport merged =
        mergeResults(manifest, plan.cells());
    EXPECT_EQ(merged.reportText, reference.reportText);
    EXPECT_EQ(merged.statsJsonArray, reference.statsJsonArray);
    removeCampaignFiles(manifest, plan.cells().size());
}

TEST(Executor, DeletedResultFileIsRebuiltToIdenticalBytes)
{
    const CampaignPlan plan = smallPlan(2);
    const CampaignReport reference =
        serialReference(plan, "exec_del_ref.jsonl");

    const std::string manifest = tmpPath("exec_del.jsonl");
    initManifestWithPlan(manifest, plan);
    ExecutorOptions eopts;
    eopts.manifestPath = manifest;
    eopts.jobs = 2;
    eopts.leaseTtlSec = 30.0;
    ASSERT_TRUE(
        runExecutor(plan.cells(), eopts).campaignComplete);

    // Sabotage: delete one result (a lost file on the shared
    // filesystem). A rerun notices and recomputes exactly it.
    const std::string dir = campaignStateDir(manifest);
    ASSERT_EQ(std::remove(cellResultPath(dir, 1).c_str()), 0);

    const ExecutorReport rerun = runExecutor(plan.cells(), eopts);
    EXPECT_TRUE(rerun.campaignComplete);
    EXPECT_EQ(rerun.completed, 1u)
        << "only the deleted cell must rerun";

    const RenderedReport merged =
        mergeResults(manifest, plan.cells());
    EXPECT_EQ(merged.reportText, reference.reportText);
    EXPECT_EQ(merged.statsJsonArray, reference.statsJsonArray);
    removeCampaignFiles(manifest, plan.cells().size());
}

TEST(Executor, FlippedLeaseBitsEndInCleanReclamationNotDivergence)
{
    const CampaignPlan plan = smallPlan(2);
    const CampaignReport reference =
        serialReference(plan, "exec_flip_ref.jsonl");

    const std::string manifest = tmpPath("exec_flip.jsonl");
    initManifestWithPlan(manifest, plan);

    // Corrupt pre-planted leases for every cell: the executor must
    // treat them as stale, reclaim, and still match reference
    // bytes.
    const std::string dir = campaignStateDir(manifest);
    for (std::size_t i = 0; i < plan.cells().size(); ++i) {
        const char junk[] = "{\"type\":\"lease\",\"ind\x01garbled";
        atomicWriteFile(cellLeasePath(dir, i), junk, sizeof(junk));
    }

    ExecutorOptions eopts;
    eopts.manifestPath = manifest;
    eopts.jobs = 2;
    eopts.leaseTtlSec = 30.0;
    const ExecutorReport report =
        runExecutor(plan.cells(), eopts);
    EXPECT_TRUE(report.campaignComplete);
    EXPECT_EQ(report.reclaimed, plan.cells().size());

    const RenderedReport merged =
        mergeResults(manifest, plan.cells());
    EXPECT_EQ(merged.reportText, reference.reportText);
    EXPECT_EQ(merged.statsJsonArray, reference.statsJsonArray);
    removeCampaignFiles(manifest, plan.cells().size());
}

TEST(Executor, InterruptFlagStopsResumably)
{
    const CampaignPlan plan = smallPlan(2);
    const std::string manifest = tmpPath("exec_int.jsonl");
    initManifestWithPlan(manifest, plan);

    ExecutorOptions eopts;
    eopts.manifestPath = manifest;
    eopts.jobs = 1;
    eopts.leaseTtlSec = 30.0;

    requestCkptInterrupt();
    const ExecutorReport stopped =
        runExecutor(plan.cells(), eopts);
    clearCkptInterrupt();
    EXPECT_TRUE(stopped.interrupted);
    EXPECT_FALSE(stopped.campaignComplete);

    const CampaignReport reference =
        serialReference(plan, "exec_int_ref.jsonl");
    const ExecutorReport resumed =
        runExecutor(plan.cells(), eopts);
    EXPECT_TRUE(resumed.campaignComplete);
    const RenderedReport merged =
        mergeResults(manifest, plan.cells());
    EXPECT_EQ(merged.reportText, reference.reportText);
    EXPECT_EQ(merged.statsJsonArray, reference.statsJsonArray);
    removeCampaignFiles(manifest, plan.cells().size());
}

} // namespace
} // namespace morphcache

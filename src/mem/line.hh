/**
 * @file
 * Cache line (way) outcome types.
 *
 * Per-way storage itself is struct-of-arrays inside CacheSlice
 * (flat address/stamp arrays plus packed per-set flag words); the
 * record type that remains here is the eviction outcome handed
 * across the slice boundary. A way carries: the full line address
 * (block number, stored rather than a tag so lines remain
 * unambiguous when a slice participates in differently shaped
 * logical groups over its lifetime), a valid bit, a dirty bit, a
 * global recency stamp (larger is more recent; doubles as the
 * "ideal LRU timestamp" the paper mentions for merging LRU state),
 * and a reused bit — set on the first hit after a fill, so
 * single-use (streaming) lines end their residency with it still
 * clear, which is what keeps them out of the active-footprint
 * estimate (Section 2.1 defines the ACF through *reuse*).
 */

#ifndef MORPHCACHE_MEM_LINE_HH
#define MORPHCACHE_MEM_LINE_HH

#include "common/types.hh"

namespace morphcache {

/** Result of filling a way: what was evicted, if anything. */
struct Eviction
{
    /** True when a valid line was displaced. */
    bool valid = false;
    /** Block number of the displaced line. */
    Addr lineAddr = 0;
    /** Whether the displaced line was dirty (needs writeback). */
    bool dirty = false;
    /** Whether the displaced line had been reused at this level. */
    bool reused = false;
};

} // namespace morphcache

#endif // MORPHCACHE_MEM_LINE_HH

#include "common/serial.hh"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>

#include "common/rng.hh"
#include "io/vfs.hh"

namespace morphcache {

namespace {

/**
 * Transient-fault retry budget for the durability primitives: a
 * flaky NFS epoch (ESTALE, EAGAIN) gets a few bounded, jittered
 * chances before the fault is declared persistent and escapes as
 * the typed IoError that quarantines the cell.
 */
constexpr std::uint64_t kIoAttempts = 4;

/**
 * Scratch path for one write attempt. The pid suffix keeps
 * concurrent writer *processes* (campaign workers renewing leases,
 * rewriting results) off each other's scratch files, and the
 * sequence keeps concurrent *threads* — and successive retry
 * attempts — apart. The rename is what serializes them.
 */
std::string
scratchPath(const std::string &path)
{
    static std::atomic<std::uint64_t> seq{0};
    return path + ".tmp." + std::to_string(::getpid()) + "." +
           std::to_string(seq.fetch_add(1));
}

/**
 * Durably persist the rename that published `path`: fsync its
 * containing directory, without which a power loss can forget the
 * directory entry even though the file's blocks reached the disk.
 * Routed through the seam unconditionally — the MC_NO_FSYNC gate
 * suppresses the syscall inside RealVfs, so fault injection still
 * sees the site.
 */
void
fsyncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const std::string name = dir.empty() ? "/" : dir;
    const int fd =
        vfs().openFile(name, O_RDONLY | O_DIRECTORY, 0);
    if (fd < 0)
        throwIo(VfsOp::Open, name, fd);
    const int sync_rc = vfs().fsyncFd(fd);
    vfs().closeFd(fd);
    if (sync_rc < 0)
        throwIo(VfsOp::Fsync, name, sync_rc);
}

/** One write-then-rename attempt; throws IoError on any failure. */
void
atomicWriteOnce(const std::string &path, const void *data,
                std::size_t size)
{
    const std::string tmp = scratchPath(path);
    const int fd = vfs().openFile(
        tmp, O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd < 0)
        throwIo(VfsOp::Open, tmp, fd);

    std::size_t landed = 0;
    long fail_rc = vfsWriteAll(fd, data, size, landed);
    VfsOp fail_op = VfsOp::Write;
    // fsync before rename: without it a crash after the rename can
    // publish an empty or torn file under the final name, which
    // torn-line tolerance downstream would then silently skip.
    if (fail_rc == 0) {
        const int sync_rc = vfs().fsyncFd(fd);
        if (sync_rc < 0) {
            fail_rc = sync_rc;
            fail_op = VfsOp::Fsync;
        }
    }
    const int close_rc = vfs().closeFd(fd);
    if (fail_rc == 0 && close_rc < 0) {
        // A swallowed close error is a swallowed write error on
        // NFS (the flush happens at close); it must not pass.
        fail_rc = close_rc;
        fail_op = VfsOp::Close;
    }
    if (fail_rc != 0) {
        vfs().unlinkPath(tmp); // scratch only; failure is benign
        throwIo(fail_op, tmp, fail_rc);
    }
    const int ren_rc = vfs().renamePath(tmp, path);
    if (ren_rc < 0) {
        vfs().unlinkPath(tmp);
        throwIo(VfsOp::Rename, path, ren_rc);
    }
    fsyncParentDir(path);
}

} // namespace

bool
fsyncEnabled()
{
    return vfsFsyncEnabled();
}

std::uint64_t
fsyncCount()
{
    return vfsFsyncCount();
}

void
atomicWriteFile(const std::string &path, const void *data,
                std::size_t size)
{
    // Bounded transient retry with the campaign backoff schedule,
    // keyed by path so concurrent writers jitter apart. Each
    // attempt uses a fresh scratch file: whatever a failed attempt
    // left behind is unlinked and never renamed, so the destination
    // is only ever complete-old or complete-new bytes.
    const std::uint64_t id = fnv1a64(path.data(), path.size());
    for (std::uint64_t attempt = 1;; ++attempt) {
        try {
            atomicWriteOnce(path, data, size);
            return;
        } catch (const IoError &err) {
            if (!err.transient() || attempt >= kIoAttempts)
                throw;
            vfs().sleepMs(retryDelayMs(id, 0, attempt));
        }
    }
}

void
atomicWriteFileWithRotation(const std::string &path,
                            const void *data, std::size_t size)
{
    // Rotate the previous consistent file into the fallback slot.
    // ENOENT is the chain's first write and benign; any other
    // failure surfaces *before* the old chain is disturbed, so the
    // caller still has a complete checkpoint on disk.
    const std::string prev = path + ".prev";
    const int rot_rc = vfs().renamePath(path, prev);
    if (rot_rc < 0 && rot_rc != -ENOENT)
        throwIo(VfsOp::Rename, prev, rot_rc);
    atomicWriteFile(path, data, size);
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    return vfsReadWholeFile(path);
}

} // namespace morphcache


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hierarchy/cache_level.cc" "src/hierarchy/CMakeFiles/mc_hierarchy.dir/cache_level.cc.o" "gcc" "src/hierarchy/CMakeFiles/mc_hierarchy.dir/cache_level.cc.o.d"
  "/root/repo/src/hierarchy/hierarchy.cc" "src/hierarchy/CMakeFiles/mc_hierarchy.dir/hierarchy.cc.o" "gcc" "src/hierarchy/CMakeFiles/mc_hierarchy.dir/hierarchy.cc.o.d"
  "/root/repo/src/hierarchy/topology.cc" "src/hierarchy/CMakeFiles/mc_hierarchy.dir/topology.cc.o" "gcc" "src/hierarchy/CMakeFiles/mc_hierarchy.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/acf/CMakeFiles/mc_acf.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/mc_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

/**
 * @file
 * Recoverable error types.
 *
 * panic()/fatal() (logging.hh) terminate the process, which is the
 * right response to an internal inconsistency in a batch run but the
 * wrong one for errors a caller can reasonably handle: a malformed
 * trace file, an impossible configuration. Those throw the exception
 * types below instead, and the CLI entry points translate uncaught
 * ones back into fatal() for the batch-user experience.
 */

#ifndef MORPHCACHE_COMMON_ERROR_HH
#define MORPHCACHE_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

namespace morphcache {

/** Base class of all recoverable simulator errors. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** The caller supplied an invalid configuration. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &what) : SimError(what) {}
};

/** A trace file failed validation (corrupt, truncated, malformed). */
class TraceError : public SimError
{
  public:
    explicit TraceError(const std::string &what) : SimError(what) {}
};

/**
 * A checkpoint failed validation (corrupt, truncated, wrong magic/
 * version/config-hash) or could not be written. Same shape as
 * TraceError: the message always carries the file and byte offset,
 * and expected-vs-found values where a comparison failed.
 */
class CkptError : public SimError
{
  public:
    explicit CkptError(const std::string &what) : SimError(what) {}
};

/**
 * A filesystem operation failed beneath one of the durability
 * primitives (src/io). Derives from CkptError so every existing
 * durable-write caller that handles CkptError keeps working; adds
 * the failing errno and a transience classification so retry
 * policy is decided once, at the throw site, from the error code
 * rather than re-guessed by each caller. The degradation contract
 * (DESIGN.md section 15): transient faults are retried with bounded
 * seeded-jitter backoff before this escapes; once it does, the
 * fault is treated as persistent for the artifact being written —
 * campaigns quarantine the cell, executors release the lease, and
 * single runs exit with resumable state intact.
 */
class IoError : public CkptError
{
  public:
    IoError(const std::string &what, int errno_code, bool transient)
        : CkptError(what), errno_(errno_code), transient_(transient)
    {
    }

    /** The errno the failing syscall reported (0 if none). */
    int errnoCode() const { return errno_; }

    /** Whether the fault class is worth retrying (EINTR, EAGAIN,
     * ESTALE, ...) as opposed to persistent (ENOSPC, EIO, ...). */
    bool transient() const { return transient_; }

  private:
    int errno_;
    bool transient_;
};

/**
 * A campaign lease operation failed: the lease was lost to another
 * worker (stale-lease fencing rejected a write), a claim raced, or
 * a lease file could not be created. Workers treat it as "this cell
 * is no longer mine" and move on; it never aborts a campaign.
 */
class LeaseError : public SimError
{
  public:
    explicit LeaseError(const std::string &what) : SimError(what) {}
};

} // namespace morphcache

#endif // MORPHCACHE_COMMON_ERROR_HH

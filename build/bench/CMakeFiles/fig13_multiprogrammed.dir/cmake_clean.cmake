file(REMOVE_RECURSE
  "CMakeFiles/fig13_multiprogrammed.dir/fig13_multiprogrammed.cc.o"
  "CMakeFiles/fig13_multiprogrammed.dir/fig13_multiprogrammed.cc.o.d"
  "fig13_multiprogrammed"
  "fig13_multiprogrammed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_multiprogrammed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

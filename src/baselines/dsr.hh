/**
 * @file
 * Dynamic Spill-Receive (Qureshi, HPCA 2009 [18]), extended to both
 * private-L2 and private-L3 levels as in the paper's Figure 17
 * comparison.
 *
 * Each private cache learns, via set dueling, whether it is better
 * off as a *spiller* (its evictions are installed into another
 * cache) or a *receiver* (it accepts spilled lines). Leader sets
 * pin the two behaviours; a per-cache PSEL counter accumulates
 * miss feedback and decides the follower sets. A miss in the local
 * slice snoops the other slices before going to memory (the
 * remote-hit path), which is how spilled lines are found again.
 */

#ifndef MORPHCACHE_BASELINES_DSR_HH
#define MORPHCACHE_BASELINES_DSR_HH

#include <cstdint>
#include <vector>

#include "hierarchy/cache_level.hh"
#include "sim/memory_system.hh"

namespace morphcache {

/**
 * DSR policy hooks for one cache level of private slices.
 */
class DsrPolicy : public LevelHooks
{
  public:
    /**
     * @param num_slices Private slices at this level.
     * @param num_sets Sets per slice.
     * @param leader_period Leader sets recur every this many sets
     *        per slice (two leaders per period: one always-spill,
     *        one never-spill).
     */
    DsrPolicy(std::uint32_t num_slices, std::uint64_t num_sets,
              std::uint64_t leader_period = 64);

    void miss(CacheLevelModel &level, CoreId core,
              Addr line_addr) override;
    bool insert(CacheLevelModel &level, CoreId core, Addr line_addr,
                bool dirty, InsertOutcome &out) override;

    /** Is slice `s` spilling for (follower) set `set`? */
    bool isSpiller(SliceId slice, std::uint64_t set) const;

    /** PSEL counter of a slice (tests). */
    int psel(SliceId slice) const;

    /** Spills performed so far. */
    std::uint64_t numSpills() const { return spills_; }

    /** Serialize PSEL counters + spill rotor. */
    void
    saveState(CkptWriter &w) const
    {
        w.u64(psel_.size());
        for (int p : psel_)
            w.u64(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(p)));
        w.u64(rotor_);
        w.u64(spills_);
    }

    void
    loadState(CkptReader &r)
    {
        r.expectU64("PSEL counter count", psel_.size());
        for (int &p : psel_) {
            const auto v =
                static_cast<std::int64_t>(r.u64());
            if (v < -pselMax || v > pselMax)
                r.fail("PSEL value " + std::to_string(v) +
                       " outside +-" + std::to_string(pselMax));
            p = static_cast<int>(v);
        }
        rotor_ = static_cast<std::uint32_t>(r.u64());
        spills_ = r.u64();
    }

  private:
    enum class SetRole : std::uint8_t { Follower, SpillLeader,
                                        ReceiveLeader };

    SetRole roleOf(SliceId slice, std::uint64_t set) const;

    std::uint32_t numSlices_;  // ckpt: derived(DsrPolicy)
    std::uint64_t numSets_;    // ckpt: derived(DsrPolicy)
    std::uint64_t leaderPeriod_; // ckpt: derived(DsrPolicy)
    /** Saturating per-slice selectors; >0 favours not spilling. */
    std::vector<int> psel_;
    std::uint32_t rotor_ = 0;
    std::uint64_t spills_ = 0;

    static constexpr int pselMax = 1023;
};

/**
 * The complete DSR memory system: private per-core L2 and L3
 * slices with spill-receive capacity sharing at both levels. The
 * slices are grouped for *lookup* (a local miss snoops the other
 * slices, paying the interconnect penalty) while insertion stays
 * private-with-spill, which is exactly the DSR operating model.
 */
class DsrSystem : public MemorySystem
{
  public:
    explicit DsrSystem(HierarchyParams params);

    AccessResult access(const MemAccess &access, Cycle now) override;
    const CoreStats &coreStats(CoreId core) const override;
    std::uint32_t numCores() const override;
    std::string name() const override { return "DSR"; }

    void
    saveState(CkptWriter &w) const override
    {
        hierarchy_.saveState(w);
        l2Policy_.saveState(w);
        l3Policy_.saveState(w);
    }

    void
    loadState(CkptReader &r) override
    {
        hierarchy_.loadState(r);
        l2Policy_.loadState(r);
        l3Policy_.loadState(r);
    }

    /** L2 policy (tests). */
    DsrPolicy &l2Policy() { return l2Policy_; }

  private:
    Hierarchy hierarchy_;
    DsrPolicy l2Policy_;
    DsrPolicy l3Policy_;
};

} // namespace morphcache

#endif // MORPHCACHE_BASELINES_DSR_HH

/**
 * @file
 * mc_modelcheck — exhaustive static verification of the MorphCache
 * reconfiguration engine.
 *
 * Enumerates the entire reachable topology space for the given core
 * count and proves that no decision the controller can take — under
 * any MSAT classification outcome — violates partition validity,
 * group shape, inclusiveness, or line conservation. See
 * src/check/model_checker.hh for the state-space encoding and
 * DESIGN.md section 10 for how to read a counterexample.
 *
 * Exit status: 0 when the space verifies clean, 2 when a
 * counterexample was found (printed to stdout), 1 on usage errors.
 */

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "check/model_checker.hh"
#include "common/error.hh"
#include "perf/clock.hh"

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Exhaustively verify the MorphCache reconfiguration engine\n"
        "over the full reachable topology space.\n"
        "\n"
        "  --cores N            cores/slices per level, power of two\n"
        "                       in [2, 32] (default 8)\n"
        "  --msat HIGH,LOW      L2 MSAT thresholds (default\n"
        "                       0.46875,0.234375 = 60/128,30/128)\n"
        "  --msat-l3 HIGH,LOW   L3 MSAT thresholds (default\n"
        "                       0.26,0.20)\n"
        "  --classifications M  per-state classification\n"
        "                       enumeration: full (whole decision\n"
        "                       tree), cluster (one decision per\n"
        "                       primary event, partial-order\n"
        "                       reduction), or auto (full up to 8\n"
        "                       cores, cluster beyond; default)\n"
        "  --max-states N       stop after discovering N states\n"
        "                       (0 = unlimited, default)\n"
        "  --line-checks N      concrete line-conservation samples\n"
        "                       on a real hierarchy (default 16)\n"
        "  --inject-rule-bug [NAME]\n"
        "                       plant a decision-rule mutation and\n"
        "                       expect a counterexample; NAME is\n"
        "                       skip-forced-l3-merge (default),\n"
        "                       ignore-alignment, or\n"
        "                       skip-forced-l2-split\n"
        "  --quiet              suppress the summary line\n"
        "  --help               this text\n",
        argv0);
}

bool
parseMsat(const std::string &value, morphcache::MsatConfig &msat)
{
    const std::size_t comma = value.find(',');
    if (comma == std::string::npos)
        return false;
    try {
        msat.high = std::stod(value.substr(0, comma));
        msat.low = std::stod(value.substr(comma + 1));
    } catch (const std::exception &) {
        return false;
    }
    return msat.high > msat.low;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace morphcache;

    ModelCheckConfig config;
    config.lineChecks = 16;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--cores") {
            config.numCores =
                static_cast<std::uint32_t>(std::stoul(next()));
        } else if (arg == "--msat") {
            if (!parseMsat(next(), config.msat)) {
                std::fprintf(stderr,
                             "--msat expects HIGH,LOW with "
                             "HIGH > LOW\n");
                return 1;
            }
        } else if (arg == "--msat-l3") {
            if (!parseMsat(next(), config.msatL3)) {
                std::fprintf(stderr,
                             "--msat-l3 expects HIGH,LOW with "
                             "HIGH > LOW\n");
                return 1;
            }
        } else if (arg == "--classifications") {
            try {
                config.classifications =
                    classificationModeFromName(next());
            } catch (const ConfigError &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return 1;
            }
        } else if (arg == "--max-states") {
            config.maxStates = std::stoull(next());
        } else if (arg == "--line-checks") {
            config.lineChecks = std::stoull(next());
        } else if (arg == "--inject-rule-bug") {
            // Optional value; default to the inclusion-breaking bug.
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                try {
                    config.ruleBug = ruleBugFromName(argv[++i]);
                } catch (const ConfigError &e) {
                    std::fprintf(stderr, "%s\n", e.what());
                    return 1;
                }
            } else {
                config.ruleBug = RuleBug::SkipForcedL3Merge;
            }
        } else if (arg == "--quiet" || arg == "-q") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }

    try {
        TopologyModelChecker checker(config);
        const double t0 = perfNowSec();
        const bool clean = checker.run();
        const double seconds = perfNowSec() - t0;

        if (!clean) {
            printCounterexample(std::cout,
                                *checker.counterexample());
            std::printf("%s time=%.2fs\n",
                        checker.summary().c_str(), seconds);
            std::printf("FAIL: the reconfiguration engine violated "
                        "its invariants\n");
            return 2;
        }
        if (config.ruleBug != RuleBug::None) {
            std::printf("%s time=%.2fs\n",
                        checker.summary().c_str(), seconds);
            std::printf(
                "FAIL: planted rule bug '%s' was NOT detected — "
                "the checker has lost its teeth\n",
                ruleBugName(config.ruleBug));
            return 2;
        }
        if (!quiet) {
            std::printf("%s time=%.2fs\n",
                        checker.summary().c_str(), seconds);
            std::printf("OK: every reachable proposal satisfies "
                        "partition validity, group shape, "
                        "inclusiveness, and line conservation\n");
        }
        return 0;
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

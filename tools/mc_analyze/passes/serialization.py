"""Pass 2: serialization coverage.

The checkpoint subsystem's resume≡uninterrupted byte-identity
contract (DESIGN.md §11) is only as strong as saveState/loadState
field coverage: a member added to a class but not to its checkpoint
sections diverges a resume with no test that knows to look. This
pass proves, for every class defining both ``saveState`` and
``loadState``, that every non-static data member is either

  * referenced in the saveState AND loadState bodies (transitively
    through same-class helper methods), or
  * annotated on its declaration line (or the line above):
      ``// ckpt: derived(<site>)``  — reconstructed after load; the
        named site (a function/method/class visible to the
        analyzer) is where the reconstruction happens, and the
        annotation is broken if that site does not exist;
      ``// ckpt: transient(<why>)`` — intentionally ephemeral
        (telemetry, caches rebuilt lazily, wiring pointers).

A class with a declared-but-nowhere-defined pair (e.g. an abstract
interface) is skipped: the contract lands on the classes with
bodies.
"""

from __future__ import annotations

import re

from model import Finding, FuncModel
from passes.common import Index


def _bodies(index: Index, cls: str, method: str) -> list[FuncModel]:
    return [f for f in index.funcs.get((cls, method), [])]


def _closure_idents(index: Index, cls: str, start: str) -> \
        set[str] | None:
    """Union of identifier references across `start` and every
    same-class method it (transitively) calls. None when no body
    for `start` exists anywhere."""
    cm = index.classes.get(cls)
    methods = set(cm.methods) if cm else set()
    seen: set[str] = set()
    idents: set[str] = set()
    work = [start]
    found_any = False
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        for fn in _bodies(index, cls, name):
            found_any = True
            idents |= fn.idents
            for call in fn.calls:
                callee = call[0].split(".")[-1].split(":")[-1]
                if callee in methods and callee not in seen:
                    work.append(callee)
    return idents if found_any else None


def _known_site(index: Index, arg: str) -> bool:
    m = re.search(r"[A-Za-z_][A-Za-z0-9_]*", arg or "")
    if not m:
        return False
    name = m.group(0)
    if name in index.classes:
        return True
    if name in index.funcs_by_name:
        return True
    # Method of any class (declared, possibly not defined).
    return any(name in cm.methods for cm in index.classes.values())


def run_serialization(index: Index, scope) -> list[Finding]:
    findings: list[Finding] = []
    for fm in index.models:
        if not scope(fm.path, "serialization"):
            continue
        for cm in fm.classes:
            if "saveState" not in cm.methods or \
                    "loadState" not in cm.methods:
                continue
            save = _closure_idents(index, cm.name, "saveState")
            load = _closure_idents(index, cm.name, "loadState")
            if save is None or load is None:
                continue  # interface: no body anywhere
            for m in cm.members:
                if m.static:
                    continue
                site = f"{cm.name}.{m.name}"
                if m.annot == "transient":
                    continue
                if m.annot == "derived":
                    if not m.annot_arg or \
                            not _known_site(index, m.annot_arg):
                        findings.append(Finding(
                            fm.path, m.line, "serialization",
                            f"member '{m.name}' is annotated "
                            "'ckpt: derived' but names no "
                            "reconstruction site the analyzer can "
                            "see; use // ckpt: derived(<function "
                            "or class>)",
                            site + ":annot"))
                    continue
                missing = []
                if m.name not in save:
                    missing.append("saveState")
                if m.name not in load:
                    missing.append("loadState")
                if missing:
                    findings.append(Finding(
                        fm.path, m.line, "serialization",
                        f"member '{cm.name}::{m.name}' is not "
                        f"referenced in {' or '.join(missing)}; "
                        "serialize it or annotate "
                        "// ckpt: derived(<site>) | "
                        "// ckpt: transient(<why>)",
                        site))
    return findings


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interconnect/arbiter.cc" "src/interconnect/CMakeFiles/mc_interconnect.dir/arbiter.cc.o" "gcc" "src/interconnect/CMakeFiles/mc_interconnect.dir/arbiter.cc.o.d"
  "/root/repo/src/interconnect/bus_sim.cc" "src/interconnect/CMakeFiles/mc_interconnect.dir/bus_sim.cc.o" "gcc" "src/interconnect/CMakeFiles/mc_interconnect.dir/bus_sim.cc.o.d"
  "/root/repo/src/interconnect/delay_model.cc" "src/interconnect/CMakeFiles/mc_interconnect.dir/delay_model.cc.o" "gcc" "src/interconnect/CMakeFiles/mc_interconnect.dir/delay_model.cc.o.d"
  "/root/repo/src/interconnect/segmented_bus.cc" "src/interconnect/CMakeFiles/mc_interconnect.dir/segmented_bus.cc.o" "gcc" "src/interconnect/CMakeFiles/mc_interconnect.dir/segmented_bus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

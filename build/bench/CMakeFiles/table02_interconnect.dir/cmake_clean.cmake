file(REMOVE_RECURSE
  "CMakeFiles/table02_interconnect.dir/table02_interconnect.cc.o"
  "CMakeFiles/table02_interconnect.dir/table02_interconnect.cc.o.d"
  "table02_interconnect"
  "table02_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

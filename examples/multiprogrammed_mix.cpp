/**
 * @file
 * Multiprogrammed scenario: run any Table 5 mix under every scheme
 * in the paper — static topologies, MorphCache, PIPP, DSR — and
 * print a comparison table.
 *
 * Usage: multiprogrammed_mix [MIX_NUMBER]   (default 1)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/dsr.hh"
#include "baselines/pipp.hh"
#include "sim/config.hh"
#include "sim/simulation.hh"
#include "workload/generator.hh"

using namespace morphcache;

namespace {

double
runScheme(MemorySystem &system, const MixSpec &mix,
          const GeneratorParams &gen, const SimParams &sim)
{
    MixWorkload workload(mix, gen, /*seed=*/42);
    Simulation simulation(system, workload, sim);
    return simulation.run().avgThroughput;
}

} // namespace

int
main(int argc, char **argv)
{
    int mix_no = argc > 1 ? std::atoi(argv[1]) : 1;
    if (mix_no < 1 || mix_no > 12) {
        std::fprintf(stderr, "usage: %s [1..12]\n", argv[0]);
        return 1;
    }
    char mix_name[16];
    std::snprintf(mix_name, sizeof(mix_name), "MIX %02d", mix_no);
    const MixSpec &mix = mixByName(mix_name);

    const HierarchyParams hier = experimentHierarchy(16);
    SimParams sim;
    sim.epochs = 10;

    const GeneratorParams gen = generatorFor(hier);

    std::printf("%-14s  throughput (sum of IPCs)\n", mix.name);

    struct { const char *label; int x, y, z; } statics[] = {
        {"(16:1:1)", 16, 1, 1}, {"(1:1:16)", 1, 1, 16},
        {"(4:4:1)", 4, 4, 1},   {"(8:2:1)", 8, 2, 1},
        {"(1:16:1)", 1, 16, 1},
    };
    double base = 0.0;
    for (const auto &s : statics) {
        StaticTopologySystem sys(
            hier, Topology::symmetric(16, s.x, s.y, s.z));
        const double tput = runScheme(sys, mix, gen, sim);
        if (base == 0.0)
            base = tput;
        std::printf("  %-12s %6.3f  (%.3fx)\n", s.label, tput,
                    tput / base);
    }
    {
        PippSystem sys(hier);
        const double tput = runScheme(sys, mix, gen, sim);
        std::printf("  %-12s %6.3f  (%.3fx)\n", "PIPP", tput,
                    tput / base);
    }
    {
        DsrSystem sys(hier);
        const double tput = runScheme(sys, mix, gen, sim);
        std::printf("  %-12s %6.3f  (%.3fx)\n", "DSR", tput,
                    tput / base);
    }
    {
        MorphCacheSystem sys(hier, MorphConfig{});
        const double tput = runScheme(sys, mix, gen, sim);
        std::printf("  %-12s %6.3f  (%.3fx)\n", "MorphCache", tput,
                    tput / base);
    }
    return 0;
}

#include "morph/controller.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "stats/profiler.hh"
#include "stats/registry.hh"
#include "stats/report.hh"
#include "stats/tracing.hh"

namespace morphcache {

MorphController::MorphController(const MorphConfig &config,
                                 std::uint32_t num_cores)
    : config_(config), numCores_(num_cores), msatNow_(config.msat),
      msatL3Now_(config.msatL3),
      l2MergeStamp_(num_cores, 0), l3MergeStamp_(num_cores, 0),
      lastMissSnapshot_(num_cores, 0), prevEpochMisses_(num_cores, 0),
      checker_(config.checkPolicy)
{
    if (num_cores < 2)
        throw ConfigError("MorphController requires >= 2 cores");
    if (!(config.msat.high > config.msat.low))
        throw ConfigError("MSAT high bound must exceed the low bound");
    if (config.faults.enabled())
        ownedFaults_ = std::make_unique<FaultInjector>(config.faults);
}

FaultInjector *
MorphController::faultInjector() const
{
    return attachedFaults_ ? attachedFaults_ : ownedFaults_.get();
}

void
MorphController::attachFaultInjector(FaultInjector *injector)
{
    attachedFaults_ = injector;
}

MergeEval
MorphController::evaluateMerge(const LevelSignals &level,
                               const MsatConfig &msat,
                               const std::vector<SliceId> &a,
                               const std::vector<SliceId> &b,
                               FaultInjector *faults) const
{
    MergeEval eval;
    const MergeSignals sig = level.mergeSignals(a, b);
    eval.utilA = sig.utilA;
    eval.utilB = sig.utilB;
    const double h = msat.high;
    const double l = msat.low;

    // Condition (i): capacity sharing — one hot, one cold. The
    // cold side must also be low-churn: a slice full of streaming
    // fills reads a tiny *reused* footprint but offers no usable
    // spare capacity (its fills would evict whatever the hot
    // partner spills into it).
    if ((eval.utilA > h && eval.utilB < l &&
         sig.fillPressureB < config_.coldChurnLimit) ||
        (eval.utilB > h && eval.utilA < l &&
         sig.fillPressureA < config_.coldChurnLimit)) {
        eval.desirable = true;
        eval.condition = 1;
    }

    // Condition (ii): data sharing — one address space, both
    // groups actively used, significant footprint overlap. The
    // paper states this for two *highly* utilized slices; the
    // replication/transfer savings it reasons from exist at any
    // non-trivial utilization, and at this model's estimator scale
    // an above-high gate would disable the sharing path entirely
    // (DESIGN.md deviation 4), so the gate here is above-low.
    if (!eval.desirable && config_.sharedAddressSpace &&
        eval.utilA > l && eval.utilB > l) {
        eval.overlap = level.overlap(a, b);
        if (eval.overlap >= config_.sharingOverlapThreshold) {
            eval.desirable = true;
            eval.condition = 2;
        }
    }

    // Injected MSAT corruption: the latched classification inverts.
    if (faults && faults->corruptClassification()) {
        eval.desirable = !eval.desirable;
        eval.condition = eval.desirable ? 3 : 0;
    }
    return eval;
}

SplitEval
MorphController::evaluateSplit(const LevelSignals &level,
                               const MsatConfig &msat,
                               const std::vector<SliceId> &group,
                               FaultInjector *faults) const
{
    SplitEval eval;
    if (group.size() < 2)
        return eval;
    std::vector<SliceId> first, second;
    splitGroup(group, first, second);
    const SplitSignals sig = level.splitSignals(first, second);
    eval.utilFirst = sig.utilFirst;
    eval.utilSecond = sig.utilSecond;
    // Both halves hot: the merge no longer buys capacity sharing;
    // it only costs merged-access latency and interference — unless
    // the halves genuinely share data (Section 2.3 / Figure 6).
    const double split_bar = msat.high * config_.splitHighFactor;
    if (eval.utilFirst > split_bar && eval.utilSecond > split_bar) {
        eval.desirable = true;
        if (config_.sharedAddressSpace) {
            eval.overlap = level.overlap(first, second);
            if (eval.overlap >= config_.sharingOverlapThreshold)
                eval.desirable = false;
        }
    }

    if (faults && faults->corruptClassification()) {
        eval.desirable = !eval.desirable;
        eval.faultInverted = true;
    }
    return eval;
}

void
MorphController::countMergeCondition(const MergeEval &eval)
{
    if (eval.condition == 1)
        ++stats_.mergesCondI;
    else if (eval.condition == 2)
        ++stats_.mergesCondII;
}

namespace {

const char *
mergeConditionName(int condition)
{
    switch (condition) {
      case 1: return "capacity";
      case 2: return "sharing";
      case 3: return "fault";
      default: return "none";
    }
}

} // namespace

void
MorphController::traceMerge(const char *level,
                            const ProposalEvent &event,
                            const MsatConfig &msat)
{
    if (!tracer_ || !tracer_->enabled())
        return;
    TraceEvent ev("merge");
    ev.str("level", level)
        .str("cond", mergeConditionName(event.merge.condition))
        .u64("aFirst", event.aFirst)
        .u64("aLast", event.aLast)
        .u64("bFirst", event.bFirst)
        .u64("bLast", event.bLast)
        .f64("utilA", event.merge.utilA)
        .f64("utilB", event.merge.utilB)
        .f64("overlap", event.merge.overlap)
        .f64("msatHigh", msat.high)
        .f64("msatLow", msat.low);
    tracer_->emit(ev);
}

void
MorphController::traceForcedMerge(const ProposalEvent &event)
{
    if (!tracer_ || !tracer_->enabled())
        return;
    TraceEvent ev("merge");
    ev.str("level", "l3")
        .str("cond", "forced")
        .u64("aFirst", event.aFirst)
        .u64("aLast", event.aLast)
        .u64("bFirst", event.bFirst)
        .u64("bLast", event.bLast)
        .f64("utilA", event.merge.utilA)
        .f64("utilB", event.merge.utilB)
        .f64("msatHigh", msatL3Now_.high)
        .f64("msatLow", msatL3Now_.low);
    tracer_->emit(ev);
}

void
MorphController::traceSplit(const char *level,
                            const ProposalEvent &event,
                            const MsatConfig &msat, bool forced)
{
    if (!tracer_ || !tracer_->enabled())
        return;
    TraceEvent ev("split");
    ev.str("level", level)
        .str("cond", forced ? "forced"
                     : event.split.faultInverted ? "fault"
                                                 : "interference")
        .u64("first", event.aFirst)
        .u64("last", event.aLast)
        .f64("utilFirst", event.split.utilFirst)
        .f64("utilSecond", event.split.utilSecond)
        .f64("overlap", event.split.overlap)
        .f64("splitBar", msat.high * config_.splitHighFactor);
    tracer_->emit(ev);
}

void
MorphController::traceClassification(const char *level,
                                     const CacheLevelModel &model,
                                     const Partition &partition,
                                     const MsatConfig &msat)
{
    if (!tracer_ || !tracer_->enabled())
        return;
    for (const std::vector<SliceId> &group : partition) {
        const double util = model.utilization(group);
        TraceEvent ev("classify");
        ev.str("level", level)
            .u64("first", group.front())
            .u64("last", group.back())
            .f64("util", util)
            .f64("msatHigh", msat.high)
            .f64("msatLow", msat.low)
            .str("class", util > msat.high  ? "high"
                          : util < msat.low ? "under"
                                            : "mid");
        tracer_->emit(ev);
    }
}

bool
MorphController::mergeAllowed(const std::vector<SliceId> &a,
                              const std::vector<SliceId> &b,
                              RuleBug bug) const
{
    if (config_.allowNonNeighborGroups)
        return true;
    // Neighbors only: the ranges must be contiguous back-to-back.
    const SliceId a_hi = a.back();
    const SliceId b_lo = b.front();
    if (a_hi + 1 != b_lo)
        return false;
    if (config_.allowArbitraryGroupSizes)
        return true;
    // Planted model-checker bug: accept any contiguous pair, even
    // when the result is not an aligned power of two.
    if (bug == RuleBug::IgnoreAlignment)
        return true;
    // Default mode: merged group must be an aligned power of two
    // (private/dual/quad/oct/all-shared, Section 2).
    const auto combined =
        static_cast<std::uint32_t>(a.size() + b.size());
    if (!isPowerOf2(combined))
        return false;
    return a.front() % combined == 0;
}

void
MorphController::splitGroup(const std::vector<SliceId> &group,
                            std::vector<SliceId> &first,
                            std::vector<SliceId> &second)
{
    const std::size_t half = group.size() / 2;
    first.assign(group.begin(), group.begin() + half);
    second.assign(group.begin() + half, group.end());
}

bool
MorphController::outcomeAsymmetric(const TransitionProposal &p) const
{
    Topology topo;
    topo.numCores = numCores_;
    topo.l2 = p.l2;
    topo.l3 = p.l3;
    return !topo.isSymmetric();
}

namespace {

/** Merge partition groups i and j (j > i) in place. */
void
mergeInto(Partition &partition, std::vector<char> &merged_now,
          std::size_t i, std::size_t j)
{
    auto &dst = partition[i];
    auto &src = partition[j];
    dst.insert(dst.end(), src.begin(), src.end());
    std::sort(dst.begin(), dst.end());
    partition.erase(partition.begin() +
                    static_cast<std::ptrdiff_t>(j));
    merged_now[i] = 1;
    merged_now.erase(merged_now.begin() +
                     static_cast<std::ptrdiff_t>(j));
}

/** Index of the partition group containing a slice. */
std::size_t
groupIndexOf(const Partition &partition, SliceId slice)
{
    for (std::size_t g = 0; g < partition.size(); ++g) {
        for (SliceId member : partition[g]) {
            if (member == slice)
                return g;
        }
    }
    panic("slice %u not found in partition", slice);
}

} // namespace

void
MorphController::doL3Merges(const DecisionInputs &in,
                            TransitionProposal &p) const
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i + 1 < p.l3.size() && !changed;
             ++i) {
            const std::size_t j_end = config_.allowNonNeighborGroups
                                          ? p.l3.size()
                                          : i + 2;
            for (std::size_t j = i + 1; j < j_end; ++j) {
                if (!mergeAllowed(p.l3[i], p.l3[j], in.ruleBug))
                    continue;
                const MergeEval eval =
                    evaluateMerge(*in.l3, in.msatL3, p.l3[i],
                                  p.l3[j], in.faults);
                if (!eval.desirable)
                    continue;
                ProposalEvent ev;
                ev.kind = ProposalEvent::Kind::L3Merge;
                ev.aFirst = p.l3[i].front();
                ev.aLast = p.l3[i].back();
                ev.bFirst = p.l3[j].front();
                ev.bLast = p.l3[j].back();
                ev.merge = eval;
                mergeInto(p.l3, p.l3MergedNow, i, j);
                ++p.merges;
                ev.asymmetric =
                    in.classifyOutcomes && outcomeAsymmetric(p);
                p.events.push_back(ev);
                changed = true;
                break;
            }
        }
    }
}

void
MorphController::doL2Merges(const DecisionInputs &in,
                            TransitionProposal &p) const
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i + 1 < p.l2.size() && !changed;
             ++i) {
            const std::size_t j_end = config_.allowNonNeighborGroups
                                          ? p.l2.size()
                                          : i + 2;
            for (std::size_t j = i + 1; j < j_end; ++j) {
                if (!mergeAllowed(p.l2[i], p.l2[j], in.ruleBug))
                    continue;
                const MergeEval eval =
                    evaluateMerge(*in.l2, in.msatL2, p.l2[i],
                                  p.l2[j], in.faults);
                if (!eval.desirable)
                    continue;

                // Inclusion (Section 2.2): the merged L2 group must
                // be backed by a single L3 group; merge the covering
                // L3 groups when they are distinct (always safe) and
                // structurally mergeable.
                const std::size_t g3a =
                    groupIndexOf(p.l3, p.l2[i].front());
                const std::size_t g3b =
                    groupIndexOf(p.l3, p.l2[j].front());
                if (g3a != g3b &&
                    in.ruleBug != RuleBug::SkipForcedL3Merge) {
                    const std::size_t lo = std::min(g3a, g3b);
                    const std::size_t hi = std::max(g3a, g3b);
                    if (!mergeAllowed(p.l3[lo], p.l3[hi], in.ruleBug))
                        continue;
                    // Non-neighbor mode aside, covering groups are
                    // adjacent whenever the L2 groups are.
                    if (!config_.allowNonNeighborGroups &&
                        hi != lo + 1) {
                        continue;
                    }
                    // Structural merge for inclusion, not ACF-driven.
                    ProposalEvent forced;
                    forced.kind = ProposalEvent::Kind::ForcedL3Merge;
                    forced.aFirst = p.l3[lo].front();
                    forced.aLast = p.l3[lo].back();
                    forced.bFirst = p.l3[hi].front();
                    forced.bLast = p.l3[hi].back();
                    if (in.provenance) {
                        forced.merge.utilA =
                            in.l3->utilization(p.l3[lo]);
                        forced.merge.utilB =
                            in.l3->utilization(p.l3[hi]);
                    }
                    mergeInto(p.l3, p.l3MergedNow, lo, hi);
                    ++p.merges;
                    forced.asymmetric =
                        in.classifyOutcomes && outcomeAsymmetric(p);
                    p.events.push_back(forced);
                }

                ProposalEvent ev;
                ev.kind = ProposalEvent::Kind::L2Merge;
                ev.aFirst = p.l2[i].front();
                ev.aLast = p.l2[i].back();
                ev.bFirst = p.l2[j].front();
                ev.bLast = p.l2[j].back();
                ev.merge = eval;
                mergeInto(p.l2, p.l2MergedNow, i, j);
                ++p.merges;
                ev.asymmetric =
                    in.classifyOutcomes && outcomeAsymmetric(p);
                p.events.push_back(ev);
                changed = true;
                break;
            }
        }
    }
}

void
MorphController::doL2Splits(const DecisionInputs &in,
                            TransitionProposal &p) const
{
    for (std::size_t g = 0; g < p.l2.size(); ++g) {
        if (p.l2MergedNow[g])
            continue; // merge-aggressive exclusion
        // Hysteresis: leave freshly merged groups alone.
        if (in.l2MergeStamps) {
            const std::uint64_t l2_stamp =
                (*in.l2MergeStamps)[p.l2[g].front()];
            if (p.l2[g].size() > 1 && l2_stamp != 0 &&
                in.decisionIndex <
                    l2_stamp + config_.minEpochsBeforeSplit) {
                continue;
            }
        }
        const SplitEval eval =
            evaluateSplit(*in.l2, in.msatL2, p.l2[g], in.faults);
        if (!eval.desirable)
            continue;
        ProposalEvent ev;
        ev.kind = ProposalEvent::Kind::L2Split;
        ev.aFirst = p.l2[g].front();
        ev.aLast = p.l2[g].back();
        ev.split = eval;
        std::vector<SliceId> first, second;
        splitGroup(p.l2[g], first, second);
        p.l2[g] = std::move(first);
        p.l2.insert(p.l2.begin() + static_cast<std::ptrdiff_t>(g) +
                        1,
                    std::move(second));
        p.l2MergedNow.insert(p.l2MergedNow.begin() +
                                 static_cast<std::ptrdiff_t>(g) + 1,
                             0);
        ++p.splits;
        ev.asymmetric = in.classifyOutcomes && outcomeAsymmetric(p);
        p.events.push_back(ev);
        ++g; // skip the freshly created second half
    }
}

void
MorphController::doL3Splits(const DecisionInputs &in,
                            TransitionProposal &p) const
{
    for (std::size_t g = 0; g < p.l3.size(); ++g) {
        if (p.l3MergedNow[g])
            continue;
        if (in.l3MergeStamps) {
            const std::uint64_t l3_stamp =
                (*in.l3MergeStamps)[p.l3[g].front()];
            if (p.l3[g].size() > 1 && l3_stamp != 0 &&
                in.decisionIndex <
                    l3_stamp + config_.minEpochsBeforeSplit) {
                continue;
            }
        }
        const SplitEval eval =
            evaluateSplit(*in.l3, in.msatL3, p.l3[g], in.faults);
        if (!eval.desirable)
            continue;

        std::vector<SliceId> first, second;
        splitGroup(p.l3[g], first, second);

        // Inclusion (Section 2.3): every L2 group under this L3
        // group must fit within one half; straddling groups must
        // themselves be splittable, else the L3 split is dropped.
        auto in_half = [](const std::vector<SliceId> &group,
                          const std::vector<SliceId> &half) {
            for (SliceId member : group) {
                if (std::find(half.begin(), half.end(), member) ==
                    half.end()) {
                    return false;
                }
            }
            return true;
        };

        Partition new_l2 = p.l2;
        std::vector<char> new_l2_merged = p.l2MergedNow;
        std::uint64_t extra_splits = 0;
        // Straddling L2 splits applied for inclusion, recorded as
        // events only after the whole proposal proves feasible.
        std::vector<ProposalEvent> forced_l2;
        bool feasible = true;
        // Planted model-checker bug: split the L3 group without
        // splitting the L2 groups that straddle its halves.
        const bool skip_forced =
            in.ruleBug == RuleBug::SkipForcedL2Split;
        for (std::size_t k = 0;
             k < new_l2.size() && feasible && !skip_forced; ++k) {
            const auto &group = new_l2[k];
            // Only groups under this L3 group matter.
            if (std::find(p.l3[g].begin(), p.l3[g].end(),
                          group.front()) == p.l3[g].end()) {
                continue;
            }
            if (in_half(group, first) || in_half(group, second))
                continue;
            if (new_l2_merged[k]) {
                feasible = false;
                break;
            }
            const SplitEval l2_eval =
                evaluateSplit(*in.l2, in.msatL2, group, in.faults);
            if (!l2_eval.desirable) {
                feasible = false;
                break;
            }
            ProposalEvent fev;
            fev.kind = ProposalEvent::Kind::ForcedL2Split;
            fev.aFirst = group.front();
            fev.aLast = group.back();
            fev.split = l2_eval;
            forced_l2.push_back(fev);
            std::vector<SliceId> l2_first, l2_second;
            splitGroup(group, l2_first, l2_second);
            if (!(in_half(l2_first, first) &&
                  in_half(l2_second, second))) {
                feasible = false;
                break;
            }
            new_l2[k] = std::move(l2_first);
            new_l2.insert(new_l2.begin() +
                              static_cast<std::ptrdiff_t>(k) + 1,
                          std::move(l2_second));
            new_l2_merged.insert(new_l2_merged.begin() +
                                     static_cast<std::ptrdiff_t>(k) +
                                     1,
                                 0);
            ++extra_splits;
            ++k;
        }
        if (!feasible)
            continue;

        ProposalEvent ev;
        ev.kind = ProposalEvent::Kind::L3Split;
        ev.aFirst = p.l3[g].front();
        ev.aLast = p.l3[g].back();
        ev.split = eval;

        p.l2 = std::move(new_l2);
        p.l2MergedNow = std::move(new_l2_merged);
        p.l3[g] = std::move(first);
        p.l3.insert(p.l3.begin() + static_cast<std::ptrdiff_t>(g) +
                        1,
                    std::move(second));
        p.l3MergedNow.insert(p.l3MergedNow.begin() +
                                 static_cast<std::ptrdiff_t>(g) + 1,
                             0);
        p.splits += 1 + extra_splits;
        const bool asym =
            in.classifyOutcomes && outcomeAsymmetric(p);
        ev.asymmetric = asym;
        p.events.push_back(ev);
        for (ProposalEvent &fev : forced_l2) {
            fev.asymmetric = asym;
            p.events.push_back(fev);
        }
        ++g;
    }
}

void
MorphController::throttleMsat(const Hierarchy &hierarchy)
{
    std::vector<std::uint64_t> epoch_misses(numCores_, 0);
    for (std::uint32_t c = 0; c < numCores_; ++c) {
        const std::uint64_t cumulative =
            hierarchy.coreStats(static_cast<CoreId>(c)).misses();
        epoch_misses[c] = cumulative - lastMissSnapshot_[c];
        lastMissSnapshot_[c] = cumulative;
    }

    if (havePrevEpoch_ && mergedLastEpoch_) {
        // A merge happened last boundary: did it hurt anyone?
        bool worse = false;
        for (std::uint32_t c = 0; c < numCores_; ++c) {
            const double before =
                static_cast<double>(prevEpochMisses_[c]);
            const double after =
                static_cast<double>(epoch_misses[c]);
            if (after >
                before * (1.0 + config_.qosMissTolerance) + 16.0) {
                worse = true;
                break;
            }
        }
        const double step =
            worse ? config_.qosStep : -config_.qosStep;
        // Throttle up (worse): drift toward a private
        // configuration; throttle down: merge more aggressively.
        msatNow_.high = std::clamp(msatNow_.high + step,
                                   config_.msatHighMin,
                                   config_.msatHighMax);
        msatNow_.low = std::clamp(msatNow_.low - step,
                                  config_.msatLowMin,
                                  config_.msatLowMax);
        msatL3Now_.high = std::clamp(msatL3Now_.high + step,
                                     0.15, config_.msatHighMax);
        msatL3Now_.low = std::clamp(msatL3Now_.low - step, 0.03,
                                    config_.msatLowMax);
        if (msatNow_.low > msatNow_.high - 0.05)
            msatNow_.low = msatNow_.high - 0.05;
        if (msatL3Now_.low > msatL3Now_.high - 0.05)
            msatL3Now_.low = msatL3Now_.high - 0.05;
    }

    prevEpochMisses_ = std::move(epoch_misses);
    havePrevEpoch_ = true;
}

ShapeRule
MorphController::shapeRule() const
{
    if (config_.allowNonNeighborGroups)
        return ShapeRule::Any;
    if (config_.allowArbitraryGroupSizes)
        return ShapeRule::Contiguous;
    return ShapeRule::AlignedPow2;
}

bool
MorphController::checkDecision(const Partition &l2,
                               const Partition &l3,
                               const char *phase)
{
    if (!checker_.enabled())
        return false;
    Topology topo;
    topo.numCores = numCores_;
    topo.l2 = l2;
    topo.l3 = l3;
    return checker_.report(phase,
                           checker_.checkTopology(topo, shapeRule()));
}

void
MorphController::handleViolation(Hierarchy &hierarchy,
                                 bool dropped_proposal)
{
    ++robust_.violationEpochs;
    switch (checker_.policy()) {
      case CheckPolicy::Recover:
        enterQuarantine(hierarchy);
        break;
      case CheckPolicy::Log:
        if (dropped_proposal)
            ++robust_.droppedTopologies;
        break;
      default:
        // Off never detects; Abort already panicked in report().
        break;
    }
}

void
MorphController::enterQuarantine(Hierarchy &hierarchy)
{
    ++robust_.quarantines;
    quarantineLeft_ = std::max<std::uint32_t>(
        1, config_.quarantineCleanEpochs);
    if (tracer_ && tracer_->enabled()) {
        TraceEvent ev("quarantine");
        ev.u64("holdEpochs", quarantineLeft_)
            .u64("violations", checker_.stats().violations);
        tracer_->emit(ev);
    }
    const Topology safe = Topology::allPrivateTopology(numCores_);
    if (!(hierarchy.topology() == safe))
        hierarchy.reconfigure(safe);
    // Adaptation memory is discarded wholesale: stale merge stamps
    // and a corrupted QoS history would otherwise steer the first
    // decisions after the quarantine lifts.
    std::fill(l2MergeStamp_.begin(), l2MergeStamp_.end(), 0);
    std::fill(l3MergeStamp_.begin(), l3MergeStamp_.end(), 0);
    mergedLastEpoch_ = false;
    havePrevEpoch_ = false;
    msatNow_ = config_.msat;
    msatL3Now_ = config_.msatL3;
}

void
MorphController::quarantineEpoch(Hierarchy &hierarchy)
{
    ++robust_.quarantineEpochs;
    // The quarantine topology is static; an epoch only counts as
    // clean when the quarantined hierarchy itself verifies. Footprint
    // noise (e.g. injected ACFV flips) does not restart the hold —
    // only structural damage does.
    bool clean = true;
    if (checker_.enabled()) {
        auto violations =
            checker_.checkTopology(hierarchy.topology(), shapeRule());
        const auto occupancy = checker_.checkOccupancy(hierarchy);
        violations.insert(violations.end(), occupancy.begin(),
                          occupancy.end());
        clean = !checker_.report("quarantine epoch", violations);
    }
    if (clean) {
        if (--quarantineLeft_ == 0) {
            ++robust_.recoveries;
            if (tracer_ && tracer_->enabled()) {
                TraceEvent ev("recovery");
                ev.u64("quarantineEpochs",
                       robust_.quarantineEpochs)
                    .u64("recoveries", robust_.recoveries);
                tracer_->emit(ev);
            }
        }
    } else {
        ++robust_.violationEpochs;
        quarantineLeft_ = std::max<std::uint32_t>(
            1, config_.quarantineCleanEpochs);
    }
    // Keep the QoS miss snapshot current so the first post-quarantine
    // epoch does not see a multi-epoch miss delta.
    for (std::uint32_t c = 0; c < numCores_; ++c) {
        lastMissSnapshot_[c] =
            hierarchy.coreStats(static_cast<CoreId>(c)).misses();
    }
    hierarchy.resetFootprints();
}

TransitionProposal
MorphController::proposeTransition(const Topology &current,
                                   const DecisionInputs &in) const
{
    TransitionProposal p;
    p.l2 = current.l2;
    p.l3 = current.l3;
    p.l2MergedNow.assign(p.l2.size(), 0);
    p.l3MergedNow.assign(p.l3.size(), 0);

    const auto gate = [&](const char *phase) {
        if (in.phaseCheck && in.phaseCheck(p.l2, p.l3, phase)) {
            p.abandonedPhase = phase;
            return true;
        }
        return false;
    };

    if (config_.conflict == ConflictPolicy::MergeAggressive) {
        doL3Merges(in, p);
        if (gate("L3 merge phase"))
            return p;
        doL2Merges(in, p);
        if (gate("L2 merge phase"))
            return p;
        doL2Splits(in, p);
        if (gate("L2 split phase"))
            return p;
        doL3Splits(in, p);
        gate("L3 split phase");
        return p;
    }
    doL2Splits(in, p);
    if (gate("L2 split phase"))
        return p;
    doL3Splits(in, p);
    if (gate("L3 split phase"))
        return p;
    doL3Merges(in, p);
    if (gate("L3 merge phase"))
        return p;
    doL2Merges(in, p);
    gate("L2 merge phase");
    return p;
}

void
MorphController::replayProposal(const TransitionProposal &p)
{
    for (const ProposalEvent &ev : p.events) {
        switch (ev.kind) {
          case ProposalEvent::Kind::L3Merge:
            ++stats_.merges;
            countMergeCondition(ev.merge);
            traceMerge("l3", ev, msatL3Now_);
            break;
          case ProposalEvent::Kind::L2Merge:
            ++stats_.merges;
            countMergeCondition(ev.merge);
            traceMerge("l2", ev, msatNow_);
            break;
          case ProposalEvent::Kind::ForcedL3Merge:
            ++stats_.merges;
            ++stats_.mergesForced;
            traceForcedMerge(ev);
            break;
          case ProposalEvent::Kind::L2Split:
            ++stats_.splits;
            traceSplit("l2", ev, msatNow_, false);
            break;
          case ProposalEvent::Kind::L3Split:
            ++stats_.splits;
            traceSplit("l3", ev, msatL3Now_, false);
            break;
          case ProposalEvent::Kind::ForcedL2Split:
            ++stats_.splits;
            ++stats_.splitsForced;
            traceSplit("l2", ev, msatNow_, true);
            break;
        }
        if (ev.asymmetric)
            ++stats_.asymmetricOutcomes;
    }
}

void
MorphController::epochBoundary(Hierarchy &hierarchy)
{
    ++stats_.decisions;

    // Injected ACFV soft errors land before the footprints are read,
    // like real upsets accumulated over the epoch.
    if (FaultInjector *faults = faultInjector()) {
        faults->injectAcfvFaults(hierarchy.l2());
        faults->injectAcfvFaults(hierarchy.l3());
    }

    if (quarantineLeft_ > 0) {
        quarantineEpoch(hierarchy);
        return;
    }

    if (config_.qosThrottling)
        throttleMsat(hierarchy);

    const CacheLevelModel &l2 = hierarchy.l2();
    const CacheLevelModel &l3 = hierarchy.l3();

    traceClassification("l2", l2, hierarchy.topology().l2, msatNow_);
    traceClassification("l3", l3, hierarchy.topology().l3,
                        msatL3Now_);

    const CacheLevelSignals l2_signals(l2);
    const CacheLevelSignals l3_signals(l3);
    DecisionInputs in;
    in.l2 = &l2_signals;
    in.l3 = &l3_signals;
    in.msatL2 = msatNow_;
    in.msatL3 = msatL3Now_;
    in.decisionIndex = stats_.decisions;
    in.l2MergeStamps = &l2MergeStamp_;
    in.l3MergeStamps = &l3MergeStamp_;
    in.faults = faultInjector();
    in.phaseCheck = [this](const Partition &l2_part,
                           const Partition &l3_part,
                           const char *phase) {
        return checkDecision(l2_part, l3_part, phase);
    };
    in.provenance = tracer_ && tracer_->enabled();

    TransitionProposal proposal =
        proposeTransition(hierarchy.topology(), in);
    // The pure decision is over; land its effects: activity
    // counters and provenance traces, in decision order. Abandoned
    // proposals keep the events decided before the failing phase,
    // exactly as the counters accumulated them historically.
    replayProposal(proposal);

    if (proposal.abandoned()) {
        handleViolation(hierarchy, true);
        hierarchy.resetFootprints();
        return;
    }

    mergedLastEpoch_ = proposal.merges > 0;

    // Stamp freshly merged groups for the split hysteresis.
    for (std::size_t g = 0; g < proposal.l2.size(); ++g) {
        if (proposal.l2MergedNow[g]) {
            for (SliceId s : proposal.l2[g])
                l2MergeStamp_[s] = stats_.decisions;
        }
    }
    for (std::size_t g = 0; g < proposal.l3.size(); ++g) {
        if (proposal.l3MergedNow[g]) {
            for (SliceId s : proposal.l3[g])
                l3MergeStamp_[s] = stats_.decisions;
        }
    }

    Topology topo;
    topo.numCores = numCores_;
    topo.l2 = std::move(proposal.l2);
    topo.l3 = std::move(proposal.l3);

    // Injected controller fault: corrupt the finished proposal into
    // an illegal shape before it reaches the reconfiguration engine.
    if (FaultInjector *faults = faultInjector())
        faults->corruptTopology(topo);

    if (checker_.enabled() &&
        checker_.report("epoch proposal",
                        checker_.checkTopology(topo, shapeRule()))) {
        handleViolation(hierarchy, true);
        hierarchy.resetFootprints();
        return;
    }

    if (!(topo == hierarchy.topology())) {
        ++stats_.activeEpochs;
        if (checker_.enabled()) {
            const auto before = InvariantChecker::snapshot(hierarchy);
            {
                ScopedPhaseTimer timer(ProfPhase::ReconfigApply);
                hierarchy.reconfigure(topo);
            }
            const auto violations =
                checker_.checkConservation(hierarchy, before);
            if (checker_.report("post-reconfiguration", violations))
                handleViolation(hierarchy, false);
        } else {
            ScopedPhaseTimer timer(ProfPhase::ReconfigApply);
            hierarchy.reconfigure(topo);
        }
        if (tracer_ && tracer_->enabled()) {
            const Topology &now = hierarchy.topology();
            TraceEvent ev("topology");
            ev.u64("l2Groups", now.l2.size())
                .u64("l3Groups", now.l3.size())
                .u64("merges", proposal.merges)
                .u64("splits", proposal.splits)
                .u64("symmetric", now.isSymmetric() ? 1 : 0);
            tracer_->emit(ev);
        }
    }
    hierarchy.resetFootprints();
}

void
MorphController::registerStats(StatsRegistry &registry) const
{
    const auto bind = [&registry](const std::string &name,
                                  const std::uint64_t &field,
                                  const std::string &desc) {
        registry.bindCounter(
            name, [&field]() { return field; }, desc);
    };

    bind("morph.decisions", stats_.decisions,
         "epoch decisions taken");
    bind("morph.merges", stats_.merges, "merges applied");
    bind("morph.splits", stats_.splits, "splits applied");
    bind("morph.merges.condI", stats_.mergesCondI,
         "merges via condition (i) capacity sharing");
    bind("morph.merges.condII", stats_.mergesCondII,
         "merges via condition (ii) data sharing");
    bind("morph.merges.forced", stats_.mergesForced,
         "L3 merges forced by inclusion");
    bind("morph.splits.forced", stats_.splitsForced,
         "L2 splits forced by inclusion");
    bind("morph.activeEpochs", stats_.activeEpochs,
         "epochs with at least one change");
    bind("morph.asymmetricOutcomes", stats_.asymmetricOutcomes,
         "events yielding asymmetric topologies");
    registry.bindScalar(
        "morph.msatHigh", [this]() { return msatNow_.high; },
        "live L2 MSAT high bound (QoS-throttled)");
    registry.bindScalar(
        "morph.msatLow", [this]() { return msatNow_.low; },
        "live L2 MSAT low bound (QoS-throttled)");

    const CheckStats &cs = checker_.stats();
    bind("check.checksRun", cs.checksRun, "invariant checks run");
    bind("check.detections", cs.violations,
         "invariant violations detected");
    for (std::size_t k = 0; k < numInvariantKinds; ++k) {
        bind(std::string("check.") +
                 invariantKindName(static_cast<InvariantKind>(k)),
             cs.byKind[k], "violations of this invariant kind");
    }

    bind("robust.violationEpochs", robust_.violationEpochs,
         "epoch decisions with a violation");
    bind("robust.droppedTopologies", robust_.droppedTopologies,
         "proposals dropped under the Log policy");
    bind("robust.quarantines", robust_.quarantines,
         "quarantine entries");
    bind("robust.quarantineEpochs", robust_.quarantineEpochs,
         "epoch decisions spent quarantined");
    bind("robust.recoveries", robust_.recoveries,
         "completed quarantines");

    if (const FaultInjector *faults = faultInjector()) {
        const FaultStats &fs = faults->stats();
        bind("fault.acfvBitFlips", fs.acfvBitFlips,
             "injected ACFV bit flips");
        bind("fault.classificationFlips", fs.classificationFlips,
             "injected classification inversions");
        bind("fault.illegalTopologies", fs.illegalTopologies,
             "injected illegal topology corruptions");
        bind("fault.busDrops", fs.busDrops,
             "injected bus grant drops");
        bind("fault.busDelays", fs.busDelays,
             "injected bus grant delays");
        bind("fault.busFaultCycles", fs.busFaultCycles,
             "extra bus cycles from injected faults");
    }
}

std::string
MorphController::robustnessReport() const
{
    const FaultInjector *faults = faultInjector();
    if (!checker_.enabled() && faults == nullptr)
        return "";
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    const CheckStats &cs = checker_.stats();
    counters.emplace_back("checks run", cs.checksRun);
    counters.emplace_back("violations detected", cs.violations);
    for (std::size_t k = 0; k < numInvariantKinds; ++k) {
        if (cs.byKind[k] == 0)
            continue;
        counters.emplace_back(
            std::string("violations: ") +
                invariantKindName(static_cast<InvariantKind>(k)),
            cs.byKind[k]);
    }
    counters.emplace_back("violation epochs", robust_.violationEpochs);
    counters.emplace_back("dropped proposals",
                          robust_.droppedTopologies);
    counters.emplace_back("quarantines entered", robust_.quarantines);
    counters.emplace_back("quarantine epochs",
                          robust_.quarantineEpochs);
    counters.emplace_back("recoveries", robust_.recoveries);
    if (faults != nullptr) {
        const FaultStats &fs = faults->stats();
        counters.emplace_back("injected ACFV bit flips",
                              fs.acfvBitFlips);
        counters.emplace_back("injected classification flips",
                              fs.classificationFlips);
        counters.emplace_back("injected illegal topologies",
                              fs.illegalTopologies);
        counters.emplace_back("injected bus grant drops", fs.busDrops);
        counters.emplace_back("injected bus grant delays",
                              fs.busDelays);
        counters.emplace_back("injected bus fault cycles",
                              fs.busFaultCycles);
    }
    return countersBlock(std::string("robustness [") +
                             checkPolicyName(checker_.policy()) + "]",
                         counters);
}

void
MorphController::saveState(CkptWriter &w) const
{
    w.f64(msatNow_.high);
    w.f64(msatNow_.low);
    w.f64(msatL3Now_.high);
    w.f64(msatL3Now_.low);
    w.u64(stats_.merges);
    w.u64(stats_.splits);
    w.u64(stats_.mergesCondI);
    w.u64(stats_.mergesCondII);
    w.u64(stats_.mergesForced);
    w.u64(stats_.splitsForced);
    w.u64(stats_.activeEpochs);
    w.u64(stats_.decisions);
    w.u64(stats_.asymmetricOutcomes);
    w.u64Vec(l2MergeStamp_);
    w.u64Vec(l3MergeStamp_);
    w.u64Vec(lastMissSnapshot_);
    w.u64Vec(prevEpochMisses_);
    w.b(havePrevEpoch_);
    w.b(mergedLastEpoch_);
    checker_.saveState(w);
    w.u64(robust_.violationEpochs);
    w.u64(robust_.droppedTopologies);
    w.u64(robust_.quarantines);
    w.u64(robust_.quarantineEpochs);
    w.u64(robust_.recoveries);
    w.u64(quarantineLeft_);
    w.b(ownedFaults_ != nullptr);
    if (ownedFaults_)
        ownedFaults_->saveState(w);
}

void
MorphController::loadState(CkptReader &r)
{
    msatNow_.high = r.f64();
    msatNow_.low = r.f64();
    msatL3Now_.high = r.f64();
    msatL3Now_.low = r.f64();
    stats_.merges = r.u64();
    stats_.splits = r.u64();
    stats_.mergesCondI = r.u64();
    stats_.mergesCondII = r.u64();
    stats_.mergesForced = r.u64();
    stats_.splitsForced = r.u64();
    stats_.activeEpochs = r.u64();
    stats_.decisions = r.u64();
    stats_.asymmetricOutcomes = r.u64();
    const auto sizedU64Vec = [&r](std::vector<std::uint64_t> &dst,
                                  const char *what) {
        std::vector<std::uint64_t> v = r.u64Vec();
        if (v.size() != dst.size())
            r.fail(std::string(what) + " size mismatch: expected " +
                   std::to_string(dst.size()) + ", found " +
                   std::to_string(v.size()));
        dst = std::move(v);
    };
    sizedU64Vec(l2MergeStamp_, "L2 merge stamps");
    sizedU64Vec(l3MergeStamp_, "L3 merge stamps");
    sizedU64Vec(lastMissSnapshot_, "miss snapshot");
    sizedU64Vec(prevEpochMisses_, "previous-epoch misses");
    havePrevEpoch_ = r.b();
    mergedLastEpoch_ = r.b();
    checker_.loadState(r);
    robust_.violationEpochs = r.u64();
    robust_.droppedTopologies = r.u64();
    robust_.quarantines = r.u64();
    robust_.quarantineEpochs = r.u64();
    robust_.recoveries = r.u64();
    quarantineLeft_ = static_cast<std::uint32_t>(r.u64());
    const bool hadFaults = r.b();
    if (hadFaults != (ownedFaults_ != nullptr))
        r.fail("fault-injector presence mismatch: checkpoint and "
               "configuration disagree");
    if (ownedFaults_)
        ownedFaults_->loadState(r);
}

} // namespace morphcache

/**
 * @file
 * Golden-bytes equivalence tests for the hot-path rework.
 *
 * Two layers of protection for "make it faster without changing one
 * simulated byte":
 *
 *  - golden stats fixtures: every scheme x a pair of mixes runs
 *    through runSimCell and the full stats JSON is compared
 *    byte-for-byte against a committed fixture generated before the
 *    struct-of-arrays refactor (regenerate deliberately with
 *    MC_UPDATE_GOLDEN=1);
 *
 *  - naive reference models: victimWay, tree-PLRU victim descent,
 *    lazy invalidation of merge duplicates, and group-LRU victim
 *    choice are each pinned against a straightforward independent
 *    implementation, so the word-scan rewrites cannot silently
 *    change replacement semantics.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "hierarchy/cache_level.hh"
#include "mem/slice.hh"
#include "runner/sim_sweep.hh"
#include "sim/config.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace morphcache {
namespace {

// ---------------------------------------------------------------
// Golden stats fixtures
// ---------------------------------------------------------------

const char *const kGoldenSchemes[] = {"morph", "static:2:2:1", "ucp",
                                      "pipp", "dsr"};
const int kGoldenMixes[] = {1, 8};

std::string
goldenDir()
{
    return std::string(MC_SOURCE_DIR) + "/tests/golden";
}

/** Fixture filename for one cell ("static:4:2:1" -> "static-4-2-1"). */
std::string
fixturePath(const std::string &scheme, int mix)
{
    std::string tag = scheme;
    for (char &c : tag)
        if (c == ':')
            c = '-';
    char name[64];
    std::snprintf(name, sizeof(name), "/%s_mix%02d.json", tag.c_str(),
                  mix);
    return goldenDir() + name;
}

/** One small deterministic 4-core cell with stats JSON on. */
std::string
runGoldenCell(const std::string &scheme, int mix)
{
    const HierarchyParams hier = fastScaleHierarchy(4);
    const GeneratorParams gen = generatorFor(hier);
    char mix_name[16];
    std::snprintf(mix_name, sizeof(mix_name), "MIX %02d", mix);
    MixSpec spec_mix = mixByName(mix_name);
    spec_mix.benchmarks.resize(4);
    MixWorkload workload(spec_mix, gen, 42);

    SimCellSpec spec;
    spec.label = "golden";
    spec.workload = &workload;
    spec.scheme = scheme;
    spec.hier = hier;
    spec.sim.epochs = 3;
    spec.sim.warmupEpochs = 1;
    spec.sim.refsPerEpochPerCore = 1500;
    spec.seed = 42;
    spec.configDesc = "golden " + scheme;
    spec.wantStatsJson = true;
    return runSimCell(spec).statsJson;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(GoldenStats, EverySchemeMatchesFixture)
{
    const bool update = std::getenv("MC_UPDATE_GOLDEN") != nullptr;
    if (update)
        std::filesystem::create_directories(goldenDir());

    for (const char *scheme : kGoldenSchemes) {
        for (int mix : kGoldenMixes) {
            SCOPED_TRACE(std::string(scheme) + " mix " +
                         std::to_string(mix));
            const std::string json = runGoldenCell(scheme, mix);
            ASSERT_FALSE(json.empty());
            const std::string path = fixturePath(scheme, mix);
            if (update) {
                std::ofstream out(path, std::ios::binary);
                ASSERT_TRUE(out.good()) << path;
                out << json;
                continue;
            }
            const std::string golden = readFile(path);
            ASSERT_FALSE(golden.empty())
                << "missing fixture " << path
                << " (regenerate with MC_UPDATE_GOLDEN=1)";
            EXPECT_EQ(json, golden)
                << "stats JSON diverged from pre-refactor bytes: "
                << path;
        }
    }
}

TEST(GoldenStats, CellIsDeterministic)
{
    // The fixture comparison is only meaningful if the cell itself
    // is run-to-run byte-stable.
    EXPECT_EQ(runGoldenCell("morph", 1), runGoldenCell("morph", 1));
}

// ---------------------------------------------------------------
// Naive reference models
// ---------------------------------------------------------------

/** Mirror of one way's replacement-relevant state. */
struct NaiveLine
{
    bool valid = false;
    Addr lineAddr = 0;
    std::uint64_t stamp = 0;
};

/** First invalid way in way order, else strict-min-stamp from way 0. */
std::uint32_t
naiveVictim(const std::vector<NaiveLine> &set)
{
    for (std::uint32_t way = 0; way < set.size(); ++way)
        if (!set[way].valid)
            return way;
    std::uint32_t victim = 0;
    std::uint64_t oldest = set[0].stamp;
    for (std::uint32_t way = 1; way < set.size(); ++way) {
        if (set[way].stamp < oldest) {
            oldest = set[way].stamp;
            victim = way;
        }
    }
    return victim;
}

TEST(ReferenceModel, VictimWayPrefersInvalidThenMinStamp)
{
    const CacheGeometry geom{8 * 1024, 8, 64}; // 16 sets x 8 ways
    CacheSlice slice(0, geom, ReplPolicy::LRU);
    std::vector<std::vector<NaiveLine>> mirror(
        geom.numSets(), std::vector<NaiveLine>(geom.assoc));

    Rng rng(1234);
    std::uint64_t stamp = 0;
    for (int op = 0; op < 4000; ++op) {
        const std::uint64_t set = rng.below(geom.numSets());
        // Address that maps to `set` (numSets is a power of two).
        const Addr addr = set + rng.below(64) * geom.numSets();
        const std::uint64_t draw = rng.below(100);
        if (draw < 55) {
            // Fill at the victim way, like the level's LRU path.
            const std::uint32_t way = slice.victimWay(set);
            ASSERT_EQ(way, naiveVictim(mirror[set])) << "op " << op;
            slice.fill(set, way, addr, false, ++stamp);
            mirror[set][way] = {true, addr, stamp};
        } else if (draw < 85) {
            // Touch a resident line if this address is present.
            const auto way = slice.probe(addr);
            // First-match semantics, like probe() (duplicate fills
            // can leave one address in two ways).
            std::uint32_t naive_way = geom.assoc;
            for (std::uint32_t w = 0; w < geom.assoc; ++w)
                if (mirror[set][w].valid &&
                    mirror[set][w].lineAddr == addr) {
                    naive_way = w;
                    break;
                }
            ASSERT_EQ(way.has_value(), naive_way != geom.assoc);
            if (way) {
                ASSERT_EQ(*way, naive_way);
                slice.touch(set, *way, ++stamp);
                mirror[set][*way].stamp = stamp;
            }
        } else {
            // invalidate() drops only the first probe match.
            const Eviction ev = slice.invalidate(addr);
            bool naive_present = false;
            for (auto &line : mirror[set])
                if (line.valid && line.lineAddr == addr) {
                    line.valid = false;
                    naive_present = true;
                    break;
                }
            ASSERT_EQ(ev.valid, naive_present);
        }
        ASSERT_EQ(slice.victimWay(set), naiveVictim(mirror[set]))
            << "op " << op << " set " << set;
    }
}

/**
 * Independent generalized tree-PLRU: direction bits as a plain
 * array, victim by iterative root-to-leaf descent, touch by walking
 * the leaf-to-root path and pointing every node away from it.
 */
struct NaivePlru
{
    std::uint32_t assoc;
    std::vector<bool> bits; // 1-based heap order

    explicit NaivePlru(std::uint32_t a) : assoc(a), bits(2 * a, false)
    {
    }

    std::uint32_t
    victim() const
    {
        std::uint32_t node = 1;
        while (node < assoc)
            node = 2 * node + (bits[node] ? 1 : 0);
        return node - assoc;
    }

    void
    touch(std::uint32_t way)
    {
        std::uint32_t node = way + assoc;
        while (node > 1) {
            const std::uint32_t parent = node / 2;
            // Point the parent at the *other* subtree.
            bits[parent] = (node == 2 * parent) ? true : false;
            node = parent;
        }
    }
};

TEST(ReferenceModel, TreePlruVictimMatchesNaiveDescent)
{
    const CacheGeometry geom{4 * 1024, 8, 64}; // 8 sets x 8 ways
    CacheSlice slice(0, geom, ReplPolicy::TreePLRU);
    std::vector<NaivePlru> mirror(geom.numSets(), NaivePlru(8));
    // Fill every way so victimWay reaches the PLRU tree.
    std::uint64_t stamp = 0;
    for (std::uint64_t set = 0; set < geom.numSets(); ++set)
        for (std::uint32_t way = 0; way < geom.assoc; ++way) {
            slice.fill(set, way,
                       set + (way + 1) * geom.numSets(), false,
                       ++stamp);
            mirror[set].touch(way);
        }

    Rng rng(99);
    for (int op = 0; op < 2000; ++op) {
        const std::uint64_t set = rng.below(geom.numSets());
        const std::uint32_t way =
            static_cast<std::uint32_t>(rng.below(geom.assoc));
        slice.touch(set, way, ++stamp);
        mirror[set].touch(way);
        ASSERT_EQ(slice.victimWay(set), mirror[set].victim())
            << "op " << op << " set " << set;
    }
}

LevelParams
tinyLevel(std::uint32_t slices)
{
    LevelParams params;
    params.name = "L2";
    params.numSlices = slices;
    params.sliceGeom = CacheGeometry{16 * 1024, 4, 64};
    params.localHitLatency = 10;
    params.chargeBusPenalty = true;
    return params;
}

/** Distinct lines all mapping to one set of the tiny geometry. */
Addr
tinyLineInSet(std::uint64_t set, std::uint64_t k)
{
    return set + (k + 1) * tinyLevel(2).sliceGeom.numSets();
}

TEST(ReferenceModel, LazyInvalidationDropsMergeDuplicates)
{
    CacheLevelModel level(tinyLevel(4));
    // Private phase: the same line lands in two physical slices.
    level.insert(0, 0x200, false);
    level.insert(1, 0x200, false);
    ASSERT_TRUE(level.presentInSlices({0}, 0x200));
    ASSERT_TRUE(level.presentInSlices({1}, 0x200));

    // Merge, then one lookup: the hit must resolve to exactly one
    // copy and lazily invalidate the duplicate.
    level.configure({{0, 1}, {2}, {3}});
    const std::uint64_t lazy_before = level.stats().lazyInvalidations;
    const LookupOutcome out = level.lookup(0, 0x200, 0);
    EXPECT_TRUE(out.hit);
    EXPECT_EQ(level.stats().lazyInvalidations, lazy_before + 1);
    const int copies = (level.presentInSlices({0}, 0x200) ? 1 : 0) +
                       (level.presentInSlices({1}, 0x200) ? 1 : 0);
    EXPECT_EQ(copies, 1);
}

TEST(ReferenceModel, GroupLruEvictsGloballyOldestLine)
{
    CacheLevelModel level(tinyLevel(2));
    level.configure({{0, 1}});
    const std::uint64_t set = 7;

    // Mirror of (line -> stamp) under the level's own stamp counter:
    // every insert and every default-promote hit takes one stamp.
    std::vector<Addr> resident;
    std::vector<std::uint64_t> stamps;
    std::uint64_t stamp = 0;
    for (std::uint64_t k = 0; k < 8; ++k) {
        level.insert(0, tinyLineInSet(set, k), false);
        resident.push_back(tinyLineInSet(set, k));
        stamps.push_back(++stamp);
    }
    // Touch a scattered subset so the naive LRU order is nontrivial.
    for (std::uint64_t k : {0ULL, 3ULL, 5ULL, 1ULL, 6ULL}) {
        ASSERT_TRUE(level.lookup(0, tinyLineInSet(set, k), 0).hit);
        stamps[k] = ++stamp;
    }

    for (std::uint64_t k = 8; k < 12; ++k) {
        // Naive prediction: strict-min-stamp across the whole group.
        std::size_t victim = 0;
        for (std::size_t i = 1; i < resident.size(); ++i)
            if (stamps[i] < stamps[victim])
                victim = i;
        const Addr predicted = resident[victim];

        const InsertOutcome out =
            level.insert(0, tinyLineInSet(set, k), false);
        ASSERT_TRUE(out.evicted.valid) << "k " << k;
        EXPECT_EQ(out.evicted.lineAddr, predicted) << "k " << k;
        EXPECT_FALSE(level.presentInGroup(0, predicted));

        resident[victim] = tinyLineInSet(set, k);
        stamps[victim] = ++stamp;
    }
}

} // namespace
} // namespace morphcache

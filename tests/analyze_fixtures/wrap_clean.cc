// mc_analyze clean fixture: the same shapes as wrap_bug.cc, each
// routed through the sanctioned pattern. Must produce no findings.

#include <cstdint>

#include "common/bitops.hh"

namespace fixture {

std::uint64_t
waitCycles(std::uint64_t busyUntil, std::uint64_t now)
{
    // Saturating helper: floors at zero instead of wrapping.
    std::uint64_t wait = morphcache::satSub(busyUntil, now);
    return wait;
}

std::int64_t
signedDelta(std::int64_t cyclesBefore, std::int64_t cyclesAfter)
{
    // Signed math does not wrap at zero; never flagged.
    return cyclesAfter - cyclesBefore;
}

void
drainBudget(std::uint64_t latency)
{
    std::uint64_t cycleBudget = morphcache::satSub(
        std::uint64_t{100}, latency);
    std::uint64_t txnCount = 0;
    morphcache::satDec(txnCount);
    (void)cycleBudget;
}

} // namespace fixture

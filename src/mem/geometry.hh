/**
 * @file
 * Cache slice geometry.
 */

#ifndef MORPHCACHE_MEM_GEOMETRY_HH
#define MORPHCACHE_MEM_GEOMETRY_HH

#include <cstdint>

#include "common/bitops.hh"
#include "common/types.hh"

namespace morphcache {

/**
 * Geometry of a single physical cache slice.
 *
 * Merging slices never changes the set count: per the paper's
 * footnote 1, merging two n-way slices of size S yields one 2n-way
 * logical slice of size 2S, i.e. the ways add up and the sets stay.
 * All slices at one level therefore share a geometry.
 */
struct CacheGeometry
{
    /** Total capacity of the slice in bytes. */
    std::uint64_t sizeBytes = 0;
    /** Ways per set in this physical slice. */
    std::uint32_t assoc = 0;
    /** Line (block) size in bytes. */
    std::uint32_t lineBytes = 64;

    /**
     * Number of lines the slice can hold. Every valid() geometry
     * has a power-of-2 line size, so this is a shift; the division
     * fallback keeps not-yet-validated configs well-defined for
     * error reporting. (Hot paths never come through here: slices
     * cache their set masks at construction.)
     */
    std::uint64_t
    numLines() const
    {
        return isPowerOf2(lineBytes)
                   ? sizeBytes >> floorLog2(lineBytes)
                   : sizeBytes / lineBytes;
    }

    /** Number of sets in the slice (shift when assoc is pow-2). */
    std::uint64_t
    numSets() const
    {
        return isPowerOf2(assoc) ? numLines() >> floorLog2(assoc)
                                 : numLines() / assoc;
    }

    /** Validate: power-of-2 sets/lines and nonzero fields. */
    bool
    valid() const
    {
        return sizeBytes > 0 && assoc > 0 && lineBytes > 0 &&
               sizeBytes % lineBytes == 0 && numLines() % assoc == 0 &&
               isPowerOf2(lineBytes) && isPowerOf2(numSets());
    }

    /** Line address (block number) for a byte address. */
    Addr
    lineAddr(Addr byte_addr) const
    {
        return byte_addr >> exactLog2(lineBytes);
    }

    /** Set index for a line address. */
    std::uint64_t
    setIndex(Addr line_addr) const
    {
        return line_addr & (numSets() - 1);
    }

    /** Tag for a line address. */
    Addr
    tag(Addr line_addr) const
    {
        return line_addr >> exactLog2(numSets());
    }
};

} // namespace morphcache

#endif // MORPHCACHE_MEM_GEOMETRY_HH

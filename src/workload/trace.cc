#include "workload/trace.hh"
#include <cstring>

#include <cstdio>
#include <string>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/serial.hh"

namespace morphcache {

namespace {

constexpr char traceMagic[4] = {'M', 'C', 'T', 'R'};
constexpr std::uint32_t traceVersion = 1;

/**
 * Byte reader over a trace file. Owns the FILE handle (closed on
 * scope exit, including the throwing paths) and tracks the byte
 * offset so every TraceError names the file and position — a
 * corrupt multi-gigabyte trace is debuggable only with that
 * context.
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path) : path_(path)
    {
        f_ = std::fopen(path.c_str(), "rb");
        if (!f_)
            throw TraceError("cannot open trace file '" + path + "'");
    }

    ~TraceReader()
    {
        if (f_)
            std::fclose(f_);
    }

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw TraceError("'" + path_ + "' at byte " +
                         std::to_string(offset_) + ": " + what);
    }

    /** Next record kind byte, or EOF at a clean record boundary. */
    int
    kind()
    {
        const int c = std::fgetc(f_);
        if (c != EOF)
            ++offset_;
        return c;
    }

    std::uint8_t
    byte(const char *what)
    {
        const int c = std::fgetc(f_);
        if (c == EOF)
            fail(std::string("truncated reading ") + what);
        ++offset_;
        return static_cast<std::uint8_t>(c);
    }

    void
    bytes(void *out, std::size_t n, const char *what)
    {
        if (std::fread(out, 1, n, f_) != n)
            fail(std::string("truncated reading ") + what);
        offset_ += n;
    }

    std::uint32_t
    u32(const char *what)
    {
        unsigned char b[4];
        bytes(b, 4, what);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64(const char *what)
    {
        unsigned char b[8];
        bytes(b, 8, what);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return v;
    }

  private:
    std::string path_;
    std::FILE *f_ = nullptr;
    std::uint64_t offset_ = 0;
};

} // namespace

std::uint64_t
Trace::totalReferences() const
{
    std::uint64_t total = 0;
    for (const auto &epoch : epochs) {
        for (const auto &core : epoch)
            total += core.size();
    }
    return total;
}

Trace
recordTrace(Workload &workload, std::uint32_t num_epochs,
            std::uint64_t refs_per_epoch)
{
    Trace trace;
    trace.numCores = workload.numCores();
    trace.epochs.resize(num_epochs);
    for (std::uint32_t e = 0; e < num_epochs; ++e) {
        workload.beginEpoch(e);
        trace.epochs[e].resize(trace.numCores);
        for (std::uint32_t c = 0; c < trace.numCores; ++c) {
            trace.epochs[e][c].reserve(refs_per_epoch);
            for (std::uint64_t i = 0; i < refs_per_epoch; ++i) {
                trace.epochs[e][c].push_back(
                    workload.next(static_cast<CoreId>(c)));
            }
        }
    }
    return trace;
}

void
writeTrace(const Trace &trace, const std::string &path)
{
    // Encode in memory and land the file atomically (write to
    // `<path>.tmp`, then rename): a crash mid-write must not leave a
    // torn trace behind for a later replay to trip over.
    CkptWriter out;
    out.bytes(traceMagic, 4);
    out.u32(traceVersion);
    out.u32(trace.numCores);
    for (std::uint32_t e = 0; e < trace.epochs.size(); ++e) {
        out.u8(1); // epoch marker
        out.u32(e);
        for (std::uint32_t c = 0; c < trace.numCores; ++c) {
            for (const MemAccess &access : trace.epochs[e][c]) {
                out.u8(0); // access record
                const std::uint16_t core = access.core;
                out.u8(static_cast<std::uint8_t>(core & 0xff));
                out.u8(static_cast<std::uint8_t>((core >> 8) & 0xff));
                out.u8(access.type == AccessType::Write ? 1 : 0);
                out.u64(access.addr);
            }
        }
    }
    try {
        atomicWriteFile(path, out.buffer());
    } catch (const CkptError &e) {
        fatal("error writing trace file: %s", e.what());
    }
}

Trace
readTrace(const std::string &path)
{
    TraceReader in(path);
    unsigned char magic[4];
    in.bytes(magic, 4, "magic");
    if (std::memcmp(magic, traceMagic, 4) != 0)
        throw TraceError("'" + path + "' is not a MorphCache trace");
    const std::uint32_t version = in.u32("version");
    if (version != traceVersion) {
        in.fail("unsupported trace version " +
                std::to_string(version) + " (expected " +
                std::to_string(traceVersion) + ")");
    }

    Trace trace;
    trace.numCores = in.u32("core count");
    if (trace.numCores == 0 || trace.numCores > 1024) {
        in.fail("implausible core count " +
                std::to_string(trace.numCores));
    }

    int kind;
    while ((kind = in.kind()) != EOF) {
        if (kind == 1) {
            const std::uint32_t epoch = in.u32("epoch marker");
            if (epoch != trace.epochs.size()) {
                in.fail("out-of-order epoch marker " +
                        std::to_string(epoch) + " (expected " +
                        std::to_string(trace.epochs.size()) + ")");
            }
            trace.epochs.emplace_back(trace.numCores);
        } else if (kind == 0) {
            if (trace.epochs.empty())
                in.fail("access record before first epoch marker");
            const std::uint8_t lo = in.byte("access record");
            const std::uint8_t hi = in.byte("access record");
            const std::uint8_t type = in.byte("access record");
            MemAccess access;
            access.core = static_cast<CoreId>(lo | (hi << 8));
            access.type = type ? AccessType::Write
                               : AccessType::Read;
            access.addr = in.u64("access address");
            if (access.core >= trace.numCores) {
                in.fail("access record for core " +
                        std::to_string(access.core) +
                        " but the trace declares " +
                        std::to_string(trace.numCores) + " cores");
            }
            trace.epochs.back()[access.core].push_back(access);
        } else {
            in.fail("corrupt record kind " + std::to_string(kind));
        }
    }
    return trace;
}

TraceWorkload::TraceWorkload(Trace trace, bool shared_address_space)
    : trace_(std::move(trace)),
      sharedAddressSpace_(shared_address_space),
      cursor_(trace_.numCores, 0)
{
    if (trace_.numCores == 0)
        throw TraceError("trace declares zero cores");
    if (trace_.epochs.empty())
        throw TraceError("trace contains no epochs");
    for (std::size_t e = 0; e < trace_.epochs.size(); ++e) {
        if (trace_.epochs[e].size() != trace_.numCores) {
            throw TraceError(
                "trace epoch " + std::to_string(e) + " has " +
                std::to_string(trace_.epochs[e].size()) +
                " per-core sequences but the trace declares " +
                std::to_string(trace_.numCores) + " cores");
        }
        for (std::uint32_t c = 0; c < trace_.numCores; ++c) {
            if (trace_.epochs[e][c].empty()) {
                throw TraceError(
                    "trace epoch " + std::to_string(e) +
                    " has no references for core " +
                    std::to_string(c) + "; replay would stall");
            }
        }
    }
}

MemAccess
TraceWorkload::next(CoreId core)
{
    MC_ASSERT(core < trace_.numCores);
    const auto &seq = trace_.epochs[epoch_][core];
    MC_ASSERT(!seq.empty());
    if (cursor_[core] >= seq.size()) {
        cursor_[core] = 0;
        ++wraps_;
    }
    return seq[cursor_[core]++];
}

void
TraceWorkload::beginEpoch(EpochId epoch)
{
    epoch_ = epoch % trace_.epochs.size();
    for (auto &cursor : cursor_)
        cursor = 0;
}

std::uint32_t
TraceWorkload::numCores() const
{
    return trace_.numCores;
}

std::unique_ptr<Workload>
TraceWorkload::clone() const
{
    return std::make_unique<TraceWorkload>(*this);
}

void
TraceWorkload::saveState(CkptWriter &w) const
{
    w.u64(epoch_);
    w.u64(cursor_.size());
    for (std::size_t cursor : cursor_)
        w.u64(cursor);
    w.u64(wraps_);
}

void
TraceWorkload::loadState(CkptReader &r)
{
    const std::uint64_t epoch = r.u64();
    if (epoch >= trace_.epochs.size())
        r.fail("trace epoch index " + std::to_string(epoch) +
               " out of range (" +
               std::to_string(trace_.epochs.size()) + " epochs)");
    epoch_ = static_cast<std::size_t>(epoch);
    r.expectU64("trace cursor count", cursor_.size());
    for (std::uint32_t c = 0; c < trace_.numCores; ++c) {
        const std::uint64_t cursor = r.u64();
        if (cursor > trace_.epochs[epoch_][c].size())
            r.fail("trace cursor for core " + std::to_string(c) +
                   " out of range");
        cursor_[c] = static_cast<std::size_t>(cursor);
    }
    wraps_ = r.u64();
}

} // namespace morphcache

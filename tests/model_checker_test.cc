/**
 * @file
 * Tests for the topology model checker (src/check/model_checker.*):
 * exact reachable-state counts, zero violations over the full
 * space, partial-order-reduction equivalence, counterexample
 * machinery under planted rule bugs, and the classification
 * oracle's memoization/enumeration mechanics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/model_checker.hh"
#include "common/error.hh"

namespace morphcache {
namespace {

ModelCheckConfig
configFor(std::uint32_t cores)
{
    ModelCheckConfig config;
    config.numCores = cores;
    config.lineChecks = 8;
    return config;
}

// The reachable space is every inclusion-respecting pair of
// aligned-power-of-two partitions. Aligned partitions of n slices
// satisfy A(n) = 1 + A(n/2)^2 (either one group, or independent
// halves): A(2)=2, A(4)=5, A(8)=26. Pairs satisfy
// T(n) = A(n) + T(n/2)^2 (either L3 fully merged with any legal L2
// refinement... collapsing to A(n) choices, or the two halves
// evolve independently): T(2)=3, T(4)=14, T(8)=222.
TEST(ModelChecker, ExactReachableStatesN4)
{
    TopologyModelChecker checker(configFor(4));
    EXPECT_TRUE(checker.run());
    EXPECT_EQ(checker.stats().states, 14u);
    EXPECT_EQ(checker.stats().statesExpanded, 14u);
    EXPECT_FALSE(checker.counterexample().has_value());
    EXPECT_FALSE(checker.stats().truncated);
    EXPECT_GT(checker.stats().lineChecksRun, 0u);
}

TEST(ModelChecker, ExactReachableStatesN8)
{
    TopologyModelChecker checker(configFor(8));
    EXPECT_TRUE(checker.run());
    EXPECT_EQ(checker.stats().states, 222u);
    EXPECT_EQ(checker.stats().statesExpanded, 222u);
    EXPECT_FALSE(checker.counterexample().has_value());
}

// The cluster (partial-order-reduced) enumeration must reach
// exactly the same state space as the full decision-tree walk —
// every multi-event decision is a composition of single-event
// steps — while running far fewer decisions.
TEST(ModelChecker, ClusterModeMatchesFullStateSpace)
{
    ModelCheckConfig full = configFor(8);
    full.classifications = ClassificationMode::Full;
    ModelCheckConfig cluster = configFor(8);
    cluster.classifications = ClassificationMode::Cluster;

    TopologyModelChecker full_checker(full);
    TopologyModelChecker cluster_checker(cluster);
    EXPECT_TRUE(full_checker.run());
    EXPECT_TRUE(cluster_checker.run());
    EXPECT_EQ(full_checker.stats().states,
              cluster_checker.stats().states);
    EXPECT_LT(cluster_checker.stats().transitions,
              full_checker.stats().transitions / 10);
}

TEST(ModelChecker, MaxStatesTruncates)
{
    ModelCheckConfig config = configFor(8);
    config.maxStates = 5;
    TopologyModelChecker checker(config);
    EXPECT_TRUE(checker.run());
    EXPECT_TRUE(checker.stats().truncated);
    EXPECT_EQ(checker.stats().states, 5u);
}

TEST(ModelChecker, RejectsNonPowerOfTwoCores)
{
    EXPECT_THROW(TopologyModelChecker(configFor(6)), ConfigError);
    EXPECT_THROW(TopologyModelChecker(configFor(0)), ConfigError);
    EXPECT_THROW(TopologyModelChecker(configFor(64)), ConfigError);
}

// Planted decision-rule mutations must each produce a
// counterexample — the checker has teeth. The violation must also
// name the invariant the mutation breaks.
TEST(ModelChecker, InjectedSkipForcedL3MergeIsCaught)
{
    ModelCheckConfig config = configFor(8);
    config.ruleBug = RuleBug::SkipForcedL3Merge;
    TopologyModelChecker checker(config);
    EXPECT_FALSE(checker.run());
    ASSERT_TRUE(checker.counterexample().has_value());
    const Counterexample &cex = *checker.counterexample();
    ASSERT_FALSE(cex.violations.empty());
    EXPECT_EQ(cex.violations.front().kind,
              InvariantKind::Inclusion);
    // The trace must be replayable: a step with answers and the
    // offending proposal.
    ASSERT_FALSE(cex.steps.empty());
    EXPECT_FALSE(cex.steps.back().answers.empty());
}

TEST(ModelChecker, InjectedIgnoreAlignmentIsCaught)
{
    ModelCheckConfig config = configFor(8);
    config.ruleBug = RuleBug::IgnoreAlignment;
    TopologyModelChecker checker(config);
    EXPECT_FALSE(checker.run());
    ASSERT_TRUE(checker.counterexample().has_value());
    const Counterexample &cex = *checker.counterexample();
    ASSERT_FALSE(cex.violations.empty());
    EXPECT_EQ(cex.violations.front().kind,
              InvariantKind::GroupShape);
}

// The forced-L2-split path only fires when hysteresis suppresses
// the phase-3 split query (the blocked context); this mutation
// proves that context is genuinely explored.
TEST(ModelChecker, InjectedSkipForcedL2SplitIsCaught)
{
    ModelCheckConfig config = configFor(8);
    config.ruleBug = RuleBug::SkipForcedL2Split;
    TopologyModelChecker checker(config);
    EXPECT_FALSE(checker.run());
    ASSERT_TRUE(checker.counterexample().has_value());
    const Counterexample &cex = *checker.counterexample();
    ASSERT_FALSE(cex.violations.empty());
    EXPECT_EQ(cex.violations.front().kind,
              InvariantKind::Inclusion);
}

TEST(ModelChecker, MutationsCaughtInClusterModeToo)
{
    for (const RuleBug bug :
         {RuleBug::SkipForcedL3Merge, RuleBug::IgnoreAlignment,
          RuleBug::SkipForcedL2Split}) {
        ModelCheckConfig config = configFor(8);
        config.classifications = ClassificationMode::Cluster;
        config.ruleBug = bug;
        TopologyModelChecker checker(config);
        EXPECT_FALSE(checker.run()) << ruleBugName(bug);
        EXPECT_TRUE(checker.counterexample().has_value())
            << ruleBugName(bug);
    }
}

TEST(ModelChecker, CounterexamplePrinterNamesTheDecision)
{
    ModelCheckConfig config = configFor(8);
    config.ruleBug = RuleBug::SkipForcedL3Merge;
    TopologyModelChecker checker(config);
    ASSERT_FALSE(checker.run());
    std::ostringstream os;
    printCounterexample(os, *checker.counterexample());
    const std::string text = os.str();
    EXPECT_NE(text.find("counterexample:"), std::string::npos);
    EXPECT_NE(text.find("classify"), std::string::npos);
    EXPECT_NE(text.find("violation [inclusion]"),
              std::string::npos);
}

TEST(ClassificationOracle, MemoizesWithinARun)
{
    ClassificationOracle oracle;
    oracle.beginRun({1});
    EXPECT_TRUE(oracle.answer(42));
    EXPECT_TRUE(oracle.answer(42));  // memoized, not re-scripted
    EXPECT_FALSE(oracle.answer(43)); // beyond the script: "no"
    ASSERT_EQ(oracle.trail().size(), 2u);
    EXPECT_EQ(oracle.trail()[0].key, 42u);
}

TEST(ClassificationOracle, AdvanceWalksTheDecisionTree)
{
    // Two queries -> four leaves, visited deepest-branch-first.
    ClassificationOracle oracle;
    std::vector<char> script;
    std::vector<std::string> leaves;
    while (true) {
        oracle.beginRun(script);
        const bool a = oracle.answer(1);
        const bool b = oracle.answer(2);
        leaves.push_back(std::string() + (a ? 'y' : 'n') +
                         (b ? 'y' : 'n'));
        if (!oracle.advance(script))
            break;
    }
    const std::vector<std::string> expected{"nn", "ny", "yn", "yy"};
    EXPECT_EQ(leaves, expected);
}

TEST(ClassificationOracle, TargetedRunAnswersOnlyTheTarget)
{
    ClassificationOracle oracle;
    oracle.beginTargetedRun(7, false);
    EXPECT_FALSE(oracle.answer(3));
    EXPECT_TRUE(oracle.answer(7));
    EXPECT_FALSE(oracle.answer(9));

    // With the L2-split companion flag, L2 split keys (neither the
    // merge bit 24 nor the L3 bit 25 set) also answer yes.
    oracle.beginTargetedRun(1u << 25 | 4, true);
    EXPECT_TRUE(oracle.answer(1u << 25 | 4)); // the L3 primary
    EXPECT_TRUE(oracle.answer(5));            // an L2 split
    EXPECT_FALSE(oracle.answer(1u << 24 | 5)); // a merge: no
}

} // namespace
} // namespace morphcache

file(REMOVE_RECURSE
  "CMakeFiles/sec54_sensitivity.dir/sec54_sensitivity.cc.o"
  "CMakeFiles/sec54_sensitivity.dir/sec54_sensitivity.cc.o.d"
  "sec54_sensitivity"
  "sec54_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

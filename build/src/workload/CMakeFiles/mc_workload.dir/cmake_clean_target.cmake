file(REMOVE_RECURSE
  "libmc_workload.a"
)

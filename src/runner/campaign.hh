/**
 * @file
 * Crash-resilient resumable sweep campaigns.
 *
 * A campaign is an ordered list of independent cells (one RunSpec
 * each) driven across a worker pool, with durable progress:
 *
 *  - a JSONL *manifest* records one header line plus an append-only
 *    event log of per-cell status transitions
 *    (pending/running/done/failed with an attempt count) — the
 *    last event per cell wins, and a torn final line (the crash
 *    case) is ignored;
 *  - a state directory `<manifest>.d/` holds per-cell checkpoint
 *    chains (`cellNNNN.ckpt` + `.prev`) written every --ckpt-every
 *    recorded epochs, and `cellNNNN.result.json` files written
 *    atomically when a cell completes;
 *  - resume folds the manifest, replays done cells from their
 *    result files byte-for-byte, restores in-progress cells from
 *    their checkpoint chains, and reruns the rest — so a campaign
 *    SIGKILLed at any point finishes with output bytes identical
 *    to a never-interrupted run;
 *  - failed cells retry with bounded exponential backoff (up to
 *    retryCells extra tries) and otherwise stay explicitly marked
 *    `"status":"failed"` — they are reported, never silently
 *    dropped, and excluded from the stats aggregate;
 *  - a wall-clock watchdog cancels cells that exceed
 *    cellTimeoutSec (cooperatively, at epoch granularity), turning
 *    hung cells into retryable failures;
 *  - SIGINT/SIGTERM (via the ckpt interrupt flag) checkpoint the
 *    running cells at the next epoch boundary and stop cleanly;
 *    the caller exits with ckptResumableExit.
 *
 * Everything in CampaignReport is a pure function of the cell list
 * and the per-cell simulated results: bytes are identical for any
 * job count, kill point, or resume count.
 */

#ifndef MORPHCACHE_RUNNER_CAMPAIGN_HH
#define MORPHCACHE_RUNNER_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/manifest.hh"

namespace morphcache {

struct CampaignOptions
{
    /** JSONL manifest path; state dir is `<manifest>.d/`. */
    std::string manifestPath;
    /** Worker threads; 0 = hardware_concurrency. */
    unsigned jobs = 0;
    /** Checkpoint each cell every N recorded epochs (0 = off). */
    std::uint32_t ckptEvery = 0;
    /** Extra tries for a failed cell (exponential backoff). */
    std::uint32_t retryCells = 0;
    /** Wall-clock watchdog per cell try, seconds (0 = off). */
    double cellTimeoutSec = 0.0;
    /** Fold an existing manifest instead of starting fresh. */
    bool resume = false;
    /** Collect per-cell stats-registry JSON into the report. */
    bool wantStatsJson = false;
};

struct CampaignReport
{
    /**
     * Deterministic per-cell report block (no paths, no timing):
     * identical bytes however the campaign was run or resumed.
     */
    std::string reportText;
    /** JSON array of done cells' registries (wantStatsJson). */
    std::string statsJsonArray;
    std::size_t cells = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
    /** Stopped early on the interrupt flag; resume to finish. */
    bool interrupted = false;
};

/**
 * Run (or resume) a campaign. Throws CkptError when resuming
 * against a manifest whose header does not match the cell list,
 * and ConfigError on malformed options.
 */
CampaignReport runCampaign(const std::vector<CampaignCell> &cells,
                           const CampaignOptions &opts);

} // namespace morphcache

#endif // MORPHCACHE_RUNNER_CAMPAIGN_HH

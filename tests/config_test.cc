/**
 * @file
 * Tests for the experiment configurations: scale consistency
 * between paper and fast scale, and generator/hierarchy matching.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "hierarchy/hierarchy.hh"
#include "sim/config.hh"
#include "sim/simulation.hh"
#include "workload/generator.hh"

namespace morphcache {
namespace {

TEST(Config, PaperScaleMatchesTable3)
{
    const HierarchyParams params = paperScaleHierarchy(16);
    EXPECT_EQ(params.l1Geom.sizeBytes, 32u * 1024);
    EXPECT_EQ(params.l1Geom.assoc, 4u);
    EXPECT_EQ(params.l2.sliceGeom.sizeBytes, 256u * 1024);
    EXPECT_EQ(params.l2.sliceGeom.assoc, 8u);
    EXPECT_EQ(params.l3.sliceGeom.sizeBytes, 1024u * 1024);
    EXPECT_EQ(params.l3.sliceGeom.assoc, 16u);
    EXPECT_EQ(params.l2.localHitLatency, 10u);
    EXPECT_EQ(params.l3.localHitLatency, 30u);
    EXPECT_EQ(params.memLatency, 300u);
}

TEST(Config, FastScalePreservesRatios)
{
    const HierarchyParams paper = paperScaleHierarchy(16);
    const HierarchyParams fast = fastScaleHierarchy(16);
    // Capacities divided by 8, associativities and latencies kept.
    EXPECT_EQ(paper.l2.sliceGeom.sizeBytes,
              8 * fast.l2.sliceGeom.sizeBytes);
    EXPECT_EQ(paper.l3.sliceGeom.sizeBytes,
              8 * fast.l3.sliceGeom.sizeBytes);
    EXPECT_EQ(paper.l1Geom.sizeBytes, 8 * fast.l1Geom.sizeBytes);
    EXPECT_EQ(paper.l2.sliceGeom.assoc, fast.l2.sliceGeom.assoc);
    EXPECT_EQ(paper.l3.sliceGeom.assoc, fast.l3.sliceGeom.assoc);
    EXPECT_EQ(paper.l2.localHitLatency, fast.l2.localHitLatency);
    // L2:L3 slice ratio identical at both scales.
    EXPECT_EQ(paper.l3.sliceGeom.sizeBytes /
                  paper.l2.sliceGeom.sizeBytes,
              fast.l3.sliceGeom.sizeBytes /
                  fast.l2.sliceGeom.sizeBytes);
}

TEST(Config, GeneratorMatchesHierarchyScale)
{
    for (const HierarchyParams &params :
         {paperScaleHierarchy(16), fastScaleHierarchy(16)}) {
        const GeneratorParams gen = generatorFor(params);
        EXPECT_EQ(gen.l2SliceLines, params.l2.sliceGeom.numLines());
        EXPECT_EQ(gen.l3SliceLines, params.l3.sliceGeom.numLines());
        // Coverage factor = acfvBits / assoc at both levels, the
        // invariant that puts ACFV utilization on the Table 4 scale.
        EXPECT_DOUBLE_EQ(gen.l2CoverageFactor,
                         static_cast<double>(params.l2.acfvBits) /
                             params.l2.sliceGeom.assoc);
        EXPECT_DOUBLE_EQ(gen.l3CoverageFactor,
                         static_cast<double>(params.l3.acfvBits) /
                             params.l3.sliceGeom.assoc);
    }
}

TEST(Config, CoverageIsScaleInvariant)
{
    // ACFV tag coverage / slice capacity must be identical at both
    // scales: this is what makes fast-scale results transfer.
    auto coverage_ratio = [](const HierarchyParams &params) {
        const double granule =
            static_cast<double>(params.l2.sliceGeom.numSets());
        return params.l2.acfvBits * granule /
               static_cast<double>(params.l2.sliceGeom.numLines());
    };
    EXPECT_DOUBLE_EQ(coverage_ratio(paperScaleHierarchy(16)),
                     coverage_ratio(fastScaleHierarchy(16)));
}

TEST(Config, ExperimentHierarchyDefaultsToFastScale)
{
    // (Assumes MC_PAPER_SCALE is unset in the test environment.)
    const HierarchyParams params = experimentHierarchy(16);
    EXPECT_EQ(params.l2.sliceGeom.sizeBytes, 32u * 1024);
}

TEST(Config, RealisticReplacementInExperimentConfigs)
{
    EXPECT_EQ(static_cast<int>(
                  experimentHierarchy(16).l2.policy),
              static_cast<int>(ReplPolicy::TreePLRU));
    EXPECT_EQ(static_cast<int>(
                  paperScaleHierarchy(16).l3.policy),
              static_cast<int>(ReplPolicy::TreePLRU));
}

/** Expect validate() to throw a ConfigError mentioning `needle`. */
void
expectInvalid(const HierarchyParams &params, const std::string &needle)
{
    try {
        params.validate();
        FAIL() << "expected ConfigError containing '" << needle
               << "'";
    } catch (const ConfigError &err) {
        EXPECT_NE(std::string(err.what()).find(needle),
                  std::string::npos)
            << "actual message: " << err.what();
    }
}

TEST(Config, ShippedConfigurationsValidate)
{
    EXPECT_NO_THROW(HierarchyParams::defaultParams(16).validate());
    EXPECT_NO_THROW(paperScaleHierarchy(16).validate());
    EXPECT_NO_THROW(fastScaleHierarchy(8).validate());
}

TEST(Config, ValidateRejectsNonPowerOfTwoCapacity)
{
    HierarchyParams params = fastScaleHierarchy(4);
    params.l2.sliceGeom.sizeBytes = 3 * 1024;
    expectInvalid(params, "not a power of two");
}

TEST(Config, ValidateRejectsNonPowerOfTwoLineSize)
{
    HierarchyParams params = fastScaleHierarchy(4);
    params.l1Geom.lineBytes = 48;
    expectInvalid(params, "line size 48");
}

TEST(Config, ValidateRejectsAssocBeyondSliceLines)
{
    HierarchyParams params = fastScaleHierarchy(4);
    // 4 KB / 64 B = 64 lines; 128 ways cannot fit.
    params.l2.sliceGeom = CacheGeometry{4096, 128, 64};
    expectInvalid(params, "associativity 128");
}

TEST(Config, ValidateRejectsSliceCountMismatch)
{
    HierarchyParams params = fastScaleHierarchy(4);
    params.l3.numSlices = 8;
    expectInvalid(params, "one slice per core");
}

TEST(Config, ValidateRejectsLineSizeMismatchAcrossLevels)
{
    HierarchyParams params = fastScaleHierarchy(4);
    params.l3.sliceGeom.lineBytes = 128;
    expectInvalid(params, "line size must match");
}

TEST(Config, ValidateRejectsZeroLatency)
{
    HierarchyParams params = fastScaleHierarchy(4);
    params.memLatency = 0;
    expectInvalid(params, "latencies must be nonzero");
}

TEST(Config, HierarchyConstructorValidates)
{
    HierarchyParams params = fastScaleHierarchy(4);
    params.l2.numSlices = 2;
    EXPECT_THROW(Hierarchy{params}, ConfigError);
}

TEST(Config, SimulationRejectsZeroEpochLength)
{
    const HierarchyParams hier = fastScaleHierarchy(16);
    MixWorkload workload(mixByName("MIX 01"), generatorFor(hier), 7);
    MorphCacheSystem system(hier, MorphConfig{});
    SimParams sim;
    sim.refsPerEpochPerCore = 0;
    EXPECT_THROW(Simulation(system, workload, sim), ConfigError);
}

} // namespace
} // namespace morphcache

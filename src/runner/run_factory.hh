/**
 * @file
 * Build a complete runnable simulation from a RunSpec.
 *
 * The factory is the single place a spec string turns into live
 * objects: the CLI's single-run and campaign modes, the checkpoint
 * inspector's --verify replay, and the tests all construct runs
 * through it, so a checkpoint's embedded spec is guaranteed to
 * rebuild exactly the configuration that wrote it.
 */

#ifndef MORPHCACHE_RUNNER_RUN_FACTORY_HH
#define MORPHCACHE_RUNNER_RUN_FACTORY_HH

#include <memory>

#include "ckpt/run_spec.hh"
#include "sim/memory_system.hh"
#include "sim/simulation.hh"
#include "workload/generator.hh"

namespace morphcache {

/** Live objects built from a RunSpec. */
struct BuiltRun
{
    std::unique_ptr<Workload> workload;
    std::unique_ptr<MemorySystem> system;
    /** Threads of one application sharing the address space. */
    bool sharedSpace = false;
    SimParams sim;
};

/**
 * Construct workload + memory system + simulation parameters for a
 * spec. Throws ConfigError on an unparseable workload or scheme.
 */
BuiltRun buildRun(const RunSpec &spec);

} // namespace morphcache

#endif // MORPHCACHE_RUNNER_RUN_FACTORY_HH

#include "perf/bench.hh"

#include <cstdio>
#include <thread>

#include "common/error.hh"
#include "perf/clock.hh"
#include "runner/run_factory.hh"
#include "sim/simulation.hh"
#include "stats/registry.hh"

namespace morphcache {

std::string
BenchCell::id() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s/%s/c%u/e%u/r%llu/s%llu",
                  spec.scheme.c_str(), spec.workload.c_str(),
                  spec.cores, spec.epochs,
                  static_cast<unsigned long long>(spec.refs),
                  static_cast<unsigned long long>(spec.seed));
    return buf;
}

namespace {

BenchCell
pinnedCell(const char *scheme, unsigned mix)
{
    // The pinned cell geometry. Changing any of these constants
    // breaks comparability of the BENCH trajectory, so they change
    // only with a schema bump and a regenerated baseline.
    BenchCell cell;
    cell.spec.scheme = scheme;
    char wl[24];
    std::snprintf(wl, sizeof(wl), "mix:%u", mix);
    cell.spec.workload = wl;
    cell.spec.cores = 8;
    cell.spec.epochs = 6;
    cell.spec.refs = 6000;
    cell.spec.seed = 42;
    return cell;
}

} // namespace

std::vector<BenchCell>
benchSuite(const std::string &name)
{
    std::vector<BenchCell> cells;
    if (name == "smoke") {
        // Strict subset of "default" — identical ids, so a smoke
        // BENCH file diffs against the committed default baseline.
        for (const char *scheme : {"morph", "static:4:2:1"})
            for (unsigned mix : {1u, 8u})
                cells.push_back(pinnedCell(scheme, mix));
        return cells;
    }
    if (name == "default") {
        for (const char *scheme : {"morph", "static:4:2:1", "ucp"})
            for (unsigned mix : {1u, 4u, 8u, 12u})
                cells.push_back(pinnedCell(scheme, mix));
        return cells;
    }
    throw ConfigError("unknown bench suite '" + name +
                      "' (expected smoke or default)");
}

BenchCellResult
runBenchCell(const BenchCell &cell, const BenchOptions &opts)
{
    BenchCellResult result;
    result.cell = cell;
    result.configHash = configHashHex(describe(cell.spec));

    Profiler &profiler = Profiler::global();
    const bool prof_was_enabled = profiler.enabled();
    const bool meter_was_enabled = AllocMeter::enabled();

    std::size_t trial_index = 0;
    auto one_trial = [&]() -> double {
        // Fresh objects per trial: a trial must never benefit from
        // a predecessor's warmed allocator pools beyond what the
        // discarded warmup trials already grant uniformly.
        BuiltRun built = buildRun(cell.spec);
        Simulation sim(*built.system, *built.workload, built.sim);

        const std::uint64_t total_refs =
            static_cast<std::uint64_t>(built.sim.epochs +
                                       built.sim.warmupEpochs) *
            built.sim.refsPerEpochPerCore *
            built.workload->numCores();
        result.refsPerTrial = total_refs;

        const bool recorded = trial_index >= opts.warmup;
        ++trial_index;

        // Meter only the simulation loop: construction above is
        // setup cost, not the hot path the ROADMAP war targets.
        profiler.setEnabled(true);
        const ProfSnapshot prof0 = profiler.snapshot();
        AllocMeter::setEnabled(true);
        const AllocSnapshot alloc0 = AllocMeter::snapshot();

        const std::uint64_t t0 = perfNowNs();
        if (opts.slowdownUsPerTrial > 0) {
            // Synthetic regression for end-to-end gate tests: spin
            // inside the timed region without touching the sim.
            const std::uint64_t until =
                t0 + opts.slowdownUsPerTrial * 1000ULL;
            while (perfNowNs() < until) {
            }
        }
        // The bare epoch loop, not run(): finish()'s RunResult
        // aggregation would allocate inside the metered window and
        // free outside it, leaving a phantom alloc/free imbalance in
        // every trial's delta. The loop itself is the measurement.
        while (!sim.done())
            sim.stepEpoch();
        const std::uint64_t t1 = perfNowNs();

        const AllocSnapshot alloc1 = AllocMeter::snapshot();
        AllocMeter::setEnabled(meter_was_enabled);
        const ProfSnapshot prof1 = profiler.snapshot();
        profiler.setEnabled(prof_was_enabled);

        if (recorded) {
            const ProfSnapshot dprof = profDelta(prof0, prof1);
            for (std::size_t i = 0;
                 i < static_cast<std::size_t>(ProfPhase::NumPhases);
                 ++i) {
                result.prof.phases[i].ns += dprof.phases[i].ns;
                result.prof.phases[i].calls += dprof.phases[i].calls;
                result.prof.phases[i].allocBytes +=
                    dprof.phases[i].allocBytes;
                result.prof.phases[i].allocCalls +=
                    dprof.phases[i].allocCalls;
                result.prof.phases[i].allocFrees +=
                    dprof.phases[i].allocFrees;
            }
            const AllocSnapshot dalloc = allocDelta(alloc0, alloc1);
            result.alloc.bytes += dalloc.bytes;
            result.alloc.calls += dalloc.calls;
            result.alloc.frees += dalloc.frees;
        }

        const double seconds =
            static_cast<double>(t1 - t0) / 1e9;
        return seconds > 0.0
                   ? static_cast<double>(total_refs) / seconds
                   : 0.0;
    };

    result.samples = runTrials(opts.warmup, opts.trials, one_trial);
    result.refsPerSec = summarizeTrials(result.samples);
    return result;
}

BenchEnv
localBenchEnv()
{
    BenchEnv env;
    env.compiler = __VERSION__;
#ifdef NDEBUG
    env.buildType = "release";
#else
    env.buildType = "debug";
#endif
    env.hostThreads = std::thread::hardware_concurrency();
    env.unixTime = unixNowSec();
    return env;
}

namespace {

void
appendF64(std::string &out, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void
appendU64(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
}

} // namespace

std::string
renderBenchJson(const std::string &suite, const BenchOptions &opts,
                const BenchEnv &env,
                const std::vector<BenchCellResult> &results)
{
    std::string out = "{\n";
    out += "\"schema\":" + std::to_string(benchSchemaVersion) +
           ",\n\"tool\":\"mc_bench\",\n";
    out += "\"suite\":\"" + suite + "\",\n";

    out += "\"env\":{\"gitSha\":\"" + env.gitSha +
           "\",\"compiler\":\"" + env.compiler +
           "\",\"buildType\":\"" + env.buildType +
           "\",\"buildJobs\":" + std::to_string(env.buildJobs) +
           ",\"hostThreads\":" + std::to_string(env.hostThreads) +
           ",\"unixTime\":";
    appendF64(out, env.unixTime);
    out += "},\n";

    out += "\"protocol\":{\"warmup\":" +
           std::to_string(opts.warmup) +
           ",\"trials\":" + std::to_string(opts.trials) + "},\n";

    out += "\"cells\":[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchCellResult &r = results[i];
        out += "{\"id\":\"" + r.cell.id() + "\",\"scheme\":\"" +
               r.cell.spec.scheme + "\",\"workload\":\"" +
               r.cell.spec.workload + "\"";
        out += ",\"cores\":" + std::to_string(r.cell.spec.cores);
        out += ",\"epochs\":" + std::to_string(r.cell.spec.epochs);
        out += ",\"refs\":";
        appendU64(out, r.cell.spec.refs);
        out += ",\"seed\":";
        appendU64(out, r.cell.spec.seed);
        out += ",\"configHash\":\"" + r.configHash + "\"";
        out += ",\"refsPerTrial\":";
        appendU64(out, r.refsPerTrial);
        out += ",\"medianRefsPerSec\":";
        appendF64(out, r.refsPerSec.median);
        out += ",\"madRefsPerSec\":";
        appendF64(out, r.refsPerSec.mad);
        out += ",\"samples\":[";
        for (std::size_t s = 0; s < r.samples.size(); ++s) {
            if (s)
                out += ',';
            appendF64(out, r.samples[s]);
        }
        out += "]";
        out += ",\"phases\":{";
        for (std::size_t p = 0;
             p < static_cast<std::size_t>(ProfPhase::NumPhases);
             ++p) {
            if (p)
                out += ',';
            out += std::string("\"") +
                   profPhaseName(static_cast<ProfPhase>(p)) +
                   "\":{\"ns\":";
            appendU64(out, r.prof.phases[p].ns);
            out += ",\"calls\":";
            appendU64(out, r.prof.phases[p].calls);
            out += ",\"allocBytes\":";
            appendU64(out, r.prof.phases[p].allocBytes);
            out += ",\"allocCalls\":";
            appendU64(out, r.prof.phases[p].allocCalls);
            out += ",\"allocFrees\":";
            appendU64(out, r.prof.phases[p].allocFrees);
            out += "}";
        }
        out += "}";
        out += ",\"allocBytes\":";
        appendU64(out, r.alloc.bytes);
        out += ",\"allocCalls\":";
        appendU64(out, r.alloc.calls);
        out += ",\"allocFrees\":";
        appendU64(out, r.alloc.frees);
        out += "}";
        out += (i + 1 < results.size()) ? ",\n" : "\n";
    }
    out += "]\n}\n";
    return out;
}

std::string
renderBenchTable(const std::vector<BenchCellResult> &results)
{
    std::string out =
        "cell                               Mrefs/s     +-MAD  "
        "refProc%  kB/trial  allocs/trial  loopAllocs\n";
    char buf[200];
    for (const BenchCellResult &r : results) {
        const std::size_t trials =
            r.samples.empty() ? 1 : r.samples.size();
        std::uint64_t total_ns = 0;
        for (const auto &phase : r.prof.phases)
            total_ns += phase.ns;
        const double ref_pct =
            total_ns > 0
                ? 100.0 *
                      static_cast<double>(
                          r.prof[ProfPhase::RefProcessing].ns) /
                      static_cast<double>(total_ns)
                : 0.0;
        std::snprintf(
            buf, sizeof(buf),
            "%-32s %9.3f %9.3f %9.1f %9.1f %13.1f %11llu\n",
            r.cell.id().c_str(), r.refsPerSec.median / 1e6,
            r.refsPerSec.mad / 1e6, ref_pct,
            static_cast<double>(r.alloc.bytes) /
                (1024.0 * static_cast<double>(trials)),
            static_cast<double>(r.alloc.calls) /
                static_cast<double>(trials),
            static_cast<unsigned long long>(
                r.prof[ProfPhase::RefProcessing].allocCalls));
        out += buf;
    }
    return out;
}

} // namespace morphcache

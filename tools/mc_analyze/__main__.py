"""mc_analyze CLI — semantic whole-repo analyzer.

    python3 tools/mc_analyze [paths...] [options]

With no paths, analyzes src/, tools/, bench/. Exit codes: 0 clean,
1 findings, 2 internal error (same contract as mc_lint).
"""

from __future__ import annotations

import argparse
import os
import sys

import uparse
import clang_front
from allowlist import Allowlist
from cache import ModelCache
from model import FileModel, Finding
from passes import ALL_PASSES, Index

_EXTS = (".cc", ".hh", ".cpp", ".hpp", ".h")
_DEFAULT_ROOTS = ("src", "tools", "bench")
_SKIP_DIRS = {"build", ".git", ".cache", "__pycache__"}


def collect_files(repo_root: str, paths: list[str]) -> list[str]:
    """Repo-relative paths of analyzable sources."""
    out: list[str] = []
    roots = paths or [r for r in _DEFAULT_ROOTS
                      if os.path.isdir(os.path.join(repo_root, r))]
    for root in roots:
        full = os.path.join(repo_root, root)
        if os.path.isfile(full):
            out.append(os.path.relpath(full, repo_root))
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and
                not d.startswith("build-"))
            for name in sorted(filenames):
                if name.endswith(_EXTS):
                    out.append(os.path.relpath(
                        os.path.join(dirpath, name), repo_root))
    return out


def make_scope(fixture_mode: bool):
    """(path, kind) -> bool. Which pass applies where:

      wrap          src/ tools/ bench/  (everything scanned)
      serialization everything scanned
      det-src       src/ only (unordered iteration, entropy,
                    stats-bypass)
      det-all       everything scanned (wall-clock)
      concurrency   src/runner/ only
    """
    def scope(path: str, kind: str) -> bool:
        if fixture_mode:
            return True
        if kind == "det-src":
            return path.startswith("src/")
        if kind == "concurrency":
            return path.startswith("src/runner/")
        return True
    return scope


def parse_one(repo_root: str, rel: str, frontend: str,
              cache: ModelCache, clang: str | None,
              flags: dict) -> FileModel:
    full = os.path.join(repo_root, rel)
    with open(full, "rb") as f:
        content = f.read()
    fe = "clang" if (frontend == "clang" or
                     (frontend == "auto" and clang)) else "uparse"
    cached = cache.get(content, fe)
    if cached is not None:
        cached.path = rel  # key is content-based; path may move
        return cached
    text = content.decode("utf-8", errors="replace")
    if fe == "clang" and clang:
        fm = clang_front.parse_file(full, rel, text, clang, flags)
    else:
        fm = uparse.parse_file(rel, text)
    cache.put(content, fe, fm)
    return fm


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="mc_analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to analyze (default: "
                         "src/ tools/ bench/)")
    ap.add_argument("--repo-root", default=".")
    ap.add_argument("--cache-dir", default=None,
                    help="AST/model cache dir (default: "
                         "<repo>/.cache/mc_analyze; '' disables)")
    ap.add_argument("--frontend", default="auto",
                    choices=("auto", "clang", "uparse"),
                    help="decl-fact frontend (auto: clang when a "
                         "driver is on PATH, else uparse)")
    ap.add_argument("--checks", default=",".join(ALL_PASSES),
                    help="comma-separated pass subset")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default: "
                         "tools/mc_analyze_allow.txt when present)")
    ap.add_argument("--write-coverage", default=None, metavar="FILE",
                    help="write the analyzed-file list for "
                         "mc_lint --ast-coverage delegation")
    ap.add_argument("--fixture-mode", action="store_true",
                    help="apply every pass to every file "
                         "regardless of path (test fixtures)")
    ap.add_argument("--selftest-clang-extract", default=None,
                    metavar="DUMP.json",
                    help="parse a clang -ast-dump=json file and "
                         "print extracted decl facts (no clang "
                         "binary needed)")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.selftest_clang_extract:
        import json
        with open(args.selftest_clang_extract,
                  encoding="utf-8") as f:
            dump = json.load(f)
        facts = clang_front.extract_decls(
            dump, args.selftest_clang_extract)
        for section in ("aliases", "members", "params", "rets"):
            for k, v in sorted(facts[section].items(),
                               key=lambda kv: str(kv[0])):
                key = ".".join(k) if isinstance(k, tuple) else k
                print(f"{section}: {key} -> {v}")
        return 0

    repo_root = os.path.abspath(args.repo_root)
    cache_dir = args.cache_dir
    if cache_dir is None:
        cache_dir = os.path.join(repo_root, ".cache", "mc_analyze")
    cache = ModelCache(cache_dir or None)

    clang = clang_front.clang_binary() \
        if args.frontend in ("auto", "clang") else None
    if args.frontend == "clang" and not clang:
        print("mc_analyze: --frontend clang but no clang driver "
              "on PATH", file=sys.stderr)
        return 2
    flags = clang_front.load_compile_flags(repo_root) if clang \
        else {}

    files = collect_files(repo_root, args.paths)
    models = [parse_one(repo_root, rel, args.frontend, cache,
                        clang, flags) for rel in files]
    index = Index(models)
    scope = make_scope(args.fixture_mode)

    allow_path = args.allowlist
    if allow_path is None:
        cand = os.path.join(repo_root, "tools",
                            "mc_analyze_allow.txt")
        allow_path = cand if os.path.exists(cand) else ""
    allow = Allowlist(allow_path or None)

    findings: list[Finding] = []
    for name in args.checks.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in ALL_PASSES:
            print(f"mc_analyze: unknown check '{name}' (have: "
                  f"{', '.join(ALL_PASSES)})", file=sys.stderr)
            return 2
        findings.extend(ALL_PASSES[name](index, scope))
    findings = [f for f in findings if not allow.permits(f)]
    findings.extend(allow.residual_findings())
    findings.sort(key=lambda f: (f.path, f.line, f.check))

    if args.write_coverage:
        with open(args.write_coverage, "w", encoding="utf-8") as f:
            for rel in files:
                f.write(rel + "\n")

    for f in findings:
        print(f)
    if not args.quiet or findings:
        fe = "clang" if clang else "uparse"
        print(f"mc_analyze: {len(files)} files "
              f"({cache.hits} cached, {cache.misses} parsed) "
              f"frontend={fe} findings={len(findings)}")
    return 1 if findings else 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except Exception as exc:  # noqa: BLE001 — CLI boundary
        print(f"mc_analyze: internal error: {exc}",
              file=sys.stderr)
        sys.exit(2)

/**
 * @file
 * Matched hierarchy + generator configurations for experiments.
 *
 * Two scales are provided. *Paper scale* is Table 3 verbatim
 * (256 KB L2 slices, 1 MB L3 slices, 300 M-cycle epochs in the
 * original). *Fast scale* divides every capacity by 8 while keeping
 * associativities, latencies, and all capacity *ratios* — and, with
 * them, the ACFV coverage factors the workload model keys on —
 * identical, so a 24 k-reference epoch exercises the same relative
 * pressures a paper epoch did. The bench harnesses use fast scale
 * by default and accept MC_PAPER_SCALE=1 to run Table 3 verbatim.
 */

#ifndef MORPHCACHE_SIM_CONFIG_HH
#define MORPHCACHE_SIM_CONFIG_HH

#include "hierarchy/hierarchy.hh"
#include "workload/generator.hh"

namespace morphcache {

/**
 * Generator parameters matched to a hierarchy: working-set scale
 * anchors from the slice geometries and dispersion factors from
 * the ACFV tag coverage (acfvBits / assoc).
 */
GeneratorParams generatorFor(const HierarchyParams &params);

/** Table 3 verbatim. */
HierarchyParams paperScaleHierarchy(std::uint32_t num_cores = 16);

/** Capacities / 8, everything else identical. */
HierarchyParams fastScaleHierarchy(std::uint32_t num_cores = 16);

/**
 * The experiment hierarchy scale: fast scale unless the
 * MC_PAPER_SCALE environment variable is set to a nonzero value.
 */
HierarchyParams experimentHierarchy(std::uint32_t num_cores = 16);

} // namespace morphcache

#endif // MORPHCACHE_SIM_CONFIG_HH

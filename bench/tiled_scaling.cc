/**
 * @file
 * Future work (paper Section 5.5): tile-based scaling beyond 16
 * cores.
 *
 * A 32-core CMP runs a 32-application workload (two Table 5 mixes
 * side by side) three ways: as one flat 32-slice MorphCache, as
 * two independent 16-core MorphCache tiles, and under flat static
 * topologies. The paper's argument: the segmented bus does not
 * scale past ~16 slices, so larger chips should compose MorphCache
 * tiles behind a scalable network, scheduling sharing threads
 * within a tile.
 */

#include "common.hh"

#include "sim/tiled.hh"

using namespace morphcache;
using namespace morphcache::bench;

namespace {

MixSpec
doubleMix(const char *a, const char *b)
{
    MixSpec spec = mixByName(a);
    const MixSpec &second = mixByName(b);
    spec.benchmarks.insert(spec.benchmarks.end(),
                           second.benchmarks.begin(),
                           second.benchmarks.end());
    spec.name = "MIX 05+09";
    return spec;
}

} // namespace

int
main()
{
    const HierarchyParams tile16 = experimentHierarchy(16);
    const HierarchyParams flat32 = experimentHierarchy(32);
    const GeneratorParams gen = generatorFor(tile16);
    SimParams sim = defaultSim();

    const MixSpec mix = doubleMix("MIX 05", "MIX 09");

    std::printf("Section 5.5 (future work): 32 cores, two mixes "
                "side by side\n");
    std::printf("%-24s %12s %16s\n", "scheme", "throughput",
                "reconfigs");

    double flat_private = 0.0;
    for (auto [x, y, z] :
         {std::tuple{32, 1, 1}, {1, 1, 32}, {4, 4, 2}}) {
        MixWorkload workload(mix, gen, baseSeed());
        StaticTopologySystem system(
            flat32,
            Topology::symmetric(32, static_cast<std::uint32_t>(x),
                                static_cast<std::uint32_t>(y),
                                static_cast<std::uint32_t>(z)));
        Simulation simulation(system, workload, sim);
        const double tput = simulation.run().avgThroughput;
        if (flat_private == 0.0)
            flat_private = tput; // first row is the normalizer
        std::printf("%-24s %12.3f %16s\n", system.name().c_str(),
                    tput, "-");
    }
    {
        MixWorkload workload(mix, gen, baseSeed());
        MorphCacheSystem system(flat32, MorphConfig{});
        Simulation simulation(system, workload, sim);
        const double tput = simulation.run().avgThroughput;
        std::printf("%-24s %12.3f %16llu\n", "MorphCache(flat 32)",
                    tput,
                    static_cast<unsigned long long>(
                        system.controller()
                            .stats()
                            .reconfigurations()));
    }
    {
        MixWorkload workload(mix, gen, baseSeed());
        TiledMorphSystem system(tile16, MorphConfig{}, 2);
        Simulation simulation(system, workload, sim);
        const double tput = simulation.run().avgThroughput;
        std::printf("%-24s %12.3f %16llu\n",
                    system.name().c_str(), tput,
                    static_cast<unsigned long long>(
                        system.totalReconfigurations()));
    }
    std::printf("\npaper: beyond 16 cores, compose MorphCache "
                "tiles behind a scalable network rather than "
                "stretching one segmented bus across the chip\n");
    return 0;
}

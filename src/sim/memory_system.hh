/**
 * @file
 * The memory-system abstraction the simulator drives, plus the two
 * standard concrete systems: a fixed (static) topology and a
 * MorphCache-managed hierarchy. The PIPP and DSR baselines
 * implement the same interface in src/baselines.
 */

#ifndef MORPHCACHE_SIM_MEMORY_SYSTEM_HH
#define MORPHCACHE_SIM_MEMORY_SYSTEM_HH

#include <memory>
#include <string>

#include "hierarchy/hierarchy.hh"
#include "morph/controller.hh"

namespace morphcache {

class StatsRegistry;
class Tracer;

/**
 * Anything that can serve memory accesses and adapt at epoch
 * boundaries.
 */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /** Serve one access at CPU cycle `now`. */
    virtual AccessResult access(const MemAccess &access, Cycle now) = 0;

    /** Called by the simulator after every epoch. */
    virtual void epochBoundary() {}

    /** Cumulative per-core counters. */
    virtual const CoreStats &coreStats(CoreId core) const = 0;

    /** Core count. */
    virtual std::uint32_t numCores() const = 0;

    /** Display name for reports. */
    virtual std::string name() const = 0;

    /**
     * Register this system's tallies onto a stats registry.
     * Default: nothing registered.
     */
    virtual void registerStats(StatsRegistry &registry) { (void)registry; }

    /**
     * Attach a decision-provenance tracer (not owned; nullptr
     * detaches). Default: ignored.
     */
    virtual void setTracer(Tracer *tracer) { (void)tracer; }

    /**
     * Serialize/restore the complete mutable system state (cache
     * contents, policy state, counters). The defaults throw
     * CkptError so a system without checkpoint support fails typed
     * instead of resuming half-restored.
     */
    virtual void
    saveState(CkptWriter &w) const
    {
        (void)w;
        throw CkptError("memory system '" + name() +
                        "' does not support checkpoint/restore");
    }

    virtual void
    loadState(CkptReader &r)
    {
        (void)r;
        throw CkptError("memory system '" + name() +
                        "' does not support checkpoint/restore");
    }
};

/**
 * A fixed cache topology (the paper's static baselines).
 *
 * By default remote-slice traffic pays the same segmented-bus
 * latencies a MorphCache merged group pays: the wires are the same
 * whether the sharing is static or dynamic. The paper instead
 * grants static configurations flat 10/30-cycle latencies at any
 * sharing degree (Section 4); pass charge_bus=false to reproduce
 * that idealization — the two assumptions are compared by the
 * latency-model ablation bench.
 */
class StaticTopologySystem : public MemorySystem
{
  public:
    /**
     * @param params Hierarchy parameters.
     * @param topology Topology to hold for the whole run.
     * @param charge_bus Charge segmented-bus latency on remote
     *        traffic (default) or grant the paper's flat latencies.
     */
    StaticTopologySystem(HierarchyParams params,
                         const Topology &topology,
                         bool charge_bus = true);

    AccessResult access(const MemAccess &access, Cycle now) override;
    const CoreStats &coreStats(CoreId core) const override;
    std::uint32_t numCores() const override;
    std::string name() const override;
    void registerStats(StatsRegistry &registry) override;
    void saveState(CkptWriter &w) const override
    {
        hierarchy_.saveState(w);
    }
    void loadState(CkptReader &r) override
    {
        hierarchy_.loadState(r);
    }

    /** Underlying hierarchy (stats, tests). */
    Hierarchy &hierarchy() { return hierarchy_; }
    const Hierarchy &hierarchy() const { return hierarchy_; }

  private:
    Hierarchy hierarchy_;
};

/**
 * A MorphCache-managed hierarchy: starts from per-core private
 * slices, reconfigures at every epoch boundary, and pays the
 * segmented-bus penalty on merged-slice traffic.
 */
class MorphCacheSystem : public MemorySystem
{
  public:
    /**
     * @param params Hierarchy parameters; bus-penalty flags are
     *        forced on.
     * @param config Controller configuration.
     */
    MorphCacheSystem(HierarchyParams params, const MorphConfig &config);

    AccessResult access(const MemAccess &access, Cycle now) override;
    void epochBoundary() override;
    const CoreStats &coreStats(CoreId core) const override;
    std::uint32_t numCores() const override;
    std::string name() const override { return "MorphCache"; }
    void registerStats(StatsRegistry &registry) override;
    void setTracer(Tracer *tracer) override;
    void saveState(CkptWriter &w) const override;
    void loadState(CkptReader &r) override;

    /** Underlying hierarchy. */
    Hierarchy &hierarchy() { return hierarchy_; }
    const Hierarchy &hierarchy() const { return hierarchy_; }

    /** Reconfiguration controller (stats). */
    const MorphController &controller() const { return controller_; }

  private:
    /** Emit per-level bus-contention sample events for this epoch. */
    void traceBusSamples();

    Hierarchy hierarchy_;
    MorphController controller_;
    /** Decision-provenance tracer (not owned; null = disabled). */
    Tracer *tracer_ = nullptr; // ckpt: transient(wiring; reattached by owner)
    /** Bus counter values at the previous epoch boundary. */
    std::uint64_t lastL2QueueCycles_ = 0;
    std::uint64_t lastL2Txns_ = 0;
    std::uint64_t lastL3QueueCycles_ = 0;
    std::uint64_t lastL3Txns_ = 0;
};

} // namespace morphcache

#endif // MORPHCACHE_SIM_MEMORY_SYSTEM_HH

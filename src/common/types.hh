/**
 * @file
 * Fundamental scalar types shared by every MorphCache library.
 *
 * The simulator models a 16-core CMP with a three-level cache
 * hierarchy, so the vocabulary here is deliberately small: physical
 * addresses, cycle counts, and small dense identifiers for cores,
 * cache slices, and cache levels.
 */

#ifndef MORPHCACHE_COMMON_TYPES_HH
#define MORPHCACHE_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace morphcache {

/** Physical byte address. */
using Addr = std::uint64_t;

/** Simulated time in CPU cycles. */
using Cycle = std::uint64_t;

/** Simulated instruction count. */
using InstCount = std::uint64_t;

/** Dense core identifier, 0-based. */
using CoreId = std::uint16_t;

/** Dense cache-slice identifier within one level, 0-based. */
using SliceId = std::uint16_t;

/** Epoch (reconfiguration interval) ordinal. */
using EpochId = std::uint32_t;

/** Sentinel for "no core". */
inline constexpr CoreId invalidCore = std::numeric_limits<CoreId>::max();

/** Sentinel for "no slice". */
inline constexpr SliceId invalidSlice =
    std::numeric_limits<SliceId>::max();

/** Cache levels in the modelled hierarchy. */
enum class CacheLevel : std::uint8_t { L1 = 1, L2 = 2, L3 = 3 };

/** Kind of a memory reference. */
enum class AccessType : std::uint8_t { Read, Write };

/**
 * A single memory reference issued by a core.
 *
 * This is the unit of work the trace generators produce and the
 * hierarchy consumes.
 */
struct MemAccess
{
    /** Core issuing the reference. */
    CoreId core = 0;
    /** Physical byte address. */
    Addr addr = 0;
    /** Read or write. */
    AccessType type = AccessType::Read;
};

} // namespace morphcache

#endif // MORPHCACHE_COMMON_TYPES_HH

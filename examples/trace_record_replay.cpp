/**
 * @file
 * Trace record/replay: capture a synthetic workload into a trace
 * file, then drive two different schemes from the identical
 * reference stream — the apples-to-apples comparison setup a
 * downstream user wants for real traces.
 *
 * Usage: trace_record_replay [trace-file]   (default: /tmp/mc.trace)
 */

#include <cstdio>

#include "sim/config.hh"
#include "sim/simulation.hh"
#include "workload/trace.hh"

using namespace morphcache;

int
main(int argc, char **argv)
{
    const char *path = argc > 1 ? argv[1] : "/tmp/mc.trace";
    const HierarchyParams hier = experimentHierarchy(16);
    const GeneratorParams gen = generatorFor(hier);

    SimParams sim;
    sim.epochs = 6;
    sim.warmupEpochs = 1;

    // 1) Record MIX 05 into a trace file.
    {
        MixWorkload source(mixByName("MIX 05"), gen, 42);
        const Trace trace = recordTrace(
            source, sim.epochs + sim.warmupEpochs,
            sim.refsPerEpochPerCore);
        writeTrace(trace, path);
        std::printf("recorded %llu references to %s\n",
                    static_cast<unsigned long long>(
                        trace.totalReferences()),
                    path);
    }

    // 2) Replay the identical stream under two schemes.
    const Trace trace = readTrace(path);
    double base = 0.0;
    for (const char *scheme : {"private", "morph"}) {
        TraceWorkload workload(trace);
        double tput = 0.0;
        if (scheme[0] == 'p') {
            StaticTopologySystem system(
                hier, Topology::allPrivateTopology(16));
            Simulation simulation(system, workload, sim);
            tput = simulation.run().avgThroughput;
            base = tput;
        } else {
            MorphCacheSystem system(hier, MorphConfig{});
            Simulation simulation(system, workload, sim);
            tput = simulation.run().avgThroughput;
        }
        std::printf("%-8s throughput %.3f (%.3fx), trace wraps "
                    "%llu\n",
                    scheme, tput, tput / base,
                    static_cast<unsigned long long>(
                        workload.wrapCount()));
    }
    return 0;
}

# Empty dependencies file for mc_acf.
# This may be replaced when dependencies are built.

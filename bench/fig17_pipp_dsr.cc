/**
 * @file
 * Figure 17 — MorphCache versus PIPP [28] and DSR [18], both
 * extended to the L2 and L3 levels, on the twelve mixes,
 * normalized to the (16:1:1) baseline.
 *
 * Paper: MorphCache beats PIPP by 6.6% and DSR by 5.7% on average;
 * MIX 04 and MIX 08 (little ACF variation among members) are the
 * two mixes where the margin thins.
 */

#include "common.hh"

#include "baselines/ucp.hh"

using namespace morphcache;
using namespace morphcache::bench;

int
main()
{
    const HierarchyParams hier = experimentHierarchy(16);
    const GeneratorParams gen = generatorFor(hier);
    const SimParams sim = defaultSim();
    const Topology baseline_topo = Topology::symmetric(16, 16, 1, 1);

    std::printf("Figure 17: throughput normalized to (16:1:1)\n");
    printMixHeader();

    struct Row
    {
        double pipp, dsr, ucp, morph;
    };
    const auto rows = forEachMix(12, [&](int m) {
        char name[16];
        std::snprintf(name, sizeof(name), "MIX %02d", m);
        const MixSpec &mix = mixByName(name);

        const RunResult base = runStaticMix(
            mix, baseline_topo, hier, gen, sim, baseSeed() + m);

        auto normalized = [&](MemorySystem &system) {
            MixWorkload workload(mix, gen, baseSeed() + m);
            Simulation simulation(system, workload, sim);
            return simulation.run().avgThroughput /
                   base.avgThroughput;
        };

        Row row{};
        {
            PippSystem system(hier);
            row.pipp = normalized(system);
        }
        {
            DsrSystem system(hier);
            row.dsr = normalized(system);
        }
        {
            // UCP [20] at both levels: exact way partitioning, the
            // related-work contrast to PIPP's pseudo-partitioning.
            UcpSystem system(hier);
            row.ucp = normalized(system);
        }
        const RunResult morph = runMorphMix(
            mix, hier, gen, sim, baseSeed() + m, MorphConfig{});
        row.morph = morph.avgThroughput / base.avgThroughput;
        return row;
    });

    std::vector<double> pipp_norm, dsr_norm, ucp_norm, morph_norm;
    for (const Row &row : rows) {
        pipp_norm.push_back(row.pipp);
        dsr_norm.push_back(row.dsr);
        ucp_norm.push_back(row.ucp);
        morph_norm.push_back(row.morph);
    }
    printSeries("PIPP", pipp_norm);
    printSeries("DSR", dsr_norm);
    printSeries("UCP", ucp_norm);
    printSeries("MorphCache", morph_norm);
    std::printf("\npaper: morph beats PIPP by 6.6%% and DSR by 5.7%% "
                "on average; in this model PIPP's 16-core scaling "
                "pathology (which the paper highlights) is far more "
                "pronounced\n");
    return 0;
}

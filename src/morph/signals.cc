#include "morph/proposal.hh"

#include <cstdio>

#include "common/error.hh"
#include "hierarchy/cache_level.hh"

namespace morphcache {

MergeSignals
CacheLevelSignals::mergeSignals(const std::vector<SliceId> &a,
                                const std::vector<SliceId> &b) const
{
    MergeSignals s;
    s.utilA = model_.utilization(a);
    s.utilB = model_.utilization(b);
    s.fillPressureA = model_.fillPressure(a);
    s.fillPressureB = model_.fillPressure(b);
    return s;
}

SplitSignals
CacheLevelSignals::splitSignals(const std::vector<SliceId> &first,
                                const std::vector<SliceId> &second) const
{
    SplitSignals s;
    s.utilFirst = model_.utilization(first);
    s.utilSecond = model_.utilization(second);
    return s;
}

double
CacheLevelSignals::overlap(const std::vector<SliceId> &a,
                           const std::vector<SliceId> &b) const
{
    return model_.overlap(a, b);
}

double
CacheLevelSignals::utilization(const std::vector<SliceId> &slices) const
{
    return model_.utilization(slices);
}

std::string
proposalEventName(const ProposalEvent &event)
{
    const char *kind = "";
    switch (event.kind) {
      case ProposalEvent::Kind::L2Merge: kind = "l2 merge"; break;
      case ProposalEvent::Kind::L3Merge: kind = "l3 merge"; break;
      case ProposalEvent::Kind::ForcedL3Merge:
        kind = "l3 merge (forced by inclusion)";
        break;
      case ProposalEvent::Kind::L2Split: kind = "l2 split"; break;
      case ProposalEvent::Kind::L3Split: kind = "l3 split"; break;
      case ProposalEvent::Kind::ForcedL2Split:
        kind = "l2 split (forced by inclusion)";
        break;
    }
    char buf[96];
    switch (event.kind) {
      case ProposalEvent::Kind::L2Merge:
      case ProposalEvent::Kind::L3Merge:
      case ProposalEvent::Kind::ForcedL3Merge:
        std::snprintf(buf, sizeof(buf), "%s [%u..%u]+[%u..%u]", kind,
                      event.aFirst, event.aLast, event.bFirst,
                      event.bLast);
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%s [%u..%u]", kind,
                      event.aFirst, event.aLast);
        break;
    }
    return buf;
}

RuleBug
ruleBugFromName(const std::string &name)
{
    if (name == "none" || name == "0")
        return RuleBug::None;
    if (name == "skip-forced-l3-merge" || name == "1")
        return RuleBug::SkipForcedL3Merge;
    if (name == "ignore-alignment" || name == "2")
        return RuleBug::IgnoreAlignment;
    if (name == "skip-forced-l2-split" || name == "3")
        return RuleBug::SkipForcedL2Split;
    throw ConfigError("unknown rule bug '" + name +
                      "' (skip-forced-l3-merge, ignore-alignment, "
                      "skip-forced-l2-split, or 1..3)");
}

const char *
ruleBugName(RuleBug bug)
{
    switch (bug) {
      case RuleBug::None: return "none";
      case RuleBug::SkipForcedL3Merge: return "skip-forced-l3-merge";
      case RuleBug::IgnoreAlignment: return "ignore-alignment";
      case RuleBug::SkipForcedL2Split: return "skip-forced-l2-split";
    }
    return "none";
}

} // namespace morphcache

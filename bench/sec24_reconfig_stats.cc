/**
 * @file
 * Section 2.4 — reconfiguration activity statistics.
 *
 * Counts merges/splits per workload and the fraction of merge/split
 * events whose resulting configuration was asymmetric.
 *
 * Paper (full-length runs): multiprogrammed 5,248-12,176 events
 * (avg 9,654) with 39% asymmetric outcomes; multithreaded 263-1,043
 * (avg 856) with 54% asymmetric. Absolute counts scale with run
 * length (the paper simulates orders of magnitude more epochs);
 * the asymmetric fractions and the multiprogrammed>multithreaded
 * activity ordering are the comparable shape.
 */

#include "common.hh"

using namespace morphcache;
using namespace morphcache::bench;

int
main()
{
    const SimParams sim = defaultSim();

    std::printf("Section 2.4: reconfiguration statistics over %u "
                "epochs\n\n",
                sim.epochs);

    std::printf("multiprogrammed mixes:\n");
    std::uint64_t total = 0, asym = 0;
    std::uint64_t min_events = ~0ULL, max_events = 0;
    {
        const HierarchyParams hier = experimentHierarchy(16);
        const GeneratorParams gen = generatorFor(hier);
        for (int m = 1; m <= 12; ++m) {
            char name[16];
            std::snprintf(name, sizeof(name), "MIX %02d", m);
            ReconfigStats stats;
            std::string final_topo;
            runMorphMix(mixByName(name), hier, gen, sim,
                        baseSeed() + m, MorphConfig{}, &stats,
                        &final_topo);
            const std::uint64_t events = stats.reconfigurations();
            std::printf("  %-8s merges %3llu splits %3llu "
                        "asymmetric %3llu  final %s\n",
                        name,
                        static_cast<unsigned long long>(stats.merges),
                        static_cast<unsigned long long>(stats.splits),
                        static_cast<unsigned long long>(
                            stats.asymmetricOutcomes),
                        final_topo.c_str());
            total += events;
            asym += stats.asymmetricOutcomes;
            min_events = std::min(min_events, events);
            max_events = std::max(max_events, events);
        }
        std::printf("  events min %llu max %llu avg %.1f, "
                    "asymmetric outcomes %.0f%% (paper: 39%%)\n\n",
                    static_cast<unsigned long long>(min_events),
                    static_cast<unsigned long long>(max_events),
                    static_cast<double>(total) / 12.0,
                    total ? 100.0 * static_cast<double>(asym) /
                                static_cast<double>(total)
                          : 0.0);
    }

    std::printf("multithreaded applications:\n");
    total = asym = 0;
    min_events = ~0ULL;
    max_events = 0;
    {
        HierarchyParams hier = experimentHierarchy(16);
        hier.coherence = true;
        const GeneratorParams gen = generatorFor(hier);
        for (const auto &profile : parsecProfiles()) {
            MultithreadedWorkload workload(profile, 16, gen,
                                           baseSeed());
            MorphConfig config;
            config.sharedAddressSpace = true;
            MorphCacheSystem system(hier, config);
            Simulation simulation(system, workload, sim);
            simulation.run();
            const auto &stats = system.controller().stats();
            const std::uint64_t events = stats.reconfigurations();
            std::printf("  %-14s merges %3llu splits %3llu "
                        "asymmetric %3llu\n",
                        profile.name,
                        static_cast<unsigned long long>(stats.merges),
                        static_cast<unsigned long long>(stats.splits),
                        static_cast<unsigned long long>(
                            stats.asymmetricOutcomes));
            total += events;
            asym += stats.asymmetricOutcomes;
            min_events = std::min(min_events, events);
            max_events = std::max(max_events, events);
        }
        std::printf("  events min %llu max %llu avg %.1f, "
                    "asymmetric outcomes %.0f%% (paper: 54%%)\n",
                    static_cast<unsigned long long>(min_events),
                    static_cast<unsigned long long>(max_events),
                    static_cast<double>(total) / 12.0,
                    total ? 100.0 * static_cast<double>(asym) /
                                static_cast<double>(total)
                          : 0.0);
    }
    return 0;
}

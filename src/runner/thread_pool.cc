#include "runner/thread_pool.hh"

#include <exception>

#include "common/logging.hh"

namespace morphcache {

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : numThreads_(threads > 0 ? threads : defaultThreads())
{
    workers_.reserve(numThreads_);
    for (unsigned i = 0; i < numThreads_; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        MC_ASSERT(!stopping_);
        queue_.push_back(std::move(task));
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock,
                 [this]() { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [this]() {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ with a drained queue
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        try {
            task();
        } catch (const std::exception &err) {
            warn("thread pool task threw: %s", err.what());
        } catch (...) {
            warn("thread pool task threw a non-std exception");
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idleCv_.notify_all();
        }
    }
}

} // namespace morphcache

/**
 * @file
 * Tests for the virtual-filesystem seam and fault injection.
 *
 * The headline contracts under test:
 *
 *  - every durability primitive routes through the process-wide Vfs,
 *    so FaultyVfs can make any call site fail and the degradation
 *    contract (DESIGN.md section 15) is observable: transient faults
 *    retry with seeded-jitter backoff, persistent faults escape as
 *    typed IoError, and no injected history leaves a torn artifact;
 *  - the per-site audit regressions: short writes are carried by the
 *    write loops, fsync/close failures are errors (not swallowed), a
 *    manifest append never retries once a byte landed, and the fold
 *    discards torn bytes merged into a later complete line;
 *  - the lease read is errno-precise: ENOENT/ESTALE mean benignly
 *    gone (the readdir/open reap race), everything else means a
 *    lease exists but is unreadable — reclaim, don't fresh-claim;
 *  - trace sinks resume under faults: a failing resume-truncate is
 *    a typed error with the pre-resume file intact.
 */

#include <gtest/gtest.h>

#include <cerrno>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/serial.hh"
#include "io/faulty_vfs.hh"
#include "io/vfs.hh"
#include "runner/lease.hh"
#include "runner/manifest.hh"
#include "stats/tracing.hh"

namespace morphcache {
namespace {

std::string
tmpPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + name;
}

std::string
fileText(const std::string &path)
{
    const std::vector<std::uint8_t> raw = readFileBytes(path);
    return std::string(raw.begin(), raw.end());
}

void
writeText(const std::string &path, const std::string &text)
{
    vfsWriteWholeFile(path, text.data(), text.size(),
                      /*want_fsync=*/false);
}

/** A base that truncates every write to at most 3 bytes — the
 * partial-write regression rig for the callers' write loops. */
class ShortWriteVfs final : public Vfs
{
  public:
    explicit ShortWriteVfs(Vfs &base) : base_(base) {}

    int
    openFile(const std::string &path, int flags,
             unsigned int mode) override
    {
        return base_.openFile(path, flags, mode);
    }
    long
    readFd(int fd, void *buf, std::size_t n) override
    {
        return base_.readFd(fd, buf, n);
    }
    long
    writeFd(int fd, const void *buf, std::size_t n) override
    {
        ++shortened_;
        return base_.writeFd(fd, buf,
                             std::min<std::size_t>(n, 3));
    }
    int fsyncFd(int fd) override { return base_.fsyncFd(fd); }
    int closeFd(int fd) override { return base_.closeFd(fd); }
    int
    renamePath(const std::string &from,
               const std::string &to) override
    {
        return base_.renamePath(from, to);
    }
    int
    linkPath(const std::string &from,
             const std::string &to) override
    {
        return base_.linkPath(from, to);
    }
    int
    unlinkPath(const std::string &path) override
    {
        return base_.unlinkPath(path);
    }
    int
    truncatePath(const std::string &path,
                 std::uint64_t len) override
    {
        return base_.truncatePath(path, len);
    }
    int
    mkdirPath(const std::string &path) override
    {
        return base_.mkdirPath(path);
    }
    bool
    existsPath(const std::string &path) override
    {
        return base_.existsPath(path);
    }
    void sleepMs(std::uint64_t ms) override { base_.sleepMs(ms); }

    std::uint64_t shortened() const { return shortened_; }

  private:
    Vfs &base_;
    std::uint64_t shortened_ = 0;
};

// ---------------------------------------------------------------
// The seam itself
// ---------------------------------------------------------------

TEST(Vfs, WholeFileRoundTripThroughRealVfs)
{
    const std::string path = tmpPath("io_roundtrip.bin");
    const std::string body = "seam round trip\n\x01\x02\x03";
    writeText(path, body);
    EXPECT_EQ(fileText(path), body);
    vfs().unlinkPath(path);
}

TEST(Vfs, MissingFileReadIsTypedWithErrno)
{
    try {
        vfsReadWholeFile(tmpPath("io_does_not_exist.bin"));
        FAIL() << "expected IoError";
    } catch (const IoError &err) {
        EXPECT_EQ(err.errnoCode(), ENOENT);
        EXPECT_FALSE(err.transient());
        EXPECT_NE(std::string(err.what()).find("open"),
                  std::string::npos);
    }
}

TEST(Vfs, TransienceTaxonomy)
{
    for (int code : {EINTR, EAGAIN, EBUSY, ESTALE, ETIMEDOUT,
                     ENFILE, EMFILE}) {
        EXPECT_TRUE(errnoIsTransient(code)) << code;
    }
    for (int code : {ENOSPC, EIO, EDQUOT, EROFS, EACCES, ENOENT}) {
        EXPECT_FALSE(errnoIsTransient(code)) << code;
    }
}

TEST(Vfs, IoErrorIsACkptError)
{
    // Existing recovery paths catch CkptError; the typed subclass
    // must flow through them.
    try {
        throwIo(VfsOp::Write, "somewhere.bin", -ENOSPC);
    } catch (const CkptError &err) {
        EXPECT_NE(std::string(err.what()).find("somewhere.bin"),
                  std::string::npos);
    }
}

TEST(Vfs, WriteAllRidesOutShortWrites)
{
    ShortWriteVfs shorty(vfs());
    const std::string path = tmpPath("io_short_writes.bin");
    std::string body;
    for (int i = 0; i < 100; ++i)
        body += "0123456789";
    {
        ScopedVfs swap(&shorty);
        writeText(path, body);
    }
    EXPECT_EQ(fileText(path), body);
    // 1000 bytes at <= 3 per write proves the loop carried on.
    EXPECT_GE(shorty.shortened(), 334u);
    vfs().unlinkPath(path);
}

// ---------------------------------------------------------------
// FaultyVfs mechanics
// ---------------------------------------------------------------

TEST(FaultyVfs, SameSeedSameSchedule)
{
    const std::string path = tmpPath("io_seeded.bin");
    const std::string body(256, 'x');
    auto run = [&](std::uint64_t seed) {
        FaultPlan plan;
        plan.seed = seed;
        plan.faultPermille = 300;
        FaultyVfs faulty(vfs(), plan);
        ScopedVfs swap(&faulty);
        std::string outcome;
        for (int i = 0; i < 20; ++i) {
            try {
                writeText(path, body);
                outcome += 'o';
            } catch (const IoError &err) {
                outcome += err.transient() ? 't' : 'p';
            }
        }
        return outcome + ":" + std::to_string(faulty.faultCount());
    };
    const std::string first = run(42);
    EXPECT_EQ(first, run(42));
    // Some faults fired and some writes went through: the schedule
    // exercised both paths.
    EXPECT_NE(first.find_first_of("tp"), std::string::npos);
    EXPECT_NE(first.find('o'), std::string::npos);
    vfs().unlinkPath(path);
}

TEST(FaultyVfs, ForcedFaultsMatchOpAndPath)
{
    FaultPlan plan;
    plan.faultPermille = 0;
    FaultyVfs faulty(vfs(), plan);
    faulty.failNext(VfsOp::Open, EIO, "only_this.bin");
    ScopedVfs swap(&faulty);

    // A different path sails through and leaves the fault armed.
    const std::string other = tmpPath("io_other.bin");
    writeText(other, "ok");
    EXPECT_EQ(faulty.armedFaults(), 1u);

    const std::string target = tmpPath("io_only_this.bin");
    EXPECT_THROW(writeText(target, "boom"), IoError);
    EXPECT_EQ(faulty.armedFaults(), 0u);
    vfs().unlinkPath(other);
}

// ---------------------------------------------------------------
// atomicWriteFile degradation contract
// ---------------------------------------------------------------

TEST(AtomicWrite, TransientFaultRetriesWithBackoff)
{
    const std::string path = tmpPath("io_aw_transient.bin");
    FaultPlan plan;
    plan.faultPermille = 0;
    FaultyVfs faulty(vfs(), plan);
    faulty.failNext(VfsOp::Rename, ESTALE);
    faulty.failNext(VfsOp::Write, EAGAIN, ".tmp.");
    {
        ScopedVfs swap(&faulty);
        const std::string body = "retried into place";
        atomicWriteFile(path, body.data(), body.size());
    }
    EXPECT_EQ(fileText(path), "retried into place");
    // Both transient faults consumed a backoff sleep (virtualized
    // to a counter — no wall-clock spent).
    EXPECT_GE(faulty.sleepCount(), 2u);
    vfs().unlinkPath(path);
}

TEST(AtomicWrite, PersistentFaultsAreTypedAndLeaveOldBytes)
{
    const std::string path = tmpPath("io_aw_persist.bin");
    writeText(path, "old consistent bytes");

    const struct
    {
        VfsOp op;
        int code;
        const char *where;
    } sites[] = {
        {VfsOp::Open, EACCES, ".tmp."},
        {VfsOp::Write, ENOSPC, ".tmp."},
        {VfsOp::Fsync, EIO, ".tmp."},
        {VfsOp::Close, EIO, ".tmp."},
        {VfsOp::Rename, EROFS, ""},
    };
    for (const auto &site : sites) {
        FaultPlan plan;
        plan.faultPermille = 0;
        FaultyVfs faulty(vfs(), plan);
        faulty.failNext(site.op, site.code, site.where);
        ScopedVfs swap(&faulty);
        try {
            atomicWriteFile(path, "new", 3);
            FAIL() << "expected IoError from "
                   << vfsOpName(site.op);
        } catch (const IoError &err) {
            EXPECT_EQ(err.errnoCode(), site.code)
                << vfsOpName(site.op);
            EXPECT_FALSE(err.transient());
        }
    }
    // Five injected failures, zero torn destinations.
    EXPECT_EQ(fileText(path), "old consistent bytes");
    vfs().unlinkPath(path);
}

TEST(AtomicWrite, RotationFailureLeavesChainUndisturbed)
{
    const std::string path = tmpPath("io_aw_rotate.bin");
    const std::string prev = path + ".prev";
    vfs().unlinkPath(prev);
    writeText(path, "generation one");

    FaultPlan plan;
    plan.faultPermille = 0;
    FaultyVfs faulty(vfs(), plan);
    faulty.failNext(VfsOp::Rename, EIO, ".prev");
    {
        ScopedVfs swap(&faulty);
        EXPECT_THROW(
            atomicWriteFileWithRotation(path, "generation two", 14),
            IoError);
    }
    // The failed rotation fired before the old chain was touched.
    EXPECT_EQ(fileText(path), "generation one");
    EXPECT_FALSE(vfs().existsPath(prev));

    atomicWriteFileWithRotation(path, "generation two", 14);
    EXPECT_EQ(fileText(path), "generation two");
    EXPECT_EQ(fileText(prev), "generation one");
    vfs().unlinkPath(path);
    vfs().unlinkPath(prev);
}

TEST(AtomicWrite, CrashPointSweepLeavesCompleteOldOrNew)
{
    const std::string path = tmpPath("io_aw_crash.bin");
    const std::string prev = path + ".prev";
    const std::string before = "AAAA before the crash";
    const std::string after = "BBBBBB after, longer than before";

    // Sweep the plug across every operation of the rotation +
    // write + publish sequence; op 40 is past the end (no crash).
    for (std::uint64_t crash_at = 1; crash_at <= 40; ++crash_at) {
        vfs().unlinkPath(path);
        vfs().unlinkPath(prev);
        writeText(path, before);

        FaultPlan plan;
        plan.faultPermille = 0;
        plan.crashAtOp = crash_at;
        FaultyVfs faulty(vfs(), plan);
        {
            ScopedVfs swap(&faulty);
            try {
                atomicWriteFileWithRotation(path, after.data(),
                                            after.size());
            } catch (const IoError &) {
                // the quarantine path; state checked below
            }
        }
        // Recovery view (checked with the real vfs): the primary
        // or its .prev fallback must hold complete bytes of one
        // generation — never a prefix, never a mix.
        if (vfs().existsPath(path)) {
            const std::string text = fileText(path);
            EXPECT_TRUE(text == before || text == after)
                << "crashAtOp=" << crash_at << " tore '" << text
                << "'";
        } else {
            ASSERT_TRUE(vfs().existsPath(prev))
                << "crashAtOp=" << crash_at
                << " lost both generations";
            EXPECT_EQ(fileText(prev), before)
                << "crashAtOp=" << crash_at;
        }
    }
    vfs().unlinkPath(path);
    vfs().unlinkPath(prev);
}

// ---------------------------------------------------------------
// Manifest appender + fold hardening
// ---------------------------------------------------------------

std::string
freshManifest(const char *name, std::size_t cells,
              std::uint64_t hash)
{
    const std::string path = tmpPath(name);
    std::string doc = manifestHeaderLine(cells, hash);
    for (std::size_t i = 0; i < cells; ++i) {
        doc += "{\"type\":\"cell\",\"index\":" + std::to_string(i) +
               ",\"status\":\"pending\",\"attempts\":0}\n";
    }
    writeText(path, doc);
    return path;
}

TEST(ManifestIo, AppendRetriesCleanTransientWriteFailure)
{
    const std::string path =
        freshManifest("io_m_retry.jsonl", 2, 7);
    FaultPlan plan;
    plan.faultPermille = 0;
    FaultyVfs faulty(vfs(), plan);
    // Zero bytes land (forced faults error out the whole write),
    // and EAGAIN is transient: the record must retry and land once.
    faulty.failNext(VfsOp::Write, EAGAIN, "io_m_retry");
    {
        ScopedVfs swap(&faulty);
        ManifestLog log(path);
        log.appendCell(1, "done", 1);
    }
    EXPECT_GE(faulty.sleepCount(), 1u);
    const std::vector<CellProgress> progress =
        foldManifest(path, 2, 7);
    EXPECT_EQ(progress[0].status, "pending");
    EXPECT_EQ(progress[1].status, "done");
    EXPECT_EQ(progress[1].attempts, 1u);
    vfs().unlinkPath(path);
}

TEST(ManifestIo, AppendNeverRetriesAfterFsyncOrCloseFailure)
{
    const std::string path =
        freshManifest("io_m_fsync.jsonl", 1, 7);
    for (const VfsOp op : {VfsOp::Fsync, VfsOp::Close}) {
        FaultPlan plan;
        plan.faultPermille = 0;
        FaultyVfs faulty(vfs(), plan);
        faulty.failNext(op, EIO, "io_m_fsync");
        ScopedVfs swap(&faulty);
        ManifestLog log(path);
        try {
            log.appendCell(0, "running", 1);
            FAIL() << "expected IoError from " << vfsOpName(op);
        } catch (const IoError &err) {
            EXPECT_EQ(err.errnoCode(), EIO);
            EXPECT_FALSE(err.transient());
        }
        // Never retried: no backoff sleep was taken.
        EXPECT_EQ(faulty.sleepCount(), 0u);
    }
    vfs().unlinkPath(path);
}

TEST(ManifestIo, FoldDiscardsTornBytesMergedIntoALine)
{
    // A worker died after landing a prefix of its record (no
    // newline); another process's complete O_APPEND record then
    // glued onto it, forming one line with two "{"type":" markers.
    // The fold must parse the *last* record — the one the
    // newline-writer supplied whole — and never see the torn
    // prefix's fields (the extractor takes a key's first
    // occurrence, so parsing the merged line whole would fabricate
    // a phantom index-0 event).
    const std::string path = tmpPath("io_m_torn.jsonl");
    std::string doc = manifestHeaderLine(2, 7);
    doc += "{\"type\":\"cell\",\"index\":0,\"status\":\"pending\","
           "\"attempts\":0}\n";
    doc += "{\"type\":\"cell\",\"index\":1,\"status\":\"pending\","
           "\"attempts\":0}\n";
    doc += "{\"type\":\"cell\",\"index\":0,\"status\":\"failed\","
           "\"attempts\":9"; // torn: no closing brace, no newline
    doc += "{\"type\":\"cell\",\"index\":1,\"status\":\"done\","
           "\"attempts\":1}\n";
    writeText(path, doc);

    const std::vector<CellProgress> progress =
        foldManifest(path, 2, 7);
    EXPECT_EQ(progress[0].status, "pending");
    EXPECT_EQ(progress[0].attempts, 0u);
    EXPECT_EQ(progress[1].status, "done");
    EXPECT_EQ(progress[1].attempts, 1u);
    vfs().unlinkPath(path);
}

// ---------------------------------------------------------------
// Lease protocol under faults
// ---------------------------------------------------------------

std::string
freshLeaseDir(const char *name)
{
    const std::string dir = tmpPath(name);
    vfs().mkdirPath(dir);
    vfs().unlinkPath(cellLeasePath(dir, 0));
    vfs().unlinkPath(cellResultPath(dir, 0));
    return dir;
}

TEST(LeaseIo, EnoentDuringScanIsBenignlyGone)
{
    // The reap/claim race: the lease vanished between the scan and
    // our open. ENOENT must read as Missing — a fresh generation-1
    // claim — not as corruption.
    const std::string dir = freshLeaseDir("io_lease_enoent");
    FaultPlan plan;
    plan.faultPermille = 0;
    FaultyVfs faulty(vfs(), plan);
    faulty.failNext(VfsOp::Open, ENOENT, ".lease");
    ScopedVfs swap(&faulty);

    LeaseInfo mine;
    EXPECT_EQ(tryClaimCell(dir, 0, "w1:1", 60.0, mine),
              LeaseClaim::Claimed);
    EXPECT_EQ(mine.generation, 1u);
    releaseLease(dir, mine);
}

TEST(LeaseIo, UnreadableLeaseIsCorruptNotMissing)
{
    // An EIO on open means a lease *exists* but cannot be read.
    // Treating it as Missing would fresh-claim via link(2) against
    // the live file (losing to EEXIST forever); the errno-precise
    // read reclaims through the generation fence instead.
    const std::string dir = freshLeaseDir("io_lease_eio");
    LeaseInfo original;
    ASSERT_EQ(tryClaimCell(dir, 0, "w1:1", 60.0, original),
              LeaseClaim::Claimed);

    FaultPlan plan;
    plan.faultPermille = 0;
    FaultyVfs faulty(vfs(), plan);
    faulty.failNext(VfsOp::Open, EIO, ".lease");
    ScopedVfs swap(&faulty);

    LeaseInfo thief;
    EXPECT_EQ(tryClaimCell(dir, 0, "w2:2", 60.0, thief),
              LeaseClaim::Claimed);
    EXPECT_GE(thief.generation, 2u);
    releaseLease(dir, thief);
}

TEST(LeaseIo, ScratchWriteFailureIsALeaseError)
{
    // The lease API's contract is LeaseError — the executor's
    // claim loop catches it and moves to the next cell; a raw
    // IoError would unwind the claim thread.
    const std::string dir = freshLeaseDir("io_lease_scratch");
    FaultPlan plan;
    plan.faultPermille = 0;
    FaultyVfs faulty(vfs(), plan);
    faulty.failNext(VfsOp::Write, ENOSPC, ".tmp.");
    ScopedVfs swap(&faulty);

    LeaseInfo mine;
    EXPECT_THROW(tryClaimCell(dir, 0, "w1:1", 60.0, mine),
                 LeaseError);
}

TEST(LeaseIo, ReapSkipsLeaseDeletedUnderIt)
{
    const std::string dir = freshLeaseDir("io_lease_reap");
    LeaseInfo mine;
    ASSERT_EQ(tryClaimCell(dir, 0, "w1:1", 60.0, mine),
              LeaseClaim::Claimed);

    FaultPlan plan;
    plan.faultPermille = 0;
    FaultyVfs faulty(vfs(), plan);
    faulty.failNext(VfsOp::Open, ENOENT, ".lease");
    {
        ScopedVfs swap(&faulty);
        // The lease reads as gone: nothing to reap, no typed error,
        // and crucially no unlink of the live lease.
        EXPECT_EQ(reapStaleLeases(dir, 1), 0u);
    }
    EXPECT_TRUE(leaseStillMine(dir, mine));
    releaseLease(dir, mine);
}

// ---------------------------------------------------------------
// Trace sinks under faults
// ---------------------------------------------------------------

TEST(TraceIo, JsonlResumeTruncatesToCheckpointOffset)
{
    const std::string path = tmpPath("io_trace_resume.jsonl");
    std::uint64_t offset_at_ckpt = 0;
    {
        JsonlTraceSink sink(path);
        Tracer tracer(&sink);
        TraceEvent a("epoch");
        tracer.emit(a);
        offset_at_ckpt = sink.byteOffset();
        TraceEvent b("merge"); // after the "checkpoint": discarded
        tracer.emit(b);
        sink.finish();
    }
    {
        JsonlTraceSink sink(path, offset_at_ckpt);
        EXPECT_EQ(sink.byteOffset(), offset_at_ckpt);
        Tracer tracer(&sink);
        TraceEvent c("split");
        tracer.emit(c);
        sink.finish();
    }
    const std::string text = fileText(path);
    EXPECT_NE(text.find("\"epoch\""), std::string::npos);
    EXPECT_EQ(text.find("\"merge\""), std::string::npos);
    EXPECT_NE(text.find("\"split\""), std::string::npos);
    vfs().unlinkPath(path);
}

TEST(TraceIo, ResumeTruncateFailureLeavesFileIntact)
{
    const std::string path = tmpPath("io_trace_trunc.jsonl");
    writeText(path, "{\"type\": \"epoch\"}\n{\"type\": \"merge\"}\n");

    FaultPlan plan;
    plan.faultPermille = 0;
    FaultyVfs faulty(vfs(), plan);
    faulty.failNext(VfsOp::Truncate, EIO);
    {
        ScopedVfs swap(&faulty);
        try {
            JsonlTraceSink sink(path, 18);
            FAIL() << "expected IoError";
        } catch (const IoError &err) {
            EXPECT_EQ(err.errnoCode(), EIO);
        }
    }
    // The typed error escaped *before* the file was opened for
    // writing: every pre-resume byte is still there.
    EXPECT_EQ(fileText(path),
              "{\"type\": \"epoch\"}\n{\"type\": \"merge\"}\n");
    vfs().unlinkPath(path);
}

TEST(TraceIo, EventWriteFailureIsTypedAndOffsetHonest)
{
    const std::string path = tmpPath("io_trace_evfail.jsonl");
    FaultPlan plan;
    plan.faultPermille = 0;
    FaultyVfs faulty(vfs(), plan);
    {
        ScopedVfs swap(&faulty);
        JsonlTraceSink sink(path);
        Tracer tracer(&sink);
        TraceEvent ok("epoch");
        tracer.emit(ok);
        const std::uint64_t off_before = sink.byteOffset();
        EXPECT_GT(off_before, 0u);

        faulty.failNext(VfsOp::Write, ENOSPC);
        TraceEvent doomed("merge");
        EXPECT_THROW(tracer.emit(doomed), IoError);
        // Forced write faults land zero bytes, and the recorded
        // offset must never run ahead of the file.
        EXPECT_EQ(sink.byteOffset(), off_before);
        sink.finish();
    }
    EXPECT_EQ(fileText(path).find("\"merge\""), std::string::npos);
    vfs().unlinkPath(path);
}

} // namespace
} // namespace morphcache

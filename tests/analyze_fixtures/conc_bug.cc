// mc_analyze mutation fixture: concurrency-discipline violations.
// A worker lambda handed to a thread container writes a plain
// member and a by-reference capture with no atomic, no guard.

#include <cstdint>
#include <thread>
#include <vector>

namespace fixture {

class Campaign
{
  public:
    void
    fanOut()
    {
        std::uint64_t sharedTally = 0;
        std::vector<std::thread> workers;
        for (int i = 0; i < 4; ++i) {
            workers.emplace_back([this, &sharedTally] {
                // Plain member write from a thread body: torn
                // updates and lost increments.
                completed_ += 1;
                // By-reference capture written by every worker.
                sharedTally += 1;
            });
        }
        for (auto &t : workers)
            t.join();
        (void)sharedTally;
    }

  private:
    std::uint64_t completed_ = 0;
};

} // namespace fixture

#include "stats/metrics.hh"

#include "common/logging.hh"
#include "stats/stats.hh"

namespace morphcache {

double
throughput(const std::vector<double> &ipcs)
{
    double sum = 0.0;
    for (double ipc : ipcs)
        sum += ipc;
    return sum;
}

namespace {

std::vector<double>
speedups(const std::vector<double> &ipcs,
         const std::vector<double> &ref_ipcs)
{
    MC_ASSERT(ipcs.size() == ref_ipcs.size());
    std::vector<double> result;
    result.reserve(ipcs.size());
    for (std::size_t i = 0; i < ipcs.size(); ++i) {
        MC_ASSERT(ref_ipcs[i] > 0.0);
        result.push_back(ipcs[i] / ref_ipcs[i]);
    }
    return result;
}

} // namespace

double
weightedSpeedup(const std::vector<double> &ipcs,
                const std::vector<double> &ref_ipcs)
{
    return mean(speedups(ipcs, ref_ipcs));
}

double
fairSpeedup(const std::vector<double> &ipcs,
            const std::vector<double> &ref_ipcs)
{
    return harmonicMean(speedups(ipcs, ref_ipcs));
}

} // namespace morphcache

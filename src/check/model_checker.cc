#include "check/model_checker.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/error.hh"
#include "common/logging.hh"
#include "hierarchy/hierarchy.hh"

namespace morphcache {

namespace {

/** Pack one oracle query into a key (6 bits per range bound). */
std::uint32_t
packQuery(bool is_l3, bool is_merge, std::uint32_t a_first,
          std::uint32_t a_last, std::uint32_t b_first,
          std::uint32_t b_last)
{
    return a_first | a_last << 6 | b_first << 12 | b_last << 18 |
           (is_merge ? 1u << 24 : 0u) | (is_l3 ? 1u << 25 : 0u);
}

bool
isMergeKey(std::uint32_t key)
{
    return (key >> 24) & 1;
}

bool
isL3Key(std::uint32_t key)
{
    return (key >> 25) & 1;
}

} // namespace

std::string
oracleQueryName(std::uint32_t key)
{
    const std::uint32_t a_first = key & 0x3f;
    const std::uint32_t a_last = (key >> 6) & 0x3f;
    const std::uint32_t b_first = (key >> 12) & 0x3f;
    const std::uint32_t b_last = (key >> 18) & 0x3f;
    const bool is_merge = isMergeKey(key);
    const bool is_l3 = isL3Key(key);
    std::ostringstream os;
    os << (is_l3 ? "l3" : "l2") << (is_merge ? " merge" : " split");
    os << " [" << a_first << ".." << a_last << "]";
    if (is_merge)
        os << "+[" << b_first << ".." << b_last << "]";
    return os.str();
}

void
ClassificationOracle::beginRun(const std::vector<char> &script)
{
    trail_.clear();
    script_ = script;
    targeted_ = false;
}

void
ClassificationOracle::beginTargetedRun(std::uint32_t yes_key,
                                       bool yes_all_l2_splits)
{
    trail_.clear();
    script_.clear();
    targeted_ = true;
    yesKey_ = yes_key;
    yesAllL2Splits_ = yes_all_l2_splits;
}

bool
ClassificationOracle::answer(std::uint32_t key)
{
    // The trail is tiny (one entry per distinct evaluation of one
    // epoch decision); a linear scan beats any map.
    for (const OracleDecision &d : trail_) {
        if (d.key == key)
            return d.desirable;
    }
    bool ans;
    if (targeted_) {
        ans = key == yesKey_ ||
              (yesAllL2Splits_ && !isMergeKey(key) && !isL3Key(key));
    } else {
        const std::size_t index = trail_.size();
        ans = index < script_.size() ? script_[index] != 0 : false;
    }
    trail_.push_back(OracleDecision{key, ans});
    return ans;
}

bool
ClassificationOracle::advance(std::vector<char> &script) const
{
    // Depth-first: flip the deepest "no" to "yes"; everything
    // beyond it defaults to "no" on the next run.
    std::size_t i = trail_.size();
    while (i > 0 && trail_[i - 1].desirable)
        --i;
    if (i == 0)
        return false;
    script.clear();
    script.reserve(i);
    for (std::size_t j = 0; j + 1 < i; ++j)
        script.push_back(trail_[j].desirable ? 1 : 0);
    script.push_back(1);
    return true;
}

OracleLevelSignals::OracleLevelSignals(ClassificationOracle &oracle,
                                       bool is_l3,
                                       const MsatConfig &msat,
                                       double split_high_factor)
    : oracle_(oracle), isL3_(is_l3),
      hot_(msat.high * std::max(1.0, split_high_factor) + 1.0),
      cold_(msat.low - 1.0), mid_((msat.low + msat.high) / 2.0)
{
}

MergeSignals
OracleLevelSignals::mergeSignals(const std::vector<SliceId> &a,
                                 const std::vector<SliceId> &b) const
{
    const bool yes = oracle_.answer(
        packQuery(isL3_, true, a.front(), a.back(), b.front(),
                  b.back()));
    MergeSignals s;
    if (yes) {
        // Condition (i): one hot group, one cold low-churn group.
        s.utilA = hot_;
        s.utilB = cold_;
    } else {
        s.utilA = mid_;
        s.utilB = mid_;
    }
    s.fillPressureA = 0.0;
    s.fillPressureB = 0.0;
    return s;
}

SplitSignals
OracleLevelSignals::splitSignals(
    const std::vector<SliceId> &first,
    const std::vector<SliceId> &second) const
{
    const bool yes = oracle_.answer(packQuery(
        isL3_, false, first.front(), second.back(), 0, 0));
    SplitSignals s;
    s.utilFirst = yes ? hot_ : mid_;
    s.utilSecond = yes ? hot_ : mid_;
    return s;
}

double
OracleLevelSignals::overlap(const std::vector<SliceId> &,
                            const std::vector<SliceId> &) const
{
    return 0.0;
}

double
OracleLevelSignals::utilization(const std::vector<SliceId> &) const
{
    return mid_;
}

ClassificationMode
classificationModeFromName(const char *name)
{
    if (std::strcmp(name, "auto") == 0)
        return ClassificationMode::Auto;
    if (std::strcmp(name, "full") == 0)
        return ClassificationMode::Full;
    if (std::strcmp(name, "cluster") == 0)
        return ClassificationMode::Cluster;
    throw ConfigError(
        "unknown classification mode (auto, full, cluster)");
}

const char *
classificationModeName(ClassificationMode mode)
{
    switch (mode) {
      case ClassificationMode::Auto: return "auto";
      case ClassificationMode::Full: return "full";
      case ClassificationMode::Cluster: return "cluster";
    }
    return "?";
}

namespace {

MorphConfig
checkerMorphConfig(const ModelCheckConfig &config)
{
    MorphConfig morph;
    morph.msat = config.msat;
    morph.msatL3 = config.msatL3;
    // The decision function is explored directly; the runtime gates
    // (checkPolicy) and effects (faults, QoS) stay out of the loop.
    morph.checkPolicy = CheckPolicy::Off;
    return morph;
}

void
printPartition(std::ostream &os, const Partition &partition)
{
    for (const std::vector<SliceId> &group : partition)
        os << "[" << group.front() << ".." << group.back() << "]";
}

void
printTopology(std::ostream &os, const Topology &topo)
{
    os << "l2=";
    printPartition(os, topo.l2);
    os << " l3=";
    printPartition(os, topo.l3);
    os << " (" << topo.name() << ")";
}

} // namespace

void
printCounterexample(std::ostream &os, const Counterexample &cex)
{
    os << "counterexample: " << cex.violations.size()
       << " invariant violation(s) after " << cex.steps.size()
       << " decision(s) from the all-private state\n";
    for (std::size_t i = 0; i < cex.steps.size(); ++i) {
        const CounterexampleStep &step = cex.steps[i];
        os << "decision #" << i + 1 << " from ";
        printTopology(os, step.from);
        os << "\n";
        if (step.splitsBlocked) {
            os << "  (hysteresis context: phase-3 splits stamped "
                  "out; straddlers split via inclusion forcing)\n";
        }
        for (const OracleDecision &d : step.answers) {
            os << "  classify " << oracleQueryName(d.key) << " -> "
               << (d.desirable ? "desirable" : "undesirable")
               << "\n";
        }
        if (step.proposal.events.empty())
            os << "  (no merge/split events)\n";
        for (const ProposalEvent &ev : step.proposal.events)
            os << "  event " << proposalEventName(ev) << "\n";
        os << "  proposal l2=";
        printPartition(os, step.proposal.l2);
        os << " l3=";
        printPartition(os, step.proposal.l3);
        os << "\n";
    }
    for (const Violation &v : cex.violations) {
        os << "violation [" << invariantKindName(v.kind)
           << "]: " << v.message << "\n";
    }
}

TopologyModelChecker::TopologyModelChecker(
    const ModelCheckConfig &config)
    : config_(config),
      controller_(checkerMorphConfig(config), config.numCores),
      checker_(CheckPolicy::Log),
      // Stamp value 2 against decisionIndex 1 blocks the phase-3
      // split of every multi-slice group for any minEpochs >= 0.
      blockedStamps_(config.numCores, 2)
{
    if (config.numCores < 2 || config.numCores > 32 ||
        (config.numCores & (config.numCores - 1)) != 0) {
        throw ConfigError(
            "model checker requires a power-of-two core count "
            "between 2 and 32");
    }
}

ClassificationMode
TopologyModelChecker::resolvedMode() const
{
    if (config_.classifications != ClassificationMode::Auto)
        return config_.classifications;
    return config_.numCores <= 8 ? ClassificationMode::Full
                                 : ClassificationMode::Cluster;
}

std::uint64_t
TopologyModelChecker::encode(const Partition &l2,
                             const Partition &l3) const
{
    const auto mask = [this](const Partition &partition) {
        std::uint32_t m = 0;
        std::uint32_t covered = 0;
        for (const std::vector<SliceId> &group : partition) {
            const std::uint32_t first = group.front();
            const std::uint32_t last = group.back();
            if (last - first + 1 != group.size() ||
                first < covered) {
                panic("model checker: partition is not a canonical "
                      "contiguous range sequence");
            }
            covered = last + 1;
            m |= 1u << first;
        }
        if (covered != config_.numCores)
            panic("model checker: partition does not cover all "
                  "slices");
        return m;
    };
    return static_cast<std::uint64_t>(mask(l2)) |
           static_cast<std::uint64_t>(mask(l3)) << 32;
}

Topology
TopologyModelChecker::decode(std::uint64_t key) const
{
    const auto unpack = [this](std::uint32_t m) {
        Partition partition;
        for (std::uint32_t s = 0; s < config_.numCores; ++s) {
            if (m & (1u << s))
                partition.emplace_back();
            partition.back().push_back(static_cast<SliceId>(s));
        }
        return partition;
    };
    Topology topo;
    topo.numCores = config_.numCores;
    topo.l2 = unpack(static_cast<std::uint32_t>(key));
    topo.l3 = unpack(static_cast<std::uint32_t>(key >> 32));
    return topo;
}

TransitionProposal
TopologyModelChecker::propose(const Topology &from,
                              ClassificationOracle &oracle,
                              bool splits_blocked) const
{
    const double factor = controller_.config().splitHighFactor;
    const OracleLevelSignals l2_signals(oracle, false, config_.msat,
                                        factor);
    const OracleLevelSignals l3_signals(oracle, true, config_.msatL3,
                                        factor);
    DecisionInputs in;
    in.l2 = &l2_signals;
    in.l3 = &l3_signals;
    in.msatL2 = config_.msat;
    in.msatL3 = config_.msatL3;
    // Free context: hysteresis stamps disabled — every split the
    // engine could take at any stamp distance is evaluated, the
    // superset. Blocked context: every multi-slice L2 group is
    // inside its hysteresis window, which routes straddler splits
    // through the forced inclusion path of the L3 split phase.
    in.decisionIndex = 1;
    in.l2MergeStamps = splits_blocked ? &blockedStamps_ : nullptr;
    in.l3MergeStamps = nullptr;
    in.faults = nullptr;
    in.provenance = false;
    in.classifyOutcomes = false;
    in.ruleBug = config_.ruleBug;
    return controller_.proposeTransition(from, in);
}

std::vector<Violation>
TopologyModelChecker::verify(const TransitionProposal &p) const
{
    Topology topo;
    topo.numCores = config_.numCores;
    topo.l2 = p.l2;
    topo.l3 = p.l3;
    // The default shape mode: contiguous aligned-pow2 groups at
    // both levels plus L2-within-L3 inclusiveness and exact slice
    // coverage (PartitionValidity — the static face of line
    // conservation: a proposal that covers every slice exactly once
    // gives the reconfiguration engine no way to duplicate lines).
    return checker_.checkTopology(topo, ShapeRule::AlignedPow2);
}

std::vector<Violation>
TopologyModelChecker::lineCheck(const Topology &from,
                                const Topology &to)
{
    ++stats_.lineChecksRun;
    Hierarchy hierarchy(
        HierarchyParams::defaultParams(config_.numCores));
    hierarchy.reconfigure(from);
    // Warm every core with a deterministic footprint so slices hold
    // lines the reconfiguration must conserve.
    Cycle now = 0;
    for (std::uint32_t c = 0; c < config_.numCores; ++c) {
        for (std::uint32_t i = 0; i < 192; ++i) {
            MemAccess access;
            access.core = static_cast<CoreId>(c);
            access.addr = (static_cast<Addr>(c) << 22) +
                          static_cast<Addr>(i) * 64;
            access.type = i % 4 == 0 ? AccessType::Write
                                     : AccessType::Read;
            now += hierarchy.access(access, now).latency;
        }
    }
    const auto before = InvariantChecker::snapshot(hierarchy);
    hierarchy.reconfigure(to);
    std::vector<Violation> violations =
        checker_.checkConservation(hierarchy, before);
    const auto occupancy = checker_.checkOccupancy(hierarchy);
    violations.insert(violations.end(), occupancy.begin(),
                      occupancy.end());
    return violations;
}

void
TopologyModelChecker::buildCounterexample(
    std::uint64_t from_key, const std::vector<char> &script,
    bool splits_blocked, std::vector<Violation> violations)
{
    // Reconstruct the BFS spanning path to the failing state, then
    // replay each hop's decision script to recover its answers and
    // events.
    struct Hop
    {
        std::uint64_t key;
        std::vector<char> script;
        bool blocked;
    };
    std::vector<Hop> hops;
    hops.push_back(Hop{from_key, script, splits_blocked});
    std::uint64_t key = from_key;
    while (true) {
        const StateRec &rec = states_.at(key);
        if (rec.parent == key)
            break;
        hops.push_back(
            Hop{rec.parent, rec.script, rec.splitsBlocked});
        key = rec.parent;
    }
    std::reverse(hops.begin(), hops.end());

    Counterexample cex;
    for (const Hop &hop : hops) {
        CounterexampleStep step;
        step.from = decode(hop.key);
        step.splitsBlocked = hop.blocked;
        ClassificationOracle oracle;
        oracle.beginRun(hop.script);
        step.proposal = propose(step.from, oracle, hop.blocked);
        step.answers = oracle.trail();
        cex.steps.push_back(std::move(step));
    }
    cex.violations = std::move(violations);
    counterexample_ = std::move(cex);
}

bool
TopologyModelChecker::processRun(std::uint64_t key,
                                 std::uint64_t depth,
                                 const Topology &from,
                                 const ClassificationOracle &oracle,
                                 const TransitionProposal &proposal,
                                 bool splits_blocked)
{
    ++stats_.transitions;

    const auto full_script = [&oracle]() {
        std::vector<char> full;
        full.reserve(oracle.trail().size());
        for (const OracleDecision &d : oracle.trail())
            full.push_back(d.desirable ? 1 : 0);
        return full;
    };

    std::vector<Violation> violations = verify(proposal);
    if (!violations.empty()) {
        buildCounterexample(key, full_script(), splits_blocked,
                            std::move(violations));
        return false;
    }

    const std::uint64_t succ = encode(proposal.l2, proposal.l3);
    if (states_.find(succ) == states_.end()) {
        // New-state edges form the BFS spanning tree; they double
        // as the concrete line-conservation samples.
        if (stats_.lineChecksRun < config_.lineChecks) {
            Topology to;
            to.numCores = config_.numCores;
            to.l2 = proposal.l2;
            to.l3 = proposal.l3;
            std::vector<Violation> line_violations =
                lineCheck(from, to);
            if (!line_violations.empty()) {
                buildCounterexample(key, full_script(),
                                    splits_blocked,
                                    std::move(line_violations));
                return false;
            }
        }

        states_.emplace(succ, StateRec{key, full_script(), depth + 1,
                                       splits_blocked});
        queue_.push_back(succ);
        ++stats_.states;
        stats_.maxDepth = std::max(stats_.maxDepth, depth + 1);
        if (config_.maxStates != 0 &&
            stats_.states >= config_.maxStates) {
            stats_.truncated = true;
        }
    }
    return true;
}

bool
TopologyModelChecker::expandFull(std::uint64_t key,
                                 std::uint64_t depth,
                                 const Topology &from,
                                 bool splits_blocked)
{
    std::vector<char> script;
    ClassificationOracle oracle;
    while (true) {
        oracle.beginRun(script);
        const TransitionProposal proposal =
            propose(from, oracle, splits_blocked);
        if (!processRun(key, depth, from, oracle, proposal,
                        splits_blocked)) {
            return false;
        }
        if (stats_.truncated || !oracle.advance(script))
            return true;
    }
}

bool
TopologyModelChecker::expandCluster(std::uint64_t key,
                                    std::uint64_t depth,
                                    const Topology &from,
                                    bool splits_blocked)
{
    // One decision per primary event: answer exactly one query
    // "desirable" (plus, in the blocked context, the straddler
    // companions an L3-split primary forces). Primaries are
    // discovered from the runs themselves, to a fixpoint: the
    // identity run surfaces every query askable under all-"no"
    // answers, and each yes-run may surface follow-ups. In the
    // blocked context only L3-split primaries add coverage — merge
    // behaviour is stamp-independent and phase-3 splits are exactly
    // what the context suppresses.
    std::vector<std::uint32_t> primaries;
    const auto note = [&](const ClassificationOracle &oracle) {
        for (const OracleDecision &d : oracle.trail()) {
            if (splits_blocked &&
                !(isL3Key(d.key) && !isMergeKey(d.key))) {
                continue;
            }
            if (std::find(primaries.begin(), primaries.end(),
                          d.key) == primaries.end()) {
                primaries.push_back(d.key);
            }
        }
    };

    ClassificationOracle oracle;
    oracle.beginTargetedRun(ClassificationOracle::kNoQuery,
                            splits_blocked);
    TransitionProposal proposal = propose(from, oracle,
                                          splits_blocked);
    if (!processRun(key, depth, from, oracle, proposal,
                    splits_blocked)) {
        return false;
    }
    note(oracle);

    for (std::size_t i = 0;
         i < primaries.size() && !stats_.truncated; ++i) {
        oracle.beginTargetedRun(primaries[i], splits_blocked);
        proposal = propose(from, oracle, splits_blocked);
        if (!processRun(key, depth, from, oracle, proposal,
                        splits_blocked)) {
            return false;
        }
        note(oracle);
    }
    return true;
}

bool
TopologyModelChecker::run()
{
    const Topology start =
        Topology::allPrivateTopology(config_.numCores);
    const std::uint64_t start_key = encode(start.l2, start.l3);
    states_.emplace(start_key, StateRec{start_key, {}, 0, false});
    queue_.clear();
    queue_.push_back(start_key);
    stats_.states = 1;

    const ClassificationMode mode = resolvedMode();
    for (std::size_t head = 0; head < queue_.size(); ++head) {
        const std::uint64_t key = queue_[head];
        const std::uint64_t depth = states_.at(key).depth;
        const Topology from = decode(key);

        // Both hysteresis contexts: free first (phase-3 splits and
        // all merges), then blocked (forced straddler splits).
        for (const bool blocked : {false, true}) {
            const bool ok =
                mode == ClassificationMode::Full
                    ? expandFull(key, depth, from, blocked)
                    : expandCluster(key, depth, from, blocked);
            if (!ok)
                return false;
            if (stats_.truncated)
                break;
        }
        ++stats_.statesExpanded;
        if (stats_.truncated)
            break;
    }
    return true;
}

std::string
TopologyModelChecker::summary() const
{
    std::ostringstream os;
    os << "model check: cores=" << config_.numCores
       << " mode=" << classificationModeName(resolvedMode())
       << " states=" << stats_.states
       << " expanded=" << stats_.statesExpanded
       << " transitions=" << stats_.transitions
       << " maxDepth=" << stats_.maxDepth
       << " lineChecks=" << stats_.lineChecksRun;
    if (config_.ruleBug != RuleBug::None)
        os << " ruleBug=" << ruleBugName(config_.ruleBug);
    if (stats_.truncated)
        os << " (truncated by --max-states)";
    return os.str();
}

} // namespace morphcache

file(REMOVE_RECURSE
  "libmc_mem.a"
)

#include "acf/acfv.hh"

#include <bit>

#include "common/logging.hh"

namespace morphcache {

Acfv::Acfv(std::uint32_t num_bits, HashKind kind)
    : numBits_(num_bits), log2Bits_(0), kind_(kind),
      words_((num_bits + 63) / 64, 0)
{
    MC_ASSERT(num_bits >= 2 && isPowerOf2(num_bits));
    log2Bits_ = exactLog2(num_bits);
}

void
Acfv::resetAll()
{
    for (auto &word : words_)
        word = 0;
}

void
Acfv::flip(std::uint32_t i)
{
    MC_ASSERT(i < numBits_);
    words_[i / 64] ^= (1ULL << (i % 64));
}

std::uint32_t
Acfv::popcount() const
{
    std::uint32_t count = 0;
    for (auto word : words_)
        count += static_cast<std::uint32_t>(std::popcount(word));
    return count;
}

bool
Acfv::test(std::uint32_t i) const
{
    MC_ASSERT(i < numBits_);
    return (words_[i / 64] >> (i % 64)) & 1;
}

std::uint32_t
Acfv::commonOnes(const Acfv &a, const Acfv &b)
{
    MC_ASSERT(a.numBits_ == b.numBits_);
    std::uint32_t count = 0;
    for (std::size_t w = 0; w < a.words_.size(); ++w) {
        count += static_cast<std::uint32_t>(
            std::popcount(a.words_[w] & b.words_[w]));
    }
    return count;
}

void
OracleAcf::set(Addr line_addr)
{
    lines_.insert(line_addr);
}

void
OracleAcf::clear(Addr line_addr)
{
    lines_.erase(line_addr);
}

void
OracleAcf::resetAll()
{
    lines_.clear();
}

} // namespace morphcache

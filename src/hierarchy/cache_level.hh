/**
 * @file
 * One reconfigurable level (L2 or L3) of the MorphCache hierarchy.
 *
 * A level owns its physical slices, the sharing partition currently
 * in effect, the segmented bus connecting the slices, and the ACFV
 * bank (one vector per core per slice). All group-aware operations
 * — local-then-remote lookup with lazy invalidation of merge
 * duplicates, group-wide victim choice, group utilization and
 * overlap queries — live here.
 */

#ifndef MORPHCACHE_HIERARCHY_CACHE_LEVEL_HH
#define MORPHCACHE_HIERARCHY_CACHE_LEVEL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "acf/acfv.hh"
#include "common/types.hh"
#include "hierarchy/topology.hh"
#include "interconnect/segmented_bus.hh"
#include "mem/slice.hh"

namespace morphcache {

class StatsRegistry;

/** Configuration of one cache level. */
struct LevelParams
{
    /** Human-readable name ("L2"/"L3") for messages. */
    const char *name = "L2";
    /** Number of physical slices (== cores in this design). */
    std::uint32_t numSlices = 16;
    /** Geometry of each slice. */
    CacheGeometry sliceGeom;
    /** Intra-slice replacement policy. */
    ReplPolicy policy = ReplPolicy::LRU;
    /** Latency of a hit in the requester's own slice (CPU cycles). */
    Cycle localHitLatency = 10;
    /**
     * Charge the segmented-bus transaction (latency + segment
     * occupancy/queueing) on remote-slice traffic. True for
     * MorphCache's reconfigurable bus; the static baselines use a
     * fixed interconnect instead and charge remoteHitExtraCycles
     * without bus serialization.
     */
    bool chargeBusPenalty = true;
    /** Segmented-bus timing. */
    BusParams bus;
    /**
     * Fixed extra cycles on a remote-slice hit, independent of the
     * segmented-bus model. Used by the DSR baseline, whose snoop
     * fabric is not the MorphCache bus but whose remote hits are
     * not free either.
     */
    Cycle remoteHitExtraCycles = 0;
    /**
     * Extra CPU cycles per tile of physical span beyond the group
     * size, modelling the Section 5.5 observation that groups built
     * from distant slices pay the latency of the full physical
     * segment they ride on.
     */
    std::uint32_t spanPenaltyCyclesPerTile = 2;
    /** ACFV length in bits. */
    std::uint32_t acfvBits = 128;
    /**
     * ACFV hash family. Fibonacci (multiplicative) by default: it
     * keeps |ACFV| linear in region-structured footprints while
     * decorrelating unrelated address regions, which the sharing
     * test (common 1s) depends on. The paper's XOR and modulo
     * families are compared against it in the Figure 5 bench.
     */
    HashKind acfvHash = HashKind::Fibonacci;
    /**
     * Lines per footprint unit hashed into the ACFV. The paper
     * hashes the *tag*: all numSets consecutive lines share one
     * footprint unit, which is what keeps sequential streams (a
     * few tags resident at a time) from inflating the estimate
     * while dispersed reuse-heavy footprints set many bits. 0
     * (auto) selects exactly that: the slice's set count.
     */
    std::uint32_t acfvGranularityLines = 0;
    /** Track exact per-core-per-slice footprints (oracle ACF). */
    bool trackOracle = false;
};

/** Aggregate counters for one level. */
struct LevelStats
{
    std::uint64_t localHits = 0;
    std::uint64_t remoteHits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
    std::uint64_t lazyInvalidations = 0;
    std::uint64_t coherenceInvalidations = 0;
    std::uint64_t inclusionInvalidations = 0;
    /** Physical slice probes performed (lookups + fills). */
    std::uint64_t sliceProbes = 0;
    /** Interconnect events (remote hits + group-miss broadcasts). */
    std::uint64_t busEvents = 0;
    /** Sum of the physical segment spans those events drove. */
    std::uint64_t busSpanTiles = 0;
};

/** Outcome of a group lookup. */
struct LookupOutcome
{
    /** Whether the line was found in the requester's group. */
    bool hit = false;
    /** Slice that held it (valid when hit). */
    SliceId slice = invalidSlice;
    /** Hit was in a slice other than the requester's own. */
    bool remote = false;
    /** CPU cycles this level contributed. */
    Cycle latency = 0;
};

/** Outcome of a group insertion. */
struct InsertOutcome
{
    /** Slice the line was installed into. */
    SliceId slice = invalidSlice;
    /** What the installation displaced. */
    Eviction evicted;
    /** Slice the displaced line lived in (== slice). */
    SliceId evictedFrom = invalidSlice;
};

class CacheLevelModel;

/**
 * Replacement/insertion policy hooks.
 *
 * The default behaviour (move-to-MRU on hit, MRU insertion at a
 * group-LRU victim) matches the paper's MorphCache and static
 * configurations. The PIPP and DSR baselines of Figure 17 override
 * these callbacks and drive the level through its policy
 * primitives (insertAtStackPosition, promoteByOne,
 * insertIntoSlice).
 */
class LevelHooks
{
  public:
    virtual ~LevelHooks() = default;

    /**
     * Called on a group hit before the default promotion.
     * @return true to apply the default move-to-MRU.
     */
    virtual bool
    hit(CacheLevelModel &level, CoreId core, Addr line_addr,
        SliceId slice, std::uint64_t set, std::uint32_t way)
    {
        (void)level;
        (void)core;
        (void)line_addr;
        (void)slice;
        (void)set;
        (void)way;
        return true;
    }

    /** Called on a group miss (for monitors). */
    virtual void
    miss(CacheLevelModel &level, CoreId core, Addr line_addr)
    {
        (void)level;
        (void)core;
        (void)line_addr;
    }

    /**
     * Called instead of the default insertion when it returns true
     * (with `out` filled in).
     */
    virtual bool
    insert(CacheLevelModel &level, CoreId core, Addr line_addr,
           bool dirty, InsertOutcome &out)
    {
        (void)level;
        (void)core;
        (void)line_addr;
        (void)dirty;
        (void)out;
        return false;
    }
};

/**
 * A reconfigurable cache level.
 */
class CacheLevelModel
{
  public:
    explicit CacheLevelModel(const LevelParams &params);

    /** Level parameters. */
    const LevelParams &params() const { return params_; }

    /** Apply a new sharing partition. */
    void configure(const Partition &partition);

    /** Partition currently in effect. */
    const Partition &partition() const { return partition_; }

    /** Group index a slice currently belongs to. */
    std::uint32_t groupOf(SliceId slice) const;

    /** Slices of the group that `core` can access. */
    const std::vector<SliceId> &groupSlices(CoreId core) const;

    /**
     * Look up `line_addr` for `core`: probe the core's own slice,
     * then (over the bus) the rest of its group, performing lazy
     * invalidation if merge duplicates are found. Updates recency
     * and the requesting core's ACFV on a hit.
     *
     * @param now Current CPU cycle (for bus queueing).
     */
    LookupOutcome lookup(CoreId core, Addr line_addr, Cycle now);

    /**
     * Install `line_addr` into `core`'s group: an invalid way in
     * the core's own slice is preferred, then invalid ways in other
     * member slices, then the group-wide replacement victim.
     */
    InsertOutcome insert(CoreId core, Addr line_addr, bool dirty);

    /**
     * PIPP primitive: install at LRU-stack position `position`
     * (0 = LRU) within the group's combined ways, evicting the
     * group-LRU victim if no invalid way exists.
     */
    InsertOutcome insertAtStackPosition(CoreId core, Addr line_addr,
                                        bool dirty,
                                        std::uint32_t position);

    /**
     * PIPP primitive: promote a resident line by one LRU-stack
     * position (swap recency with its immediate upward neighbour).
     */
    void promoteByOne(SliceId slice, std::uint64_t set,
                      std::uint32_t way);

    /**
     * DSR primitive: install into one specific slice only, evicting
     * that slice's own victim.
     */
    InsertOutcome insertIntoSlice(CoreId core, SliceId target,
                                  Addr line_addr, bool dirty);

    /**
     * UCP primitive: install into an exact (slice, way), displacing
     * whatever is there. The caller owns victim selection.
     */
    InsertOutcome fillAt(CoreId core, SliceId target,
                         std::uint32_t way, Addr line_addr,
                         bool dirty);

    /** Attach policy hooks (not owned; nullptr restores default). */
    void setHooks(LevelHooks *hooks) { hooks_ = hooks; }

    /** Mark a resident line dirty (writeback from above). */
    bool markDirty(CoreId core, Addr line_addr);

    /** Is the line resident anywhere in `core`'s group? */
    bool presentInGroup(CoreId core, Addr line_addr) const;

    /** Is the line resident in any of the given slices? */
    bool presentInSlices(const std::vector<SliceId> &slices,
                         Addr line_addr) const;

    /**
     * Find the line in any group other than `core`'s (coherence
     * snoop for shared address spaces).
     */
    std::optional<SliceId> findInOtherGroups(CoreId core,
                                             Addr line_addr) const;

    /**
     * Invalidate the line from the given slices (inclusion
     * back-invalidation). @return true if a dirty copy was dropped.
     */
    bool invalidateInSlices(const std::vector<SliceId> &slices,
                            Addr line_addr);

    /**
     * Invalidate every copy of the line in the whole level
     * (coherence on a remote write). @return dirty-copy flag.
     */
    bool invalidateEverywhere(Addr line_addr);

    /**
     * Invalidate copies of the line held outside `core`'s group
     * (write-invalidate broadcast). @return dirty-copy flag.
     */
    bool invalidateOutsideGroup(CoreId core, Addr line_addr);

    /** Direct slice access (tests, reconfiguration walks). */
    CacheSlice &slice(SliceId id);
    const CacheSlice &slice(SliceId id) const;

    /** Number of slices. */
    std::uint32_t numSlices() const { return params_.numSlices; }

    /** Mutable statistics. */
    LevelStats &stats() { return stats_; }
    const LevelStats &stats() const { return stats_; }

    /**
     * Register this level's tallies onto a stats registry:
     * `<prefix>.<counter>` for the LevelStats fields,
     * `<prefix>.sliceK.{fills,validLines,acfPopcount}` per slice,
     * and `<busPrefix>.{transactions,queueCycles}` plus
     * `<busPrefix>.segK.{transactions,queueCycles}` for the
     * segmented bus. Bound by reference: the level must outlive
     * the registry's sampling.
     */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix,
                       const std::string &busPrefix) const;

    /** Bus (for contention statistics). */
    const SegmentedBus &bus() const { return bus_; }

    // --- ACFV bank ----------------------------------------------

    /** ACFV of (core, slice). */
    const Acfv &acfv(CoreId core, SliceId slice) const;

    /**
     * Invert one ACFV bit (fault injection: a soft error in the
     * footprint-vector storage of this level).
     */
    void flipAcfvBit(CoreId core, SliceId slice, std::uint32_t bit);

    /**
     * Attach a grant-fault hook to this level's segmented bus
     * (fault injection; not owned; nullptr restores a clean bus).
     */
    void setBusFaultHook(BusFaultHook *hook);

    /** Popcount of the OR of all cores' ACFVs for one slice. */
    std::uint32_t sliceAcfPopcount(SliceId slice) const;

    /**
     * Utilization of a set of slices: total set bits over total
     * bits of the juxtaposed per-slice vectors (paper Section 2.2).
     */
    double utilization(const std::vector<SliceId> &slices) const;

    /**
     * Overlap fraction between the aggregate footprints of two
     * slice sets: common 1s / min(popcounts). Approximates the
     * degree of data sharing (paper Section 2.1, property ii).
     */
    double overlap(const std::vector<SliceId> &a,
                   const std::vector<SliceId> &b) const;

    /** Exact footprint size of (core, slice); oracle mode only. */
    std::uint64_t oracleAcfSize(CoreId core, SliceId slice) const;

    /**
     * Fills into a set of slices since the last footprint reset,
     * normalized by their aggregate capacity. The QoS hardware of
     * Section 5.3 already maintains per-slice miss registers; this
     * reuses them as a churn signal: an under-utilized slice whose
     * fill pressure is high is a streaming victim cache, not spare
     * capacity.
     */
    double fillPressure(const std::vector<SliceId> &slices) const;

    /** Epoch boundary: reset all ACFVs (and oracle sets). */
    void resetFootprints();

    /** Footprint unit (lines) actually in use. */
    std::uint32_t acfvGranularity() const { return acfvGranularity_; }

    /**
     * Serialize the complete mutable level state: partition, slice
     * contents + replacement state, ACFV bank, fill counters, bus
     * occupancy, recency stamp, and statistics. loadState() first
     * replays configure() on the saved partition (rebuilding every
     * derived table: groupOf_, span penalties, bus segmentation),
     * then overwrites the state configure() resets.
     */
    void saveState(CkptWriter &w) const;
    void loadState(CkptReader &r);

  private:
    std::uint64_t nextStamp() { return ++stamp_; }

    /** Shared tail of all insertion paths. */
    InsertOutcome fillInto(CoreId core, SliceId target,
                           std::uint32_t way, Addr line_addr,
                           bool dirty, std::uint64_t stamp);

    Acfv &acfvRef(CoreId core, SliceId slice);

    /**
     * Footprint bookkeeping for an eviction: clears the granule
     * bit only when the departing line was never reused (stale or
     * streaming data, per Section 2.1's reuse-centric ACF).
     */
    void noteEviction(SliceId slice, Addr line_addr, bool reused);

    /** OR-aggregate ACFV words over a set of slices (all cores). */
    std::vector<std::uint64_t>
    aggregateWords(const std::vector<SliceId> &slices) const;

    LevelParams params_;            // ckpt: derived(CacheLevelModel)
    std::uint32_t acfvGranularity_ = 1; // ckpt: derived(CacheLevelModel)
    /**
     * exactLog2(acfvGranularity_): the granularity is asserted
     * power-of-2 at construction, so the per-reference line-to-unit
     * division is a shift.
     */
    unsigned acfvGranShift_ = 0; // ckpt: derived(CacheLevelModel)
    std::vector<CacheSlice> slices_;
    Partition partition_;
    std::vector<std::uint32_t> groupOf_; // ckpt: derived(configure)
    /** Extra remote cycles per slice from physical-span stretch. */
    // ckpt: derived(configure)
    std::vector<Cycle> spanExtraCycles_;
    /** Physical span (tiles) of each group (energy accounting). */
    // ckpt: derived(configure)
    std::vector<std::uint32_t> groupSpanTiles_;
    SegmentedBus bus_;
    std::vector<Acfv> acfvs_;
    std::vector<OracleAcf> oracles_;
    /** Per-slice fill counts since the last footprint reset. */
    std::vector<std::uint64_t> sliceFills_;
    /** Per-group round-robin rotor for PLRU victim slice choice. */
    std::vector<std::uint32_t> groupRotor_;
    std::uint64_t stamp_ = 0;
    LevelStats stats_;
    /**
     * Reusable stamp-gathering buffer for insertAtStackPosition
     * (reserved to the group-wide way count at construction so the
     * per-insert gather never allocates).
     */
    // ckpt: transient(reusable scratch; rewritten by every gather)
    std::vector<std::uint64_t> stampScratch_;
    /** Optional policy hooks (PIPP/DSR baselines); not owned. */
    LevelHooks *hooks_ = nullptr; // ckpt: transient(wiring; reattached by owner)
};

} // namespace morphcache

#endif // MORPHCACHE_HIERARCHY_CACHE_LEVEL_HH

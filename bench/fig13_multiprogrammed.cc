/**
 * @file
 * Figure 13 — throughput of MorphCache versus the five static
 * topologies on the twelve Table 5 mixes, normalized per mix to
 * the all-shared (16:1:1) baseline.
 *
 * Paper headline: MorphCache +29.9% over (16:1:1), +29.3% over
 * (1:1:16), +19.9% over (4:4:1), +18.8% over (8:2:1), +27.9% over
 * (1:16:1); mixes 1-3, 6-7 and 10 (more high-ACF members) derive
 * smaller benefits.
 */

#include "common.hh"

using namespace morphcache;
using namespace morphcache::bench;

int
main()
{
    const HierarchyParams hier = experimentHierarchy(16);
    const GeneratorParams gen = generatorFor(hier);
    const SimParams sim = defaultSim();
    const auto topologies = paperStaticTopologies();

    std::printf("Figure 13: throughput normalized to (16:1:1), per "
                "mix\n");
    printMixHeader();

    // One parallel cell per mix: the five static topologies plus
    // MorphCache, normalized to this mix's (16:1:1) baseline.
    const auto rows = forEachMix(12, [&](int m) {
        char name[16];
        std::snprintf(name, sizeof(name), "MIX %02d", m);
        const MixSpec &mix = mixByName(name);
        std::vector<double> tput;
        for (const Topology &topo : topologies) {
            tput.push_back(runStaticMix(mix, topo, hier, gen, sim,
                                        baseSeed() + m)
                               .avgThroughput);
        }
        tput.push_back(runMorphMix(mix, hier, gen, sim,
                                   baseSeed() + m, MorphConfig{})
                           .avgThroughput);
        return tput;
    });

    std::vector<std::vector<double>> static_norm(topologies.size());
    std::vector<double> morph_norm;
    for (const std::vector<double> &row : rows) {
        const double baseline = row[0];
        for (std::size_t t = 0; t < topologies.size(); ++t)
            static_norm[t].push_back(row[t] / baseline);
        morph_norm.push_back(row[topologies.size()] / baseline);
    }

    for (std::size_t t = 0; t < topologies.size(); ++t)
        printSeries(topologies[t].name().c_str(), static_norm[t]);
    printSeries("MorphCache", morph_norm);

    std::printf("\npaper averages: (16:1:1) 1.000, (1:1:16) 1.005, "
                "(4:4:1) 1.083, (8:2:1) 1.093, (1:16:1) 1.016, "
                "MorphCache 1.299\n");
    return 0;
}

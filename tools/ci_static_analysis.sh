#!/bin/sh
# Static-analysis CI leg: mc_lint (determinism/convention linter),
# clang-tidy over the compilation database, cppcheck, and a fast
# model-check of the reconfiguration engine. Fails on any finding.
#
# Run from the repo root: tools/ci_static_analysis.sh [build-dir]
#
# clang-tidy and cppcheck are skipped with a notice when the binary
# is not installed (local developer machines); CI installs both, and
# mc_lint + the model check always run, so the leg never silently
# passes with zero coverage.
set -eu

builddir="${1:-build-analysis}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

echo "== mc_analyze: AST-level semantic analyzer =="
# Whole-tree run must be clean. The parse cache lives under
# .cache/mc_analyze (content-hash keyed, safe to persist across CI
# runs); --write-coverage records which files were resolved at
# call-expression level so mc_lint can stand down its overlapping
# regexes for exactly those files.
coverage="$(mktemp)"
python3 tools/mc_analyze --write-coverage "$coverage"

echo "== mc_analyze: mutation fixtures must be caught =="
# One seeded-bug fixture per pass. A pass that goes blind makes its
# fixture exit 0 and fails this leg -- the analyzer is not allowed
# to silently pass with zero coverage.
for fix in wrap_bug ckpt_bug det_bug conc_bug; do
    if python3 tools/mc_analyze --fixture-mode --cache-dir '' \
        --allowlist /dev/null \
        "tests/analyze_fixtures/$fix.cc" >/dev/null 2>&1; then
        echo "FAIL: planted bug fixture '$fix' was not detected" >&2
        exit 1
    fi
done
for fix in wrap_clean ckpt_clean det_clean conc_clean; do
    python3 tools/mc_analyze --fixture-mode --cache-dir '' \
        --allowlist /dev/null -q \
        "tests/analyze_fixtures/$fix.cc"
done

echo "== mc_lint: determinism & convention linter =="
python3 tools/mc_lint.py --ast-coverage "$coverage"
rm -f "$coverage"

# The analyzers and the model checker consume a real build:
# clang-tidy needs compile_commands.json (exported unconditionally
# by the top-level CMakeLists), the model checker needs the
# mc_modelcheck binary, and building with MORPHCACHE_DEV_WARNINGS=ON
# makes -Wshadow/-Wconversion/-Wextra-semi (as errors) part of the
# leg. Configure before the analyzers so they see a fresh database.
echo "== build (MORPHCACHE_DEV_WARNINGS=ON) =="
cmake -B "$builddir" -S . -DMORPHCACHE_DEV_WARNINGS=ON
cmake --build "$builddir" -j

if command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy =="
    # First-party translation units only; externals (gtest,
    # benchmark) are not ours to lint.
    # tests/analyze_fixtures holds deliberately-buggy, never-compiled
    # mc_analyze inputs: no compile command, nothing to tidy.
    sources=$(git ls-files 'src/**/*.cc' 'tools/*.cc' \
                           'tests/*.cc' 'bench/*.cc' \
                           'examples/*.cc' \
                           ':!tests/analyze_fixtures/**')
    if command -v run-clang-tidy >/dev/null 2>&1; then
        # shellcheck disable=SC2086  # word-splitting intended
        run-clang-tidy -quiet -p "$builddir" -j "$(nproc)" $sources
    else
        # shellcheck disable=SC2086
        clang-tidy -quiet -p "$builddir" $sources
    fi
else
    echo "NOTICE: clang-tidy not installed; skipping (CI runs it)"
fi

if command -v cppcheck >/dev/null 2>&1; then
    echo "== cppcheck =="
    # warning+portability on the same database; the style/perf axes
    # belong to clang-tidy. Suppressions: system headers are not
    # ours, and missing-include noise is covered by the real build.
    cppcheck --project="$builddir/compile_commands.json" \
        --enable=warning,portability \
        --inline-suppr \
        --suppress=missingIncludeSystem \
        --suppress='*:*/_deps/*' \
        --inconclusive --error-exitcode=2 --quiet \
        -j "$(nproc)"
else
    echo "NOTICE: cppcheck not installed; skipping (CI runs it)"
fi

echo "== model check: reconfiguration engine (N=8, full) =="
"$builddir"/tools/mc_modelcheck --cores 8

echo "== model check: mutation legs must produce counterexamples =="
for bug in skip-forced-l3-merge ignore-alignment \
           skip-forced-l2-split; do
    if "$builddir"/tools/mc_modelcheck --cores 8 \
        --inject-rule-bug "$bug" >/dev/null 2>&1; then
        echo "FAIL: planted bug '$bug' was not detected" >&2
        exit 1
    fi
done
echo "static analysis: all checks passed"

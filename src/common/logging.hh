/**
 * @file
 * Status/error reporting in the gem5 tradition.
 *
 * panic()   - an internal invariant of the simulator was violated;
 *             aborts so the failure can be debugged.
 * fatal()   - the *user* supplied an impossible configuration; exits
 *             with an error code.
 * warn()    - something questionable happened but simulation can
 *             continue.
 * inform()  - plain status output.
 * verbose() - chatty progress detail, shown only at -v.
 *
 * Output is filtered by a process-wide log level (Quiet drops
 * warn/inform, Verbose adds verbose(); panic/fatal always print),
 * initialized from the MC_LOG_LEVEL environment variable
 * (quiet|normal|verbose or 0|1|2) and overridable by the CLI's
 * -q/-v flags via setLogLevel(). Messages that pass the filter are
 * routed through a pluggable LogSink so a tracer can capture them
 * as structured events; the default sink writes stderr.
 */

#ifndef MORPHCACHE_COMMON_LOGGING_HH
#define MORPHCACHE_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace morphcache {

/** Output verbosity. Panic/fatal are never filtered. */
enum class LogLevel : int {
    /** Errors only: warn/inform/verbose suppressed. */
    Quiet = 0,
    /** Default: warn + inform. */
    Normal = 1,
    /** Everything, including verbose(). */
    Verbose = 2,
};

/** Log level in effect (first call reads MC_LOG_LEVEL). */
LogLevel logLevel();

/** Override the log level (CLI -q/-v). */
void setLogLevel(LogLevel level);

/**
 * Receives every message that passed the level filter.
 * `kind` is one of "panic", "fatal", "warn", "info", "verbose".
 */
class LogSink
{
  public:
    virtual ~LogSink() = default;

    virtual void message(const char *kind, const char *text) = 0;
};

/**
 * Install a sink (not owned; nullptr restores the stderr default).
 * Custom sinks that still want terminal output should call
 * logToStderr() themselves.
 */
void setLogSink(LogSink *sink);

/** The default behaviour: "kind: text" on stderr. */
void logToStderr(const char *kind, const char *text);

/** Print "panic: <msg>" and abort(). Never filtered. */
[[noreturn]] void panic(const char *fmt, ...);

/** Print "fatal: <msg>" and exit(1). Never filtered. */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print "warn: <msg>" (suppressed at Quiet). */
void warn(const char *fmt, ...);

/** Print an informational message (suppressed at Quiet). */
void inform(const char *fmt, ...);

/** Print chatty detail (shown only at Verbose). */
void verbose(const char *fmt, ...);

/**
 * Assert a simulator invariant.
 *
 * Unlike the C assert macro this stays active in release builds; the
 * simulator is cheap enough that correctness checks are always worth
 * their cost.
 */
#define MC_ASSERT(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::morphcache::panic("assertion '%s' failed at %s:%d",       \
                                #cond, __FILE__, __LINE__);             \
        }                                                               \
    } while (0)

} // namespace morphcache

#endif // MORPHCACHE_COMMON_LOGGING_HH

file(REMOVE_RECURSE
  "CMakeFiles/mc_acf.dir/acfv.cc.o"
  "CMakeFiles/mc_acf.dir/acfv.cc.o.d"
  "libmc_acf.a"
  "libmc_acf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_acf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "sim/memory_system.hh"

#include "stats/registry.hh"
#include "stats/tracing.hh"

namespace morphcache {

namespace {

HierarchyParams
withBusPenalty(HierarchyParams params, bool charge)
{
    params.l2.chargeBusPenalty = charge;
    params.l3.chargeBusPenalty = charge;
    return params;
}

HierarchyParams
staticLatencyModel(HierarchyParams params, bool charge_remote)
{
    // A static shared topology is served by a fixed interconnect
    // (crossbar / NUCA fabric): remote slices cost the same extra
    // wire latency a merged MorphCache slice does, but there is no
    // segmented-bus serialization to pay.
    params.l2.chargeBusPenalty = false;
    params.l3.chargeBusPenalty = false;
    params.l2.remoteHitExtraCycles = charge_remote ? 15 : 0;
    params.l3.remoteHitExtraCycles = charge_remote ? 15 : 0;
    return params;
}

} // namespace

StaticTopologySystem::StaticTopologySystem(HierarchyParams params,
                                           const Topology &topology,
                                           bool charge_bus)
    : hierarchy_(staticLatencyModel(std::move(params), charge_bus))
{
    hierarchy_.reconfigure(topology);
}

AccessResult
StaticTopologySystem::access(const MemAccess &access, Cycle now)
{
    return hierarchy_.access(access, now);
}

const CoreStats &
StaticTopologySystem::coreStats(CoreId core) const
{
    return hierarchy_.coreStats(core);
}

std::uint32_t
StaticTopologySystem::numCores() const
{
    return hierarchy_.numCores();
}

std::string
StaticTopologySystem::name() const
{
    return hierarchy_.topology().name();
}

void
StaticTopologySystem::registerStats(StatsRegistry &registry)
{
    hierarchy_.registerStats(registry);
}

MorphCacheSystem::MorphCacheSystem(HierarchyParams params,
                                   const MorphConfig &config)
    : hierarchy_(withBusPenalty(std::move(params), true)),
      controller_(config, hierarchy_.numCores())
{
    // MorphCache starts from the per-core private design point
    // (Section 2), which is the hierarchy's default topology.
    if (FaultInjector *faults = controller_.faultInjector()) {
        hierarchy_.l2().setBusFaultHook(faults);
        hierarchy_.l3().setBusFaultHook(faults);
    }
}

AccessResult
MorphCacheSystem::access(const MemAccess &access, Cycle now)
{
    return hierarchy_.access(access, now);
}

void
MorphCacheSystem::epochBoundary()
{
    traceBusSamples();
    controller_.epochBoundary(hierarchy_);
}

void
MorphCacheSystem::registerStats(StatsRegistry &registry)
{
    hierarchy_.registerStats(registry);
    controller_.registerStats(registry);
}

void
MorphCacheSystem::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    controller_.setTracer(tracer);
    // A tracer attached mid-run must see deltas from this point on,
    // not the full cumulative bus counters as its first busSample.
    const SegmentedBus &l2_bus = hierarchy_.l2().bus();
    const SegmentedBus &l3_bus = hierarchy_.l3().bus();
    lastL2QueueCycles_ = l2_bus.queueingCycles();
    lastL2Txns_ = l2_bus.numTransactions();
    lastL3QueueCycles_ = l3_bus.queueingCycles();
    lastL3Txns_ = l3_bus.numTransactions();
}

void
MorphCacheSystem::traceBusSamples()
{
    if (!tracer_ || !tracer_->enabled())
        return;
    const SegmentedBus &l2_bus = hierarchy_.l2().bus();
    const SegmentedBus &l3_bus = hierarchy_.l3().bus();
    const std::uint64_t l2q = l2_bus.queueingCycles();
    const std::uint64_t l2t = l2_bus.numTransactions();
    const std::uint64_t l3q = l3_bus.queueingCycles();
    const std::uint64_t l3t = l3_bus.numTransactions();
    TraceEvent ev("busSample");
    ev.u64("l2QueueCycles", l2q - lastL2QueueCycles_)
        .u64("l2Transactions", l2t - lastL2Txns_)
        .u64("l3QueueCycles", l3q - lastL3QueueCycles_)
        .u64("l3Transactions", l3t - lastL3Txns_);
    tracer_->emit(ev);
    lastL2QueueCycles_ = l2q;
    lastL2Txns_ = l2t;
    lastL3QueueCycles_ = l3q;
    lastL3Txns_ = l3t;
}

const CoreStats &
MorphCacheSystem::coreStats(CoreId core) const
{
    return hierarchy_.coreStats(core);
}

std::uint32_t
MorphCacheSystem::numCores() const
{
    return hierarchy_.numCores();
}

void
MorphCacheSystem::saveState(CkptWriter &w) const
{
    hierarchy_.saveState(w);
    controller_.saveState(w);
    w.u64(lastL2QueueCycles_);
    w.u64(lastL2Txns_);
    w.u64(lastL3QueueCycles_);
    w.u64(lastL3Txns_);
}

void
MorphCacheSystem::loadState(CkptReader &r)
{
    hierarchy_.loadState(r);
    controller_.loadState(r);
    lastL2QueueCycles_ = r.u64();
    lastL2Txns_ = r.u64();
    lastL3QueueCycles_ = r.u64();
    lastL3Txns_ = r.u64();
}

} // namespace morphcache

/**
 * @file
 * Cache topology descriptors.
 *
 * A topology assigns every L2 and L3 slice to a sharing group. The
 * paper's (x:y:z) notation describes the *symmetric* topologies:
 * each L2 group spans x slices (x cores share it), each L3 logical
 * slice is shared by y L2 groups, and there are z L3 groups, with
 * x*y*z equal to the core count. MorphCache itself routinely leaves
 * the symmetric space (Section 2.4 reports 39-54% of its
 * reconfigurations producing asymmetric shapes), so the general
 * representation here is an arbitrary partition per level.
 */

#ifndef MORPHCACHE_HIERARCHY_TOPOLOGY_HH
#define MORPHCACHE_HIERARCHY_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace morphcache {

/**
 * A partition of the slices of one cache level into sharing groups.
 * Groups are listed in ascending order of their first slice; within
 * a group, slices are in ascending order.
 */
using Partition = std::vector<std::vector<SliceId>>;

/** Partition with every slice in its own group. */
Partition allPrivate(std::uint32_t num_slices);

/** Partition with all slices in one group. */
Partition allShared(std::uint32_t num_slices);

/**
 * Partition into contiguous groups of uniform size `group_size`
 * (must divide num_slices).
 */
Partition uniformGroups(std::uint32_t num_slices,
                        std::uint32_t group_size);

/** True when every group is a contiguous slice range. */
bool isContiguous(const Partition &partition);

/** True when every group is an aligned power-of-two range. */
bool isAlignedPow2(const Partition &partition);

/**
 * Validate that `partition` covers slices [0, num_slices) exactly
 * once; fatal() otherwise.
 */
void validatePartition(const Partition &partition,
                       std::uint32_t num_slices);

/** group_of[slice] lookup table for a partition. */
std::vector<std::uint32_t> groupOfSlice(const Partition &partition,
                                        std::uint32_t num_slices);

/**
 * Two-level cache topology over `numCores` cores with one L2 and
 * one L3 slice per core.
 */
struct Topology
{
    /** Number of cores (= slices per level). */
    std::uint32_t numCores = 16;
    /** L2 sharing groups. */
    Partition l2;
    /** L3 sharing groups. */
    Partition l3;

    /** Per-core private L2 and L3: the MorphCache starting point. */
    static Topology allPrivateTopology(std::uint32_t num_cores);

    /**
     * The paper's (x:y:z) notation: x cores per L2 group, y L2
     * groups per L3 group, z L3 groups; requires x*y*z == cores.
     */
    static Topology symmetric(std::uint32_t num_cores, std::uint32_t x,
                              std::uint32_t y, std::uint32_t z);

    /**
     * Inclusion feasibility (paper Sections 2.2/2.3): every L2
     * group must be contained in a single L3 group, otherwise a
     * merged L2 could outsize its backing L3 and inclusion breaks.
     */
    bool respectsInclusion() const;

    /** True when both levels only use aligned power-of-two groups. */
    bool isPow2Aligned() const;

    /** "(x:y:z)" for symmetric shapes, else "asym[l2|l3]" detail. */
    std::string name() const;

    /**
     * True when the topology is expressible in (x:y:z) form:
     * uniform contiguous L2 groups of size x and L3 groups of size
     * x*y. MorphCache outcomes that fail this test are the
     * "asymmetric configurations" of Section 2.4.
     */
    bool isSymmetric() const;

    /** Structural equality. */
    bool operator==(const Topology &other) const = default;
};

} // namespace morphcache

#endif // MORPHCACHE_HIERARCHY_TOPOLOGY_HH

#include "interconnect/arbiter.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace morphcache {

RoundRobinArbiter2::Grants
RoundRobinArbiter2::arbitrate(bool req0, bool req1, bool granted,
                              bool fwdreq)
{
    Grants out;
    out.reqOut = fwdreq && (req0 || req1);
    if (!granted || (!req0 && !req1))
        return out;

    if (req0 && req1) {
        // Round-robin: grant the input that did not win last time.
        if (lastGnt_) {
            out.gnt0 = true;
            lastGnt_ = false;
        } else {
            out.gnt1 = true;
            lastGnt_ = true;
        }
    } else if (req0) {
        out.gnt0 = true;
        lastGnt_ = false;
    } else {
        out.gnt1 = true;
        lastGnt_ = true;
    }
    return out;
}

ArbiterTree::ArbiterTree(std::uint32_t num_leaves)
    : numLeaves_(num_leaves),
      levels_(exactLog2(num_leaves)),
      nodes_(num_leaves),     // index 1..num_leaves-1 used
      enabled_(num_leaves, true)
{
    MC_ASSERT(num_leaves >= 2 && isPowerOf2(num_leaves));
}

void
ArbiterTree::configure(const std::vector<std::uint32_t> &group_of)
{
    MC_ASSERT(group_of.size() == numLeaves_);

    // Validate: each group is a contiguous, aligned, power-of-two
    // range of leaves.
    std::uint32_t i = 0;
    while (i < numLeaves_) {
        std::uint32_t j = i;
        while (j < numLeaves_ && group_of[j] == group_of[i])
            ++j;
        const std::uint32_t len = j - i;
        if (!isPowerOf2(len) || (i % len) != 0) {
            fatal("arbiter group of leaves [%u,%u) is not an aligned "
                  "power-of-two range", i, j);
        }
        // Group ids must not recur later (contiguity).
        for (std::uint32_t k = j; k < numLeaves_; ++k) {
            if (group_of[k] == group_of[i])
                fatal("arbiter group id %u is not contiguous",
                      group_of[i]);
        }
        i = j;
    }

    // A node is enabled when all leaves below it share a group.
    for (std::uint32_t node = 1; node < numLeaves_; ++node) {
        const std::uint32_t node_level = floorLog2(node);
        const std::uint32_t span = numLeaves_ >> node_level;
        const std::uint32_t first =
            (node - (1u << node_level)) * span;
        bool uniform = true;
        for (std::uint32_t leaf = first; leaf < first + span; ++leaf) {
            if (group_of[leaf] != group_of[first]) {
                uniform = false;
                break;
            }
        }
        enabled_[node] = uniform;
    }
}

bool
ArbiterTree::nodeEnabled(std::uint32_t node) const
{
    MC_ASSERT(node >= 1 && node < numLeaves_);
    return enabled_[node];
}

void
ArbiterTree::reset()
{
    for (auto &node : nodes_)
        node.reset();
}

std::vector<bool>
ArbiterTree::arbitrate(const std::vector<bool> &requests)
{
    MC_ASSERT(requests.size() == numLeaves_);

    // Bottom-up request propagation. req[] is heap-indexed with the
    // leaves occupying [numLeaves_, 2*numLeaves_).
    std::vector<bool> req(2 * numLeaves_, false);
    for (std::uint32_t leaf = 0; leaf < numLeaves_; ++leaf)
        req[numLeaves_ + leaf] = requests[leaf];
    for (std::uint32_t node = numLeaves_ - 1; node >= 1; --node) {
        if (enabled_[node])
            req[node] = req[2 * node] || req[2 * node + 1];
    }

    // Top-down grant propagation. A node is a segment root when it
    // is enabled but its parent is not (or it is the tree root).
    std::vector<bool> granted(2 * numLeaves_, false);
    for (std::uint32_t node = 1; node < numLeaves_; ++node) {
        if (!enabled_[node]) {
            // Disabled switch: both subtrees are independent; each
            // enabled child (or leaf) becomes its own segment root.
            granted[2 * node] = true;
            granted[2 * node + 1] = true;
            continue;
        }
        const bool is_root = (node == 1) || !enabled_[node / 2];
        const bool self_granted = is_root ? true : granted[node];
        const auto grants = nodes_[node].arbitrate(
            req[2 * node], req[2 * node + 1], self_granted,
            /* fwdreq */ !is_root);
        granted[2 * node] = grants.gnt0;
        granted[2 * node + 1] = grants.gnt1;
    }

    std::vector<bool> result(numLeaves_, false);
    for (std::uint32_t leaf = 0; leaf < numLeaves_; ++leaf) {
        const std::uint32_t heap = numLeaves_ + leaf;
        // A single-leaf segment (parent disabled) self-grants; the
        // granted[] flag from a disabled parent only marks segment
        // rootness, so it must be combined with the leaf's request.
        result[leaf] = requests[leaf] && granted[heap];
    }
    return result;
}

} // namespace morphcache

"""mc_analyze -- AST-level semantic analyzer for MorphCache.

Four whole-repo passes over a per-file semantic model extracted from
C++ sources (DESIGN.md section 14):

``wrap-safety``
    Unsigned subtraction / ``-=`` / decrement on cycle/byte/count
    typed expressions must route through the saturating helpers in
    ``src/common/bitops.hh`` (``satSub``/``satDec``) or carry an
    audited allowlist entry.

``serialization``
    Every class defining both ``saveState`` and ``loadState`` must
    reference every non-static data member in both (transitively
    through same-class helpers), or annotate the member
    ``// ckpt: derived(<site>)`` / ``// ckpt: transient(<reason>)``.

``determinism``
    No iteration over ``unordered_map``/``unordered_set`` in
    simulation code (ordered sinks -- stats dumps, trace emits,
    manifest appends -- must never observe hash order), and the
    entropy/wall-clock/stdout bans resolved at call-expression
    level instead of by regex.

``concurrency``
    Mutable state shared with thread entry points in ``src/runner``
    must be ``std::atomic``, written under a visible lock guard, or
    confined to the pre-fan-out phase (allowlisted as such).

The model comes from one of two frontends: ``clang`` (driven by
``compile_commands.json`` and ``clang -Xclang -ast-dump=json``) when
a clang driver is installed, else the built-in ``uparse`` frontend
(a stdlib-only C++ tokenizer + declaration/expression extractor).
Both produce the same model schema, so pass logic is frontend
agnostic. Models are cached keyed on file-content hash.

Stdlib only; no third-party dependencies.
"""

# Bumping this invalidates every cached model.
MODEL_VERSION = 1

/**
 * @file
 * A small statistics package: scalar counters, running moments,
 * histograms, and Pearson correlation.
 *
 * The paper's evaluation is built from a handful of aggregate
 * statistics (throughput, weighted/fair speedup, correlation
 * coefficients against an oracle, temporal/spatial standard
 * deviations of footprints); everything needed to compute those
 * lives here.
 */

#ifndef MORPHCACHE_STATS_STATS_HH
#define MORPHCACHE_STATS_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.hh"

namespace morphcache {

/**
 * Running mean / variance accumulator (Welford's algorithm).
 *
 * Numerically stable for long runs; used for the temporal and
 * spatial standard deviations reported in Table 4.
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
    }

    /** Number of samples folded in so far. */
    std::uint64_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return mean_; }

    /** Population variance (0 with fewer than 2 samples). */
    double
    variance() const
    {
        return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
    }

    /** Population standard deviation. */
    double stddev() const;

    /** Reset to the empty state. */
    void
    reset()
    {
        n_ = 0;
        mean_ = 0.0;
        m2_ = 0.0;
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Pearson correlation coefficient between two equal-length sample
 * vectors. Returns 0 when either vector has zero variance or fewer
 * than two samples (matching the "no information" interpretation
 * used for Figure 5).
 */
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

/** Arithmetic mean of a sample vector (0 when empty). */
double mean(const std::vector<double> &xs);

/** Population standard deviation of a sample vector. */
double stddev(const std::vector<double> &xs);

/** Harmonic mean of a sample vector; 0 if any element is <= 0. */
double harmonicMean(const std::vector<double> &xs);

/** Geometric mean of a sample vector; 0 if any element is <= 0. */
double geometricMean(const std::vector<double> &xs);

/**
 * Fixed-width histogram over [lo, hi) with out-of-range samples
 * clamped into the edge buckets.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bucket.
     * @param hi Upper edge of the last bucket (must exceed lo).
     * @param buckets Number of buckets (must be nonzero).
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Record one sample. */
    void add(double x);

    /** Count in bucket i. */
    std::uint64_t bucketCount(std::size_t i) const;

    /** Number of buckets. */
    std::size_t numBuckets() const { return counts_.size(); }

    /** Total samples recorded. */
    std::uint64_t totalCount() const { return total_; }

    /** Lower edge of bucket i. */
    double bucketLo(std::size_t i) const;

    /** Serialize/restore bucket counts (shape must match). */
    void
    saveState(CkptWriter &w) const
    {
        w.u64Vec(counts_);
        w.u64(total_);
    }

    void
    loadState(CkptReader &r)
    {
        std::vector<std::uint64_t> counts = r.u64Vec();
        if (counts.size() != counts_.size())
            r.fail("histogram bucket count mismatch");
        counts_ = std::move(counts);
        total_ = r.u64();
    }

  private:
    double lo_; // ckpt: derived(Histogram)
    double hi_; // ckpt: derived(Histogram)
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace morphcache

#endif // MORPHCACHE_STATS_STATS_HH

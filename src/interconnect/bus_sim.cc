#include "interconnect/bus_sim.hh"

#include "common/logging.hh"

namespace morphcache {

SegmentedBusSim::SegmentedBusSim(std::uint32_t num_slices,
                                 const BusParams &params)
    : params_(params), numSlices_(num_slices), tree_(num_slices),
      groupOf_(num_slices), pending_(num_slices),
      segmentBusy_(num_slices, 0), inFlight_(num_slices),
      perSlice_(num_slices, 0)
{
    for (std::uint32_t i = 0; i < num_slices; ++i)
        groupOf_[i] = i;
    tree_.configure(groupOf_);
}

void
SegmentedBusSim::configure(const std::vector<std::uint32_t> &group_of)
{
    MC_ASSERT(group_of.size() == numSlices_);
    groupOf_ = group_of;
    tree_.configure(group_of);
    // Drain segmentation state; in-flight transactions complete on
    // the old shape conceptually, but reconfiguration in MorphCache
    // happens at epoch boundaries with the bus idle.
    for (auto &busy : segmentBusy_)
        busy = 0;
    for (auto &txn : inFlight_)
        txn.active = false;
}

void
SegmentedBusSim::request(SliceId slice, Cycle cpu_now)
{
    MC_ASSERT(slice < numSlices_);
    pending_[slice].push_back(cpu_now);
}

void
SegmentedBusSim::busCycle(Cycle cpu_now,
                          std::vector<BusCompletion> &out)
{
    // Retire segments whose transaction finishes this bus cycle.
    for (std::uint32_t s = 0; s < numSlices_; ++s) {
        if (segmentBusy_[s] == 0)
            continue;
        if (--segmentBusy_[s] == 0 && inFlight_[s].active) {
            BusCompletion done;
            done.slice = inFlight_[s].slice;
            done.requestedAt = inFlight_[s].requestedAt;
            done.completedAt = cpu_now;
            out.push_back(done);
            ++completed_;
            ++perSlice_[done.slice];
            totalLatency_ += done.latency();
            inFlight_[s].active = false;
        }
    }

    // Latch requests that have arrived and whose segment is free.
    std::vector<bool> requests(numSlices_, false);
    for (std::uint32_t s = 0; s < numSlices_; ++s) {
        if (pending_[s].empty() || pending_[s].front() > cpu_now)
            continue;
        if (segmentBusy_[groupOf_[s]] > 0)
            continue;
        requests[s] = true;
    }

    // One grant per segment via the arbiter tree.
    const auto grants = tree_.arbitrate(requests);
    for (std::uint32_t s = 0; s < numSlices_; ++s) {
        if (!grants[s])
            continue;
        const std::uint32_t seg = groupOf_[s];
        MC_ASSERT(segmentBusy_[seg] == 0);
        MC_ASSERT(!inFlight_[seg].active);
        segmentBusy_[seg] = params_.busCyclesPerTxn;
        inFlight_[seg].active = true;
        inFlight_[seg].slice = static_cast<SliceId>(s);
        inFlight_[seg].requestedAt = pending_[s].front();
        pending_[s].pop_front();
    }
}

std::vector<BusCompletion>
SegmentedBusSim::advanceTo(Cycle cpu_cycle)
{
    std::vector<BusCompletion> out;
    while (nextBusEdge_ <= cpu_cycle) {
        busCycle(nextBusEdge_, out);
        nextBusEdge_ += params_.cpuCyclesPerBusCycle;
    }
    return out;
}

} // namespace morphcache

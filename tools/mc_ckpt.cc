/**
 * @file
 * mc_ckpt — checkpoint inspector.
 *
 * Dumps the header, section inventory, and embedded run spec of a
 * MorphCache checkpoint file without restoring anything:
 *
 *   mc_ckpt run.ckpt
 *
 * With --verify, additionally rebuilds the run from the embedded
 * spec, restores the full state from the checkpoint, and replays
 * the structural invariant checks (partition validity, group
 * shapes, L2-within-L3 inclusion, slice occupancy) against the
 * restored hierarchy — a corrupt-but-checksum-valid checkpoint
 * cannot slip structurally impossible state past it:
 *
 *   mc_ckpt --verify run.ckpt
 *
 * Exit codes: 0 inspect/verify OK, 1 checkpoint invalid or
 * verification failed, 2 usage.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/invariant.hh"
#include "ckpt/ckpt.hh"
#include "common/error.hh"
#include "runner/run_factory.hh"
#include "sim/memory_system.hh"
#include "sim/simulation.hh"
#include "stats/registry.hh"

using namespace morphcache;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr, "usage: %s [--verify] <checkpoint>\n",
                 argv0);
    std::exit(2);
}

void
printInfo(const std::string &path, const CkptInfo &info)
{
    std::printf("checkpoint : %s\n", path.c_str());
    std::printf("size       : %llu bytes\n",
                static_cast<unsigned long long>(info.fileSize));
    std::printf("version    : %u\n", info.version);
    std::printf("config hash: %016llx\n",
                static_cast<unsigned long long>(info.specHash));
    std::printf("seed       : %llu\n",
                static_cast<unsigned long long>(info.seed));
    std::printf("epochs done: %llu\n",
                static_cast<unsigned long long>(
                    info.epochsCompleted));
    std::printf("checksum   : %s\n",
                info.checksumOk ? "ok" : "BAD");
    std::printf("spec       : %s\n", describe(info.spec).c_str());
    for (const auto &[tag, bytes] : info.sections) {
        std::printf("section %s: %llu bytes\n", tag.c_str(),
                    static_cast<unsigned long long>(bytes));
    }
}

/**
 * Restore the checkpoint into a freshly built run and replay the
 * invariant checks against the restored hierarchy. Returns the
 * number of violations (schemes without a reconfigurable hierarchy
 * verify restore success only).
 */
std::size_t
verifyRestoredState(const std::string &path, const CkptInfo &info)
{
    BuiltRun built = buildRun(info.spec);
    Simulation simulation(*built.system, *built.workload, built.sim);

    // No registry bound: the REGY layout depends on which stats the
    // producing context registered (CLI runs add profiler counters,
    // campaign cells do not), so verification restores everything
    // except the snapshot history, which is skipped.
    CkptRunState state;
    state.simulation = &simulation;
    state.system = built.system.get();
    state.workload = built.workload.get();
    Tracer tracer;
    state.tracer = &tracer;

    const RestoreOutcome outcome =
        readCheckpoint(path, info.spec, state);
    std::printf("restore    : ok (%llu recorded epochs)\n",
                static_cast<unsigned long long>(
                    outcome.epochsCompleted));

    const Hierarchy *hier = nullptr;
    bool check_shapes = false;
    if (const auto *morph = dynamic_cast<const MorphCacheSystem *>(
            built.system.get())) {
        hier = &morph->hierarchy();
        check_shapes = true;
    } else if (const auto *stat =
                   dynamic_cast<const StaticTopologySystem *>(
                       built.system.get())) {
        hier = &stat->hierarchy();
    }
    if (!hier) {
        std::printf("invariants : n/a (scheme '%s' has no "
                    "reconfigurable hierarchy)\n",
                    info.spec.scheme.c_str());
        return 0;
    }

    const InvariantChecker checker(CheckPolicy::Log);
    const Topology &topo = hier->topology();
    std::vector<Violation> violations;
    if (check_shapes) {
        // Default-mode shape rule; the Section 5.5 extension modes
        // are not reachable from a RunSpec.
        violations =
            checker.checkTopology(topo, ShapeRule::AlignedPow2);
    } else {
        // Static shapes need not be pow2-aligned (e.g. 3:2:1-ish
        // splits via asym factories); check structure only.
        checker.checkPartition("l2", topo.l2, topo.numCores,
                               violations);
        checker.checkPartition("l3", topo.l3, topo.numCores,
                               violations);
    }
    const std::vector<Violation> occupancy =
        checker.checkOccupancy(*hier);
    violations.insert(violations.end(), occupancy.begin(),
                      occupancy.end());

    if (violations.empty()) {
        std::printf("invariants : ok\n");
    } else {
        for (const Violation &v : violations) {
            std::printf("invariants : VIOLATION [%s] %s\n",
                        invariantKindName(v.kind),
                        v.message.c_str());
        }
    }
    return violations.size();
}

} // namespace

int
main(int argc, char **argv)
{
    bool verify = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--verify") == 0)
            verify = true;
        else if (path.empty())
            path = argv[i];
        else
            usage(argv[0]);
    }
    if (path.empty())
        usage(argv[0]);

    try {
        const CkptInfo info = inspectCheckpoint(path);
        printInfo(path, info);
        if (verify && verifyRestoredState(path, info) > 0)
            return 1;
        return 0;
    } catch (const SimError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}

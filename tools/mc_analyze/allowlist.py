"""Per-site allowlist for analyzer findings.

Format (``tools/mc_analyze_allow.txt``), one entry per line:

    <check>:<path>:<site> -- <justification>

``<site>`` is the stable content-based site key each pass embeds in
its findings (e.g. ``profDelta:d[phase].allocBytes-=...`` for
wrap-safety) — line numbers are deliberately NOT part of the key so
unrelated edits don't churn the allowlist. The justification is
mandatory: an entry without ``--`` text is itself a finding, and so
is a *stale* entry that no current finding consumes (dead
allowlist lines hide regressions).
"""

from __future__ import annotations

import re

from model import Finding


class Allowlist:
    def __init__(self, path: str | None):
        self.path = path
        self.entries: dict[str, str] = {}  # key -> justification
        self.bad_lines: list[tuple[int, str]] = []
        self.used: set[str] = set()
        if path:
            self._load(path)

    def _load(self, path: str) -> None:
        with open(path, encoding="utf-8") as f:
            for lineno, raw in enumerate(f, 1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                m = re.match(r"(.+?)\s+--\s+(.+)$", line)
                if not m or m.group(1).count(":") < 2:
                    self.bad_lines.append((lineno, line))
                    continue
                self.entries[m.group(1).strip()] = m.group(2).strip()

    def permits(self, finding: Finding) -> bool:
        key = finding.key()
        if key in self.entries:
            self.used.add(key)
            return True
        return False

    def residual_findings(self) -> list[Finding]:
        """Malformed and stale entries, as findings against the
        allowlist file itself."""
        out = []
        for lineno, line in self.bad_lines:
            out.append(Finding(
                self.path or "", lineno, "allowlist",
                f"malformed entry '{line}': expected "
                "<check>:<path>:<site> -- <justification>",
                f"malformed:{lineno}"))
        for key in sorted(set(self.entries) - self.used):
            out.append(Finding(
                self.path or "", 0, "allowlist",
                f"stale entry '{key}': no current finding matches; "
                "delete it (dead entries mask regressions)",
                f"stale:{key}"))
        return out

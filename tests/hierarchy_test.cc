/**
 * @file
 * Integration tests for the full three-level hierarchy: latencies,
 * inclusion, back-invalidation, writebacks, coherence, and
 * reconfiguration.
 */

#include <gtest/gtest.h>

#include "hierarchy/hierarchy.hh"

namespace morphcache {
namespace {

/** Small hierarchy: fast to fill in tests. */
HierarchyParams
smallParams(std::uint32_t cores = 4, bool coherence = false)
{
    HierarchyParams params = HierarchyParams::defaultParams(cores);
    params.l1Geom = CacheGeometry{1024, 2, 64};        // 16 lines
    params.l2.sliceGeom = CacheGeometry{4096, 4, 64};  // 64 lines
    params.l3.sliceGeom = CacheGeometry{16384, 8, 64}; // 256 lines
    params.coherence = coherence;
    return params;
}

MemAccess
read(CoreId core, Addr line)
{
    return MemAccess{core, line << 6, AccessType::Read};
}

MemAccess
write(CoreId core, Addr line)
{
    return MemAccess{core, line << 6, AccessType::Write};
}

TEST(Hierarchy, ColdMissLatency)
{
    Hierarchy h(smallParams());
    const auto result = h.access(read(0, 0x1000), 0);
    EXPECT_EQ(result.servedBy, ServedBy::Memory);
    // 3 (L1) + 10 (L2) + 30 (L3) + 300 (memory).
    EXPECT_EQ(result.latency, 343u);
    EXPECT_EQ(h.coreStats(0).memAccesses, 1u);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    Hierarchy h(smallParams());
    h.access(read(0, 0x1000), 0);
    const auto result = h.access(read(0, 0x1000), 400);
    EXPECT_EQ(result.servedBy, ServedBy::L1);
    EXPECT_EQ(result.latency, 3u);
    EXPECT_EQ(h.coreStats(0).l1Hits, 1u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    const HierarchyParams params = smallParams();
    Hierarchy h(params);
    h.access(read(0, 0x1000), 0);
    // Evict 0x1000 from the 2-way L1 set by touching two more lines
    // mapping to the same L1 set (L1 has 8 sets).
    h.access(read(0, 0x1000 + 8), 0);
    h.access(read(0, 0x1000 + 16), 0);
    const auto result = h.access(read(0, 0x1000), 0);
    EXPECT_EQ(result.servedBy, ServedBy::L2Local);
    EXPECT_EQ(result.latency, 13u); // 3 + 10
}

TEST(Hierarchy, InclusionAfterFill)
{
    Hierarchy h(smallParams());
    h.access(read(0, 0x1000), 0);
    EXPECT_TRUE(h.l2().presentInGroup(0, 0x1000));
    EXPECT_TRUE(h.l3().presentInGroup(0, 0x1000));
}

TEST(Hierarchy, L3EvictionBackInvalidatesL2AndL1)
{
    Hierarchy h(smallParams(1));
    // L3 slice: 256 lines, 8-way, 32 sets. Fill one L3 set (8
    // lines in the same L3 set) and then one more.
    const std::uint64_t l3_sets = 32;
    for (std::uint64_t k = 0; k < 9; ++k)
        h.access(read(0, 7 + (k + 1) * l3_sets), 0);
    // The first line was LRU in L3 and must be gone everywhere.
    const Addr victim = 7 + l3_sets;
    EXPECT_FALSE(h.l3().presentInGroup(0, victim));
    EXPECT_FALSE(h.l2().presentInGroup(0, victim));
    EXPECT_FALSE(h.l1(0).probe(victim).has_value());
    // Re-access misses to memory (inclusion was enforced).
    const auto result = h.access(read(0, victim), 0);
    EXPECT_EQ(result.servedBy, ServedBy::Memory);
}

TEST(Hierarchy, DirtyWritebackOnEviction)
{
    Hierarchy h(smallParams(1));
    h.access(write(0, 0x500), 0);
    // L1 is 2-way x 8 sets; push two same-set lines to evict the
    // dirty line into L2 (markDirty path, no memory writeback).
    h.access(read(0, 0x500 + 8), 0);
    h.access(read(0, 0x500 + 16), 0);
    EXPECT_EQ(h.coreStats(0).writebacks, 0u);
    EXPECT_TRUE(h.l2().presentInGroup(0, 0x500));
}

TEST(Hierarchy, MergedTopologyShowsRemoteHits)
{
    HierarchyParams params = smallParams();
    params.l2.chargeBusPenalty = true;
    params.l3.chargeBusPenalty = true;
    Hierarchy h(params);
    Topology topo;
    topo.numCores = 4;
    topo.l2 = {{0, 1}, {2}, {3}};
    topo.l3 = {{0, 1}, {2}, {3}};
    h.reconfigure(topo);

    h.access(read(0, 0x2000), 0); // fills core 0's slices
    // L1 of core 1 misses; its L2 group includes slice 0: remote.
    // Issue well after core 0's bus transaction has drained so the
    // uncontended merged-hit latency is observed.
    const auto result = h.access(read(1, 0x2000), 1000);
    EXPECT_EQ(result.servedBy, ServedBy::L2Remote);
    EXPECT_EQ(result.latency, 3u + 25u); // L1 + merged L2 hit
    EXPECT_EQ(h.coreStats(1).l2RemoteHits, 1u);
}

TEST(Hierarchy, ReconfigureRejectsInclusionViolation)
{
    Hierarchy h(smallParams());
    Topology bad;
    bad.numCores = 4;
    bad.l2 = {{0, 1}, {2}, {3}};
    bad.l3 = allPrivate(4);
    EXPECT_DEATH(h.reconfigure(bad), "inclusion");
}

TEST(Hierarchy, SplitStrandedLinesAgeOutSafely)
{
    HierarchyParams params = smallParams();
    Hierarchy h(params);
    Topology merged;
    merged.numCores = 4;
    merged.l2 = {{0, 1}, {2}, {3}};
    merged.l3 = {{0, 1}, {2}, {3}};
    h.reconfigure(merged);

    // Overfill one L2 set from core 0 so lines spill into slice 1.
    const std::uint64_t l2_sets = 16; // 64 lines, 4-way
    for (std::uint64_t k = 0; k < 8; ++k)
        h.access(read(0, 3 + (k + 1) * l2_sets), 0);

    // Split back to private: core 0 can no longer see slice 1's
    // lines, but the hierarchy must stay consistent.
    h.reconfigure(Topology::allPrivateTopology(4));
    for (std::uint64_t k = 0; k < 8; ++k) {
        const Addr line = 3 + (k + 1) * l2_sets;
        const auto result = h.access(read(0, line), 0);
        EXPECT_NE(result.servedBy, ServedBy::L2Remote);
    }
}

TEST(Hierarchy, L3SplitEnforcesL2Inclusion)
{
    Hierarchy h(smallParams());
    Topology merged;
    merged.numCores = 4;
    merged.l2 = allPrivate(4);
    merged.l3 = {{0, 1}, {2}, {3}};
    h.reconfigure(merged);

    // Core 0 fills; some L3 insertions can land in slice 1.
    for (Addr line = 0; line < 300; ++line)
        h.access(read(0, line), 0);

    // Split L3: any L2 line whose only L3 copy sat in slice 1 must
    // be invalidated from L2 (inclusion).
    h.reconfigure(Topology::allPrivateTopology(4));
    const auto &geom = h.params().l2.sliceGeom;
    for (std::uint64_t set = 0; set < geom.numSets(); ++set) {
        for (std::uint32_t way = 0; way < geom.assoc; ++way) {
            if (!h.l2().slice(0).validAt(set, way))
                continue;
            EXPECT_TRUE(h.l3().presentInSlices(
                {0}, h.l2().slice(0).lineAddrAt(set, way)));
        }
    }
}

TEST(HierarchyCoherence, WriteInvalidatesOtherCores)
{
    Hierarchy h(smallParams(4, /*coherence=*/true));
    h.access(read(0, 0x3000), 0);
    h.access(read(1, 0x3000), 0); // replicated in core 1's caches
    EXPECT_TRUE(h.l2().presentInGroup(1, 0x3000));

    h.access(write(0, 0x3000), 0);
    EXPECT_FALSE(h.l2().presentInGroup(1, 0x3000));
    EXPECT_FALSE(h.l1(1).probe(0x3000).has_value());
    EXPECT_TRUE(h.l2().presentInGroup(0, 0x3000));
}

TEST(HierarchyCoherence, ReadServedByOtherGroup)
{
    Hierarchy h(smallParams(4, /*coherence=*/true));
    h.access(read(0, 0x4000), 0);
    const auto result = h.access(read(1, 0x4000), 0);
    EXPECT_EQ(result.servedBy, ServedBy::OtherGroup);
    EXPECT_EQ(h.coreStats(1).otherGroupTransfers, 1u);
    // Both copies coexist for reads.
    EXPECT_TRUE(h.l3().presentInGroup(0, 0x4000));
    EXPECT_TRUE(h.l3().presentInGroup(1, 0x4000));
}

TEST(HierarchyCoherence, NoSnoopWithoutCoherence)
{
    Hierarchy h(smallParams(4, /*coherence=*/false));
    h.access(read(0, 0x4000), 0);
    const auto result = h.access(read(1, 0x4000), 0);
    EXPECT_EQ(result.servedBy, ServedBy::Memory);
}

TEST(Hierarchy, CheckpointRestoreByCopy)
{
    Hierarchy h(smallParams());
    for (Addr line = 0; line < 100; ++line)
        h.access(read(0, line), 0);

    const Hierarchy snapshot = h; // full state copy
    for (Addr line = 100; line < 200; ++line)
        h.access(read(0, line), 0);

    // The snapshot still reflects the old state.
    EXPECT_TRUE(snapshot.l2().presentInGroup(0, 50));
    EXPECT_FALSE(snapshot.l2().presentInGroup(0, 150));
    EXPECT_EQ(snapshot.coreStats(0).accesses, 100u);
    EXPECT_EQ(h.coreStats(0).accesses, 200u);
}

TEST(Hierarchy, EightAndSixteenCoreConfigs)
{
    for (std::uint32_t cores : {8u, 16u}) {
        Hierarchy h(smallParams(cores));
        for (std::uint32_t c = 0; c < cores; ++c) {
            const auto result =
                h.access(read(static_cast<CoreId>(c), 0x100 + c), 0);
            EXPECT_EQ(result.servedBy, ServedBy::Memory);
        }
        h.reconfigure(Topology::symmetric(cores, cores, 1, 1));
        EXPECT_EQ(h.topology().l2.size(), 1u);
    }
}

} // namespace
} // namespace morphcache

// mc_analyze mutation fixture: every subtraction here is the
// unsigned-wrap bug class the wrap-safety pass exists to catch.
// Never compiled; analyzed with --fixture-mode by analyze_test.cc.

#include <cstdint>

namespace fixture {

std::uint64_t
waitCycles(std::uint64_t busyUntil, std::uint64_t now)
{
    // Wraps to ~2^64 when the segment is already free (busyUntil
    // behind now).
    std::uint64_t wait = busyUntil - now;
    return wait;
}

void
drainBudget(std::uint64_t latency)
{
    std::uint64_t cycleBudget = 100;
    // Compound form of the same bug.
    cycleBudget -= latency;
    // Decrement across zero.
    std::uint64_t txnCount = 0;
    --txnCount;
    (void)cycleBudget;
    (void)txnCount;
}

} // namespace fixture

#include "stats/registry.hh"

#include <cstdio>

#include "common/logging.hh"
#include "io/vfs.hh"

namespace morphcache {

namespace {

/** Compact numeric formatting shared by the JSON and CSV dumps. */
std::string
formatValue(double v)
{
    char buf[64];
    // Counters dominate; print integral values without a fraction.
    if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    }
    return buf;
}

/** Minimal JSON string escaping (names are dotted identifiers). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeString(const std::string &path, const std::string &body)
{
    // Stats dumps are end-of-run artifacts a caller re-renders from
    // the run itself, not recovery state — no fsync, but write and
    // close failures surface as typed IoErrors instead of being
    // swallowed (a partial JSON dump parsing as truncated-but-valid
    // is worse than no dump).
    vfsWriteWholeFile(path, body.data(), body.size(),
                      /*want_fsync=*/false);
}

} // namespace

void
StatsRegistry::checkNewName(const std::string &name) const
{
    if (name.empty())
        panic("stat registered with an empty name");
    if (has(name))
        panic("duplicate stat name '%s'", name.c_str());
}

std::uint64_t &
StatsRegistry::counter(const std::string &name,
                       const std::string &desc)
{
    checkNewName(name);
    Entry &entry = entries_.emplace_back();
    entry.name = name;
    entry.desc = desc;
    entry.kind = StatKind::Counter;
    entry.isOwned = true;
    return entry.owned;
}

void
StatsRegistry::bindCounter(const std::string &name,
                           std::function<std::uint64_t()> sample,
                           const std::string &desc)
{
    checkNewName(name);
    Entry &entry = entries_.emplace_back();
    entry.name = name;
    entry.desc = desc;
    entry.kind = StatKind::Counter;
    entry.sample = [fn = std::move(sample)]() {
        return static_cast<double>(fn());
    };
}

void
StatsRegistry::bindScalar(const std::string &name,
                          std::function<double()> sample,
                          const std::string &desc)
{
    checkNewName(name);
    Entry &entry = entries_.emplace_back();
    entry.name = name;
    entry.desc = desc;
    entry.kind = StatKind::Scalar;
    entry.sample = std::move(sample);
}

Histogram &
StatsRegistry::histogram(const std::string &name, double lo,
                         double hi, std::size_t buckets,
                         const std::string &desc)
{
    checkNewName(name);
    histograms_.push_back(
        HistEntry{name, desc, Histogram(lo, hi, buckets)});
    return histograms_.back().hist;
}

bool
StatsRegistry::has(const std::string &name) const
{
    for (const Entry &entry : entries_) {
        if (entry.name == name)
            return true;
    }
    for (const HistEntry &entry : histograms_) {
        if (entry.name == name)
            return true;
    }
    return false;
}

const StatsRegistry::Entry &
StatsRegistry::find(const std::string &name) const
{
    for (const Entry &entry : entries_) {
        if (entry.name == name)
            return entry;
    }
    panic("unknown stat '%s'", name.c_str());
}

double
StatsRegistry::sampleEntry(const Entry &entry) const
{
    if (entry.isOwned)
        return static_cast<double>(entry.owned);
    return entry.sample();
}

double
StatsRegistry::value(const std::string &name) const
{
    return sampleEntry(find(name));
}

std::vector<std::string>
StatsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &entry : entries_)
        out.push_back(entry.name);
    return out;
}

void
StatsRegistry::snapshotEpoch(std::uint64_t epoch)
{
    if (!snapshotEpochs_.empty() && epoch <= snapshotEpochs_.back())
        panic("epoch snapshots must be strictly increasing");
    std::vector<double> sample;
    sample.reserve(entries_.size());
    for (const Entry &entry : entries_)
        sample.push_back(sampleEntry(entry));
    snapshotEpochs_.push_back(epoch);
    snapshots_.push_back(std::move(sample));
}

std::vector<double>
StatsRegistry::epochRow(std::size_t i) const
{
    if (i >= snapshots_.size())
        panic("epoch row %zu out of range", i);
    std::vector<double> row(entries_.size(), 0.0);
    std::size_t j = 0;
    for (const Entry &entry : entries_) {
        const double now = snapshots_[i][j];
        if (entry.kind == StatKind::Counter && i > 0)
            row[j] = now - snapshots_[i - 1][j];
        else
            row[j] = now;
        ++j;
    }
    return row;
}

std::uint64_t
StatsRegistry::epochId(std::size_t i) const
{
    if (i >= snapshotEpochs_.size())
        panic("epoch snapshot %zu out of range", i);
    return snapshotEpochs_[i];
}

std::string
StatsRegistry::jsonString() const
{
    std::string out = "{\n  \"meta\": {\"seed\": ";
    out += formatValue(static_cast<double>(meta_.seed));
    out += ", \"config\": \"";
    out += jsonEscape(meta_.configHash);
    out += "\"},\n  \"stats\": {";
    bool first = true;
    for (const Entry &entry : entries_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(entry.name) + "\": ";
        out += formatValue(sampleEntry(entry));
    }
    out += "\n  },\n  \"epochs\": [";
    for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"epoch\": ";
        out += formatValue(static_cast<double>(snapshotEpochs_[i]));
        const std::vector<double> row = epochRow(i);
        std::size_t j = 0;
        for (const Entry &entry : entries_) {
            out += ", \"" + jsonEscape(entry.name) + "\": ";
            out += formatValue(row[j]);
            ++j;
        }
        out += "}";
    }
    out += "\n  ],\n  \"histograms\": {";
    first = true;
    for (const HistEntry &entry : histograms_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(entry.name) +
               "\": {\"lo\": " +
               formatValue(entry.hist.bucketLo(0)) + ", \"counts\": [";
        for (std::size_t b = 0; b < entry.hist.numBuckets(); ++b) {
            if (b > 0)
                out += ", ";
            out += formatValue(
                static_cast<double>(entry.hist.bucketCount(b)));
        }
        out += "]}";
    }
    out += "\n  }\n}\n";
    return out;
}

std::string
StatsRegistry::csvString() const
{
    std::string out = "# seed=" +
                      formatValue(static_cast<double>(meta_.seed)) +
                      " config=" +
                      (meta_.configHash.empty() ? "-"
                                                : meta_.configHash) +
                      "\n";
    out += "epoch";
    for (const Entry &entry : entries_) {
        out += ',';
        out += entry.name;
    }
    out += '\n';
    if (snapshots_.empty()) {
        out += "final";
        for (const Entry &entry : entries_) {
            out += ',';
            out += formatValue(sampleEntry(entry));
        }
        out += '\n';
        return out;
    }
    for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        out += formatValue(static_cast<double>(snapshotEpochs_[i]));
        for (double v : epochRow(i)) {
            out += ',';
            out += formatValue(v);
        }
        out += '\n';
    }
    return out;
}

void
StatsRegistry::writeJson(const std::string &path) const
{
    writeString(path, jsonString());
}

void
StatsRegistry::writeCsv(const std::string &path) const
{
    writeString(path, csvString());
}

void
StatsRegistry::saveState(CkptWriter &w) const
{
    w.u64(entries_.size());
    for (const Entry &entry : entries_) {
        w.b(entry.isOwned);
        if (entry.isOwned)
            w.u64(entry.owned);
    }
    w.u64(histograms_.size());
    for (const HistEntry &entry : histograms_)
        entry.hist.saveState(w);
    w.u64Vec(snapshotEpochs_);
    w.u64(snapshots_.size());
    for (const std::vector<double> &row : snapshots_)
        w.f64Vec(row);
}

void
StatsRegistry::loadState(CkptReader &r)
{
    r.expectU64("registered stat count", entries_.size());
    for (Entry &entry : entries_) {
        const bool owned = r.b();
        if (owned != entry.isOwned)
            r.fail("stat '" + entry.name +
                   "' owned/bound kind mismatch");
        if (owned)
            entry.owned = r.u64();
    }
    r.expectU64("histogram count", histograms_.size());
    for (HistEntry &entry : histograms_)
        entry.hist.loadState(r);
    std::vector<std::uint64_t> epochs = r.u64Vec();
    const std::uint64_t rows = r.u64();
    if (rows != epochs.size())
        r.fail("snapshot row count does not match epoch ids");
    std::vector<std::vector<double>> snapshots;
    snapshots.reserve(rows);
    for (std::uint64_t i = 0; i < rows; ++i) {
        std::vector<double> row = r.f64Vec();
        if (row.size() != entries_.size())
            r.fail("snapshot row width mismatch");
        snapshots.push_back(std::move(row));
    }
    snapshotEpochs_ = std::move(epochs);
    snapshots_ = std::move(snapshots);
}

std::string
configHashHex(const std::string &description)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : description) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace morphcache

# Empty dependencies file for morphcache_sim.
# This may be replaced when dependencies are built.

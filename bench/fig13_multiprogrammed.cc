/**
 * @file
 * Figure 13 — throughput of MorphCache versus the five static
 * topologies on the twelve Table 5 mixes, normalized per mix to
 * the all-shared (16:1:1) baseline.
 *
 * Paper headline: MorphCache +29.9% over (16:1:1), +29.3% over
 * (1:1:16), +19.9% over (4:4:1), +18.8% over (8:2:1), +27.9% over
 * (1:16:1); mixes 1-3, 6-7 and 10 (more high-ACF members) derive
 * smaller benefits.
 */

#include "common.hh"

using namespace morphcache;
using namespace morphcache::bench;

int
main()
{
    const HierarchyParams hier = experimentHierarchy(16);
    const GeneratorParams gen = generatorFor(hier);
    const SimParams sim = defaultSim();
    const auto topologies = paperStaticTopologies();

    std::printf("Figure 13: throughput normalized to (16:1:1), per "
                "mix\n");
    printMixHeader();

    std::vector<std::vector<double>> static_norm(topologies.size());
    std::vector<double> morph_norm;
    std::vector<double> baseline(12, 0.0);

    for (int m = 1; m <= 12; ++m) {
        char name[16];
        std::snprintf(name, sizeof(name), "MIX %02d", m);
        const MixSpec &mix = mixByName(name);
        for (std::size_t t = 0; t < topologies.size(); ++t) {
            const RunResult run = runStaticMix(
                mix, topologies[t], hier, gen, sim, baseSeed() + m);
            if (t == 0)
                baseline[m - 1] = run.avgThroughput;
            static_norm[t].push_back(run.avgThroughput /
                                     baseline[m - 1]);
        }
        const RunResult run = runMorphMix(mix, hier, gen, sim,
                                          baseSeed() + m,
                                          MorphConfig{});
        morph_norm.push_back(run.avgThroughput / baseline[m - 1]);
    }

    for (std::size_t t = 0; t < topologies.size(); ++t)
        printSeries(topologies[t].name().c_str(), static_norm[t]);
    printSeries("MorphCache", morph_norm);

    std::printf("\npaper averages: (16:1:1) 1.000, (1:1:16) 1.005, "
                "(4:4:1) 1.083, (8:2:1) 1.093, (1:16:1) 1.016, "
                "MorphCache 1.299\n");
    return 0;
}

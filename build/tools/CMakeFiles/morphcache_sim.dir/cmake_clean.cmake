file(REMOVE_RECURSE
  "CMakeFiles/morphcache_sim.dir/morphcache_sim.cc.o"
  "CMakeFiles/morphcache_sim.dir/morphcache_sim.cc.o.d"
  "morphcache_sim"
  "morphcache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphcache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "sim/simulation.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"
#include "stats/metrics.hh"
#include "stats/profiler.hh"
#include "stats/registry.hh"
#include "stats/tracing.hh"

namespace morphcache {

Simulation::Simulation(MemorySystem &system, Workload &workload,
                       const SimParams &params)
    : system_(system), workload_(workload), params_(params),
      cycles_(workload.numCores(), 0.0),
      instrs_(workload.numCores(), 0.0)
{
    if (system.numCores() < workload.numCores()) {
        throw ConfigError("memory system models fewer cores than the "
                          "workload issues from");
    }
    if (params_.refsPerEpochPerCore == 0)
        throw ConfigError("epoch length must be nonzero references");
}

EpochMetrics
Simulation::runEpoch(EpochId epoch)
{
    const std::uint32_t cores = workload_.numCores();

    std::vector<double> cycles_start = cycles_;
    std::vector<double> instr_start = instrs_;
    std::vector<std::uint64_t> misses_start(cores, 0);
    for (std::uint32_t c = 0; c < cores; ++c) {
        misses_start[c] =
            system_.coreStats(static_cast<CoreId>(c)).misses();
    }

    if (tracer_)
        tracer_->setEpoch(epoch);

    workload_.beginEpoch(epoch);
    {
        ScopedPhaseTimer timer(ProfPhase::RefProcessing);
        runEpochAccesses(system_, workload_, params_.core,
                         params_.refsPerEpochPerCore, cycles_,
                         instrs_);
    }
    if (tracer_) {
        // Simulated time = the furthest core clock; every decision
        // event this boundary emits carries it.
        double max_cycles = 0.0;
        for (double c : cycles_)
            max_cycles = std::max(max_cycles, c);
        tracer_->setTime(static_cast<std::uint64_t>(max_cycles));
    }
    {
        ScopedPhaseTimer timer(ProfPhase::EpochDecision);
        system_.epochBoundary();
    }

    EpochMetrics metrics;
    metrics.ipc.resize(cores);
    metrics.misses.resize(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        const double dcycles = cycles_[c] - cycles_start[c];
        const double dinstr = instrs_[c] - instr_start[c];
        metrics.ipc[c] = dcycles > 0.0 ? dinstr / dcycles : 0.0;
        metrics.misses[c] =
            system_.coreStats(static_cast<CoreId>(c)).misses() -
            misses_start[c];
    }
    metrics.throughput = throughput(metrics.ipc);

    if (tracer_ && tracer_->enabled()) {
        std::uint64_t total_misses = 0;
        for (std::uint64_t m : metrics.misses)
            total_misses += m;
        TraceEvent ev("epoch");
        ev.f64("throughput", metrics.throughput)
            .u64("misses", total_misses)
            .u64("refsPerCore", params_.refsPerEpochPerCore);
        tracer_->emit(ev);
    }
    return metrics;
}

void
Simulation::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    system_.setTracer(tracer);
}

RunResult
Simulation::run()
{
    const std::uint32_t cores = workload_.numCores();
    RunResult result;

    for (std::uint32_t w = 0; w < params_.warmupEpochs; ++w)
        runEpoch(nextEpoch_++);

    const std::vector<double> cycles_start = cycles_;
    const std::vector<double> instr_start = instrs_;

    result.epochs.reserve(params_.epochs);
    for (std::uint32_t e = 0; e < params_.epochs; ++e) {
        const EpochId id = nextEpoch_++;
        result.epochs.push_back(runEpoch(id));
        if (registry_)
            registry_->snapshotEpoch(id);
    }

    result.avgIpc.resize(cores);
    double max_cycles = 0.0;
    double total_instr = 0.0;
    for (std::uint32_t c = 0; c < cores; ++c) {
        const double dcycles = cycles_[c] - cycles_start[c];
        const double dinstr = instrs_[c] - instr_start[c];
        result.avgIpc[c] = dcycles > 0.0 ? dinstr / dcycles : 0.0;
        max_cycles = std::max(max_cycles, dcycles);
        total_instr += dinstr;
    }
    result.avgThroughput = throughput(result.avgIpc);
    result.performance =
        max_cycles > 0.0 ? total_instr / max_cycles : 0.0;
    return result;
}

} // namespace morphcache

/**
 * @file
 * Tile-based scaling (paper Section 5.5).
 *
 * The segmented bus does not scale efficiently beyond 16 cores, so
 * the paper proposes that larger CMPs be built as tiles of at most
 * 16 cores, each tile's hierarchy managed as an independent
 * MorphCache, with threads that share data scheduled onto the same
 * tile and a scalable network between tiles. This class implements
 * exactly that composition: N MorphCache-managed hierarchies side
 * by side behind one MemorySystem interface, with a global-to-tile
 * core mapping. Cross-tile traffic does not arise when the
 * scheduler honors the sharing-locality rule the paper states,
 * which the workload mapping in the tiled_scaling bench follows.
 */

#ifndef MORPHCACHE_SIM_TILED_HH
#define MORPHCACHE_SIM_TILED_HH

#include <memory>
#include <vector>

#include "sim/memory_system.hh"

namespace morphcache {

/**
 * A CMP built from independent MorphCache tiles.
 */
class TiledMorphSystem : public MemorySystem
{
  public:
    /**
     * @param per_tile Hierarchy parameters of one tile (its core
     *        count is the tile size, at most 16 per the paper).
     * @param config Controller configuration (shared by all tiles).
     * @param num_tiles Number of tiles.
     */
    TiledMorphSystem(const HierarchyParams &per_tile,
                     const MorphConfig &config,
                     std::uint32_t num_tiles);

    AccessResult access(const MemAccess &access, Cycle now) override;
    void epochBoundary() override;
    const CoreStats &coreStats(CoreId core) const override;
    std::uint32_t numCores() const override;
    std::string name() const override;

    /** Number of tiles. */
    std::uint32_t numTiles() const
    {
        return static_cast<std::uint32_t>(tiles_.size());
    }

    /** Cores per tile. */
    std::uint32_t coresPerTile() const { return coresPerTile_; }

    /** One tile's system (stats, tests). */
    MorphCacheSystem &tile(std::uint32_t index);

    /** Total reconfigurations across all tiles. */
    std::uint64_t totalReconfigurations() const;

  private:
    std::uint32_t coresPerTile_;
    std::vector<std::unique_ptr<MorphCacheSystem>> tiles_;
};

} // namespace morphcache

#endif // MORPHCACHE_SIM_TILED_HH

/**
 * @file
 * A physical cache slice: the unit MorphCache merges and splits.
 */

#ifndef MORPHCACHE_MEM_SLICE_HH
#define MORPHCACHE_MEM_SLICE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serial.hh"
#include "common/types.hh"
#include "mem/geometry.hh"
#include "mem/line.hh"
#include "mem/replacement.hh"

namespace morphcache {

/**
 * One physical slice of cache (e.g. one 256 KB 8-way L2 slice).
 *
 * A slice only stores state; *policy* over one or more slices (group
 * lookup, cross-slice victim choice, inclusion) is implemented by
 * SliceGroup in the hierarchy library. This split is what makes
 * splitting a merged group O(1): every line physically lives in
 * exactly one slice's ways at all times, so un-merging is just a
 * change of view.
 */
class CacheSlice
{
  public:
    /**
     * @param id Dense identifier of this slice within its level.
     * @param geom Slice geometry (validated).
     * @param policy Replacement policy used for intra-slice victims.
     */
    CacheSlice(SliceId id, const CacheGeometry &geom,
               ReplPolicy policy = ReplPolicy::LRU);

    /** Slice identifier. */
    SliceId id() const { return id_; }

    /** Slice geometry. */
    const CacheGeometry &geometry() const { return geom_; }

    /** Replacement policy in effect. */
    ReplPolicy policy() const { return policy_; }

    /**
     * Look up a line in this slice.
     * @return The way holding it, or std::nullopt on miss.
     */
    std::optional<std::uint32_t> probe(Addr line_addr) const;

    /** Access the line at (set, way). */
    CacheLine &lineAt(std::uint64_t set, std::uint32_t way);
    const CacheLine &lineAt(std::uint64_t set, std::uint32_t way) const;

    /**
     * Record a hit on (set, way): bumps the recency stamp and the
     * PLRU tree.
     */
    void touch(std::uint64_t set, std::uint32_t way, std::uint64_t stamp);

    /**
     * Way this slice would evict from `set`, preferring invalid
     * ways, then the policy's victim.
     */
    std::uint32_t victimWay(std::uint64_t set) const;

    /**
     * Install `line_addr` into (set, way).
     * @return What was displaced.
     */
    Eviction fill(std::uint64_t set, std::uint32_t way, Addr line_addr,
                  bool dirty, std::uint64_t stamp);

    /**
     * Invalidate a line if present.
     * @return The eviction record (valid=false if it wasn't here).
     */
    Eviction invalidate(Addr line_addr);

    /** Invalidate every line in the slice. */
    void invalidateAll();

    /** Number of valid lines currently resident. */
    std::uint64_t validLineCount() const;

    /** Set index this slice uses for a line address. */
    std::uint64_t
    setIndex(Addr line_addr) const
    {
        return geom_.setIndex(line_addr);
    }

    /** Serialize all line + replacement state. */
    void
    saveState(CkptWriter &w) const
    {
        w.u64(lines_.size());
        for (const CacheLine &line : lines_) {
            w.u64(line.lineAddr);
            w.u8(static_cast<std::uint8_t>(
                (line.valid ? 1u : 0u) | (line.dirty ? 2u : 0u) |
                (line.reused ? 4u : 0u)));
            w.u64(line.stamp);
        }
        plru_.saveState(w);
    }

    void
    loadState(CkptReader &r)
    {
        r.expectU64("slice line count", lines_.size());
        for (CacheLine &line : lines_) {
            line.lineAddr = r.u64();
            const std::uint8_t flags = r.u8();
            if (flags > 7)
                r.fail("cache-line flags byte is " +
                       std::to_string(flags) + ", expected <= 7");
            line.valid = (flags & 1) != 0;
            line.dirty = (flags & 2) != 0;
            line.reused = (flags & 4) != 0;
            line.stamp = r.u64();
        }
        plru_.loadState(r);
    }

  private:
    std::uint64_t index(std::uint64_t set, std::uint32_t way) const;

    SliceId id_;
    CacheGeometry geom_;
    ReplPolicy policy_;
    std::vector<CacheLine> lines_;
    PlruState plru_;
};

} // namespace morphcache

#endif // MORPHCACHE_MEM_SLICE_HH

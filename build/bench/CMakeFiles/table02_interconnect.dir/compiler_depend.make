# Empty compiler generated dependencies file for table02_interconnect.
# This may be replaced when dependencies are built.

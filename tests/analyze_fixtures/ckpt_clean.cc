// mc_analyze clean fixture: full serialization coverage — direct
// references, coverage through a same-class helper, and both
// annotation forms with valid arguments. Must produce no findings.

#include <cstdint>

class CkptWriter;
class CkptReader;

namespace fixture {

class Gadget
{
  public:
    Gadget() = default;

    void
    saveState(CkptWriter &w) const
    {
        write(w, count_);
        saveExtras(w);
    }

    void
    loadState(CkptReader &r)
    {
        count_ = readU64(r);
        loadExtras(r);
    }

  private:
    // Transitive coverage: extra_ is referenced only through these
    // helpers, which the closure walk must follow.
    void
    saveExtras(CkptWriter &w) const
    {
        write(w, extra_);
    }

    void
    loadExtras(CkptReader &r)
    {
        extra_ = readU64(r);
    }

    static void write(CkptWriter &w, std::uint64_t v);
    static std::uint64_t readU64(CkptReader &r);

    std::uint64_t count_ = 0;
    std::uint64_t extra_ = 0;
    std::uint64_t cachedMask_ = 0; // ckpt: derived(Gadget)
    std::uint64_t scratch_ = 0; // ckpt: transient(per-call scratch)
};

} // namespace fixture

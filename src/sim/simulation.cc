#include "sim/simulation.hh"

#include <algorithm>
#include <cstddef>

#include "common/error.hh"
#include "common/logging.hh"
#include "stats/metrics.hh"
#include "stats/profiler.hh"
#include "stats/registry.hh"
#include "stats/tracing.hh"

namespace morphcache {

Simulation::Simulation(MemorySystem &system, Workload &workload,
                       const SimParams &params)
    : system_(system), workload_(workload), params_(params),
      cycles_(workload.numCores(), 0.0),
      instrs_(workload.numCores(), 0.0)
{
    if (system.numCores() < workload.numCores()) {
        throw ConfigError("memory system models fewer cores than the "
                          "workload issues from");
    }
    if (params_.refsPerEpochPerCore == 0)
        throw ConfigError("epoch length must be nonzero references");

    // Pre-size everything an epoch touches so the steady-state run
    // loop never allocates: recorded slots, per-epoch baselines,
    // the warmup metrics sink, and (capacity only — the serialized
    // empty-until-warmup-done size semantics stay) the baselines.
    const std::uint32_t cores = workload.numCores();
    recorded_.resize(params_.epochs);
    for (EpochMetrics &slot : recorded_) {
        slot.ipc.resize(cores);
        slot.misses.resize(cores);
    }
    warmupScratch_.ipc.resize(cores);
    warmupScratch_.misses.resize(cores);
    epochCycles0_.resize(cores);
    epochInstrs0_.resize(cores);
    epochMisses0_.resize(cores);
    baselineCycles_.reserve(cores);
    baselineInstrs_.reserve(cores);
}

EpochMetrics
Simulation::runEpoch(EpochId epoch)
{
    EpochMetrics metrics;
    runEpochInto(epoch, metrics);
    return metrics;
}

void
Simulation::runEpochInto(EpochId epoch, EpochMetrics &metrics)
{
    const std::uint32_t cores = workload_.numCores();

    std::copy(cycles_.begin(), cycles_.end(),
              epochCycles0_.begin());
    std::copy(instrs_.begin(), instrs_.end(),
              epochInstrs0_.begin());
    for (std::uint32_t c = 0; c < cores; ++c) {
        epochMisses0_[c] =
            system_.coreStats(static_cast<CoreId>(c)).misses();
    }

    if (tracer_)
        tracer_->setEpoch(epoch);

    workload_.beginEpoch(epoch);
    {
        ScopedPhaseTimer timer(ProfPhase::RefProcessing);
        runEpochAccesses(system_, workload_, params_.core,
                         params_.refsPerEpochPerCore, cycles_,
                         instrs_);
    }
    if (tracer_) {
        // Simulated time = the furthest core clock; every decision
        // event this boundary emits carries it.
        double max_cycles = 0.0;
        for (double c : cycles_)
            max_cycles = std::max(max_cycles, c);
        tracer_->setTime(static_cast<std::uint64_t>(max_cycles));
    }
    {
        ScopedPhaseTimer timer(ProfPhase::EpochDecision);
        system_.epochBoundary();
    }

    metrics.ipc.resize(cores);
    metrics.misses.resize(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        const double dcycles = cycles_[c] - epochCycles0_[c];
        const double dinstr = instrs_[c] - epochInstrs0_[c];
        metrics.ipc[c] = dcycles > 0.0 ? dinstr / dcycles : 0.0;
        metrics.misses[c] =
            system_.coreStats(static_cast<CoreId>(c)).misses() -
            epochMisses0_[c];
    }
    metrics.throughput = throughput(metrics.ipc);

    if (tracer_ && tracer_->enabled()) {
        std::uint64_t total_misses = 0;
        for (std::uint64_t m : metrics.misses)
            total_misses += m;
        TraceEvent ev("epoch");
        ev.f64("throughput", metrics.throughput)
            .u64("misses", total_misses)
            .u64("refsPerCore", params_.refsPerEpochPerCore);
        tracer_->emit(ev);
    }
}

void
Simulation::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    system_.setTracer(tracer);
}

void
Simulation::markWarmupDone()
{
    warmupDone_ = true;
    baselineCycles_ = cycles_;
    baselineInstrs_ = instrs_;
}

void
Simulation::stepEpoch()
{
    if (done())
        return;
    if (!warmupDone_ && nextEpoch_ < params_.warmupEpochs) {
        runEpochInto(nextEpoch_++, warmupScratch_);
        if (nextEpoch_ == params_.warmupEpochs)
            markWarmupDone();
        return;
    }
    if (!warmupDone_)
        markWarmupDone();
    const EpochId id = nextEpoch_++;
    runEpochInto(id, recorded_[recordedCount_]);
    ++recordedCount_;
    if (registry_)
        registry_->snapshotEpoch(id);
}

bool
Simulation::done() const
{
    return nextEpoch_ >= params_.warmupEpochs &&
           recordedCount_ >= params_.epochs;
}

RunResult
Simulation::finish() const
{
    const std::uint32_t cores = workload_.numCores();
    RunResult result;
    result.epochs.assign(recorded_.begin(),
                         recorded_.begin() +
                             static_cast<std::ptrdiff_t>(
                                 recordedCount_));

    // With zero recorded epochs the baselines were never captured;
    // the current clocks give the same all-zero deltas.
    const std::vector<double> &cycles_start =
        warmupDone_ ? baselineCycles_ : cycles_;
    const std::vector<double> &instr_start =
        warmupDone_ ? baselineInstrs_ : instrs_;

    result.avgIpc.resize(cores);
    double max_cycles = 0.0;
    double total_instr = 0.0;
    for (std::uint32_t c = 0; c < cores; ++c) {
        const double dcycles = cycles_[c] - cycles_start[c];
        const double dinstr = instrs_[c] - instr_start[c];
        result.avgIpc[c] = dcycles > 0.0 ? dinstr / dcycles : 0.0;
        max_cycles = std::max(max_cycles, dcycles);
        total_instr += dinstr;
    }
    result.avgThroughput = throughput(result.avgIpc);
    result.performance =
        max_cycles > 0.0 ? total_instr / max_cycles : 0.0;
    return result;
}

RunResult
Simulation::run()
{
    while (!done())
        stepEpoch();
    return finish();
}

void
Simulation::saveState(CkptWriter &w) const
{
    w.f64Vec(cycles_);
    w.f64Vec(instrs_);
    w.u64(nextEpoch_);
    w.b(warmupDone_);
    w.f64Vec(baselineCycles_);
    w.f64Vec(baselineInstrs_);
    // Only the filled prefix: the byte stream matches the old
    // grow-on-push layout exactly (count, then count records).
    w.u64(recordedCount_);
    for (std::uint64_t e = 0; e < recordedCount_; ++e) {
        const EpochMetrics &metrics = recorded_[e];
        w.f64Vec(metrics.ipc);
        w.f64(metrics.throughput);
        w.u64Vec(metrics.misses);
    }
}

void
Simulation::loadState(CkptReader &r)
{
    const std::size_t cores = cycles_.size();
    std::vector<double> cycles = r.f64Vec();
    if (cycles.size() != cores)
        r.fail("core clock count mismatch");
    std::vector<double> instrs = r.f64Vec();
    if (instrs.size() != cores)
        r.fail("instruction counter count mismatch");
    cycles_ = std::move(cycles);
    instrs_ = std::move(instrs);
    nextEpoch_ = static_cast<EpochId>(r.u64());
    warmupDone_ = r.b();
    baselineCycles_ = r.f64Vec();
    baselineInstrs_ = r.f64Vec();
    if (warmupDone_ && (baselineCycles_.size() != cores ||
                        baselineInstrs_.size() != cores))
        r.fail("warmup baseline size mismatch");
    const std::uint64_t count = r.u64();
    if (count > params_.epochs)
        r.fail("checkpoint records " + std::to_string(count) +
               " epochs but the run only has " +
               std::to_string(params_.epochs));
    for (std::uint64_t e = 0; e < count; ++e) {
        EpochMetrics &metrics = recorded_[e];
        metrics.ipc = r.f64Vec();
        metrics.throughput = r.f64();
        metrics.misses = r.u64Vec();
        if (metrics.ipc.size() != cores ||
            metrics.misses.size() != cores)
            r.fail("recorded epoch metric size mismatch");
    }
    recordedCount_ = count;
}

} // namespace morphcache

/**
 * @file
 * Section 5.3 — QoS via MSAT throttling.
 *
 * Compares MorphCache with and without the miss-driven MSAT
 * throttle on every mix, reporting throughput and the worst
 * per-application speedup relative to the private (fair-share)
 * configuration — the QoS criterion the paper defines: no
 * application should fall below the performance its fair share of
 * cache (the private topology) gives it.
 */

#include "common.hh"

#include <algorithm>

using namespace morphcache;
using namespace morphcache::bench;

namespace {

double
worstSpeedup(const RunResult &run, const RunResult &fair)
{
    double worst = 1e30;
    for (std::size_t c = 0; c < run.avgIpc.size(); ++c)
        worst = std::min(worst, run.avgIpc[c] / fair.avgIpc[c]);
    return worst;
}

} // namespace

int
main()
{
    const HierarchyParams hier = experimentHierarchy(16);
    const GeneratorParams gen = generatorFor(hier);
    const SimParams sim = defaultSim();
    const Topology fair_topo = Topology::symmetric(16, 1, 1, 16);

    std::printf("Section 5.3: QoS-aware MSAT throttling\n");
    std::printf("(worst = minimum per-app speedup vs the private "
                "fair-share configuration)\n\n");
    std::printf("%-8s %14s %14s %14s %14s\n", "mix", "tput(noQoS)",
                "worst(noQoS)", "tput(QoS)", "worst(QoS)");

    double w0 = 0, w1 = 0, t0 = 0, t1 = 0;
    for (int m = 1; m <= 12; ++m) {
        char name[16];
        std::snprintf(name, sizeof(name), "MIX %02d", m);
        const MixSpec &mix = mixByName(name);

        const RunResult fair = runStaticMix(mix, fair_topo, hier,
                                            gen, sim, baseSeed() + m);

        MorphConfig no_qos;
        no_qos.qosThrottling = false;
        const RunResult run0 = runMorphMix(mix, hier, gen, sim,
                                           baseSeed() + m, no_qos);

        MorphConfig qos;
        qos.qosThrottling = true;
        const RunResult run1 = runMorphMix(mix, hier, gen, sim,
                                           baseSeed() + m, qos);

        const double worst0 = worstSpeedup(run0, fair);
        const double worst1 = worstSpeedup(run1, fair);
        std::printf("%-8s %14.3f %14.3f %14.3f %14.3f\n", name,
                    run0.avgThroughput, worst0, run1.avgThroughput,
                    worst1);
        t0 += run0.avgThroughput;
        t1 += run1.avgThroughput;
        w0 += worst0;
        w1 += worst1;
    }
    std::printf("%-8s %14.3f %14.3f %14.3f %14.3f\n", "AVG", t0 / 12,
                w0 / 12, t1 / 12, w1 / 12);
    std::printf("\npaper: throttling preserves overall improvement "
                "while keeping every app at or above its fair-share "
                "performance (8 bytes of state per slice)\n");
    return 0;
}

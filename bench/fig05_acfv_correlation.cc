/**
 * @file
 * Figure 5 — ACFV fidelity versus vector length.
 *
 * Runs hmmer on a single core with a 1 MB L2 slice (the paper's
 * setup), measures per-epoch |ACFV|/bits for vector lengths 2..512
 * under both hash families, and correlates each series against the
 * oracle footprint (exact per-epoch unique-line tracking). The
 * paper reports ~0.94 at 64 bits and ~0.96 at 128 bits.
 */

#include "common.hh"

#include "stats/stats.hh"

using namespace morphcache;
using namespace morphcache::bench;

int
main()
{
    // Single-core hierarchy with the paper's 1 MB slice at L2.
    HierarchyParams hier = HierarchyParams::defaultParams(1);
    hier.l2.sliceGeom = CacheGeometry{1024 * 1024, 8, 64};
    hier.l3.sliceGeom = CacheGeometry{4 * 1024 * 1024, 16, 64};
    hier.l2.trackOracle = true;

    const SimParams sim = defaultSim();
    const std::uint32_t epochs = 40;

    std::printf("Figure 5: correlation of |ACFV| with the oracle "
                "ACF estimator\n");
    std::printf("hmmer, 1 MB L2 slice, %u epochs of %llu refs\n\n",
                epochs,
                static_cast<unsigned long long>(
                    sim.refsPerEpochPerCore));
    std::printf("%-8s %12s %12s %12s\n", "bits", "XOR", "modulo",
                "fibonacci");

    for (std::uint32_t bits : {2u, 8u, 32u, 64u, 128u, 512u}) {
        double corr[3] = {0.0, 0.0, 0.0};
        int k = 0;
        for (HashKind kind : {HashKind::Xor, HashKind::Modulo,
                              HashKind::Fibonacci}) {
            HierarchyParams params = hier;
            params.l2.acfvBits = bits;
            params.l2.acfvHash = kind;
            Hierarchy hierarchy(params);

            GeneratorParams gen = generatorFor(params);
            SoloWorkload workload(profileByName("hmmer"), gen,
                                  baseSeed());

            CoreModelParams core;
            std::vector<double> cycles(1, 0.0), instrs(1, 0.0);
            std::vector<double> estimated, oracle;
            for (std::uint32_t e = 0; e < epochs; ++e) {
                workload.beginEpoch(e);
                runEpochAccesses(hierarchy, workload, core,
                                 sim.refsPerEpochPerCore, cycles,
                                 instrs);
                estimated.push_back(
                    hierarchy.l2().utilization({0}));
                oracle.push_back(static_cast<double>(
                    hierarchy.l2().oracleAcfSize(0, 0)));
                hierarchy.resetFootprints();
            }
            corr[k++] = pearsonCorrelation(estimated, oracle);
        }
        std::printf("%-8u %12.3f %12.3f %12.3f\n", bits, corr[0],
                    corr[1], corr[2]);
    }
    std::printf("\npaper (XOR): 0.94 at 64 bits, 0.96 at 128 bits; "
                "small vectors degrade, the families converge\n"
                "(fibonacci is this repo's operating default: same "
                "fidelity, plus base decorrelation for the sharing "
                "test)\n");
    return 0;
}

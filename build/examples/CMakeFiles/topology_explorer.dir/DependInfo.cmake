
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/topology_explorer.cpp" "examples/CMakeFiles/topology_explorer.dir/topology_explorer.cpp.o" "gcc" "examples/CMakeFiles/topology_explorer.dir/topology_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/morph/CMakeFiles/mc_morph.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/mc_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/acf/CMakeFiles/mc_acf.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/mc_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

/**
 * @file
 * Hierarchical segmented-bus arbitration (paper Section 3.2).
 *
 * The paper arbitrates a segmented bus with a tree of identical
 * 2-input round-robin arbiters (Figures 9 and 10). An arbiter at
 * level n produces two grant signals, each covering 2^(n-1) cache
 * slices; a slice acquires the bus when every arbiter it is
 * configured to share (the BusAcq AND-gate of Figure 11) grants it.
 *
 * Segmentation enters through the Fwdreq signal: an arbiter only
 * forwards requests to its parent when the bus segments on both
 * sides of the parent's switch belong to the same sharing group.
 * Disabling forwarding at a node therefore cuts the bus at that
 * point and lets the two sides run independent transactions, which
 * is exactly the Figure 7 switch behaviour.
 */

#ifndef MORPHCACHE_INTERCONNECT_ARBITER_HH
#define MORPHCACHE_INTERCONNECT_ARBITER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace morphcache {

/**
 * One 2-input round-robin arbiter (Figure 10).
 *
 * Combinationally: grants at most one of the two latched requests,
 * alternating priority via the Lastgnt register; also computes the
 * forwarded request (Reqout = Req0 | Req1) used by the next level.
 */
class RoundRobinArbiter2
{
  public:
    /** Result of one arbitration step. */
    struct Grants
    {
        bool gnt0 = false;
        bool gnt1 = false;
        /** Reqout: request forwarded to the next level. */
        bool reqOut = false;
    };

    /**
     * Arbitrate one cycle.
     *
     * @param req0 Request from the left subtree.
     * @param req1 Request from the right subtree.
     * @param granted Whether this arbiter's own output request was
     *        granted by the parent (always true at a segment root).
     * @param fwdreq Whether this node forwards upward (Share
     *        signal); when false the node is a segment root.
     */
    Grants arbitrate(bool req0, bool req1, bool granted, bool fwdreq);

    /** Which input won the last grant (for tests). */
    bool lastGnt() const { return lastGnt_; }

    /** Reset the round-robin state. */
    void reset() { lastGnt_ = false; }

  private:
    /** False: input 0 was granted last; true: input 1. */
    bool lastGnt_ = false;
};

/**
 * A full arbiter tree over numLeaves() slices with configurable
 * segmentation.
 *
 * The tree is stored heap-style (node 1 = root). Leaves correspond
 * to cache slices in physical order. Segmentation is configured by
 * marking, for every internal node, whether it joins its two
 * subtrees (switch enabled) or cuts them apart (switch disabled).
 */
class ArbiterTree
{
  public:
    /** @param num_leaves Number of slices (power of two, >= 2). */
    explicit ArbiterTree(std::uint32_t num_leaves);

    /** Number of slice-side inputs. */
    std::uint32_t numLeaves() const { return numLeaves_; }

    /** Number of internal arbiter nodes (numLeaves - 1). */
    std::uint32_t numArbiters() const { return numLeaves_ - 1; }

    /** Number of arbiter levels (log2 of leaves). */
    std::uint32_t numLevels() const { return levels_; }

    /**
     * Configure segmentation from a partition of the leaves into
     * contiguous aligned power-of-two groups.
     *
     * @param group_of group_of[i] is an arbitrary group id for leaf
     *        i; leaves with equal ids must form aligned contiguous
     *        power-of-two ranges.
     */
    void configure(const std::vector<std::uint32_t> &group_of);

    /**
     * Run one arbitration cycle.
     *
     * @param requests requests[i] is true when slice i wants the bus.
     * @return grant[i] per slice; at most one grant per segment.
     */
    std::vector<bool> arbitrate(const std::vector<bool> &requests);

    /** Whether internal node `node` joins its subtrees. */
    bool nodeEnabled(std::uint32_t node) const;

    /** Reset all round-robin state. */
    void reset();

  private:
    std::uint32_t numLeaves_;
    std::uint32_t levels_;
    /** Heap-ordered arbiters; index 1..numLeaves_-1. */
    std::vector<RoundRobinArbiter2> nodes_;
    /** enabled_[n]: node n joins its two subtrees (switch closed). */
    std::vector<bool> enabled_;
};

} // namespace morphcache

#endif // MORPHCACHE_INTERCONNECT_ARBITER_HH

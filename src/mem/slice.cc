#include "mem/slice.hh"

#include "common/logging.hh"

namespace morphcache {

CacheSlice::CacheSlice(SliceId id, const CacheGeometry &geom,
                       ReplPolicy policy)
    : id_(id), geom_(geom), policy_(policy),
      assoc_(geom.assoc),
      numSets_(geom.numSets()),
      setMask_(geom.numSets() - 1),
      waysMask_(geom.assoc >= 64 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << geom.assoc) - 1),
      tags_(geom.numLines(), 0),
      stamps_(geom.numLines(), 0),
      validBits_(geom.numSets(), 0),
      dirtyBits_(geom.numSets(), 0),
      reusedBits_(geom.numSets(), 0),
      plru_(geom.numSets(), geom.assoc)
{
    MC_ASSERT(geom.valid());
    // The per-set flag words cap associativity at one machine word.
    MC_ASSERT(geom.assoc <= 64);
}

void
CacheSlice::invalidateAll()
{
    for (std::uint64_t set = 0; set < numSets_; ++set) {
        validBits_[set] = 0;
        dirtyBits_[set] = 0;
    }
}

std::uint64_t
CacheSlice::validLineCount() const
{
    std::uint64_t count = 0;
    for (std::uint64_t set = 0; set < numSets_; ++set)
        count += static_cast<std::uint64_t>(
            std::popcount(validBits_[set]));
    return count;
}

void
CacheSlice::saveState(CkptWriter &w) const
{
    w.u64(tags_.size());
    for (std::uint64_t set = 0; set < numSets_; ++set) {
        for (std::uint32_t way = 0; way < assoc_; ++way) {
            w.u64(tags_[set * assoc_ + way]);
            w.u8(static_cast<std::uint8_t>(
                (validAt(set, way) ? 1u : 0u) |
                (dirtyAt(set, way) ? 2u : 0u) |
                (reusedAt(set, way) ? 4u : 0u)));
            w.u64(stamps_[set * assoc_ + way]);
        }
    }
    plru_.saveState(w);
}

void
CacheSlice::loadState(CkptReader &r)
{
    r.expectU64("slice line count", tags_.size());
    for (std::uint64_t set = 0; set < numSets_; ++set) {
        for (std::uint32_t way = 0; way < assoc_; ++way) {
            const std::uint64_t bit = std::uint64_t{1} << way;
            tags_[set * assoc_ + way] = r.u64();
            const std::uint8_t flags = r.u8();
            if (flags > 7)
                r.fail("cache-line flags byte is " +
                       std::to_string(flags) + ", expected <= 7");
            if (flags & 1)
                validBits_[set] |= bit;
            else
                validBits_[set] &= ~bit;
            if (flags & 2)
                dirtyBits_[set] |= bit;
            else
                dirtyBits_[set] &= ~bit;
            if (flags & 4)
                reusedBits_[set] |= bit;
            else
                reusedBits_[set] &= ~bit;
            stamps_[set * assoc_ + way] = r.u64();
        }
    }
    plru_.loadState(r);
}

} // namespace morphcache

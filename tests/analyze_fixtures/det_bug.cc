// mc_analyze mutation fixture: determinism violations — unordered
// iteration feeding an ordered sink, libc entropy, a wall-clock
// read, and a StatsRegistry bypass.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace fixture {

void
dumpStats()
{
    std::unordered_map<std::uint64_t, std::uint64_t> counts;
    counts[3] = 1;
    // Hash-order iteration: output order varies across libstdc++
    // versions and ASLR seeds.
    for (const auto &kv : counts) {
        std::printf("%llu\n",
                    static_cast<unsigned long long>(kv.second));
    }
    // Entropy in simulation code.
    int jitter = rand();
    // Wall-clock read outside the sanctioned sites.
    auto t0 = std::chrono::steady_clock::now();
    (void)jitter;
    (void)t0;
}

} // namespace fixture

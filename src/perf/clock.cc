#include "perf/clock.hh"

#include <ctime>

namespace morphcache {

std::uint64_t
perfNowNs()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

double
perfNowSec()
{
    return static_cast<double>(perfNowNs()) / 1e9;
}

double
unixNowSec()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) / 1e9;
}

} // namespace morphcache

#include "workload/generator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace morphcache {

namespace {

/** Clamp an ACF fraction into a usable range. */
double
clampFraction(double f)
{
    return std::clamp(f, 0.05, 0.93);
}

/**
 * Invert a capacity-clipped ACF observation into true demand (in
 * capacity units): ACF = 1 - exp(-demand/capacity).
 */
double
demandFromAcf(double acf, bool invert)
{
    return invert ? -std::log(1.0 - acf) : acf;
}

/** Private line-address region of a stream. */
Addr
privateRegionBase(CoreId core)
{
    // Generous disjoint regions with high-entropy placement:
    // regular bases (e.g. core << 32) partially collide under the
    // ACFV's XOR fold and read as false sharing between unrelated
    // threads, exactly like regular page-coloring artifacts would
    // in hardware. Addresses are line numbers, aligned to 2^20
    // lines.
    std::uint64_t sm = 0x517cc1b727220a95ULL + core;
    return (splitMix64(sm) & 0x3ffff) << 20 | (Addr{1} << 40);
}

} // namespace

WorkingSet
CoreRefGenerator::layoutWorkingSet(Addr base, double demand,
                                   double acf_fraction,
                                   std::uint64_t slice_lines,
                                   double coverage_factor,
                                   std::uint32_t acfv_bits)
{
    WorkingSet set;
    set.base = base;
    const auto granule = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(slice_lines) * coverage_factor /
               acfv_bits));
    set.stride = granule;
    set.chunkCount = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(acf_fraction * acfv_bits));
    const auto lines = std::max<std::uint64_t>(
        32, static_cast<std::uint64_t>(
                demand * static_cast<double>(slice_lines)));
    set.chunkLines =
        std::clamp<std::uint64_t>(lines / set.chunkCount, 1, granule);
    return set;
}

CoreRefGenerator::CoreRefGenerator(const BenchmarkProfile &profile,
                                   CoreId core,
                                   const GeneratorParams &params,
                                   std::uint64_t seed,
                                   double spatial_offset)
    : profile_(profile), core_(core), params_(params),
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * (core + 1))),
      spatialOffset_(spatial_offset),
      privateBase_(privateRegionBase(core)),
      ring_(params.recentRing, privateRegionBase(core)),
      ringShared_(params.recentRing, false)
{
    MC_ASSERT(params_.recentRing > 0);
    beginEpoch(0);
}

void
CoreRefGenerator::setSharedRegion(const SharedRegionSpec &spec)
{
    shared_ = spec;
}

void
CoreRefGenerator::beginEpoch(EpochId epoch)
{
    // Per-epoch footprint fractions: Table 4 mean + AR(1) temporal
    // noise (+ the per-thread spatial offset for multithreaded
    // apps), scaled down during persistent low-footprint phases.
    inLowPhase_ = inLowPhase_
                      ? rng_.chance(params_.lowPhaseStayProb)
                      : rng_.chance(params_.lowPhaseEnterProb);
    const double phase = inLowPhase_ ? params_.lowPhaseScale : 1.0;
    const double rho = params_.noiseAr1;
    const double fresh = std::sqrt(
        std::max(0.0, 1.0 - rho * rho));
    noise2_ = rho * noise2_ + fresh * rng_.gaussian();
    noise3_ = rho * noise3_ + fresh * rng_.gaussian();
    const double f2 = clampFraction(
        phase * (profile_.l2Acf + profile_.l2SigmaT * noise2_ +
                 spatialOffset_));
    const double f3 = clampFraction(
        phase * (profile_.l3Acf + profile_.l3SigmaT * noise3_ +
                 spatialOffset_));

    const double d2 = params_.demandScale *
                      demandFromAcf(f2, params_.invertAcfDemand);
    const double d3 = params_.demandScale *
                      demandFromAcf(f3, params_.invertAcfDemand);

    // Hot set: anchored to the L2 scale.
    WorkingSet hot = layoutWorkingSet(
        0, d2, f2, params_.l2SliceLines, params_.l2CoverageFactor,
        params_.acfvBits);

    // Slow forward drift creates fresh (compulsory-miss) lines and
    // the phase behaviour behind Figure 2(a).
    const auto drift = static_cast<Addr>(
        params_.driftFraction * static_cast<double>(hot.spanLines()));
    hot.base = privateBase_ + drift * epoch;
    hot_ = hot;

    // Mid set: anchored to the L3 scale, minus what the hot span
    // already contributes to the L3 footprint.
    const auto l3_granule = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(params_.l3SliceLines) *
               params_.l3CoverageFactor / params_.acfvBits));
    const std::uint64_t hot_l3_granules =
        hot_.spanLines() / l3_granule + 1;
    const double target_granules = f3 * params_.acfvBits;
    const std::uint64_t mid_granules = std::max<std::uint64_t>(
        1, satSub(static_cast<std::uint64_t>(target_granules),
                  hot_l3_granules));
    const auto d3_lines = static_cast<std::uint64_t>(
        d3 * static_cast<double>(params_.l3SliceLines));
    const std::uint64_t mid_lines = std::max<std::uint64_t>(
        64, satSub(d3_lines, hot_.lines()));
    WorkingSet mid;
    mid.base = hot_.base + hot_.spanLines() + l3_granule;
    mid.stride = l3_granule;
    mid.chunkCount = mid_granules;
    mid.chunkLines = std::clamp<std::uint64_t>(
        mid_lines / mid_granules, 1, l3_granule);
    mid_ = mid;
    if (midPos_ >= mid_.lines())
        midPos_ = 0;

    if (streamPtr_ == 0)
        streamPtr_ = privateBase_ + (Addr{1} << 28);
}

Addr
CoreRefGenerator::drawLine()
{
    const double stream_frac =
        profile_.cls >= 0
            ? params_.streamFractionByClass[profile_.cls]
            : params_.parsecStreamFraction;
    const double r = rng_.uniform();
    lastShared_ = false;
    if (r < stream_frac)
        return streamPtr_++;
    const double working = (r - stream_frac) / (1.0 - stream_frac);
    if (working < params_.hotShare) {
        // Reuse over the hot set, concentrated on the inner tier.
        lastShared_ = shared_.fraction > 0.0 &&
                      rng_.chance(shared_.fraction);
        const WorkingSet &hot = lastShared_ ? shared_.hot : hot_;
        if (rng_.chance(params_.innerHotShare)) {
            // The inner tier is additionally capped at a fraction
            // of one L2 slice: a program's innermost loops fit its
            // local cache whatever the total footprint is.
            const auto cap = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       0.4 * static_cast<double>(
                                 params_.l2SliceLines)));
            const auto inner = std::clamp<std::uint64_t>(
                static_cast<std::uint64_t>(
                    params_.innerHotFraction *
                    static_cast<double>(hot.lines())),
                1, cap);
            return hot.lineAt(rng_.below(inner));
        }
        return hot.lineAt(rng_.below(hot.lines()));
    }
    // The mid set is *swept* cyclically: real programs walk their
    // large working sets in passes, so the L2-resident window stays
    // small while the full set cycles through the L3.
    if (shared_.fraction > 0.0 && rng_.chance(shared_.fraction)) {
        lastShared_ = true;
        const Addr line = shared_.mid.lineAt(sharedMidPos_);
        // Branchy wrap instead of a modulo: the cursor is always
        // below lines(), so both compute the same successor.
        if (++sharedMidPos_ >= shared_.mid.lines())
            sharedMidPos_ = 0;
        return line;
    }
    const Addr line = mid_.lineAt(midPos_);
    if (++midPos_ >= mid_.lines())
        midPos_ = 0;
    return line;
}

MemAccess
CoreRefGenerator::next()
{
    Addr line;
    bool shared;
    if (rng_.chance(params_.recentFraction)) {
        const auto slot = rng_.below(ring_.size());
        line = ring_[slot];
        shared = ringShared_[slot];
    } else {
        line = drawLine();
        shared = lastShared_;
        ring_[ringNext_] = line;
        ringShared_[ringNext_] = shared;
        // Same successor as (ringNext_ + 1) % size without the
        // divide; the cursor is always below the ring size.
        if (++ringNext_ >= ring_.size())
            ringNext_ = 0;
    }
    MemAccess access;
    access.core = core_;
    access.addr = line << 6; // 64-byte lines
    const double write_frac = shared ? params_.sharedWriteFraction
                                     : params_.writeFraction;
    access.type = rng_.chance(write_frac) ? AccessType::Write
                                          : AccessType::Read;
    return access;
}

// --- MixWorkload --------------------------------------------------

MixWorkload::MixWorkload(const MixSpec &spec,
                         const GeneratorParams &params,
                         std::uint64_t seed)
    : name_(spec.name)
{
    MC_ASSERT(!spec.benchmarks.empty());
    gens_.reserve(spec.benchmarks.size());
    for (std::size_t i = 0; i < spec.benchmarks.size(); ++i) {
        gens_.emplace_back(profileByName(spec.benchmarks[i]),
                           static_cast<CoreId>(i), params,
                           seed + 0x1000 * i);
    }
}

MemAccess
MixWorkload::next(CoreId core)
{
    MC_ASSERT(core < gens_.size());
    return gens_[core].next();
}

void
MixWorkload::beginEpoch(EpochId epoch)
{
    for (auto &gen : gens_)
        gen.beginEpoch(epoch);
}

std::uint32_t
MixWorkload::numCores() const
{
    return static_cast<std::uint32_t>(gens_.size());
}

std::unique_ptr<Workload>
MixWorkload::clone() const
{
    return std::make_unique<MixWorkload>(*this);
}

CoreRefGenerator &
MixWorkload::core(CoreId core)
{
    MC_ASSERT(core < gens_.size());
    return gens_[core];
}

// --- MultithreadedWorkload ----------------------------------------

MultithreadedWorkload::MultithreadedWorkload(
    const BenchmarkProfile &profile, std::uint32_t num_threads,
    const GeneratorParams &params, std::uint64_t seed)
    : profile_(profile), params_(params), appRng_(seed)
{
    MC_ASSERT(profile.multithreaded);
    gens_.reserve(num_threads);
    for (std::uint32_t t = 0; t < num_threads; ++t) {
        // Fixed per-thread footprint offset: the spatial sigma of
        // Table 4.
        const double offset = profile.l2SigmaS * appRng_.gaussian();
        gens_.emplace_back(profile, static_cast<CoreId>(t), params,
                           seed + 0x2000 * (t + 1), offset);
    }
    refreshSharedRegion(0);
}

void
MultithreadedWorkload::refreshSharedRegion(EpochId epoch)
{
    // The shared region lives in its own range, common to every
    // thread, and breathes with the application's temporal sigma.
    const double f2 = clampFraction(profile_.l2Acf +
                                    profile_.l2SigmaT *
                                        appRng_.gaussian());
    const double f3 = clampFraction(profile_.l3Acf +
                                    profile_.l3SigmaT *
                                        appRng_.gaussian());
    const double d2 = demandFromAcf(f2, params_.invertAcfDemand);
    const double d3 = demandFromAcf(f3, params_.invertAcfDemand);

    shared_.hot = CoreRefGenerator::layoutWorkingSet(
        Addr{1} << 52, d2, f2, params_.l2SliceLines,
        params_.l2CoverageFactor, params_.acfvBits);
    const auto drift = static_cast<Addr>(
        params_.driftFraction *
        static_cast<double>(shared_.hot.spanLines()));
    shared_.hot.base += drift * epoch;

    shared_.mid = CoreRefGenerator::layoutWorkingSet(
        shared_.hot.base + shared_.hot.spanLines() + 4096, d3, f3,
        params_.l3SliceLines, params_.l3CoverageFactor,
        params_.acfvBits);
    shared_.fraction = profile_.sharedFraction;
    for (auto &gen : gens_)
        gen.setSharedRegion(shared_);
}

MemAccess
MultithreadedWorkload::next(CoreId core)
{
    MC_ASSERT(core < gens_.size());
    return gens_[core].next();
}

void
MultithreadedWorkload::beginEpoch(EpochId epoch)
{
    refreshSharedRegion(epoch);
    for (auto &gen : gens_)
        gen.beginEpoch(epoch);
}

std::uint32_t
MultithreadedWorkload::numCores() const
{
    return static_cast<std::uint32_t>(gens_.size());
}

std::unique_ptr<Workload>
MultithreadedWorkload::clone() const
{
    return std::make_unique<MultithreadedWorkload>(*this);
}

CoreRefGenerator &
MultithreadedWorkload::thread(CoreId core)
{
    MC_ASSERT(core < gens_.size());
    return gens_[core];
}

// --- SoloWorkload -------------------------------------------------

SoloWorkload::SoloWorkload(const BenchmarkProfile &profile,
                           const GeneratorParams &params,
                           std::uint64_t seed)
    : gen_(profile, 0, params, seed)
{
}

MemAccess
SoloWorkload::next(CoreId core)
{
    MC_ASSERT(core == 0);
    return gen_.next();
}

void
SoloWorkload::beginEpoch(EpochId epoch)
{
    gen_.beginEpoch(epoch);
}

std::unique_ptr<Workload>
SoloWorkload::clone() const
{
    return std::make_unique<SoloWorkload>(*this);
}

namespace {

void
saveWorkingSet(CkptWriter &w, const WorkingSet &set)
{
    w.u64(set.base);
    w.u64(set.chunkCount);
    w.u64(set.chunkLines);
    w.u64(set.stride);
}

void
loadWorkingSet(CkptReader &r, WorkingSet &set)
{
    set.base = r.u64();
    set.chunkCount = r.u64();
    set.chunkLines = r.u64();
    set.stride = r.u64();
    if (set.chunkLines == 0 || set.stride < set.chunkLines)
        r.fail("working-set geometry invalid (chunkLines " +
               std::to_string(set.chunkLines) + ", stride " +
               std::to_string(set.stride) + ")");
}

} // namespace

void
CoreRefGenerator::saveState(CkptWriter &w) const
{
    rng_.saveState(w);
    saveWorkingSet(w, hot_);
    saveWorkingSet(w, mid_);
    w.u64(midPos_);
    w.u64(sharedMidPos_);
    w.u64(streamPtr_);
    w.b(inLowPhase_);
    w.f64(noise2_);
    w.f64(noise3_);
    saveWorkingSet(w, shared_.hot);
    saveWorkingSet(w, shared_.mid);
    w.f64(shared_.fraction);
    w.b(lastShared_);
    w.u64Vec(ring_);
    w.u64(ringShared_.size());
    for (std::size_t i = 0; i < ringShared_.size(); ++i)
        w.b(ringShared_[i]);
    w.u64(ringNext_);
}

void
CoreRefGenerator::loadState(CkptReader &r)
{
    rng_.loadState(r);
    loadWorkingSet(r, hot_);
    loadWorkingSet(r, mid_);
    midPos_ = r.u64();
    sharedMidPos_ = r.u64();
    streamPtr_ = r.u64();
    inLowPhase_ = r.b();
    noise2_ = r.f64();
    noise3_ = r.f64();
    loadWorkingSet(r, shared_.hot);
    loadWorkingSet(r, shared_.mid);
    shared_.fraction = r.f64();
    lastShared_ = r.b();
    std::vector<std::uint64_t> ring = r.u64Vec();
    if (ring.size() != ring_.size())
        r.fail("recency ring size mismatch: expected " +
               std::to_string(ring_.size()) + ", found " +
               std::to_string(ring.size()));
    ring_ = std::move(ring);
    r.expectU64("recency ring flag count", ringShared_.size());
    for (std::size_t i = 0; i < ringShared_.size(); ++i)
        ringShared_[i] = r.b();
    ringNext_ = static_cast<std::uint32_t>(r.u64());
    if (ringNext_ >= ring_.size() && !ring_.empty())
        r.fail("recency ring cursor out of range");
}

void
MixWorkload::saveState(CkptWriter &w) const
{
    w.u64(gens_.size());
    for (const CoreRefGenerator &gen : gens_)
        gen.saveState(w);
}

void
MixWorkload::loadState(CkptReader &r)
{
    r.expectU64("mix generator count", gens_.size());
    for (CoreRefGenerator &gen : gens_)
        gen.loadState(r);
}

void
MultithreadedWorkload::saveState(CkptWriter &w) const
{
    appRng_.saveState(w);
    saveWorkingSet(w, shared_.hot);
    saveWorkingSet(w, shared_.mid);
    w.f64(shared_.fraction);
    w.u64(gens_.size());
    for (const CoreRefGenerator &gen : gens_)
        gen.saveState(w);
}

void
MultithreadedWorkload::loadState(CkptReader &r)
{
    appRng_.loadState(r);
    loadWorkingSet(r, shared_.hot);
    loadWorkingSet(r, shared_.mid);
    shared_.fraction = r.f64();
    r.expectU64("thread generator count", gens_.size());
    for (CoreRefGenerator &gen : gens_)
        gen.loadState(r);
}

} // namespace morphcache

#include "check/invariant.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "common/bitops.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "hierarchy/hierarchy.hh"

namespace morphcache {

namespace {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return std::string(buf);
}

void
add(std::vector<Violation> &out, InvariantKind kind,
    std::string message)
{
    out.push_back(Violation{kind, std::move(message)});
}

} // namespace

CheckPolicy
checkPolicyFromName(const std::string &name)
{
    if (name == "off")
        return CheckPolicy::Off;
    if (name == "log")
        return CheckPolicy::Log;
    if (name == "recover")
        return CheckPolicy::Recover;
    if (name == "abort")
        return CheckPolicy::Abort;
    throw ConfigError("unknown check policy '" + name +
                      "' (expected off|log|recover|abort)");
}

const char *
checkPolicyName(CheckPolicy policy)
{
    switch (policy) {
      case CheckPolicy::Off: return "off";
      case CheckPolicy::Log: return "log";
      case CheckPolicy::Recover: return "recover";
      case CheckPolicy::Abort: return "abort";
    }
    return "?";
}

const char *
invariantKindName(InvariantKind kind)
{
    switch (kind) {
      case InvariantKind::PartitionValidity: return "partition";
      case InvariantKind::GroupShape: return "group-shape";
      case InvariantKind::Inclusion: return "inclusion";
      case InvariantKind::LineConservation: return "line-conservation";
      case InvariantKind::SliceOverflow: return "slice-overflow";
    }
    return "?";
}

InvariantChecker::InvariantChecker(CheckPolicy policy)
    : policy_(policy)
{
}

void
InvariantChecker::checkPartition(const char *level,
                                 const Partition &partition,
                                 std::uint32_t num_slices,
                                 std::vector<Violation> &out) const
{
    std::vector<std::uint32_t> seen(num_slices, 0);
    std::uint64_t members = 0;
    for (std::size_t g = 0; g < partition.size(); ++g) {
        const auto &group = partition[g];
        if (group.empty()) {
            add(out, InvariantKind::PartitionValidity,
                format("%s group %zu is empty", level, g));
            continue;
        }
        if (!std::is_sorted(group.begin(), group.end())) {
            add(out, InvariantKind::PartitionValidity,
                format("%s group %zu members out of order", level,
                       g));
        }
        for (SliceId member : group) {
            ++members;
            if (member >= num_slices) {
                add(out, InvariantKind::PartitionValidity,
                    format("%s group %zu names slice %u outside "
                           "[0, %u)",
                           level, g, member, num_slices));
            } else if (++seen[member] == 2) {
                // Report each duplicated slice once.
                add(out, InvariantKind::PartitionValidity,
                    format("%s slice %u appears in more than one "
                           "group",
                           level, member));
            }
        }
    }
    if (members != num_slices) {
        for (std::uint32_t s = 0; s < num_slices; ++s) {
            if (seen[s] == 0) {
                add(out, InvariantKind::PartitionValidity,
                    format("%s slice %u missing from the partition",
                           level, s));
            }
        }
    }
}

void
InvariantChecker::checkGroupShapes(const char *level,
                                   const Partition &partition,
                                   ShapeRule rule,
                                   std::vector<Violation> &out) const
{
    if (rule == ShapeRule::Any)
        return;
    for (std::size_t g = 0; g < partition.size(); ++g) {
        const auto &group = partition[g];
        if (group.empty())
            continue; // already a partition violation
        const bool contiguous =
            static_cast<std::size_t>(group.back() - group.front()) +
                1 ==
            group.size();
        if (!contiguous) {
            add(out, InvariantKind::GroupShape,
                format("%s group %zu [%u..%u] is not a contiguous "
                       "range",
                       level, g, group.front(), group.back()));
            continue;
        }
        if (rule == ShapeRule::AlignedPow2) {
            const auto size =
                static_cast<std::uint32_t>(group.size());
            if (!isPowerOf2(size) || group.front() % size != 0) {
                add(out, InvariantKind::GroupShape,
                    format("%s group %zu (base %u, size %u) is not "
                           "an aligned power-of-two range",
                           level, g, group.front(), size));
            }
        }
    }
}

std::vector<Violation>
InvariantChecker::checkTopology(const Topology &topology,
                                ShapeRule rule) const
{
    std::vector<Violation> out;
    checkPartition("L2", topology.l2, topology.numCores, out);
    checkPartition("L3", topology.l3, topology.numCores, out);
    checkGroupShapes("L2", topology.l2, rule, out);
    checkGroupShapes("L3", topology.l3, rule, out);

    // Inclusiveness (Sections 2.2/2.3): every L2 group lives inside
    // one L3 group. Only meaningful for slices the partitions
    // actually cover, so compute membership defensively.
    std::vector<std::uint32_t> l3_of(topology.numCores,
                                     ~std::uint32_t{0});
    for (std::size_t g = 0; g < topology.l3.size(); ++g) {
        for (SliceId member : topology.l3[g]) {
            if (member < topology.numCores)
                l3_of[member] = static_cast<std::uint32_t>(g);
        }
    }
    for (std::size_t g = 0; g < topology.l2.size(); ++g) {
        const auto &group = topology.l2[g];
        if (group.empty() || group.front() >= topology.numCores)
            continue;
        const std::uint32_t home = l3_of[group.front()];
        for (SliceId member : group) {
            if (member >= topology.numCores)
                continue;
            if (l3_of[member] != home) {
                add(out, InvariantKind::Inclusion,
                    format("L2 group %zu straddles L3 groups (slice "
                           "%u vs slice %u)",
                           g, group.front(), member));
                break;
            }
        }
    }
    return out;
}

InvariantChecker::LineSnapshot
InvariantChecker::snapshot(const Hierarchy &hierarchy)
{
    LineSnapshot snap;
    const std::uint32_t n = hierarchy.numCores();
    snap.l2Lines.reserve(n);
    snap.l3Lines.reserve(n);
    for (std::uint32_t s = 0; s < n; ++s) {
        snap.l2Lines.push_back(
            hierarchy.l2().slice(static_cast<SliceId>(s))
                .validLineCount());
        snap.l3Lines.push_back(
            hierarchy.l3().slice(static_cast<SliceId>(s))
                .validLineCount());
    }
    return snap;
}

namespace {

void
checkLevelConservation(const char *level_name,
                       const CacheLevelModel &level,
                       const std::vector<std::uint64_t> &before,
                       std::vector<Violation> &out)
{
    const std::uint64_t capacity = level.params().sliceGeom.numLines();
    for (std::uint32_t s = 0; s < level.numSlices(); ++s) {
        const std::uint64_t now =
            level.slice(static_cast<SliceId>(s)).validLineCount();
        if (now > capacity) {
            out.push_back(Violation{
                InvariantKind::SliceOverflow,
                format("%s slice %u holds %llu lines, capacity %llu",
                       level_name, s,
                       static_cast<unsigned long long>(now),
                       static_cast<unsigned long long>(capacity))});
        }
        if (s < before.size() && now > before[s]) {
            out.push_back(Violation{
                InvariantKind::LineConservation,
                format("%s slice %u grew from %llu to %llu valid "
                       "lines across a reconfiguration",
                       level_name, s,
                       static_cast<unsigned long long>(before[s]),
                       static_cast<unsigned long long>(now))});
        }
    }
}

} // namespace

std::vector<Violation>
InvariantChecker::checkConservation(const Hierarchy &hierarchy,
                                    const LineSnapshot &before) const
{
    std::vector<Violation> out;
    checkLevelConservation("L2", hierarchy.l2(), before.l2Lines, out);
    checkLevelConservation("L3", hierarchy.l3(), before.l3Lines, out);
    return out;
}

std::vector<Violation>
InvariantChecker::checkOccupancy(const Hierarchy &hierarchy) const
{
    std::vector<Violation> out;
    checkLevelConservation("L2", hierarchy.l2(), {}, out);
    checkLevelConservation("L3", hierarchy.l3(), {}, out);
    return out;
}

bool
InvariantChecker::report(const char *where,
                         const std::vector<Violation> &violations)
{
    ++stats_.checksRun;
    if (violations.empty())
        return false;
    stats_.violations += violations.size();
    for (const Violation &v : violations) {
        stats_.byKind[static_cast<std::size_t>(v.kind)] += 1;
        if (policy_ != CheckPolicy::Off) {
            warn("invariant violation [%s] at %s: %s",
                 invariantKindName(v.kind), where,
                 v.message.c_str());
        }
    }
    if (policy_ == CheckPolicy::Abort) {
        panic("invariant violation at %s: %s (checking policy "
              "'abort')",
              where, violations.front().message.c_str());
    }
    return true;
}

} // namespace morphcache

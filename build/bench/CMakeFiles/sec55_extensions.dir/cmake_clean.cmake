file(REMOVE_RECURSE
  "CMakeFiles/sec55_extensions.dir/sec55_extensions.cc.o"
  "CMakeFiles/sec55_extensions.dir/sec55_extensions.cc.o.d"
  "sec55_extensions"
  "sec55_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "sim/energy.hh"

namespace morphcache {

EnergyBreakdown
accountEnergy(const Hierarchy &hierarchy, const EnergyParams &params)
{
    EnergyBreakdown out;

    std::uint64_t l1_accesses = 0;
    std::uint64_t mem_accesses = 0;
    for (std::uint32_t c = 0; c < hierarchy.numCores(); ++c) {
        const CoreStats &stats =
            hierarchy.coreStats(static_cast<CoreId>(c));
        l1_accesses += stats.accesses; // every reference probes L1
        mem_accesses += stats.memAccesses;
    }
    out.l1 = static_cast<double>(l1_accesses) * params.l1AccessPj;
    out.memory =
        static_cast<double>(mem_accesses) * params.memAccessPj;

    const LevelStats &l2 = hierarchy.l2().stats();
    const LevelStats &l3 = hierarchy.l3().stats();
    out.l2 = static_cast<double>(l2.sliceProbes) *
             params.l2SliceAccessPj;
    out.l3 = static_cast<double>(l3.sliceProbes) *
             params.l3SliceAccessPj;
    out.bus = static_cast<double>(l2.busEvents + l3.busEvents) *
                  params.busBasePj +
              static_cast<double>(l2.busSpanTiles +
                                  l3.busSpanTiles) *
                  params.busPerTilePj;
    return out;
}

} // namespace morphcache

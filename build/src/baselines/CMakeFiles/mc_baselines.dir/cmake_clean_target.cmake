file(REMOVE_RECURSE
  "libmc_baselines.a"
)

/**
 * @file
 * Status/error reporting in the gem5 tradition.
 *
 * panic()  - an internal invariant of the simulator was violated;
 *            aborts so the failure can be debugged.
 * fatal()  - the *user* supplied an impossible configuration; exits
 *            with an error code.
 * warn()   - something questionable happened but simulation can
 *            continue.
 * inform() - plain status output.
 */

#ifndef MORPHCACHE_COMMON_LOGGING_HH
#define MORPHCACHE_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace morphcache {

/** Print "panic: <msg>" to stderr and abort(). */
[[noreturn]] void panic(const char *fmt, ...);

/** Print "fatal: <msg>" to stderr and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print "warn: <msg>" to stderr. */
void warn(const char *fmt, ...);

/** Print an informational message to stderr. */
void inform(const char *fmt, ...);

/**
 * Assert a simulator invariant.
 *
 * Unlike the C assert macro this stays active in release builds; the
 * simulator is cheap enough that correctness checks are always worth
 * their cost.
 */
#define MC_ASSERT(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::morphcache::panic("assertion '%s' failed at %s:%d",       \
                                #cond, __FILE__, __LINE__);             \
        }                                                               \
    } while (0)

} // namespace morphcache

#endif // MORPHCACHE_COMMON_LOGGING_HH

/**
 * @file
 * morphcache_sim — command-line driver for the simulator.
 *
 * Runs any workload under any scheme and reports throughput, IPCs,
 * and reconfiguration activity; optionally dumps per-epoch series
 * as CSV.
 *
 * Usage:
 *   morphcache_sim [options]
 *     --workload mix:<1..12> | parsec:<name> | trace:<file>
 *                                        (default mix:8)
 *     --scheme morph | static:<x>:<y>:<z> | pipp | dsr | ucp
 *                                        (default morph)
 *     --cores N          core count (default 16)
 *     --epochs N         recorded epochs (default 12)
 *     --refs N           references per core per epoch (default 24000)
 *     --seed N           RNG seed (default 42)
 *     --paper-scale      Table 3 capacities verbatim
 *     --csv FILE         dump per-epoch throughput/misses as CSV
 *     --record FILE      record the workload to a trace file and exit
 *
 * Sweep mode (deterministic parallel experiment runner):
 *     --sweep            run a mix × seed sweep of the chosen
 *                        scheme instead of a single run; stdout is
 *                        byte-identical for any --jobs value
 *     --mixes A-B        mix range swept (default 1-12)
 *     --sweep-seeds K    seed replicas per mix (default 1); cell
 *                        seeds derive from --seed via
 *                        splitMix64(seed ^ cellIndex)
 *     --jobs N           worker threads (default: all hardware
 *                        threads)
 *     with --stats-out FILE, writes a JSON array holding every
 *     cell's stats registry, in cell order
 *
 * Observability options:
 *     --trace FILE       decision-provenance event trace
 *     --trace-format F   jsonl (default) | chrome (about://tracing)
 *     --trace-summary FILE   summarize a JSONL trace (per-epoch
 *                            event counts) and exit
 *     --stats-out FILE   dump the stats registry; .csv extension
 *                        selects CSV, anything else JSON
 *     --stats-epochs     print the per-epoch registry CSV to stdout
 *     --profile          enable phase profiling and report it
 *     -v / -q            verbose / quiet logging (MC_LOG_LEVEL env
 *                        sets the default)
 *
 * Robustness options (morph scheme):
 *     --check off|log|recover|abort   invariant-check policy
 *                                        (default off)
 *     --quarantine N     clean epochs held in the all-private
 *                        quarantine topology before re-entering
 *                        adaptation (default 4)
 *     --inject-seed N        fault-injection RNG seed (default 1)
 *     --inject-acfv N        ACFV bits flipped per level per epoch
 *     --inject-class P       probability a classification inverts
 *     --inject-illegal P     probability an epoch's proposal is
 *                            corrupted into an illegal topology
 *     --inject-bus-drop P    probability a bus grant is dropped
 *     --inject-bus-delay P   probability a bus grant is delayed
 *
 * Examples:
 *   morphcache_sim --workload mix:8 --scheme morph
 *   morphcache_sim --workload parsec:dedup --scheme static:4:4:1
 *   morphcache_sim --workload mix:1 --record mix01.mctrace
 *   morphcache_sim --workload trace:mix01.mctrace --scheme dsr
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "check/fault.hh"
#include "check/invariant.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "runner/sim_sweep.hh"
#include "sim/config.hh"
#include "sim/simulation.hh"
#include "stats/profiler.hh"
#include "stats/registry.hh"
#include "stats/report.hh"
#include "stats/tracing.hh"
#include "workload/trace.hh"

using namespace morphcache;

namespace {

struct Options
{
    std::string workload = "mix:8";
    std::string scheme = "morph";
    std::uint32_t cores = 16;
    std::uint32_t epochs = 12;
    std::uint64_t refs = 24000;
    std::uint64_t seed = 42;
    bool paperScale = false;
    std::string csvPath;
    std::string recordPath;
    std::string checkPolicy = "off";
    std::uint32_t quarantine = 4;
    FaultConfig faults;
    std::string tracePath;
    std::string traceFormat = "jsonl";
    std::string traceSummaryPath;
    std::string statsOutPath;
    bool statsEpochs = false;
    bool profile = false;
    bool sweep = false;
    std::uint32_t mixLo = 1;
    std::uint32_t mixHi = 12;
    std::uint32_t sweepSeeds = 1;
    /** Worker threads; 0 = hardware_concurrency. */
    unsigned jobs = 0;
};

/**
 * Captures warn/inform/verbose messages as structured "log" trace
 * events while still printing them to stderr.
 */
class TraceLogSink : public LogSink
{
  public:
    explicit TraceLogSink(Tracer &tracer) : tracer_(tracer) {}

    void
    message(const char *kind, const char *text) override
    {
        logToStderr(kind, text);
        if (tracer_.enabled()) {
            TraceEvent ev("log");
            ev.str("kind", kind).str("text", text);
            tracer_.emit(ev);
        }
    }

  private:
    Tracer &tracer_;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload mix:N|parsec:NAME|trace:FILE]"
                 " [--scheme morph|static:X:Y:Z|pipp|dsr]\n"
                 "          [--cores N] [--epochs N] [--refs N] "
                 "[--seed N] [--paper-scale] [--csv FILE]\n"
                 "          [--record FILE]\n"
                 "          [--check off|log|recover|abort] "
                 "[--quarantine N] [--inject-seed N]\n"
                 "          [--inject-acfv N] [--inject-class P] "
                 "[--inject-illegal P]\n"
                 "          [--inject-bus-drop P] "
                 "[--inject-bus-delay P]\n"
                 "          [--trace FILE] [--trace-format "
                 "jsonl|chrome] [--trace-summary FILE]\n"
                 "          [--stats-out FILE] [--stats-epochs] "
                 "[--profile] [-v] [-q]\n"
                 "          [--sweep] [--mixes A-B] [--sweep-seeds "
                 "K] [--jobs N]\n",
                 argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both `--opt value` and `--opt=value`.
        std::string eq_value;
        bool has_eq = false;
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                eq_value = arg.substr(eq + 1);
                arg = arg.substr(0, eq);
                has_eq = true;
            }
        }
        auto value = [&]() -> std::string {
            if (has_eq)
                return eq_value;
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--workload") {
            opts.workload = value();
        } else if (arg == "--scheme") {
            opts.scheme = value();
        } else if (arg == "--cores") {
            opts.cores = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--epochs") {
            opts.epochs = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--refs") {
            opts.refs = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--seed") {
            opts.seed = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--paper-scale") {
            opts.paperScale = true;
        } else if (arg == "--csv") {
            opts.csvPath = value();
        } else if (arg == "--record") {
            opts.recordPath = value();
        } else if (arg == "--check") {
            opts.checkPolicy = value();
        } else if (arg == "--quarantine") {
            opts.quarantine = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--inject-seed") {
            opts.faults.seed =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--inject-acfv") {
            opts.faults.acfvFlipsPerEpoch =
                static_cast<std::uint32_t>(
                    std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--inject-class") {
            opts.faults.classificationFlipChance =
                std::strtod(value().c_str(), nullptr);
        } else if (arg == "--inject-illegal") {
            opts.faults.illegalTopologyChance =
                std::strtod(value().c_str(), nullptr);
        } else if (arg == "--inject-bus-drop") {
            opts.faults.busDropChance =
                std::strtod(value().c_str(), nullptr);
        } else if (arg == "--inject-bus-delay") {
            opts.faults.busDelayChance =
                std::strtod(value().c_str(), nullptr);
        } else if (arg == "--trace") {
            opts.tracePath = value();
        } else if (arg == "--trace-format") {
            opts.traceFormat = value();
            if (opts.traceFormat != "jsonl" &&
                opts.traceFormat != "chrome") {
                std::fprintf(stderr,
                             "bad --trace-format '%s' (expected "
                             "jsonl or chrome)\n",
                             opts.traceFormat.c_str());
                usage(argv[0]);
            }
        } else if (arg == "--trace-summary") {
            opts.traceSummaryPath = value();
        } else if (arg == "--stats-out") {
            opts.statsOutPath = value();
        } else if (arg == "--stats-epochs") {
            opts.statsEpochs = true;
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--sweep") {
            opts.sweep = true;
        } else if (arg == "--mixes") {
            const std::string spec = value();
            unsigned lo = 0, hi = 0;
            if (std::sscanf(spec.c_str(), "%u-%u", &lo, &hi) == 2) {
                opts.mixLo = lo;
                opts.mixHi = hi;
            } else if (std::sscanf(spec.c_str(), "%u", &lo) == 1) {
                opts.mixLo = opts.mixHi = lo;
            } else {
                std::fprintf(stderr, "bad --mixes '%s'\n",
                             spec.c_str());
                usage(argv[0]);
            }
            if (opts.mixLo < 1 || opts.mixHi > 12 ||
                opts.mixLo > opts.mixHi) {
                std::fprintf(stderr,
                             "--mixes range must lie in 1-12\n");
                usage(argv[0]);
            }
        } else if (arg == "--sweep-seeds") {
            opts.sweepSeeds = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
            if (opts.sweepSeeds == 0) {
                std::fprintf(stderr,
                             "--sweep-seeds must be nonzero\n");
                usage(argv[0]);
            }
        } else if (arg == "--jobs" || arg == "-j") {
            opts.jobs = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2 &&
                   arg.find_first_not_of("0123456789", 2) ==
                       std::string::npos) {
            // make-style attached form: -j8
            opts.jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 2, nullptr, 10));
        } else if (arg == "-v" || arg == "--verbose") {
            setLogLevel(LogLevel::Verbose);
        } else if (arg == "-q" || arg == "--quiet") {
            setLogLevel(LogLevel::Quiet);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
        }
    }
    return opts;
}

std::unique_ptr<Workload>
makeWorkload(const Options &opts, const GeneratorParams &gen,
             bool &shared_space)
{
    shared_space = false;
    const auto colon = opts.workload.find(':');
    if (colon == std::string::npos)
        fatal("bad --workload '%s'", opts.workload.c_str());
    const std::string kind = opts.workload.substr(0, colon);
    const std::string spec = opts.workload.substr(colon + 1);

    if (kind == "mix") {
        char name[16];
        std::snprintf(name, sizeof(name), "MIX %02d",
                      std::atoi(spec.c_str()));
        MixSpec mix = mixByName(name);
        if (opts.cores < mix.benchmarks.size())
            mix.benchmarks.resize(opts.cores);
        return std::make_unique<MixWorkload>(mix, gen, opts.seed);
    }
    if (kind == "parsec") {
        const BenchmarkProfile &profile = profileByName(spec);
        if (!profile.multithreaded)
            fatal("'%s' is not a PARSEC benchmark", spec.c_str());
        shared_space = true;
        return std::make_unique<MultithreadedWorkload>(
            profile, opts.cores, gen, opts.seed);
    }
    if (kind == "trace") {
        Trace trace = readTrace(spec);
        return std::make_unique<TraceWorkload>(std::move(trace));
    }
    fatal("unknown workload kind '%s'", kind.c_str());
}

MorphConfig
morphConfigFromOpts(const Options &opts, bool shared_space)
{
    MorphConfig config;
    config.sharedAddressSpace = shared_space;
    config.checkPolicy = checkPolicyFromName(opts.checkPolicy);
    config.quarantineCleanEpochs = opts.quarantine;
    config.faults = opts.faults;
    return config;
}

std::unique_ptr<MemorySystem>
makeSystem(const Options &opts, const HierarchyParams &hier,
           bool shared_space, const MorphCacheSystem **morph_out)
{
    std::unique_ptr<MemorySystem> system =
        makeSchemeSystem(opts.scheme, hier, opts.cores,
                         morphConfigFromOpts(opts, shared_space));
    *morph_out =
        dynamic_cast<const MorphCacheSystem *>(system.get());
    return system;
}

/**
 * Canonical run-configuration description hashed into the
 * `config=<hash>` half of the reproducibility stamp. Everything
 * that changes simulated behaviour belongs here.
 */
std::string
configDescription(const Options &opts)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "workload=%s scheme=%s cores=%u epochs=%u refs=%llu "
        "paperScale=%d check=%s quarantine=%u injectSeed=%llu "
        "injectAcfv=%u injectClass=%g injectIllegal=%g "
        "injectBusDrop=%g injectBusDelay=%g",
        opts.workload.c_str(), opts.scheme.c_str(), opts.cores,
        opts.epochs, static_cast<unsigned long long>(opts.refs),
        opts.paperScale ? 1 : 0, opts.checkPolicy.c_str(),
        opts.quarantine,
        static_cast<unsigned long long>(opts.faults.seed),
        opts.faults.acfvFlipsPerEpoch,
        opts.faults.classificationFlipChance,
        opts.faults.illegalTopologyChance, opts.faults.busDropChance,
        opts.faults.busDelayChance);
    return buf;
}

/**
 * Sweep mode: fan mix × seed cells of the chosen scheme across the
 * worker pool. Everything written to stdout is a pure function of
 * the cell list, so the bytes are identical for any --jobs value;
 * wall-clock telemetry goes to stderr.
 */
int
runSweep(const Options &opts)
{
    const HierarchyParams hier = opts.paperScale
                                     ? paperScaleHierarchy(opts.cores)
                                     : fastScaleHierarchy(opts.cores);
    const GeneratorParams gen = generatorFor(hier);
    SimParams sim;
    sim.epochs = opts.epochs;
    sim.refsPerEpochPerCore = opts.refs;

    const std::string base_desc = configDescription(opts);

    std::vector<std::unique_ptr<Workload>> prototypes;
    std::vector<SimCellSpec> cells;
    std::uint64_t cell_index = 0;
    for (std::uint32_t rep = 0; rep < opts.sweepSeeds; ++rep) {
        for (std::uint32_t m = opts.mixLo; m <= opts.mixHi; ++m) {
            const std::uint64_t seed =
                sweepCellSeed(opts.seed, cell_index);
            char name[16];
            std::snprintf(name, sizeof(name), "MIX %02d", m);
            MixSpec mix = mixByName(name);
            if (opts.cores < mix.benchmarks.size())
                mix.benchmarks.resize(opts.cores);
            prototypes.push_back(
                std::make_unique<MixWorkload>(mix, gen, seed));

            SimCellSpec spec;
            char label[64];
            std::snprintf(label, sizeof(label),
                          "mix:%02u seed=%llu", m,
                          static_cast<unsigned long long>(seed));
            spec.label = label;
            spec.workload = prototypes.back().get();
            spec.scheme = opts.scheme;
            spec.hier = hier;
            spec.sim = sim;
            spec.morph = morphConfigFromOpts(opts, false);
            spec.seed = seed;
            char desc[640];
            std::snprintf(desc, sizeof(desc), "%s cell=%llu mix=%u",
                          base_desc.c_str(),
                          static_cast<unsigned long long>(cell_index),
                          m);
            spec.configDesc = desc;
            spec.wantStatsJson = !opts.statsOutPath.empty();
            cells.push_back(std::move(spec));
            ++cell_index;
        }
    }

    const auto wall_start = std::chrono::steady_clock::now();
    const auto results = runSimSweep(cells, opts.jobs);
    const double wall_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    std::printf("sweep      : %zu cells (mixes %u-%u x %u seeds), "
                "scheme %s\n",
                cells.size(), opts.mixLo, opts.mixHi,
                opts.sweepSeeds, opts.scheme.c_str());
    std::size_t failed = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &cell = results[i];
        if (!cell.ok()) {
            ++failed;
            std::printf("cell %3zu   : %-24s FAILED: %s\n", i,
                        cells[i].label.c_str(),
                        cell.error.c_str());
            continue;
        }
        const SimCellResult &r = *cell.value;
        std::printf("cell %3zu   : %-24s throughput=%.6f "
                    "performance=%.6f final=%s",
                    i, r.label.c_str(), r.run.avgThroughput,
                    r.run.performance, r.finalTopology.c_str());
        if (opts.scheme == "morph") {
            std::printf(" merges=%llu splits=%llu",
                        static_cast<unsigned long long>(
                            r.reconfig.merges),
                        static_cast<unsigned long long>(
                            r.reconfig.splits));
        }
        std::printf("\n");
    }
    if (failed > 0)
        std::printf("sweep      : %zu of %zu cells FAILED\n", failed,
                    results.size());

    if (!opts.statsOutPath.empty()) {
        std::string doc = "[\n";
        bool first = true;
        for (const auto &cell : results) {
            if (!cell.ok())
                continue;
            if (!first)
                doc += ",\n";
            first = false;
            doc += cell.value->statsJson;
        }
        doc += "\n]\n";
        FILE *out = std::fopen(opts.statsOutPath.c_str(), "w");
        if (!out) {
            fatal("cannot write '%s'", opts.statsOutPath.c_str());
        }
        std::fwrite(doc.data(), 1, doc.size(), out);
        std::fclose(out);
        // The path differs between -j runs being diffed, so this
        // confirmation stays out of the deterministic stdout stream.
        std::fprintf(stderr, "stats registries written to %s\n",
                     opts.statsOutPath.c_str());
    }

    // Timing is real wall-clock and must stay out of the
    // deterministic stdout byte stream.
    std::fprintf(stderr,
                 "sweep: %zu cells on %u jobs in %.2f s\n",
                 cells.size(),
                 opts.jobs > 0 ? opts.jobs
                               : ThreadPool::defaultThreads(),
                 wall_s);
    return failed == 0 ? 0 : 1;
}

} // namespace

int
run(const Options &opts)
{
    if (!opts.traceSummaryPath.empty()) {
        const TraceSummary summary =
            summarizeTraceFile(opts.traceSummaryPath);
        std::printf("%s", formatTraceSummary(summary).c_str());
        return 0;
    }

    if (opts.sweep)
        return runSweep(opts);

    HierarchyParams hier = opts.paperScale
                               ? paperScaleHierarchy(opts.cores)
                               : fastScaleHierarchy(opts.cores);
    const GeneratorParams gen = generatorFor(hier);

    bool shared_space = false;
    std::unique_ptr<Workload> workload =
        makeWorkload(opts, gen, shared_space);
    hier.coherence = shared_space;

    if (!opts.recordPath.empty()) {
        const Trace trace =
            recordTrace(*workload, opts.epochs, opts.refs);
        writeTrace(trace, opts.recordPath);
        std::printf("recorded %llu references (%u epochs x %u "
                    "cores) to %s\n",
                    static_cast<unsigned long long>(
                        trace.totalReferences()),
                    opts.epochs, workload->numCores(),
                    opts.recordPath.c_str());
        return 0;
    }

    const MorphCacheSystem *morph = nullptr;
    std::unique_ptr<MemorySystem> system =
        makeSystem(opts, hier, shared_space, &morph);

    const std::string config_hash =
        configHashHex(configDescription(opts));

    StatsRegistry registry;
    StatsMeta meta;
    meta.seed = opts.seed;
    meta.configHash = config_hash;
    registry.setMeta(meta);
    system->registerStats(registry);

    if (opts.profile) {
        Profiler::global().setEnabled(true);
        Profiler::global().reset();
    }
    Profiler::global().registerStats(registry);

    std::unique_ptr<TraceSink> sink;
    if (!opts.tracePath.empty()) {
        if (opts.traceFormat == "chrome")
            sink = std::make_unique<ChromeTraceSink>(opts.tracePath);
        else
            sink = std::make_unique<JsonlTraceSink>(opts.tracePath);
    }
    Tracer tracer(sink.get());
    TraceLogSink log_sink(tracer);
    if (sink)
        setLogSink(&log_sink);

    SimParams sim;
    sim.epochs = opts.epochs;
    sim.refsPerEpochPerCore = opts.refs;
    Simulation simulation(*system, *workload, sim);
    simulation.setRegistry(&registry);
    if (sink)
        simulation.setTracer(&tracer);
    const RunResult result = simulation.run();

    if (sink) {
        setLogSink(nullptr);
        sink->finish();
        verbose("trace: %llu events written to %s",
                static_cast<unsigned long long>(tracer.eventCount()),
                opts.tracePath.c_str());
    }

    std::printf("workload   : %s (%u cores)\n",
                opts.workload.c_str(), workload->numCores());
    std::printf("scheme     : %s\n", system->name().c_str());
    std::printf("throughput : %.4f IPC (sum over cores)\n",
                result.avgThroughput);
    std::printf("performance: %.4f (instrs / slowest-core cycles)\n",
                result.performance);
    if (morph) {
        const auto &stats = morph->controller().stats();
        std::printf("reconfig   : %llu merges, %llu splits, %llu "
                    "asymmetric outcomes, final %s\n",
                    static_cast<unsigned long long>(stats.merges),
                    static_cast<unsigned long long>(stats.splits),
                    static_cast<unsigned long long>(
                        stats.asymmetricOutcomes),
                    morph->hierarchy().topology().name().c_str());
        const std::string robustness =
            morph->controller().robustnessReport();
        if (!robustness.empty())
            std::printf("%s", robustness.c_str());
    }

    Series tput{"throughput", {}};
    Series misses{"misses", {}};
    for (const EpochMetrics &epoch : result.epochs) {
        tput.values.push_back(epoch.throughput);
        double m = 0;
        for (auto v : epoch.misses)
            m += static_cast<double>(v);
        misses.values.push_back(m);
    }
    std::printf("%s\n", summaryLine(tput).c_str());
    if (!opts.csvPath.empty()) {
        CsvMeta csv_meta;
        csv_meta.seed = opts.seed;
        csv_meta.configHash = config_hash;
        writeCsv(opts.csvPath, {tput, misses}, &csv_meta);
        std::printf("per-epoch series written to %s\n",
                    opts.csvPath.c_str());
    }

    if (opts.profile) {
        const std::string prof = Profiler::global().report();
        if (!prof.empty())
            std::printf("%s", prof.c_str());
    }
    if (!opts.statsOutPath.empty()) {
        const bool csv =
            opts.statsOutPath.size() >= 4 &&
            opts.statsOutPath.compare(opts.statsOutPath.size() - 4,
                                      4, ".csv") == 0;
        if (csv)
            registry.writeCsv(opts.statsOutPath);
        else
            registry.writeJson(opts.statsOutPath);
        std::printf("stats registry written to %s\n",
                    opts.statsOutPath.c_str());
    }
    if (opts.statsEpochs)
        std::printf("%s", registry.csvString().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    try {
        return run(opts);
    } catch (const SimError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}

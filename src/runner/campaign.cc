#include "runner/campaign.hh"

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "ckpt/ckpt.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "runner/run_factory.hh"
#include "runner/sweep.hh"
#include "sim/simulation.hh"
#include "stats/registry.hh"

namespace morphcache {

namespace {

/** Thrown out of a cell when the interrupt flag is raised. */
struct CampaignInterrupted
{
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Find `"key":` in one of our own single-line records. */
std::size_t
findKey(const std::string &text, const char *key)
{
    const std::string token = std::string("\"") + key + "\":";
    return text.find(token) == std::string::npos
               ? std::string::npos
               : text.find(token) + token.size();
}

bool
fieldU64(const std::string &text, const char *key,
         std::uint64_t &out)
{
    const std::size_t at = findKey(text, key);
    if (at == std::string::npos)
        return false;
    out = std::strtoull(text.c_str() + at, nullptr, 10);
    return true;
}

bool
fieldF64(const std::string &text, const char *key, double &out)
{
    const std::size_t at = findKey(text, key);
    if (at == std::string::npos)
        return false;
    out = std::strtod(text.c_str() + at, nullptr);
    return true;
}

bool
fieldStr(const std::string &text, const char *key, std::string &out)
{
    std::size_t at = findKey(text, key);
    if (at == std::string::npos || at >= text.size() ||
        text[at] != '"') {
        return false;
    }
    ++at;
    out.clear();
    while (at < text.size() && text[at] != '"') {
        char c = text[at];
        if (c == '\\' && at + 1 < text.size()) {
            ++at;
            const char e = text[at];
            c = e == 'n' ? '\n' : e == 't' ? '\t' : e;
        }
        out += c;
        ++at;
    }
    return at < text.size();
}

std::string
cellCkptPath(const std::string &dir, std::size_t i)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/cell%04zu.ckpt", i);
    return dir + buf;
}

std::string
cellResultPath(const std::string &dir, std::size_t i)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "/cell%04zu.result.json", i);
    return dir + buf;
}

bool
fileExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fclose(f);
    return true;
}

std::string
hex64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Identity of a campaign: its cell labels, specs, and seeds. */
std::uint64_t
campaignHash(const std::vector<CampaignCell> &cells)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const CampaignCell &cell : cells) {
        const std::string item = cell.label + "\n" +
                                 describe(cell.spec) + "\nseed=" +
                                 std::to_string(cell.spec.seed) +
                                 "\n";
        h = fnv1a64(item.data(), item.size(), h);
    }
    return h;
}

/** What one completed (or terminally failed) cell produced. */
struct CellOutcome
{
    bool ok = false;
    bool failed = false;
    std::string label;
    std::uint64_t seed = 0;
    std::uint64_t attempts = 0;
    double throughput = 0.0;
    double performance = 0.0;
    std::string finalTopology;
    std::uint64_t merges = 0;
    std::uint64_t splits = 0;
    std::string statsJson;
    std::string error;
};

/**
 * Render an outcome as its durable result record: one JSON line of
 * scalar fields (doubles as %.17g so they re-parse bit-exactly),
 * with the raw stats-registry document nested under "stats".
 */
std::string
serializeOutcome(const CellOutcome &o)
{
    char num[64];
    std::string out = "{\"label\":\"" + jsonEscape(o.label) +
                      "\",\"seed\":" + std::to_string(o.seed) +
                      ",\"attempts\":" + std::to_string(o.attempts);
    if (o.failed) {
        out += ",\"failed\":\"" + jsonEscape(o.error) + "\"}";
        out += '\n';
        return out;
    }
    std::snprintf(num, sizeof(num), "%.17g", o.throughput);
    out += std::string(",\"throughput\":") + num;
    std::snprintf(num, sizeof(num), "%.17g", o.performance);
    out += std::string(",\"performance\":") + num;
    out += ",\"finalTopology\":\"" + jsonEscape(o.finalTopology) +
           "\",\"merges\":" + std::to_string(o.merges) +
           ",\"splits\":" + std::to_string(o.splits);
    if (!o.statsJson.empty())
        out += ",\"stats\":" + o.statsJson;
    out += "}\n";
    return out;
}

CellOutcome
parseOutcome(const std::string &path, const std::string &text)
{
    CellOutcome o;
    auto need = [&](bool ok, const char *what) {
        if (!ok) {
            throw CkptError("'" + path +
                            "': result record missing field '" +
                            what + "'");
        }
    };
    need(fieldStr(text, "label", o.label), "label");
    need(fieldU64(text, "seed", o.seed), "seed");
    need(fieldU64(text, "attempts", o.attempts), "attempts");
    if (fieldStr(text, "failed", o.error)) {
        o.failed = true;
        return o;
    }
    need(fieldF64(text, "throughput", o.throughput), "throughput");
    need(fieldF64(text, "performance", o.performance),
         "performance");
    need(fieldStr(text, "finalTopology", o.finalTopology),
         "finalTopology");
    need(fieldU64(text, "merges", o.merges), "merges");
    need(fieldU64(text, "splits", o.splits), "splits");
    const std::size_t stats = findKey(text, "stats");
    if (stats != std::string::npos) {
        const std::size_t end = text.rfind('}');
        if (end == std::string::npos || end < stats)
            throw CkptError("'" + path +
                            "': malformed stats field");
        o.statsJson = text.substr(stats, end - stats);
    }
    o.ok = true;
    return o;
}

/** Manifest fold state of one cell. */
struct CellProgress
{
    std::string status = "pending";
    std::uint64_t attempts = 0;
};

std::string
headerLine(std::size_t cells, std::uint64_t hash)
{
    return "{\"type\":\"header\",\"version\":1,\"cells\":" +
           std::to_string(cells) + ",\"campaignHash\":\"" +
           hex64(hash) + "\"}\n";
}

std::vector<CellProgress>
foldManifest(const std::string &path, std::size_t num_cells,
             std::uint64_t hash)
{
    const std::vector<std::uint8_t> bytes = readFileBytes(path);
    const std::string text(bytes.begin(), bytes.end());

    std::vector<CellProgress> progress(num_cells);
    bool sawHeader = false;
    std::size_t at = 0;
    while (at < text.size()) {
        const std::size_t nl = text.find('\n', at);
        if (nl == std::string::npos) {
            // Torn final line from a killed writer; the event it
            // carried is simply replayed by rerunning the cell.
            warn("campaign manifest '%s': ignoring torn final line",
                 path.c_str());
            break;
        }
        const std::string line = text.substr(at, nl - at);
        at = nl + 1;

        std::string type;
        if (!fieldStr(line, "type", type)) {
            warn("campaign manifest '%s': ignoring malformed line",
                 path.c_str());
            continue;
        }
        if (type == "header") {
            std::uint64_t cells = 0;
            std::string stamp;
            if (!fieldU64(line, "cells", cells) ||
                !fieldStr(line, "campaignHash", stamp)) {
                throw CkptError("'" + path +
                                "': malformed manifest header");
            }
            if (cells != num_cells) {
                throw CkptError(
                    "'" + path + "': manifest describes " +
                    std::to_string(cells) +
                    " cells but this campaign has " +
                    std::to_string(num_cells));
            }
            if (stamp != hex64(hash)) {
                throw CkptError(
                    "'" + path + "': campaign-hash mismatch: "
                    "manifest has " + stamp + ", this campaign is " +
                    hex64(hash));
            }
            sawHeader = true;
            continue;
        }
        if (type == "cell") {
            std::uint64_t index = 0;
            std::uint64_t attempts = 0;
            std::string status;
            if (!fieldU64(line, "index", index) ||
                !fieldStr(line, "status", status) ||
                !fieldU64(line, "attempts", attempts) ||
                index >= num_cells) {
                warn("campaign manifest '%s': ignoring malformed "
                     "cell event",
                     path.c_str());
                continue;
            }
            progress[index].status = status;
            progress[index].attempts = attempts;
        }
    }
    if (!sawHeader)
        throw CkptError("'" + path + "': manifest has no header");
    return progress;
}

/** Shared mutable state of one campaign execution. */
struct CampaignCtx
{
    const std::vector<CampaignCell> &cells;
    const CampaignOptions &opts;
    std::string dir;
    std::mutex manifestMutex;
    std::vector<CellOutcome> outcomes;
    std::vector<CellProgress> progress;
    std::atomic<bool> interrupted{false};
};

void
appendEvent(CampaignCtx &ctx, std::size_t index, const char *status,
            std::uint64_t attempts)
{
    char line[160];
    std::snprintf(line, sizeof(line),
                  "{\"type\":\"cell\",\"index\":%zu,\"status\":"
                  "\"%s\",\"attempts\":%llu}\n",
                  index, status,
                  static_cast<unsigned long long>(attempts));
    std::lock_guard<std::mutex> lock(ctx.manifestMutex);
    // Append-only event log: a single buffered write per event,
    // flushed before close, so a crash tears at most the last line
    // (which the fold ignores). The write-rename helper cannot be
    // used here — rewriting the log on every event would turn the
    // manifest into an O(events^2) hot path and lose the history a
    // concurrent crash-time reader depends on.
    std::FILE *f = std::fopen(ctx.opts.manifestPath.c_str(), "ab");
    if (!f) {
        throw CkptError("cannot append to campaign manifest '" +
                        ctx.opts.manifestPath + "'");
    }
    const std::size_t len = std::strlen(line);
    const bool ok = std::fwrite(line, 1, len, f) == len &&
                    std::fflush(f) == 0;
    std::fclose(f);
    if (!ok) {
        throw CkptError("error appending to campaign manifest '" +
                        ctx.opts.manifestPath + "'");
    }
}

/** One try of one cell: build, optionally restore, run, report. */
CellOutcome
runCellOnce(const CampaignCell &cell, const std::string &ckpt_path,
            const CampaignOptions &opts)
{
    BuiltRun run = buildRun(cell.spec);
    StatsRegistry registry;
    StatsMeta meta;
    meta.seed = cell.spec.seed;
    meta.configHash = configHashHex(describe(cell.spec));
    registry.setMeta(meta);
    run.system->registerStats(registry);

    Simulation simulation(*run.system, *run.workload, run.sim);
    if (opts.wantStatsJson)
        simulation.setRegistry(&registry);

    CkptRunState state;
    state.simulation = &simulation;
    state.system = run.system.get();
    state.workload = run.workload.get();
    state.registry = opts.wantStatsJson ? &registry : nullptr;

    std::uint64_t last_ckpt = 0;
    if (fileExists(ckpt_path) || fileExists(ckpt_path + ".prev")) {
        const RestoreOutcome restored =
            restoreCheckpointChain(ckpt_path, cell.spec, state);
        last_ckpt = restored.epochsCompleted;
    }

    const bool have_deadline = opts.cellTimeoutSec > 0.0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opts.cellTimeoutSec));

    while (!simulation.done()) {
        if (ckptInterruptRequested()) {
            writeCheckpoint(ckpt_path, cell.spec, state);
            throw CampaignInterrupted{};
        }
        simulation.stepEpoch();
        if (opts.ckptEvery != 0 &&
            simulation.recordedEpochs() >=
                last_ckpt + opts.ckptEvery) {
            writeCheckpoint(ckpt_path, cell.spec, state);
            last_ckpt = simulation.recordedEpochs();
        }
        if (have_deadline &&
            std::chrono::steady_clock::now() > deadline) {
            throw SimError(
                "watchdog: cell exceeded its wall-clock budget "
                "and was cancelled");
        }
    }

    const RunResult result = simulation.finish();
    CellOutcome o;
    o.ok = true;
    o.label = cell.label;
    o.seed = cell.spec.seed;
    o.throughput = result.avgThroughput;
    o.performance = result.performance;
    if (const auto *morph = dynamic_cast<const MorphCacheSystem *>(
            run.system.get())) {
        o.merges = morph->controller().stats().merges;
        o.splits = morph->controller().stats().splits;
        o.finalTopology = morph->hierarchy().topology().name();
    } else {
        o.finalTopology = run.system->name();
    }
    if (opts.wantStatsJson)
        o.statsJson = registry.jsonString();
    return o;
}

/** Drive one cell through its retry budget. */
void
driveCell(CampaignCtx &ctx, std::size_t index)
{
    const CampaignCell &cell = ctx.cells[index];
    std::uint64_t attempts = ctx.progress[index].attempts;
    const std::uint64_t budget = 1 + ctx.opts.retryCells;

    while (true) {
        if (ckptInterruptRequested()) {
            ctx.interrupted = true;
            return;
        }
        appendEvent(ctx, index, "running", attempts);
        try {
            CellOutcome o = runCellOnce(
                cell, cellCkptPath(ctx.dir, index), ctx.opts);
            o.attempts = attempts + 1;
            const std::string doc = serializeOutcome(o);
            atomicWriteFile(cellResultPath(ctx.dir, index),
                            doc.data(), doc.size());
            appendEvent(ctx, index, "done", attempts + 1);
            ctx.outcomes[index] = std::move(o);
            return;
        } catch (const CampaignInterrupted &) {
            // Checkpoint written; the cell stays `running` in the
            // manifest and resumes from where it stopped.
            ctx.interrupted = true;
            return;
        } catch (const std::exception &err) {
            ++attempts;
            appendEvent(ctx, index, "failed", attempts);
            warn("campaign cell %zu (%s) try %llu failed: %s",
                 index, cell.label.c_str(),
                 static_cast<unsigned long long>(attempts),
                 err.what());
            if (attempts >= budget) {
                CellOutcome o;
                o.failed = true;
                o.label = cell.label;
                o.seed = cell.spec.seed;
                o.attempts = attempts;
                o.error = err.what();
                const std::string doc = serializeOutcome(o);
                atomicWriteFile(cellResultPath(ctx.dir, index),
                                doc.data(), doc.size());
                ctx.outcomes[index] = std::move(o);
                return;
            }
            // Bounded exponential backoff before the retry:
            // 100 ms * 2^(try-1), capped at 2 s.
            const std::uint64_t shift =
                attempts - 1 < 10 ? attempts - 1 : 10;
            const std::uint64_t ms = 100ULL << shift;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                ms < 2000 ? ms : 2000));
        }
    }
}

void
appendReportLine(std::string &out, std::size_t index,
                 const CampaignCell &cell, const CellOutcome &o)
{
    char buf[256];
    if (o.failed) {
        std::snprintf(buf, sizeof(buf),
                      "cell %3zu   : %-24s FAILED after %llu "
                      "attempts: ",
                      index, o.label.c_str(),
                      static_cast<unsigned long long>(o.attempts));
        out += buf;
        out += o.error;
        out += '\n';
        return;
    }
    std::snprintf(buf, sizeof(buf),
                  "cell %3zu   : %-24s throughput=%.6f "
                  "performance=%.6f final=%s",
                  index, o.label.c_str(), o.throughput,
                  o.performance, o.finalTopology.c_str());
    out += buf;
    if (cell.spec.scheme == "morph") {
        std::snprintf(buf, sizeof(buf),
                      " merges=%llu splits=%llu",
                      static_cast<unsigned long long>(o.merges),
                      static_cast<unsigned long long>(o.splits));
        out += buf;
    }
    out += '\n';
}

} // namespace

CampaignReport
runCampaign(const std::vector<CampaignCell> &cells,
            const CampaignOptions &opts)
{
    if (opts.manifestPath.empty())
        throw ConfigError("campaign requires a manifest path");
    if (cells.empty())
        throw ConfigError("campaign has no cells");

    CampaignCtx ctx{cells, opts, opts.manifestPath + ".d", {}, {},
                    {}, {}};
    ctx.outcomes.resize(cells.size());
    ctx.progress.assign(cells.size(), CellProgress{});

    const std::uint64_t hash = campaignHash(cells);
    ::mkdir(ctx.dir.c_str(), 0777); // EEXIST is the resume case

    if (opts.resume) {
        ctx.progress =
            foldManifest(opts.manifestPath, cells.size(), hash);
    } else {
        std::string doc = headerLine(cells.size(), hash);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            doc += "{\"type\":\"cell\",\"index\":" +
                   std::to_string(i) +
                   ",\"status\":\"pending\",\"attempts\":0}\n";
            // Clear any stale state a previous campaign under the
            // same manifest path left behind, so cells never
            // restore from another campaign's checkpoints.
            std::remove(cellCkptPath(ctx.dir, i).c_str());
            std::remove((cellCkptPath(ctx.dir, i) + ".prev").c_str());
            std::remove(cellResultPath(ctx.dir, i).c_str());
        }
        atomicWriteFile(opts.manifestPath, doc.data(), doc.size());
    }

    const std::uint64_t budget = 1 + opts.retryCells;
    std::vector<std::size_t> todo;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        CellProgress &prog = ctx.progress[i];
        const bool terminal =
            prog.status == "done" ||
            (prog.status == "failed" && prog.attempts >= budget);
        if (terminal) {
            const std::string path = cellResultPath(ctx.dir, i);
            try {
                const std::vector<std::uint8_t> bytes =
                    readFileBytes(path);
                ctx.outcomes[i] = parseOutcome(
                    path,
                    std::string(bytes.begin(), bytes.end()));
                continue;
            } catch (const CkptError &err) {
                warn("campaign cell %zu result unusable (%s); "
                     "rerunning",
                     i, err.what());
                prog = CellProgress{};
            }
        }
        todo.push_back(i);
    }

    if (!todo.empty()) {
        SweepRunner runner(opts.jobs);
        std::vector<std::function<int()>> tasks;
        tasks.reserve(todo.size());
        for (std::size_t i : todo) {
            tasks.push_back([&ctx, i]() {
                driveCell(ctx, i);
                return 0;
            });
        }
        const auto results = runner.run(std::move(tasks));
        // driveCell absorbs cell failures itself; anything that
        // escaped is campaign infrastructure I/O (manifest or
        // checkpoint write) and marks the cell terminally failed.
        for (std::size_t k = 0; k < todo.size(); ++k) {
            const std::size_t i = todo[k];
            CellOutcome &o = ctx.outcomes[i];
            if (!results[k].ok() && !o.ok && !o.failed) {
                o.failed = true;
                o.label = cells[i].label;
                o.seed = cells[i].spec.seed;
                o.attempts = ctx.progress[i].attempts + 1;
                o.error = results[k].error;
            }
        }
    }

    CampaignReport report;
    report.cells = cells.size();
    report.interrupted =
        ctx.interrupted.load() || ckptInterruptRequested();
    if (report.interrupted)
        return report;

    char buf[96];
    std::snprintf(buf, sizeof(buf), "campaign   : %zu cells\n",
                  cells.size());
    report.reportText = buf;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellOutcome &o = ctx.outcomes[i];
        appendReportLine(report.reportText, i, cells[i], o);
        if (o.failed)
            ++report.failed;
        else
            ++report.done;
    }
    std::snprintf(buf, sizeof(buf),
                  "campaign   : %zu done, %zu failed\n", report.done,
                  report.failed);
    report.reportText += buf;

    if (opts.wantStatsJson) {
        std::string doc = "[\n";
        bool first = true;
        for (const CellOutcome &o : ctx.outcomes) {
            if (o.failed || o.statsJson.empty())
                continue;
            if (!first)
                doc += ",\n";
            first = false;
            doc += o.statsJson;
        }
        doc += "\n]\n";
        report.statsJsonArray = std::move(doc);
    }
    return report;
}

} // namespace morphcache

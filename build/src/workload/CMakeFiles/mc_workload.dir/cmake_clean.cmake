file(REMOVE_RECURSE
  "CMakeFiles/mc_workload.dir/generator.cc.o"
  "CMakeFiles/mc_workload.dir/generator.cc.o.d"
  "CMakeFiles/mc_workload.dir/profiles.cc.o"
  "CMakeFiles/mc_workload.dir/profiles.cc.o.d"
  "CMakeFiles/mc_workload.dir/trace.cc.o"
  "CMakeFiles/mc_workload.dir/trace.cc.o.d"
  "libmc_workload.a"
  "libmc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

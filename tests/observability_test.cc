/**
 * @file
 * End-to-end tests for the observability subsystem: decision
 * tracing (coverage + determinism), stats registry migration of the
 * live components, the trace summary reader, log-level filtering,
 * and the profiler.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/config.hh"
#include "sim/simulation.hh"
#include "stats/profiler.hh"
#include "stats/registry.hh"
#include "stats/tracing.hh"
#include "workload/generator.hh"

namespace morphcache {
namespace {

HierarchyParams
testHier(std::uint32_t cores = 4)
{
    HierarchyParams params = HierarchyParams::defaultParams(cores);
    params.l1Geom = CacheGeometry{2048, 2, 64};
    params.l2.sliceGeom = CacheGeometry{8192, 4, 64};
    params.l3.sliceGeom = CacheGeometry{32768, 8, 64};
    return params;
}

GeneratorParams
testGen()
{
    return generatorFor(testHier());
}

SimParams
testSim()
{
    SimParams params;
    params.refsPerEpochPerCore = 2000;
    params.epochs = 6;
    params.warmupEpochs = 1;
    return params;
}

/** A 4-core mix built from SPEC profiles. */
class FourMix : public Workload
{
  public:
    explicit FourMix(std::uint64_t seed)
    {
        const char *names[4] = {"cactusADM", "libquantum", "gobmk",
                                "hmmer"};
        for (CoreId c = 0; c < 4; ++c) {
            gens_.emplace_back(profileByName(names[c]), c, testGen(),
                               seed + c);
        }
    }

    MemAccess next(CoreId core) override { return gens_[core].next(); }
    void
    beginEpoch(EpochId epoch) override
    {
        for (auto &gen : gens_)
            gen.beginEpoch(epoch);
    }
    bool sharedAddressSpace() const override { return false; }
    std::uint32_t numCores() const override { return 4; }
    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<FourMix>(*this);
    }
    std::string name() const override { return "four-mix"; }

  private:
    std::vector<CoreRefGenerator> gens_;
};

/** Run a traced MorphCache sim; returns the JSONL trace text. */
std::string
tracedRun(std::uint64_t seed, StringTraceSink &sink,
          const MorphCacheSystem **system_out = nullptr,
          StatsRegistry *registry = nullptr)
{
    FourMix workload(seed);
    auto system =
        std::make_unique<MorphCacheSystem>(testHier(), MorphConfig{});
    Tracer tracer(&sink);
    Simulation simulation(*system, workload, testSim());
    simulation.setTracer(&tracer);
    if (registry) {
        system->registerStats(*registry);
        simulation.setRegistry(registry);
    }
    simulation.run();
    if (system_out)
        *system_out = system.release();
    return sink.text();
}

TEST(Tracing, EventFieldsSerialize)
{
    TraceEvent ev("test");
    ev.u64("count", 3).f64("ratio", 0.5).str("name", "l2");
    ev.epoch = 2;
    ev.ts = 100;
    ev.seq = 7;
    EXPECT_EQ(traceEventJson(ev),
              "{\"type\": \"test\", \"epoch\": 2, \"ts\": 100, "
              "\"seq\": 7, \"count\": 3, \"ratio\": 0.5, "
              "\"name\": \"l2\"}");
}

TEST(Tracing, DisabledTracerCountsNothing)
{
    Tracer tracer(nullptr);
    EXPECT_FALSE(tracer.enabled());
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(Tracing, SameSeedRunsProduceIdenticalTraces)
{
    StringTraceSink a, b;
    const std::string trace_a = tracedRun(42, a);
    const std::string trace_b = tracedRun(42, b);
    EXPECT_FALSE(trace_a.empty());
    EXPECT_EQ(trace_a, trace_b);
    EXPECT_EQ(a.numEvents(), b.numEvents());
}

TEST(Tracing, DifferentSeedsDiverge)
{
    StringTraceSink a, b;
    const std::string trace_a = tracedRun(42, a);
    const std::string trace_b = tracedRun(1042, b);
    EXPECT_NE(trace_a, trace_b);
}

TEST(Tracing, EveryReconfigurationIsTraced)
{
    StringTraceSink sink;
    const MorphCacheSystem *system = nullptr;
    const std::string trace = tracedRun(42, sink, &system);
    ASSERT_NE(system, nullptr);
    const ReconfigStats &stats = system->controller().stats();

    std::istringstream in(trace);
    const TraceSummary summary = summarizeTrace(in);
    EXPECT_EQ(summary.totalByType.count("merge") != 0
                  ? summary.totalByType.at("merge")
                  : 0,
              stats.merges);
    EXPECT_EQ(summary.totalByType.count("split") != 0
                  ? summary.totalByType.at("split")
                  : 0,
              stats.splits);
    // Every epoch boundary emits classification + epoch events.
    EXPECT_EQ(summary.totalByType.at("epoch"), stats.decisions);
    EXPECT_GT(summary.totalByType.at("classify"), 0u);
    EXPECT_EQ(summary.totalByType.at("busSample"), stats.decisions);
    // The run must actually have reconfigured for this test to
    // exercise coverage.
    EXPECT_GT(stats.reconfigurations(), 0u);
    delete system;
}

TEST(Tracing, MidRunTracerReportsDeltasNotCumulative)
{
    // A tracer attached mid-run must baseline the bus counters at
    // attach time: its first busSample reports what happened since,
    // not the whole run's cumulative tallies.
    FourMix workload(42);
    MorphCacheSystem system(testHier(), MorphConfig{});
    Simulation simulation(system, workload, testSim());
    simulation.run();

    // The untraced run must have produced bus traffic, or the test
    // is vacuous.
    const std::uint64_t l2_txns =
        system.hierarchy().l2().bus().numTransactions();
    ASSERT_GT(l2_txns, 0u);

    StringTraceSink sink;
    Tracer tracer(&sink);
    simulation.setTracer(&tracer);
    // Nothing simulated between attach and this boundary, so the
    // first busSample's deltas are all zero.
    system.epochBoundary();
    const std::string trace = sink.text();
    const auto pos = trace.find("\"busSample\"");
    ASSERT_NE(pos, std::string::npos);
    EXPECT_NE(trace.find("\"l2QueueCycles\": 0, "
                         "\"l2Transactions\": 0, "
                         "\"l3QueueCycles\": 0, "
                         "\"l3Transactions\": 0",
                         pos),
              std::string::npos);
}

TEST(Tracing, RegistryCountersMatchControllerStats)
{
    StringTraceSink sink;
    const MorphCacheSystem *system = nullptr;
    StatsRegistry registry;
    tracedRun(42, sink, &system, &registry);
    ASSERT_NE(system, nullptr);
    const ReconfigStats &stats = system->controller().stats();

    EXPECT_EQ(registry.value("morph.merges"),
              static_cast<double>(stats.merges));
    EXPECT_EQ(registry.value("morph.splits"),
              static_cast<double>(stats.splits));
    EXPECT_EQ(registry.value("morph.merges.condI") +
                  registry.value("morph.merges.condII") +
                  registry.value("morph.merges.forced"),
              static_cast<double>(stats.merges));
    // Hierarchy migration: per-core counters live on the registry.
    double accesses = 0.0;
    for (int c = 0; c < 4; ++c) {
        accesses += registry.value("sim.core" + std::to_string(c) +
                                   ".accesses");
    }
    EXPECT_GT(accesses, 0.0);
    EXPECT_TRUE(registry.has("hier.l2.localHits"));
    EXPECT_TRUE(registry.has("bus.l2.queueCycles"));
    EXPECT_TRUE(registry.has("bus.l3.seg0.transactions"));
    EXPECT_TRUE(registry.has("check.checksRun"));
    EXPECT_TRUE(registry.has("robust.quarantines"));
    // One snapshot per recorded epoch.
    EXPECT_EQ(registry.numSnapshots(), 6u);
    delete system;
}

TEST(Tracing, ChromeSinkProducesValidArray)
{
    const std::string path =
        std::string(::testing::TempDir()) + "obs_chrome.json";
    {
        ChromeTraceSink file_sink(path);
        Tracer tracer(&file_sink);
        TraceEvent ev("merge");
        ev.str("level", "l2").f64("utilA", 0.5);
        tracer.emit(ev);
        TraceEvent ev2("split");
        ev2.str("level", "l3");
        tracer.emit(ev2);
        file_sink.finish();
    }
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[2048] = {};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path.c_str());
    const std::string text(buf, n);
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(text[text.size() - 2], ']'); // "]\n"
    EXPECT_NE(text.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(text.find("\"name\": \"merge\""), std::string::npos);
}

TEST(TraceSummary, CountsPerEpochAndType)
{
    std::istringstream in(
        "{\"type\": \"merge\", \"epoch\": 0, \"ts\": 1, \"seq\": 0}\n"
        "{\"type\": \"merge\", \"epoch\": 1, \"ts\": 2, \"seq\": 1}\n"
        "{\"type\": \"split\", \"epoch\": 1, \"ts\": 3, \"seq\": 2}\n"
        "not json at all\n");
    const TraceSummary summary = summarizeTrace(in);
    EXPECT_EQ(summary.totalEvents, 3u);
    EXPECT_EQ(summary.totalByType.at("merge"), 2u);
    EXPECT_EQ(summary.totalByType.at("split"), 1u);
    EXPECT_EQ(summary.epochs.at(1).at("merge"), 1u);
    const std::string table = formatTraceSummary(summary);
    EXPECT_NE(table.find("merge"), std::string::npos);
    EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(Logging, LevelsFilterThroughSink)
{
    struct Capture : LogSink
    {
        std::vector<std::string> kinds;
        void
        message(const char *kind, const char *text) override
        {
            (void)text;
            kinds.emplace_back(kind);
        }
    } capture;

    const LogLevel before = logLevel();
    setLogSink(&capture);

    setLogLevel(LogLevel::Quiet);
    warn("dropped");
    inform("dropped");
    verbose("dropped");
    EXPECT_TRUE(capture.kinds.empty());

    setLogLevel(LogLevel::Normal);
    warn("kept");
    inform("kept");
    verbose("dropped");
    ASSERT_EQ(capture.kinds.size(), 2u);
    EXPECT_EQ(capture.kinds[0], "warn");
    EXPECT_EQ(capture.kinds[1], "info");

    setLogLevel(LogLevel::Verbose);
    verbose("kept");
    ASSERT_EQ(capture.kinds.size(), 3u);
    EXPECT_EQ(capture.kinds[2], "verbose");

    setLogSink(nullptr);
    setLogLevel(before);
}

TEST(Profiler, ScopedTimerAccumulatesWhenEnabled)
{
    Profiler &prof = Profiler::global();
    prof.reset();
    prof.setEnabled(true);
    {
        ScopedPhaseTimer timer(ProfPhase::EpochDecision);
        volatile int sink = 0;
        for (int i = 0; i < 1000; ++i)
            sink = sink + i;
    }
    prof.setEnabled(false);
    EXPECT_EQ(prof.calls(ProfPhase::EpochDecision), 1u);
    EXPECT_GT(prof.ns(ProfPhase::EpochDecision), 0u);
    EXPECT_EQ(prof.calls(ProfPhase::ReconfigApply), 0u);

    StatsRegistry registry;
    prof.registerStats(registry);
    EXPECT_EQ(registry.value("prof.epochDecision.calls"), 1.0);
    EXPECT_FALSE(prof.report().empty());
    prof.reset();
    EXPECT_EQ(prof.calls(ProfPhase::EpochDecision), 0u);
}

TEST(Profiler, DisabledTimerRecordsNothing)
{
    Profiler &prof = Profiler::global();
    prof.reset();
    prof.setEnabled(false);
    {
        ScopedPhaseTimer timer(ProfPhase::RefProcessing);
    }
    EXPECT_EQ(prof.calls(ProfPhase::RefProcessing), 0u);
    EXPECT_TRUE(prof.report().empty());
}

} // namespace
} // namespace morphcache

/**
 * @file
 * Section 5.4 — sensitivity of MorphCache's improvement to cache
 * sizes, associativity, and core count.
 *
 * For each configuration, the metric is MorphCache's average
 * throughput improvement over the (all-shared) baseline across a
 * set of mixes. Paper: +2.1%-point with doubled L2 slices,
 * +1.8%-point with doubled L3, ~0 from doubled associativity (at
 * higher latency), and 0.7%-point *less* benefit with 8 cores.
 */

#include "common.hh"

using namespace morphcache;
using namespace morphcache::bench;

namespace {

/** Average morph improvement over the all-shared baseline. */
double
improvement(const HierarchyParams &hier, std::uint32_t cores,
            const SimParams &sim)
{
    const GeneratorParams gen = generatorFor(hier);
    const Topology baseline_topo =
        Topology::symmetric(cores, cores, 1, 1);
    const int mixes[] = {4, 5, 8, 9, 11, 12};
    const auto gains = parallelRows(
        std::size(mixes), [&](std::size_t i) {
            const int m = mixes[i];
            char name[16];
            std::snprintf(name, sizeof(name), "MIX %02d", m);
            const MixSpec &full = mixByName(name);
            // For 8-core runs, use the first 8 members of each mix.
            MixSpec spec = full;
            spec.benchmarks.resize(cores);

            MixWorkload base_wl(spec, gen, baseSeed() + m);
            StaticTopologySystem base_sys(hier, baseline_topo);
            Simulation base_sim(base_sys, base_wl, sim);
            const double base = base_sim.run().avgThroughput;

            MixWorkload morph_wl(spec, gen, baseSeed() + m);
            MorphCacheSystem morph_sys(hier, MorphConfig{});
            Simulation morph_sim(morph_sys, morph_wl, sim);
            const double tput = morph_sim.run().avgThroughput;
            return tput / base - 1.0;
        });
    double sum = 0.0;
    for (double gain : gains)
        sum += gain;
    return 100.0 * sum / std::size(mixes);
}

} // namespace

int
main()
{
    const SimParams sim = defaultSim();

    const HierarchyParams base16 = experimentHierarchy(16);
    const double ref = improvement(base16, 16, sim);
    std::printf("Section 5.4: MorphCache improvement over the "
                "all-shared baseline (avg over 6 mixes)\n\n");
    std::printf("%-32s %8.2f%%  (reference)\n", "default", ref);

    {
        HierarchyParams hier = base16;
        hier.l2.sliceGeom.sizeBytes *= 2; // 512 KB/slice equivalent
        std::printf("%-32s %8.2f%%  (paper: +2.1 pt)\n",
                    "2x L2 slice size",
                    improvement(hier, 16, sim));
    }
    {
        HierarchyParams hier = base16;
        hier.l3.sliceGeom.sizeBytes *= 2;
        std::printf("%-32s %8.2f%%  (paper: +1.8 pt)\n",
                    "2x L3 slice size",
                    improvement(hier, 16, sim));
    }
    {
        HierarchyParams hier = base16;
        hier.l2.sliceGeom.assoc *= 2;
        hier.l3.sliceGeom.assoc *= 2;
        // The paper notes doubling associativity costs access
        // latency; model that cost explicitly.
        hier.l2.localHitLatency += 2;
        hier.l3.localHitLatency += 4;
        std::printf("%-32s %8.2f%%  (paper: no additional benefit)\n",
                    "2x associativity (+latency)",
                    improvement(hier, 16, sim));
    }
    {
        const HierarchyParams hier = experimentHierarchy(8);
        std::printf("%-32s %8.2f%%  (paper: 0.7 pt below 16-core)\n",
                    "8 cores, 8-app mixes",
                    improvement(hier, 8, sim));
    }
    return 0;
}

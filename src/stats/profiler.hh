/**
 * @file
 * Lightweight phase profiler for the simulator's own hot phases.
 *
 * Three phases dominate wall-clock time: reference processing (the
 * per-access loop), the epoch decision (controller classification +
 * merge/split search), and the reconfiguration apply (partition
 * rewrite + inclusion walk). A ScopedPhaseTimer around each feeds
 * accumulated nanoseconds and call counts into the process-wide
 * Profiler, which reports through the stats registry as
 * `prof.<phase>.ns` / `prof.<phase>.calls`.
 *
 * Disabled by default: the scoped timer's constructor tests one
 * bool and does nothing else, so leaving the hooks compiled into
 * the hot phases is free (gated by bench/micro_components).
 * Profiler times are wall-clock and are intentionally reported only
 * through the registry, never the event tracer — traces stay
 * bit-deterministic across same-seed runs.
 */

#ifndef MORPHCACHE_STATS_PROFILER_HH
#define MORPHCACHE_STATS_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/bitops.hh"

namespace morphcache {

class StatsRegistry;

/** Instrumented simulator phases. */
enum class ProfPhase : std::uint8_t {
    /** The per-access reference-processing loop (one epoch batch). */
    RefProcessing,
    /** One controller epoch decision. */
    EpochDecision,
    /** One Hierarchy::reconfigure() application. */
    ReconfigApply,
    NumPhases,
};

/** Name of a phase (registry key component). */
const char *profPhaseName(ProfPhase phase);

/**
 * One reading of a process-wide allocation tally, as delivered by a
 * ProfAllocProbe. Mirrors perf/allocmeter.hh's AllocSnapshot without
 * depending on it: the stats library sits below the perf library in
 * the link graph, so the meter *registers* a probe rather than being
 * called by name.
 */
struct ProfAllocSample
{
    std::uint64_t bytes = 0;
    std::uint64_t calls = 0;
    std::uint64_t frees = 0;
};

/**
 * Monotonic allocation-tally reader a metering layer can plug into
 * the profiler (see AllocMeter::setEnabled). Plain function pointer:
 * installing one must not itself allocate.
 */
using ProfAllocProbe = ProfAllocSample (*)();

/**
 * Point-in-time copy of every phase's accumulators. This is the
 * stable machine-readable export: harnesses (tools/mc_bench) take a
 * snapshot before and after a measured region and report the delta.
 * Parsing report() text or scraping `prof.*` keys out of a registry
 * dump is deprecated — those renderings may change formatting;
 * snapshot() may only gain fields.
 */
struct ProfSnapshot
{
    struct PhaseTotals
    {
        std::uint64_t ns = 0;
        std::uint64_t calls = 0;
        /**
         * Heap traffic attributed to this phase (operator new
         * bytes/calls and operator delete calls observed while one
         * of its timed intervals was open). Zero unless both the
         * profiler and an installed alloc probe's meter are enabled.
         * Attribution is *inclusive*: an interval nested inside
         * another phase (ReconfigApply inside EpochDecision) counts
         * its traffic in both.
         */
        std::uint64_t allocBytes = 0;
        std::uint64_t allocCalls = 0;
        std::uint64_t allocFrees = 0;
    };

    PhaseTotals phases[static_cast<std::size_t>(
        ProfPhase::NumPhases)] = {};

    const PhaseTotals &
    operator[](ProfPhase phase) const
    {
        return phases[static_cast<std::size_t>(phase)];
    }

    PhaseTotals &
    operator[](ProfPhase phase)
    {
        return phases[static_cast<std::size_t>(phase)];
    }
};

/** Per-phase difference of two snapshots (b taken after a). */
ProfSnapshot profDelta(const ProfSnapshot &a, const ProfSnapshot &b);

/** Process-wide phase-time accumulator. */
class Profiler
{
  public:
    /** The global instance every ScopedPhaseTimer feeds. */
    static Profiler &global();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void
    setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /**
     * Fold one timed interval into a phase. Relaxed atomics: the
     * counters are monotonic tallies read only at report time, so
     * parallel sweep workers can feed the shared instance without
     * tearing (individual adds never order against each other).
     */
    void
    add(ProfPhase phase, std::uint64_t ns)
    {
        const auto i = static_cast<std::size_t>(phase);
        ns_[i].fetch_add(ns, std::memory_order_relaxed);
        calls_[i].fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t
    ns(ProfPhase phase) const
    {
        return ns_[static_cast<std::size_t>(phase)].load(
            std::memory_order_relaxed);
    }

    std::uint64_t
    calls(ProfPhase phase) const
    {
        return calls_[static_cast<std::size_t>(phase)].load(
            std::memory_order_relaxed);
    }

    /**
     * Install (or clear, with nullptr) the allocation probe the
     * scoped timers sample around each interval. The probe must be
     * callable from any thread and must not allocate.
     */
    void
    setAllocProbe(ProfAllocProbe probe)
    {
        allocProbe_.store(probe, std::memory_order_relaxed);
    }

    ProfAllocProbe
    allocProbe() const
    {
        return allocProbe_.load(std::memory_order_relaxed);
    }

    /** Fold one interval's allocation delta into a phase. */
    void
    addAlloc(ProfPhase phase, const ProfAllocSample &delta)
    {
        const auto i = static_cast<std::size_t>(phase);
        allocBytes_[i].fetch_add(delta.bytes,
                                 std::memory_order_relaxed);
        allocCalls_[i].fetch_add(delta.calls,
                                 std::memory_order_relaxed);
        allocFrees_[i].fetch_add(delta.frees,
                                 std::memory_order_relaxed);
    }

    /**
     * Consistent-enough copy of all accumulators (each counter is
     * read atomically; pairs may skew by an in-flight add, which a
     * report-time reader cannot observe anyway).
     */
    ProfSnapshot snapshot() const;

    /** Zero all accumulators (enabled flag unchanged). */
    void reset();

    /** Register `prof.<phase>.{ns,calls}` onto a registry. */
    void registerStats(StatsRegistry &registry) const;

    /** Human-readable per-phase table (empty if nothing timed). */
    std::string report() const;

  private:
    static constexpr std::size_t numPhases =
        static_cast<std::size_t>(ProfPhase::NumPhases);

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> ns_[numPhases] = {};
    std::atomic<std::uint64_t> calls_[numPhases] = {};
    std::atomic<std::uint64_t> allocBytes_[numPhases] = {};
    std::atomic<std::uint64_t> allocCalls_[numPhases] = {};
    std::atomic<std::uint64_t> allocFrees_[numPhases] = {};
    /** Allocation-tally reader (null until a meter installs one). */
    std::atomic<ProfAllocProbe> allocProbe_{nullptr};
};

/**
 * RAII timer for one phase interval. When the global profiler is
 * disabled the constructor is a single branch and the destructor a
 * dead test — cheap enough to sit inside per-epoch code paths
 * unconditionally.
 */
class ScopedPhaseTimer
{
  public:
    explicit ScopedPhaseTimer(ProfPhase phase)
        : phase_(phase), active_(Profiler::global().enabled())
    {
        if (active_) {
            start_ = std::chrono::steady_clock::now();
            probe_ = Profiler::global().allocProbe();
            if (probe_)
                alloc0_ = probe_();
        }
    }

    ~ScopedPhaseTimer()
    {
        if (active_) {
            const auto end = std::chrono::steady_clock::now();
            Profiler &prof = Profiler::global();
            prof.add(
                phase_,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(end - start_)
                        .count()));
            if (probe_) {
                const ProfAllocSample now = probe_();
                prof.addAlloc(
                    phase_,
                    ProfAllocSample{
                        satSub(now.bytes, alloc0_.bytes),
                        satSub(now.calls, alloc0_.calls),
                        satSub(now.frees, alloc0_.frees)});
            }
        }
    }

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

  private:
    ProfPhase phase_;
    bool active_;
    std::chrono::steady_clock::time_point start_;
    /** Alloc probe captured at construction (null = no metering). */
    ProfAllocProbe probe_ = nullptr;
    ProfAllocSample alloc0_;
};

} // namespace morphcache

#endif // MORPHCACHE_STATS_PROFILER_HH

# Empty compiler generated dependencies file for mc_morph.
# This may be replaced when dependencies are built.

#include "ckpt/ckpt.hh"

#include <csignal>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace morphcache {

namespace {

const char ckptMagic[4] = {'M', 'C', 'K', 'P'};

volatile std::sig_atomic_t g_interrupt = 0;

std::string
hex64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * Strip and verify the trailing checksum. Returns the payload size
 * (file minus the 8 checksum bytes). Checked before any parsing so
 * arbitrary corruption is always a typed failure.
 */
std::size_t
verifyChecksum(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < 8 + 4 + 4 + 8 + 8 + 8) {
        throw CkptError("'" + path + "': file of " +
                        std::to_string(bytes.size()) +
                        " bytes is too short to be a checkpoint");
    }
    const std::size_t payload = bytes.size() - 8;
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= static_cast<std::uint64_t>(bytes[payload + i])
                  << (8 * i);
    const std::uint64_t computed = fnv1a64(bytes.data(), payload);
    if (stored != computed) {
        throw CkptError("'" + path + "': checksum mismatch: stored " +
                        hex64(stored) + ", computed " +
                        hex64(computed) +
                        " (corrupt or truncated checkpoint)");
    }
    return payload;
}

/** Read and validate the fixed header; returns (specHash, seed, epochsDone). */
struct Header
{
    std::uint32_t version = 0;
    std::uint64_t specHash = 0;
    std::uint64_t seed = 0;
    std::uint64_t epochsDone = 0;
};

Header
readHeader(CkptReader &r)
{
    char magic[4];
    r.raw(magic, 4);
    if (std::memcmp(magic, ckptMagic, 4) != 0) {
        r.fail(std::string("bad magic: expected \"MCKP\", found \"") +
               std::string(magic, 4) + "\"");
    }
    Header h;
    h.version = r.u32();
    if (h.version != ckptVersion) {
        r.fail("checkpoint format version mismatch: expected " +
               std::to_string(ckptVersion) + ", found " +
               std::to_string(h.version));
    }
    h.specHash = r.u64();
    h.seed = r.u64();
    h.epochsDone = r.u64();
    return h;
}

/**
 * Enter a section: read + check the 4-byte tag, return the declared
 * payload length after validating it against the remaining bytes.
 */
std::uint64_t
enterSection(CkptReader &r, const char tag[4])
{
    char found[4];
    r.raw(found, 4);
    if (std::memcmp(found, tag, 4) != 0) {
        r.fail(std::string("section tag mismatch: expected '") +
               std::string(tag, 4) + "', found '" +
               std::string(found, 4) + "'");
    }
    const std::uint64_t len = r.u64();
    if (len > r.remaining()) {
        r.fail(std::string("section '") + std::string(tag, 4) +
               "' declares " + std::to_string(len) +
               " bytes but only " + std::to_string(r.remaining()) +
               " remain");
    }
    return len;
}

/** Check a section consumed exactly its declared length. */
void
leaveSection(CkptReader &r, const char tag[4], std::size_t start,
             std::uint64_t len)
{
    const std::size_t used = r.offset() - start;
    if (used != len) {
        r.fail(std::string("section '") + std::string(tag, 4) +
               "' declared " + std::to_string(len) +
               " bytes but its reader consumed " +
               std::to_string(used));
    }
}

} // namespace

void
writeCheckpoint(const std::string &path, const RunSpec &spec,
                const CkptRunState &state)
{
    MC_ASSERT(state.simulation && state.system && state.workload);

    CkptWriter w;
    w.bytes(ckptMagic, 4);
    w.u32(ckptVersion);
    w.u64(specHash(spec));
    w.u64(spec.seed);
    w.u64(state.simulation->recordedEpochs());

    std::size_t tok = w.beginSection("SPEC");
    saveSpec(w, spec);
    w.endSection(tok);

    tok = w.beginSection("WKLD");
    state.workload->saveState(w);
    w.endSection(tok);

    tok = w.beginSection("SYST");
    state.system->saveState(w);
    w.endSection(tok);

    tok = w.beginSection("SIMU");
    state.simulation->saveState(w);
    w.endSection(tok);

    tok = w.beginSection("REGY");
    w.b(state.registry != nullptr);
    if (state.registry)
        state.registry->saveState(w);
    w.endSection(tok);

    tok = w.beginSection("TRCE");
    w.b(state.tracer != nullptr);
    if (state.tracer) {
        state.tracer->saveState(w);
        w.u64(state.traceByteOffset);
    }
    w.endSection(tok);

    const std::uint64_t sum =
        fnv1a64(w.buffer().data(), w.buffer().size());
    w.u64(sum);

    // Rotate the previous consistent checkpoint into the fallback
    // slot, then land the new one atomically. If the write fails
    // after the rotation the main file is gone, but
    // restoreCheckpointChain still finds `<path>.prev`; a failed
    // rotation surfaces as a typed IoError before the old chain is
    // disturbed.
    atomicWriteFileWithRotation(path, w.buffer());
}

RestoreOutcome
readCheckpoint(const std::string &path, const RunSpec &spec,
               const CkptRunState &state)
{
    MC_ASSERT(state.simulation && state.system && state.workload);

    const std::vector<std::uint8_t> bytes = readFileBytes(path);
    const std::size_t payload = verifyChecksum(path, bytes);
    CkptReader r(path, bytes.data(), payload);

    const Header h = readHeader(r);
    const std::uint64_t want = specHash(spec);
    if (h.specHash != want) {
        r.fail("config-hash mismatch: checkpoint was taken under " +
               hex64(h.specHash) + ", this run is " + hex64(want) +
               " (" + describe(spec) + ")");
    }
    if (h.seed != spec.seed) {
        r.fail("seed mismatch: checkpoint has " +
               std::to_string(h.seed) + ", this run uses " +
               std::to_string(spec.seed));
    }

    std::uint64_t len = enterSection(r, "SPEC");
    std::size_t start = r.offset();
    loadSpec(r); // self-description; binding already checked above
    leaveSection(r, "SPEC", start, len);

    len = enterSection(r, "WKLD");
    start = r.offset();
    state.workload->loadState(r);
    leaveSection(r, "WKLD", start, len);

    len = enterSection(r, "SYST");
    start = r.offset();
    state.system->loadState(r);
    leaveSection(r, "SYST", start, len);

    len = enterSection(r, "SIMU");
    start = r.offset();
    state.simulation->loadState(r);
    leaveSection(r, "SIMU", start, len);

    len = enterSection(r, "REGY");
    start = r.offset();
    const bool hasRegistry = r.b();
    if (hasRegistry) {
        if (state.registry) {
            state.registry->loadState(r);
        } else {
            r.skip(len - (r.offset() - start));
        }
    } else if (state.registry) {
        r.fail("checkpoint has no stats-registry section but this "
               "run snapshots one");
    }
    leaveSection(r, "REGY", start, len);

    RestoreOutcome outcome;
    len = enterSection(r, "TRCE");
    start = r.offset();
    const bool hasTracer = r.b();
    if (hasTracer) {
        if (state.tracer) {
            state.tracer->loadState(r);
            outcome.traceByteOffset = r.u64();
        } else {
            r.skip(len - (r.offset() - start));
        }
    }
    leaveSection(r, "TRCE", start, len);

    if (r.remaining() != 0)
        r.fail(std::to_string(r.remaining()) +
               " trailing bytes after the last section");

    outcome.pathUsed = path;
    outcome.epochsCompleted = h.epochsDone;
    return outcome;
}

RestoreOutcome
restoreCheckpointChain(const std::string &path, const RunSpec &spec,
                       const CkptRunState &state)
{
    try {
        return readCheckpoint(path, spec, state);
    } catch (const CkptError &primary) {
        const std::string prev = path + ".prev";
        try {
            RestoreOutcome outcome =
                readCheckpoint(prev, spec, state);
            outcome.usedFallback = true;
            warn("checkpoint recovery: '%s' unusable (%s); "
                 "restored previous checkpoint '%s' "
                 "(%llu epochs completed)",
                 path.c_str(), primary.what(), prev.c_str(),
                 static_cast<unsigned long long>(
                     outcome.epochsCompleted));
            return outcome;
        } catch (const CkptError &) {
            // Surface the main file's failure, not the fallback's.
            throw primary;
        }
    }
}

CkptInfo
inspectCheckpoint(const std::string &path)
{
    const std::vector<std::uint8_t> bytes = readFileBytes(path);
    CkptInfo info;
    info.fileSize = bytes.size();
    const std::size_t payload = verifyChecksum(path, bytes);
    info.checksumOk = true;

    CkptReader r(path, bytes.data(), payload);
    const Header h = readHeader(r);
    info.version = h.version;
    info.specHash = h.specHash;
    info.seed = h.seed;
    info.epochsCompleted = h.epochsDone;

    bool sawSpec = false;
    while (r.remaining() > 0) {
        char tag[4];
        r.raw(tag, 4);
        const std::uint64_t len = r.u64();
        if (len > r.remaining()) {
            r.fail(std::string("section '") + std::string(tag, 4) +
                   "' declares " + std::to_string(len) +
                   " bytes but only " +
                   std::to_string(r.remaining()) + " remain");
        }
        info.sections.emplace_back(std::string(tag, 4), len);
        if (std::memcmp(tag, "SPEC", 4) == 0) {
            const std::size_t start = r.offset();
            info.spec = loadSpec(r);
            sawSpec = true;
            r.skip(len - (r.offset() - start));
        } else {
            r.skip(static_cast<std::size_t>(len));
        }
    }
    if (!sawSpec)
        r.fail("checkpoint has no SPEC section");
    return info;
}

void
requestCkptInterrupt()
{
    g_interrupt = 1;
}

bool
ckptInterruptRequested()
{
    return g_interrupt != 0;
}

void
clearCkptInterrupt()
{
    g_interrupt = 0;
}

} // namespace morphcache

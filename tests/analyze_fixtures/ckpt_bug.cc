// mc_analyze mutation fixture: serialization-coverage violations.
// `missing_` is the added-but-never-checkpointed member that
// silently diverges a resume; `halfDone_` is saved but not loaded;
// `badSite_` carries a derived annotation naming nothing real.

#include <cstdint>

class CkptWriter;
class CkptReader;

namespace fixture {

class Widget
{
  public:
    void
    saveState(CkptWriter &w) const
    {
        write(w, count_);
        write(w, halfDone_);
    }

    void
    loadState(CkptReader &r)
    {
        count_ = readU64(r);
    }

  private:
    static void write(CkptWriter &w, std::uint64_t v);
    static std::uint64_t readU64(CkptReader &r);

    std::uint64_t count_ = 0;
    std::uint64_t missing_ = 0;
    std::uint64_t halfDone_ = 0;
    std::uint64_t badSite_ = 0; // ckpt: derived(noSuchFunctionAnywhere)
};

} // namespace fixture
